// Ablation — spatial density variation and density-free tuning.
//
// Section 6 notes that real deployments show "large spatio-temporal
// variation" in node density, which breaks any single globally tuned p.
// Two pieces reproduce and address that here:
//  1. the Eq. 4 recursion generalised to per-ring densities (analytic
//     gradient predictions), and
//  2. the degree-adaptive rule p_i = c / degree_i, exploiting the almost
//     exactly constant product p* x rho of Fig. 4(b) (our analytic sweep:
//     p* * rho in [12.6, 13.2] over rho = 20..140) and Assumption 3 (each
//     node knows its neighbours).
//
// We compare, on uniform and on strongly graded deployments: flooding, a
// fixed p tuned for the *mean* density, and the adaptive rule.
#include <memory>

#include "bench_common.hpp"
#include "protocols/adaptive.hpp"
#include "protocols/probabilistic.hpp"

using namespace nsmodel;
using bench::BenchOptions;

namespace {

struct Profile {
  const char* name;
  std::vector<double> rhoPerRing;  // local rho per ring, P = 5

  double meanRho() const {
    // Area-weighted mean: ring k's area fraction is (2k - 1) / P^2.
    double total = 0.0;
    for (std::size_t k = 1; k <= rhoPerRing.size(); ++k) {
      total += rhoPerRing[k - 1] * (2.0 * static_cast<double>(k) - 1.0);
    }
    const auto p = static_cast<double>(rhoPerRing.size());
    return total / (p * p);
  }
};

double measure(const BenchOptions& opts, const Profile& profile,
               const protocols::ProtocolFactory& factory, int reps) {
  double total = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    support::Rng rng = support::Rng::forStream(opts.seed, rep);
    const net::Deployment dep =
        net::Deployment::radialGradientDisk(rng, 1.0, profile.rhoPerRing);
    const net::Topology topo(dep, 1.0);
    sim::ExperimentConfig cfg;
    cfg.neighborDensity = profile.meanRho();
    auto protocol = factory();
    const auto run = sim::runBroadcast(cfg, dep, topo, *protocol, rng);
    total += run.reachabilityAfter(5.0);
  }
  return total / reps;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("Ablation", "radial density gradients + degree-adaptive p");
  const core::MetricSpec spec = core::MetricSpec::reachabilityUnderLatency(5.0);
  const int reps = opts.fast ? 8 : 20;

  // Calibrate the adaptive gain c once from the uniform analytic optimum.
  double gain = 0.0;
  {
    int count = 0;
    for (double rho : {40.0, 80.0, 120.0}) {
      const auto best = bench::paperModel(rho).optimize(spec);
      gain += best->probability * rho;
      ++count;
    }
    gain /= count;
  }
  std::printf("calibrated adaptive gain c = p* x rho = %.1f\n\n", gain);

  const std::vector<Profile> profiles = {
      {"uniform 60", {60, 60, 60, 60, 60}},
      {"dense core", {240, 120, 60, 30, 20}},
      {"sparse core", {20, 30, 60, 120, 160}},
      {"ring hotspot", {40, 40, 200, 40, 40}},
  };

  support::TablePrinter table({"profile", "mean rho", "analytic fixed p*",
                               "flooding", "fixed p*", "adaptive c/deg"});
  for (const Profile& profile : profiles) {
    // Gradient-aware analytic optimum for the fixed-p baseline.
    analytic::RingModelConfig base;
    base.rings = 5;
    base.neighborDensity = profile.meanRho();
    base.ringDensityFactor.clear();
    for (double rho : profile.rhoPerRing) {
      base.ringDensityFactor.push_back(rho / profile.meanRho());
    }
    const auto best =
        core::optimizeAnalytic(base, spec, opts.analyticGrid());
    const double fixedP = best ? best->probability : 0.2;

    const double flood = measure(opts, profile, [] {
      return std::make_unique<protocols::ProbabilisticBroadcast>(1.0);
    }, reps);
    const double fixed = measure(opts, profile, [fixedP] {
      return std::make_unique<protocols::ProbabilisticBroadcast>(fixedP);
    }, reps);
    const double adaptive = measure(opts, profile, [gain] {
      return std::make_unique<protocols::DegreeAdaptiveBroadcast>(gain);
    }, reps);

    table.addRow({profile.name, support::formatDouble(profile.meanRho(), 0),
                  support::formatDouble(fixedP, 2),
                  support::formatDouble(flood, 3),
                  support::formatDouble(fixed, 3),
                  support::formatDouble(adaptive, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nTakeaway: one globally tuned p survives mild gradients but the\n"
      "degree-adaptive rule needs no density knowledge at all and stays\n"
      "within noise of (or beats) the tuned fixed p on every profile —\n"
      "the practical answer to Section 6's spatio-temporal variation\n"
      "concern, built from the paper's own p* ~ c / rho observation.\n");
  return 0;
}
