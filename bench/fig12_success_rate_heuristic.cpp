// Fig. 12 — flooding success rate vs the optimal broadcast probability.
//
// The paper's closing observation: the ratio (latency-metric optimal p) /
// (per-link success rate of simple flooding under CAM) is nearly constant
// (~11) across densities, suggesting a density-free rule for choosing p —
// measure the local flooding success rate and multiply.  We reproduce the
// analytic comparison and add the simulated success rate as a check, then
// evaluate the heuristic: reachability attained by the heuristic p vs the
// true optimum.
#include <memory>

#include "analytic/success_rate.hpp"
#include "bench_common.hpp"
#include "protocols/flooding.hpp"

using namespace nsmodel;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("Figure 12",
                "flooding success rate vs optimal probability (ratio rule)");
  const core::MetricSpec spec = core::MetricSpec::reachabilityUnderLatency(5.0);
  const auto grid = opts.analyticGrid();

  struct Row {
    double rho;
    double optimalP;
    double successRate;
    double simSuccessRate;
  };
  std::vector<Row> rows;
  double ratioSum = 0.0;
  for (double rho : opts.rhos()) {
    const core::NetworkModel model = bench::paperModel(rho);
    const auto best = model.optimize(spec, grid);
    analytic::RingModelConfig cfg =
        model.analyticConfig(1.0, analytic::RealKPolicy::Interpolate);
    const double rate = analytic::floodingSuccessRate(cfg);

    sim::MonteCarloConfig mc;
    mc.experiment = model.experimentConfig();
    mc.seed = opts.seed;
    mc.replications = opts.replications;
    const auto aggs = sim::monteCarlo(
        mc, [] { return std::make_unique<protocols::SimpleFlooding>(); },
        [](const sim::RunResult& run) {
          return std::vector<double>{run.averageSuccessRate()};
        });
    rows.push_back({rho, best->probability, rate, aggs[0].stats.mean});
    ratioSum += best->probability / rate;
  }
  const double meanRatio = ratioSum / static_cast<double>(rows.size());

  support::TablePrinter table({"rho", "optimal p", "success rate",
                               "sim success rate", "p / rate"});
  for (const Row& row : rows) {
    table.addRow({support::formatDouble(row.rho, 0),
                  support::formatDouble(row.optimalP, 2),
                  support::formatDouble(row.successRate, 4),
                  support::formatDouble(row.simSuccessRate, 4),
                  support::formatDouble(row.optimalP / row.successRate, 2)});
  }
  table.print(std::cout);
  std::printf("\nmean ratio: %.2f (paper reports ~11)\n", meanRatio);

  // Evaluate the heuristic: pick p = meanRatio * successRate and compare
  // the reachability it attains against the true optimum.
  support::TablePrinter eval({"rho", "heuristic p", "reach(heuristic)",
                              "reach(optimal)"});
  for (const Row& row : rows) {
    const double heuristicP =
        analytic::heuristicOptimalProbability(row.successRate, meanRatio);
    const core::NetworkModel model = bench::paperModel(row.rho);
    const double reachH =
        *core::evaluateMetric(spec, model.predict(heuristicP));
    const auto best = model.optimize(spec, grid);
    eval.addRow({support::formatDouble(row.rho, 0),
                 support::formatDouble(heuristicP, 2),
                 support::formatDouble(reachH, 3),
                 support::formatDouble(best->value, 3)});
  }
  std::printf("\nheuristic evaluation (density-free rule p = ratio * rate)\n");
  eval.print(std::cout);
  std::printf(
      "\nPaper shape: the ratio is ~constant across rho, so the optimal p\n"
      "can be chosen from the locally measurable success rate without\n"
      "knowing the node density.\n");
  return 0;
}
