// Ablation — the fault matrix (Assumptions 5 and 6 relaxed together).
//
// The paper's design methodology tunes the broadcast probability under a
// frozen, perfectly synchronised network.  This bench re-evaluates the
// failure-free tuning under a matrix of fault regimes from src/fault —
// permanent and transient crashes, bursty Gilbert–Elliott link loss,
// clock drift (partial slot overlaps), energy-depletion cutoffs, and a
// combined regime — and reports how much reachability the tuned p and
// flooding each retain.  The design question mirrors ablation_node_failure
// but across the whole fault space: which violations of the assumptions
// merely degrade the tuned operating point, and which invert the
// flooding-vs-tuned ranking?
#include <memory>

#include "bench_common.hpp"
#include "fault/fault_models.hpp"
#include "protocols/probabilistic.hpp"

using namespace nsmodel;
using bench::BenchOptions;

namespace {

struct Regime {
  const char* name;
  fault::FaultConfig fault;
};

std::vector<Regime> faultMatrix() {
  std::vector<Regime> regimes;
  regimes.push_back({"baseline (no faults)", {}});

  fault::FaultConfig crash;
  crash.crash.crashRate = 0.05;
  regimes.push_back({"permanent crash 5%/phase", crash});

  fault::FaultConfig transient;
  transient.crash.crashRate = 0.1;
  transient.crash.recoveryRate = 0.3;
  regimes.push_back({"transient crash 10%/30%", transient});

  fault::FaultConfig bursty;
  bursty.link.pGoodToBad = 0.2;
  bursty.link.pBadToGood = 0.4;
  bursty.link.lossBad = 0.8;
  regimes.push_back({"bursty loss (GE, 80% bad)", bursty});

  fault::FaultConfig drift;
  drift.drift.maxSkewSlots = 0.45;
  regimes.push_back({"clock drift (0.45 slot)", drift});

  fault::FaultConfig energy;
  energy.energyBudget = 3.0;
  regimes.push_back({"energy budget 3 packets", energy});

  fault::FaultConfig combined;
  combined.crash.crashRate = 0.02;
  combined.link.pGoodToBad = 0.2;
  combined.link.pBadToGood = 0.4;
  combined.link.lossBad = 0.8;
  combined.drift.maxSkewSlots = 0.3;
  regimes.push_back({"combined (mild all)", combined});
  return regimes;
}

double meanReach(const BenchOptions& opts, double rho, double p,
                 const fault::FaultConfig& fault, int reps) {
  sim::ExperimentConfig cfg;
  cfg.neighborDensity = rho;
  cfg.fault = fault;
  double total = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    total += sim::runExperiment(
                 cfg,
                 [p] {
                   return std::make_unique<protocols::ProbabilisticBroadcast>(
                       p);
                 },
                 opts.seed, rep)
                 .reachabilityAfter(5.0);
  }
  return total / reps;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("Ablation", "fault matrix: crash / burst loss / drift / energy");
  const core::MetricSpec spec = core::MetricSpec::reachabilityUnderLatency(5.0);
  const int reps = opts.fast ? 6 : 20;
  const double rho = 100.0;

  const auto best = bench::paperModel(rho).optimize(spec);
  const double tunedP = best->probability;
  std::printf("rho = %.0f, tuned p* = %.2f (failure-free analysis)\n\n", rho,
              tunedP);

  support::TablePrinter table(
      {"fault regime", "flooding (p=1)", "tuned p*", "tuned advantage"});
  for (const Regime& regime : faultMatrix()) {
    const double flood = meanReach(opts, rho, 1.0, regime.fault, reps);
    const double tuned = meanReach(opts, rho, tunedP, regime.fault, reps);
    table.addRow({regime.name, support::formatDouble(flood, 3),
                  support::formatDouble(tuned, 3),
                  support::formatDouble(tuned - flood, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nTakeaway: collision-side faults (burst loss, drift) hit flooding\n"
      "harder than the tuned p — they amplify the redundancy the tuning\n"
      "already removes — while node-side faults (crashes, energy death)\n"
      "erode the tuned advantage because dead relays, not collisions,\n"
      "become the binding loss. The fault matrix tells a designer which\n"
      "assumption violations merely shift the operating point and which\n"
      "demand re-tuning toward more redundancy.\n");
  return 0;
}
