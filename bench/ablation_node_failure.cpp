// Ablation — node failures (Assumption 5 relaxed).
//
// The paper freezes the topology ("a stable snapshot of the system") and
// notes that dynamics "can be captured by the changes in the topology".
// This bench injects per-phase node failures into the packet-level
// simulator and asks the design question the models exist for: does the
// tuned broadcast probability stay useful when nodes die mid-broadcast,
// and does PB's redundancy tolerate failures better than flooding's
// collision-prone eagerness?
#include <memory>

#include "bench_common.hpp"
#include "protocols/probabilistic.hpp"

using namespace nsmodel;
using bench::BenchOptions;

namespace {

double meanReach(const BenchOptions& opts, double rho, double p,
                 double failureRate, int reps) {
  sim::ExperimentConfig cfg;
  cfg.neighborDensity = rho;
  cfg.nodeFailureRate = failureRate;
  double total = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    total += sim::runExperiment(
                 cfg,
                 [p] {
                   return std::make_unique<protocols::ProbabilisticBroadcast>(
                       p);
                 },
                 opts.seed, rep)
                 .reachabilityAfter(5.0);
  }
  return total / reps;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("Ablation", "per-phase node failures during the broadcast");
  const core::MetricSpec spec = core::MetricSpec::reachabilityUnderLatency(5.0);
  const int reps = opts.fast ? 8 : 20;
  const double rho = 100.0;

  const auto best = bench::paperModel(rho).optimize(spec);
  const double tunedP = best->probability;
  std::printf("rho = %.0f, tuned p* = %.2f (failure-free analysis)\n\n", rho,
              tunedP);

  support::TablePrinter table({"failure rate/phase", "flooding (p=1)",
                               "tuned p*", "tuned advantage"});
  for (double rate : {0.0, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    const double flood = meanReach(opts, rho, 1.0, rate, reps);
    const double tuned = meanReach(opts, rho, tunedP, rate, reps);
    table.addRow({support::formatDouble(rate, 2),
                  support::formatDouble(flood, 3),
                  support::formatDouble(tuned, 3),
                  support::formatDouble(tuned - flood, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nTakeaway: the tuned p keeps its edge under mild failure rates\n"
      "(up to ~5%%/phase), but there is a crossover — under heavy attrition\n"
      "flooding's raw redundancy beats collision-optimised efficiency,\n"
      "because dead relays, not collisions, become the binding loss. A\n"
      "failure-aware design should therefore raise p with the expected\n"
      "failure rate; the failure-free analysis is a sound basis only for\n"
      "mildly dynamic networks.\n");
  return 0;
}
