// Data gathering over the unicast primitive: CFM's promise vs CAM's
// reality (Section 3.2's second primitive, on the workload the paper's
// related work motivates).
//
// Under CFM, concurrent receptions all succeed (implicit multi-packet
// reception) and no transmission is ever wasted: completion is bounded by
// the largest subtree a sink child must drain (one packet per phase), and
// every report costs exactly one transmission per hop.  Under CAM the
// same schedule pays collisions on top: completion stretches severalfold,
// each report costs several transmissions, and fire-and-forget unicast
// loses most reports at high density.  The transmit probability plays
// PB's role: a moderate value beats eager transmission once collisions
// exist.
#include "bench_common.hpp"
#include "sim/convergecast.hpp"

using namespace nsmodel;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("Convergecast", "data gathering: CFM promise vs CAM reality");
  const int reps = opts.fast ? 3 : 5;
  const std::vector<double> rhos =
      opts.fast ? std::vector<double>{20.0, 60.0}
                : std::vector<double>{20.0, 40.0, 60.0, 80.0};

  const int maxPhases = opts.fast ? 8000 : 30000;
  support::TablePrinter table({"rho", "N", "depth", "CFM phases",
                               "CAM phases", "CAM delivered",
                               "CAM tx/report", "fire&forget delivery"});
  for (double rho : rhos) {
    double depth = 0.0, cfmPhases = 0.0, camPhases = 0.0, camTx = 0.0;
    double camRatio = 0.0, ffRatio = 0.0, nodes = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      sim::ConvergecastConfig cfg;
      cfg.base.neighborDensity = rho;
      cfg.maxPhases = maxPhases;
      cfg.transmitProbability = 1.0;
      cfg.base.channel = net::ChannelModel::CollisionFree;
      const auto cfm = sim::runConvergecast(cfg, opts.seed, rep);

      cfg.base.channel = net::ChannelModel::CollisionAware;
      cfg.transmitProbability = 0.15;  // eager q collapses; see the sweep
      const auto cam = sim::runConvergecast(cfg, opts.seed, rep);

      sim::ConvergecastConfig ff = cfg;
      ff.oracleFeedback = false;
      const auto fire = sim::runConvergecast(ff, opts.seed, rep);

      nodes += static_cast<double>(cfm.nodeCount);
      depth += cfm.treeDepth;
      cfmPhases += cfm.completionPhases;
      camPhases += cam.completionPhases;
      camRatio += cam.deliveryRatio();
      camTx += static_cast<double>(cam.transmissions) /
               static_cast<double>(
                   std::max<std::size_t>(1, cam.reportsDelivered));
      ffRatio += fire.deliveryRatio();
    }
    const double r = reps;
    table.addRow({support::formatDouble(rho, 0),
                  support::formatDouble(nodes / r, 0),
                  support::formatDouble(depth / r, 1),
                  support::formatDouble(cfmPhases / r, 1),
                  support::formatDouble(camPhases / r, 1),
                  support::formatDouble(camRatio / r, 3),
                  support::formatDouble(camTx / r, 1),
                  support::formatDouble(ffRatio / r, 3)});
  }
  table.print(std::cout);

  // The unicast analogue of the paper's p sweep: transmit probability vs
  // completion time under CAM at one density.
  const double rho = 60.0;
  support::TablePrinter sweep(
      {"q", "delivered", "completion phases", "tx per report"});
  for (double q : {0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0}) {
    double phases = 0.0, tx = 0.0, ratio = 0.0;
    bool allDrained = true;
    for (int rep = 0; rep < reps; ++rep) {
      sim::ConvergecastConfig cfg;
      cfg.base.neighborDensity = rho;
      cfg.maxPhases = maxPhases;
      cfg.transmitProbability = q;
      const auto run = sim::runConvergecast(cfg, opts.seed, rep);
      phases += run.completionPhases;
      ratio += run.deliveryRatio();
      allDrained = allDrained && run.drained;
      tx += static_cast<double>(run.transmissions) /
            static_cast<double>(std::max<std::size_t>(1,
                                                      run.reportsDelivered));
    }
    sweep.addRow({support::formatDouble(q, 2),
                  support::formatDouble(ratio / reps, 3),
                  allDrained ? support::formatDouble(phases / reps, 1)
                             : std::string("> cap"),
                  support::formatDouble(tx / reps, 1)});
  }
  std::printf("\ntransmit-probability sweep under CAM (rho = %.0f)\n", rho);
  sweep.print(std::cout);
  std::printf(
      "\nTakeaway: CFM pays exactly one transmission per report per hop\n"
      "and finishes as fast as the sink's children can drain their\n"
      "subtrees, while CAM stretches completion severalfold and burns\n"
      "multiple transmissions per report; as with broadcasting, a tuned\n"
      "transmit probability beats eager transmission once collisions are\n"
      "modelled.\n");
  return 0;
}
