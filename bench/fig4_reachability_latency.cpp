// Fig. 4 — analytic reachability of PB_CAM within 5 time phases.
//
// (a) reachability as a function of rho and p (bell curve in p; the p = 1
//     column is simple flooding under CAM);
// (b) the optimal probability per rho with the corresponding reachability
//     (optimal p decreases rapidly with rho; the optimal reachability is
//     nearly flat in rho).
#include "bench_common.hpp"

using namespace nsmodel;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("Figure 4", "analytic reachability of PB_CAM in 5 phases");
  const core::MetricSpec spec = core::MetricSpec::reachabilityUnderLatency(5.0);

  // (a): reachability series over p, one column per rho.
  std::vector<std::string> header{"p"};
  for (double rho : opts.rhos()) {
    header.push_back("rho=" + support::formatDouble(rho, 0));
  }
  support::TablePrinter table(header);
  const auto grid = opts.analyticGrid();
  for (double p : grid.values()) {
    // Print a readable subset of the 100-point grid.
    const int centi = static_cast<int>(p * 100.0 + 0.5);
    if (centi % 5 != 0 && centi != 1 && centi != 2) continue;
    std::vector<std::string> row{support::formatDouble(p, 2)};
    for (double rho : opts.rhos()) {
      const auto trace = bench::paperModel(rho).predict(p);
      row.push_back(
          support::formatDouble(*core::evaluateMetric(spec, trace), 3));
    }
    table.addRow(row);
  }
  std::printf("(a) reachability within 5 phases vs p (columns: rho)\n");
  table.print(std::cout);

  // (b): optimal probability and the reachability it attains.
  support::TablePrinter optima({"rho", "optimal p", "reachability",
                                "flooding (p=1)"});
  for (double rho : opts.rhos()) {
    const core::NetworkModel model = bench::paperModel(rho);
    const auto best = model.optimize(spec, grid);
    const double flooding =
        *core::evaluateMetric(spec, model.predict(1.0));
    optima.addRow({support::formatDouble(rho, 0),
                   support::formatDouble(best->probability, 2),
                   support::formatDouble(best->value, 3),
                   support::formatDouble(flooding, 3)});
  }
  std::printf("\n(b) optimal probability per rho\n");
  optima.print(std::cout);
  std::printf(
      "\nPaper shape: p* decreases rapidly with rho; the optimal\n"
      "reachability is ~flat in rho (paper: ~0.72); flooding at rho=140 is\n"
      "~0.55x the optimum.\n");
  return 0;
}
