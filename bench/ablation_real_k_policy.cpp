// Ablation — how the extension of mu(K, s) to real K (a detail Eq. 4
// leaves unspecified) affects the reproduced figures.
//
// Interpolate: linear interpolation between integer arguments (the minimal
// reading of the paper).  Poisson: treat the transmitter count as Poisson,
// which collapses to a closed form and matches a Poisson point process
// deployment exactly.  Both are compared against the packet-level
// simulation at the per-policy optimum.
#include "bench_common.hpp"

using namespace nsmodel;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("Ablation", "real-K policy for mu (Interpolate vs Poisson)");
  const core::MetricSpec spec = core::MetricSpec::reachabilityUnderLatency(5.0);
  const auto grid = opts.analyticGrid();

  support::TablePrinter table({"rho", "interp p*", "interp reach",
                               "poisson p*", "poisson reach", "sim @interp p*",
                               "sim @poisson p*"});
  for (double rho : opts.rhos()) {
    const core::NetworkModel model = bench::paperModel(rho);
    const auto interp =
        model.optimize(spec, grid, analytic::RealKPolicy::Interpolate);
    const auto poisson =
        model.optimize(spec, grid, analytic::RealKPolicy::Poisson);
    const auto simInterp = model.measure(interp->probability, spec, opts.seed,
                                         opts.replications);
    const auto simPoisson = model.measure(poisson->probability, spec,
                                          opts.seed, opts.replications);
    table.addRow({support::formatDouble(rho, 0),
                  support::formatDouble(interp->probability, 2),
                  support::formatDouble(interp->value, 3),
                  support::formatDouble(poisson->probability, 2),
                  support::formatDouble(poisson->value, 3),
                  bench::cell(simInterp, 3), bench::cell(simPoisson, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nTakeaway: both policies agree on the figure shapes (p* decreasing,\n"
      "flat plateau); Poisson is slightly less optimistic in absolute\n"
      "reachability. The choice does not change any of the paper's\n"
      "conclusions.\n");
  return 0;
}
