// Fig. 11 — simulated reachability of PB_CAM under a broadcast budget.
//
// The paper allows 80 broadcasts (the Fig. 10 optimum); the budget here is
// derived the same way from our own Fig. 10 pre-pass.  Shape claims: the
// budget-optimal p stays within ~0.2 across the density range (duality
// with Fig. 10) and flooding exhausts the budget almost immediately.
#include <algorithm>
#include <cmath>

#include "bench_common.hpp"

using namespace nsmodel;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("Figure 11", "simulated reachability under a broadcast budget");

  // Pre-pass 1: the Fig. 8 plateau target.
  const int preReps = std::max(4, opts.replications / 3);
  const auto pre = bench::simSweep(
      opts, core::MetricSpec::reachabilityUnderLatency(5.0), preReps);
  double target = 1.0;
  for (const auto& row : pre) {
    const auto best = bench::sweepOptimum(
        opts, row, core::MetricKind::ReachabilityUnderLatency);
    if (best) target = std::min(target, best->value);
  }
  target = std::floor(target * 50.0) / 50.0 - 0.02;

  // Pre-pass 2: the largest per-rho Fig. 10 optimum becomes the budget.
  const auto energyPre = bench::simSweep(
      opts, core::MetricSpec::energyUnderReachability(target), preReps);
  double budget = 0.0;
  for (const auto& row : energyPre) {
    const auto best = bench::sweepOptimum(
        opts, row, core::MetricKind::EnergyUnderReachability);
    if (best) budget = std::max(budget, best->value);
  }
  budget = std::ceil(budget / 5.0) * 5.0;
  std::printf("broadcast budget (max Fig. 10 optimum, rounded): %.0f\n\n",
              budget);

  const core::MetricSpec spec =
      core::MetricSpec::reachabilityUnderEnergy(budget);
  const auto sweep = bench::simSweep(opts, spec);
  std::printf("(a) mean reachability within the budget vs p (%d runs)\n",
              opts.replications);
  bench::printSimSweep(opts, sweep);

  support::TablePrinter optima(
      {"rho", "optimal p", "reachability", "flooding (p=1)"});
  const auto rhos = opts.rhos();
  for (std::size_t i = 0; i < rhos.size(); ++i) {
    const auto best = bench::sweepOptimum(opts, sweep[i], spec.kind);
    optima.addRow({support::formatDouble(rhos[i], 0),
                   best ? support::formatDouble(best->probability, 2) : "-",
                   best ? support::formatDouble(best->value, 3) : "-",
                   bench::cell(sweep[i].back(), 3)});
  }
  std::printf("\n(b) budget-optimal probability per rho\n");
  optima.print(std::cout);
  std::printf(
      "\nPaper shape: optimal p within ~0.2 across rho (duality with\n"
      "Fig. 10); flooding burns the budget in the first relay wave and\n"
      "reaches only a small fraction at high density.\n");
  return 0;
}
