// Fig. 6 — analytic energy cost (number of broadcasts M) of PB_CAM for a
// fixed reachability constraint.
//
// Paper findings reproduced here: M increases with both rho and p; the
// energy-optimal p varies slowly within (0, ~0.1] over the whole density
// range (unlike the latency-optimal p of Fig. 4/5); the latency at the
// energy optimum is much larger (paper: 7-15 phases); and the optimal
// broadcast count is a tiny fraction of flooding's.
#include <algorithm>

#include "bench_common.hpp"

using namespace nsmodel;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("Figure 6", "analytic #broadcasts for a reachability constraint");
  const auto grid = opts.analyticGrid();

  // Same constraint derivation as Fig. 5 (the Fig. 4(b) plateau).
  double target = 1.0;
  const core::MetricSpec reachSpec =
      core::MetricSpec::reachabilityUnderLatency(5.0);
  for (double rho : opts.rhos()) {
    target = std::min(
        target, bench::paperModel(rho).optimize(reachSpec, grid)->value);
  }
  target -= 1e-6;
  std::printf("reachability constraint: %.3f\n\n", target);
  const core::MetricSpec spec =
      core::MetricSpec::energyUnderReachability(target);

  std::vector<std::string> header{"p"};
  for (double rho : opts.rhos()) {
    header.push_back("rho=" + support::formatDouble(rho, 0));
  }
  support::TablePrinter table(header);
  for (double p : grid.values()) {
    const int centi = static_cast<int>(p * 100.0 + 0.5);
    if (centi % 5 != 0 && centi != 1 && centi != 2) continue;
    std::vector<std::string> row{support::formatDouble(p, 2)};
    for (double rho : opts.rhos()) {
      row.push_back(
          bench::cell(core::evaluateMetric(spec,
                                           bench::paperModel(rho).predict(p)),
                      1));
    }
    table.addRow(row);
  }
  std::printf("(a) broadcasts to reach the target vs p ('-' = infeasible)\n");
  table.print(std::cout);

  support::TablePrinter optima({"rho", "optimal p", "broadcasts",
                                "latency@opt", "flooding bcasts"});
  for (double rho : opts.rhos()) {
    const core::NetworkModel model = bench::paperModel(rho);
    const auto best = model.optimize(spec, grid);
    std::string latencyCell = "-";
    if (best) {
      const auto trace = model.predict(best->probability);
      latencyCell = bench::cell(trace.latencyForReachability(target), 1);
    }
    const auto flooding = core::evaluateMetric(spec, model.predict(1.0));
    optima.addRow({support::formatDouble(rho, 0),
                   best ? support::formatDouble(best->probability, 2) : "-",
                   best ? support::formatDouble(best->value, 1) : "-",
                   latencyCell, bench::cell(flooding, 1)});
  }
  std::printf("\n(b) energy-optimal probability per rho\n");
  optima.print(std::cout);
  std::printf(
      "\nPaper shape: the energy-optimal p stays within (0, ~0.1] across\n"
      "the whole density range; the latency it pays is several-fold the\n"
      "5-phase optimum (paper: 7-15 phases); the optimal broadcast count\n"
      "is a small constant vs ~N for flooding.\n");
  return 0;
}
