// Fig. 9 — simulated latency of PB_CAM for a fixed reachability target.
//
// The paper fixes the target at 63%, its simulated Fig. 8 plateau; we
// derive the analogous plateau from a light pre-pass so the constraint is
// feasible at every density.  Shape claims: the latency-optimal p is very
// close to Fig. 8(b)'s and the latency it attains is ~5 phases.
#include <algorithm>
#include <cmath>

#include "bench_common.hpp"

using namespace nsmodel;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("Figure 9", "simulated latency for a reachability target");

  // Pre-pass (fewer runs): the per-rho optimal 5-phase reachability; the
  // target is the smallest plateau value, rounded down a little.
  const auto pre = bench::simSweep(
      opts, core::MetricSpec::reachabilityUnderLatency(5.0),
      std::max(4, opts.replications / 3));
  double target = 1.0;
  for (const auto& row : pre) {
    const auto best = bench::sweepOptimum(
        opts, row, core::MetricKind::ReachabilityUnderLatency);
    if (best) target = std::min(target, best->value);
  }
  target = std::floor(target * 50.0) / 50.0 - 0.02;
  std::printf("reachability target (derived Fig. 8 plateau): %.2f\n\n",
              target);

  const core::MetricSpec spec =
      core::MetricSpec::latencyUnderReachability(target);
  const auto sweep = bench::simSweep(opts, spec);
  std::printf(
      "(a) mean latency in phases vs p (%d runs/point; '-' = target\n"
      "    unreached in most runs)\n",
      opts.replications);
  bench::printSimSweep(opts, sweep, 2);

  support::TablePrinter optima(
      {"rho", "optimal p", "latency", "flooding latency"});
  const auto rhos = opts.rhos();
  for (std::size_t i = 0; i < rhos.size(); ++i) {
    const auto best = bench::sweepOptimum(opts, sweep[i], spec.kind);
    optima.addRow({support::formatDouble(rhos[i], 0),
                   best ? support::formatDouble(best->probability, 2) : "-",
                   best ? support::formatDouble(best->value, 2) : "-",
                   bench::cell(sweep[i].back(), 2)});
  }
  std::printf("\n(b) optimal probability per rho\n");
  optima.print(std::cout);
  std::printf(
      "\nPaper shape: optimal p ~ Fig. 8(b)'s optimal p (duality) and the\n"
      "latency at the optimum is ~5 phases for every rho.\n");
  return 0;
}
