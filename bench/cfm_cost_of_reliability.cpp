// The price of the CFM guarantee (Section 3.2.1 + Section 6 future work).
//
// CFM treats a broadcast as an atomic, guaranteed operation.  The naive
// implementation over a CSMA/CA-style collision-aware layer acknowledges
// every broadcast from every receiver and retransmits until confirmed.
// This bench measures that implementation with the packet-level simulator
// (with binary exponential backoff and ACK spreading — without them the
// protocol collapses into a broadcast storm) and compares it against
//   * plain CAM flooding (1 data packet per node, no guarantee), and
//   * the analytic density-dependent cost model t_f(rho), e_f(rho).
//
// The paper's qualitative claim — CFM's cost functions hide a large,
// density-growing constant — appears as packets-per-node growing from
// O(10^2) to O(10^3) while plain flooding stays at exactly 1.
#include "bench_common.hpp"
#include "core/cfm_cost.hpp"
#include "sim/reliable.hpp"

using namespace nsmodel;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("CFM cost", "what guaranteed delivery costs over CAM");

  // Analytic model: expected rounds and packets per *single* guaranteed
  // broadcast, as the interference level seen during recovery varies.
  const core::ReliableCostModel model(3);
  support::TablePrinter analytic({"rho", "interferers", "q/link", "rounds",
                                  "packets/broadcast"});
  for (double rho : {20.0, 60.0, 120.0}) {
    for (double interferers : {1.0, 3.0, 6.0}) {
      const auto cost = model.broadcastCost(rho, interferers);
      analytic.addRow({support::formatDouble(rho, 0),
                       support::formatDouble(interferers, 0),
                       support::formatDouble(cost.perLinkSuccess, 3),
                       support::formatDouble(cost.rounds, 1),
                       support::formatDouble(cost.totalPackets, 1)});
    }
  }
  std::printf("analytic per-broadcast cost (s = 3)\n");
  analytic.print(std::cout);

  // Simulated network-wide reliable flood vs plain CAM flooding.
  const std::vector<double> rhos =
      opts.fast ? std::vector<double>{20.0} : std::vector<double>{20.0, 40.0,
                                                                  60.0};
  const int reps = opts.fast ? 1 : 3;
  support::TablePrinter table({"rho", "mode", "reach", "confirmed",
                               "data/node", "ack/node", "pkts/node",
                               "delivery lat"});
  for (double rho : rhos) {
    sim::ReliableBroadcastConfig cfg;
    cfg.base.neighborDensity = rho;
    for (const bool acks : {true, false}) {
      double data = 0.0, ack = 0.0, reach = 0.0, lat = 0.0, confirmed = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        sim::ReliableBroadcastConfig run = cfg;
        run.simulateAcks = acks;
        const auto result =
            sim::runReliableBroadcast(run, opts.seed, rep);
        const double n = static_cast<double>(result.nodeCount);
        data += static_cast<double>(result.dataTransmissions) / n;
        ack += static_cast<double>(result.ackTransmissions) / n;
        reach += result.reachability();
        lat += result.deliveryLatencyPhases;
        confirmed += result.allAcknowledged ? 1.0 : 0.0;
      }
      const double r = reps;
      table.addRow({support::formatDouble(rho, 0),
                    acks ? "simulated ACKs" : "oracle ACKs",
                    support::formatDouble(reach / r, 3),
                    support::formatDouble(confirmed / r, 2),
                    support::formatDouble(data / r, 1),
                    support::formatDouble(ack / r, 1),
                    support::formatDouble((data + ack) / r, 1),
                    support::formatDouble(lat / r, 1)});
    }
    // Plain CAM flooding baseline: exactly one data packet per reached
    // node and no guarantee.
    table.addRow({support::formatDouble(rho, 0), "plain CAM flood", "~1.0*",
                  "0.00", "1.0", "0.0", "1.0", "~P"});
  }
  std::printf("\nsimulated reliable flooding (BEB + spread ACKs)\n");
  table.print(std::cout);
  std::printf(
      "\n(*) plain flooding reaches ~everyone eventually but guarantees\n"
      "nothing. Takeaway: the CFM abstraction's guarantee costs two to\n"
      "three orders of magnitude more packets per node than one CAM\n"
      "broadcast, and the multiplier grows with density — the reason the\n"
      "paper models t_f/e_f as density-dependent cost functions.\n");
  return 0;
}
