// Fig. 7 — analytic reachability of PB_CAM under a broadcast budget.
//
// The paper allows 35 broadcasts (slightly below its Fig. 6 optima, which
// stay "within 40"); our budget is derived the same way — a small headroom
// above the largest per-rho energy optimum — so the experiment stays
// feasible at every density.  Shape claims: the budget-optimal p is close
// to the energy-optimal p of Fig. 6 (duality), the optimal reachability
// approaches the constraint target, and flooding achieves very little
// before exhausting the budget.
#include <algorithm>
#include <cmath>

#include "bench_common.hpp"

using namespace nsmodel;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("Figure 7", "analytic reachability under a broadcast budget");
  const auto grid = opts.analyticGrid();

  // Derive the budget from our Fig. 6: the largest per-rho optimal
  // broadcast count (paper: optima < 40, budget 35).
  double target = 1.0;
  const core::MetricSpec reachSpec =
      core::MetricSpec::reachabilityUnderLatency(5.0);
  for (double rho : opts.rhos()) {
    target = std::min(
        target, bench::paperModel(rho).optimize(reachSpec, grid)->value);
  }
  target -= 1e-6;
  double budget = 0.0;
  for (double rho : opts.rhos()) {
    const auto best = bench::paperModel(rho).optimize(
        core::MetricSpec::energyUnderReachability(target), grid);
    if (best) budget = std::max(budget, best->value);
  }
  budget = std::ceil(budget);
  std::printf("broadcast budget (max Fig. 6 optimum, rounded up): %.0f\n\n",
              budget);
  const core::MetricSpec spec =
      core::MetricSpec::reachabilityUnderEnergy(budget);

  std::vector<std::string> header{"p"};
  for (double rho : opts.rhos()) {
    header.push_back("rho=" + support::formatDouble(rho, 0));
  }
  support::TablePrinter table(header);
  for (double p : grid.values()) {
    const int centi = static_cast<int>(p * 100.0 + 0.5);
    if (centi % 5 != 0 && centi != 1 && centi != 2) continue;
    std::vector<std::string> row{support::formatDouble(p, 2)};
    for (double rho : opts.rhos()) {
      row.push_back(support::formatDouble(
          *core::evaluateMetric(spec, bench::paperModel(rho).predict(p)),
          3));
    }
    table.addRow(row);
  }
  std::printf("(a) reachability within the budget vs p\n");
  table.print(std::cout);

  support::TablePrinter optima(
      {"rho", "optimal p", "reachability", "flooding (p=1)"});
  for (double rho : opts.rhos()) {
    const core::NetworkModel model = bench::paperModel(rho);
    const auto best = model.optimize(spec, grid);
    const double flooding =
        *core::evaluateMetric(spec, model.predict(1.0));
    optima.addRow({support::formatDouble(rho, 0),
                   support::formatDouble(best->probability, 2),
                   support::formatDouble(best->value, 3),
                   support::formatDouble(flooding, 3)});
  }
  std::printf("\n(b) budget-optimal probability per rho\n");
  optima.print(std::cout);
  std::printf(
      "\nPaper shape: the optimal p is near 0 and close to Fig. 6(b)'s\n"
      "(duality); the optimal reachability is ~the constraint target\n"
      "(paper: ~0.70) while flooding stays under ~0.20.\n");
  return 0;
}
