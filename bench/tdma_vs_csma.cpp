// Section 3.2.1's two CFM implementations, quantified.
//
// CFM can be realised over a collision-aware link layer either by
// acknowledgements + retransmission (bench/cfm_cost_of_reliability: pays
// *energy*, 2-3 orders of magnitude packets per node) or by TDMA with
// neighbourhood-unique slots (this bench: pays *time*, a frame that grows
// linearly with density).  We build a distance-2 colouring, run flooding
// in its slots over the plain CAM channel, and verify the schedule's
// promise: zero collisions, every connected node reached, exactly one
// transmission per node — at a per-hop latency of one full frame.
#include <memory>

#include "bench_common.hpp"
#include "net/tdma.hpp"
#include "protocols/flooding.hpp"
#include "protocols/tdma_flooding.hpp"

using namespace nsmodel;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("TDMA vs CSMA",
                "the two CFM implementations of Section 3.2.1");
  const int reps = opts.fast ? 4 : 10;

  support::TablePrinter table(
      {"rho", "frame len", "tdma reach", "tdma collisions",
       "tdma latency (slots)", "csma reach@same time", "csma final reach"});
  for (double rho : opts.rhos()) {
    double frame = 0.0, tdmaReach = 0.0, tdmaSlots = 0.0;
    double csmaAtSameTime = 0.0, csmaFinal = 0.0;
    std::uint64_t collisions = 0;
    for (int rep = 0; rep < reps; ++rep) {
      support::Rng rng = support::Rng::forStream(opts.seed, rep);
      const net::Deployment dep =
          net::Deployment::paperDisk(rng, 5, 1.0, rho);
      const net::Topology topo(dep, 1.0);
      const net::TdmaSchedule schedule = net::buildTdmaSchedule(topo);
      frame += schedule.frameLength;

      sim::ExperimentConfig tdmaCfg;
      tdmaCfg.neighborDensity = rho;
      tdmaCfg.slotsPerPhase = schedule.frameLength;
      protocols::TdmaFlooding tdma(schedule);
      const auto tdmaRun =
          sim::runBroadcast(tdmaCfg, dep, topo, tdma, rng);
      tdmaReach += tdmaRun.finalReachability();
      for (const auto& phase : tdmaRun.phases()) {
        collisions += phase.lostReceivers;
      }
      const auto tdmaLatency = tdmaRun.latencyForReachability(
          0.99 * tdmaRun.finalReachability());
      const double slots =
          (tdmaLatency ? *tdmaLatency : 0.0) * schedule.frameLength;
      tdmaSlots += slots;

      // CSMA comparison: jittered flooding with the paper's s = 3, given
      // the same wall-clock budget in slots.
      sim::ExperimentConfig csmaCfg;
      csmaCfg.neighborDensity = rho;
      protocols::SimpleFlooding csma;
      support::Rng csmaRng = support::Rng::forStream(opts.seed + 1, rep);
      const auto csmaRun =
          sim::runBroadcast(csmaCfg, dep, topo, csma, csmaRng);
      csmaAtSameTime += csmaRun.reachabilityAfter(slots / 3.0);
      csmaFinal += csmaRun.finalReachability();
    }
    const double r = reps;
    table.addRow({support::formatDouble(rho, 0),
                  support::formatDouble(frame / r, 0),
                  support::formatDouble(tdmaReach / r, 3),
                  support::formatDouble(static_cast<double>(collisions), 0),
                  support::formatDouble(tdmaSlots / r, 0),
                  support::formatDouble(csmaAtSameTime / r, 3),
                  support::formatDouble(csmaFinal / r, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nTakeaway: the distance-2 TDMA schedule delivers CFM's guarantee\n"
      "over the CAM channel — zero collisions, full reachability, one\n"
      "transmission per node — but its frame (and so its per-hop latency)\n"
      "grows ~linearly with density, while jittered CSMA flooding covers\n"
      "most of the network in the same wall-clock time without the\n"
      "guarantee. Energy-cheap + slow (TDMA) vs fast + lossy (CSMA) is\n"
      "exactly the trade Section 3.2.1 sketches; acknowledgement-based\n"
      "CFM (bench/cfm_cost_of_reliability) is the third corner: fast-ish\n"
      "but energy-catastrophic.\n");
  return 0;
}
