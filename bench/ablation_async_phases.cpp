// Ablation — aligned vs asynchronous phases.
//
// The paper's analysis assumes perfectly aligned slots "from an
// optimistic perspective"; the protocol itself runs fine without
// synchronization.  This bench quantifies the optimism: in the
// asynchronous execution any interval overlap destroys a reception (a
// ~2-slot vulnerability window instead of an exact slot match), so
// reachability within 5 phases drops and the optimal probability shifts
// further down.
#include <memory>

#include "bench_common.hpp"
#include "sim/async_experiment.hpp"

using namespace nsmodel;
using bench::BenchOptions;

namespace {

double asyncMeanReach(const BenchOptions& opts, double rho, double p,
                      int reps) {
  sim::ExperimentConfig cfg;
  cfg.neighborDensity = rho;
  double total = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto run = sim::runAsyncExperiment(
        cfg,
        [p] { return std::make_unique<protocols::ProbabilisticBroadcast>(p); },
        opts.seed, rep);
    total += run.reachabilityAfter(5.0);
  }
  return total / reps;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("Ablation", "aligned vs asynchronous phases (Section 4.2)");
  const core::MetricSpec spec = core::MetricSpec::reachabilityUnderLatency(5.0);
  const int reps = opts.fast ? 6 : 20;

  // Per-rho: aligned optimum, the same p evaluated asynchronously, and the
  // async-optimal p found on the simulation grid.
  support::TablePrinter table({"rho", "aligned p*", "aligned reach",
                               "async @same p", "async p*", "async reach"});
  for (double rho : opts.rhos()) {
    const core::NetworkModel model = bench::paperModel(rho);
    // Aligned optimum from the simulated sweep.
    double alignedBest = 0.0, alignedP = 0.0;
    double asyncBest = 0.0, asyncP = 0.0;
    for (double p : opts.simulationGrid().values()) {
      const double aligned =
          model.measure(p, spec, opts.seed, reps).stats.mean;
      if (aligned > alignedBest) {
        alignedBest = aligned;
        alignedP = p;
      }
      const double async = asyncMeanReach(opts, rho, p, reps);
      if (async > asyncBest) {
        asyncBest = async;
        asyncP = p;
      }
    }
    const double asyncAtAlignedP =
        asyncMeanReach(opts, rho, alignedP, reps);
    table.addRow({support::formatDouble(rho, 0),
                  support::formatDouble(alignedP, 2),
                  support::formatDouble(alignedBest, 3),
                  support::formatDouble(asyncAtAlignedP, 3),
                  support::formatDouble(asyncP, 2),
                  support::formatDouble(asyncBest, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nTakeaway: the aligned analysis is optimistic — interval-overlap\n"
      "collisions cut the 5-phase reachability and push the optimal p\n"
      "lower — but the paper's structural findings (p* decreasing in rho,\n"
      "near-flat optimal reachability) hold in the asynchronous execution\n"
      "too, supporting the claim that algorithms designed for the worst\n"
      "case of asynchrony can be analysed under synchronization.\n");
  return 0;
}
