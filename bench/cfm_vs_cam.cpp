// Section 1/4 motivation — what CFM predicts for simple flooding vs what
// a collision-aware network delivers.
//
// CFM's closed form says flooding reaches everyone in P phases with N
// broadcasts; under CAM the same algorithm loses most of its 5-phase
// reachability to collisions as density grows.  This is the gap that
// motivates collision-aware modelling.
#include "bench_common.hpp"
#include "core/cfm_analysis.hpp"

using namespace nsmodel;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("CFM vs CAM",
                "simple flooding: CFM closed form vs CAM reality");
  const core::MetricSpec spec = core::MetricSpec::reachabilityUnderLatency(5.0);

  support::TablePrinter table({"rho", "N", "CFM reach", "CFM latency",
                               "CFM bcasts", "CAM analytic reach",
                               "CAM sim reach", "CAM sim bcasts"});
  for (double rho : opts.rhos()) {
    const core::NetworkModel model = bench::paperModel(rho);
    const auto cfm = core::analyzeFloodingCfm(model.deployment(),
                                              model.commModel().costs(), 3);
    const double analyticReach =
        *core::evaluateMetric(spec, model.predict(1.0));
    const auto simReach =
        model.measure(1.0, spec, opts.seed, opts.replications);
    sim::MonteCarloConfig mc;
    mc.experiment = model.experimentConfig();
    mc.seed = opts.seed;
    mc.replications = opts.replications;
    const auto bcasts = sim::monteCarlo(
        mc,
        [] { return std::make_unique<protocols::ProbabilisticBroadcast>(1.0); },
        [](const sim::RunResult& run) {
          return std::vector<double>{
              static_cast<double>(run.totalBroadcasts())};
        });
    table.addRow({support::formatDouble(rho, 0),
                  support::formatDouble(model.deployment().expectedNodes(), 0),
                  support::formatDouble(cfm.reachability, 2),
                  support::formatDouble(cfm.latencyPhases, 1),
                  support::formatDouble(cfm.broadcasts, 0),
                  support::formatDouble(analyticReach, 3),
                  bench::cell(simReach, 3),
                  support::formatDouble(bcasts[0].stats.mean, 0)});
  }
  table.print(std::cout);
  std::printf(
      "\nPaper point: CFM's prediction (reach 1.0 within P phases) grows\n"
      "increasingly wrong with density — at rho=140 the CAM simulation\n"
      "reaches under half the network in the same window. Accurate\n"
      "performance analysis requires the collision-aware model.\n");
  return 0;
}
