// Fig. 5 — analytic latency of PB_CAM for a fixed reachability constraint.
//
// The paper fixes the constraint at 72%, the flat optimal-reachability
// plateau of its Fig. 4(b).  Our plateau sits at a slightly different
// absolute level (the mu extension to real arguments is unspecified in the
// paper), so the constraint is derived from our own Fig. 4(b) plateau —
// the shape claims are unchanged: the optimal p equals Fig. 4(b)'s and the
// corresponding latency is ~5 phases for every rho, while flooding needs
// far longer at high density.
#include <algorithm>

#include "bench_common.hpp"

using namespace nsmodel;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("Figure 5", "analytic latency for a reachability constraint");
  const auto grid = opts.analyticGrid();

  // Derive the constraint: the lowest per-rho optimum of Fig. 4(b), so the
  // target is feasible at every density.
  double target = 1.0;
  const core::MetricSpec reachSpec =
      core::MetricSpec::reachabilityUnderLatency(5.0);
  for (double rho : opts.rhos()) {
    const auto best = bench::paperModel(rho).optimize(reachSpec, grid);
    target = std::min(target, best->value);
  }
  target -= 1e-6;
  std::printf("reachability constraint (our Fig. 4(b) plateau): %.3f\n\n",
              target);
  const core::MetricSpec spec =
      core::MetricSpec::latencyUnderReachability(target);

  std::vector<std::string> header{"p"};
  for (double rho : opts.rhos()) {
    header.push_back("rho=" + support::formatDouble(rho, 0));
  }
  support::TablePrinter table(header);
  for (double p : grid.values()) {
    const int centi = static_cast<int>(p * 100.0 + 0.5);
    if (centi % 5 != 0 && centi != 1 && centi != 2) continue;
    std::vector<std::string> row{support::formatDouble(p, 2)};
    for (double rho : opts.rhos()) {
      row.push_back(
          bench::cell(core::evaluateMetric(spec,
                                           bench::paperModel(rho).predict(p)),
                      2));
    }
    table.addRow(row);
  }
  std::printf("(a) latency in phases vs p ('-' = constraint unreachable)\n");
  table.print(std::cout);

  support::TablePrinter optima(
      {"rho", "optimal p", "latency", "flooding latency"});
  for (double rho : opts.rhos()) {
    const core::NetworkModel model = bench::paperModel(rho);
    const auto best = model.optimize(spec, grid);
    const auto flooding = core::evaluateMetric(spec, model.predict(1.0));
    optima.addRow({support::formatDouble(rho, 0),
                   best ? support::formatDouble(best->probability, 2) : "-",
                   best ? support::formatDouble(best->value, 2) : "-",
                   bench::cell(flooding, 2)});
  }
  std::printf("\n(b) optimal probability per rho\n");
  optima.print(std::cout);
  std::printf(
      "\nPaper shape: the optimal p matches Fig. 4(b) (duality) and the\n"
      "latency at the optimum stays ~5 phases for every rho, while\n"
      "flooding needs >8 phases at rho=140.\n");
  return 0;
}
