// Ablation — grid deployments and the percolation threshold.
//
// The paper cites (its ref. [32]) a percolation-theory result: for a grid
// deployment with collision-free communication, the optimal broadcast
// probability is around 0.59 — below the site-percolation threshold of
// the square lattice (~0.5927) the information dies out locally, above it
// the broadcast spans the network.  Our substrates reproduce the
// transition directly: a (jittered) grid deployment, the CFM channel, and
// probability-based broadcasting with unconstrained time.
#include <memory>

#include "bench_common.hpp"
#include "net/topology.hpp"
#include "protocols/probabilistic.hpp"
#include "sim/experiment.hpp"

using namespace nsmodel;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("Ablation", "grid percolation of PB under CFM (ref. [32])");

  const double fieldRadius = opts.fast ? 12.0 : 20.0;
  const int reps = opts.fast ? 10 : 30;
  // Transmission range 1.0 on a unit grid: 4-neighbour (von Neumann)
  // connectivity, the square-lattice site-percolation setting.
  sim::ExperimentConfig cfg;
  cfg.rings = static_cast<int>(fieldRadius);
  cfg.ringWidth = 1.0;
  cfg.channel = net::ChannelModel::CollisionFree;
  cfg.maxPhases = 4000;

  support::TablePrinter table({"p", "mean final reach", "spanning fraction"});
  for (double p = 0.30; p <= 0.901; p += 0.05) {
    double reachSum = 0.0;
    int spanning = 0;
    for (int rep = 0; rep < reps; ++rep) {
      support::Rng rng = support::Rng::forStream(opts.seed, rep);
      const net::Deployment dep =
          net::Deployment::jitteredGrid(rng, fieldRadius, 1.0, 0.0);
      const net::Topology topo(dep, cfg.ringWidth);
      protocols::ProbabilisticBroadcast protocol(p);
      const sim::RunResult run =
          sim::runBroadcast(cfg, dep, topo, protocol, rng);
      reachSum += run.finalReachability();
      // "Spanning": the broadcast escaped the local neighbourhood and
      // covered most of the lattice.
      if (run.finalReachability() > 0.5) ++spanning;
    }
    table.addRow({support::formatDouble(p, 2),
                  support::formatDouble(reachSum / reps, 3),
                  support::formatDouble(static_cast<double>(spanning) / reps,
                                        2)});
  }
  table.print(std::cout);
  std::printf(
      "\nExpected: a sharp transition near the square-lattice site\n"
      "percolation threshold ~0.59 — reachability is near zero below it\n"
      "and approaches the participation fraction above it, matching the\n"
      "grid result the paper cites from [32].\n");
  return 0;
}
