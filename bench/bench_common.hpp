// Shared scaffolding for the figure-reproduction benches.
//
// Every bench binary reproduces one table/figure of the paper with the
// paper's parameters: P = 5 rings, s = 3 slots per phase, rho = 20..140
// step 20, analytic p grid 0.01..1 step 0.01, simulated p grid
// 0.05..1 step 0.05, 30 random runs per simulated point.
//
// Options (shared by all benches):
//   --fast        quarter-size sweep for quick smoke runs
//   --reps=N      override the Monte-Carlo replication count
//   --seed=N      override the master seed (default 42)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/network_model.hpp"
#include "core/optimizer.hpp"
#include "protocols/probabilistic.hpp"
#include "sim/monte_carlo.hpp"
#include "support/table.hpp"

namespace nsmodel::bench {

struct BenchOptions {
  bool fast = false;
  int replications = 30;   // the paper's 30 random runs
  std::uint64_t seed = 42;

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--fast") {
        opts.fast = true;
        opts.replications = 6;
      } else if (arg.rfind("--reps=", 0) == 0) {
        opts.replications = std::stoi(arg.substr(7));
      } else if (arg.rfind("--seed=", 0) == 0) {
        opts.seed = std::stoull(arg.substr(7));
      } else {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      }
    }
    return opts;
  }

  /// The paper's density axis (average neighbours per node).
  std::vector<double> rhos() const {
    if (fast) return {20.0, 80.0, 140.0};
    return {20.0, 40.0, 60.0, 80.0, 100.0, 120.0, 140.0};
  }

  /// Probability axis for analytic sweeps.
  core::ProbabilityGrid analyticGrid() const {
    return fast ? core::ProbabilityGrid{0.02, 1.0, 0.02}
                : core::ProbabilityGrid::analytic();
  }

  /// Probability axis for simulated sweeps.
  core::ProbabilityGrid simulationGrid() const {
    return fast ? core::ProbabilityGrid{0.1, 1.0, 0.1}
                : core::ProbabilityGrid::simulation();
  }
};

/// The paper's network model at density rho under the given channel.
inline core::NetworkModel paperModel(
    double rho,
    core::CommModel comm = core::CommModel::collisionAware()) {
  core::DeploymentSpec spec;
  spec.rings = 5;
  spec.ringWidth = 1.0;
  spec.neighborDensity = rho;
  return core::NetworkModel(spec, comm, /*slotsPerPhase=*/3);
}

/// Monte-Carlo aggregate of one metric at (rho, p); NaN marks runs where
/// the constraint was infeasible.
inline sim::MetricAggregate simulateMetric(const BenchOptions& opts,
                                           const core::NetworkModel& model,
                                           double p,
                                           const core::MetricSpec& spec) {
  return model.measure(p, spec, opts.seed, opts.replications);
}

/// Formats an aggregate as "mean" or "-" when under half the runs were
/// feasible (mirroring the paper's omitted curve segments).
inline std::string cell(const sim::MetricAggregate& agg, int precision = 3) {
  if (agg.definedFraction < 0.5) return "-";
  return support::formatDouble(agg.stats.mean, precision);
}

inline std::string cell(const std::optional<double>& value,
                        int precision = 3) {
  if (!value) return "-";
  return support::formatDouble(*value, precision);
}

/// One full simulated sweep: aggregate of `spec` at every (rho, p) of the
/// paper's grids. Row i = rhos()[i], column j = simulationGrid()[j].
inline std::vector<std::vector<sim::MetricAggregate>> simSweep(
    const BenchOptions& opts, const core::MetricSpec& spec,
    int replicationOverride = 0,
    core::CommModel comm = core::CommModel::collisionAware()) {
  const int reps =
      replicationOverride > 0 ? replicationOverride : opts.replications;
  std::vector<std::vector<sim::MetricAggregate>> rows;
  for (double rho : opts.rhos()) {
    const core::NetworkModel model = paperModel(rho, comm);
    std::vector<sim::MetricAggregate> row;
    for (double p : opts.simulationGrid().values()) {
      row.push_back(model.measure(p, spec, opts.seed, reps));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Best feasible grid point of one sweep row under the metric's direction;
/// cells with under half the runs feasible are skipped (paper: not shown).
inline std::optional<core::Optimum> sweepOptimum(
    const BenchOptions& opts, const std::vector<sim::MetricAggregate>& row,
    core::MetricKind kind) {
  const auto grid = opts.simulationGrid().values();
  std::optional<core::Optimum> best;
  for (std::size_t j = 0; j < grid.size(); ++j) {
    if (row[j].definedFraction < 0.5) continue;
    const double value = row[j].stats.mean;
    if (!best || core::isBetter(kind, value, best->value)) {
      best = core::Optimum{grid[j], value};
    }
  }
  return best;
}

/// Prints the (a)-style table of a simulated sweep: p rows, rho columns.
inline void printSimSweep(const BenchOptions& opts,
                          const std::vector<std::vector<sim::MetricAggregate>>&
                              sweep,
                          int precision = 3) {
  std::vector<std::string> header{"p"};
  for (double rho : opts.rhos()) {
    header.push_back("rho=" + support::formatDouble(rho, 0));
  }
  support::TablePrinter table(header);
  const auto grid = opts.simulationGrid().values();
  for (std::size_t j = 0; j < grid.size(); ++j) {
    std::vector<std::string> row{support::formatDouble(grid[j], 2)};
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      row.push_back(cell(sweep[i][j], precision));
    }
    table.addRow(row);
  }
  table.print(std::cout);
}

/// Prints a banner naming the reproduced figure.
inline void banner(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("==============================================================\n");
}

}  // namespace nsmodel::bench
