// Shared scaffolding for the figure-reproduction benches.
//
// Every bench binary reproduces one table/figure of the paper with the
// paper's parameters: P = 5 rings, s = 3 slots per phase, rho = 20..140
// step 20, analytic p grid 0.01..1 step 0.01, simulated p grid
// 0.05..1 step 0.05, 30 random runs per simulated point.
//
// Options (shared by all benches):
//   --fast        quarter-size sweep for quick smoke runs
//   --reps=N      override the Monte-Carlo replication count
//   --seed=N      override the master seed (default 42)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "core/network_model.hpp"
#include "core/optimizer.hpp"
#include "protocols/probabilistic.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/run_workspace.hpp"
#include "sim/scenario_cache.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace nsmodel::bench {

struct BenchOptions {
  bool fast = false;
  int replications = 30;   // the paper's 30 random runs
  std::uint64_t seed = 42;
  /// Append the JSON record to the bench's output file instead of
  /// overwriting it (JSONL-style: one record per run).  CI's perf-smoke
  /// lane uses this to collect 1- and 4-thread records in one file.
  bool append = false;
  /// micro_sweep only: skip the regular sections and run the huge-N
  /// sharded demo (>= 10^6 nodes at rho = 140) instead, appending a
  /// separate "micro_sweep_huge" record.  Other benches ignore it.
  bool huge = false;

  /// Parses the shared options.  Unknown options and malformed numeric
  /// values are fatal (exit code 2) so a typo cannot silently run the
  /// full-size sweep with default parameters.
  static BenchOptions parse(int argc, char** argv) {
    BenchOptions opts;
    const auto die = [](const std::string& message) {
      std::fprintf(stderr, "error: %s\n", message.c_str());
      std::fprintf(
          stderr,
          "usage: [--fast] [--reps=N] [--seed=N] [--append] [--huge]\n");
      std::exit(2);
    };
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--fast") {
        opts.fast = true;
        opts.replications = 6;
      } else if (arg == "--append") {
        opts.append = true;
      } else if (arg == "--huge") {
        opts.huge = true;
      } else if (arg.rfind("--reps=", 0) == 0) {
        const std::uint64_t reps = parseNumber(arg.substr(7), arg, die);
        if (reps < 1 || reps > 1000000) {
          die("--reps requires a count in [1, 1000000]");
        }
        opts.replications = static_cast<int>(reps);
      } else if (arg.rfind("--seed=", 0) == 0) {
        opts.seed = parseNumber(arg.substr(7), arg, die);
      } else {
        die("unknown option: " + arg);
      }
    }
    return opts;
  }

  /// std::stoull with failures routed through `die` (which must not
  /// return) instead of escaping as exceptions.
  template <typename Die>
  static std::uint64_t parseNumber(const std::string& text,
                                   const std::string& arg, const Die& die) {
    try {
      std::size_t used = 0;
      const std::uint64_t value = std::stoull(text, &used);
      if (used != text.size()) die("malformed number in " + arg);
      if (text.find('-') != std::string::npos) {
        die("negative value in " + arg);
      }
      return value;
    } catch (const std::exception&) {
      die("malformed number in " + arg);
    }
    return 0;  // unreachable: die() exits
  }

  /// The paper's density axis (average neighbours per node).
  std::vector<double> rhos() const {
    if (fast) return {20.0, 80.0, 140.0};
    return {20.0, 40.0, 60.0, 80.0, 100.0, 120.0, 140.0};
  }

  /// Probability axis for analytic sweeps.
  core::ProbabilityGrid analyticGrid() const {
    return fast ? core::ProbabilityGrid{0.02, 1.0, 0.02}
                : core::ProbabilityGrid::analytic();
  }

  /// Probability axis for simulated sweeps.
  core::ProbabilityGrid simulationGrid() const {
    return fast ? core::ProbabilityGrid{0.1, 1.0, 0.1}
                : core::ProbabilityGrid::simulation();
  }
};

/// The paper's network model at density rho under the given channel.
inline core::NetworkModel paperModel(
    double rho,
    core::CommModel comm = core::CommModel::collisionAware()) {
  core::DeploymentSpec spec;
  spec.rings = 5;
  spec.ringWidth = 1.0;
  spec.neighborDensity = rho;
  return core::NetworkModel(spec, comm, /*slotsPerPhase=*/3);
}

/// Monte-Carlo aggregate of one metric at (rho, p); NaN marks runs where
/// the constraint was infeasible.
inline sim::MetricAggregate simulateMetric(const BenchOptions& opts,
                                           const core::NetworkModel& model,
                                           double p,
                                           const core::MetricSpec& spec) {
  return model.measure(p, spec, opts.seed, opts.replications);
}

/// Formats an aggregate as "mean" or "-" when under half the runs were
/// feasible (mirroring the paper's omitted curve segments).
inline std::string cell(const sim::MetricAggregate& agg, int precision = 3) {
  if (agg.definedFraction < 0.5) return "-";
  return support::formatDouble(agg.stats.mean, precision);
}

inline std::string cell(const std::optional<double>& value,
                        int precision = 3) {
  if (!value) return "-";
  return support::formatDouble(*value, precision);
}

/// Acceleration knobs for simSweep.  The default-constructed value is the
/// uncached serial reference path (the perf baseline micro_sweep measures
/// against); `sweepAccel()` below is what the figure benches use.
struct SweepAccel {
  sim::ScenarioCache* cache = nullptr;  ///< shared across the whole sweep
  bool parallel = false;                ///< fan (rho, p) points over the pool
  /// Shared run-workspace pool: each cell's replications lease hot
  /// per-run buffers instead of allocating fresh vectors (see
  /// sim/run_workspace.hpp).  Null = private workspace per cell.
  sim::RunWorkspacePool* workspaces = nullptr;
  /// Adaptive replication control (sim/replication_controller.hpp).  The
  /// default is disabled: every cell runs the fixed replication count and
  /// the bit-identity guarantee below holds.  When enabled, each cell
  /// stops at its own realized count and only the first-k-replication
  /// prefix property is preserved.
  sim::AdaptiveReplication adaptive;
};

/// One full simulated sweep: aggregate of `spec` at every (rho, p) of the
/// paper's grids. Row i = rhos()[i], column j = simulationGrid()[j].
/// Whatever the acceleration settings, the table is bit-identical to the
/// serial uncached sweep: scenarios are keyed by (seed, stream,
/// deployment, channel) and every (rho, p) cell lands in its own slot.
inline std::vector<std::vector<sim::MetricAggregate>> simSweep(
    const BenchOptions& opts, const core::MetricSpec& spec,
    const SweepAccel& accel, int replicationOverride = 0,
    core::CommModel comm = core::CommModel::collisionAware()) {
  const int reps =
      replicationOverride > 0 ? replicationOverride : opts.replications;
  const std::vector<double> rhos = opts.rhos();
  const std::vector<double> grid = opts.simulationGrid().values();
  std::vector<std::vector<sim::MetricAggregate>> rows(
      rhos.size(), std::vector<sim::MetricAggregate>(grid.size()));
  if (accel.cache != nullptr || accel.workspaces != nullptr) {
    // Accelerated shape: replication-major per density.  Each
    // replication's scenario is built/fetched once and all grid points
    // run on it while its neighbour tables are cache-hot; the p-major
    // reference below re-streams 30 multi-megabyte topologies from
    // memory for every grid point.  Parallelism (when enabled) chunks
    // the replication axis inside measureSweep.
    for (std::size_t i = 0; i < rhos.size(); ++i) {
      const core::NetworkModel model = paperModel(rhos[i], comm);
      rows[i] = model.measureSweep(grid, spec, opts.seed, reps, accel.cache,
                                   accel.parallel, accel.workspaces,
                                   accel.adaptive);
    }
    return rows;
  }
  const auto evalCell = [&](std::size_t task) {
    const std::size_t i = task / grid.size();
    const std::size_t j = task % grid.size();
    const core::NetworkModel model = paperModel(rhos[i], comm);
    // Replications always run serially inside a sweep: with grid-point
    // parallelism the |rho-grid| x |p-grid| tasks already saturate the
    // pool, and without it the sweep is the serial reference path.
    rows[i][j] = model.measure(grid[j], spec, opts.seed, reps, accel.cache,
                               /*parallelReplications=*/false,
                               accel.workspaces, accel.adaptive);
  };
  const std::size_t tasks = rhos.size() * grid.size();
  if (accel.parallel) {
    support::parallelFor(0, tasks, evalCell, /*chunk=*/1);
  } else {
    for (std::size_t task = 0; task < tasks; ++task) evalCell(task);
  }
  return rows;
}

/// Accelerated sweep with a per-call scenario cache: topologies are built
/// once per (rho, replication) instead of once per (rho, p, replication),
/// and grid points fan out over the shared thread pool.
inline std::vector<std::vector<sim::MetricAggregate>> simSweep(
    const BenchOptions& opts, const core::MetricSpec& spec,
    int replicationOverride = 0,
    core::CommModel comm = core::CommModel::collisionAware()) {
  sim::ScenarioCache cache;
  sim::RunWorkspacePool workspaces;
  return simSweep(opts, spec, SweepAccel{&cache, true, &workspaces},
                  replicationOverride, comm);
}

/// Best feasible grid point of one sweep row under the metric's direction;
/// cells with under half the runs feasible are skipped (paper: not shown).
inline std::optional<core::Optimum> sweepOptimum(
    const BenchOptions& opts, const std::vector<sim::MetricAggregate>& row,
    core::MetricKind kind) {
  const auto grid = opts.simulationGrid().values();
  std::optional<core::Optimum> best;
  for (std::size_t j = 0; j < grid.size(); ++j) {
    if (row[j].definedFraction < 0.5) continue;
    const double value = row[j].stats.mean;
    if (!best || core::isBetter(kind, value, best->value)) {
      best = core::Optimum{grid[j], value};
    }
  }
  return best;
}

/// Prints the (a)-style table of a simulated sweep: p rows, rho columns.
inline void printSimSweep(const BenchOptions& opts,
                          const std::vector<std::vector<sim::MetricAggregate>>&
                              sweep,
                          int precision = 3) {
  std::vector<std::string> header{"p"};
  for (double rho : opts.rhos()) {
    header.push_back("rho=" + support::formatDouble(rho, 0));
  }
  support::TablePrinter table(header);
  const auto grid = opts.simulationGrid().values();
  for (std::size_t j = 0; j < grid.size(); ++j) {
    std::vector<std::string> row{support::formatDouble(grid[j], 2)};
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      row.push_back(cell(sweep[i][j], precision));
    }
    table.addRow(row);
  }
  table.print(std::cout);
}

/// Prints a banner naming the reproduced figure.
inline void banner(const char* figure, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("==============================================================\n");
}

}  // namespace nsmodel::bench
