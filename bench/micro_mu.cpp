// Micro-benchmarks of the analytical kernels: the occupancy probabilities
// (closed form vs recursion), the real-K evaluators, the circle-
// intersection primitive, and one full Eq. 4 recursion.
#include <benchmark/benchmark.h>

#include "analytic/mu.hpp"
#include "analytic/ring_model.hpp"
#include "geom/circle.hpp"

namespace {

using namespace nsmodel;

void BM_MuClosedForm(benchmark::State& state) {
  const auto k = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytic::mu(k, 3));
  }
}
BENCHMARK(BM_MuClosedForm)->Arg(4)->Arg(32)->Arg(140);

void BM_MuRecursive(benchmark::State& state) {
  const auto k = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytic::muRecursive(k, 3));
  }
}
BENCHMARK(BM_MuRecursive)->Arg(4)->Arg(32);

void BM_MuPrimeClosedForm(benchmark::State& state) {
  const auto k = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytic::muPrime(k, 3 * k, 3));
  }
}
BENCHMARK(BM_MuPrimeClosedForm)->Arg(4)->Arg(32)->Arg(140);

void BM_MuRealInterpolate(benchmark::State& state) {
  double lambda = 0.1;
  for (auto _ : state) {
    lambda += 0.37;
    if (lambda > 120.0) lambda = 0.1;
    benchmark::DoNotOptimize(
        analytic::muReal(lambda, 3, analytic::RealKPolicy::Interpolate));
  }
}
BENCHMARK(BM_MuRealInterpolate);

void BM_MuRealPoisson(benchmark::State& state) {
  double lambda = 0.1;
  for (auto _ : state) {
    lambda += 0.37;
    if (lambda > 120.0) lambda = 0.1;
    benchmark::DoNotOptimize(
        analytic::muReal(lambda, 3, analytic::RealKPolicy::Poisson));
  }
}
BENCHMARK(BM_MuRealPoisson);

void BM_LensArea(benchmark::State& state) {
  double d = 0.0;
  for (auto _ : state) {
    d += 0.013;
    if (d > 3.0) d = 0.0;
    benchmark::DoNotOptimize(geom::lensArea(2.0, 1.0, d));
  }
}
BENCHMARK(BM_LensArea);

void BM_RingModelRun(benchmark::State& state) {
  analytic::RingModelConfig cfg;
  cfg.rings = 5;
  cfg.neighborDensity = static_cast<double>(state.range(0));
  cfg.broadcastProb = 0.1;
  const analytic::RingModel model(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.run().finalReachability());
  }
}
BENCHMARK(BM_RingModelRun)->Arg(20)->Arg(140);

void BM_RingModelCarrierSense(benchmark::State& state) {
  analytic::RingModelConfig cfg;
  cfg.rings = 5;
  cfg.neighborDensity = 100.0;
  cfg.broadcastProb = 0.1;
  cfg.channel = analytic::ChannelKind::CarrierSenseAware;
  const analytic::RingModel model(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.run().finalReachability());
  }
}
BENCHMARK(BM_RingModelCarrierSense);

}  // namespace

BENCHMARK_MAIN();
