// micro_sweep — measures the sweep acceleration layer end to end and
// emits BENCH_sweep.json so the perf trajectory is tracked PR over PR.
//
// Two workloads, each run twice from the same binary:
//
//  * simulated sweep: the paper's full (rho, p) Monte-Carlo table
//    (Fig. 8-style, 30 replications) — uncached serial baseline vs.
//    ScenarioCache + grid-point parallelism;
//  * analytic sweep: the Eq. 4 p-grid at every density — MuTable disabled
//    serial baseline vs. MuTable + parallel sweepProbability;
//  * replication throughput: repeated single runs of a dense deployment
//    (rho = 100, N = 2500) through the DES engine vs. the flat slot
//    loop, both on one reused workspace — runs/second of the hot
//    Monte-Carlo inner loop — plus the lockstep batch backend against
//    the flat loop at rho = 100 and at the collision-bound rho = 140,
//    and the SINR cumulative-power kernel (dispatched vs oracle) on the
//    same rho = 140 deployment.
//
// Every accelerated path must reproduce its baseline bit for bit; the
// binary exits non-zero if any does not, so it doubles as a CI smoke
// test.  Options: --fast (quarter-size grids), --reps=N, --seed=N,
// --append (add this run's JSON record instead of overwriting —
// perf-smoke collects 1- and 4-thread records in one file).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analytic/mu_table.hpp"
#include "bench_common.hpp"
#include "net/slot_kernel.hpp"
#include "protocols/probabilistic.hpp"
#include "sim/batch_workspace.hpp"
#include "sim/experiment_batch.hpp"
#include "sim/run_workspace.hpp"
#include "sim/scenario_cache.hpp"
#include "sim/sharded_engine.hpp"
#include "support/resource.hpp"

namespace {

using nsmodel::bench::BenchOptions;
using nsmodel::bench::SweepAccel;
using Clock = std::chrono::steady_clock;

double seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

using SimTable = std::vector<std::vector<nsmodel::sim::MetricAggregate>>;

/// Bitwise equality of two sweep tables (mean, spread, and feasibility of
/// every cell).  "Close enough" is not the bar — the accelerated path
/// replays the exact arithmetic of the baseline.
bool identical(const SimTable& a, const SimTable& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      const auto& x = a[i][j];
      const auto& y = b[i][j];
      if (x.stats.count != y.stats.count || x.stats.mean != y.stats.mean ||
          x.stats.stddev != y.stats.stddev || x.stats.min != y.stats.min ||
          x.stats.max != y.stats.max ||
          x.definedFraction != y.definedFraction) {
        return false;
      }
    }
  }
  return true;
}

using AnalyticSeries = std::vector<std::vector<std::optional<double>>>;

bool identical(const AnalyticSeries& a, const AnalyticSeries& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

/// The analytic p-series of one metric at every density.
AnalyticSeries analyticSweep(const BenchOptions& opts,
                             const nsmodel::core::MetricSpec& spec,
                             bool parallel) {
  AnalyticSeries series;
  for (double rho : opts.rhos()) {
    const nsmodel::core::NetworkModel model = nsmodel::bench::paperModel(rho);
    const auto eval = [&](double p) {
      return nsmodel::core::evaluateMetric(spec, model.predict(p));
    };
    series.push_back(nsmodel::core::sweepProbability(
        eval, opts.analyticGrid(), parallel));
  }
  return series;
}

/// True when `path` already holds a `bench` record with this
/// (fast, threads, seed) key.  Appending a second record with the same
/// key would make the perf-smoke comparison pick one of them arbitrarily,
/// so --append refuses up front.  The file is a concatenation of the
/// pretty-printed records this binary writes; the key fields appear one
/// per line in a fixed order, so a line scan that resets on each
/// "bench" line is enough.
bool hasRecord(const char* path, const char* bench, bool fast,
               std::size_t threads, std::uint64_t seed) {
  std::FILE* in = std::fopen(path, "r");
  if (in == nullptr) return false;
  const std::string needle = std::string("\"") + bench + "\"";
  char line[256];
  bool sameBench = false;
  bool sameFast = false;
  bool sameSeed = false;
  bool found = false;
  while (!found && std::fgets(line, sizeof line, in) != nullptr) {
    unsigned long long value = 0;
    if (std::strstr(line, "\"bench\":") != nullptr) {
      sameBench = std::strstr(line, needle.c_str()) != nullptr;
      sameFast = sameSeed = false;
    } else if (std::strstr(line, "\"fast\":") != nullptr) {
      sameFast = std::strstr(line, fast ? "true" : "false") != nullptr;
    } else if (std::sscanf(line, " \"seed\": %llu", &value) == 1) {
      sameSeed = value == seed;
    } else if (std::sscanf(line, " \"threads\": %llu", &value) == 1) {
      found = sameBench && sameFast && sameSeed && value == threads;
    }
  }
  std::fclose(in);
  return found;
}

/// How many shards can actually run concurrently here: efficiency is
/// measured against the hardware, not against thread count — four shards
/// on one core legitimately take one core's time.
int effectiveWorkers(int shards) {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, std::min(shards, hw == 0 ? 1 : static_cast<int>(hw)));
}

/// The huge-N sharded demo (--huge): one deployment the flat collision
/// channels cannot even represent (their packed count tables cap node
/// ids at 16 bits), run start to finish through the sharded engine at 1
/// and at 4 shards.  The two runs must agree bit for bit — the
/// shard-count-independence contract at a scale the test matrix cannot
/// afford — and the record keeps wall clock, peak RSS, and the 1 -> 4
/// shard parallel efficiency (normalized by the cores actually
/// available).  Appends a separate "micro_sweep_huge" record so the
/// regular perf-smoke records stay untouched.
int runHuge(const BenchOptions& opts, const char* path) {
  nsmodel::bench::banner("micro_sweep --huge",
                         "sharded single-run engine at N >= 10^6");
  nsmodel::sim::ExperimentConfig cfg;
  cfg.rings = 85;  // rho * rings^2 = 140 * 85^2 ~ 1.01e6 nodes
  cfg.neighborDensity = 140.0;
  cfg.maxPhases = 300;

  const auto b0 = Clock::now();
  const nsmodel::sim::Scenario scenario = nsmodel::sim::buildScenario(
      nsmodel::sim::ScenarioKey::forExperiment(cfg, opts.seed, 0));
  const double buildWall = seconds(b0, Clock::now());
  const std::size_t nodes = scenario.topology.nodeCount();
  std::printf("deployment               %7.2fs  %zu nodes, %.0f avg "
              "neighbours\n",
              buildWall, nodes, cfg.neighborDensity);

  nsmodel::protocols::ProbabilisticBroadcast protocol(0.6);
  const auto timeShards = [&](int shards,
                              std::optional<nsmodel::sim::RunResult>& out) {
    nsmodel::sim::ShardedEngine engine(scenario.deployment,
                                       scenario.topology, shards);
    nsmodel::support::Rng rng = scenario.protocolRng;
    const auto t0 = Clock::now();
    out.emplace(engine.run(cfg, protocol, rng));
    return seconds(t0, Clock::now());
  };
  std::optional<nsmodel::sim::RunResult> one;
  std::optional<nsmodel::sim::RunResult> four;
  std::optional<nsmodel::sim::RunResult> eight;
  const double wall1 = timeShards(1, one);
  std::printf("sharded x1               %7.2fs  reached %.3f\n", wall1,
              one->finalReachability());
  const auto identicalToOne = [&](const nsmodel::sim::RunResult& other) {
    return one->receptionSlots() == other.receptionSlots() &&
           one->transmissionSlots() == other.transmissionSlots() &&
           one->receptionSlotByNode() == other.receptionSlotByNode() &&
           one->attemptedPairs() == other.attemptedPairs() &&
           one->deliveredPairs() == other.deliveredPairs();
  };
  const double wall4 = timeShards(4, four);
  const int workers = effectiveWorkers(4);
  const double efficiency =
      wall4 > 0.0 ? wall1 / (workers * wall4) : 0.0;
  const bool fourIdentical = identicalToOne(*four);
  std::printf("sharded x4               %7.2fs  efficiency %.2f over %d "
              "worker%s  (%s)\n",
              wall4, efficiency, workers, workers == 1 ? "" : "s",
              fourIdentical ? "bit-identical" : "MISMATCH");
  four.reset();  // one huge result set at a time
  const double wall8 = timeShards(8, eight);
  const int workers8 = effectiveWorkers(8);
  const double efficiency8 =
      wall8 > 0.0 ? wall1 / (workers8 * wall8) : 0.0;
  const bool eightIdentical = identicalToOne(*eight);
  std::printf("sharded x8               %7.2fs  efficiency %.2f over %d "
              "worker%s  (%s)\n",
              wall8, efficiency8, workers8, workers8 == 1 ? "" : "s",
              eightIdentical ? "bit-identical" : "MISMATCH");
  const bool hugeIdentical = fourIdentical && eightIdentical;
  const double rssMb = nsmodel::support::peakRssMb();
  std::printf("peak rss                 %7.0f MiB\n", rssMb);

  std::FILE* out = std::fopen(path, opts.append ? "a" : "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"micro_sweep_huge\",\n");
  std::fprintf(out, "  \"fast\": %s,\n", opts.fast ? "true" : "false");
  std::fprintf(out, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(opts.seed));
  std::fprintf(out, "  \"threads\": %zu,\n",
               nsmodel::support::globalPool().size());
  std::fprintf(out, "  \"huge\": {\n");
  std::fprintf(out, "    \"rings\": %d,\n", cfg.rings);
  std::fprintf(out, "    \"density\": %.0f,\n", cfg.neighborDensity);
  std::fprintf(out, "    \"nodes\": %zu,\n", nodes);
  std::fprintf(out, "    \"max_phases\": %d,\n", cfg.maxPhases);
  std::fprintf(out, "    \"topology_build_s\": %.3f,\n", buildWall);
  std::fprintf(out,
               "    \"sharded1\": {\"wall_s\": %.3f, "
               "\"reached_fraction\": %.6f},\n",
               wall1, one->finalReachability());
  std::fprintf(out, "    \"sharded4\": {\"wall_s\": %.3f},\n", wall4);
  std::fprintf(out, "    \"sharded8\": {\"wall_s\": %.3f},\n", wall8);
  std::fprintf(out, "    \"effective_workers\": %d,\n", workers);
  std::fprintf(out, "    \"parallel_efficiency\": %.3f,\n", efficiency);
  std::fprintf(out, "    \"effective_workers_8\": %d,\n", workers8);
  std::fprintf(out, "    \"parallel_efficiency_8\": %.3f,\n", efficiency8);
  std::fprintf(out, "    \"peak_rss_mb\": %.0f,\n", rssMb);
  std::fprintf(out, "    \"bit_identical\": %s\n",
               hugeIdentical ? "true" : "false");
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("%s %s\n", opts.append ? "appended to" : "wrote", path);
  if (!hugeIdentical) {
    std::fprintf(stderr,
                 "error: a multi-shard run diverged from sharded x1 at "
                 "huge N\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const char* path = "BENCH_sweep.json";
  const char* benchName = opts.huge ? "micro_sweep_huge" : "micro_sweep";
  if (opts.append &&
      hasRecord(path, benchName, opts.fast,
                nsmodel::support::globalPool().size(), opts.seed)) {
    std::fprintf(stderr,
                 "error: %s already holds a %s record with "
                 "fast=%s threads=%zu seed=%llu; refusing to append a "
                 "duplicate\n",
                 path, benchName, opts.fast ? "true" : "false",
                 nsmodel::support::globalPool().size(),
                 static_cast<unsigned long long>(opts.seed));
    return 2;
  }
  if (opts.huge) return runHuge(opts, path);
  nsmodel::bench::banner("micro_sweep",
                         "sweep-level caching + parallel evaluation");

  const auto spec =
      nsmodel::core::MetricSpec::reachabilityUnderLatency(5.0);
  const std::size_t simPoints =
      opts.rhos().size() * opts.simulationGrid().values().size();
  const std::size_t analyticPoints =
      opts.rhos().size() * opts.analyticGrid().values().size();

  // ---- simulated sweep: uncached serial baseline ----
  nsmodel::sim::resetTopologyBuildCount();
  const auto s0 = Clock::now();
  const SimTable simBaseline =
      nsmodel::bench::simSweep(opts, spec, SweepAccel{});
  const auto s1 = Clock::now();
  const std::uint64_t baselineBuilds = nsmodel::sim::topologyBuildCount();
  const double simBaselineWall = seconds(s0, s1);
  std::printf("sim sweep   baseline     %7.2fs  %6llu topology builds\n",
              simBaselineWall,
              static_cast<unsigned long long>(baselineBuilds));

  // ---- simulated sweep: cached + parallel + pooled workspaces ----
  nsmodel::sim::ScenarioCache cache;
  nsmodel::sim::RunWorkspacePool workspaces;
  nsmodel::sim::resetTopologyBuildCount();
  const auto s2 = Clock::now();
  const SimTable simAccel = nsmodel::bench::simSweep(
      opts, spec, SweepAccel{&cache, true, &workspaces});
  const auto s3 = Clock::now();
  const std::uint64_t accelBuilds = nsmodel::sim::topologyBuildCount();
  const double simAccelWall = seconds(s2, s3);
  const bool simIdentical = identical(simBaseline, simAccel);
  const double simSpeedup = simAccelWall > 0.0
                                ? simBaselineWall / simAccelWall
                                : 0.0;
  std::printf("sim sweep   accelerated  %7.2fs  %6llu topology builds  "
              "(%.2fx, %s)\n",
              simAccelWall, static_cast<unsigned long long>(accelBuilds),
              simSpeedup, simIdentical ? "bit-identical" : "MISMATCH");

  // ---- analytic sweep: MuTable-disabled serial baseline ----
  auto& muTable = nsmodel::analytic::MuTable::global();
  muTable.setEnabled(false);
  muTable.resetCounters();
  const auto a0 = Clock::now();
  const AnalyticSeries anBaseline = analyticSweep(opts, spec, false);
  const auto a1 = Clock::now();
  const std::uint64_t baselineMuEvals = muTable.computes();
  const double anBaselineWall = seconds(a0, a1);
  std::printf("analytic    baseline     %7.2fs  %9llu mu evaluations\n",
              anBaselineWall,
              static_cast<unsigned long long>(baselineMuEvals));

  // ---- analytic sweep: MuTable + parallel grid ----
  muTable.setEnabled(true);
  muTable.clear();
  muTable.resetCounters();
  const auto a2 = Clock::now();
  const AnalyticSeries anAccel = analyticSweep(opts, spec, true);
  const auto a3 = Clock::now();
  const std::uint64_t accelMuEvals = muTable.computes();
  const std::uint64_t accelMuLookups = muTable.lookups();
  const double anAccelWall = seconds(a2, a3);
  const bool anIdentical = identical(anBaseline, anAccel);
  const double anSpeedup =
      anAccelWall > 0.0 ? anBaselineWall / anAccelWall : 0.0;
  std::printf("analytic    accelerated  %7.2fs  %9llu mu evaluations of "
              "%llu lookups  (%.2fx, %s)\n",
              anAccelWall, static_cast<unsigned long long>(accelMuEvals),
              static_cast<unsigned long long>(accelMuLookups), anSpeedup,
              anIdentical ? "bit-identical" : "MISMATCH");

  // ---- replication throughput: DES engine vs. flat slot loop ----
  // One dense scenario (the paper's rho = 100 upper-midrange, N = 2500),
  // run repeatedly on one reused workspace: the steady state of the
  // Monte-Carlo inner loop, isolated from topology construction.
  nsmodel::sim::ExperimentConfig runCfg;
  runCfg.neighborDensity = 100.0;
  const nsmodel::sim::Scenario runScenario = nsmodel::sim::buildScenario(
      nsmodel::sim::ScenarioKey::forExperiment(runCfg, opts.seed, 0));
  const int throughputRuns = opts.fast ? 20 : 60;
  nsmodel::protocols::ProbabilisticBroadcast runProtocol(0.6);
  nsmodel::sim::RunWorkspace runWorkspace;
  using RunSignature =
      std::pair<std::vector<std::uint64_t>, std::vector<std::int64_t>>;
  const auto timeDriver = [&](nsmodel::sim::SlotDriver driver,
                              std::vector<RunSignature>& signatures) {
    runCfg.driver = driver;
    // Warm the workspace so both drivers time the allocation-free state.
    {
      nsmodel::support::Rng rng = runScenario.protocolRng;
      runWorkspace.reclaim(nsmodel::sim::runBroadcast(
          runCfg, runScenario.deployment, runScenario.topology, runProtocol,
          rng, runWorkspace));
    }
    const auto t0 = Clock::now();
    for (int rep = 0; rep < throughputRuns; ++rep) {
      nsmodel::support::Rng rng = runScenario.protocolRng;
      nsmodel::sim::RunResult result = nsmodel::sim::runBroadcast(
          runCfg, runScenario.deployment, runScenario.topology, runProtocol,
          rng, runWorkspace);
      signatures.emplace_back(result.receptionSlots(),
                              result.receptionSlotByNode());
      runWorkspace.reclaim(std::move(result));
    }
    return seconds(t0, Clock::now());
  };
  std::vector<RunSignature> desSignatures;
  std::vector<RunSignature> flatSignatures;
  const double desWall =
      timeDriver(nsmodel::sim::SlotDriver::DesEngine, desSignatures);
  const double flatWall =
      timeDriver(nsmodel::sim::SlotDriver::FlatLoop, flatSignatures);
  const bool runsIdentical = desSignatures == flatSignatures;
  const double desRate = desWall > 0.0 ? throughputRuns / desWall : 0.0;
  const double flatRate = flatWall > 0.0 ? throughputRuns / flatWall : 0.0;
  const double runSpeedup = flatWall > 0.0 ? desWall / flatWall : 0.0;
  std::printf("replication des engine   %7.2fs  %8.1f runs/s\n", desWall,
              desRate);
  std::printf("replication flat loop    %7.2fs  %8.1f runs/s  (%.2fx, %s)\n",
              flatWall, flatRate, runSpeedup,
              runsIdentical ? "bit-identical" : "MISMATCH");

  // ---- batched lanes: lockstep SoA batch vs the flat loop ----
  // Same-scenario convention: every lane replays scenario stream 0 with
  // the scenario's protocol rng, so every signature must agree bit for
  // bit with the flat loop's.  Timing alternates short flat/batched
  // segments and keeps each side's best (the slot-kernel convention
  // below), so frequency drift hits both sides instead of poisoning one.
  const int batchLanes = 8;
  const int batchSegments = 4;
  const int batchSegmentRuns = opts.fast ? 8 : 16;  // multiple of batchLanes
  const int batchRuns = batchSegments * batchSegmentRuns;
  nsmodel::sim::BatchWorkspace batchWorkspace;
  const auto timeFlatSegment =
      [&](const nsmodel::sim::ExperimentConfig& cfg,
          const nsmodel::sim::Scenario& scenario,
          nsmodel::protocols::BroadcastProtocol& protocol,
          std::vector<RunSignature>& signatures) {
        {
          nsmodel::support::Rng rng = scenario.protocolRng;
          runWorkspace.reclaim(nsmodel::sim::runBroadcast(
              cfg, scenario.deployment, scenario.topology, protocol, rng,
              runWorkspace));
        }
        const auto t0 = Clock::now();
        for (int rep = 0; rep < batchSegmentRuns; ++rep) {
          nsmodel::support::Rng rng = scenario.protocolRng;
          nsmodel::sim::RunResult result = nsmodel::sim::runBroadcast(
              cfg, scenario.deployment, scenario.topology, protocol, rng,
              runWorkspace);
          signatures.emplace_back(result.receptionSlots(),
                                  result.receptionSlotByNode());
          runWorkspace.reclaim(std::move(result));
        }
        return seconds(t0, Clock::now());
      };
  using ProtocolVec =
      std::vector<std::unique_ptr<nsmodel::protocols::BroadcastProtocol>>;
  const auto timeBatchSegment = [&](const nsmodel::sim::ExperimentConfig& cfg,
                                    const nsmodel::sim::Scenario& scenario,
                                    ProtocolVec& protos,
                                    std::vector<RunSignature>& signatures) {
    // Lanes are rebuilt per group: runBroadcastBatch advances each
    // lane's rng in place, and every group must restart from the
    // scenario's stream position.
    const auto freshLanes = [&] {
      std::vector<nsmodel::sim::BatchLane> lanes;
      lanes.reserve(protos.size());
      for (auto& p : protos) {
        lanes.push_back(nsmodel::sim::BatchLane{
            &scenario.deployment, &scenario.topology, p.get(),
            scenario.protocolRng, nullptr});
      }
      return lanes;
    };
    {
      auto lanes = freshLanes();
      auto warm = nsmodel::sim::runBroadcastBatch(cfg, lanes, batchWorkspace);
      for (auto& r : warm) batchWorkspace.reclaim(std::move(r));
    }
    const auto t0 = Clock::now();
    for (int group = 0; group < batchSegmentRuns / batchLanes; ++group) {
      auto lanes = freshLanes();
      auto results =
          nsmodel::sim::runBroadcastBatch(cfg, lanes, batchWorkspace);
      for (auto& r : results) {
        signatures.emplace_back(r.receptionSlots(), r.receptionSlotByNode());
        batchWorkspace.reclaim(std::move(r));
      }
    }
    return seconds(t0, Clock::now());
  };
  runCfg.driver = nsmodel::sim::SlotDriver::FlatLoop;
  ProtocolVec batchProtos100;
  for (int k = 0; k < batchLanes; ++k) {
    batchProtos100.push_back(
        std::make_unique<nsmodel::protocols::ProbabilisticBroadcast>(0.6));
  }
  std::vector<RunSignature> flat100Sigs;
  std::vector<RunSignature> batch100Sigs;
  double flat100Best = 0.0;
  double batch100Best = 0.0;
  for (int seg = 0; seg < batchSegments; ++seg) {
    const double f =
        timeFlatSegment(runCfg, runScenario, runProtocol, flat100Sigs);
    const double b = timeBatchSegment(runCfg, runScenario, batchProtos100,
                                      batch100Sigs);
    if (seg == 0 || f < flat100Best) flat100Best = f;
    if (seg == 0 || b < batch100Best) batch100Best = b;
  }
  const double flatRefWall = flat100Best * batchSegments;
  const double batch100Wall = batch100Best * batchSegments;
  const bool batch100Identical = flat100Sigs == batch100Sigs;
  const double batch100Rate =
      batch100Wall > 0.0 ? batchRuns / batch100Wall : 0.0;
  const double batch100Speedup =
      batch100Wall > 0.0 ? flatRefWall / batch100Wall : 0.0;
  std::printf("replication batched x%d   %7.2fs  %8.1f runs/s  (%.2fx, %s)\n",
              batchLanes, batch100Wall, batch100Rate, batch100Speedup,
              batch100Identical ? "bit-identical" : "MISMATCH");

  // ---- slot kernel: oracle scatter vs dispatched kernel ----
  // Collision-bound regime: the paper's densest deployment (rho = 140,
  // N = 3500) under flooding PB (p = 1.0), where every reached node
  // retransmits, most slots carry tens of simultaneous transmitters and
  // the bump/scan passes dominate the run.  Times the reference scatter
  // (oracle) against whatever defaultSlotKernel() resolves to on this
  // machine, and requires the two to stay bit-identical.  The timing
  // alternates short oracle/kernel segments and keeps each side's best
  // segment, so a background-load spike hits both sides instead of
  // poisoning whichever happened to be running.
  nsmodel::sim::ExperimentConfig kernelCfg;
  kernelCfg.neighborDensity = 140.0;
  const nsmodel::sim::Scenario kernelScenario = nsmodel::sim::buildScenario(
      nsmodel::sim::ScenarioKey::forExperiment(kernelCfg, opts.seed, 0));
  const int kernelSegments = 4;
  const int kernelSegmentRuns = opts.fast ? 5 : 15;
  const int kernelRuns = kernelSegments * kernelSegmentRuns;
  nsmodel::protocols::ProbabilisticBroadcast kernelProtocol(1.0);
  const auto timeKernelSegment = [&](nsmodel::net::SlotKernelIsa isa,
                                     std::vector<RunSignature>& signatures) {
    nsmodel::net::setSlotKernel(isa);
    {
      nsmodel::support::Rng rng = kernelScenario.protocolRng;
      runWorkspace.reclaim(nsmodel::sim::runBroadcast(
          kernelCfg, kernelScenario.deployment, kernelScenario.topology,
          kernelProtocol, rng, runWorkspace));
    }
    const auto t0 = Clock::now();
    for (int rep = 0; rep < kernelSegmentRuns; ++rep) {
      nsmodel::support::Rng rng = kernelScenario.protocolRng;
      nsmodel::sim::RunResult result = nsmodel::sim::runBroadcast(
          kernelCfg, kernelScenario.deployment, kernelScenario.topology,
          kernelProtocol, rng, runWorkspace);
      signatures.emplace_back(result.receptionSlots(),
                              result.receptionSlotByNode());
      runWorkspace.reclaim(std::move(result));
    }
    return seconds(t0, Clock::now());
  };
  const nsmodel::net::SlotKernelIsa dispatched =
      nsmodel::net::defaultSlotKernel();
  std::vector<RunSignature> oracleSigs;
  std::vector<RunSignature> kernelSigs;
  double oracleBestSegment = 0.0;
  double kernelBestSegment = 0.0;
  for (int seg = 0; seg < kernelSegments; ++seg) {
    const double o =
        timeKernelSegment(nsmodel::net::SlotKernelIsa::Oracle, oracleSigs);
    const double k = timeKernelSegment(dispatched, kernelSigs);
    if (seg == 0 || o < oracleBestSegment) oracleBestSegment = o;
    if (seg == 0 || k < kernelBestSegment) kernelBestSegment = k;
  }
  // Scale the best segment back up to the full run count so wall_s keeps
  // meaning "time for `runs` replications".
  const double oracleWall = oracleBestSegment * kernelSegments;
  const double kernelWall = kernelBestSegment * kernelSegments;
  nsmodel::net::setSlotKernel(dispatched);  // leave the default in place
  const bool kernelIdentical = oracleSigs == kernelSigs;
  const double oracleRate = oracleWall > 0.0 ? kernelRuns / oracleWall : 0.0;
  const double kernelRate = kernelWall > 0.0 ? kernelRuns / kernelWall : 0.0;
  const double kernelSpeedup = kernelWall > 0.0 ? oracleWall / kernelWall
                                                : 0.0;
  const char* kernelName = nsmodel::net::slotKernelIsaName(dispatched);
  std::printf("slot kernel oracle       %7.2fs  %8.1f runs/s\n", oracleWall,
              oracleRate);
  std::printf("slot kernel %-8s     %7.2fs  %8.1f runs/s  (%.2fx, %s)\n",
              kernelName, kernelWall, kernelRate, kernelSpeedup,
              kernelIdentical ? "bit-identical" : "MISMATCH");

  // ---- SINR cumulative-power kernel: oracle vs dispatched ----
  // The same collision-bound regime (rho = 140, flooding p = 1.0) on the
  // physical-interference channel, where the slot cost shifts from count
  // bumps to the per-receiver power accumulation over precomputed CSR
  // gain rows.  Times the scalar reference ops (oracle) against the
  // dispatched SinrKernelOps, interleaved best-of segments as above, and
  // requires bit-identity — f64 accumulation order included.
  nsmodel::sim::ExperimentConfig sinrCfg = kernelCfg;
  sinrCfg.channel = nsmodel::net::ChannelModel::Sinr;
  const nsmodel::sim::Scenario sinrScenario = nsmodel::sim::buildScenario(
      nsmodel::sim::ScenarioKey::forExperiment(sinrCfg, opts.seed, 0));
  const auto timeSinrSegment = [&](nsmodel::net::SlotKernelIsa isa,
                                   std::vector<RunSignature>& signatures) {
    nsmodel::net::setSlotKernel(isa);
    {
      nsmodel::support::Rng rng = sinrScenario.protocolRng;
      runWorkspace.reclaim(nsmodel::sim::runBroadcast(
          sinrCfg, sinrScenario.deployment, sinrScenario.topology,
          kernelProtocol, rng, runWorkspace));
    }
    const auto t0 = Clock::now();
    for (int rep = 0; rep < kernelSegmentRuns; ++rep) {
      nsmodel::support::Rng rng = sinrScenario.protocolRng;
      nsmodel::sim::RunResult result = nsmodel::sim::runBroadcast(
          sinrCfg, sinrScenario.deployment, sinrScenario.topology,
          kernelProtocol, rng, runWorkspace);
      signatures.emplace_back(result.receptionSlots(),
                              result.receptionSlotByNode());
      runWorkspace.reclaim(std::move(result));
    }
    return seconds(t0, Clock::now());
  };
  std::vector<RunSignature> sinrOracleSigs;
  std::vector<RunSignature> sinrKernelSigs;
  double sinrOracleBest = 0.0;
  double sinrKernelBest = 0.0;
  for (int seg = 0; seg < kernelSegments; ++seg) {
    const double o = timeSinrSegment(nsmodel::net::SlotKernelIsa::Oracle,
                                     sinrOracleSigs);
    const double k = timeSinrSegment(dispatched, sinrKernelSigs);
    if (seg == 0 || o < sinrOracleBest) sinrOracleBest = o;
    if (seg == 0 || k < sinrKernelBest) sinrKernelBest = k;
  }
  const double sinrOracleWall = sinrOracleBest * kernelSegments;
  const double sinrKernelWall = sinrKernelBest * kernelSegments;
  nsmodel::net::setSlotKernel(dispatched);
  const bool sinrIdentical = sinrOracleSigs == sinrKernelSigs;
  const double sinrOracleRate =
      sinrOracleWall > 0.0 ? kernelRuns / sinrOracleWall : 0.0;
  const double sinrKernelRate =
      sinrKernelWall > 0.0 ? kernelRuns / sinrKernelWall : 0.0;
  const double sinrSpeedup =
      sinrKernelWall > 0.0 ? sinrOracleWall / sinrKernelWall : 0.0;
  std::printf("sinr kernel oracle       %7.2fs  %8.1f runs/s\n",
              sinrOracleWall, sinrOracleRate);
  std::printf("sinr kernel %-8s     %7.2fs  %8.1f runs/s  (%.2fx, %s)\n",
              kernelName, sinrKernelWall, sinrKernelRate, sinrSpeedup,
              sinrIdentical ? "bit-identical" : "MISMATCH");

  // ---- batched lanes at the collision-bound density ----
  // rho = 140 under flooding (p = 1.0) on the dispatched kernel — the
  // regime the batch backend targets.  Interleaved flat/batched
  // segments as above.
  ProtocolVec batchProtos140;
  for (int k = 0; k < batchLanes; ++k) {
    batchProtos140.push_back(
        std::make_unique<nsmodel::protocols::ProbabilisticBroadcast>(1.0));
  }
  std::vector<RunSignature> flat140Sigs;
  std::vector<RunSignature> batch140Sigs;
  double flat140Best = 0.0;
  double batch140Best = 0.0;
  for (int seg = 0; seg < batchSegments; ++seg) {
    const double f = timeFlatSegment(kernelCfg, kernelScenario,
                                     kernelProtocol, flat140Sigs);
    const double b = timeBatchSegment(kernelCfg, kernelScenario,
                                      batchProtos140, batch140Sigs);
    if (seg == 0 || f < flat140Best) flat140Best = f;
    if (seg == 0 || b < batch140Best) batch140Best = b;
  }
  const double flat140Wall = flat140Best * batchSegments;
  const double batch140Wall = batch140Best * batchSegments;
  const bool batch140Identical = flat140Sigs == batch140Sigs;
  const double flat140Rate = flat140Wall > 0.0 ? batchRuns / flat140Wall : 0.0;
  const double batch140Rate =
      batch140Wall > 0.0 ? batchRuns / batch140Wall : 0.0;
  const double batch140Speedup =
      batch140Wall > 0.0 ? flat140Wall / batch140Wall : 0.0;
  std::printf("rho140 flat loop         %7.2fs  %8.1f runs/s\n", flat140Wall,
              flat140Rate);
  std::printf("rho140 batched x%d        %7.2fs  %8.1f runs/s  (%.2fx, %s)\n",
              batchLanes, batch140Wall, batch140Rate, batch140Speedup,
              batch140Identical ? "bit-identical" : "MISMATCH");

  // ---- sharded single-run engine at the collision-bound density ----
  // Same rho = 140 scenario, but the parallelism lives INSIDE one run:
  // the sharded engine splits the disk into stripes and steps them in
  // lockstep.  Its contract is bit-identity with the flat loop under
  // per-node RNG keying, so the reference here is the flat loop re-run
  // with RngMode::PerNode (a different stream than the sections above —
  // same distribution).  N = 3500 is far below the engine's sweet spot
  // (per-slot work barely amortizes two barriers per slot, and shards
  // beyond the core count only add scheduling), so these walls track
  // overhead trends; the --huge record holds the efficiency story.
  nsmodel::sim::ExperimentConfig shardCfg = kernelCfg;
  shardCfg.rngMode = nsmodel::sim::RngMode::PerNode;
  std::vector<RunSignature> flatPerNodeSigs;
  std::vector<RunSignature> shard1Sigs;
  std::vector<RunSignature> shard4Sigs;
  nsmodel::sim::ShardedEngine shardEngine1(kernelScenario.deployment,
                                           kernelScenario.topology, 1);
  nsmodel::sim::ShardedEngine shardEngine4(kernelScenario.deployment,
                                           kernelScenario.topology, 4);
  // Mirror timeFlatSegment's per-segment run count so the signature
  // streams compare element for element.
  const int shardSegmentRuns = batchSegmentRuns;
  const int shardRuns = kernelSegments * shardSegmentRuns;
  const auto timeShardSegment = [&](nsmodel::sim::ShardedEngine& engine,
                                    std::vector<RunSignature>& signatures) {
    {
      nsmodel::support::Rng rng = kernelScenario.protocolRng;
      engine.run(shardCfg, kernelProtocol, rng);
    }
    const auto t0 = Clock::now();
    for (int rep = 0; rep < shardSegmentRuns; ++rep) {
      nsmodel::support::Rng rng = kernelScenario.protocolRng;
      const nsmodel::sim::RunResult result =
          engine.run(shardCfg, kernelProtocol, rng);
      signatures.emplace_back(result.receptionSlots(),
                              result.receptionSlotByNode());
    }
    return seconds(t0, Clock::now());
  };
  double flatPerNodeBest = 0.0;
  double shard1Best = 0.0;
  double shard4Best = 0.0;
  for (int seg = 0; seg < kernelSegments; ++seg) {
    const double f = timeFlatSegment(shardCfg, kernelScenario, kernelProtocol,
                                     flatPerNodeSigs);
    const double s1 = timeShardSegment(shardEngine1, shard1Sigs);
    const double s4 = timeShardSegment(shardEngine4, shard4Sigs);
    if (seg == 0 || f < flatPerNodeBest) flatPerNodeBest = f;
    if (seg == 0 || s1 < shard1Best) shard1Best = s1;
    if (seg == 0 || s4 < shard4Best) shard4Best = s4;
  }
  const double flatPerNodeWall = flatPerNodeBest * kernelSegments;
  const double shard1Wall = shard1Best * kernelSegments;
  const double shard4Wall = shard4Best * kernelSegments;
  const bool shard1Identical = shard1Sigs == flatPerNodeSigs;
  const bool shard4Identical = shard4Sigs == flatPerNodeSigs;
  const double shard1Rate = shard1Wall > 0.0 ? shardRuns / shard1Wall : 0.0;
  const double shard4Rate = shard4Wall > 0.0 ? shardRuns / shard4Wall : 0.0;
  const double flatPerNodeRate =
      flatPerNodeWall > 0.0 ? shardRuns / flatPerNodeWall : 0.0;
  const double shard1Speedup =
      shard1Wall > 0.0 ? flatPerNodeWall / shard1Wall : 0.0;
  const double shard4Speedup =
      shard4Wall > 0.0 ? flatPerNodeWall / shard4Wall : 0.0;
  std::printf("rho140 flat per-node     %7.2fs  %8.1f runs/s\n",
              flatPerNodeWall, flatPerNodeRate);
  std::printf("rho140 sharded x1        %7.2fs  %8.1f runs/s  (%.2fx, %s)\n",
              shard1Wall, shard1Rate, shard1Speedup,
              shard1Identical ? "bit-identical" : "MISMATCH");
  std::printf("rho140 sharded x4        %7.2fs  %8.1f runs/s  (%.2fx, %s)\n",
              shard4Wall, shard4Rate, shard4Speedup,
              shard4Identical ? "bit-identical" : "MISMATCH");

  // ---- sharded scaling: stripe counts {1, 2, 4, 8} at N = 3500 ----
  // Widths 2 and 8 complete the scaling picture the two sections above
  // start: per width, the wall yields the speedup over the flat per-node
  // loop, the hardware-normalized efficiency (speedup divided by the
  // workers actually available, so an 8-stripe gang on one core is
  // graded against one core's time), and the per-slot synchronisation
  // overhead — the wall the extra stripes add over the single-stripe
  // run, normalized per worker and per simulated slot.  Identity against
  // the flat per-node loop is re-checked at every width.
  nsmodel::sim::ShardedEngine shardEngine2(kernelScenario.deployment,
                                           kernelScenario.topology, 2);
  nsmodel::sim::ShardedEngine shardEngine8(kernelScenario.deployment,
                                           kernelScenario.topology, 8);
  std::vector<RunSignature> shard2Sigs;
  std::vector<RunSignature> shard8Sigs;
  double shard2Best = 0.0;
  double shard8Best = 0.0;
  for (int seg = 0; seg < kernelSegments; ++seg) {
    const double s2 = timeShardSegment(shardEngine2, shard2Sigs);
    const double s8 = timeShardSegment(shardEngine8, shard8Sigs);
    if (seg == 0 || s2 < shard2Best) shard2Best = s2;
    if (seg == 0 || s8 < shard8Best) shard8Best = s8;
  }
  std::uint64_t slotsPerRun = 0;
  {
    nsmodel::support::Rng rng = kernelScenario.protocolRng;
    const nsmodel::sim::RunResult probe =
        shardEngine1.run(shardCfg, kernelProtocol, rng);
    slotsPerRun = probe.phases().size() *
                  static_cast<std::uint64_t>(shardCfg.slotsPerPhase);
  }
  struct ScalingRow {
    int shards = 1;
    double wall = 0.0;
    bool identical = false;
  };
  const ScalingRow scaling[] = {
      {1, shard1Wall, shard1Identical},
      {2, shard2Best * kernelSegments, shard2Sigs == flatPerNodeSigs},
      {4, shard4Wall, shard4Identical},
      {8, shard8Best * kernelSegments, shard8Sigs == flatPerNodeSigs},
  };
  bool scalingIdentical = true;
  for (const ScalingRow& row : scaling) {
    scalingIdentical = scalingIdentical && row.identical;
    const int workers = effectiveWorkers(row.shards);
    const double efficiency =
        row.wall > 0.0 ? flatPerNodeWall / (workers * row.wall) : 0.0;
    const double syncUs =
        slotsPerRun > 0
            ? std::max(0.0, row.wall * workers - shard1Wall) * 1e6 /
                  (static_cast<double>(shardRuns) *
                   static_cast<double>(slotsPerRun))
            : 0.0;
    std::printf("scaling sharded x%d       %7.2fs  eff %.2f  sync %6.2f "
                "us/slot  (%s)\n",
                row.shards, row.wall, efficiency, syncUs,
                row.identical ? "bit-identical" : "MISMATCH");
  }

  // ---- adaptive replication: fixed count vs CI-targeted stopping ----
  // The accelerated fixed sweep above doubles as the quality reference:
  // its widest per-cell 95% CI half-width becomes the adaptive target, so
  // the adaptive sweep must deliver every cell at least that tight.
  // Cells whose metric settles early (flooding regime, saturated
  // reachability) then stop at min_reps; only the noisy transition cells
  // run toward the fixed count.  Since replication k of a cell is the
  // same run under either plan, a cell that does run to the ceiling
  // reproduces the fixed cell bit for bit — the comparison is
  // fewer-samples-same-estimator, not a different estimator.
  double targetCi = 0.0;
  long long fixedRepsTotal = 0;
  for (const auto& row : simAccel) {
    for (const auto& agg : row) {
      if (agg.stats.ciHalfWidth95 > targetCi) {
        targetCi = agg.stats.ciHalfWidth95;
      }
      fixedRepsTotal += agg.replications;
    }
  }
  nsmodel::sim::AdaptiveReplication adaptiveCfg;
  // All-degenerate tables (every cell zero-variance) would disable the
  // controller via targetCi = 0; keep it enabled with an unreachable
  // target so such cells still stop at min_reps.
  adaptiveCfg.targetCi = targetCi > 0.0 ? targetCi : 1e-9;
  adaptiveCfg.minReps = opts.fast ? 2 : 6;
  adaptiveCfg.maxReps = opts.replications;
  nsmodel::sim::ScenarioCache adaptiveCache;
  nsmodel::sim::RunWorkspacePool adaptiveWorkspaces;
  const auto d0 = Clock::now();
  const SimTable simAdaptive = nsmodel::bench::simSweep(
      opts, spec,
      SweepAccel{&adaptiveCache, true, &adaptiveWorkspaces, adaptiveCfg});
  const auto d1 = Clock::now();
  const double adaptiveWall = seconds(d0, d1);
  long long adaptiveRepsTotal = 0;
  double adaptiveMaxCi = 0.0;
  for (const auto& row : simAdaptive) {
    for (const auto& agg : row) {
      adaptiveRepsTotal += agg.replications;
      if (agg.stats.ciHalfWidth95 > adaptiveMaxCi) {
        adaptiveMaxCi = agg.stats.ciHalfWidth95;
      }
    }
  }
  const double repReduction =
      adaptiveRepsTotal > 0
          ? static_cast<double>(fixedRepsTotal) / adaptiveRepsTotal
          : 0.0;
  // Exact comparison on purpose: converged cells stopped because their
  // half-width was <= the target under the same accumulation order, and
  // ceiling cells replay the fixed cell's arithmetic exactly.
  const bool adaptiveWithinTarget = adaptiveMaxCi <= adaptiveCfg.targetCi;
  std::printf("adaptive    fixed        %7.2fs  %6lld replications  "
              "(max ci95 %.4f)\n",
              simAccelWall, fixedRepsTotal, targetCi);
  std::printf("adaptive    ci-targeted  %7.2fs  %6lld replications  "
              "(max ci95 %.4f, %.2fx fewer, %s)\n",
              adaptiveWall, adaptiveRepsTotal, adaptiveMaxCi, repReduction,
              adaptiveWithinTarget ? "within target" : "TARGET MISSED");

  // ---- BENCH_sweep.json ----
  std::FILE* out = std::fopen(path, opts.append ? "a" : "w");
  if (out == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"micro_sweep\",\n");
  std::fprintf(out, "  \"fast\": %s,\n", opts.fast ? "true" : "false");
  std::fprintf(out, "  \"replications\": %d,\n", opts.replications);
  std::fprintf(out, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(opts.seed));
  std::fprintf(out, "  \"threads\": %zu,\n",
               nsmodel::support::globalPool().size());
  std::fprintf(out, "  \"sim_sweep\": {\n");
  std::fprintf(out, "    \"grid_points\": %zu,\n", simPoints);
  std::fprintf(out,
               "    \"baseline\": {\"wall_s\": %.6f, "
               "\"topology_builds\": %llu},\n",
               simBaselineWall,
               static_cast<unsigned long long>(baselineBuilds));
  std::fprintf(out,
               "    \"accelerated\": {\"wall_s\": %.6f, "
               "\"topology_builds\": %llu, \"cache_hits\": %llu, "
               "\"cache_misses\": %llu},\n",
               simAccelWall, static_cast<unsigned long long>(accelBuilds),
               static_cast<unsigned long long>(cache.hits()),
               static_cast<unsigned long long>(cache.misses()));
  std::fprintf(out, "    \"speedup\": %.3f,\n", simSpeedup);
  std::fprintf(out, "    \"bit_identical\": %s\n",
               simIdentical ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"analytic_sweep\": {\n");
  std::fprintf(out, "    \"grid_points\": %zu,\n", analyticPoints);
  std::fprintf(out,
               "    \"baseline\": {\"wall_s\": %.6f, "
               "\"mu_evaluations\": %llu},\n",
               anBaselineWall,
               static_cast<unsigned long long>(baselineMuEvals));
  std::fprintf(out,
               "    \"accelerated\": {\"wall_s\": %.6f, "
               "\"mu_evaluations\": %llu, \"mu_lookups\": %llu},\n",
               anAccelWall, static_cast<unsigned long long>(accelMuEvals),
               static_cast<unsigned long long>(accelMuLookups));
  std::fprintf(out, "    \"speedup\": %.3f,\n", anSpeedup);
  std::fprintf(out, "    \"bit_identical\": %s\n",
               anIdentical ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"replication_throughput\": {\n");
  std::fprintf(out, "    \"density\": %.0f,\n", runCfg.neighborDensity);
  std::fprintf(out, "    \"nodes\": %zu,\n",
               runScenario.topology.nodeCount());
  std::fprintf(out, "    \"runs\": %d,\n", throughputRuns);
  std::fprintf(out,
               "    \"des_engine\": {\"wall_s\": %.6f, "
               "\"runs_per_s\": %.1f},\n",
               desWall, desRate);
  std::fprintf(out,
               "    \"flat_loop\": {\"wall_s\": %.6f, "
               "\"runs_per_s\": %.1f},\n",
               flatWall, flatRate);
  std::fprintf(out, "    \"speedup\": %.3f,\n", runSpeedup);
  std::fprintf(out, "    \"bit_identical\": %s,\n",
               runsIdentical ? "true" : "false");
  std::fprintf(out,
               "    \"batched\": {\"wall_s\": %.6f, \"runs_per_s\": %.1f, "
               "\"lanes\": %d, \"runs\": %d, \"speedup\": %.3f, "
               "\"bit_identical\": %s},\n",
               batch100Wall, batch100Rate, batchLanes, batchRuns,
               batch100Speedup, batch100Identical ? "true" : "false");
  std::fprintf(out, "    \"rho140\": {\n");
  std::fprintf(out, "      \"density\": %.0f,\n",
               kernelCfg.neighborDensity);
  std::fprintf(out, "      \"nodes\": %zu,\n",
               kernelScenario.topology.nodeCount());
  std::fprintf(out, "      \"runs\": %d,\n", batchRuns);
  std::fprintf(out,
               "      \"flat_loop\": {\"wall_s\": %.6f, "
               "\"runs_per_s\": %.1f},\n",
               flat140Wall, flat140Rate);
  std::fprintf(out,
               "      \"batched\": {\"wall_s\": %.6f, \"runs_per_s\": %.1f, "
               "\"lanes\": %d, \"speedup\": %.3f, \"bit_identical\": %s}\n",
               batch140Wall, batch140Rate, batchLanes, batch140Speedup,
               batch140Identical ? "true" : "false");
  std::fprintf(out, "    }\n");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"sharded_rho140\": {\n");
  std::fprintf(out, "    \"density\": %.0f,\n", kernelCfg.neighborDensity);
  std::fprintf(out, "    \"nodes\": %zu,\n",
               kernelScenario.topology.nodeCount());
  std::fprintf(out, "    \"runs\": %d,\n", shardRuns);
  std::fprintf(out,
               "    \"flat_pernode\": {\"wall_s\": %.6f, "
               "\"runs_per_s\": %.1f},\n",
               flatPerNodeWall, flatPerNodeRate);
  std::fprintf(out,
               "    \"sharded1\": {\"wall_s\": %.6f, \"runs_per_s\": %.1f, "
               "\"speedup\": %.3f, \"bit_identical\": %s},\n",
               shard1Wall, shard1Rate, shard1Speedup,
               shard1Identical ? "true" : "false");
  std::fprintf(out,
               "    \"sharded4\": {\"wall_s\": %.6f, \"runs_per_s\": %.1f, "
               "\"speedup\": %.3f, \"bit_identical\": %s}\n",
               shard4Wall, shard4Rate, shard4Speedup,
               shard4Identical ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"sharded_scaling\": {\n");
  std::fprintf(out, "    \"density\": %.0f,\n", kernelCfg.neighborDensity);
  std::fprintf(out, "    \"nodes\": %zu,\n",
               kernelScenario.topology.nodeCount());
  std::fprintf(out, "    \"runs\": %d,\n", shardRuns);
  std::fprintf(out, "    \"slots_per_run\": %llu,\n",
               static_cast<unsigned long long>(slotsPerRun));
  std::fprintf(out, "    \"flat_pernode_wall_s\": %.6f,\n", flatPerNodeWall);
  for (std::size_t i = 0; i < std::size(scaling); ++i) {
    const ScalingRow& row = scaling[i];
    const int workers = effectiveWorkers(row.shards);
    const double efficiency =
        row.wall > 0.0 ? flatPerNodeWall / (workers * row.wall) : 0.0;
    const double syncUs =
        slotsPerRun > 0
            ? std::max(0.0, row.wall * workers - shard1Wall) * 1e6 /
                  (static_cast<double>(shardRuns) *
                   static_cast<double>(slotsPerRun))
            : 0.0;
    std::fprintf(out,
                 "    \"shards%d\": {\"wall_s\": %.6f, \"speedup\": %.3f, "
                 "\"effective_workers\": %d, \"efficiency\": %.3f, "
                 "\"sync_overhead_us_per_slot\": %.3f, "
                 "\"bit_identical\": %s}%s\n",
                 row.shards, row.wall,
                 row.wall > 0.0 ? flatPerNodeWall / row.wall : 0.0, workers,
                 efficiency, syncUs, row.identical ? "true" : "false",
                 i + 1 < std::size(scaling) ? "," : "");
  }
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"slot_kernel\": {\n");
  std::fprintf(out, "    \"density\": %.0f,\n", kernelCfg.neighborDensity);
  std::fprintf(out, "    \"nodes\": %zu,\n",
               kernelScenario.topology.nodeCount());
  std::fprintf(out, "    \"probability\": 1.0,\n");
  std::fprintf(out, "    \"runs\": %d,\n", kernelRuns);
  std::fprintf(out,
               "    \"oracle\": {\"wall_s\": %.6f, \"runs_per_s\": %.1f},\n",
               oracleWall, oracleRate);
  std::fprintf(out,
               "    \"kernel\": {\"name\": \"%s\", \"wall_s\": %.6f, "
               "\"runs_per_s\": %.1f},\n",
               kernelName, kernelWall, kernelRate);
  std::fprintf(out, "    \"speedup\": %.3f,\n", kernelSpeedup);
  std::fprintf(out, "    \"bit_identical\": %s\n",
               kernelIdentical ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"sinr_kernel\": {\n");
  std::fprintf(out, "    \"density\": %.0f,\n", sinrCfg.neighborDensity);
  std::fprintf(out, "    \"nodes\": %zu,\n",
               sinrScenario.topology.nodeCount());
  std::fprintf(out, "    \"probability\": 1.0,\n");
  std::fprintf(out, "    \"runs\": %d,\n", kernelRuns);
  std::fprintf(out,
               "    \"oracle\": {\"wall_s\": %.6f, \"runs_per_s\": %.1f},\n",
               sinrOracleWall, sinrOracleRate);
  std::fprintf(out,
               "    \"kernel\": {\"name\": \"%s\", \"wall_s\": %.6f, "
               "\"runs_per_s\": %.1f},\n",
               kernelName, sinrKernelWall, sinrKernelRate);
  std::fprintf(out, "    \"speedup\": %.3f,\n", sinrSpeedup);
  std::fprintf(out, "    \"bit_identical\": %s\n",
               sinrIdentical ? "true" : "false");
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"adaptive\": {\n");
  std::fprintf(out, "    \"grid_points\": %zu,\n", simPoints);
  std::fprintf(out, "    \"target_ci95\": %.6f,\n", adaptiveCfg.targetCi);
  std::fprintf(out, "    \"min_reps\": %d,\n", adaptiveCfg.minReps);
  std::fprintf(out, "    \"max_reps\": %d,\n", adaptiveCfg.maxReps);
  std::fprintf(out,
               "    \"fixed\": {\"wall_s\": %.6f, "
               "\"replications_total\": %lld, \"max_ci95\": %.6f},\n",
               simAccelWall, fixedRepsTotal, targetCi);
  std::fprintf(out,
               "    \"adaptive\": {\"wall_s\": %.6f, "
               "\"replications_total\": %lld, \"max_ci95\": %.6f},\n",
               adaptiveWall, adaptiveRepsTotal, adaptiveMaxCi);
  std::fprintf(out, "    \"replication_reduction\": %.3f,\n", repReduction);
  std::fprintf(out, "    \"within_target\": %s\n",
               adaptiveWithinTarget ? "true" : "false");
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("%s %s\n", opts.append ? "appended to" : "wrote", path);

  if (!simIdentical || !anIdentical || !runsIdentical || !kernelIdentical ||
      !sinrIdentical || !batch100Identical || !batch140Identical ||
      !shard1Identical || !shard4Identical || !scalingIdentical) {
    std::fprintf(stderr,
                 "error: accelerated sweep diverged from the baseline\n");
    return 1;
  }
  if (!adaptiveWithinTarget) {
    std::fprintf(stderr,
                 "error: adaptive sweep missed the fixed sweep's CI "
                 "target\n");
    return 1;
  }
  return 0;
}
