// Ablation — where the source sits.
//
// The analytic framework places the source at the exact centre of the
// disk (Section 4), which maximises symmetric coverage.  Real query
// injectors (base stations) often sit at the field edge.  This bench
// moves the source outward and measures how the analytic centred-source
// predictions degrade as approximations — and whether the *optimizer's
// choice of p* (made under the centred assumption) remains good advice
// for an edge-placed source.
#include <memory>

#include "bench_common.hpp"
#include "protocols/probabilistic.hpp"

using namespace nsmodel;
using bench::BenchOptions;

namespace {

double meanReach(const BenchOptions& opts, double rho, double p,
                 double sourceFraction, int reps) {
  double total = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    support::Rng rng = support::Rng::forStream(opts.seed, rep);
    const auto count =
        static_cast<std::size_t>(std::llround(rho * 25.0));  // rho P^2
    const net::Deployment dep = net::Deployment::uniformDiskWithSource(
        rng, 5.0, count, sourceFraction);
    const net::Topology topo(dep, 1.0);
    sim::ExperimentConfig cfg;
    cfg.neighborDensity = rho;
    protocols::ProbabilisticBroadcast protocol(p);
    const auto run = sim::runBroadcast(cfg, dep, topo, protocol, rng);
    total += run.reachabilityAfter(5.0);
  }
  return total / reps;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("Ablation", "source placement (centred vs off-centre)");
  const core::MetricSpec spec = core::MetricSpec::reachabilityUnderLatency(5.0);
  const int reps = opts.fast ? 8 : 20;

  support::TablePrinter table({"rho", "p* (centred analysis)", "src@0",
                               "src@0.5R", "src@0.9R",
                               "edge p* (resweep)", "edge reach"});
  for (double rho : opts.rhos()) {
    const auto best = bench::paperModel(rho).optimize(spec);
    const double p = best->probability;
    const double center = meanReach(opts, rho, p, 0.0, reps);
    const double half = meanReach(opts, rho, p, 0.5, reps);
    const double edge = meanReach(opts, rho, p, 0.9, reps);
    // Does the centred-analysis p remain optimal at the edge?
    double edgeBest = 0.0, edgeBestP = 0.0;
    for (double q : opts.simulationGrid().values()) {
      const double reach = meanReach(opts, rho, q, 0.9, reps);
      if (reach > edgeBest) {
        edgeBest = reach;
        edgeBestP = q;
      }
    }
    table.addRow({support::formatDouble(rho, 0), support::formatDouble(p, 2),
                  support::formatDouble(center, 3),
                  support::formatDouble(half, 3),
                  support::formatDouble(edge, 3),
                  support::formatDouble(edgeBestP, 2),
                  support::formatDouble(edgeBest, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nTakeaway: moving the source to the boundary costs roughly half\n"
      "the 5-phase reachability (the wave only covers a half-plane of the\n"
      "field), and the edge-placed optimum prefers a somewhat larger p —\n"
      "yet the centred-analysis p gives up only a few points of\n"
      "reachability against a full edge-specific re-sweep, so the\n"
      "optimizer's advice remains serviceable where the ring geometry\n"
      "does not strictly apply.\n");
  return 0;
}
