// Micro-benchmarks of the simulation substrates: event engine throughput,
// deployment + topology construction, slot resolution under each channel
// model, and a full PB_CAM run.
#include <benchmark/benchmark.h>

#include <memory>

#include "des/engine.hpp"
#include "net/channel.hpp"
#include "net/deployment.hpp"
#include "net/topology.hpp"
#include "protocols/probabilistic.hpp"
#include "sim/experiment.hpp"
#include "support/rng.hpp"

namespace {

using namespace nsmodel;

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto events = state.range(0);
  for (auto _ : state) {
    des::Engine engine;
    for (std::int64_t i = 0; i < events; ++i) {
      engine.scheduleAt(static_cast<des::Time>(i % 97), [] {});
    }
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1000)->Arg(10000);

void BM_TopologyBuild(benchmark::State& state) {
  const double rho = static_cast<double>(state.range(0));
  support::Rng rng(1);
  const net::Deployment dep = net::Deployment::paperDisk(rng, 5, 1.0, rho);
  for (auto _ : state) {
    const net::Topology topo(dep, 1.0);
    benchmark::DoNotOptimize(topo.averageDegree());
  }
}
BENCHMARK(BM_TopologyBuild)->Arg(20)->Arg(140);

void BM_ChannelResolveSlot(benchmark::State& state) {
  support::Rng rng(2);
  const net::Deployment dep = net::Deployment::paperDisk(rng, 5, 1.0, 100.0);
  const net::Topology topo(dep, 1.0, 2.0);
  // ~5% of nodes transmit simultaneously: a busy mid-broadcast slot.
  std::vector<net::NodeId> transmitters;
  for (net::NodeId id = 0; id < dep.nodeCount(); ++id) {
    if (rng.bernoulli(0.05)) transmitters.push_back(id);
  }
  const auto model = static_cast<net::ChannelModel>(state.range(0));
  auto channel = net::makeChannel(model);
  std::size_t sink = 0;
  for (auto _ : state) {
    const auto outcome = channel->resolveSlot(
        topo, transmitters, [&sink](net::NodeId, net::NodeId) { ++sink; });
    benchmark::DoNotOptimize(outcome.deliveries);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_ChannelResolveSlot)
    ->Arg(static_cast<int>(net::ChannelModel::CollisionFree))
    ->Arg(static_cast<int>(net::ChannelModel::CollisionAware))
    ->Arg(static_cast<int>(net::ChannelModel::CarrierSenseAware));

void BM_FullBroadcastRun(benchmark::State& state) {
  sim::ExperimentConfig cfg;
  cfg.neighborDensity = static_cast<double>(state.range(0));
  const auto factory = [] {
    return std::make_unique<protocols::ProbabilisticBroadcast>(0.2);
  };
  std::uint64_t stream = 0;
  for (auto _ : state) {
    const auto run = sim::runExperiment(cfg, factory, 42, stream++);
    benchmark::DoNotOptimize(run.finalReachability());
  }
}
BENCHMARK(BM_FullBroadcastRun)->Arg(20)->Arg(60)->Arg(140);

}  // namespace

BENCHMARK_MAIN();
