// Fig. 8 — simulated reachability of PB_CAM within 5 time phases.
//
// The packet-level counterpart of Fig. 4, averaged over 30 random runs per
// point.  Paper findings: the optimal probability decreases with rho just
// like the analytic curve, and the achievable reachability at the optimum
// sits consistently around 63% across the density range.
#include "bench_common.hpp"

using namespace nsmodel;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("Figure 8", "simulated reachability of PB_CAM in 5 phases");
  const core::MetricSpec spec = core::MetricSpec::reachabilityUnderLatency(5.0);
  const auto sweep = bench::simSweep(opts, spec);

  std::printf("(a) mean reachability within 5 phases vs p (%d runs/point)\n",
              opts.replications);
  bench::printSimSweep(opts, sweep);

  support::TablePrinter optima({"rho", "optimal p", "reachability",
                                "ci95", "flooding (p=1)"});
  const auto rhos = opts.rhos();
  const auto grid = opts.simulationGrid().values();
  for (std::size_t i = 0; i < rhos.size(); ++i) {
    const auto best = bench::sweepOptimum(opts, sweep[i], spec.kind);
    // Locate the optimum's confidence interval and the flooding column.
    double ci = 0.0;
    for (std::size_t j = 0; j < grid.size(); ++j) {
      if (best && grid[j] == best->probability) {
        ci = sweep[i][j].stats.ciHalfWidth95;
      }
    }
    optima.addRow({support::formatDouble(rhos[i], 0),
                   best ? support::formatDouble(best->probability, 2) : "-",
                   best ? support::formatDouble(best->value, 3) : "-",
                   support::formatDouble(ci, 3),
                   bench::cell(sweep[i].back(), 3)});
  }
  std::printf("\n(b) optimal probability per rho\n");
  optima.print(std::cout);
  std::printf(
      "\nPaper shape: optimal p decreases with rho (same trend as the\n"
      "analytic Fig. 4(b)); the reachability at the optimum is ~flat\n"
      "across rho (paper: ~0.63).\n");
  return 0;
}
