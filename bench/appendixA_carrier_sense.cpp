// Appendix A — the carrier-sensing collision model (interference range
// 2r) against the plain CAM model.
//
// The paper extends the analysis with mu'(K1, K2, s) and claims the
// qualitative results carry over: "more concurrent communication leads to
// higher probability of packet collision".  This bench reproduces that
// comparison: mu' against mu, the analytic reachability under both
// collision models, the per-model optimal probability, and the packet-
// level simulation cross-check.
#include "analytic/mu.hpp"
#include "bench_common.hpp"

using namespace nsmodel;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("Appendix A", "carrier-sensing collision model (cs = 2r)");

  // mu' against mu: the annulus interferers eat into the success window.
  support::TablePrinter muTable(
      {"K1", "mu(K1,3)", "mu'(K1,K1,3)", "mu'(K1,3*K1,3)"});
  for (int k1 : {1, 2, 4, 8, 16, 32}) {
    muTable.addRow({support::formatDouble(k1, 0),
                    support::formatDouble(analytic::mu(k1, 3), 4),
                    support::formatDouble(analytic::muPrime(k1, k1, 3), 4),
                    support::formatDouble(analytic::muPrime(k1, 3 * k1, 3),
                                          4)});
  }
  std::printf("occupancy probabilities (s = 3; K2 annulus interferers)\n");
  muTable.print(std::cout);

  // Analytic reachability in 5 phases under CAM vs CAM-CS, with the
  // per-model optimum.
  const core::MetricSpec spec = core::MetricSpec::reachabilityUnderLatency(5.0);
  const auto grid = opts.analyticGrid();
  support::TablePrinter reach({"rho", "CAM p*", "CAM reach", "CS p*",
                               "CS reach", "sim CS reach @ CS p*"});
  for (double rho : opts.rhos()) {
    const core::NetworkModel cam = bench::paperModel(rho);
    const core::NetworkModel cs =
        bench::paperModel(rho, core::CommModel::carrierSenseAware(2.0));
    const auto camBest = cam.optimize(spec, grid);
    const auto csBest = cs.optimize(spec, grid);
    const auto simCs = cs.measure(csBest->probability, spec, opts.seed,
                                  opts.replications);
    reach.addRow({support::formatDouble(rho, 0),
                  support::formatDouble(camBest->probability, 2),
                  support::formatDouble(camBest->value, 3),
                  support::formatDouble(csBest->probability, 2),
                  support::formatDouble(csBest->value, 3),
                  bench::cell(simCs, 3)});
  }
  std::printf("\nanalytic optima under CAM vs CAM-CS, 5-phase reachability\n");
  reach.print(std::cout);
  std::printf(
      "\nPaper shape: carrier sensing shifts the optimum to smaller p and\n"
      "lowers the attainable reachability, but the qualitative behaviour\n"
      "(p* decreasing in rho, flat plateau) is unchanged.\n");
  return 0;
}
