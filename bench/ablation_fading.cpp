// Ablation — the unit-disk assumption (Assumption 1) vs a transitional
// fading region.
//
// The paper abstracts SNR fluctuation away and acknowledges it; this
// bench measures how much the PB_CAM picture moves when each link fades
// across a transitional region of width 2w*r.  Fading has two opposing
// effects: marginal links drop packets (worse), but it also *thins
// interference* — a distant transmitter only sometimes reaches the
// receiver, so fewer concurrent signals collide (better).  The net effect
// on the tuned optimum is what matters for the paper's conclusions.
#include <memory>

#include "bench_common.hpp"
#include "net/fading.hpp"
#include "protocols/probabilistic.hpp"

using namespace nsmodel;
using bench::BenchOptions;

namespace {

double fadingMeanReach(const BenchOptions& opts, double rho, double p,
                       double width, int reps) {
  double total = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    support::Rng rng = support::Rng::forStream(opts.seed, rep);
    const net::Deployment dep = net::Deployment::paperDisk(rng, 5, 1.0, rho);
    const net::FadingParams params{1.0, width,
                                   opts.seed ^ (0x9e37u + rep)};
    const net::Topology topo(dep, (1.0 + width) * params.nominalRange);
    net::FadingChannel channel(dep, params);
    sim::ExperimentConfig cfg;
    cfg.neighborDensity = rho;
    protocols::ProbabilisticBroadcast protocol(p);
    const auto run =
        sim::runBroadcast(cfg, dep, topo, channel, protocol, rng);
    total += run.reachabilityAfter(5.0);
  }
  return total / reps;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("Ablation", "unit disk vs transitional fading region");
  const core::MetricSpec spec = core::MetricSpec::reachabilityUnderLatency(5.0);
  const int reps = opts.fast ? 6 : 15;

  support::TablePrinter table({"rho", "unit-disk p*", "unit-disk reach",
                               "fade w=0.2", "fade w=0.4",
                               "fade p* (w=0.4)", "fade reach (w=0.4)"});
  for (double rho : opts.rhos()) {
    const core::NetworkModel model = bench::paperModel(rho);
    // Unit-disk optimum from the simulated sweep.
    double bestReach = 0.0, bestP = 0.0;
    for (double p : opts.simulationGrid().values()) {
      const double reach = model.measure(p, spec, opts.seed, reps).stats.mean;
      if (reach > bestReach) {
        bestReach = reach;
        bestP = p;
      }
    }
    // The same p under fading of two widths.
    const double fade02 = fadingMeanReach(opts, rho, bestP, 0.2, reps);
    const double fade04 = fadingMeanReach(opts, rho, bestP, 0.4, reps);
    // Re-optimise under the w = 0.4 channel.
    double fadeBest = 0.0, fadeBestP = 0.0;
    for (double p : opts.simulationGrid().values()) {
      const double reach = fadingMeanReach(opts, rho, p, 0.4, reps);
      if (reach > fadeBest) {
        fadeBest = reach;
        fadeBestP = p;
      }
    }
    table.addRow({support::formatDouble(rho, 0),
                  support::formatDouble(bestP, 2),
                  support::formatDouble(bestReach, 3),
                  support::formatDouble(fade02, 3),
                  support::formatDouble(fade04, 3),
                  support::formatDouble(fadeBestP, 2),
                  support::formatDouble(fadeBest, 3)});
  }
  table.print(std::cout);
  std::printf(
      "\nTakeaway: the transitional region actually *helps* PB_CAM — long\n"
      "probabilistic links extend connectivity to (1+w)r and distant\n"
      "interferers only sometimes reach the receiver, thinning collisions\n"
      "— so the unit-disk analysis is conservative here. The structural\n"
      "conclusions (p* decreasing in rho, near-flat optimal plateau) are\n"
      "unchanged, supporting the paper's use of the abstraction for\n"
      "algorithm design.\n");
  return 0;
}
