// Fig. 10 — simulated energy cost (number of broadcasts) of PB_CAM for a
// fixed reachability target.
//
// Paper findings: the energy-optimal probability stays within ~0.2 across
// the density range and the corresponding broadcast count is roughly
// constant (paper: ~80), far below flooding's ~N.
#include <algorithm>
#include <cmath>

#include "bench_common.hpp"

using namespace nsmodel;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("Figure 10", "simulated #broadcasts for a reachability target");

  const auto pre = bench::simSweep(
      opts, core::MetricSpec::reachabilityUnderLatency(5.0),
      std::max(4, opts.replications / 3));
  double target = 1.0;
  for (const auto& row : pre) {
    const auto best = bench::sweepOptimum(
        opts, row, core::MetricKind::ReachabilityUnderLatency);
    if (best) target = std::min(target, best->value);
  }
  target = std::floor(target * 50.0) / 50.0 - 0.02;
  std::printf("reachability target (derived Fig. 8 plateau): %.2f\n\n",
              target);

  const core::MetricSpec spec =
      core::MetricSpec::energyUnderReachability(target);
  const auto sweep = bench::simSweep(opts, spec);
  std::printf("(a) mean broadcasts to reach the target vs p (%d runs)\n",
              opts.replications);
  bench::printSimSweep(opts, sweep, 1);

  support::TablePrinter optima(
      {"rho", "optimal p", "broadcasts", "flooding bcasts"});
  const auto rhos = opts.rhos();
  for (std::size_t i = 0; i < rhos.size(); ++i) {
    const auto best = bench::sweepOptimum(opts, sweep[i], spec.kind);
    optima.addRow({support::formatDouble(rhos[i], 0),
                   best ? support::formatDouble(best->probability, 2) : "-",
                   best ? support::formatDouble(best->value, 1) : "-",
                   bench::cell(sweep[i].back(), 1)});
  }
  std::printf("\n(b) energy-optimal probability per rho\n");
  optima.print(std::cout);
  std::printf(
      "\nPaper shape: optimal p within ~0.2 across rho; broadcasts at the\n"
      "optimum roughly constant in rho (paper: ~80) vs ~N for flooding.\n");
  return 0;
}
