// Ablation — the jitter window s (slots per phase), fixed at 3 in the
// paper's experiments.
//
// More slots thin out concurrent transmissions (mu(K, s) grows with s), so
// the optimal probability rises and the attainable 5-phase reachability
// improves — at the price of proportionally longer wall-clock phases.
#include "bench_common.hpp"

using namespace nsmodel;
using bench::BenchOptions;

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  bench::banner("Ablation", "slots per phase (jitter window)");
  const core::MetricSpec spec = core::MetricSpec::reachabilityUnderLatency(5.0);
  const auto grid = opts.analyticGrid();

  const double rho = 100.0;
  support::TablePrinter table({"s", "optimal p", "reach (5 phases)",
                               "reach in 15 slots", "flooding reach"});
  for (int s : {1, 2, 3, 5, 8}) {
    core::DeploymentSpec dep;
    dep.rings = 5;
    dep.neighborDensity = rho;
    const core::NetworkModel model(dep, core::CommModel::collisionAware(), s);
    const auto best = model.optimize(spec, grid);
    // Equal-wall-clock comparison: 15 slots corresponds to 15/s phases.
    const double equalTime =
        model.predict(best->probability)
            .reachabilityAfter(15.0 / static_cast<double>(s));
    const double flooding =
        *core::evaluateMetric(spec, model.predict(1.0));
    table.addRow({support::formatDouble(s, 0),
                  support::formatDouble(best->probability, 2),
                  support::formatDouble(best->value, 3),
                  support::formatDouble(equalTime, 3),
                  support::formatDouble(flooding, 3)});
  }
  std::printf("rho = %.0f\n", rho);
  table.print(std::cout);
  std::printf(
      "\nTakeaway: larger jitter windows raise both the optimal p and the\n"
      "per-phase reachability, but under an equal wall-clock budget the\n"
      "advantage shrinks — s = 3 is a reasonable middle ground, supporting\n"
      "the paper's fixed choice.\n");
  return 0;
}
