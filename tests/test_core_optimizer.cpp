#include "core/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"

namespace nsmodel::core {
namespace {

TEST(ProbabilityGrid, GeneratesInclusiveRange) {
  const auto values = ProbabilityGrid{0.1, 0.5, 0.1}.values();
  ASSERT_EQ(values.size(), 5u);
  EXPECT_NEAR(values.front(), 0.1, 1e-12);
  EXPECT_NEAR(values.back(), 0.5, 1e-12);
}

TEST(ProbabilityGrid, PaperGrids) {
  EXPECT_EQ(ProbabilityGrid::analytic().values().size(), 100u);
  EXPECT_EQ(ProbabilityGrid::simulation().values().size(), 20u);
  EXPECT_NEAR(ProbabilityGrid::analytic().values().back(), 1.0, 1e-12);
  EXPECT_NEAR(ProbabilityGrid::simulation().values().front(), 0.05, 1e-12);
}

TEST(ProbabilityGrid, NoDriftOverManySteps) {
  const auto values = ProbabilityGrid::analytic().values();
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(values[i], 0.01 * static_cast<double>(i + 1), 1e-12);
    EXPECT_LE(values[i], 1.0);
  }
}

TEST(ProbabilityGrid, SinglePointGrid) {
  const auto values = ProbabilityGrid{0.3, 0.3, 0.1}.values();
  ASSERT_EQ(values.size(), 1u);
  EXPECT_DOUBLE_EQ(values[0], 0.3);
}

TEST(ProbabilityGrid, Validation) {
  EXPECT_THROW((ProbabilityGrid{0.0, 1.0, 0.1}.values()), nsmodel::Error);
  EXPECT_THROW((ProbabilityGrid{0.5, 0.4, 0.1}.values()), nsmodel::Error);
  EXPECT_THROW((ProbabilityGrid{0.1, 1.5, 0.1}.values()), nsmodel::Error);
  EXPECT_THROW((ProbabilityGrid{0.1, 1.0, 0.0}.values()), nsmodel::Error);
}

TEST(OptimizeProbability, FindsMaximumOfConcaveObjective) {
  // Objective peaks at p = 0.3.
  const auto eval = [](double p) -> std::optional<double> {
    return -(p - 0.3) * (p - 0.3);
  };
  const auto best = optimizeProbability(
      eval, MetricKind::ReachabilityUnderLatency, {0.05, 1.0, 0.05});
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(best->probability, 0.3, 1e-12);
}

TEST(OptimizeProbability, FindsMinimumForCostMetrics) {
  const auto eval = [](double p) -> std::optional<double> {
    return (p - 0.6) * (p - 0.6) + 2.0;
  };
  const auto best = optimizeProbability(
      eval, MetricKind::LatencyUnderReachability, {0.1, 1.0, 0.1});
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(best->probability, 0.6, 1e-12);
  EXPECT_NEAR(best->value, 2.0, 1e-12);
}

TEST(OptimizeProbability, SkipsInfeasiblePoints) {
  const auto eval = [](double p) -> std::optional<double> {
    if (p < 0.5) return std::nullopt;
    return 1.0 - p;  // maximise -> p = 0.5 wins among feasible
  };
  const auto best = optimizeProbability(
      eval, MetricKind::ReachabilityUnderLatency, {0.1, 1.0, 0.1});
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(best->probability, 0.5, 1e-12);
}

TEST(OptimizeProbability, AllInfeasibleGivesNullopt) {
  const auto eval = [](double) -> std::optional<double> {
    return std::nullopt;
  };
  EXPECT_FALSE(optimizeProbability(eval,
                                   MetricKind::ReachabilityUnderLatency,
                                   {0.1, 1.0, 0.1})
                   .has_value());
}

TEST(OptimizeProbability, TieKeepsSmallerProbability) {
  const auto eval = [](double) -> std::optional<double> { return 1.0; };
  const auto best = optimizeProbability(
      eval, MetricKind::ReachabilityUnderLatency, {0.1, 1.0, 0.1});
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(best->probability, 0.1, 1e-12);
}

TEST(SweepProbability, ReturnsValuePerGridPoint) {
  const auto eval = [](double p) -> std::optional<double> {
    if (p > 0.45 && p < 0.55) return std::nullopt;
    return p * 2.0;
  };
  const auto series = sweepProbability(eval, {0.1, 1.0, 0.1});
  ASSERT_EQ(series.size(), 10u);
  EXPECT_NEAR(*series[0], 0.2, 1e-12);
  EXPECT_FALSE(series[4].has_value());  // p = 0.5
  EXPECT_NEAR(*series[9], 2.0, 1e-12);
}

TEST(OptimizeAnalytic, ReproducesPaperDecreasingOptimum) {
  analytic::RingModelConfig base;
  base.rings = 5;
  base.slotsPerPhase = 3;
  const MetricSpec spec = MetricSpec::reachabilityUnderLatency(5.0);
  const ProbabilityGrid grid{0.02, 1.0, 0.02};
  base.neighborDensity = 20.0;
  const auto sparse = optimizeAnalytic(base, spec, grid);
  base.neighborDensity = 140.0;
  const auto dense = optimizeAnalytic(base, spec, grid);
  ASSERT_TRUE(sparse.has_value());
  ASSERT_TRUE(dense.has_value());
  EXPECT_GT(sparse->probability, dense->probability);
  // The optimal reachability plateau is flat in density (paper Fig. 4b).
  EXPECT_NEAR(sparse->value, dense->value, 0.05);
}

TEST(OptimizeAnalytic, EnergyMetricPrefersSmallP) {
  analytic::RingModelConfig base;
  base.rings = 5;
  base.neighborDensity = 100.0;
  const auto best = optimizeAnalytic(
      base, MetricSpec::energyUnderReachability(0.6), {0.01, 1.0, 0.01});
  ASSERT_TRUE(best.has_value());
  EXPECT_LT(best->probability, 0.2);  // paper Fig. 6(b): p* in (0, 0.1]
}

}  // namespace
}  // namespace nsmodel::core
