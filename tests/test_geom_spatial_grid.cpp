#include "geom/spatial_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "geom/disk_sampling.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace nsmodel::geom {
namespace {

std::vector<std::uint32_t> bruteForceWithin(const std::vector<Vec2>& points,
                                            const Vec2& center,
                                            double radius) {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].distanceSquaredTo(center) <= radius * radius) {
      out.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return out;
}

TEST(SpatialGrid, RejectsNonPositiveCellSize) {
  EXPECT_THROW(SpatialGrid(0.0), nsmodel::Error);
  EXPECT_THROW(SpatialGrid(-1.0), nsmodel::Error);
}

TEST(SpatialGrid, EmptyGridReturnsNothing) {
  const SpatialGrid grid(1.0);
  EXPECT_EQ(grid.size(), 0u);
  EXPECT_TRUE(grid.queryWithin({0, 0}, 10.0).empty());
}

TEST(SpatialGrid, SinglePointFoundWithinRadius) {
  SpatialGrid grid(1.0);
  grid.insert({0.5, 0.5}, 7);
  const auto hits = grid.queryWithin({0.0, 0.0}, 1.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 7u);
  EXPECT_TRUE(grid.queryWithin({5.0, 5.0}, 1.0).empty());
}

TEST(SpatialGrid, BoundaryIsInclusive) {
  SpatialGrid grid(1.0);
  grid.insert({1.0, 0.0}, 0);
  EXPECT_EQ(grid.queryWithin({0.0, 0.0}, 1.0).size(), 1u);
  EXPECT_TRUE(grid.queryWithin({0.0, 0.0}, 0.999999).empty());
}

TEST(SpatialGrid, MatchesBruteForceOnRandomPoints) {
  support::Rng rng(1);
  const auto points = sampleDiskPoints(rng, {0, 0}, 5.0, 500);
  const SpatialGrid grid = SpatialGrid::build(points, 1.0);
  EXPECT_EQ(grid.size(), points.size());
  for (int trial = 0; trial < 50; ++trial) {
    const Vec2 center = sampleDisk(rng, {0, 0}, 5.0);
    const double radius = rng.uniform(0.1, 2.5);
    auto expected = bruteForceWithin(points, center, radius);
    auto got = grid.queryWithin(center, radius);
    std::sort(expected.begin(), expected.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

TEST(SpatialGrid, QueryRadiusLargerThanCellSize) {
  support::Rng rng(2);
  const auto points = sampleDiskPoints(rng, {0, 0}, 10.0, 300);
  const SpatialGrid grid = SpatialGrid::build(points, 0.5);
  auto expected = bruteForceWithin(points, {1.0, -2.0}, 4.0);
  auto got = grid.queryWithin({1.0, -2.0}, 4.0);
  std::sort(expected.begin(), expected.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

TEST(SpatialGrid, NegativeCoordinatesHandled) {
  SpatialGrid grid(1.0);
  grid.insert({-3.7, -2.2}, 1);
  grid.insert({-3.5, -2.0}, 2);
  grid.insert({3.5, 2.0}, 3);
  const auto hits = grid.queryWithin({-3.6, -2.1}, 0.5);
  EXPECT_EQ(hits.size(), 2u);
}

TEST(SpatialGrid, DuplicatePositionsAllReturned) {
  SpatialGrid grid(1.0);
  grid.insert({1.0, 1.0}, 10);
  grid.insert({1.0, 1.0}, 11);
  grid.insert({1.0, 1.0}, 12);
  EXPECT_EQ(grid.queryWithin({1.0, 1.0}, 0.0).size(), 3u);
}

TEST(SpatialGrid, ZeroRadiusFindsExactMatchesOnly) {
  SpatialGrid grid(1.0);
  grid.insert({1.0, 1.0}, 0);
  grid.insert({1.0, 1.0001}, 1);
  const auto hits = grid.queryWithin({1.0, 1.0}, 0.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
}

TEST(SpatialGrid, RejectsNegativeQueryRadius) {
  SpatialGrid grid(1.0);
  grid.insert({0, 0}, 0);
  EXPECT_THROW(grid.queryWithin({0, 0}, -0.5), nsmodel::Error);
}

TEST(SpatialGrid, ForEachVisitsPositionsToo) {
  SpatialGrid grid(2.0);
  grid.insert({1.5, 0.5}, 4);
  bool visited = false;
  grid.forEachWithin({1.5, 0.5}, 0.1,
                     [&visited](std::uint32_t id, const Vec2& pos) {
                       visited = true;
                       EXPECT_EQ(id, 4u);
                       EXPECT_DOUBLE_EQ(pos.x, 1.5);
                       EXPECT_DOUBLE_EQ(pos.y, 0.5);
                     });
  EXPECT_TRUE(visited);
}

TEST(SpatialGrid, BuildAssignsSequentialIds) {
  const std::vector<Vec2> points{{0, 0}, {1, 1}, {2, 2}};
  const SpatialGrid grid = SpatialGrid::build(points, 1.0);
  std::set<std::uint32_t> ids;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (auto id : grid.queryWithin(points[i], 0.0)) ids.insert(id);
  }
  EXPECT_EQ(ids, (std::set<std::uint32_t>{0, 1, 2}));
}

}  // namespace
}  // namespace nsmodel::geom
