#include "net/fading.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "protocols/flooding.hpp"
#include "protocols/probabilistic.hpp"
#include "sim/experiment.hpp"
#include "support/error.hpp"

namespace nsmodel::net {
namespace {

Deployment lineDeployment(std::size_t n, double spacing = 1.0) {
  std::vector<geom::Vec2> positions;
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back({static_cast<double>(i) * spacing, 0.0});
  }
  return Deployment(std::move(positions), 0,
                    static_cast<double>(n) * spacing);
}

TEST(FadingChannel, Validation) {
  support::Rng rng(1);
  const Deployment dep = lineDeployment(3);
  EXPECT_THROW(FadingChannel(dep, {0.0, 0.3, 0}), nsmodel::Error);
  EXPECT_THROW(FadingChannel(dep, {1.0, 0.0, 0}), nsmodel::Error);
  EXPECT_THROW(FadingChannel(dep, {1.0, 1.0, 0}), nsmodel::Error);
  EXPECT_NO_THROW(FadingChannel(dep, {1.0, 0.3, 0}));
}

TEST(FadingChannel, ReachProbabilityShape) {
  const Deployment dep = lineDeployment(2);
  const FadingChannel channel(dep, {1.0, 0.25, 0});
  // Certain inside (1-w)r, impossible outside (1+w)r, linear between.
  EXPECT_DOUBLE_EQ(channel.reachProbability(0.0), 1.0);
  EXPECT_DOUBLE_EQ(channel.reachProbability(0.75), 1.0);
  EXPECT_DOUBLE_EQ(channel.reachProbability(1.25), 0.0);
  EXPECT_DOUBLE_EQ(channel.reachProbability(5.0), 0.0);
  EXPECT_NEAR(channel.reachProbability(1.0), 0.5, 1e-12);
  EXPECT_NEAR(channel.reachProbability(0.875), 0.75, 1e-12);
  EXPECT_THROW(channel.reachProbability(-0.1), nsmodel::Error);
}

TEST(FadingChannel, SolidRegionLinkAlwaysDelivers) {
  // Two nodes at distance 0.5 < (1-w)r: the single transmission always
  // arrives, like plain CAM.
  const Deployment dep = lineDeployment(2, 0.5);
  const Topology topo(dep, 1.3);  // (1+w) r candidate range
  FadingChannel channel(dep, {1.0, 0.3, 7});
  for (int slot = 0; slot < 50; ++slot) {
    int delivered = 0;
    channel.resolveSlot(topo, {0},
                        [&delivered](NodeId, NodeId) { ++delivered; });
    EXPECT_EQ(delivered, 1);
  }
}

TEST(FadingChannel, TransitionalLinkDeliversAtExpectedRate) {
  // Distance exactly r with w = 0.3: q = 0.5.
  const Deployment dep = lineDeployment(2, 1.0);
  const Topology topo(dep, 1.3);
  FadingChannel channel(dep, {1.0, 0.3, 8});
  int delivered = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    channel.resolveSlot(topo, {0},
                        [&delivered](NodeId, NodeId) { ++delivered; });
  }
  EXPECT_NEAR(static_cast<double>(delivered) / trials, 0.5, 0.02);
}

TEST(FadingChannel, ReachedSignalsInterfere) {
  // Receiver 1 sits in the solid region of both 0 and 2: both signals
  // always arrive and always collide.
  std::vector<geom::Vec2> positions{{0, 0}, {0.5, 0}, {1.0, 0}};
  const Deployment dep(std::move(positions), 0, 5.0);
  const Topology topo(dep, 1.3);
  FadingChannel channel(dep, {1.0, 0.3, 9});
  for (int t = 0; t < 20; ++t) {
    SlotOutcome outcome = channel.resolveSlot(topo, {0, 2}, [](NodeId,
                                                               NodeId) {
      FAIL() << "reception should always collide";
    });
    EXPECT_EQ(outcome.deliveries, 0u);
    EXPECT_GE(outcome.lostReceivers, 1u);
  }
}

TEST(FadingChannel, FarInterfererOnlySometimesDestroys) {
  // Receiver 1 at 0.5 from sender 0 (solid) and at distance 1.0 from
  // node 2 (transitional, q = 0.5): the reception survives roughly half
  // of the slots.
  std::vector<geom::Vec2> positions{{0, 0}, {0.5, 0}, {1.5, 0}};
  const Deployment dep(std::move(positions), 0, 5.0);
  const Topology topo(dep, 1.3);
  FadingChannel channel(dep, {1.0, 0.3, 10});
  int delivered = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    channel.resolveSlot(topo, {0, 2}, [&delivered](NodeId rx, NodeId) {
      if (rx == 1) ++delivered;
    });
  }
  EXPECT_NEAR(static_cast<double>(delivered) / trials, 0.5, 0.02);
}

TEST(FadingChannel, WorksInsideBroadcastExperiment) {
  support::Rng rng = support::Rng::forStream(11, 0);
  const Deployment dep = Deployment::paperDisk(rng, 4, 1.0, 30.0);
  const FadingParams params{1.0, 0.3, 11};
  const Topology topo(dep, (1.0 + params.transitionWidth) *
                               params.nominalRange);
  FadingChannel channel(dep, params);
  sim::ExperimentConfig cfg;
  cfg.rings = 4;
  cfg.neighborDensity = 30.0;
  protocols::ProbabilisticBroadcast protocol(0.4);
  const sim::RunResult run =
      sim::runBroadcast(cfg, dep, topo, channel, protocol, rng);
  EXPECT_GT(run.reachedCount(), 1u);
  EXPECT_LE(run.finalReachability(), 1.0);
  EXPECT_GT(run.averageSuccessRate(), 0.0);
}

TEST(FadingChannel, NarrowTransitionApproachesUnitDisk) {
  // With w -> 0 the fading run should track the plain CAM run closely.
  support::Rng rngA = support::Rng::forStream(12, 0);
  const Deployment dep = Deployment::paperDisk(rngA, 4, 1.0, 40.0);
  sim::ExperimentConfig cfg;
  cfg.rings = 4;
  cfg.neighborDensity = 40.0;

  const FadingParams params{1.0, 0.01, 12};
  const Topology fadingTopo(dep, 1.01);
  FadingChannel fading(dep, params);
  protocols::SimpleFlooding floodA;
  support::Rng runRngA = support::Rng::forStream(13, 1);
  const auto fadingRun =
      sim::runBroadcast(cfg, dep, fadingTopo, fading, floodA, runRngA);

  const Topology camTopo(dep, 1.0);
  protocols::SimpleFlooding floodB;
  support::Rng runRngB = support::Rng::forStream(13, 1);
  const auto camRun =
      sim::runBroadcast(cfg, dep, camTopo, floodB, runRngB);
  EXPECT_NEAR(fadingRun.finalReachability(), camRun.finalReachability(),
              0.1);
}

}  // namespace
}  // namespace nsmodel::net
