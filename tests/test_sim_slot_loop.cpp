// Bit-identity of the flat slot-loop driver against the DES engine.
//
// The flat loop replaces per-slot std::function closures with a direct
// scan of the workspace agenda; because every resolver fires at
// slot + 0.5 and never schedules into the past, DES firing order equals
// increasing slot order and the two drivers must produce bit-identical
// RunResults at equal seeds — across every channel model and every fault
// family, including drift spill-over (which re-activates future slots
// mid-run) and energy cutoffs (which gate transmissions mid-run).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "protocols/counter_based.hpp"
#include "protocols/flooding.hpp"
#include "protocols/probabilistic.hpp"
#include "sim/experiment.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/run_workspace.hpp"

namespace {

using namespace nsmodel;

/// One scenario of the equivalence matrix: a channel model crossed with a
/// fault mix, applied to ExperimentConfig by `mutate`.
struct SlotLoopCase {
  std::string name;
  net::ChannelModel channel = net::ChannelModel::CollisionAware;
  void (*mutate)(sim::ExperimentConfig&) = nullptr;
};

void noFaults(sim::ExperimentConfig&) {}

void crashFaults(sim::ExperimentConfig& cfg) {
  cfg.fault.faultSeed = 7;
  cfg.fault.crash.crashRate = 0.08;
  cfg.fault.crash.recoveryRate = 0.25;
}

void linkLoss(sim::ExperimentConfig& cfg) {
  cfg.fault.faultSeed = 11;
  cfg.fault.link.pGoodToBad = 0.25;
  cfg.fault.link.pBadToGood = 0.4;
  cfg.fault.link.lossBad = 0.7;
  cfg.fault.link.lossGood = 0.02;
}

void clockDrift(sim::ExperimentConfig& cfg) {
  cfg.fault.faultSeed = 13;
  cfg.fault.drift.maxSkewSlots = 0.4;
}

void energyCutoff(sim::ExperimentConfig& cfg) {
  cfg.fault.faultSeed = 17;
  cfg.fault.energyBudget = 3.0;
}

void legacyNodeFailure(sim::ExperimentConfig& cfg) {
  cfg.nodeFailureRate = 0.05;
}

void combinedFaults(sim::ExperimentConfig& cfg) {
  cfg.fault.faultSeed = 19;
  cfg.fault.crash.crashRate = 0.05;
  cfg.fault.crash.recoveryRate = 0.3;
  cfg.fault.link.pGoodToBad = 0.2;
  cfg.fault.link.pBadToGood = 0.5;
  cfg.fault.link.lossBad = 0.5;
  cfg.fault.drift.maxSkewSlots = 0.3;
  cfg.fault.energyBudget = 5.0;
}

std::vector<SlotLoopCase> equivalenceMatrix() {
  const struct {
    const char* name;
    void (*mutate)(sim::ExperimentConfig&);
  } faults[] = {
      {"clean", noFaults},           {"crash", crashFaults},
      {"link", linkLoss},            {"drift", clockDrift},
      {"energy", energyCutoff},      {"legacy", legacyNodeFailure},
      {"combined", combinedFaults},
  };
  const struct {
    const char* name;
    net::ChannelModel channel;
  } channels[] = {
      {"cfm", net::ChannelModel::CollisionFree},
      {"cam", net::ChannelModel::CollisionAware},
      {"cs", net::ChannelModel::CarrierSenseAware},
  };
  std::vector<SlotLoopCase> cases;
  for (const auto& ch : channels) {
    for (const auto& f : faults) {
      cases.push_back({std::string(ch.name) + "_" + f.name, ch.channel,
                       f.mutate});
    }
  }
  return cases;
}

sim::ExperimentConfig baseConfig(const SlotLoopCase& c) {
  sim::ExperimentConfig cfg;
  cfg.rings = 4;
  cfg.neighborDensity = 30.0;
  cfg.maxPhases = 60;
  cfg.channel = c.channel;
  c.mutate(cfg);
  return cfg;
}

/// Every observable field of the two runs must match exactly — raw event
/// streams included, not just the aggregates derived from them.
void expectIdentical(const sim::RunResult& flat, const sim::RunResult& des,
                     const std::string& label) {
  EXPECT_EQ(flat.receptionSlots(), des.receptionSlots()) << label;
  EXPECT_EQ(flat.transmissionSlots(), des.transmissionSlots()) << label;
  EXPECT_EQ(flat.receptionSlotByNode(), des.receptionSlotByNode()) << label;
  EXPECT_EQ(flat.attemptedPairs(), des.attemptedPairs()) << label;
  EXPECT_EQ(flat.deliveredPairs(), des.deliveredPairs()) << label;
  ASSERT_EQ(flat.phases().size(), des.phases().size()) << label;
  for (std::size_t i = 0; i < flat.phases().size(); ++i) {
    EXPECT_EQ(flat.phases()[i].transmissions, des.phases()[i].transmissions)
        << label << " phase " << i;
    EXPECT_EQ(flat.phases()[i].newReceivers, des.phases()[i].newReceivers)
        << label << " phase " << i;
    EXPECT_EQ(flat.phases()[i].deliveries, des.phases()[i].deliveries)
        << label << " phase " << i;
    EXPECT_EQ(flat.phases()[i].lostReceivers, des.phases()[i].lostReceivers)
        << label << " phase " << i;
  }
}

class SlotLoopEquivalence : public ::testing::TestWithParam<SlotLoopCase> {};

TEST_P(SlotLoopEquivalence, FlatLoopMatchesDesEngineBitForBit) {
  const SlotLoopCase& c = GetParam();
  for (std::uint64_t stream = 0; stream < 3; ++stream) {
    sim::ExperimentConfig flatCfg = baseConfig(c);
    flatCfg.driver = sim::SlotDriver::FlatLoop;
    sim::ExperimentConfig desCfg = baseConfig(c);
    desCfg.driver = sim::SlotDriver::DesEngine;

    const auto factory = [] {
      return std::make_unique<protocols::ProbabilisticBroadcast>(0.6);
    };
    const sim::RunResult flat =
        sim::runExperiment(flatCfg, factory, 42, stream);
    const sim::RunResult des = sim::runExperiment(desCfg, factory, 42, stream);
    expectIdentical(flat, des, c.name + " stream " + std::to_string(stream));
  }
}

// Stateful protocols exercise reset + duplicate-driven cancellation paths
// that the probabilistic protocol never reaches.
TEST_P(SlotLoopEquivalence, CounterBasedProtocolMatchesToo) {
  const SlotLoopCase& c = GetParam();
  sim::ExperimentConfig flatCfg = baseConfig(c);
  flatCfg.driver = sim::SlotDriver::FlatLoop;
  sim::ExperimentConfig desCfg = baseConfig(c);
  desCfg.driver = sim::SlotDriver::DesEngine;

  const auto factory = [] {
    return std::make_unique<protocols::CounterBasedBroadcast>(3);
  };
  const sim::RunResult flat = sim::runExperiment(flatCfg, factory, 42, 1);
  const sim::RunResult des = sim::runExperiment(desCfg, factory, 42, 1);
  expectIdentical(flat, des, c.name);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SlotLoopEquivalence, ::testing::ValuesIn(equivalenceMatrix()),
    [](const ::testing::TestParamInfo<SlotLoopCase>& info) {
      return info.param.name;
    });

// The driver choice must not leak into Monte-Carlo aggregates either —
// the whole replication pipeline (cache, chunking, workspaces) sits on
// top of runBroadcast and sees identical results from both drivers.
TEST(SlotLoopEquivalence, MonteCarloAggregatesMatchAcrossDrivers) {
  sim::MonteCarloConfig mc;
  mc.experiment.rings = 4;
  mc.experiment.neighborDensity = 30.0;
  mc.experiment.maxPhases = 60;
  mc.experiment.fault.faultSeed = 23;
  mc.experiment.fault.drift.maxSkewSlots = 0.3;
  mc.replications = 8;
  const auto factory = [] {
    return std::make_unique<protocols::SimpleFlooding>();
  };
  const auto extract = [](const sim::RunResult& r) {
    return std::vector<double>{r.finalReachability(),
                               static_cast<double>(r.totalBroadcasts()),
                               r.latencyForReachability(0.9).value_or(-1.0)};
  };
  mc.experiment.driver = sim::SlotDriver::FlatLoop;
  const auto flat = sim::monteCarlo(mc, factory, extract);
  mc.experiment.driver = sim::SlotDriver::DesEngine;
  const auto des = sim::monteCarlo(mc, factory, extract);
  ASSERT_EQ(flat.size(), des.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i].stats.mean, des[i].stats.mean);
    EXPECT_EQ(flat[i].stats.stddev, des[i].stats.stddev);
    EXPECT_EQ(flat[i].definedFraction, des[i].definedFraction);
  }
}

}  // namespace
