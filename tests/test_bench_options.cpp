// BenchOptions::parse hardening: a typo on a bench command line must die
// loudly (exit 2) rather than silently run the full-size default sweep.
#include "bench/bench_common.hpp"

#include <gtest/gtest.h>

#include <array>

namespace nsmodel::bench {
namespace {

BenchOptions parseArgs(std::initializer_list<const char*> args) {
  std::vector<char*> argv{const_cast<char*>("bench")};
  for (const char* arg : args) argv.push_back(const_cast<char*>(arg));
  return BenchOptions::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchOptions, DefaultsMatchThePaper) {
  const BenchOptions opts = parseArgs({});
  EXPECT_FALSE(opts.fast);
  EXPECT_EQ(opts.replications, 30);
  EXPECT_EQ(opts.seed, 42u);
  EXPECT_FALSE(opts.append);
  EXPECT_EQ(opts.rhos().size(), 7u);
  EXPECT_EQ(opts.analyticGrid().values().size(), 100u);
  EXPECT_EQ(opts.simulationGrid().values().size(), 20u);
}

TEST(BenchOptions, ParsesAllOptions) {
  const BenchOptions opts =
      parseArgs({"--fast", "--reps=5", "--seed=7", "--append"});
  EXPECT_TRUE(opts.fast);
  EXPECT_EQ(opts.replications, 5);
  EXPECT_EQ(opts.seed, 7u);
  EXPECT_TRUE(opts.append);
  EXPECT_EQ(opts.rhos().size(), 3u);
}

TEST(BenchOptionsDeathTest, RejectsUnknownOption) {
  EXPECT_EXIT(parseArgs({"--replications=5"}), testing::ExitedWithCode(2),
              "unknown option");
}

TEST(BenchOptionsDeathTest, RejectsMalformedNumbers) {
  EXPECT_EXIT(parseArgs({"--reps=abc"}), testing::ExitedWithCode(2),
              "malformed number");
  EXPECT_EXIT(parseArgs({"--reps=5x"}), testing::ExitedWithCode(2),
              "malformed number");
  EXPECT_EXIT(parseArgs({"--seed="}), testing::ExitedWithCode(2),
              "malformed number");
}

TEST(BenchOptionsDeathTest, RejectsOutOfRangeReps) {
  EXPECT_EXIT(parseArgs({"--reps=0"}), testing::ExitedWithCode(2),
              "--reps requires");
  EXPECT_EXIT(parseArgs({"--reps=1000001"}), testing::ExitedWithCode(2),
              "--reps requires");
}

TEST(BenchOptionsDeathTest, RejectsNegativeValues) {
  EXPECT_EXIT(parseArgs({"--reps=-3"}), testing::ExitedWithCode(2), "");
  EXPECT_EXIT(parseArgs({"--seed=-1"}), testing::ExitedWithCode(2), "");
}

}  // namespace
}  // namespace nsmodel::bench
