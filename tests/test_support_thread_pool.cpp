#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace nsmodel::support {
namespace {

TEST(ThreadPool, ReportsConfiguredSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool pool(0), Error);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllExecute) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // destructor joins; all queued tasks must have run
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelFor, CoversExactRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  parallelFor(pool, 0, 100, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallelFor(pool, 5, 5, [&touched](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, ReversedRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallelFor(pool, 10, 3, [&touched](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, RespectsExplicitChunking) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  parallelFor(pool, 0, 1000,
              [&sum](std::size_t i) { sum += static_cast<long>(i); }, 17);
  EXPECT_EQ(sum.load(), 499500);
}

TEST(ParallelFor, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallelFor(pool, 0, 100,
                  [](std::size_t i) {
                    if (i == 37) throw std::runtime_error("at 37");
                  }),
      std::runtime_error);
}

TEST(ParallelFor, AllIterationsRunDespiteException) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  try {
    parallelFor(pool, 0, 64, [&count](std::size_t i) {
      ++count;
      if (i == 0) throw std::runtime_error("early");
    }, 1);
  } catch (const std::runtime_error&) {
  }
  // parallelFor waits for every chunk before rethrowing.
  EXPECT_EQ(count.load(), 64);
}

TEST(ParallelFor, SingleWorkerStillCorrect) {
  ThreadPool pool(1);
  std::vector<int> data(256, 0);
  parallelFor(pool, 0, data.size(),
              [&data](std::size_t i) { data[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i], static_cast<int>(i));
  }
}

TEST(ParallelFor, GlobalPoolOverloadWorks) {
  std::atomic<int> counter{0};
  parallelFor(0, 32, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 32);
}

TEST(ParallelForChunks, CoversRangeInExactChunks) {
  std::vector<int> data(100, 0);
  std::atomic<int> calls{0};
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> bounds;
  parallelForChunks(5, 98, 16, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    {
      std::lock_guard lock(mutex);
      bounds.emplace_back(lo, hi);
    }
    for (std::size_t i = lo; i < hi; ++i) data[i] += 1;
  });
  // ceil(93 / 16) calls, the last one short.
  EXPECT_EQ(calls.load(), 6);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i], i >= 5 && i < 98 ? 1 : 0) << i;
  }
  std::sort(bounds.begin(), bounds.end());
  for (std::size_t c = 0; c < bounds.size(); ++c) {
    EXPECT_EQ(bounds[c].first, 5 + c * 16);
    EXPECT_EQ(bounds[c].second, std::min<std::size_t>(98, 5 + (c + 1) * 16));
  }
}

TEST(ParallelForChunks, EmptyRangeIsANoOp) {
  std::atomic<int> calls{0};
  parallelForChunks(7, 7, 4, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(GlobalPool, IsSingleton) {
  EXPECT_EQ(&globalPool(), &globalPool());
  EXPECT_GE(globalPool().size(), 1u);
}

}  // namespace
}  // namespace nsmodel::support
