#include "support/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "support/error.hpp"

namespace nsmodel::support {
namespace {

TEST(TablePrinter, RejectsEmptyHeader) {
  EXPECT_THROW(TablePrinter({}), Error);
}

TEST(TablePrinter, RejectsMismatchedRow) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.addRow({std::string("only-one")}), Error);
}

TEST(TablePrinter, RendersHeaderAndRows) {
  TablePrinter table({"rho", "p", "reach"});
  table.addRow(std::vector<std::string>{"20", "0.64", "0.84"});
  table.addRow(std::vector<std::string>{"140", "0.09", "0.83"});
  const std::string out = table.toString();
  EXPECT_NE(out.find("rho"), std::string::npos);
  EXPECT_NE(out.find("reach"), std::string::npos);
  EXPECT_NE(out.find("0.64"), std::string::npos);
  EXPECT_NE(out.find("140"), std::string::npos);
  // Header, separator, and two data rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinter, ColumnsAreAligned) {
  TablePrinter table({"x", "value"});
  table.addRow(std::vector<std::string>{"1", "2"});
  table.addRow(std::vector<std::string>{"100", "20000"});
  std::istringstream in(table.toString());
  std::string header, separator, row1, row2;
  std::getline(in, header);
  std::getline(in, separator);
  std::getline(in, row1);
  std::getline(in, row2);
  EXPECT_EQ(row1.size(), row2.size());
  EXPECT_EQ(header.size(), row2.size());
}

TEST(TablePrinter, DoubleRowsRespectPrecision) {
  TablePrinter table({"v"});
  table.addRow(std::vector<double>{1.23456}, 2);
  EXPECT_NE(table.toString().find("1.23"), std::string::npos);
  EXPECT_EQ(table.toString().find("1.2346"), std::string::npos);
}

TEST(TablePrinter, TracksRowCount) {
  TablePrinter table({"a"});
  EXPECT_EQ(table.rows(), 0u);
  table.addRow({std::string("x")});
  EXPECT_EQ(table.rows(), 1u);
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
  EXPECT_EQ(formatDouble(-0.5, 3), "-0.500");
}

class CsvWriterTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "nsmodel_csv_test.csv";

  void TearDown() override { std::remove(path_.c_str()); }

  std::string slurp() const {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

TEST_F(CsvWriterTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"rho", "p"});
    csv.addRow({std::string("20"), std::string("0.5")});
    csv.addRow(std::vector<double>{140.0, 0.09}, 2);
  }
  const std::string content = slurp();
  EXPECT_EQ(content, "rho,p\n20,0.5\n140.00,0.09\n");
}

TEST_F(CsvWriterTest, EscapesSpecialCharacters) {
  {
    CsvWriter csv(path_, {"name", "note"});
    csv.addRow({std::string("a,b"), std::string("say \"hi\"")});
  }
  const std::string content = slurp();
  EXPECT_NE(content.find("\"a,b\""), std::string::npos);
  EXPECT_NE(content.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST_F(CsvWriterTest, RejectsWidthMismatch) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_THROW(csv.addRow({std::string("1")}), Error);
}

TEST(CsvWriter, RejectsUnwritablePath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), Error);
}

}  // namespace
}  // namespace nsmodel::support
