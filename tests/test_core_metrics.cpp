#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "protocols/probabilistic.hpp"
#include "sim/experiment.hpp"
#include "support/error.hpp"

namespace nsmodel::core {
namespace {

analytic::RingTrace makeTrace(double rho, double p) {
  analytic::RingModelConfig cfg;
  cfg.rings = 5;
  cfg.neighborDensity = rho;
  cfg.broadcastProb = p;
  return analytic::RingModel(cfg).run();
}

TEST(MetricKind, NamesAreDistinct) {
  EXPECT_STRNE(metricName(MetricKind::ReachabilityUnderLatency),
               metricName(MetricKind::LatencyUnderReachability));
  EXPECT_STRNE(metricName(MetricKind::EnergyUnderReachability),
               metricName(MetricKind::ReachabilityUnderEnergy));
}

TEST(MetricKind, Directions) {
  EXPECT_TRUE(higherIsBetter(MetricKind::ReachabilityUnderLatency));
  EXPECT_TRUE(higherIsBetter(MetricKind::ReachabilityUnderEnergy));
  EXPECT_FALSE(higherIsBetter(MetricKind::LatencyUnderReachability));
  EXPECT_FALSE(higherIsBetter(MetricKind::EnergyUnderReachability));
}

TEST(MetricKind, IsBetterFollowsDirection) {
  EXPECT_TRUE(isBetter(MetricKind::ReachabilityUnderLatency, 0.8, 0.7));
  EXPECT_FALSE(isBetter(MetricKind::ReachabilityUnderLatency, 0.7, 0.8));
  EXPECT_TRUE(isBetter(MetricKind::LatencyUnderReachability, 3.0, 5.0));
  EXPECT_FALSE(isBetter(MetricKind::LatencyUnderReachability, 5.0, 3.0));
}

TEST(MetricSpec, NamedConstructorsValidate) {
  EXPECT_NO_THROW(MetricSpec::reachabilityUnderLatency(5.0));
  EXPECT_THROW(MetricSpec::reachabilityUnderLatency(0.0), nsmodel::Error);
  EXPECT_NO_THROW(MetricSpec::latencyUnderReachability(0.72));
  EXPECT_THROW(MetricSpec::latencyUnderReachability(1.5), nsmodel::Error);
  EXPECT_THROW(MetricSpec::latencyUnderReachability(0.0), nsmodel::Error);
  EXPECT_NO_THROW(MetricSpec::energyUnderReachability(0.72));
  EXPECT_THROW(MetricSpec::energyUnderReachability(-0.1), nsmodel::Error);
  EXPECT_NO_THROW(MetricSpec::reachabilityUnderEnergy(35.0));
  EXPECT_THROW(MetricSpec::reachabilityUnderEnergy(-1.0), nsmodel::Error);
}

TEST(EvaluateMetric, AnalyticBackendMatchesTraceHelpers) {
  const analytic::RingTrace trace = makeTrace(60.0, 0.2);
  EXPECT_DOUBLE_EQ(
      *evaluateMetric(MetricSpec::reachabilityUnderLatency(5.0), trace),
      trace.reachabilityAfter(5.0));
  const auto latency =
      evaluateMetric(MetricSpec::latencyUnderReachability(0.5), trace);
  ASSERT_TRUE(latency.has_value());
  EXPECT_DOUBLE_EQ(*latency, *trace.latencyForReachability(0.5));
  const auto energy =
      evaluateMetric(MetricSpec::energyUnderReachability(0.5), trace);
  ASSERT_TRUE(energy.has_value());
  EXPECT_DOUBLE_EQ(*energy, *trace.broadcastsForReachability(0.5));
  EXPECT_DOUBLE_EQ(
      *evaluateMetric(MetricSpec::reachabilityUnderEnergy(35.0), trace),
      trace.reachabilityForBudget(35.0));
}

TEST(EvaluateMetric, InfeasibleTargetsYieldNullopt) {
  const analytic::RingTrace trace = makeTrace(20.0, 0.01);
  EXPECT_FALSE(
      evaluateMetric(MetricSpec::latencyUnderReachability(0.95), trace)
          .has_value());
  EXPECT_FALSE(
      evaluateMetric(MetricSpec::energyUnderReachability(0.95), trace)
          .has_value());
  // Reachability metrics are always defined.
  EXPECT_TRUE(
      evaluateMetric(MetricSpec::reachabilityUnderLatency(5.0), trace)
          .has_value());
  EXPECT_TRUE(
      evaluateMetric(MetricSpec::reachabilityUnderEnergy(10.0), trace)
          .has_value());
}

TEST(EvaluateMetric, SimulationBackend) {
  sim::ExperimentConfig cfg;
  cfg.rings = 4;
  cfg.neighborDensity = 30.0;
  const auto factory = [] {
    return std::make_unique<protocols::ProbabilisticBroadcast>(0.5);
  };
  const sim::RunResult run = sim::runExperiment(cfg, factory, 1, 0);
  EXPECT_DOUBLE_EQ(
      *evaluateMetric(MetricSpec::reachabilityUnderLatency(5.0), run),
      run.reachabilityAfter(5.0));
  EXPECT_DOUBLE_EQ(
      *evaluateMetric(MetricSpec::reachabilityUnderEnergy(30.0), run),
      run.reachabilityForBudget(30.0));
}

TEST(EvaluateMetric, DualityOfLatencyAndReachability) {
  // If reach(T) = R under the latency metric, then latency(R) <= T.
  const analytic::RingTrace trace = makeTrace(80.0, 0.15);
  const double reach =
      *evaluateMetric(MetricSpec::reachabilityUnderLatency(5.0), trace);
  const auto latency =
      evaluateMetric(MetricSpec::latencyUnderReachability(reach), trace);
  ASSERT_TRUE(latency.has_value());
  EXPECT_LE(*latency, 5.0 + 1e-6);
}

}  // namespace
}  // namespace nsmodel::core
