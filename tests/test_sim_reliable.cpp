#include "sim/reliable.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace nsmodel::sim {
namespace {

ReliableBroadcastConfig smallConfig(double rho) {
  ReliableBroadcastConfig cfg;
  cfg.base.rings = 3;
  cfg.base.neighborDensity = rho;
  return cfg;
}

TEST(ReliableBroadcast, Validation) {
  ReliableBroadcastConfig cfg = smallConfig(15.0);
  cfg.maxRounds = 0;
  EXPECT_THROW(runReliableBroadcast(cfg, 1, 0), nsmodel::Error);
  cfg = smallConfig(15.0);
  cfg.base.slotsPerPhase = 0;
  EXPECT_THROW(runReliableBroadcast(cfg, 1, 0), nsmodel::Error);
  cfg = smallConfig(15.0);
  cfg.initialBackoffWindow = 0;
  EXPECT_THROW(runReliableBroadcast(cfg, 1, 0), nsmodel::Error);
  cfg = smallConfig(15.0);
  cfg.maxBackoffWindow = cfg.initialBackoffWindow - 1;
  EXPECT_THROW(runReliableBroadcast(cfg, 1, 0), nsmodel::Error);
  cfg = smallConfig(15.0);
  cfg.ackSpreadWindow = 0;
  EXPECT_THROW(runReliableBroadcast(cfg, 1, 0), nsmodel::Error);
}

TEST(ReliableBroadcast, IsDeterministicPerStream) {
  const ReliableBroadcastConfig cfg = smallConfig(15.0);
  const auto a = runReliableBroadcast(cfg, 42, 3);
  const auto b = runReliableBroadcast(cfg, 42, 3);
  EXPECT_EQ(a.dataTransmissions, b.dataTransmissions);
  EXPECT_EQ(a.ackTransmissions, b.ackTransmissions);
  EXPECT_EQ(a.reachedCount, b.reachedCount);
}

TEST(ReliableBroadcast, DeliversToEveryoneAndConfirms) {
  const auto result = runReliableBroadcast(smallConfig(15.0), 42, 0);
  EXPECT_DOUBLE_EQ(result.reachability(), 1.0);
  EXPECT_TRUE(result.allAcknowledged);
  EXPECT_GT(result.ackTransmissions, 0u);
}

TEST(ReliableBroadcast, OracleModeHasNoAckTraffic) {
  ReliableBroadcastConfig cfg = smallConfig(15.0);
  cfg.simulateAcks = false;
  const auto result = runReliableBroadcast(cfg, 42, 0);
  EXPECT_EQ(result.ackTransmissions, 0u);
  EXPECT_DOUBLE_EQ(result.reachability(), 1.0);
  EXPECT_TRUE(result.allAcknowledged);
}

TEST(ReliableBroadcast, OracleModeIsCheaperThanSimulatedAcks) {
  ReliableBroadcastConfig acked = smallConfig(15.0);
  ReliableBroadcastConfig oracle = smallConfig(15.0);
  oracle.simulateAcks = false;
  const auto a = runReliableBroadcast(acked, 42, 0);
  const auto o = runReliableBroadcast(oracle, 42, 0);
  EXPECT_LT(o.totalTransmissions(), a.totalTransmissions());
}

TEST(ReliableBroadcast, CostsFarExceedPlainFlooding) {
  // Plain CAM flooding sends exactly one packet per reached node; the
  // CFM guarantee multiplies that by orders of magnitude (Section 3.2.1).
  const auto result = runReliableBroadcast(smallConfig(15.0), 42, 1);
  EXPECT_GT(result.totalTransmissions(),
            10 * static_cast<std::uint64_t>(result.nodeCount));
}

TEST(ReliableBroadcast, CostGrowsWithDensity) {
  const auto sparse = runReliableBroadcast(smallConfig(8.0), 42, 0);
  const auto dense = runReliableBroadcast(smallConfig(25.0), 42, 0);
  const double sparsePerNode =
      static_cast<double>(sparse.totalTransmissions()) /
      static_cast<double>(sparse.nodeCount);
  const double densePerNode =
      static_cast<double>(dense.totalTransmissions()) /
      static_cast<double>(dense.nodeCount);
  EXPECT_GT(densePerNode, sparsePerNode);
}

TEST(ReliableBroadcast, CollisionFreeChannelConfirmsFast) {
  // Under CFM every DATA and ACK is decoded; ACK spreading is the only
  // source of delay, so the whole run ends quickly and fully confirmed.
  ReliableBroadcastConfig cfg = smallConfig(15.0);
  cfg.base.channel = net::ChannelModel::CollisionFree;
  cfg.ackSpreadWindow = 2;  // no contention to dodge under CFM
  const auto result = runReliableBroadcast(cfg, 42, 0);
  EXPECT_TRUE(result.allAcknowledged);
  EXPECT_DOUBLE_EQ(result.reachability(), 1.0);
  // Every node transmits DATA at most a few rounds (ACKs trickle in over
  // the spread window while the sender's backoff grows).
  EXPECT_LT(result.dataTransmissions, 4 * result.nodeCount);
}

TEST(ReliableBroadcast, RoundCapBoundsTransmissions) {
  ReliableBroadcastConfig cfg = smallConfig(15.0);
  cfg.maxRounds = 3;
  const auto result = runReliableBroadcast(cfg, 42, 0);
  EXPECT_LE(result.dataTransmissions, 3 * result.nodeCount);
}

TEST(ReliableBroadcast, DeliveryPrecedesQuiescence) {
  const auto result = runReliableBroadcast(smallConfig(12.0), 42, 0);
  EXPECT_LE(result.deliveryLatencyPhases, result.quiescenceLatencyPhases);
  EXPECT_GT(result.deliveryLatencyPhases, 0.0);
}

TEST(ReliableBroadcast, PrebuiltTopologyOverload) {
  const ReliableBroadcastConfig cfg = smallConfig(12.0);
  support::Rng rng = support::Rng::forStream(7, 0);
  const net::Deployment dep = net::Deployment::paperDisk(
      rng, cfg.base.rings, cfg.base.ringWidth, cfg.base.neighborDensity);
  const net::Topology topo(dep, cfg.base.ringWidth);
  const auto result = runReliableBroadcast(cfg, dep, topo, rng);
  EXPECT_EQ(result.nodeCount, dep.nodeCount());
  EXPECT_GT(result.reachability(), 0.9);
}

}  // namespace
}  // namespace nsmodel::sim
