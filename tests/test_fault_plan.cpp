// Unit tests of fault::FaultPlan: deterministic rebuilds, monotone
// coupling of the crash schedules, order-independence of the
// Gilbert–Elliott queries, legacy-knob reproduction, and validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>
#include <vector>

#include "fault/fault_plan.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace {

using namespace nsmodel;

fault::FaultConfig crashConfig(double crash, double recovery = 0.0) {
  fault::FaultConfig config;
  config.crash.crashRate = crash;
  config.crash.recoveryRate = recovery;
  config.faultSeed = 7;
  return config;
}

TEST(FaultPlan, DefaultPlanIsInert) {
  fault::FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_FALSE(plan.isDown(0, 5));
  EXPECT_EQ(plan.skew(3), 0.0);
  EXPECT_FALSE(plan.linkErased(1, 2, 9));
  EXPECT_EQ(plan.energyBudget(), 0.0);
}

TEST(FaultPlan, AllDefaultConfigBuildsDisabledPlan) {
  fault::FaultConfig config;
  config.faultSeed = 99;  // a seed alone must not enable anything
  fault::FaultPlan plan = fault::FaultPlan::build(config, 50, 100, 1234);
  EXPECT_FALSE(plan.enabled());
}

TEST(FaultPlan, RebuildIsBitIdentical) {
  fault::FaultConfig config = crashConfig(0.1, 0.3);
  config.link.pGoodToBad = 0.2;
  config.link.pBadToGood = 0.4;
  config.link.lossBad = 0.7;
  config.drift.maxSkewSlots = 0.4;

  fault::FaultPlan a = fault::FaultPlan::build(config, 40, 60, 555);
  fault::FaultPlan b = fault::FaultPlan::build(config, 40, 60, 555);
  for (net::NodeId node = 0; node < 40; ++node) {
    EXPECT_EQ(a.skew(node), b.skew(node));
    for (std::uint64_t phase = 0; phase < 60; ++phase) {
      EXPECT_EQ(a.isDown(node, phase), b.isDown(node, phase));
    }
    for (std::uint64_t slot = 0; slot < 120; ++slot) {
      EXPECT_EQ(a.linkErased(node, (node + 1) % 40, slot),
                b.linkErased(node, (node + 1) % 40, slot));
    }
  }
}

TEST(FaultPlan, DifferentEntropyChangesSchedules) {
  const fault::FaultConfig config = crashConfig(0.2);
  fault::FaultPlan a = fault::FaultPlan::build(config, 200, 100, 1);
  fault::FaultPlan b = fault::FaultPlan::build(config, 200, 100, 2);
  bool differs = false;
  for (net::NodeId node = 0; node < 200 && !differs; ++node) {
    for (std::uint64_t phase = 0; phase < 100; ++phase) {
      if (a.isDown(node, phase) != b.isDown(node, phase)) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, PermanentCrashesNeverRecover) {
  fault::FaultPlan plan =
      fault::FaultPlan::build(crashConfig(0.3), 100, 200, 42);
  for (net::NodeId node = 0; node < 100; ++node) {
    bool down = false;
    for (std::uint64_t phase = 0; phase < 200; ++phase) {
      if (plan.isDown(node, phase)) down = true;
      // once down, stays down
      if (down) {
        EXPECT_TRUE(plan.isDown(node, phase));
      }
    }
  }
}

TEST(FaultPlan, TransientCrashesRecover) {
  fault::FaultConfig config = crashConfig(0.3, 0.5);
  fault::FaultPlan plan = fault::FaultPlan::build(config, 300, 200, 42);
  bool sawRecovery = false;
  for (net::NodeId node = 0; node < 300 && !sawRecovery; ++node) {
    bool wasDown = false;
    for (std::uint64_t phase = 0; phase < 200; ++phase) {
      const bool down = plan.isDown(node, phase);
      if (wasDown && !down) sawRecovery = true;
      wasDown = down;
    }
  }
  EXPECT_TRUE(sawRecovery);
}

// The schedules are coupled across rates: the same hashed uniforms drive
// the geometric inversion, so a higher crash rate can only move every
// crash earlier.  This is the basis of the pointwise degradation
// invariants in validate/fault_checks.
TEST(FaultPlan, CrashSchedulesAreMonotoneCoupled) {
  fault::FaultPlan mild = fault::FaultPlan::build(crashConfig(0.05), 500,
                                                  300, 777);
  fault::FaultPlan harsh = fault::FaultPlan::build(crashConfig(0.4), 500,
                                                   300, 777);
  for (net::NodeId node = 0; node < 500; ++node) {
    for (std::uint64_t phase = 0; phase < 300; ++phase) {
      if (mild.isDown(node, phase)) {
        EXPECT_TRUE(harsh.isDown(node, phase))
            << "node " << node << " phase " << phase
            << ": up under the harsher rate but down under the milder one";
      }
    }
  }
}

TEST(FaultPlan, SkewBoundedAndZeroWithoutDrift) {
  fault::FaultConfig config;
  config.drift.maxSkewSlots = 0.45;
  fault::FaultPlan plan = fault::FaultPlan::build(config, 400, 50, 9);
  bool sawNonzero = false;
  for (net::NodeId node = 0; node < 400; ++node) {
    const double skew = plan.skew(node);
    EXPECT_LE(std::abs(skew), 0.45);
    if (skew != 0.0) sawNonzero = true;
  }
  EXPECT_TRUE(sawNonzero);

  fault::FaultPlan noDrift =
      fault::FaultPlan::build(crashConfig(0.1), 400, 50, 9);
  for (net::NodeId node = 0; node < 400; ++node) {
    EXPECT_EQ(noDrift.skew(node), 0.0);
  }
}

// linkErased answers must be a pure function of (plan, receiver, sender,
// slot): asking in shuffled order, or twice, returns the same answers as
// asking in slot order — the cursor is an optimisation, not state.
TEST(FaultPlan, GilbertElliottQueriesAreOrderIndependent) {
  fault::FaultConfig config;
  config.faultSeed = 3;
  config.link.pGoodToBad = 0.25;
  config.link.pBadToGood = 0.35;
  config.link.lossGood = 0.05;
  config.link.lossBad = 0.8;

  struct Query {
    net::NodeId receiver;
    net::NodeId sender;
    std::uint64_t slot;
  };
  std::vector<Query> queries;
  for (net::NodeId receiver = 0; receiver < 20; ++receiver) {
    for (std::uint64_t slot = 0; slot < 90; ++slot) {
      queries.push_back({receiver, (receiver + 7) % 20, slot});
    }
  }

  fault::FaultPlan ordered = fault::FaultPlan::build(config, 20, 30, 11);
  std::vector<bool> expected;
  expected.reserve(queries.size());
  for (const Query& q : queries) {
    expected.push_back(ordered.linkErased(q.receiver, q.sender, q.slot));
  }

  std::mt19937 shuffler(1234);
  std::vector<std::size_t> order(queries.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), shuffler);

  fault::FaultPlan shuffled = fault::FaultPlan::build(config, 20, 30, 11);
  for (std::size_t index : order) {
    const Query& q = queries[index];
    EXPECT_EQ(shuffled.linkErased(q.receiver, q.sender, q.slot),
              expected[index])
        << "receiver " << q.receiver << " slot " << q.slot;
  }
  // Asking the same plan again (cursors now past most slots) must still
  // reproduce every answer.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    EXPECT_EQ(shuffled.linkErased(q.receiver, q.sender, q.slot), expected[i]);
  }
}

TEST(FaultPlan, GilbertElliottLossRatesAreMonotoneCoupled) {
  fault::FaultConfig mild;
  mild.faultSeed = 5;
  mild.link.pGoodToBad = 0.3;
  mild.link.pBadToGood = 0.4;
  mild.link.lossBad = 0.3;
  fault::FaultConfig harsh = mild;
  harsh.link.lossBad = 0.9;

  fault::FaultPlan mildPlan = fault::FaultPlan::build(mild, 30, 40, 21);
  fault::FaultPlan harshPlan = fault::FaultPlan::build(harsh, 30, 40, 21);
  for (net::NodeId receiver = 0; receiver < 30; ++receiver) {
    for (std::uint64_t slot = 0; slot < 120; ++slot) {
      if (mildPlan.linkErased(receiver, 0, slot)) {
        EXPECT_TRUE(harshPlan.linkErased(receiver, 0, slot));
      }
    }
  }
}

TEST(FaultPlan, ZeroLossNeverErases) {
  fault::FaultConfig config;
  config.link.pGoodToBad = 0.5;
  config.link.pBadToGood = 0.1;
  config.link.lossGood = 0.0;
  config.link.lossBad = 1.0;  // activates the chain...
  config.link.pGoodToBad = 0.0;  // ...but it can never leave Good
  fault::FaultPlan plan = fault::FaultPlan::build(config, 10, 40, 2);
  ASSERT_TRUE(plan.hasLinkLoss());
  for (net::NodeId receiver = 0; receiver < 10; ++receiver) {
    for (std::uint64_t slot = 0; slot < 100; ++slot) {
      EXPECT_FALSE(plan.linkErased(receiver, 1, slot));
    }
  }
}

// The legacy nodeFailureRate must keep drawing from the run's own RNG in
// the historical order, so pre-fault-layer seeds reproduce old outputs.
TEST(FaultPlan, LegacyFailuresReproduceHistoricalDraws) {
  const double rate = 0.15;
  const std::size_t n = 50;

  support::Rng planRng = support::Rng::forStream(42, 3);
  fault::FaultPlan plan;
  plan.addLegacyNodeFailures(rate, n, planRng);

  support::Rng referenceRng = support::Rng::forStream(42, 3);
  std::vector<std::uint32_t> deathPhase(n);
  for (std::size_t node = 0; node < n; ++node) {
    std::uint32_t phase = 1;
    while (!referenceRng.bernoulli(rate) && phase < 1000000) ++phase;
    deathPhase[node] = phase;
  }

  // Both consumed the same number of draws...
  EXPECT_EQ(planRng.next(), referenceRng.next());
  // ...and the schedules match the historical death phases.
  for (std::size_t node = 0; node < n; ++node) {
    for (std::uint64_t phase = 1; phase < 40; ++phase) {
      EXPECT_EQ(plan.isDown(static_cast<net::NodeId>(node), phase),
                phase >= deathPhase[node])
          << "node " << node << " phase " << phase;
    }
  }
}

TEST(FaultPlan, ValidateRejectsBadParameters) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  {
    fault::FaultConfig config;
    config.crash.crashRate = -0.1;
    EXPECT_THROW(fault::FaultPlan::build(config, 10, 10, 0), ConfigError);
  }
  {
    fault::FaultConfig config;
    config.crash.crashRate = 1.5;
    EXPECT_THROW(config.validate(), ConfigError);
  }
  {
    fault::FaultConfig config;
    config.crash.crashRate = nan;
    EXPECT_THROW(config.validate(), ConfigError);
  }
  {
    fault::FaultConfig config;
    config.link.lossBad = 1.1;
    EXPECT_THROW(config.validate(), ConfigError);
  }
  {
    fault::FaultConfig config;
    config.drift.maxSkewSlots = 0.5;  // must stay strictly below half a slot
    EXPECT_THROW(config.validate(), ConfigError);
  }
  {
    fault::FaultConfig config;
    config.drift.maxSkewSlots = nan;
    EXPECT_THROW(config.validate(), ConfigError);
  }
  {
    fault::FaultConfig config;
    config.energyBudget = -1.0;
    EXPECT_THROW(config.validate(), ConfigError);
  }
  {
    fault::FaultConfig config;  // all defaults are valid
    EXPECT_NO_THROW(config.validate());
  }
}

}  // namespace
