// Parameterized property sweeps over the packet-level simulator: for every
// (rho, p, channel) combination the slotted broadcast run must satisfy
// structural invariants that hold regardless of randomness.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "protocols/probabilistic.hpp"
#include "sim/experiment.hpp"

namespace nsmodel::sim {
namespace {

using Params = std::tuple<double /*rho*/, double /*p*/, net::ChannelModel>;

class ExperimentProperty : public ::testing::TestWithParam<Params> {
 protected:
  ExperimentConfig config() const {
    const auto& [rho, p, channel] = GetParam();
    (void)p;
    ExperimentConfig cfg;
    cfg.rings = 4;  // keep runs small: N = 16 * rho
    cfg.neighborDensity = rho;
    cfg.channel = channel;
    return cfg;
  }

  RunResult run(std::uint64_t stream) const {
    const auto& [rho, p, channel] = GetParam();
    (void)rho;
    (void)channel;
    const double probability = p;
    return runExperiment(
        config(),
        [probability] {
          return std::make_unique<protocols::ProbabilisticBroadcast>(
              probability);
        },
        /*seed=*/42, stream);
  }
};

TEST_P(ExperimentProperty, StructuralInvariants) {
  const RunResult result = run(0);
  // Nobody receives twice; the source never re-receives.
  EXPECT_LE(result.reachedCount(), result.nodeCount());
  // Each node transmits at most once: broadcasts <= reached nodes.
  EXPECT_LE(result.totalBroadcasts(), result.reachedCount());
  // The source always transmits.
  EXPECT_GE(result.totalBroadcasts(), 1u);
}

TEST_P(ExperimentProperty, PhaseAccountingAddsUp) {
  const RunResult result = run(1);
  std::uint64_t newReceivers = 0;
  std::uint64_t transmissions = 0;
  for (const PhaseObservation& phase : result.phases()) {
    newReceivers += phase.newReceivers;
    transmissions += phase.transmissions;
    // A delivery implies at least one transmission that phase.
    if (phase.deliveries > 0) {
      EXPECT_GT(phase.transmissions, 0u);
    }
  }
  EXPECT_EQ(newReceivers + 1, result.reachedCount());  // +1 = the source
  EXPECT_EQ(transmissions, result.totalBroadcasts());
}

TEST_P(ExperimentProperty, ReachabilityTimeSeriesIsMonotone) {
  const RunResult result = run(2);
  double prev = 0.0;
  for (double t = 0.0; t <= 30.0; t += 0.5) {
    const double cur = result.reachabilityAfter(t);
    EXPECT_GE(cur, prev) << "t=" << t;
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(prev, result.finalReachability());
}

TEST_P(ExperimentProperty, SuccessRateIsAProbability) {
  const RunResult result = run(3);
  EXPECT_GE(result.averageSuccessRate(), 0.0);
  EXPECT_LE(result.averageSuccessRate(), 1.0);
}

TEST_P(ExperimentProperty, DeterministicAcrossInvocations) {
  const RunResult a = run(4);
  const RunResult b = run(4);
  EXPECT_EQ(a.reachedCount(), b.reachedCount());
  EXPECT_EQ(a.totalBroadcasts(), b.totalBroadcasts());
  EXPECT_EQ(a.phases().size(), b.phases().size());
}

std::string paramName(const ::testing::TestParamInfo<Params>& info) {
  const auto& [rho, p, channel] = info.param;
  std::string name = "rho" + std::to_string(static_cast<int>(rho)) + "_p" +
                     std::to_string(static_cast<int>(p * 100));
  name += std::string("_") +
          (channel == net::ChannelModel::CollisionFree
               ? "cfm"
               : channel == net::ChannelModel::CollisionAware ? "cam" : "cs");
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExperimentProperty,
    ::testing::Combine(
        ::testing::Values(15.0, 40.0, 90.0),
        ::testing::Values(0.05, 0.3, 1.0),
        ::testing::Values(net::ChannelModel::CollisionFree,
                          net::ChannelModel::CollisionAware,
                          net::ChannelModel::CarrierSenseAware)),
    paramName);

// Channel-ordering property: for identical deployments and protocol
// randomness, CFM reaches at least as many nodes as CAM, which reaches at
// least as many as CAM-CS — in expectation over seeds.
class ChannelOrdering : public ::testing::TestWithParam<double> {};

TEST_P(ChannelOrdering, CfmBeatsCamBeatsCs) {
  const double rho = GetParam();
  auto meanReach = [rho](net::ChannelModel channel) {
    ExperimentConfig cfg;
    cfg.rings = 4;
    cfg.neighborDensity = rho;
    cfg.channel = channel;
    double total = 0.0;
    for (std::uint64_t stream = 0; stream < 8; ++stream) {
      total += runExperiment(
                   cfg,
                   [] {
                     return std::make_unique<
                         protocols::ProbabilisticBroadcast>(0.3);
                   },
                   42, stream)
                   .reachabilityAfter(5.0);
    }
    return total / 8.0;
  };
  const double cfm = meanReach(net::ChannelModel::CollisionFree);
  const double cam = meanReach(net::ChannelModel::CollisionAware);
  const double cs = meanReach(net::ChannelModel::CarrierSenseAware);
  EXPECT_GE(cfm, cam - 0.02) << "rho=" << rho;
  EXPECT_GE(cam, cs - 0.02) << "rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(Densities, ChannelOrdering,
                         ::testing::Values(20.0, 60.0, 100.0));

}  // namespace
}  // namespace nsmodel::sim
