// Thread-schedule robustness of the cancellation protocol, for the
// thread-sanitizer CI lane (kept separate so that job can build just the
// *_threads binaries).
//
// The property under test: when one shard of a gang hits the deadline —
// here forced deterministically by the test-only straggler injector,
// which makes a chosen shard sleep at the top of every phase A, so the
// other shards drift ahead to the ring bound and park on its gates —
// the whole gang unwinds through the SeqGate abandonment chain without
// deadlock, the caller sees one retryable TimeoutError, and the engine
// is immediately reusable.  Under TSan this also proves the stop-flag /
// gate-abandonment handshake is race-free.  The execution mode is
// pinned to the thread gang: these properties are about the gate
// protocol, which the cooperative fallback never runs.
#include <gtest/gtest.h>

#include <string>

#include "protocols/probabilistic.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario_cache.hpp"
#include "sim/sharded_engine.hpp"
#include "support/deadline.hpp"
#include "support/error.hpp"

namespace {

using namespace nsmodel;

/// Disables the straggler injection and restores the execution policy on
/// scope exit.
struct StallGuard {
  StallGuard() { sim::setShardExecOverride(sim::ShardExec::Threads); }
  ~StallGuard() {
    sim::setShardStallForTesting(-1, 0);
    sim::setShardExecOverride(sim::ShardExec::Auto);
  }
};

sim::ExperimentConfig slowConfig() {
  sim::ExperimentConfig cfg;
  cfg.rings = 5;
  cfg.neighborDensity = 30.0;
  cfg.maxPhases = 300;
  return cfg;
}

void expectIdentical(const sim::RunResult& a, const sim::RunResult& b,
                     const std::string& label) {
  EXPECT_EQ(a.receptionSlots(), b.receptionSlots()) << label;
  EXPECT_EQ(a.transmissionSlots(), b.transmissionSlots()) << label;
  EXPECT_EQ(a.receptionSlotByNode(), b.receptionSlotByNode()) << label;
  EXPECT_EQ(a.attemptedPairs(), b.attemptedPairs()) << label;
  EXPECT_EQ(a.deliveredPairs(), b.deliveredPairs()) << label;
}

TEST(ShardedCancellation, StalledShardCannotDeadlockTheGangAtABarrier) {
  StallGuard guard;
  const sim::ExperimentConfig cfg = slowConfig();
  const sim::Scenario scenario =
      sim::buildScenario(sim::ScenarioKey::forExperiment(cfg, 42, 0));
  protocols::ProbabilisticBroadcast protocol(0.4);
  sim::ShardedEngine engine(scenario.deployment, scenario.topology, 4);

  // Shard 2 sleeps 2ms per slot; a 20ms deadline therefore expires while
  // the other three shards are parked at (or heading into) the phase
  // barriers.  The test completing at all is the no-deadlock proof — a
  // stuck barrier would hang it until the CI timeout.
  sim::setShardStallForTesting(2, 2000);
  sim::RunControl control;
  control.deadline = support::Deadline::after(0.02);
  {
    support::Rng rng = scenario.protocolRng;
    try {
      engine.run(cfg, protocol, rng, nullptr, &control);
      FAIL() << "expected TimeoutError";
    } catch (const TimeoutError& e) {
      EXPECT_TRUE(e.retryable());
    }
  }

  // Same engine, stall removed: the retry completes and matches a fresh
  // engine bit for bit, proving no state leaked out of the aborted run.
  sim::setShardStallForTesting(-1, 0);
  support::Rng rng = scenario.protocolRng;
  const sim::RunResult retried = engine.run(cfg, protocol, rng);
  sim::ShardedEngine fresh(scenario.deployment, scenario.topology, 4);
  support::Rng rng2 = scenario.protocolRng;
  const sim::RunResult baseline = fresh.run(cfg, protocol, rng2);
  expectIdentical(retried, baseline, "retry after stalled-shard timeout");
}

TEST(ShardedCancellation, EveryShardIndexCanBeTheStraggler) {
  StallGuard guard;
  const sim::ExperimentConfig cfg = slowConfig();
  const sim::Scenario scenario =
      sim::buildScenario(sim::ScenarioKey::forExperiment(cfg, 42, 0));
  protocols::ProbabilisticBroadcast protocol(0.4);
  sim::ShardedEngine engine(scenario.deployment, scenario.topology, 3);
  for (int straggler = 0; straggler < 3; ++straggler) {
    sim::setShardStallForTesting(straggler, 2000);
    sim::RunControl control;
    control.deadline = support::Deadline::after(0.01);
    support::Rng rng = scenario.protocolRng;
    EXPECT_THROW(engine.run(cfg, protocol, rng, nullptr, &control),
                 TimeoutError)
        << "straggler shard " << straggler;
  }
}

TEST(ShardedCancellation, CheckpointWriterFailureUnwindsAllShards) {
  StallGuard guard;
  const sim::ExperimentConfig cfg = slowConfig();
  const sim::Scenario scenario =
      sim::buildScenario(sim::ScenarioKey::forExperiment(cfg, 42, 0));
  protocols::ProbabilisticBroadcast protocol(0.4);
  sim::ShardedEngine engine(scenario.deployment, scenario.topology, 4);
  // A sink that throws stands in for a full disk: the error must travel
  // the same stop path as a cancellation, through both barriers.
  sim::RunControl control;
  control.checkpointSink = [](const sim::RunCheckpoint&) {
    throw IoError("injected checkpoint-writer failure");
  };
  {
    support::Rng rng = scenario.protocolRng;
    EXPECT_THROW(engine.run(cfg, protocol, rng, nullptr, &control), IoError);
  }
  support::Rng rng = scenario.protocolRng;
  const sim::RunResult result = engine.run(cfg, protocol, rng);
  EXPECT_GT(result.nodeCount(), 0u);
}

}  // namespace
