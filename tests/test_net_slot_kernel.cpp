// The slot-resolution kernel's contracts (see slot_kernel.hpp):
//
//  * every ISA's bumpRow/scanTouched pair resolves a slot exactly like a
//    plain unpacked count/xor-sender reference — winners in first-touch
//    order, losers counted, the entries table left zeroed — including
//    the saturation licence (counts beyond 2 may freeze the word);
//  * the prefetch hint on bumpRow is semantically inert;
//  * runtime dispatch (env variable, programmatic override, availability
//    probing) selects working implementations and rejects unknown ones;
//  * end to end, oracle/generic/native produce bit-identical runs across
//    the channel models that use the kernel.
#include "net/slot_kernel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "protocols/probabilistic.hpp"
#include "sim/experiment.hpp"
#include "support/error.hpp"

namespace nsmodel::net {
namespace {

/// Restores the dispatched kernel (and NSMODEL_SLOT_KERNEL) on scope
/// exit so one test cannot leak its selection into the next.
class KernelGuard {
 public:
  KernelGuard() {
    const char* env = std::getenv("NSMODEL_SLOT_KERNEL");
    if (env != nullptr) saved_ = env;
    hadEnv_ = env != nullptr;
  }
  ~KernelGuard() {
    if (hadEnv_) {
      ::setenv("NSMODEL_SLOT_KERNEL", saved_.c_str(), 1);
    } else {
      ::unsetenv("NSMODEL_SLOT_KERNEL");
    }
    setSlotKernel(defaultSlotKernel());
  }

 private:
  std::string saved_;
  bool hadEnv_ = false;
};

/// The kernel ISAs whose ops tables run on this build/CPU.  The oracle's
/// table holds scalar reference loops (channels bypass it by isa, but the
/// batched driver uses it), so its contracts are checked like the rest.
std::vector<SlotKernelIsa> runnableIsas() {
  std::vector<SlotKernelIsa> isas{SlotKernelIsa::Oracle,
                                  SlotKernelIsa::Generic};
  if (slotKernelAvailable(SlotKernelIsa::Native)) {
    isas.push_back(SlotKernelIsa::Native);
  }
  return isas;
}

/// One slot's worth of bump calls: rows of distinct ids with their
/// senderBits/add, exactly as a channel would issue them.
struct BumpCall {
  std::vector<NodeId> ids;
  std::uint32_t senderBits = 0;
  std::uint32_t add = 1;
};

/// Unpacked reference resolution: explicit count and xor-sender arrays,
/// no packing, no saturation.  The kernels must reproduce its winners
/// (in first-touch order), its loser count, and its touched set.
struct Reference {
  std::vector<std::uint32_t> count;
  std::vector<std::uint32_t> senderXor;
  std::vector<NodeId> touched;
  std::vector<NodeId> receivers;
  std::vector<NodeId> senders;
  std::size_t lost = 0;

  explicit Reference(std::size_t nodes)
      : count(nodes, 0), senderXor(nodes, 0) {}

  void bump(const BumpCall& call) {
    for (const NodeId id : call.ids) {
      if (count[id] == 0) touched.push_back(id);
      count[id] += call.add;
      senderXor[id] ^= call.senderBits >> 16;
    }
  }

  void scan() {
    for (const NodeId node : touched) {
      if (count[node] == 1) {
        receivers.push_back(node);
        senders.push_back(static_cast<NodeId>(senderXor[node]));
      } else {
        ++lost;
      }
      count[node] = 0;
      senderXor[node] = 0;
    }
  }
};

/// Drives one ops table over the same calls; optionally passes each
/// call's successor row as the prefetch hint (it must not change
/// anything).
struct KernelRun {
  std::vector<NodeId> touched;
  std::vector<NodeId> receivers;
  std::vector<NodeId> senders;
  std::size_t lost = 0;
  std::vector<std::uint32_t> entries;

  KernelRun(const SlotKernelOps& ops, std::size_t nodes,
            const std::vector<BumpCall>& calls, bool withPrefetchHints)
      : entries(nodes, 0) {
    // Capacity nodes + 1: the branchless bump writes one scratch slot
    // past the live region once every node is touched (slot_kernel.hpp).
    std::vector<NodeId> touchedBuf(nodes + 1);
    std::size_t tc = 0;
    for (std::size_t i = 0; i < calls.size(); ++i) {
      const BumpCall& call = calls[i];
      const NodeId* prefetchIds = nullptr;
      std::size_t prefetchN = 0;
      if (withPrefetchHints && i + 1 < calls.size()) {
        prefetchIds = calls[i + 1].ids.data();
        prefetchN = calls[i + 1].ids.size();
      }
      tc = ops.bumpRow(entries.data(), touchedBuf.data(), tc,
                       call.ids.data(), call.ids.size(), call.senderBits,
                       call.add, prefetchIds, prefetchN);
    }
    touched.assign(touchedBuf.begin(), touchedBuf.begin() + tc);
    std::vector<NodeId> receiversBuf(nodes);
    std::vector<NodeId> sendersBuf(nodes);
    const std::size_t wins =
        ops.scanTouched(entries.data(), touchedBuf.data(), tc,
                        receiversBuf.data(), sendersBuf.data(), &lost);
    receivers.assign(receiversBuf.begin(), receiversBuf.begin() + wins);
    senders.assign(sendersBuf.begin(), sendersBuf.begin() + wins);
  }
};

/// Random slot workloads: rows are prefixes of fresh shuffles (distinct
/// ids within a call), lengths straddle the 16-lane vector boundaries,
/// and a few drift-style double bumps (add = 2, no sender) are mixed in.
std::vector<BumpCall> randomCalls(std::mt19937& rng, std::size_t nodes,
                                  std::size_t rowCount) {
  std::vector<NodeId> all(nodes);
  std::iota(all.begin(), all.end(), 0);
  std::vector<BumpCall> calls;
  for (std::size_t row = 0; row < rowCount; ++row) {
    std::shuffle(all.begin(), all.end(), rng);
    const std::size_t lengths[] = {0, 1, 15, 16, 17, 32, 33,
                                   nodes / 2, nodes};
    BumpCall call;
    const std::size_t n = lengths[rng() % std::size(lengths)];
    call.ids.assign(all.begin(), all.begin() + n);
    if (rng() % 4 == 0) {
      call.senderBits = 0;  // drift-style interferer bump
      call.add = 2;
    } else {
      call.senderBits = static_cast<std::uint32_t>(rng() % nodes) << 16;
      call.add = 1;
    }
    calls.push_back(std::move(call));
  }
  return calls;
}

TEST(SlotKernel, MatchesUnpackedReferenceOnRandomSlots) {
  KernelGuard guard;
  std::mt19937 rng(1234);
  for (const SlotKernelIsa isa : runnableIsas()) {
    setSlotKernel(isa);
    const SlotKernelOps& ops = slotKernelOps();
    ASSERT_NE(ops.bumpRow, nullptr);
    for (int trial = 0; trial < 25; ++trial) {
      const std::size_t nodes = 64 + rng() % 200;
      const auto calls = randomCalls(rng, nodes, 1 + rng() % 6);
      Reference ref(nodes);
      for (const BumpCall& call : calls) ref.bump(call);
      ref.scan();
      const KernelRun run(ops, nodes, calls, /*withPrefetchHints=*/false);
      const std::string label = std::string(ops.name) + " trial " +
                                std::to_string(trial);
      EXPECT_EQ(run.touched, ref.touched) << label;
      EXPECT_EQ(run.receivers, ref.receivers) << label;
      EXPECT_EQ(run.senders, ref.senders) << label;
      EXPECT_EQ(run.lost, ref.lost) << label;
      // scanTouched must leave the table clean for the next slot.
      for (const std::uint32_t entry : run.entries) EXPECT_EQ(entry, 0u);
    }
  }
}

TEST(SlotKernel, PrefetchHintIsSemanticallyInert) {
  KernelGuard guard;
  std::mt19937 rng(99);
  for (const SlotKernelIsa isa : runnableIsas()) {
    setSlotKernel(isa);
    const SlotKernelOps& ops = slotKernelOps();
    for (int trial = 0; trial < 10; ++trial) {
      const std::size_t nodes = 64 + rng() % 200;
      const auto calls = randomCalls(rng, nodes, 2 + rng() % 5);
      const KernelRun plain(ops, nodes, calls, false);
      const KernelRun hinted(ops, nodes, calls, true);
      EXPECT_EQ(plain.touched, hinted.touched);
      EXPECT_EQ(plain.receivers, hinted.receivers);
      EXPECT_EQ(plain.senders, hinted.senders);
      EXPECT_EQ(plain.lost, hinted.lost);
    }
  }
}

TEST(SlotKernel, ReadOnlyScanMatchesZeroingScan) {
  KernelGuard guard;
  std::mt19937 rng(4321);
  for (const SlotKernelIsa isa : runnableIsas()) {
    setSlotKernel(isa);
    const SlotKernelOps& ops = slotKernelOps();
    for (int trial = 0; trial < 15; ++trial) {
      const std::size_t nodes = 64 + rng() % 200;
      const auto calls = randomCalls(rng, nodes, 1 + rng() % 6);
      // Bump one table, scan it read-only, then scan it destructively:
      // identical winners in identical order, identical loser count, and
      // the read-only pass must not have altered a single entry.
      std::vector<std::uint32_t> entries(nodes, 0);
      std::vector<NodeId> touchedBuf(nodes + 1);
      std::size_t tc = 0;
      for (const BumpCall& call : calls) {
        tc = ops.bumpRow(entries.data(), touchedBuf.data(), tc,
                         call.ids.data(), call.ids.size(), call.senderBits,
                         call.add, nullptr, 0);
      }
      const std::vector<std::uint32_t> snapshot = entries;
      std::vector<NodeId> roReceivers(nodes), roSenders(nodes);
      std::size_t roLost = 0;
      const std::size_t roWins =
          ops.scanTouchedRO(entries.data(), touchedBuf.data(), tc,
                            roReceivers.data(), roSenders.data(), &roLost);
      EXPECT_EQ(entries, snapshot) << ops.name;
      std::vector<NodeId> receivers(nodes), senders(nodes);
      std::size_t lost = 0;
      const std::size_t wins =
          ops.scanTouched(entries.data(), touchedBuf.data(), tc,
                          receivers.data(), senders.data(), &lost);
      ASSERT_EQ(roWins, wins) << ops.name;
      EXPECT_EQ(roLost, lost) << ops.name;
      for (std::size_t i = 0; i < wins; ++i) {
        EXPECT_EQ(roReceivers[i], receivers[i]) << ops.name;
        EXPECT_EQ(roSenders[i], senders[i]) << ops.name;
      }
    }
  }
}

TEST(SlotKernel, FilterActionableMatchesScalarPredicate) {
  KernelGuard guard;
  std::mt19937 rng(777);
  for (const SlotKernelIsa isa : runnableIsas()) {
    setSlotKernel(isa);
    const SlotKernelOps& ops = slotKernelOps();
    for (int trial = 0; trial < 15; ++trial) {
      const std::size_t nodes = 64 + rng() % 200;
      // Random status words over all 8 low-bit combinations plus junk in
      // the upper bits the filter must ignore.
      std::vector<std::uint32_t> status(nodes);
      for (auto& s : status) s = (rng() % 8u) | ((rng() % 16u) << 16);
      const std::size_t n = rng() % (nodes + 1);
      std::vector<NodeId> receivers(n);
      for (auto& r : receivers) r = static_cast<NodeId>(rng() % nodes);
      std::vector<std::uint32_t> idx(n + 1, 0xDEAD);
      const std::size_t count = ops.filterActionable(
          status.data(), receivers.data(), n, idx.data());
      std::vector<std::uint32_t> expect;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t s = status[receivers[i]];
        if ((s & 1u) == 0u || (s & 7u) == 3u) {
          expect.push_back(static_cast<std::uint32_t>(i));
        }
      }
      ASSERT_EQ(count, expect.size()) << ops.name;
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(idx[i], expect[i]) << ops.name;
      }
    }
  }
}

TEST(SlotKernelDispatch, NamesAndAvailability) {
  EXPECT_STREQ(slotKernelIsaName(SlotKernelIsa::Oracle), "oracle");
  EXPECT_STREQ(slotKernelIsaName(SlotKernelIsa::Generic), "generic");
  EXPECT_STREQ(slotKernelIsaName(SlotKernelIsa::Native), "native");
  EXPECT_TRUE(slotKernelAvailable(SlotKernelIsa::Oracle));
  EXPECT_TRUE(slotKernelAvailable(SlotKernelIsa::Generic));
}

TEST(SlotKernelDispatch, SetSlotKernelRoundTrips) {
  KernelGuard guard;
  setSlotKernel(SlotKernelIsa::Oracle);
  EXPECT_EQ(slotKernelOps().isa, SlotKernelIsa::Oracle);
  // The oracle table holds the scalar reference loops (channels bypass
  // them by isa; the batched driver uses them).
  EXPECT_NE(slotKernelOps().bumpRow, nullptr);
  EXPECT_NE(slotKernelOps().scanTouchedRO, nullptr);
  EXPECT_NE(slotKernelOps().filterActionable, nullptr);
  setSlotKernel(SlotKernelIsa::Generic);
  EXPECT_EQ(slotKernelOps().isa, SlotKernelIsa::Generic);
  EXPECT_NE(slotKernelOps().bumpRow, nullptr);
}

TEST(SlotKernelDispatch, EnvironmentSelection) {
  KernelGuard guard;
  ::setenv("NSMODEL_SLOT_KERNEL", "oracle", 1);
  EXPECT_EQ(defaultSlotKernel(), SlotKernelIsa::Oracle);
  ::setenv("NSMODEL_SLOT_KERNEL", "generic", 1);
  EXPECT_EQ(defaultSlotKernel(), SlotKernelIsa::Generic);
  ::setenv("NSMODEL_SLOT_KERNEL", "auto", 1);
  const SlotKernelIsa resolved = defaultSlotKernel();
  EXPECT_TRUE(resolved == SlotKernelIsa::Native ||
              resolved == SlotKernelIsa::Generic);
  ::setenv("NSMODEL_SLOT_KERNEL", "avx9000", 1);
  EXPECT_THROW(defaultSlotKernel(), ConfigError);
}

// ---- end to end: every ISA replays the oracle bit for bit ----

sim::ExperimentConfig kernelConfig(net::ChannelModel channel) {
  sim::ExperimentConfig cfg;
  cfg.rings = 4;
  cfg.neighborDensity = 35.0;
  cfg.channel = channel;
  // Drift spill-over exercises the interferer epilogue of the kernel
  // path (double bumps without a sender).
  cfg.fault.faultSeed = 13;
  cfg.fault.drift.maxSkewSlots = 0.4;
  return cfg;
}

TEST(SlotKernelEndToEnd, AllIsasMatchTheOracleExactly) {
  KernelGuard guard;
  const auto factory = [] {
    return std::make_unique<protocols::ProbabilisticBroadcast>(0.9);
  };
  for (const net::ChannelModel channel :
       {net::ChannelModel::CollisionAware,
        net::ChannelModel::CarrierSenseAware}) {
    const sim::ExperimentConfig cfg = kernelConfig(channel);
    setSlotKernel(SlotKernelIsa::Oracle);
    const sim::RunResult oracle = sim::runExperiment(cfg, factory, 42, 0);
    for (const SlotKernelIsa isa : runnableIsas()) {
      setSlotKernel(isa);
      const sim::RunResult run = sim::runExperiment(cfg, factory, 42, 0);
      const std::string label = slotKernelIsaName(isa);
      EXPECT_EQ(run.receptionSlots(), oracle.receptionSlots()) << label;
      EXPECT_EQ(run.receptionSlotByNode(), oracle.receptionSlotByNode())
          << label;
      EXPECT_EQ(run.transmissionSlots(), oracle.transmissionSlots())
          << label;
      EXPECT_EQ(run.attemptedPairs(), oracle.attemptedPairs()) << label;
      EXPECT_EQ(run.deliveredPairs(), oracle.deliveredPairs()) << label;
    }
  }
}

}  // namespace
}  // namespace nsmodel::net
