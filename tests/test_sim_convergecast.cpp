#include "sim/convergecast.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace nsmodel::sim {
namespace {

ConvergecastConfig smallConfig(double rho) {
  ConvergecastConfig cfg;
  cfg.base.rings = 3;
  cfg.base.neighborDensity = rho;
  return cfg;
}

/// Line deployment 0-1-2-...; node 0 is the sink.
net::Deployment lineDeployment(std::size_t n) {
  std::vector<geom::Vec2> positions;
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back({static_cast<double>(i), 0.0});
  }
  return net::Deployment(std::move(positions), 0, static_cast<double>(n));
}

TEST(GatheringTree, LineGraphParents) {
  const net::Deployment dep = lineDeployment(5);
  const net::Topology topo(dep, 1.0);
  const auto parent = buildGatheringTree(topo, 0);
  EXPECT_EQ(parent[0], net::kNoNode);  // the sink has no parent
  for (net::NodeId node = 1; node < 5; ++node) {
    EXPECT_EQ(parent[node], node - 1);
  }
}

TEST(GatheringTree, UnreachableNodesHaveNoParent) {
  std::vector<geom::Vec2> positions{{0, 0}, {1, 0}, {10, 0}};
  const net::Deployment dep(std::move(positions), 0, 20.0);
  const net::Topology topo(dep, 1.0);
  const auto parent = buildGatheringTree(topo, 0);
  EXPECT_EQ(parent[1], 0u);
  EXPECT_EQ(parent[2], net::kNoNode);
}

TEST(GatheringTree, ParentsAlwaysCloserToSinkInHops) {
  support::Rng rng(1);
  const net::Deployment dep = net::Deployment::paperDisk(rng, 4, 1.0, 25.0);
  const net::Topology topo(dep, 1.0);
  const auto parent = buildGatheringTree(topo, dep.source());
  // Following parents must terminate at the sink without cycles.
  for (net::NodeId node = 0; node < dep.nodeCount(); ++node) {
    if (parent[node] == net::kNoNode) continue;
    net::NodeId walk = node;
    std::size_t hops = 0;
    while (walk != dep.source()) {
      walk = parent[walk];
      ASSERT_NE(walk, net::kNoNode);
      ASSERT_LE(++hops, dep.nodeCount());
    }
  }
}

TEST(Convergecast, Validation) {
  ConvergecastConfig cfg = smallConfig(15.0);
  cfg.transmitProbability = 0.0;
  EXPECT_THROW(runConvergecast(cfg, 1, 0), nsmodel::Error);
  cfg = smallConfig(15.0);
  cfg.transmitProbability = 1.5;
  EXPECT_THROW(runConvergecast(cfg, 1, 0), nsmodel::Error);
  cfg = smallConfig(15.0);
  cfg.maxPhases = 0;
  EXPECT_THROW(runConvergecast(cfg, 1, 0), nsmodel::Error);
}

TEST(Convergecast, IsDeterministicPerStream) {
  const auto a = runConvergecast(smallConfig(20.0), 42, 2);
  const auto b = runConvergecast(smallConfig(20.0), 42, 2);
  EXPECT_EQ(a.reportsDelivered, b.reportsDelivered);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_DOUBLE_EQ(a.completionPhases, b.completionPhases);
}

TEST(Convergecast, CfmDeliversEverythingInDepthPhases) {
  ConvergecastConfig cfg = smallConfig(20.0);
  cfg.base.channel = net::ChannelModel::CollisionFree;
  cfg.transmitProbability = 1.0;
  const auto result = runConvergecast(cfg, 42, 0);
  EXPECT_EQ(result.unreachableNodes, 0u);
  EXPECT_DOUBLE_EQ(result.deliveryRatio(), 1.0);
  EXPECT_TRUE(result.drained);
  // Each node forwards one packet per phase, so even under CFM the
  // completion time is queue-bound (a sink child drains its whole
  // subtree), but never worse than one report per phase plus the
  // pipeline depth — and never better than the tree depth.
  EXPECT_GE(result.completionPhases, static_cast<double>(result.treeDepth));
  EXPECT_LE(result.completionPhases,
            static_cast<double>(result.reportsGenerated + result.treeDepth));
  // One transmission per report per hop, no retries.
  EXPECT_GE(result.transmissions, result.reportsGenerated);
}

TEST(Convergecast, CamWithOracleFeedbackEventuallyDelivers) {
  const auto result = runConvergecast(smallConfig(15.0), 42, 0);
  EXPECT_DOUBLE_EQ(result.deliveryRatio(), 1.0);
  EXPECT_TRUE(result.drained);
  // Collisions force retries: strictly more transmissions than hops.
  EXPECT_GT(result.transmissions, result.reportsGenerated);
}

TEST(Convergecast, CamIsSlowerThanCfm) {
  ConvergecastConfig cam = smallConfig(20.0);
  ConvergecastConfig cfm = smallConfig(20.0);
  cfm.base.channel = net::ChannelModel::CollisionFree;
  cfm.transmitProbability = 1.0;
  const auto camResult = runConvergecast(cam, 42, 0);
  const auto cfmResult = runConvergecast(cfm, 42, 0);
  EXPECT_GT(camResult.completionPhases, cfmResult.completionPhases);
}

TEST(Convergecast, FireAndForgetLosesReports) {
  ConvergecastConfig cfg = smallConfig(25.0);
  cfg.oracleFeedback = false;
  const auto result = runConvergecast(cfg, 42, 0);
  EXPECT_LT(result.deliveryRatio(), 1.0);
  EXPECT_TRUE(result.drained);  // every packet delivered or dropped
  // Each queued packet is attempted exactly once per hop at most.
  EXPECT_LE(result.transmissions,
            result.reportsGenerated *
                static_cast<std::uint64_t>(result.treeDepth + 1));
}

TEST(Convergecast, UnreachableNodesAreAccounted) {
  // Sink plus one neighbour plus one stranded node.
  std::vector<geom::Vec2> positions{{0, 0}, {0.5, 0}, {10, 0}};
  const net::Deployment dep(std::move(positions), 0, 20.0);
  const net::Topology topo(dep, 1.0);
  support::Rng rng(5);
  ConvergecastConfig cfg;
  const auto result = runConvergecast(cfg, dep, topo, rng);
  EXPECT_EQ(result.reportsGenerated, 2u);
  EXPECT_EQ(result.unreachableNodes, 1u);
  EXPECT_EQ(result.reportsDelivered, 1u);
  EXPECT_NEAR(result.deliveryRatio(), 0.5, 1e-12);
}

TEST(Convergecast, LineNetworkSerializesAtSink) {
  // On a line every packet must cross node 1; CAM with q = 1 deadlocks
  // into repeated collisions only when two senders share a receiver —
  // on a line with s = 3 random slots it still completes.
  const net::Deployment dep = lineDeployment(6);
  const net::Topology topo(dep, 1.0);
  support::Rng rng(6);
  ConvergecastConfig cfg;
  cfg.transmitProbability = 0.5;
  const auto result = runConvergecast(cfg, dep, topo, rng);
  EXPECT_DOUBLE_EQ(result.deliveryRatio(), 1.0);
  EXPECT_EQ(result.treeDepth, 5);
  // 5 reports x hop counts 1+2+3+4+5 = 15 successful hops minimum.
  EXPECT_GE(result.transmissions, 15u);
}

TEST(Convergecast, MaxPhasesCapsIncompleteRuns) {
  ConvergecastConfig cfg = smallConfig(25.0);
  cfg.maxPhases = 2;
  const auto result = runConvergecast(cfg, 42, 0);
  EXPECT_FALSE(result.drained);
  EXPECT_LT(result.deliveryRatio(), 1.0);
}

}  // namespace
}  // namespace nsmodel::sim
