#include "support/log_math.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace nsmodel::support {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(LogFactorial, SmallValues) {
  EXPECT_DOUBLE_EQ(logFactorial(0), 0.0);
  EXPECT_DOUBLE_EQ(logFactorial(1), 0.0);
  EXPECT_NEAR(logFactorial(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(logFactorial(10), std::log(3628800.0), 1e-10);
}

TEST(LogFactorial, RejectsNegative) {
  EXPECT_THROW(logFactorial(-1), Error);
}

TEST(LogBinomial, MatchesExactSmallCases) {
  EXPECT_NEAR(std::exp(logBinomial(5, 2)), 10.0, 1e-10);
  EXPECT_NEAR(std::exp(logBinomial(10, 5)), 252.0, 1e-8);
  EXPECT_DOUBLE_EQ(logBinomial(7, 0), 0.0);
  EXPECT_DOUBLE_EQ(logBinomial(7, 7), 0.0);
}

TEST(LogBinomial, EmptyCoefficientIsNegInf) {
  EXPECT_EQ(logBinomial(5, 6), -kInf);
  EXPECT_EQ(logBinomial(5, -1), -kInf);
}

TEST(LogBinomial, SymmetryProperty) {
  for (int n = 1; n <= 30; ++n) {
    for (int k = 0; k <= n; ++k) {
      EXPECT_NEAR(logBinomial(n, k), logBinomial(n, n - k), 1e-10);
    }
  }
}

TEST(LogBinomial, PascalRecurrence) {
  // C(n, k) = C(n-1, k-1) + C(n-1, k), checked in linear space.
  for (int n = 2; n <= 25; ++n) {
    for (int k = 1; k < n; ++k) {
      const double lhs = std::exp(logBinomial(n, k));
      const double rhs =
          std::exp(logBinomial(n - 1, k - 1)) + std::exp(logBinomial(n - 1, k));
      EXPECT_NEAR(lhs, rhs, rhs * 1e-10);
    }
  }
}

TEST(LogBinomial, LargeArgumentsDoNotOverflow) {
  const double v = logBinomial(500, 250);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 300.0);  // C(500,250) ~ 10^149
}

TEST(LogFallingFactorial, BasicValues) {
  EXPECT_DOUBLE_EQ(logFallingFactorial(5, 0), 0.0);
  EXPECT_NEAR(std::exp(logFallingFactorial(5, 2)), 20.0, 1e-10);
  EXPECT_NEAR(std::exp(logFallingFactorial(6, 3)), 120.0, 1e-9);
  EXPECT_NEAR(logFallingFactorial(7, 7), logFactorial(7), 1e-12);
}

TEST(LogFallingFactorial, UndefinedWhenKExceedsN) {
  EXPECT_EQ(logFallingFactorial(3, 4), -kInf);
}

TEST(LogFallingFactorial, RejectsNegativeK) {
  EXPECT_THROW(logFallingFactorial(5, -1), Error);
}

TEST(Binomial, LinearSpaceWrapper) {
  EXPECT_DOUBLE_EQ(binomial(4, 2), 6.0);
  EXPECT_DOUBLE_EQ(binomial(4, 5), 0.0);
  EXPECT_DOUBLE_EQ(binomial(4, -1), 0.0);
}

TEST(LogSumExp, BasicIdentity) {
  const double got = logSumExp(std::log(3.0), std::log(5.0));
  EXPECT_NEAR(got, std::log(8.0), 1e-12);
}

TEST(LogSumExp, HandlesNegInfEdges) {
  EXPECT_DOUBLE_EQ(logSumExp(-kInf, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(logSumExp(2.0, -kInf), 2.0);
  EXPECT_EQ(logSumExp(-kInf, -kInf), -kInf);
}

TEST(LogSumExp, StableForLargeMagnitudes) {
  // exp(1000) overflows; the log-space sum must not.
  const double got = logSumExp(1000.0, 1000.0);
  EXPECT_NEAR(got, 1000.0 + std::log(2.0), 1e-12);
  const double spread = logSumExp(1000.0, 0.0);
  EXPECT_NEAR(spread, 1000.0, 1e-12);
}

TEST(LogSumExp, CommutativeProperty) {
  for (double a : {-3.0, 0.0, 2.5, 50.0}) {
    for (double b : {-7.0, 0.1, 4.0}) {
      EXPECT_DOUBLE_EQ(logSumExp(a, b), logSumExp(b, a));
    }
  }
}

}  // namespace
}  // namespace nsmodel::support
