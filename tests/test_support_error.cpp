// Tests of the error taxonomy and the cooperative Deadline: categories,
// retryability, macro behaviour, and timeout expiry.
#include <gtest/gtest.h>

#include <thread>

#include "support/deadline.hpp"
#include "support/error.hpp"

namespace {

using namespace nsmodel;

TEST(ErrorTaxonomy, CategoriesAndNames) {
  EXPECT_EQ(Error("x").category(), ErrorCategory::Generic);
  EXPECT_EQ(ConfigError("x").category(), ErrorCategory::Config);
  EXPECT_EQ(IoError("x").category(), ErrorCategory::Io);
  EXPECT_EQ(TimeoutError("x").category(), ErrorCategory::Timeout);

  EXPECT_STREQ(errorCategoryName(ErrorCategory::Generic), "generic");
  EXPECT_STREQ(errorCategoryName(ErrorCategory::Config), "config");
  EXPECT_STREQ(errorCategoryName(ErrorCategory::Io), "io");
  EXPECT_STREQ(errorCategoryName(ErrorCategory::Timeout), "timeout");
}

TEST(ErrorTaxonomy, OnlyTimeoutsAreRetryable) {
  EXPECT_FALSE(Error("x").retryable());
  EXPECT_FALSE(ConfigError("x").retryable());
  EXPECT_FALSE(IoError("x").retryable());
  EXPECT_TRUE(TimeoutError("x").retryable());
}

TEST(ErrorTaxonomy, SubclassesRemainCatchableAsError) {
  bool caught = false;
  try {
    throw ConfigError("bad knob");
  } catch (const Error& e) {
    caught = true;
    EXPECT_EQ(e.category(), ErrorCategory::Config);
  }
  EXPECT_TRUE(caught);
}

TEST(ErrorTaxonomy, CheckMacroThrowsConfigError) {
  const auto failing = [] { NSMODEL_CHECK(1 == 2, "one is not two"); };
  EXPECT_THROW(failing(), ConfigError);
  try {
    failing();
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::Config);
    EXPECT_NE(std::string(e.what()).find("one is not two"),
              std::string::npos);
  }
}

TEST(ErrorTaxonomy, AssertMacroThrowsGenericError) {
  const auto failing = [] { NSMODEL_ASSERT(false); };
  try {
    failing();
    FAIL() << "NSMODEL_ASSERT(false) did not throw";
  } catch (const ConfigError&) {
    FAIL() << "internal invariants must not be Config errors";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::Generic);
  }
}

TEST(Deadline, DefaultIsUnlimited) {
  const support::Deadline deadline;
  EXPECT_FALSE(deadline.limited());
  EXPECT_FALSE(deadline.expired());
  EXPECT_NO_THROW(deadline.check("never expires"));
}

TEST(Deadline, GenerousBudgetDoesNotExpireImmediately) {
  const support::Deadline deadline = support::Deadline::after(3600.0);
  EXPECT_TRUE(deadline.limited());
  EXPECT_FALSE(deadline.expired());
  EXPECT_NO_THROW(deadline.check("an hour left"));
}

TEST(Deadline, ExpiryThrowsTimeoutErrorNamingTheWork) {
  const support::Deadline deadline = support::Deadline::after(1e-4);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(deadline.expired());
  try {
    deadline.check("grid point p=0.4");
    FAIL() << "expired deadline did not throw";
  } catch (const TimeoutError& e) {
    EXPECT_TRUE(e.retryable());
    EXPECT_NE(std::string(e.what()).find("grid point p=0.4"),
              std::string::npos);
  }
}

TEST(Deadline, RejectsNegativeBudgets) {
  EXPECT_THROW(support::Deadline::after(-1.0), ConfigError);
  // A zero budget is legal and expires immediately.
  EXPECT_TRUE(support::Deadline::after(0.0).expired());
}

}  // namespace
