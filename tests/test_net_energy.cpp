#include "net/energy.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace nsmodel::net {
namespace {

TEST(EnergyLedger, StartsAtZero) {
  const EnergyLedger ledger(4, {});
  EXPECT_EQ(ledger.txCount(), 0u);
  EXPECT_EQ(ledger.rxCount(), 0u);
  EXPECT_DOUBLE_EQ(ledger.totalEnergy(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.maxNodeEnergy(), 0.0);
  EXPECT_EQ(ledger.nodeCount(), 4u);
}

TEST(EnergyLedger, CountsPerNode) {
  EnergyLedger ledger(3, {});
  ledger.recordTx(0);
  ledger.recordTx(0);
  ledger.recordRx(1);
  EXPECT_EQ(ledger.txCount(0), 2u);
  EXPECT_EQ(ledger.txCount(1), 0u);
  EXPECT_EQ(ledger.rxCount(1), 1u);
  EXPECT_EQ(ledger.txCount(), 2u);
  EXPECT_EQ(ledger.rxCount(), 1u);
}

TEST(EnergyLedger, EnergyUsesConfiguredCosts) {
  EnergyLedger ledger(2, {2.0, 0.5});
  ledger.recordTx(0);
  ledger.recordRx(0);
  ledger.recordRx(1);
  EXPECT_DOUBLE_EQ(ledger.energy(0), 2.5);
  EXPECT_DOUBLE_EQ(ledger.energy(1), 0.5);
  EXPECT_DOUBLE_EQ(ledger.totalEnergy(), 3.0);
  EXPECT_DOUBLE_EQ(ledger.maxNodeEnergy(), 2.5);
}

TEST(EnergyLedger, SymmetricCostAssumption) {
  // Assumption 1: identical per-packet cost for send and receive.
  EnergyLedger ledger(2, {1.0, 1.0});
  ledger.recordTx(0);
  ledger.recordRx(1);
  EXPECT_DOUBLE_EQ(ledger.energy(0), ledger.energy(1));
}

TEST(EnergyLedger, Validation) {
  EXPECT_THROW(EnergyLedger(0, {}), nsmodel::Error);
  EXPECT_THROW(EnergyLedger(2, {-1.0, 1.0}), nsmodel::Error);
  EnergyLedger ledger(2, {});
  EXPECT_THROW(ledger.recordTx(2), nsmodel::Error);
  EXPECT_THROW(ledger.recordRx(5), nsmodel::Error);
  EXPECT_THROW(ledger.txCount(2), nsmodel::Error);
  EXPECT_THROW(ledger.rxCount(2), nsmodel::Error);
  EXPECT_THROW(ledger.energy(2), nsmodel::Error);
}

TEST(EnergyLedger, ZeroCostsAreAllowed) {
  EnergyLedger ledger(1, {0.0, 0.0});
  ledger.recordTx(0);
  ledger.recordRx(0);
  EXPECT_DOUBLE_EQ(ledger.totalEnergy(), 0.0);
  EXPECT_EQ(ledger.txCount(), 1u);
}

TEST(EnergyLedger, MaxNodeEnergyPicksBottleneck) {
  EnergyLedger ledger(3, {1.0, 1.0});
  ledger.recordTx(0);
  for (int i = 0; i < 5; ++i) ledger.recordRx(2);
  EXPECT_DOUBLE_EQ(ledger.maxNodeEnergy(), 5.0);
}

}  // namespace
}  // namespace nsmodel::net
