#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace nsmodel::net {
namespace {

/// Materialises a CSR row view for container comparisons.
std::vector<NodeId> toVec(NeighborSpan row) {
  return {row.begin(), row.end()};
}

/// A small hand-crafted line deployment: nodes at x = 0, 1, 2, ..., n-1.
Deployment lineDeployment(std::size_t n) {
  std::vector<geom::Vec2> positions;
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back({static_cast<double>(i), 0.0});
  }
  return Deployment(std::move(positions), 0,
                    static_cast<double>(n));
}

TEST(Topology, LineGraphAdjacency) {
  const Deployment dep = lineDeployment(5);
  const Topology topo(dep, 1.0);
  EXPECT_EQ(topo.nodeCount(), 5u);
  EXPECT_EQ(toVec(topo.neighbors(0)), (std::vector<NodeId>{1}));
  auto mid = toVec(topo.neighbors(2));
  std::sort(mid.begin(), mid.end());
  EXPECT_EQ(mid, (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(toVec(topo.neighbors(4)), (std::vector<NodeId>{3}));
}

TEST(Topology, RangeBoundaryIsInclusive) {
  const Deployment dep = lineDeployment(2);  // distance exactly 1
  const Topology inclusive(dep, 1.0);
  EXPECT_EQ(inclusive.neighbors(0).size(), 1u);
  const Topology tooShort(dep, 0.999);
  EXPECT_TRUE(tooShort.neighbors(0).empty());
}

TEST(Topology, LinksAreSymmetric) {
  support::Rng rng(1);
  const Deployment dep = Deployment::uniformDisk(rng, 5.0, 300);
  const Topology topo(dep, 1.0);
  for (NodeId u = 0; u < topo.nodeCount(); ++u) {
    for (NodeId v : topo.neighbors(u)) {
      const auto& back = topo.neighbors(v);
      EXPECT_NE(std::find(back.begin(), back.end(), u), back.end())
          << u << " -> " << v << " not symmetric";
    }
  }
}

TEST(Topology, NoSelfLoops) {
  support::Rng rng(2);
  const Deployment dep = Deployment::uniformDisk(rng, 3.0, 200);
  const Topology topo(dep, 1.0);
  for (NodeId u = 0; u < topo.nodeCount(); ++u) {
    const auto& adj = topo.neighbors(u);
    EXPECT_EQ(std::find(adj.begin(), adj.end(), u), adj.end());
  }
}

TEST(Topology, AverageDegreeApproximatesRho) {
  // For the paper's deployment, average degree ~ rho (minus boundary loss).
  support::Rng rng(3);
  const double rho = 60.0;
  const Deployment dep = Deployment::paperDisk(rng, 5, 1.0, rho);
  const Topology topo(dep, 1.0);
  // Boundary effect shaves ~10-15% off; accept a generous band.
  EXPECT_GT(topo.averageDegree(), rho * 0.75);
  EXPECT_LT(topo.averageDegree(), rho * 1.05);
}

TEST(Topology, DegreeMatchesBruteForceCount) {
  support::Rng rng(4);
  const Deployment dep = Deployment::uniformDisk(rng, 4.0, 150);
  const Topology topo(dep, 1.2);
  for (NodeId u = 0; u < topo.nodeCount(); ++u) {
    std::size_t expected = 0;
    for (NodeId v = 0; v < topo.nodeCount(); ++v) {
      if (v != u &&
          dep.position(u).distanceTo(dep.position(v)) <= 1.2) {
        ++expected;
      }
    }
    EXPECT_EQ(topo.neighbors(u).size(), expected) << "node " << u;
  }
}

TEST(Topology, CarrierSenseSupersetOfNeighbors) {
  support::Rng rng(5);
  const Deployment dep = Deployment::uniformDisk(rng, 4.0, 200);
  const Topology topo(dep, 1.0, 2.0);
  ASSERT_TRUE(topo.hasCarrierSense());
  EXPECT_DOUBLE_EQ(topo.carrierSenseRange(), 2.0);
  for (NodeId u = 0; u < topo.nodeCount(); ++u) {
    const auto& cs = topo.carrierSenseNeighbors(u);
    for (NodeId v : topo.neighbors(u)) {
      EXPECT_NE(std::find(cs.begin(), cs.end(), v), cs.end())
          << "neighbour " << v << " missing from cs set of " << u;
    }
    EXPECT_GE(cs.size(), topo.neighbors(u).size());
  }
}

TEST(Topology, CarrierSenseDisabledByDefault) {
  const Deployment dep = lineDeployment(3);
  const Topology topo(dep, 1.0);
  EXPECT_FALSE(topo.hasCarrierSense());
  EXPECT_THROW(topo.carrierSenseNeighbors(0), nsmodel::Error);
  EXPECT_THROW(topo.carrierSenseRange(), nsmodel::Error);
}

TEST(Topology, Validation) {
  const Deployment dep = lineDeployment(3);
  EXPECT_THROW(Topology(dep, 0.0), nsmodel::Error);
  EXPECT_THROW(Topology(dep, 1.0, 1.0), nsmodel::Error);
  EXPECT_THROW(Topology(dep, 1.0, 0.5), nsmodel::Error);
  const Topology topo(dep, 1.0);
  EXPECT_THROW(topo.neighbors(3), nsmodel::Error);
}

TEST(Topology, ConnectivityOfLineGraph) {
  const Deployment dep = lineDeployment(6);
  const Topology connected(dep, 1.0);
  EXPECT_TRUE(connected.isConnected());
  EXPECT_EQ(connected.reachableCount(0), 6u);
  EXPECT_EQ(connected.reachableCount(5), 6u);
  const Topology disconnected(dep, 0.5);
  EXPECT_FALSE(disconnected.isConnected());
  EXPECT_EQ(disconnected.reachableCount(0), 1u);
}

TEST(Topology, DenseDeploymentIsConnected) {
  support::Rng rng(6);
  const Deployment dep = Deployment::paperDisk(rng, 5, 1.0, 40.0);
  const Topology topo(dep, 1.0);
  EXPECT_TRUE(topo.isConnected());
}

TEST(Topology, CsrRowsTileTheFlatArrayContiguously) {
  // Row i + 1 must start exactly where row i ends: the CSR invariant the
  // span views rely on, checked via the raw data pointers.
  support::Rng rng(7);
  const Deployment dep = Deployment::uniformDisk(rng, 3.0, 120);
  const Topology topo(dep, 1.0, 2.0);
  std::size_t total = 0;
  for (NodeId u = 0; u < topo.nodeCount(); ++u) {
    const NeighborSpan row = topo.neighbors(u);
    total += row.size();
    if (u + 1 < topo.nodeCount()) {
      const NeighborSpan next = topo.neighbors(u + 1);
      EXPECT_EQ(row.data() + row.size(), next.data()) << "row " << u;
    }
    const NeighborSpan cs = topo.carrierSenseNeighbors(u);
    if (u + 1 < topo.nodeCount()) {
      const NeighborSpan csNext = topo.carrierSenseNeighbors(u + 1);
      EXPECT_EQ(cs.data() + cs.size(), csNext.data()) << "cs row " << u;
    }
  }
  EXPECT_DOUBLE_EQ(topo.averageDegree(),
                   static_cast<double>(total) /
                       static_cast<double>(topo.nodeCount()));
}

TEST(Topology, IsolatedNodeHasNoNeighbors) {
  std::vector<geom::Vec2> positions{{0, 0}, {10, 10}};
  const Deployment dep(std::move(positions), 0, 20.0);
  const Topology topo(dep, 1.0);
  EXPECT_TRUE(topo.neighbors(0).empty());
  EXPECT_TRUE(topo.neighbors(1).empty());
  EXPECT_DOUBLE_EQ(topo.averageDegree(), 0.0);
}

}  // namespace
}  // namespace nsmodel::net
