#include "core/network_model.hpp"

#include <gtest/gtest.h>

#include "core/cfm_analysis.hpp"
#include "support/error.hpp"

namespace nsmodel::core {
namespace {

NetworkModel paperModel(double rho, CommModel comm = CommModel::collisionAware()) {
  DeploymentSpec spec;
  spec.rings = 5;
  spec.ringWidth = 1.0;
  spec.neighborDensity = rho;
  return NetworkModel(spec, comm, 3);
}

TEST(DeploymentSpec, ExpectedNodes) {
  DeploymentSpec spec;
  spec.rings = 5;
  spec.neighborDensity = 140.0;
  EXPECT_DOUBLE_EQ(spec.expectedNodes(), 3500.0);
}

TEST(NetworkModel, Validation) {
  DeploymentSpec bad;
  bad.rings = 0;
  EXPECT_THROW(NetworkModel(bad, CommModel::collisionAware()),
               nsmodel::Error);
  DeploymentSpec spec;
  EXPECT_THROW(NetworkModel(spec, CommModel::collisionAware(), 0),
               nsmodel::Error);
}

TEST(NetworkModel, AnalyticConfigMirrorsModel) {
  const NetworkModel model = paperModel(80.0);
  const auto cfg =
      model.analyticConfig(0.25, analytic::RealKPolicy::Interpolate);
  EXPECT_EQ(cfg.rings, 5);
  EXPECT_DOUBLE_EQ(cfg.neighborDensity, 80.0);
  EXPECT_DOUBLE_EQ(cfg.broadcastProb, 0.25);
  EXPECT_EQ(cfg.slotsPerPhase, 3);
  EXPECT_EQ(cfg.channel, analytic::ChannelKind::CollisionAware);
}

TEST(NetworkModel, ExperimentConfigMirrorsModel) {
  const NetworkModel model =
      paperModel(80.0, CommModel::carrierSenseAware(2.0));
  const auto cfg = model.experimentConfig();
  EXPECT_EQ(cfg.rings, 5);
  EXPECT_DOUBLE_EQ(cfg.neighborDensity, 80.0);
  EXPECT_EQ(cfg.channel, net::ChannelModel::CarrierSenseAware);
  EXPECT_DOUBLE_EQ(cfg.csFactor, 2.0);
}

TEST(NetworkModel, PredictRunsTheAnalyticFramework) {
  const NetworkModel model = paperModel(60.0);
  const auto trace = model.predict(0.2);
  EXPECT_FALSE(trace.phases().empty());
  EXPECT_GT(trace.reachabilityAfter(5.0), 0.1);
  EXPECT_NEAR(trace.expectedNodes(), 1500.0, 1e-9);
}

TEST(NetworkModel, SimulateOnceIsDeterministic) {
  const NetworkModel model = paperModel(40.0);
  const auto a = model.simulateOnce(0.3, 42, 0);
  const auto b = model.simulateOnce(0.3, 42, 0);
  EXPECT_EQ(a.reachedCount(), b.reachedCount());
}

TEST(NetworkModel, MeasureAggregatesReplications) {
  const NetworkModel model = paperModel(30.0);
  const auto agg = model.measure(
      0.5, MetricSpec::reachabilityUnderLatency(5.0), 42, 6);
  EXPECT_EQ(agg.stats.count, 6u);
  EXPECT_GT(agg.stats.mean, 0.0);
  EXPECT_LE(agg.stats.mean, 1.0);
  EXPECT_DOUBLE_EQ(agg.definedFraction, 1.0);
}

TEST(NetworkModel, OptimizeUsesAnalyticBackend) {
  const NetworkModel model = paperModel(100.0);
  const auto best = model.optimize(
      MetricSpec::reachabilityUnderLatency(5.0), {0.05, 1.0, 0.05});
  ASSERT_TRUE(best.has_value());
  EXPECT_LT(best->probability, 0.5);  // dense network wants small p
  EXPECT_GT(best->value, 0.5);
}

TEST(NetworkModel, PredictionAndSimulationAgreeOnShape) {
  // The analytic prediction and the Monte-Carlo measurement must agree
  // that a moderate p beats flooding at high density.
  const NetworkModel model = paperModel(100.0);
  const double predictModerate = model.predict(0.1).reachabilityAfter(5.0);
  const double predictFlood = model.predict(1.0).reachabilityAfter(5.0);
  EXPECT_GT(predictModerate, predictFlood);
  const auto spec = MetricSpec::reachabilityUnderLatency(5.0);
  const double simModerate = model.measure(0.1, spec, 42, 8).stats.mean;
  const double simFlood = model.measure(1.0, spec, 42, 8).stats.mean;
  EXPECT_GT(simModerate, simFlood);
}

TEST(CfmAnalysis, ClosedFormPredictions) {
  DeploymentSpec spec;
  spec.rings = 5;
  spec.neighborDensity = 60.0;
  const auto prediction = analyzeFloodingCfm(spec, {1.0, 1.0}, 3);
  EXPECT_DOUBLE_EQ(prediction.reachability, 1.0);
  EXPECT_DOUBLE_EQ(prediction.latencyPhases, 5.0);
  EXPECT_DOUBLE_EQ(prediction.broadcasts, 1500.0);
  EXPECT_DOUBLE_EQ(prediction.totalTime, 15.0);
  EXPECT_DOUBLE_EQ(prediction.totalEnergy, 1500.0 * 61.0);
}

TEST(CfmAnalysis, CfmPredictionIsOptimisticVersusCamSimulation) {
  // The paper's motivating gap: CFM says reach = 1 in P phases; a CAM
  // simulation of flooding falls far short at high density.
  const NetworkModel model = paperModel(120.0);
  const auto cfm = analyzeFloodingCfm(model.deployment(),
                                      model.commModel().costs(), 3);
  const double simReach =
      model.measure(1.0, MetricSpec::reachabilityUnderLatency(5.0), 42, 8)
          .stats.mean;
  EXPECT_DOUBLE_EQ(cfm.reachability, 1.0);
  EXPECT_LT(simReach, 0.75);
}

}  // namespace
}  // namespace nsmodel::core
