#include "geom/disk_sampling.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"

namespace nsmodel::geom {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
  EXPECT_EQ(a / 2.0, (Vec2{0.5, 1.0}));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.normSquared(), 5.0);
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.distanceTo(b), std::sqrt(13.0));
}

TEST(Vec2, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += Vec2{2.0, 3.0};
  EXPECT_EQ(v, (Vec2{3.0, 4.0}));
  v -= Vec2{1.0, 1.0};
  EXPECT_EQ(v, (Vec2{2.0, 3.0}));
}

TEST(SampleDisk, PointsStayInside) {
  support::Rng rng(1);
  const Vec2 center{2.0, -1.0};
  for (int i = 0; i < 5000; ++i) {
    const Vec2 p = sampleDisk(rng, center, 3.0);
    EXPECT_LE(p.distanceTo(center), 3.0 + 1e-12);
  }
}

TEST(SampleDisk, RadialDistributionIsAreaUniform) {
  // For a uniform disk, P(dist <= t*R) = t^2.
  support::Rng rng(2);
  const int n = 200000;
  int insideHalf = 0;
  for (int i = 0; i < n; ++i) {
    if (sampleDisk(rng, {0, 0}, 1.0).norm() <= 0.5) ++insideHalf;
  }
  EXPECT_NEAR(static_cast<double>(insideHalf) / n, 0.25, 0.01);
}

TEST(SampleDisk, AngularDistributionIsUniform) {
  support::Rng rng(3);
  const int n = 100000;
  int rightHalf = 0;
  for (int i = 0; i < n; ++i) {
    if (sampleDisk(rng, {0, 0}, 1.0).x > 0.0) ++rightHalf;
  }
  EXPECT_NEAR(static_cast<double>(rightHalf) / n, 0.5, 0.01);
}

TEST(SampleDisk, RejectsNegativeRadius) {
  support::Rng rng(4);
  EXPECT_THROW(sampleDisk(rng, {0, 0}, -1.0), nsmodel::Error);
}

TEST(SampleAnnulus, PointsStayInAnnulus) {
  support::Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const Vec2 p = sampleAnnulus(rng, {0, 0}, 1.0, 2.0);
    const double d = p.norm();
    EXPECT_GE(d, 1.0 - 1e-12);
    EXPECT_LE(d, 2.0 + 1e-12);
  }
}

TEST(SampleAnnulus, AreaUniformAcrossSubAnnuli) {
  // Annulus [1, 2]: area fraction of [1, 1.5] is (1.5^2-1)/(2^2-1) = 5/12.
  support::Rng rng(6);
  const int n = 200000;
  int inner = 0;
  for (int i = 0; i < n; ++i) {
    if (sampleAnnulus(rng, {0, 0}, 1.0, 2.0).norm() <= 1.5) ++inner;
  }
  EXPECT_NEAR(static_cast<double>(inner) / n, 5.0 / 12.0, 0.01);
}

TEST(SampleAnnulus, RejectsInvalidRadii) {
  support::Rng rng(7);
  EXPECT_THROW(sampleAnnulus(rng, {0, 0}, 2.0, 1.0), nsmodel::Error);
  EXPECT_THROW(sampleAnnulus(rng, {0, 0}, -1.0, 1.0), nsmodel::Error);
  EXPECT_THROW(sampleAnnulus(rng, {0, 0}, 1.0, 1.0), nsmodel::Error);
}

TEST(SampleDiskPoints, ReturnsRequestedCount) {
  support::Rng rng(8);
  const auto points = sampleDiskPoints(rng, {0, 0}, 2.0, 137);
  EXPECT_EQ(points.size(), 137u);
}

TEST(SampleDiskPoints, EmptyCountGivesEmptyVector) {
  support::Rng rng(9);
  EXPECT_TRUE(sampleDiskPoints(rng, {0, 0}, 2.0, 0).empty());
}

TEST(JitteredGrid, NoJitterIsDeterministicLattice) {
  support::Rng rng(10);
  const auto points =
      sampleJitteredGridDisk(rng, {0, 0}, 2.0, 1.0, 0.0);
  // Grid points with |x|,|y| in {-2..2} and x^2+y^2 <= 4: 13 points.
  EXPECT_EQ(points.size(), 13u);
  for (const Vec2& p : points) {
    EXPECT_NEAR(p.x, std::round(p.x), 1e-12);
    EXPECT_NEAR(p.y, std::round(p.y), 1e-12);
  }
}

TEST(JitteredGrid, JitteredPointsStayInDisk) {
  support::Rng rng(11);
  const auto points =
      sampleJitteredGridDisk(rng, {0, 0}, 3.0, 0.5, 1.0);
  for (const Vec2& p : points) {
    EXPECT_LE(p.norm(), 3.0 + 1e-12);
  }
  EXPECT_GT(points.size(), 50u);  // dense grid in a radius-3 disk
}

TEST(JitteredGrid, DensityScalesInverseSquareOfSpacing) {
  support::Rng rng(12);
  const auto coarse = sampleJitteredGridDisk(rng, {0, 0}, 10.0, 1.0, 0.0);
  const auto fine = sampleJitteredGridDisk(rng, {0, 0}, 10.0, 0.5, 0.0);
  const double ratio =
      static_cast<double>(fine.size()) / static_cast<double>(coarse.size());
  EXPECT_NEAR(ratio, 4.0, 0.2);
}

TEST(JitteredGrid, Validation) {
  support::Rng rng(13);
  EXPECT_THROW(sampleJitteredGridDisk(rng, {0, 0}, 1.0, 0.0, 0.0),
               nsmodel::Error);
  EXPECT_THROW(sampleJitteredGridDisk(rng, {0, 0}, 1.0, 1.0, 2.0),
               nsmodel::Error);
}

}  // namespace
}  // namespace nsmodel::geom
