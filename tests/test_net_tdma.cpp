#include "net/tdma.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "protocols/tdma_flooding.hpp"
#include "sim/experiment.hpp"
#include "support/error.hpp"

namespace nsmodel::net {
namespace {

Deployment lineDeployment(std::size_t n) {
  std::vector<geom::Vec2> positions;
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back({static_cast<double>(i), 0.0});
  }
  return Deployment(std::move(positions), 0, static_cast<double>(n));
}

TEST(TdmaSchedule, LineGraphUsesThreeSlots) {
  // A path needs exactly 3 colours under distance-2 colouring.
  const Deployment dep = lineDeployment(10);
  const Topology topo(dep, 1.0);
  const TdmaSchedule schedule = buildTdmaSchedule(topo);
  EXPECT_EQ(schedule.frameLength, 3);
  EXPECT_TRUE(schedule.isValidFor(topo));
}

TEST(TdmaSchedule, SingleNode) {
  const Deployment dep = lineDeployment(1);
  const Topology topo(dep, 1.0);
  const TdmaSchedule schedule = buildTdmaSchedule(topo);
  EXPECT_EQ(schedule.frameLength, 1);
  EXPECT_TRUE(schedule.isValidFor(topo));
}

TEST(TdmaSchedule, ValidOnRandomDeployments) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    support::Rng rng = support::Rng::forStream(seed, 0);
    const Deployment dep = Deployment::paperDisk(rng, 4, 1.0, 30.0);
    const Topology topo(dep, 1.0);
    const TdmaSchedule schedule = buildTdmaSchedule(topo);
    EXPECT_TRUE(schedule.isValidFor(topo)) << "seed " << seed;
  }
}

TEST(TdmaSchedule, FrameBoundedByTwoHopNeighborhood) {
  support::Rng rng = support::Rng::forStream(1, 0);
  const Deployment dep = Deployment::paperDisk(rng, 4, 1.0, 40.0);
  const Topology topo(dep, 1.0);
  const TdmaSchedule schedule = buildTdmaSchedule(topo);
  // Greedy colouring never exceeds max two-hop degree + 1.
  std::size_t maxTwoHop = 0;
  for (NodeId u = 0; u < topo.nodeCount(); ++u) {
    std::vector<NodeId> twoHop;
    for (NodeId v : topo.neighbors(u)) {
      twoHop.push_back(v);
      for (NodeId w : topo.neighbors(v)) {
        if (w != u) twoHop.push_back(w);
      }
    }
    std::sort(twoHop.begin(), twoHop.end());
    twoHop.erase(std::unique(twoHop.begin(), twoHop.end()), twoHop.end());
    maxTwoHop = std::max(maxTwoHop, twoHop.size());
  }
  EXPECT_LE(schedule.frameLength, static_cast<int>(maxTwoHop) + 1);
  EXPECT_GE(schedule.frameLength, 2);
}

TEST(TdmaSchedule, FrameGrowsWithDensity) {
  auto frameAt = [](double rho) {
    support::Rng rng = support::Rng::forStream(2, 0);
    const Deployment dep = Deployment::paperDisk(rng, 4, 1.0, rho);
    const Topology topo(dep, 1.0);
    return buildTdmaSchedule(topo).frameLength;
  };
  EXPECT_LT(frameAt(15.0), frameAt(60.0));
}

TEST(TdmaSchedule, ValidityDetectsConflicts) {
  const Deployment dep = lineDeployment(4);
  const Topology topo(dep, 1.0);
  TdmaSchedule bad;
  bad.frameLength = 2;
  bad.slotOf = {0, 1, 0, 1};  // nodes 0 and 2 are two hops apart
  EXPECT_FALSE(bad.isValidFor(topo));
  bad.slotOf = {0, 1, 2, 0};
  bad.frameLength = 3;
  EXPECT_TRUE(bad.isValidFor(topo));
  bad.slotOf = {0, 1, 2};  // wrong size
  EXPECT_FALSE(bad.isValidFor(topo));
}

// The headline property: TDMA flooding over the *collision-aware* channel
// never collides and reaches every connected node — CFM semantics
// realised over CAM.
TEST(TdmaFlooding, CollisionFreeOverCamChannel) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    support::Rng rng = support::Rng::forStream(seed + 10, 0);
    const Deployment dep = Deployment::paperDisk(rng, 4, 1.0, 25.0);
    const Topology topo(dep, 1.0);
    const TdmaSchedule schedule = buildTdmaSchedule(topo);
    sim::ExperimentConfig cfg;
    cfg.rings = 4;
    cfg.neighborDensity = 25.0;
    cfg.slotsPerPhase = schedule.frameLength;
    protocols::TdmaFlooding protocol(schedule);
    const auto run = sim::runBroadcast(cfg, dep, topo, protocol, rng);
    std::uint64_t lost = 0;
    for (const auto& phase : run.phases()) lost += phase.lostReceivers;
    EXPECT_EQ(lost, 0u) << "seed " << seed;
    EXPECT_EQ(run.reachedCount(), topo.reachableCount(dep.source()))
        << "seed " << seed;
    EXPECT_EQ(run.totalBroadcasts(), run.reachedCount());
  }
}

TEST(TdmaFlooding, RequiresMatchingSlotCount) {
  support::Rng rng = support::Rng::forStream(20, 0);
  const Deployment dep = Deployment::paperDisk(rng, 3, 1.0, 15.0);
  const Topology topo(dep, 1.0);
  const TdmaSchedule schedule = buildTdmaSchedule(topo);
  sim::ExperimentConfig cfg;
  cfg.rings = 3;
  cfg.neighborDensity = 15.0;
  cfg.slotsPerPhase = 3;  // not the frame length
  protocols::TdmaFlooding protocol(schedule);
  if (schedule.frameLength != 3) {
    EXPECT_THROW(sim::runBroadcast(cfg, dep, topo, protocol, rng),
                 nsmodel::Error);
  }
}

TEST(TdmaFlooding, ValidatesSchedule) {
  TdmaSchedule empty;
  empty.frameLength = 0;
  EXPECT_THROW(protocols::TdmaFlooding{empty}, nsmodel::Error);
}

}  // namespace
}  // namespace nsmodel::net
