#include "sim/run_result.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace nsmodel::sim {
namespace {

// A hand-built run: 10 nodes, s = 2 slots/phase.
//   slot 0 (phase 1): source tx; receptions at slot 0: nodes -> 3 receivers
//   slot 2 (phase 2): 2 tx; receptions at slot 2: 2 receivers
//   slot 5 (phase 3): 1 tx; reception at slot 5: 1 receiver
// Total: 6 receivers + source = 7 reached of 10.
RunResult makeRun() {
  std::vector<std::uint64_t> receptions{0, 0, 0, 2, 2, 5};
  std::vector<std::uint64_t> transmissions{0, 2, 2, 5};
  std::vector<PhaseObservation> phases(3);
  phases[0] = {1, 3, 3, 0};
  phases[1] = {2, 2, 2, 1};
  phases[2] = {1, 1, 1, 0};
  return RunResult(10, 2, receptions, transmissions, phases,
                   /*attemptedPairs=*/20, /*deliveredPairs=*/6);
}

TEST(RunResult, BasicCounts) {
  const RunResult run = makeRun();
  EXPECT_EQ(run.nodeCount(), 10u);
  EXPECT_EQ(run.slotsPerPhase(), 2);
  EXPECT_EQ(run.reachedCount(), 7u);
  EXPECT_DOUBLE_EQ(run.finalReachability(), 0.7);
  EXPECT_EQ(run.totalBroadcasts(), 4u);
}

TEST(RunResult, ReachabilityAfterFractionalPhases) {
  const RunResult run = makeRun();
  // Before anything happens only the source counts.
  EXPECT_DOUBLE_EQ(run.reachabilityAfter(0.0), 0.1);
  // Slot 0 completes at phase time 0.5: +3 receivers.
  EXPECT_DOUBLE_EQ(run.reachabilityAfter(0.5), 0.4);
  EXPECT_DOUBLE_EQ(run.reachabilityAfter(1.0), 0.4);
  // Slot 2 completes at phase time 1.5: +2.
  EXPECT_DOUBLE_EQ(run.reachabilityAfter(1.5), 0.6);
  EXPECT_DOUBLE_EQ(run.reachabilityAfter(2.0), 0.6);
  // Slot 5 completes at phase time 3.0: +1.
  EXPECT_DOUBLE_EQ(run.reachabilityAfter(2.9), 0.6);
  EXPECT_DOUBLE_EQ(run.reachabilityAfter(3.0), 0.7);
  EXPECT_DOUBLE_EQ(run.reachabilityAfter(100.0), 0.7);
}

TEST(RunResult, LatencyForReachability) {
  const RunResult run = makeRun();
  // 40% needs 4 nodes incl. source: the 3rd reception, in slot 0.
  EXPECT_DOUBLE_EQ(*run.latencyForReachability(0.4), 0.5);
  // 60%: the 5th reception, slot 2 -> phase time 1.5.
  EXPECT_DOUBLE_EQ(*run.latencyForReachability(0.6), 1.5);
  // 70%: slot 5 -> phase time 3.0.
  EXPECT_DOUBLE_EQ(*run.latencyForReachability(0.7), 3.0);
  // 80% never happens.
  EXPECT_FALSE(run.latencyForReachability(0.8).has_value());
  // Ten percent is just the source.
  EXPECT_DOUBLE_EQ(*run.latencyForReachability(0.1), 0.0);
}

TEST(RunResult, BroadcastsForReachability) {
  const RunResult run = makeRun();
  // 40% reached in slot 0; transmissions with slot <= 0: just the source.
  EXPECT_DOUBLE_EQ(*run.broadcastsForReachability(0.4), 1.0);
  // 60% reached in slot 2; transmissions <= 2: three.
  EXPECT_DOUBLE_EQ(*run.broadcastsForReachability(0.6), 3.0);
  // 70% -> all four transmissions.
  EXPECT_DOUBLE_EQ(*run.broadcastsForReachability(0.7), 4.0);
  EXPECT_FALSE(run.broadcastsForReachability(0.9).has_value());
}

TEST(RunResult, ReachabilityForBudget) {
  const RunResult run = makeRun();
  // Budget >= total broadcasts: final reachability.
  EXPECT_DOUBLE_EQ(run.reachabilityForBudget(4.0), 0.7);
  EXPECT_DOUBLE_EQ(run.reachabilityForBudget(100.0), 0.7);
  // Budget 1: only the source's slot-0 transmission counts -> 0.4.
  EXPECT_DOUBLE_EQ(run.reachabilityForBudget(1.0), 0.4);
  // Budget 3: through slot 2 -> 0.6.
  EXPECT_DOUBLE_EQ(run.reachabilityForBudget(3.0), 0.6);
  // Budget 0: just the source.
  EXPECT_DOUBLE_EQ(run.reachabilityForBudget(0.0), 0.1);
  // Fractional budgets floor to whole transmissions.
  EXPECT_DOUBLE_EQ(run.reachabilityForBudget(1.9), 0.4);
}

TEST(RunResult, SuccessRate) {
  const RunResult run = makeRun();
  EXPECT_DOUBLE_EQ(run.averageSuccessRate(), 6.0 / 20.0);
}

TEST(RunResult, SuccessRateZeroWhenNoAttempts) {
  const RunResult run(5, 2, {}, {}, {}, 0, 0);
  EXPECT_DOUBLE_EQ(run.averageSuccessRate(), 0.0);
  EXPECT_EQ(run.reachedCount(), 1u);
  EXPECT_DOUBLE_EQ(run.finalReachability(), 0.2);
}

TEST(RunResult, QueryValidation) {
  const RunResult run = makeRun();
  EXPECT_THROW(run.reachabilityAfter(-0.1), nsmodel::Error);
  EXPECT_THROW(run.latencyForReachability(0.0), nsmodel::Error);
  EXPECT_THROW(run.latencyForReachability(1.5), nsmodel::Error);
  EXPECT_THROW(run.broadcastsForReachability(-1.0), nsmodel::Error);
  EXPECT_THROW(run.reachabilityForBudget(-1.0), nsmodel::Error);
}

TEST(RunResult, ConstructionValidation) {
  EXPECT_THROW(RunResult(0, 2, {}, {}, {}, 0, 0), nsmodel::Error);
  EXPECT_THROW(RunResult(5, 0, {}, {}, {}, 0, 0), nsmodel::Error);
  // A per-node reception table, when present, must cover every node.
  EXPECT_THROW(RunResult(5, 2, {}, {}, {}, 0, 0,
                         std::vector<std::int64_t>{0, 1}),
               nsmodel::Error);
}

TEST(RunResult, PerNodeReceptionTableIsOptional) {
  const RunResult bare(5, 2, {}, {}, {}, 0, 0);
  EXPECT_TRUE(bare.receptionSlotByNode().empty());
  std::vector<std::int64_t> byNode{RunResult::kNeverReceived, 0, 2,
                                   RunResult::kNeverReceived,
                                   RunResult::kNeverReceived};
  const RunResult tracked(5, 2, {0, 2}, {0}, {{1, 2, 2, 0}}, 4, 2, byNode);
  ASSERT_EQ(tracked.receptionSlotByNode().size(), 5u);
  EXPECT_EQ(tracked.receptionSlotByNode()[1], 0);
  EXPECT_EQ(tracked.receptionSlotByNode()[2], 2);
  EXPECT_EQ(tracked.receptionSlotByNode()[0], RunResult::kNeverReceived);
}

TEST(RunResult, FullReachabilityTarget) {
  // A run that reaches everyone.
  std::vector<std::uint64_t> receptions{0};
  const RunResult run(2, 3, receptions, {0}, {{1, 1, 1, 0}}, 1, 1);
  EXPECT_DOUBLE_EQ(run.finalReachability(), 1.0);
  ASSERT_TRUE(run.latencyForReachability(1.0).has_value());
  EXPECT_NEAR(*run.latencyForReachability(1.0), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace nsmodel::sim
