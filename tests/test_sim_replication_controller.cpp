#include "sim/replication_controller.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "protocols/probabilistic.hpp"
#include "sim/monte_carlo.hpp"
#include "support/error.hpp"

namespace nsmodel::sim {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

AdaptiveReplication enabled(double targetCi, int minReps, int maxReps) {
  AdaptiveReplication adaptive;
  adaptive.targetCi = targetCi;
  adaptive.minReps = minReps;
  adaptive.maxReps = maxReps;
  return adaptive;
}

TEST(AdaptiveReplication, DefaultIsDisabledAndValid) {
  const AdaptiveReplication adaptive;
  EXPECT_FALSE(adaptive.enabled());
  EXPECT_NO_THROW(adaptive.validate());
}

TEST(AdaptiveReplication, ValidateRejectsInconsistentConfigs) {
  EXPECT_THROW(enabled(0.1, 1, 30).validate(), ConfigError);
  EXPECT_THROW(enabled(0.1, 10, 5).validate(), ConfigError);
  AdaptiveReplication badConfidence = enabled(0.1, 6, 30);
  badConfidence.confidence = 1.0;
  EXPECT_THROW(badConfidence.validate(), ConfigError);
  badConfidence.confidence = 0.0;
  EXPECT_THROW(badConfidence.validate(), ConfigError);
  EXPECT_NO_THROW(enabled(0.1, 2, 2).validate());
}

TEST(AdaptiveReplication, BatchScheduleIsMinThenHalfSteps) {
  const AdaptiveReplication adaptive = enabled(0.1, 6, 30);
  EXPECT_EQ(adaptive.nextTarget(0), 6);
  EXPECT_EQ(adaptive.nextTarget(6), 9);
  EXPECT_EQ(adaptive.nextTarget(9), 12);
  EXPECT_EQ(adaptive.nextTarget(28), 30);  // clamped at the ceiling
  const AdaptiveReplication tiny = enabled(0.1, 2, 4);
  EXPECT_EQ(tiny.nextTarget(0), 2);
  EXPECT_EQ(tiny.nextTarget(2), 3);  // step = max(1, minReps / 2) = 1
  EXPECT_EQ(tiny.nextTarget(3), 4);
}

TEST(ReplicationController, DisabledModeIsOneFixedBatch) {
  ReplicationController controller(AdaptiveReplication{}, 8);
  EXPECT_FALSE(controller.done());
  EXPECT_EQ(controller.nextTarget(), 8);
  for (int rep = 0; rep < 8; ++rep) controller.addSample({1.0});
  EXPECT_TRUE(controller.done());
  EXPECT_EQ(controller.completed(), 8);
  // Disabled mode never claims statistical convergence.
  EXPECT_FALSE(controller.converged());
}

TEST(ReplicationController, ZeroVarianceConvergesAtMinReps) {
  ReplicationController controller(enabled(0.01, 4, 30), 30);
  for (int rep = 0; rep < 4; ++rep) {
    EXPECT_FALSE(controller.done());
    controller.addSample({0.7});
  }
  EXPECT_TRUE(controller.converged());
  EXPECT_TRUE(controller.done());
  EXPECT_EQ(controller.completed(), 4);
}

TEST(ReplicationController, NoisyMetricRunsToTheCeiling) {
  // Alternating 0/1 samples: the CI half-width stays far above 1e-6.
  ReplicationController controller(enabled(1e-6, 2, 7), 30);
  int rep = 0;
  while (!controller.done()) {
    const int target = controller.nextTarget();
    for (; rep < target; ++rep) controller.addSample({rep % 2 ? 1.0 : 0.0});
  }
  EXPECT_EQ(controller.completed(), 7);
  EXPECT_FALSE(controller.converged());
}

TEST(ReplicationController, NanSamplesDoNotConverge) {
  // All-undefined metrics must exhaust the budget, not "converge" on an
  // empty accumulator.
  ReplicationController controller(enabled(0.5, 2, 5), 30);
  while (!controller.done()) controller.addSample({kNaN});
  EXPECT_EQ(controller.completed(), 5);
  EXPECT_EQ(controller.stat(0).count(), 0u);
}

TEST(ReplicationController, AllMetricsMustConverge) {
  // Metric 0 is constant (converges instantly); metric 1 alternates, so
  // the pair only stops at the ceiling.
  ReplicationController controller(enabled(1e-6, 2, 6), 30);
  int rep = 0;
  while (!controller.done()) {
    const int target = controller.nextTarget();
    for (; rep < target; ++rep) {
      controller.addSample({0.5, rep % 2 ? 1.0 : 0.0});
    }
  }
  EXPECT_EQ(controller.completed(), 6);
}

TEST(ReplicationController, InconsistentMetricCountThrows) {
  ReplicationController controller(enabled(0.1, 2, 6), 30);
  controller.addSample({1.0, 2.0});
  EXPECT_THROW(controller.addSample({1.0}), Error);
  EXPECT_THROW(controller.addSample({}), Error);
}

// ---- integration with the Monte-Carlo layer ----

MonteCarloConfig smallConfig() {
  MonteCarloConfig mc;
  mc.experiment.rings = 4;
  mc.experiment.neighborDensity = 30.0;
  mc.seed = 42;
  mc.replications = 12;
  return mc;
}

protocols::ProtocolFactory pb(double p) {
  return [p] {
    return std::make_unique<protocols::ProbabilisticBroadcast>(p);
  };
}

MetricExtractor reachability() {
  return [](const RunResult& run) {
    return std::vector<double>{run.finalReachability()};
  };
}

TEST(MonteCarloAdaptive, RealizedCountIsDeterministic) {
  MonteCarloConfig mc = smallConfig();
  mc.adaptive = enabled(0.05, 3, 12);
  const auto a = monteCarlo(mc, pb(0.4), reachability());
  mc.parallel = false;  // chunking must not affect the stopping decision
  const auto b = monteCarlo(mc, pb(0.4), reachability());
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].replications, b[0].replications);
  EXPECT_DOUBLE_EQ(a[0].stats.mean, b[0].stats.mean);
  EXPECT_DOUBLE_EQ(a[0].stats.stddev, b[0].stats.stddev);
  EXPECT_GE(a[0].replications, 3);
  EXPECT_LE(a[0].replications, 12);
}

TEST(MonteCarloAdaptive, UnreachableTargetMatchesFixedRunExactly) {
  // A hopeless target runs every batch to maxReps; replication k's
  // randomness derives from (seed, k) alone, so the aggregate must be
  // bitwise the fixed-maxReps aggregate.
  MonteCarloConfig adaptive = smallConfig();
  adaptive.adaptive = enabled(1e-12, 3, 12);
  MonteCarloConfig fixed = smallConfig();
  fixed.replications = 12;
  const auto a = monteCarlo(adaptive, pb(0.3), reachability());
  const auto f = monteCarlo(fixed, pb(0.3), reachability());
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].replications, 12);
  EXPECT_EQ(f[0].replications, 12);
  EXPECT_EQ(a[0].stats.count, f[0].stats.count);
  EXPECT_EQ(a[0].stats.mean, f[0].stats.mean);
  EXPECT_EQ(a[0].stats.stddev, f[0].stats.stddev);
  EXPECT_EQ(a[0].stats.min, f[0].stats.min);
  EXPECT_EQ(a[0].stats.max, f[0].stats.max);
  EXPECT_EQ(a[0].definedFraction, f[0].definedFraction);
}

TEST(MonteCarloAdaptive, FixedModeReportsConfiguredCount) {
  const auto aggs = monteCarlo(smallConfig(), pb(0.3), reachability());
  ASSERT_EQ(aggs.size(), 1u);
  EXPECT_EQ(aggs[0].replications, 12);
}

TEST(MonteCarloSweepAdaptive, PrunesConvergedPointsIndependently) {
  // p = 1.0 floods every run (near-zero variance at this density);
  // p = 0.2 sits in the noisy transition region.  The flooded point must
  // stop earlier, and every realized count must match a standalone
  // adaptive monteCarlo at the same point (pruning cannot change the
  // samples a point sees).
  MonteCarloConfig mc = smallConfig();
  mc.adaptive = enabled(0.04, 3, 12);
  const std::vector<protocols::ProtocolFactory> factories{pb(0.2), pb(1.0)};
  const auto sweep = monteCarloSweep(mc, factories, reachability());
  ASSERT_EQ(sweep.size(), 2u);
  const auto lone0 = monteCarlo(mc, pb(0.2), reachability());
  const auto lone1 = monteCarlo(mc, pb(1.0), reachability());
  EXPECT_EQ(sweep[0][0].replications, lone0[0].replications);
  EXPECT_EQ(sweep[1][0].replications, lone1[0].replications);
  EXPECT_EQ(sweep[0][0].stats.mean, lone0[0].stats.mean);
  EXPECT_EQ(sweep[1][0].stats.mean, lone1[0].stats.mean);
  EXPECT_LE(sweep[1][0].replications, sweep[0][0].replications);
}

}  // namespace
}  // namespace nsmodel::sim
