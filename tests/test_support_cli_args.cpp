#include "support/cli_args.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace nsmodel::support {
namespace {

CliArgs parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> args(argv);
  return CliArgs(static_cast<int>(args.size()), args.data());
}

TEST(CliArgs, EmptyCommandLine) {
  const CliArgs args(0, nullptr);
  EXPECT_TRUE(args.program().empty());
  EXPECT_TRUE(args.positional().empty());
  EXPECT_FALSE(args.has("anything"));
}

TEST(CliArgs, ProgramAndPositionals) {
  const CliArgs args = parse({"tool", "predict", "extra"});
  EXPECT_EQ(args.program(), "tool");
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "predict");
  EXPECT_EQ(args.positional()[1], "extra");
}

TEST(CliArgs, FlagWithValue) {
  const CliArgs args = parse({"tool", "--rho=60.5"});
  EXPECT_TRUE(args.has("rho"));
  EXPECT_DOUBLE_EQ(args.getDouble("rho", 0.0), 60.5);
}

TEST(CliArgs, FlagWithoutValue) {
  const CliArgs args = parse({"tool", "--fast"});
  EXPECT_TRUE(args.has("fast"));
  EXPECT_TRUE(args.getBool("fast"));
  // Typed accessors demand a value.
  EXPECT_THROW(args.getDouble("fast", 1.0), Error);
  EXPECT_THROW(args.getString("fast", "x"), Error);
}

TEST(CliArgs, MissingFlagFallsBack) {
  const CliArgs args = parse({"tool"});
  EXPECT_DOUBLE_EQ(args.getDouble("rho", 42.0), 42.0);
  EXPECT_EQ(args.getInt("reps", 7), 7);
  EXPECT_EQ(args.getString("mode", "cam"), "cam");
  EXPECT_FALSE(args.getBool("sim", false));
  EXPECT_TRUE(args.getBool("sim", true));
}

TEST(CliArgs, IntegerParsing) {
  const CliArgs args = parse({"tool", "--reps=30", "--neg=-5"});
  EXPECT_EQ(args.getInt("reps", 0), 30);
  EXPECT_EQ(args.getInt("neg", 0), -5);
}

TEST(CliArgs, MalformedNumbersThrow) {
  const CliArgs args = parse({"tool", "--rho=abc", "--reps=3x", "--e="});
  EXPECT_THROW(args.getDouble("rho", 0.0), Error);
  EXPECT_THROW(args.getInt("reps", 0), Error);
  EXPECT_THROW(args.getDouble("e", 0.0), Error);
}

TEST(CliArgs, BooleanValues) {
  const CliArgs args = parse({"tool", "--a=true", "--b=0", "--c=yes",
                              "--d=no", "--e=maybe"});
  EXPECT_TRUE(args.getBool("a"));
  EXPECT_FALSE(args.getBool("b"));
  EXPECT_TRUE(args.getBool("c"));
  EXPECT_FALSE(args.getBool("d"));
  EXPECT_THROW(args.getBool("e"), Error);
}

TEST(CliArgs, ValueMayContainEquals) {
  const CliArgs args = parse({"tool", "--expr=a=b"});
  EXPECT_EQ(args.getString("expr", ""), "a=b");
}

TEST(CliArgs, FlagsAndPositionalsInterleave) {
  const CliArgs args = parse({"tool", "cmd", "--x=1", "pos", "--y"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[1], "pos");
  EXPECT_TRUE(args.has("x"));
  EXPECT_TRUE(args.has("y"));
}

TEST(CliArgs, UnusedFlagsTracksAccess) {
  const CliArgs args = parse({"tool", "--used=1", "--typo=2"});
  EXPECT_EQ(args.getInt("used", 0), 1);
  const auto unused = args.unusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
  // Reading it clears it.
  args.has("typo");
  EXPECT_TRUE(args.unusedFlags().empty());
}

TEST(CliArgs, LastOccurrenceWins) {
  const CliArgs args = parse({"tool", "--p=0.1", "--p=0.9"});
  EXPECT_DOUBLE_EQ(args.getDouble("p", 0.0), 0.9);
}

}  // namespace
}  // namespace nsmodel::support
