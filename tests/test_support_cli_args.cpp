#include "support/cli_args.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace nsmodel::support {
namespace {

CliArgs parse(std::initializer_list<const char*> argv) {
  std::vector<const char*> args(argv);
  return CliArgs(static_cast<int>(args.size()), args.data());
}

TEST(CliArgs, EmptyCommandLine) {
  const CliArgs args(0, nullptr);
  EXPECT_TRUE(args.program().empty());
  EXPECT_TRUE(args.positional().empty());
  EXPECT_FALSE(args.has("anything"));
}

TEST(CliArgs, ProgramAndPositionals) {
  const CliArgs args = parse({"tool", "predict", "extra"});
  EXPECT_EQ(args.program(), "tool");
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "predict");
  EXPECT_EQ(args.positional()[1], "extra");
}

TEST(CliArgs, FlagWithValue) {
  const CliArgs args = parse({"tool", "--rho=60.5"});
  EXPECT_TRUE(args.has("rho"));
  EXPECT_DOUBLE_EQ(args.getDouble("rho", 0.0), 60.5);
}

TEST(CliArgs, FlagWithoutValue) {
  const CliArgs args = parse({"tool", "--fast"});
  EXPECT_TRUE(args.has("fast"));
  EXPECT_TRUE(args.getBool("fast"));
  // Typed accessors demand a value.
  EXPECT_THROW(args.getDouble("fast", 1.0), Error);
  EXPECT_THROW(args.getString("fast", "x"), Error);
}

TEST(CliArgs, MissingFlagFallsBack) {
  const CliArgs args = parse({"tool"});
  EXPECT_DOUBLE_EQ(args.getDouble("rho", 42.0), 42.0);
  EXPECT_EQ(args.getInt("reps", 7), 7);
  EXPECT_EQ(args.getString("mode", "cam"), "cam");
  EXPECT_FALSE(args.getBool("sim", false));
  EXPECT_TRUE(args.getBool("sim", true));
}

TEST(CliArgs, IntegerParsing) {
  const CliArgs args = parse({"tool", "--reps=30", "--neg=-5"});
  EXPECT_EQ(args.getInt("reps", 0), 30);
  EXPECT_EQ(args.getInt("neg", 0), -5);
}

TEST(CliArgs, MalformedNumbersThrow) {
  const CliArgs args = parse({"tool", "--rho=abc", "--reps=3x", "--e="});
  EXPECT_THROW(args.getDouble("rho", 0.0), Error);
  EXPECT_THROW(args.getInt("reps", 0), Error);
  EXPECT_THROW(args.getDouble("e", 0.0), Error);
}

TEST(CliArgs, BooleanValues) {
  const CliArgs args = parse({"tool", "--a=true", "--b=0", "--c=yes",
                              "--d=no", "--e=maybe"});
  EXPECT_TRUE(args.getBool("a"));
  EXPECT_FALSE(args.getBool("b"));
  EXPECT_TRUE(args.getBool("c"));
  EXPECT_FALSE(args.getBool("d"));
  EXPECT_THROW(args.getBool("e"), Error);
}

TEST(CliArgs, ValueMayContainEquals) {
  const CliArgs args = parse({"tool", "--expr=a=b"});
  EXPECT_EQ(args.getString("expr", ""), "a=b");
}

TEST(CliArgs, FlagsAndPositionalsInterleave) {
  const CliArgs args = parse({"tool", "cmd", "--x=1", "pos", "--y"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[1], "pos");
  EXPECT_TRUE(args.has("x"));
  EXPECT_TRUE(args.has("y"));
}

TEST(CliArgs, UnusedFlagsTracksAccess) {
  const CliArgs args = parse({"tool", "--used=1", "--typo=2"});
  EXPECT_EQ(args.getInt("used", 0), 1);
  const auto unused = args.unusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
  // Reading it clears it.
  args.has("typo");
  EXPECT_TRUE(args.unusedFlags().empty());
}

TEST(CliArgs, OutOfRangeIntegersThrow) {
  // strtol would silently saturate these to LONG_MAX / LONG_MIN.
  const CliArgs args = parse({"tool", "--n=99999999999999999999",
                              "--m=-99999999999999999999", "--ok=42"});
  EXPECT_THROW(args.getInt("n", 0), Error);
  EXPECT_THROW(args.getInt("m", 0), Error);
  EXPECT_EQ(args.getInt("ok", 0), 42);
}

TEST(CliArgs, OutOfRangeDoublesThrow) {
  // Overflow saturates strtod to +-HUGE_VAL; underflow towards zero is
  // accepted (it is a faithful rounding, not a silent saturation).
  const CliArgs args = parse({"tool", "--big=1e999", "--neg=-1e999",
                              "--tiny=1e-320"});
  EXPECT_THROW(args.getDouble("big", 0.0), Error);
  EXPECT_THROW(args.getDouble("neg", 0.0), Error);
  EXPECT_NEAR(args.getDouble("tiny", 1.0), 0.0, 1e-300);
}

TEST(CliArgs, EmptyFlagNamesRejected) {
  EXPECT_THROW(parse({"tool", "--"}), Error);
  EXPECT_THROW(parse({"tool", "--=value"}), Error);
  // A plain single dash is still a positional argument.
  const CliArgs args = parse({"tool", "-"});
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "-");
}

TEST(CliArgs, LastOccurrenceWins) {
  const CliArgs args = parse({"tool", "--p=0.1", "--p=0.9"});
  EXPECT_DOUBLE_EQ(args.getDouble("p", 0.0), 0.9);
}

TEST(CliArgs, TrailingGarbageDoublesThrow) {
  const CliArgs args = parse({"tool", "--p=0.5x", "--q=0.5 ", "--r=1e2"});
  EXPECT_THROW(args.getDouble("p", 0.0), Error);
  EXPECT_THROW(args.getDouble("q", 0.0), Error);
  // Decimal exponents are still plain numbers.
  EXPECT_DOUBLE_EQ(args.getDouble("r", 0.0), 100.0);
}

TEST(CliArgs, HexInfNanDoublesThrow) {
  // strtod accepts all of these; a simulation flag should not.
  const CliArgs args = parse({"tool", "--hex=0x1p3", "--hex2=0X10",
                              "--inf=inf", "--ninf=-INF", "--nan=nan",
                              "--nan2=NaN(0)", "--exp=2.5E-1"});
  EXPECT_THROW(args.getDouble("hex", 0.0), Error);
  EXPECT_THROW(args.getDouble("hex2", 0.0), Error);
  EXPECT_THROW(args.getDouble("inf", 0.0), Error);
  EXPECT_THROW(args.getDouble("ninf", 0.0), Error);
  EXPECT_THROW(args.getDouble("nan", 0.0), Error);
  EXPECT_THROW(args.getDouble("nan2", 0.0), Error);
  EXPECT_DOUBLE_EQ(args.getDouble("exp", 0.0), 0.25);
}

TEST(PolicyEnv, UnsetAutoAndEmptyResolveToAutoValue) {
  EXPECT_EQ(parsePolicyEnv("NSMODEL_BATCH", nullptr, 8), 8);
  EXPECT_EQ(parsePolicyEnv("NSMODEL_BATCH", "auto", 8), 8);
  EXPECT_EQ(parsePolicyEnv("NSMODEL_BATCH", "", 8), 8);
}

TEST(PolicyEnv, OffMeansOne) {
  EXPECT_EQ(parsePolicyEnv("NSMODEL_SHARDS", "off", 4), 1);
}

TEST(PolicyEnv, ExplicitWidthsParse) {
  EXPECT_EQ(parsePolicyEnv("NSMODEL_BATCH", "1", 8), 1);
  EXPECT_EQ(parsePolicyEnv("NSMODEL_BATCH", "16", 8), 16);
  EXPECT_EQ(parsePolicyEnv("NSMODEL_SHARDS", "7", 4), 7);
}

TEST(PolicyEnv, ZeroIsRejectedNotClamped) {
  // The old NSMODEL_BATCH parser silently treated 0 as 1.
  EXPECT_THROW(parsePolicyEnv("NSMODEL_BATCH", "0", 8), Error);
}

TEST(PolicyEnv, NegativeValuesThrow) {
  EXPECT_THROW(parsePolicyEnv("NSMODEL_BATCH", "-1", 8), Error);
  EXPECT_THROW(parsePolicyEnv("NSMODEL_SHARDS", "-999", 4), Error);
}

TEST(PolicyEnv, OverflowLargeValuesThrow) {
  // The old parser cast the LONG_MAX saturation straight to int.
  EXPECT_THROW(parsePolicyEnv("NSMODEL_BATCH", "99999999999999999999", 8),
               Error);
  EXPECT_THROW(parsePolicyEnv("NSMODEL_BATCH", "2147483648", 8), Error);
  EXPECT_EQ(parsePolicyEnv("NSMODEL_BATCH", "2147483647", 8), 2147483647);
}

TEST(PolicyEnv, TrailingGarbageThrows) {
  EXPECT_THROW(parsePolicyEnv("NSMODEL_BATCH", "8x", 8), Error);
  EXPECT_THROW(parsePolicyEnv("NSMODEL_BATCH", "8 ", 8), Error);
  EXPECT_THROW(parsePolicyEnv("NSMODEL_SHARDS", "on", 4), Error);
  EXPECT_THROW(parsePolicyEnv("NSMODEL_SHARDS", "AUTO", 4), Error);
}

}  // namespace
}  // namespace nsmodel::support
