#include "sim/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "protocols/probabilistic.hpp"
#include "sim/run_workspace.hpp"
#include "sim/scenario_cache.hpp"
#include "support/error.hpp"

namespace nsmodel::sim {
namespace {

MonteCarloConfig smallConfig(double p) {
  MonteCarloConfig mc;
  mc.experiment.rings = 4;
  mc.experiment.neighborDensity = 30.0;
  mc.seed = 42;
  mc.replications = 8;
  (void)p;
  return mc;
}

protocols::ProtocolFactory pb(double p) {
  return [p] {
    return std::make_unique<protocols::ProbabilisticBroadcast>(p);
  };
}

TEST(MonteCarlo, AggregatesAllReplications) {
  const auto aggs = monteCarlo(
      smallConfig(0.3), pb(0.3), [](const RunResult& run) {
        return std::vector<double>{run.finalReachability(),
                                   static_cast<double>(run.totalBroadcasts())};
      });
  ASSERT_EQ(aggs.size(), 2u);
  EXPECT_EQ(aggs[0].stats.count, 8u);
  EXPECT_DOUBLE_EQ(aggs[0].definedFraction, 1.0);
  EXPECT_GT(aggs[0].stats.mean, 0.0);
  EXPECT_LE(aggs[0].stats.mean, 1.0);
  EXPECT_GE(aggs[1].stats.mean, 1.0);
}

TEST(MonteCarlo, ParallelAndSerialAgreeExactly) {
  MonteCarloConfig serial = smallConfig(0.4);
  serial.parallel = false;
  MonteCarloConfig parallel = smallConfig(0.4);
  parallel.parallel = true;
  const auto extract = [](const RunResult& run) {
    return std::vector<double>{run.finalReachability(),
                               static_cast<double>(run.totalBroadcasts())};
  };
  const auto a = monteCarlo(serial, pb(0.4), extract);
  const auto b = monteCarlo(parallel, pb(0.4), extract);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].stats.mean, b[i].stats.mean);
    EXPECT_DOUBLE_EQ(a[i].stats.stddev, b[i].stats.stddev);
  }
}

TEST(MonteCarlo, NanSamplesExcludedAndCounted) {
  // Make the metric undefined for roughly half the runs.
  int counter = 0;
  const auto aggs = monteCarlo(
      smallConfig(0.3), pb(0.3), [&counter](const RunResult&) {
        const bool defined = (counter++ % 2) == 0;
        return std::vector<double>{
            defined ? 1.0 : std::numeric_limits<double>::quiet_NaN()};
      });
  ASSERT_EQ(aggs.size(), 1u);
  EXPECT_EQ(aggs[0].stats.count, 4u);
  EXPECT_DOUBLE_EQ(aggs[0].definedFraction, 0.5);
  EXPECT_DOUBLE_EQ(aggs[0].stats.mean, 1.0);
}

TEST(MonteCarlo, InconsistentExtractorThrows) {
  int counter = 0;
  EXPECT_THROW(
      monteCarlo(smallConfig(0.3), pb(0.3),
                 [&counter](const RunResult&) {
                   return std::vector<double>(
                       static_cast<std::size_t>(1 + (counter++ % 2)), 0.0);
                 }),
      nsmodel::Error);
}

TEST(MonteCarlo, ZeroReplicationsRejected) {
  MonteCarloConfig mc = smallConfig(0.3);
  mc.replications = 0;
  EXPECT_THROW(monteCarlo(mc, pb(0.3),
                          [](const RunResult&) {
                            return std::vector<double>{0.0};
                          }),
               nsmodel::Error);
}

TEST(MonteCarlo, SeedChangesResults) {
  MonteCarloConfig a = smallConfig(0.3);
  MonteCarloConfig b = smallConfig(0.3);
  b.seed = 43;
  const auto extract = [](const RunResult& run) {
    return std::vector<double>{static_cast<double>(run.totalBroadcasts())};
  };
  const auto ra = monteCarlo(a, pb(0.3), extract);
  const auto rb = monteCarlo(b, pb(0.3), extract);
  EXPECT_NE(ra[0].stats.mean, rb[0].stats.mean);
}

TEST(RunReplications, ReturnsOneResultPerReplication) {
  const auto runs = runReplications(smallConfig(0.5), pb(0.5));
  EXPECT_EQ(runs.size(), 8u);
  for (const RunResult& run : runs) {
    EXPECT_EQ(run.nodeCount(), 480u);  // 30 * 4^2
  }
}

TEST(RunReplications, OrderIndependentOfThreads) {
  MonteCarloConfig serial = smallConfig(0.5);
  serial.parallel = false;
  const auto a = runReplications(serial, pb(0.5));
  const auto b = runReplications(smallConfig(0.5), pb(0.5));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].totalBroadcasts(), b[i].totalBroadcasts());
    EXPECT_EQ(a[i].reachedCount(), b[i].reachedCount());
  }
}

// Chunking is a scheduling detail: every replication's randomness comes
// from (seed, replication) alone, so any grain — including the derived
// default and a serial sweep — yields bitwise-equal aggregates.
TEST(MonteCarlo, AggregatesIndependentOfGrain) {
  const auto extract = [](const RunResult& run) {
    return std::vector<double>{run.finalReachability(),
                               static_cast<double>(run.totalBroadcasts()),
                               run.averageSuccessRate()};
  };
  MonteCarloConfig reference = smallConfig(0.4);
  reference.parallel = false;
  reference.grain = 1;
  const auto baseline = monteCarlo(reference, pb(0.4), extract);

  for (const int grain : {0, 2, 3, 7, 100}) {
    for (const bool parallel : {false, true}) {
      MonteCarloConfig mc = smallConfig(0.4);
      mc.parallel = parallel;
      mc.grain = grain;
      const auto aggs = monteCarlo(mc, pb(0.4), extract);
      ASSERT_EQ(aggs.size(), baseline.size());
      for (std::size_t i = 0; i < aggs.size(); ++i) {
        EXPECT_EQ(aggs[i].stats.mean, baseline[i].stats.mean)
            << "grain " << grain << " parallel " << parallel;
        EXPECT_EQ(aggs[i].stats.stddev, baseline[i].stats.stddev)
            << "grain " << grain << " parallel " << parallel;
        EXPECT_EQ(aggs[i].definedFraction, baseline[i].definedFraction)
            << "grain " << grain << " parallel " << parallel;
      }
    }
  }
}

// Sharing one workspace pool (and a scenario cache) across calls must not
// change any aggregate — pooling only recycles buffers.
TEST(MonteCarlo, WorkspacePoolAndCacheAreTransparent) {
  const auto extract = [](const RunResult& run) {
    return std::vector<double>{run.finalReachability(),
                               static_cast<double>(run.totalBroadcasts())};
  };
  const auto plain = monteCarlo(smallConfig(0.6), pb(0.6), extract);

  ScenarioCache cache;
  RunWorkspacePool pool;
  MonteCarloConfig accelerated = smallConfig(0.6);
  accelerated.cache = &cache;
  accelerated.workspaces = &pool;
  // Two passes through the same pool: the second leases warm workspaces.
  for (int pass = 0; pass < 2; ++pass) {
    const auto aggs = monteCarlo(accelerated, pb(0.6), extract);
    ASSERT_EQ(aggs.size(), plain.size());
    for (std::size_t i = 0; i < aggs.size(); ++i) {
      EXPECT_EQ(aggs[i].stats.mean, plain[i].stats.mean) << "pass " << pass;
      EXPECT_EQ(aggs[i].stats.stddev, plain[i].stats.stddev)
          << "pass " << pass;
    }
  }
}

TEST(MonteCarlo, ReachabilityVarianceIsModest) {
  // Sanity: with 8 replications the CI half-width should be well below
  // the mean for a mid-range p.
  const auto aggs = monteCarlo(
      smallConfig(0.5), pb(0.5), [](const RunResult& run) {
        return std::vector<double>{run.finalReachability()};
      });
  EXPECT_LT(aggs[0].stats.ciHalfWidth95, aggs[0].stats.mean);
}

}  // namespace
}  // namespace nsmodel::sim
