#include "analytic/success_rate.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/error.hpp"

namespace nsmodel::analytic {
namespace {

RingModelConfig paperConfig(double rho) {
  RingModelConfig cfg;
  cfg.rings = 5;
  cfg.neighborDensity = rho;
  cfg.slotsPerPhase = 3;
  return cfg;
}

TEST(FloodingSuccessRate, IsAProbability) {
  for (double rho : {20.0, 60.0, 140.0}) {
    const double rate = floodingSuccessRate(paperConfig(rho));
    EXPECT_GT(rate, 0.0) << "rho=" << rho;
    EXPECT_LE(rate, 1.0) << "rho=" << rho;
  }
}

TEST(FloodingSuccessRate, DecreasesWithDensity) {
  double prev = 1.1;
  for (double rho : {20.0, 40.0, 80.0, 140.0}) {
    const double rate = floodingSuccessRate(paperConfig(rho));
    EXPECT_LT(rate, prev) << "rho=" << rho;
    prev = rate;
  }
}

TEST(FloodingSuccessRate, IgnoresConfiguredProbability) {
  RingModelConfig a = paperConfig(60.0);
  a.broadcastProb = 0.1;
  RingModelConfig b = paperConfig(60.0);
  b.broadcastProb = 0.9;
  EXPECT_DOUBLE_EQ(floodingSuccessRate(a), floodingSuccessRate(b));
}

TEST(FloodingSuccessRate, CollisionFreeChannelIsNearPerfect) {
  // Under CFM every in-field neighbour decodes; the shortfall from 1.0 is
  // purely the boundary effect (outer-ring transmitters cover area outside
  // the field while the rate normalises by rho = delta * pi * r^2).
  RingModelConfig cfg = paperConfig(60.0);
  cfg.channel = ChannelKind::CollisionFree;
  const double rate = floodingSuccessRate(cfg);
  EXPECT_GT(rate, 0.8);
  EXPECT_LE(rate, 1.0 + 1e-9);
  // And it must dwarf the CAM rate at the same density.
  EXPECT_GT(rate, 3.0 * floodingSuccessRate(paperConfig(60.0)));
}

// Fig. 12: the ratio optimal-p / flooding-success-rate is roughly constant
// across density.  We assert bounded variation rather than the paper's
// exact constant (~11), which depends on the unspecified mu extension.
TEST(FloodingSuccessRate, RatioToOptimalProbabilityIsStable) {
  std::vector<double> ratios;
  for (double rho : {40.0, 80.0, 120.0}) {
    double bestP = 0.0, bestReach = -1.0;
    for (int i = 1; i <= 100; ++i) {
      const double p = i * 0.01;
      RingModelConfig cfg = paperConfig(rho);
      cfg.broadcastProb = p;
      const double reach = RingModel(cfg).run().reachabilityAfter(5.0);
      if (reach > bestReach) {
        bestReach = reach;
        bestP = p;
      }
    }
    ratios.push_back(bestP / floodingSuccessRate(paperConfig(rho)));
  }
  const double lo = *std::min_element(ratios.begin(), ratios.end());
  const double hi = *std::max_element(ratios.begin(), ratios.end());
  EXPECT_LT(hi / lo, 1.6) << "ratio drifts too much: " << lo << ".." << hi;
}

TEST(HeuristicOptimalProbability, ScalesAndClamps) {
  EXPECT_DOUBLE_EQ(heuristicOptimalProbability(0.05, 11.0), 0.55);
  EXPECT_DOUBLE_EQ(heuristicOptimalProbability(0.2, 11.0), 1.0);  // clamped
  EXPECT_DOUBLE_EQ(heuristicOptimalProbability(0.0, 11.0), 0.0);
}

TEST(HeuristicOptimalProbability, Validation) {
  EXPECT_THROW(heuristicOptimalProbability(-0.1, 11.0), nsmodel::Error);
  EXPECT_THROW(heuristicOptimalProbability(1.1, 11.0), nsmodel::Error);
  EXPECT_THROW(heuristicOptimalProbability(0.5, 0.0), nsmodel::Error);
}

}  // namespace
}  // namespace nsmodel::analytic
