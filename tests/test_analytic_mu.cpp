#include "analytic/mu.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace nsmodel::analytic {
namespace {

/// Exhaustive enumeration of all s^K drops; ground truth for small cases.
double muBruteForce(int k, int s) {
  if (k == 0) return 0.0;
  std::vector<int> assignment(k, 0);
  long total = 0;
  long success = 0;
  for (;;) {
    std::vector<int> counts(s, 0);
    for (int item = 0; item < k; ++item) ++counts[assignment[item]];
    bool ok = false;
    for (int bucket = 0; bucket < s; ++bucket) {
      if (counts[bucket] == 1) ok = true;
    }
    ++total;
    if (ok) ++success;
    // Odometer increment.
    int pos = 0;
    while (pos < k && ++assignment[pos] == s) {
      assignment[pos] = 0;
      ++pos;
    }
    if (pos == k) break;
  }
  return static_cast<double>(success) / static_cast<double>(total);
}

/// Exhaustive ground truth for mu': bucket with exactly one A, zero B.
double muPrimeBruteForce(int k1, int k2, int s) {
  if (k1 == 0) return 0.0;
  const int k = k1 + k2;
  std::vector<int> assignment(k, 0);
  long total = 0;
  long success = 0;
  for (;;) {
    std::vector<int> aCounts(s, 0), bCounts(s, 0);
    for (int item = 0; item < k; ++item) {
      if (item < k1) {
        ++aCounts[assignment[item]];
      } else {
        ++bCounts[assignment[item]];
      }
    }
    bool ok = false;
    for (int bucket = 0; bucket < s; ++bucket) {
      if (aCounts[bucket] == 1 && bCounts[bucket] == 0) ok = true;
    }
    ++total;
    if (ok) ++success;
    int pos = 0;
    while (pos < k && ++assignment[pos] == s) {
      assignment[pos] = 0;
      ++pos;
    }
    if (pos == k) break;
  }
  return static_cast<double>(success) / static_cast<double>(total);
}

TEST(Mu, BaseCases) {
  for (int s = 1; s <= 6; ++s) {
    EXPECT_DOUBLE_EQ(mu(0, s), 0.0) << "s=" << s;
    EXPECT_DOUBLE_EQ(mu(1, s), 1.0) << "s=" << s;
  }
}

TEST(Mu, SingleBucket) {
  EXPECT_DOUBLE_EQ(mu(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(mu(2, 1), 0.0);
  EXPECT_DOUBLE_EQ(mu(5, 1), 0.0);
}

TEST(Mu, TwoItemsTwoBuckets) {
  // Both drops distinct buckets (prob 1/2) -> two singletons; same bucket
  // -> none. mu(2,2) = 1/2.
  EXPECT_NEAR(mu(2, 2), 0.5, 1e-12);
}

TEST(Mu, MatchesBruteForceEnumeration) {
  for (int s = 1; s <= 5; ++s) {
    for (int k = 0; k <= 8; ++k) {
      EXPECT_NEAR(mu(k, s), muBruteForce(k, s), 1e-10)
          << "K=" << k << " s=" << s;
    }
  }
}

TEST(Mu, RecursionMatchesClosedForm) {
  for (int s = 1; s <= 6; ++s) {
    for (int k = 0; k <= 40; ++k) {
      EXPECT_NEAR(mu(k, s), muRecursive(k, s), 1e-9)
          << "K=" << k << " s=" << s;
    }
  }
}

TEST(Mu, MatchesMonteCarlo) {
  support::Rng rng(1);
  const int s = 3;
  for (int k : {2, 5, 9, 15}) {
    const int trials = 200000;
    int success = 0;
    std::vector<int> counts(s);
    for (int t = 0; t < trials; ++t) {
      std::fill(counts.begin(), counts.end(), 0);
      for (int item = 0; item < k; ++item) ++counts[rng.below(s)];
      for (int bucket = 0; bucket < s; ++bucket) {
        if (counts[bucket] == 1) {
          ++success;
          break;
        }
      }
    }
    EXPECT_NEAR(mu(k, s), static_cast<double>(success) / trials, 0.005)
        << "K=" << k;
  }
}

TEST(Mu, IsAProbability) {
  for (int s = 1; s <= 8; ++s) {
    for (int k = 0; k <= 300; ++k) {
      const double v = mu(k, s);
      EXPECT_GE(v, 0.0) << "K=" << k << " s=" << s;
      EXPECT_LE(v, 1.0) << "K=" << k << " s=" << s;
    }
  }
}

TEST(Mu, VanishesForLargeK) {
  // Crowded slots: with K >> s the chance of a singleton slot dies off.
  EXPECT_LT(mu(100, 3), 1e-10);
  EXPECT_GT(mu(100, 3), 0.0 - 1e-15);
}

TEST(Mu, MoreSlotsNeverHurt) {
  // For fixed K, adding slots increases the singleton chance.
  for (int k : {2, 4, 8, 16}) {
    for (int s = 1; s < 10; ++s) {
      EXPECT_LE(mu(k, s), mu(k, s + 1) + 1e-12)
          << "K=" << k << " s=" << s;
    }
  }
}

TEST(Mu, UnimodalInKForPaperSlots) {
  // With s = 3 (the paper's setting), mu dips at K=2 (both items may share
  // a bucket), recovers at K=3, and then decays monotonically toward 0.
  const int s = 3;
  EXPECT_LT(mu(2, s), mu(3, s));
  double prev = mu(3, s);
  for (int k = 4; k <= 60; ++k) {
    const double cur = mu(k, s);
    EXPECT_LE(cur, prev + 1e-12) << "K=" << k;
    prev = cur;
  }
}

TEST(Mu, LogSpaceClosedFormMatchesMemoRecursionAtLargeArguments) {
  // The closed form evaluates every term in log space; at large K the raw
  // falling factorials and s^K would overflow long before these points.
  // The memoised recursion never forms those quantities, so agreement here
  // exercises the log-space path end to end.
  MuMemo memo;
  for (int s : {5, 8}) {
    for (int k = 0; k <= 64; ++k) {
      EXPECT_NEAR(mu(k, s), muRecursive(k, s, memo), 1e-10)
          << "K=" << k << " s=" << s;
    }
  }
}

TEST(Mu, MemoReuseIsDeterministic) {
  // A second evaluation through a warm memo is a pure table lookup and
  // must reproduce the cold result bit for bit.
  MuMemo memo;
  const double cold = muRecursive(48, 8, memo);
  const std::size_t filled = memo.mu.size();
  const double warm = muRecursive(48, 8, memo);
  EXPECT_EQ(cold, warm);
  EXPECT_EQ(memo.mu.size(), filled);
}

TEST(Mu, ClosedFormStaysFiniteFarBeyondRecursionRange) {
  // K values where s^K and K! are far outside double range: the log-space
  // sum must still produce a probability (here, one indistinguishable
  // from 0 — every slot is crowded).
  for (std::int64_t k : {500, 5000, 100000}) {
    const double v = mu(k, 8);
    EXPECT_TRUE(std::isfinite(v)) << "K=" << k;
    EXPECT_GE(v, 0.0) << "K=" << k;
    EXPECT_LE(v, 1e-12) << "K=" << k;
  }
}

TEST(Mu, InputValidation) {
  EXPECT_THROW(mu(-1, 3), nsmodel::Error);
  EXPECT_THROW(mu(3, 0), nsmodel::Error);
  EXPECT_THROW(muRecursive(-1, 3), nsmodel::Error);
  EXPECT_THROW(muRecursive(3, 0), nsmodel::Error);
}

TEST(MuPrime, ReducesToMuWithoutTypeB) {
  for (int s = 1; s <= 5; ++s) {
    for (int k1 = 0; k1 <= 20; ++k1) {
      EXPECT_NEAR(muPrime(k1, 0, s), mu(k1, s), 1e-12)
          << "K1=" << k1 << " s=" << s;
    }
  }
}

TEST(MuPrime, MatchesBruteForceEnumeration) {
  for (int s = 2; s <= 4; ++s) {
    for (int k1 = 0; k1 <= 4; ++k1) {
      for (int k2 = 0; k2 <= 4; ++k2) {
        EXPECT_NEAR(muPrime(k1, k2, s), muPrimeBruteForce(k1, k2, s), 1e-10)
            << "K1=" << k1 << " K2=" << k2 << " s=" << s;
      }
    }
  }
}

TEST(MuPrime, RecursionMatchesClosedForm) {
  for (int s = 1; s <= 4; ++s) {
    for (int k1 = 0; k1 <= 10; ++k1) {
      for (int k2 = 0; k2 <= 10; ++k2) {
        EXPECT_NEAR(muPrime(k1, k2, s), muPrimeRecursive(k1, k2, s), 1e-9)
            << "K1=" << k1 << " K2=" << k2 << " s=" << s;
      }
    }
  }
}

TEST(MuPrime, LogSpaceClosedFormMatchesMemoRecursionAtLargerArguments) {
  // Same log-space-vs-recursion agreement for the carrier-sense variant,
  // at the largest arguments the O((K1 K2)^2 s) recursion can afford.
  MuMemo memo;
  const int s = 5;
  for (int k1 = 0; k1 <= 14; k1 += 2) {
    for (int k2 = 0; k2 <= 14; k2 += 2) {
      EXPECT_NEAR(muPrime(k1, k2, s), muPrimeRecursive(k1, k2, s, memo),
                  1e-10)
          << "K1=" << k1 << " K2=" << k2;
    }
  }
}

TEST(MuPrime, TypeBItemsOnlyHurt) {
  for (int k1 : {1, 3, 7}) {
    for (int s : {2, 3, 5}) {
      double prev = muPrime(k1, 0, s);
      for (int k2 = 1; k2 <= 12; ++k2) {
        const double cur = muPrime(k1, k2, s);
        EXPECT_LE(cur, prev + 1e-12)
            << "K1=" << k1 << " K2=" << k2 << " s=" << s;
        prev = cur;
      }
    }
  }
}

TEST(MuPrime, MatchesMonteCarlo) {
  support::Rng rng(2);
  const int s = 3;
  const int k1 = 4, k2 = 6;
  const int trials = 200000;
  int success = 0;
  for (int t = 0; t < trials; ++t) {
    int aCounts[3] = {0, 0, 0};
    int bCounts[3] = {0, 0, 0};
    for (int i = 0; i < k1; ++i) ++aCounts[rng.below(s)];
    for (int i = 0; i < k2; ++i) ++bCounts[rng.below(s)];
    for (int bucket = 0; bucket < s; ++bucket) {
      if (aCounts[bucket] == 1 && bCounts[bucket] == 0) {
        ++success;
        break;
      }
    }
  }
  EXPECT_NEAR(muPrime(k1, k2, s), static_cast<double>(success) / trials,
              0.005);
}

TEST(MuPrime, IsAProbability) {
  for (int k1 = 0; k1 <= 50; k1 += 5) {
    for (int k2 = 0; k2 <= 150; k2 += 15) {
      const double v = muPrime(k1, k2, 3);
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(MuPrime, InputValidation) {
  EXPECT_THROW(muPrime(-1, 0, 3), nsmodel::Error);
  EXPECT_THROW(muPrime(0, -1, 3), nsmodel::Error);
  EXPECT_THROW(muPrime(1, 1, 0), nsmodel::Error);
}

TEST(MuReal, InterpolateMatchesIntegersExactly) {
  for (int k = 0; k <= 30; ++k) {
    EXPECT_DOUBLE_EQ(muReal(static_cast<double>(k), 3,
                            RealKPolicy::Interpolate),
                     mu(k, 3));
  }
}

TEST(MuReal, InterpolateIsLinearBetweenIntegers) {
  const double lo = mu(4, 3);
  const double hi = mu(5, 3);
  EXPECT_NEAR(muReal(4.25, 3, RealKPolicy::Interpolate),
              lo + 0.25 * (hi - lo), 1e-12);
}

TEST(MuReal, PoissonClosedFormMatchesMixture) {
  // Direct Poisson mixture of integer mu values must equal the closed form.
  const int s = 3;
  for (double lambda : {0.5, 2.0, 7.0, 20.0}) {
    double mixture = 0.0;
    double logPmf = -lambda;  // log P(K = 0)
    for (int k = 0; k <= 200; ++k) {
      if (k > 0) logPmf += std::log(lambda / k);
      mixture += std::exp(logPmf) * mu(k, s);
    }
    EXPECT_NEAR(muReal(lambda, s, RealKPolicy::Poisson), mixture, 1e-9)
        << "lambda=" << lambda;
  }
}

TEST(MuReal, PoliciesAgreeAtZero) {
  EXPECT_DOUBLE_EQ(muReal(0.0, 3, RealKPolicy::Interpolate), 0.0);
  EXPECT_DOUBLE_EQ(muReal(0.0, 3, RealKPolicy::Poisson), 0.0);
}

TEST(MuReal, Validation) {
  EXPECT_THROW(muReal(-0.1, 3, RealKPolicy::Interpolate), nsmodel::Error);
  EXPECT_THROW(muReal(1.0, 0, RealKPolicy::Poisson), nsmodel::Error);
}

TEST(MuPrimeReal, PoissonClosedFormMatchesDoubleMixture) {
  const int s = 3;
  const double l1 = 3.0, l2 = 5.0;
  double mixture = 0.0;
  double logP1 = -l1;
  for (int k1 = 0; k1 <= 60; ++k1) {
    if (k1 > 0) logP1 += std::log(l1 / k1);
    double logP2 = -l2;
    for (int k2 = 0; k2 <= 80; ++k2) {
      if (k2 > 0) logP2 += std::log(l2 / k2);
      mixture += std::exp(logP1 + logP2) * muPrime(k1, k2, s);
    }
  }
  EXPECT_NEAR(muPrimeReal(l1, l2, s, RealKPolicy::Poisson), mixture, 1e-8);
}

TEST(MuPrimeReal, BilinearInterpolationAtCorners) {
  for (int k1 : {0, 2, 5}) {
    for (int k2 : {0, 3, 8}) {
      EXPECT_DOUBLE_EQ(
          muPrimeReal(static_cast<double>(k1), static_cast<double>(k2), 3,
                      RealKPolicy::Interpolate),
          muPrime(k1, k2, 3));
    }
  }
}

TEST(MuPrimeReal, ReducesToMuRealWithoutTypeB) {
  for (double lambda : {0.7, 3.3, 11.1}) {
    for (auto policy : {RealKPolicy::Interpolate, RealKPolicy::Poisson}) {
      EXPECT_NEAR(muPrimeReal(lambda, 0.0, 3, policy),
                  muReal(lambda, 3, policy), 1e-12);
    }
  }
}

TEST(ExpectedSingletonSlots, IntegerValues) {
  // E[# singleton slots] = K ((s-1)/s)^{K-1}.
  const int s = 3;
  for (int k = 0; k <= 20; ++k) {
    const double expected =
        k == 0 ? 0.0
               : k * std::pow(2.0 / 3.0, static_cast<double>(k - 1));
    EXPECT_NEAR(expectedSingletonSlots(static_cast<double>(k), s,
                                       RealKPolicy::Interpolate),
                expected, 1e-12);
  }
}

TEST(ExpectedSingletonSlots, PoissonForm) {
  const int s = 3;
  for (double lambda : {0.0, 1.0, 4.0, 9.0}) {
    EXPECT_NEAR(expectedSingletonSlots(lambda, s, RealKPolicy::Poisson),
                lambda * std::exp(-lambda / s), 1e-12);
  }
}

TEST(ExpectedSingletonSlots, MatchesMonteCarlo) {
  support::Rng rng(3);
  const int s = 3, k = 6;
  const int trials = 200000;
  long singletons = 0;
  for (int t = 0; t < trials; ++t) {
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < k; ++i) ++counts[rng.below(s)];
    for (int bucket = 0; bucket < s; ++bucket) {
      if (counts[bucket] == 1) ++singletons;
    }
  }
  EXPECT_NEAR(expectedSingletonSlots(k, s, RealKPolicy::Interpolate),
              static_cast<double>(singletons) / trials, 0.01);
}

TEST(ExpectedSingletonSlots, SingleItemAlwaysSingleton) {
  for (int s = 1; s <= 5; ++s) {
    EXPECT_DOUBLE_EQ(
        expectedSingletonSlots(1.0, s, RealKPolicy::Interpolate), 1.0);
  }
}

}  // namespace
}  // namespace nsmodel::analytic
