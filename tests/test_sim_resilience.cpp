// Resilient execution: cooperative cancellation, mid-run checkpoint /
// restore bit-identity, and the checkpoint file format.
//
// The cancellation contract (experiment.hpp's RunControl) is that a
// deadline expiry or an external cancel request surfaces as the retryable
// TimeoutError from all three backends — flat loop, lockstep batch,
// sharded engine — and leaves the engine/workspace reusable.  The
// checkpoint contract (checkpoint.hpp) is that a sharded run resumed
// from ANY snapshot produces the byte-identical RunResult of the
// uninterrupted run; the matrix here proves it for every snapshot a run
// emits, across {CFM, CAM, CAM-CS} x {clean, combined faults} x shard
// counts {1, 3}.  The format tests cover version/magic/CRC guards, the
// truncation detector, and the fingerprint check that refuses snapshots
// from a different run.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "net/energy.hpp"
#include "protocols/probabilistic.hpp"
#include "sim/batch_workspace.hpp"
#include "sim/checkpoint.hpp"
#include "sim/experiment.hpp"
#include "sim/experiment_batch.hpp"
#include "sim/scenario_cache.hpp"
#include "sim/sharded_engine.hpp"
#include "support/deadline.hpp"
#include "support/error.hpp"

namespace {

using namespace nsmodel;

/// A deadline that has already expired when the run starts.
support::Deadline expiredDeadline() {
  const support::Deadline deadline = support::Deadline::after(1e-9);
  while (!deadline.expired()) {
  }
  return deadline;
}

sim::ExperimentConfig smallConfig(
    net::ChannelModel channel = net::ChannelModel::CollisionAware) {
  sim::ExperimentConfig cfg;
  cfg.rings = 4;
  cfg.neighborDensity = 25.0;
  cfg.maxPhases = 40;
  cfg.channel = channel;
  return cfg;
}

sim::Scenario scenarioFor(const sim::ExperimentConfig& cfg,
                          std::uint64_t seed = 42) {
  return sim::buildScenario(sim::ScenarioKey::forExperiment(cfg, seed, 0));
}

void expectIdentical(const sim::RunResult& a, const sim::RunResult& b,
                     const std::string& label) {
  EXPECT_EQ(a.nodeCount(), b.nodeCount()) << label;
  EXPECT_EQ(a.receptionSlots(), b.receptionSlots()) << label;
  EXPECT_EQ(a.transmissionSlots(), b.transmissionSlots()) << label;
  EXPECT_EQ(a.receptionSlotByNode(), b.receptionSlotByNode()) << label;
  EXPECT_EQ(a.attemptedPairs(), b.attemptedPairs()) << label;
  EXPECT_EQ(a.deliveredPairs(), b.deliveredPairs()) << label;
  ASSERT_EQ(a.phases().size(), b.phases().size()) << label;
  for (std::size_t i = 0; i < a.phases().size(); ++i) {
    EXPECT_EQ(a.phases()[i].transmissions, b.phases()[i].transmissions)
        << label << " phase " << i;
    EXPECT_EQ(a.phases()[i].newReceivers, b.phases()[i].newReceivers)
        << label << " phase " << i;
    EXPECT_EQ(a.phases()[i].deliveries, b.phases()[i].deliveries)
        << label << " phase " << i;
    EXPECT_EQ(a.phases()[i].lostReceivers, b.phases()[i].lostReceivers)
        << label << " phase " << i;
  }
}

// ---------------------------------------------------------------------------
// Cancellation: TimeoutError out of every backend.

TEST(Cancellation, ExpiredDeadlineThrowsTimeoutFromFlatLoop) {
  const sim::ExperimentConfig cfg = smallConfig();
  const sim::Scenario scenario = scenarioFor(cfg);
  protocols::ProbabilisticBroadcast protocol(0.6);
  support::Rng rng = scenario.protocolRng;
  sim::RunControl control;
  control.deadline = expiredDeadline();
  try {
    sim::runBroadcast(cfg, scenario.deployment, scenario.topology, protocol,
                      rng, nullptr, &control);
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    EXPECT_TRUE(e.retryable());
    EXPECT_EQ(e.category(), ErrorCategory::Timeout);
  }
}

TEST(Cancellation, CancelTokenThrowsTimeoutFromFlatLoop) {
  const sim::ExperimentConfig cfg = smallConfig();
  const sim::Scenario scenario = scenarioFor(cfg);
  protocols::ProbabilisticBroadcast protocol(0.6);
  support::Rng rng = scenario.protocolRng;
  support::CancelToken token;
  token.requestCancel();
  sim::RunControl control;
  control.cancel = &token;
  EXPECT_THROW(sim::runBroadcast(cfg, scenario.deployment, scenario.topology,
                                 protocol, rng, nullptr, &control),
               TimeoutError);
}

TEST(Cancellation, ExpiredDeadlineThrowsTimeoutFromBatchBackend) {
  const sim::ExperimentConfig cfg = smallConfig();
  const sim::Scenario a = scenarioFor(cfg, 42);
  const sim::Scenario b = scenarioFor(cfg, 43);
  protocols::ProbabilisticBroadcast protoA(0.6);
  protocols::ProbabilisticBroadcast protoB(0.6);
  std::vector<sim::BatchLane> lanes;
  lanes.push_back({&a.deployment, &a.topology, &protoA, a.protocolRng,
                   nullptr});
  lanes.push_back({&b.deployment, &b.topology, &protoB, b.protocolRng,
                   nullptr});
  sim::BatchWorkspace workspace;
  sim::RunControl control;
  control.deadline = expiredDeadline();
  EXPECT_THROW(sim::runBroadcastBatch(cfg, lanes, workspace, &control),
               TimeoutError);
  // The workspace survives a cancelled run: the same lanes complete when
  // retried without the deadline, matching individually-run references.
  lanes.clear();
  lanes.push_back({&a.deployment, &a.topology, &protoA, a.protocolRng,
                   nullptr});
  lanes.push_back({&b.deployment, &b.topology, &protoB, b.protocolRng,
                   nullptr});
  const std::vector<sim::RunResult> batch =
      sim::runBroadcastBatch(cfg, lanes, workspace);
  ASSERT_EQ(batch.size(), 2u);
  protocols::ProbabilisticBroadcast solo(0.6);
  support::Rng rngA = a.protocolRng;
  const sim::RunResult refA = sim::runBroadcast(
      cfg, a.deployment, a.topology, solo, rngA);
  expectIdentical(batch[0], refA, "batch lane 0 after cancelled attempt");
}

TEST(Cancellation, ExpiredDeadlineThrowsTimeoutFromShardedEngine) {
  const sim::ExperimentConfig cfg = smallConfig();
  const sim::Scenario scenario = scenarioFor(cfg);
  protocols::ProbabilisticBroadcast protocol(0.6);
  sim::ShardedEngine engine(scenario.deployment, scenario.topology, 3);
  sim::RunControl control;
  control.deadline = expiredDeadline();
  {
    support::Rng rng = scenario.protocolRng;
    EXPECT_THROW(
        engine.run(cfg, protocol, rng, nullptr, &control), TimeoutError);
  }
  // The engine is reusable after a cancelled run and produces the same
  // result a fresh engine would.
  support::Rng rng = scenario.protocolRng;
  const sim::RunResult reused = engine.run(cfg, protocol, rng);
  sim::ShardedEngine fresh(scenario.deployment, scenario.topology, 3);
  support::Rng rng2 = scenario.protocolRng;
  const sim::RunResult baseline = fresh.run(cfg, protocol, rng2);
  expectIdentical(reused, baseline, "engine reuse after timeout");
}

TEST(Cancellation, CancelTokenUnsetRunsToCompletion) {
  const sim::ExperimentConfig cfg = smallConfig();
  const sim::Scenario scenario = scenarioFor(cfg);
  protocols::ProbabilisticBroadcast protocol(0.6);
  support::CancelToken token;  // never cancelled
  sim::RunControl control;
  control.cancel = &token;
  sim::ShardedEngine engine(scenario.deployment, scenario.topology, 2);
  support::Rng rng = scenario.protocolRng;
  const sim::RunResult withControl =
      engine.run(cfg, protocol, rng, nullptr, &control);
  support::Rng rng2 = scenario.protocolRng;
  const sim::RunResult without = engine.run(cfg, protocol, rng2);
  expectIdentical(withControl, without, "inactive control is a no-op");
}

TEST(Cancellation, FlatAndBatchRejectCheckpointRequests) {
  const sim::ExperimentConfig cfg = smallConfig();
  const sim::Scenario scenario = scenarioFor(cfg);
  protocols::ProbabilisticBroadcast protocol(0.6);
  sim::RunControl control;
  control.checkpointPath = "/tmp/never-written";
  {
    support::Rng rng = scenario.protocolRng;
    EXPECT_THROW(sim::runBroadcast(cfg, scenario.deployment,
                                   scenario.topology, protocol, rng, nullptr,
                                   &control),
                 Error);
  }
  {
    std::vector<sim::BatchLane> lanes;
    lanes.push_back({&scenario.deployment, &scenario.topology, &protocol,
                     scenario.protocolRng, nullptr});
    sim::BatchWorkspace workspace;
    EXPECT_THROW(sim::runBroadcastBatch(cfg, lanes, workspace, &control),
                 Error);
  }
}

// ---------------------------------------------------------------------------
// Checkpoint/restore bit-identity.

struct ResilienceCase {
  std::string name;
  net::ChannelModel channel = net::ChannelModel::CollisionAware;
  bool faulty = false;
  int shards = 1;
};

std::vector<ResilienceCase> restoreMatrix() {
  const struct {
    const char* name;
    net::ChannelModel channel;
  } channels[] = {
      {"cfm", net::ChannelModel::CollisionFree},
      {"cam", net::ChannelModel::CollisionAware},
      {"cs", net::ChannelModel::CarrierSenseAware},
  };
  std::vector<ResilienceCase> cases;
  for (const auto& ch : channels) {
    for (const bool faulty : {false, true}) {
      for (const int shards : {1, 3}) {
        cases.push_back({std::string(ch.name) +
                             (faulty ? "_faulty" : "_clean") + "_s" +
                             std::to_string(shards),
                         ch.channel, faulty, shards});
      }
    }
  }
  return cases;
}

sim::ExperimentConfig configFor(const ResilienceCase& c) {
  sim::ExperimentConfig cfg = smallConfig(c.channel);
  if (c.faulty) {
    cfg.fault.faultSeed = 19;
    cfg.fault.crash.crashRate = 0.05;
    cfg.fault.crash.recoveryRate = 0.3;
    cfg.fault.link.pGoodToBad = 0.2;
    cfg.fault.link.pBadToGood = 0.5;
    cfg.fault.link.lossBad = 0.5;
    cfg.fault.drift.maxSkewSlots = 0.3;
  }
  return cfg;
}

class CheckpointRestore : public ::testing::TestWithParam<ResilienceCase> {};

// The strongest form of the kill/restore guarantee: capture EVERY
// snapshot an uninterrupted run emits, then — as if the process had been
// killed right after each one — resume a fresh engine from it and demand
// the byte-identical RunResult.
TEST_P(CheckpointRestore, EverySnapshotResumesBitIdentically) {
  const ResilienceCase& c = GetParam();
  const sim::ExperimentConfig cfg = configFor(c);
  const sim::Scenario scenario = scenarioFor(cfg);
  protocols::ProbabilisticBroadcast protocol(0.5);

  sim::ShardedEngine engine(scenario.deployment, scenario.topology, c.shards);
  std::vector<sim::RunCheckpoint> snapshots;
  sim::RunControl capture;
  capture.checkpointEveryPhases = 2;
  capture.checkpointSink = [&](const sim::RunCheckpoint& cp) {
    snapshots.push_back(cp);
  };
  support::Rng rng = scenario.protocolRng;
  const sim::RunResult reference =
      engine.run(cfg, protocol, rng, nullptr, &capture);
  ASSERT_FALSE(snapshots.empty()) << c.name;

  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    sim::RunControl resume;
    resume.restore = &snapshots[i];
    sim::ShardedEngine restored(scenario.deployment, scenario.topology,
                                c.shards);
    protocols::ProbabilisticBroadcast protocol2(0.5);
    support::Rng rng2 = scenario.protocolRng;
    const sim::RunResult resumed =
        restored.run(cfg, protocol2, rng2, nullptr, &resume);
    expectIdentical(resumed, reference,
                    c.name + " snapshot " + std::to_string(i) + "/" +
                        std::to_string(snapshots.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, CheckpointRestore,
                         ::testing::ValuesIn(restoreMatrix()),
                         [](const auto& info) { return info.param.name; });

TEST(CheckpointRestoreExtras, RoundTripSurvivesSerialization) {
  const sim::ExperimentConfig cfg = smallConfig();
  const sim::Scenario scenario = scenarioFor(cfg);
  protocols::ProbabilisticBroadcast protocol(0.5);
  sim::ShardedEngine engine(scenario.deployment, scenario.topology, 3);
  std::vector<sim::RunCheckpoint> snapshots;
  sim::RunControl capture;
  capture.checkpointSink = [&](const sim::RunCheckpoint& cp) {
    snapshots.push_back(cp);
  };
  support::Rng rng = scenario.protocolRng;
  const sim::RunResult reference =
      engine.run(cfg, protocol, rng, nullptr, &capture);
  ASSERT_FALSE(snapshots.empty());

  // Through bytes: serialize -> deserialize -> resume.
  const sim::RunCheckpoint middle = snapshots[snapshots.size() / 2];
  const sim::RunCheckpoint reloaded =
      sim::RunCheckpoint::deserialize(middle.serialize());
  sim::RunControl resume;
  resume.restore = &reloaded;
  support::Rng rng2 = scenario.protocolRng;
  const sim::RunResult resumed =
      engine.run(cfg, protocol, rng2, nullptr, &resume);
  expectIdentical(resumed, reference, "serialize/deserialize round trip");
}

TEST(CheckpointRestoreExtras, LedgerCountsSurviveRestore) {
  sim::ExperimentConfig cfg = smallConfig();
  const sim::Scenario scenario = scenarioFor(cfg);
  const std::size_t n = scenario.deployment.nodeCount();
  protocols::ProbabilisticBroadcast protocol(0.5);
  sim::ShardedEngine engine(scenario.deployment, scenario.topology, 2);

  net::EnergyLedger reference(n, {});
  std::vector<sim::RunCheckpoint> snapshots;
  sim::RunControl capture;
  capture.checkpointSink = [&](const sim::RunCheckpoint& cp) {
    snapshots.push_back(cp);
  };
  support::Rng rng = scenario.protocolRng;
  engine.run(cfg, protocol, rng, &reference, &capture);
  ASSERT_FALSE(snapshots.empty());
  EXPECT_TRUE(snapshots.front().hasLedger);

  net::EnergyLedger resumedLedger(n, {});
  sim::RunControl resume;
  resume.restore = &snapshots[snapshots.size() / 2];
  support::Rng rng2 = scenario.protocolRng;
  engine.run(cfg, protocol, rng2, &resumedLedger, &resume);
  EXPECT_EQ(resumedLedger.perNodeTx(), reference.perNodeTx());
  EXPECT_EQ(resumedLedger.perNodeRx(), reference.perNodeRx());
}

TEST(CheckpointRestoreExtras, FingerprintMismatchIsConfigError) {
  const sim::ExperimentConfig cfg = smallConfig();
  const sim::Scenario scenario = scenarioFor(cfg);
  protocols::ProbabilisticBroadcast protocol(0.5);
  sim::ShardedEngine engine(scenario.deployment, scenario.topology, 2);
  std::vector<sim::RunCheckpoint> snapshots;
  sim::RunControl capture;
  capture.checkpointSink = [&](const sim::RunCheckpoint& cp) {
    snapshots.push_back(cp);
  };
  support::Rng rng = scenario.protocolRng;
  engine.run(cfg, protocol, rng, nullptr, &capture);
  ASSERT_FALSE(snapshots.empty());

  // Different RNG state (a different replication) -> refused.
  {
    sim::RunControl resume;
    resume.restore = &snapshots.front();
    const sim::Scenario other = scenarioFor(cfg, /*seed=*/77);
    support::Rng rng2 = other.protocolRng;
    EXPECT_THROW(engine.run(cfg, protocol, rng2, nullptr, &resume),
                 ConfigError);
  }
  // Different shard count -> refused.
  {
    sim::RunControl resume;
    resume.restore = &snapshots.front();
    sim::ShardedEngine narrower(scenario.deployment, scenario.topology, 3);
    support::Rng rng2 = scenario.protocolRng;
    EXPECT_THROW(narrower.run(cfg, protocol, rng2, nullptr, &resume),
                 ConfigError);
  }
  // Different fault config -> refused.
  {
    sim::RunControl resume;
    resume.restore = &snapshots.front();
    sim::ExperimentConfig faulty = cfg;
    faulty.fault.faultSeed = 3;
    faulty.fault.link.pGoodToBad = 0.1;
    faulty.fault.link.pBadToGood = 0.5;
    faulty.fault.link.lossBad = 0.5;
    support::Rng rng2 = scenario.protocolRng;
    EXPECT_THROW(engine.run(faulty, protocol, rng2, nullptr, &resume),
                 ConfigError);
  }
}

TEST(CheckpointRestoreExtras, BadCadenceIsRejected) {
  const sim::ExperimentConfig cfg = smallConfig();
  const sim::Scenario scenario = scenarioFor(cfg);
  protocols::ProbabilisticBroadcast protocol(0.5);
  sim::ShardedEngine engine(scenario.deployment, scenario.topology, 2);
  sim::RunControl control;
  control.checkpointEveryPhases = 0;
  control.checkpointSink = [](const sim::RunCheckpoint&) {};
  support::Rng rng = scenario.protocolRng;
  EXPECT_THROW(engine.run(cfg, protocol, rng, nullptr, &control), Error);
}

// ---------------------------------------------------------------------------
// File format guards.

class TempCheckpoint {
 public:
  explicit TempCheckpoint(const char* tag) {
    path_ = (std::filesystem::temp_directory_path() /
             (std::string("nsmodel_ck_") + tag + ".bin"))
                .string();
    std::remove(path_.c_str());
  }
  ~TempCheckpoint() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

sim::RunCheckpoint sampleCheckpoint() {
  const sim::ExperimentConfig cfg = smallConfig();
  const sim::Scenario scenario = scenarioFor(cfg);
  protocols::ProbabilisticBroadcast protocol(0.5);
  sim::ShardedEngine engine(scenario.deployment, scenario.topology, 2);
  std::vector<sim::RunCheckpoint> snapshots;
  sim::RunControl capture;
  capture.checkpointSink = [&](const sim::RunCheckpoint& cp) {
    snapshots.push_back(cp);
  };
  support::Rng rng = scenario.protocolRng;
  engine.run(cfg, protocol, rng, nullptr, &capture);
  return snapshots.at(snapshots.size() / 2);
}

TEST(CheckpointFormat, SaveLoadRoundTrips) {
  const sim::RunCheckpoint cp = sampleCheckpoint();
  TempCheckpoint file("roundtrip");
  cp.save(file.path());
  const sim::RunCheckpoint loaded = sim::RunCheckpoint::load(file.path());
  EXPECT_EQ(loaded.serialize(), cp.serialize());
}

TEST(CheckpointFormat, DetectsCorruptionTruncationAndBadMagic) {
  const sim::RunCheckpoint cp = sampleCheckpoint();
  const std::string bytes = cp.serialize();

  // Flip one payload byte: the CRC catches it.
  {
    std::string corrupt = bytes;
    corrupt[corrupt.size() / 2] ^= 0x20;
    EXPECT_THROW(sim::RunCheckpoint::deserialize(corrupt), IoError);
  }
  // Truncate at several depths: header, mid-payload, one byte short.
  for (const std::size_t keep :
       {std::size_t{3}, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_THROW(sim::RunCheckpoint::deserialize(bytes.substr(0, keep)),
                 IoError)
        << "kept " << keep << " of " << bytes.size();
  }
  // Trailing garbage after a valid snapshot is refused too.
  EXPECT_THROW(sim::RunCheckpoint::deserialize(bytes + "x"), IoError);
  // Wrong magic.
  {
    std::string wrong = bytes;
    wrong[0] ^= 0xFF;
    EXPECT_THROW(sim::RunCheckpoint::deserialize(wrong), IoError);
  }
  EXPECT_THROW(sim::RunCheckpoint::load("/nonexistent/nsmodel-ck.bin"),
               IoError);
}

}  // namespace
