#include "support/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace nsmodel::support {
namespace {

TEST(RunningStat, EmptyDefaults) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
  EXPECT_THROW(stat.min(), Error);
  EXPECT_THROW(stat.max(), Error);
}

TEST(RunningStat, SingleSample) {
  RunningStat stat;
  stat.add(5.0);
  EXPECT_EQ(stat.count(), 1u);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stat.min(), 5.0);
  EXPECT_DOUBLE_EQ(stat.max(), 5.0);
}

TEST(RunningStat, KnownMeanAndVariance) {
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.add(x);
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  // Sample (unbiased) variance of the classic example set is 32/7.
  EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  Rng rng(1);
  RunningStat whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat a;
  a.add(1.0);
  a.add(3.0);
  RunningStat empty;
  RunningStat b = a;
  b.merge(empty);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  RunningStat c = empty;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(RunningStat, ConfidenceIntervalShrinksWithSamples) {
  Rng rng(2);
  RunningStat small, large;
  for (int i = 0; i < 20; ++i) small.add(rng.uniform());
  for (int i = 0; i < 2000; ++i) large.add(rng.uniform());
  EXPECT_GT(small.confidenceHalfWidth(), large.confidenceHalfWidth());
}

TEST(RunningStat, ConfidenceCoversTrueMean) {
  // 95% CI should contain the true mean in the large majority of trials.
  Rng rng(3);
  int covered = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    RunningStat stat;
    for (int i = 0; i < 100; ++i) stat.add(rng.uniform());
    const double half = stat.confidenceHalfWidth(0.95);
    if (std::abs(stat.mean() - 0.5) <= half) ++covered;
  }
  EXPECT_GE(covered, trials * 0.88);
}

TEST(RunningStat, InvalidConfidenceLevelThrows) {
  RunningStat stat;
  stat.add(1.0);
  stat.add(2.0);
  EXPECT_THROW(stat.confidenceHalfWidth(0.0), Error);
  EXPECT_THROW(stat.confidenceHalfWidth(1.0), Error);
}

TEST(RunningStat, HalfWidthIsZeroBelowTwoSamples) {
  // The adaptive replication controller must never read a "converged"
  // half-width out of an empty or single-sample accumulator; below two
  // samples there is no variance estimate and the half-width is 0.
  RunningStat stat;
  EXPECT_DOUBLE_EQ(stat.confidenceHalfWidth(0.95), 0.0);
  EXPECT_DOUBLE_EQ(stat.standardError(), 0.0);
  stat.add(3.0);
  EXPECT_DOUBLE_EQ(stat.confidenceHalfWidth(0.95), 0.0);
  EXPECT_DOUBLE_EQ(stat.standardError(), 0.0);
}

TEST(RunningStat, ZeroVarianceHasZeroHalfWidth) {
  RunningStat stat;
  for (int i = 0; i < 10; ++i) stat.add(0.25);
  EXPECT_DOUBLE_EQ(stat.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stat.confidenceHalfWidth(0.95), 0.0);
  EXPECT_DOUBLE_EQ(stat.confidenceHalfWidth(0.99), 0.0);
}

TEST(RunningStat, HalfWidthMatchesTheNormalTable) {
  // n samples of known variance: half-width = z * s / sqrt(n) with the
  // textbook z values (1.645 / 1.960 / 2.576 at 90 / 95 / 99%).
  RunningStat stat;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.add(x);
  const double se = std::sqrt((32.0 / 7.0) / 8.0);
  EXPECT_NEAR(stat.confidenceHalfWidth(0.90), 1.644854 * se, 1e-5);
  EXPECT_NEAR(stat.confidenceHalfWidth(0.95), 1.959964 * se, 1e-5);
  EXPECT_NEAR(stat.confidenceHalfWidth(0.99), 2.575829 * se, 1e-5);
}

TEST(RunningStat, MergeIsOrderIndependent) {
  Rng rng(4);
  std::vector<RunningStat> parts(4);
  RunningStat whole;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.uniform(-2.0, 7.0);
    whole.add(x);
    parts[i % 4].add(x);
  }
  RunningStat forward;  // ((0 + 1) + 2) + 3
  for (const RunningStat& part : parts) forward.merge(part);
  RunningStat backward;  // ((3 + 2) + 1) + 0
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    backward.merge(*it);
  }
  EXPECT_EQ(forward.count(), whole.count());
  EXPECT_EQ(backward.count(), whole.count());
  EXPECT_NEAR(forward.mean(), backward.mean(), 1e-12);
  EXPECT_NEAR(forward.variance(), backward.variance(), 1e-10);
  EXPECT_NEAR(forward.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(forward.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(forward.min(), backward.min());
  EXPECT_DOUBLE_EQ(forward.max(), backward.max());
}

TEST(Summarize, SingleSampleHasNoSpread) {
  const Summary s = summarize({2.5});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ciHalfWidth95, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 2.5);
  EXPECT_DOUBLE_EQ(s.max, 2.5);
}

TEST(Summarize, EmptyVector) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, BasicProperties) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_GT(s.ciHalfWidth95, 0.0);
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normalQuantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normalQuantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(normalQuantile(0.8413447), 1.0, 1e-4);
  EXPECT_NEAR(normalQuantile(0.999), 3.090232, 1e-4);
}

TEST(NormalQuantile, Symmetry) {
  for (double p : {0.01, 0.1, 0.25, 0.4}) {
    EXPECT_NEAR(normalQuantile(p), -normalQuantile(1.0 - p), 1e-8);
  }
}

TEST(NormalQuantile, RejectsBoundaries) {
  EXPECT_THROW(normalQuantile(0.0), Error);
  EXPECT_THROW(normalQuantile(1.0), Error);
}

TEST(Histogram, CountsLandInCorrectBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(9.9);
  EXPECT_EQ(h.totalCount(), 4u);
  EXPECT_EQ(h.binCount(0), 1u);
  EXPECT_EQ(h.binCount(1), 2u);
  EXPECT_EQ(h.binCount(9), 1u);
}

TEST(Histogram, ClampsOutOfRangeValues) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(7.0);
  EXPECT_EQ(h.binCount(0), 1u);
  EXPECT_EQ(h.binCount(3), 1u);
}

TEST(Histogram, BinBoundaries) {
  Histogram h(0.0, 100.0, 4);
  EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.binHigh(0), 25.0);
  EXPECT_DOUBLE_EQ(h.binLow(3), 75.0);
  EXPECT_DOUBLE_EQ(h.binHigh(3), 100.0);
}

TEST(Histogram, QuantileOfUniformData) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(4);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

TEST(Histogram, QuantileValidation) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW(h.quantile(0.5), Error);  // empty
  h.add(0.5);
  EXPECT_THROW(h.quantile(-0.1), Error);
  EXPECT_THROW(h.quantile(1.1), Error);
}

}  // namespace
}  // namespace nsmodel::support
