// Parameterized property sweeps over the analytic framework: for every
// combination of (rho, p, channel, real-K policy) the Eq. 4 recursion must
// satisfy conservation, monotonicity, and bound invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "analytic/ring_model.hpp"

namespace nsmodel::analytic {
namespace {

using Params = std::tuple<double /*rho*/, double /*p*/, ChannelKind,
                          RealKPolicy>;

class RingModelProperty : public ::testing::TestWithParam<Params> {
 protected:
  RingModelConfig config() const {
    const auto& [rho, p, channel, policy] = GetParam();
    RingModelConfig cfg;
    cfg.rings = 5;
    cfg.ringWidth = 1.0;
    cfg.neighborDensity = rho;
    cfg.slotsPerPhase = 3;
    cfg.broadcastProb = p;
    cfg.channel = channel;
    cfg.policy = policy;
    return cfg;
  }
};

TEST_P(RingModelProperty, PerPhaseQuantitiesAreSane) {
  const RingTrace trace = RingModel(config()).run();
  ASSERT_FALSE(trace.phases().empty());
  for (const PhaseStats& phase : trace.phases()) {
    EXPECT_GE(phase.newTotal, 0.0);
    EXPECT_GE(phase.broadcasts, 0.0);
    EXPECT_GE(phase.successRate, 0.0);
    EXPECT_LE(phase.successRate, 1.0 + 1e-9);
    double sum = 0.0;
    for (double ring : phase.newPerRing) {
      EXPECT_GE(ring, 0.0);
      sum += ring;
    }
    EXPECT_NEAR(sum, phase.newTotal, 1e-9);
  }
}

TEST_P(RingModelProperty, ConservationOfPopulation) {
  const RingModelConfig cfg = config();
  const RingTrace trace = RingModel(cfg).run();
  const double n = cfg.expectedNodes();
  double received = 1.0;  // the source
  for (const PhaseStats& phase : trace.phases()) {
    received += phase.newTotal;
  }
  EXPECT_LE(received, n + 1.0 + 1e-6);
  EXPECT_LE(trace.finalReachability(), 1.0);
  EXPECT_GE(trace.finalReachability(), 0.0);
}

TEST_P(RingModelProperty, ReachabilityIsNondecreasingInTime) {
  const RingTrace trace = RingModel(config()).run();
  double prev = 0.0;
  for (double t = 0.0; t <= 20.0; t += 0.5) {
    const double cur = trace.reachabilityAfter(t);
    EXPECT_GE(cur, prev - 1e-12) << "t=" << t;
    prev = cur;
  }
}

TEST_P(RingModelProperty, BroadcastAccountingIsConsistent) {
  const RingModelConfig cfg = config();
  const RingTrace trace = RingModel(cfg).run();
  const auto& phases = trace.phases();
  EXPECT_DOUBLE_EQ(phases[0].broadcasts, 1.0);  // only the source in T_1
  for (std::size_t i = 1; i < phases.size(); ++i) {
    EXPECT_NEAR(phases[i].broadcasts,
                cfg.broadcastProb * phases[i - 1].newTotal, 1e-9);
  }
  EXPECT_GE(trace.totalBroadcasts(),
            phases.back().cumulativeBroadcasts - 1e-9);
}

TEST_P(RingModelProperty, LatencyAndReachabilityAreInverse) {
  const RingTrace trace = RingModel(config()).run();
  const double half = trace.finalReachability() * 0.5;
  if (half <= 1.0 / trace.expectedNodes()) return;  // nothing to test
  const auto latency = trace.latencyForReachability(half);
  ASSERT_TRUE(latency.has_value());
  EXPECT_NEAR(trace.reachabilityAfter(*latency), half, 1e-6);
}

TEST_P(RingModelProperty, BudgetMonotonicity) {
  const RingTrace trace = RingModel(config()).run();
  double prev = -1.0;
  for (double budget : {0.0, 1.0, 3.0, 10.0, 30.0, 100.0, 1000.0}) {
    const double reach = trace.reachabilityForBudget(budget);
    EXPECT_GE(reach, prev - 1e-12) << "budget " << budget;
    EXPECT_LE(reach, trace.finalReachability() + 1e-12);
    prev = reach;
  }
}

std::string paramName(const ::testing::TestParamInfo<Params>& info) {
  const auto& [rho, p, channel, policy] = info.param;
  std::string name = "rho" + std::to_string(static_cast<int>(rho)) + "_p" +
                     std::to_string(static_cast<int>(p * 100));
  switch (channel) {
    case ChannelKind::CollisionFree:
      name += "_cfm";
      break;
    case ChannelKind::CollisionAware:
      name += "_cam";
      break;
    case ChannelKind::CarrierSenseAware:
      name += "_cs";
      break;
  }
  name += policy == RealKPolicy::Interpolate ? "_interp" : "_poisson";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RingModelProperty,
    ::testing::Combine(::testing::Values(20.0, 60.0, 140.0),
                       ::testing::Values(0.05, 0.3, 1.0),
                       ::testing::Values(ChannelKind::CollisionFree,
                                         ChannelKind::CollisionAware,
                                         ChannelKind::CarrierSenseAware),
                       ::testing::Values(RealKPolicy::Interpolate,
                                         RealKPolicy::Poisson)),
    paramName);

// Slot-count sweep: mu-level monotonicity must survive the full recursion.
class SlotSweep : public ::testing::TestWithParam<int> {};

TEST_P(SlotSweep, MoreSlotsNeverReduceOptimalReachability) {
  const int s = GetParam();
  auto bestReach = [](int slots) {
    double best = 0.0;
    for (double p : {0.05, 0.1, 0.2, 0.4, 0.8}) {
      RingModelConfig cfg;
      cfg.neighborDensity = 80.0;
      cfg.slotsPerPhase = slots;
      cfg.broadcastProb = p;
      best = std::max(best,
                      RingModel(cfg).run().reachabilityAfter(5.0));
    }
    return best;
  };
  EXPECT_LE(bestReach(s), bestReach(s + 1) + 0.02) << "s=" << s;
}

INSTANTIATE_TEST_SUITE_P(Slots, SlotSweep, ::testing::Values(1, 2, 3, 5));

}  // namespace
}  // namespace nsmodel::analytic
