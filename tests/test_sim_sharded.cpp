// Bit-identity of the sharded single-run engine against the flat loop.
//
// The ShardedEngine contract (sharded_engine.hpp) is that a run is
// bit-identical to runBroadcast with config.rngMode = RngMode::PerNode,
// for any shard count and any thread schedule.  The matrix here crosses
// every channel model with every fault family — crash/recovery
// schedules, Gilbert–Elliott link loss, drift spill-over interferers,
// energy cutoffs, the legacy node-failure knob, and the combined mix —
// at shard counts 1, 2, and 7 (odd, so stripe boundaries never align
// with anything) under both execution modes (the gate-synchronised
// thread gang and the cooperative lockstep multiplexer).  Also covered:
// per-node RNG keying of the flat loop itself (PerNode differs from
// RunStream but is deployment-faithful), caller-owned energy ledgers,
// engine reuse across runs, the NSMODEL_SHARDS policy resolution, and
// the Monte-Carlo wiring.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "net/energy.hpp"
#include "protocols/counter_based.hpp"
#include "protocols/flooding.hpp"
#include "protocols/probabilistic.hpp"
#include "sim/experiment.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/scenario_cache.hpp"
#include "sim/sharded_engine.hpp"
#include "support/error.hpp"

namespace {

using namespace nsmodel;

/// One cell of the equivalence matrix.
struct ShardCase {
  std::string name;
  net::ChannelModel channel = net::ChannelModel::CollisionAware;
  void (*mutate)(sim::ExperimentConfig&) = nullptr;
};

void noFaults(sim::ExperimentConfig&) {}

void crashFaults(sim::ExperimentConfig& cfg) {
  cfg.fault.faultSeed = 7;
  cfg.fault.crash.crashRate = 0.08;
  cfg.fault.crash.recoveryRate = 0.25;
}

void linkLoss(sim::ExperimentConfig& cfg) {
  cfg.fault.faultSeed = 11;
  cfg.fault.link.pGoodToBad = 0.25;
  cfg.fault.link.pBadToGood = 0.4;
  cfg.fault.link.lossBad = 0.7;
  cfg.fault.link.lossGood = 0.02;
}

void clockDrift(sim::ExperimentConfig& cfg) {
  cfg.fault.faultSeed = 13;
  cfg.fault.drift.maxSkewSlots = 0.4;
}

void energyCutoff(sim::ExperimentConfig& cfg) {
  cfg.fault.faultSeed = 17;
  cfg.fault.energyBudget = 3.0;
}

void legacyNodeFailure(sim::ExperimentConfig& cfg) {
  cfg.nodeFailureRate = 0.05;
}

void combinedFaults(sim::ExperimentConfig& cfg) {
  cfg.fault.faultSeed = 19;
  cfg.fault.crash.crashRate = 0.05;
  cfg.fault.crash.recoveryRate = 0.3;
  cfg.fault.link.pGoodToBad = 0.2;
  cfg.fault.link.pBadToGood = 0.5;
  cfg.fault.link.lossBad = 0.5;
  cfg.fault.drift.maxSkewSlots = 0.3;
  cfg.fault.energyBudget = 5.0;
}

std::vector<ShardCase> equivalenceMatrix() {
  const struct {
    const char* name;
    void (*mutate)(sim::ExperimentConfig&);
  } faults[] = {
      {"clean", noFaults},      {"crash", crashFaults},
      {"link", linkLoss},       {"drift", clockDrift},
      {"energy", energyCutoff}, {"legacy", legacyNodeFailure},
      {"combined", combinedFaults},
  };
  const struct {
    const char* name;
    net::ChannelModel channel;
  } channels[] = {
      {"cfm", net::ChannelModel::CollisionFree},
      {"cam", net::ChannelModel::CollisionAware},
      {"cs", net::ChannelModel::CarrierSenseAware},
      {"sinr", net::ChannelModel::Sinr},
  };
  std::vector<ShardCase> cases;
  for (const auto& ch : channels) {
    for (const auto& f : faults) {
      cases.push_back(
          {std::string(ch.name) + "_" + f.name, ch.channel, f.mutate});
    }
  }
  return cases;
}

sim::ExperimentConfig baseConfig(const ShardCase& c) {
  sim::ExperimentConfig cfg;
  cfg.rings = 4;
  cfg.neighborDensity = 30.0;
  cfg.maxPhases = 60;
  cfg.channel = c.channel;
  c.mutate(cfg);
  return cfg;
}

/// Restores the pre-test shard-count override on scope exit.
struct ShardGuard {
  ~ShardGuard() { sim::setShardCountOverride(-1); }
};

/// Restores the hardware/environment execution policy on scope exit.
struct ExecGuard {
  ~ExecGuard() { sim::setShardExecOverride(sim::ShardExec::Auto); }
};

constexpr sim::ShardExec kExecModes[] = {sim::ShardExec::Threads,
                                         sim::ShardExec::Coop};

const char* execName(sim::ShardExec exec) {
  return exec == sim::ShardExec::Threads ? "threads" : "coop";
}

void expectIdentical(const sim::RunResult& sharded, const sim::RunResult& flat,
                     const std::string& label) {
  EXPECT_EQ(sharded.nodeCount(), flat.nodeCount()) << label;
  EXPECT_EQ(sharded.receptionSlots(), flat.receptionSlots()) << label;
  EXPECT_EQ(sharded.transmissionSlots(), flat.transmissionSlots()) << label;
  EXPECT_EQ(sharded.receptionSlotByNode(), flat.receptionSlotByNode())
      << label;
  EXPECT_EQ(sharded.attemptedPairs(), flat.attemptedPairs()) << label;
  EXPECT_EQ(sharded.deliveredPairs(), flat.deliveredPairs()) << label;
  ASSERT_EQ(sharded.phases().size(), flat.phases().size()) << label;
  for (std::size_t i = 0; i < sharded.phases().size(); ++i) {
    EXPECT_EQ(sharded.phases()[i].transmissions,
              flat.phases()[i].transmissions)
        << label << " phase " << i;
    EXPECT_EQ(sharded.phases()[i].newReceivers, flat.phases()[i].newReceivers)
        << label << " phase " << i;
    EXPECT_EQ(sharded.phases()[i].deliveries, flat.phases()[i].deliveries)
        << label << " phase " << i;
    EXPECT_EQ(sharded.phases()[i].lostReceivers,
              flat.phases()[i].lostReceivers)
        << label << " phase " << i;
  }
}

/// Flat oracle: the sequential slot loop with per-node RNG keying — the
/// stream the sharded engine must reproduce exactly.
sim::RunResult flatPerNode(sim::ExperimentConfig cfg,
                           const sim::Scenario& scenario,
                           protocols::BroadcastProtocol& protocol,
                           net::EnergyLedger* ledger = nullptr) {
  cfg.rngMode = sim::RngMode::PerNode;
  support::Rng rng = scenario.protocolRng;
  return sim::runBroadcast(cfg, scenario.deployment, scenario.topology,
                           protocol, rng, ledger);
}

class ShardedEquivalence : public ::testing::TestWithParam<ShardCase> {};

TEST_P(ShardedEquivalence, MatchesFlatPerNodeAtEveryShardCount) {
  const ShardCase& c = GetParam();
  const sim::ExperimentConfig cfg = baseConfig(c);
  const sim::Scenario scenario =
      sim::buildScenario(sim::ScenarioKey::forExperiment(cfg, 42, 0));
  protocols::ProbabilisticBroadcast protocol(0.6);
  const sim::RunResult flat = flatPerNode(cfg, scenario, protocol);
  ExecGuard guard;
  for (const sim::ShardExec exec : kExecModes) {
    sim::setShardExecOverride(exec);
    for (const int shards : {1, 2, 7}) {
      support::Rng rng = scenario.protocolRng;
      const sim::RunResult sharded = sim::runBroadcastSharded(
          cfg, scenario.deployment, scenario.topology, protocol, rng, shards);
      expectIdentical(sharded, flat,
                      c.name + " shards " + std::to_string(shards) + " " +
                          execName(exec));
    }
  }
}

// Counter-based cancellation exercises the duplicate path (pending bit
// live, keepPendingAfterDuplicate consulted); its per-node counters are
// only ever touched from the node's owner shard, so it sits inside the
// sharded contract despite carrying per-run state.
TEST_P(ShardedEquivalence, CounterBasedProtocolMatchesToo) {
  const ShardCase& c = GetParam();
  const sim::ExperimentConfig cfg = baseConfig(c);
  const sim::Scenario scenario =
      sim::buildScenario(sim::ScenarioKey::forExperiment(cfg, 42, 0));
  protocols::CounterBasedBroadcast protocol(3);
  const sim::RunResult flat = flatPerNode(cfg, scenario, protocol);
  ExecGuard guard;
  for (const sim::ShardExec exec : kExecModes) {
    sim::setShardExecOverride(exec);
    for (const int shards : {1, 2, 7}) {
      support::Rng rng = scenario.protocolRng;
      const sim::RunResult sharded = sim::runBroadcastSharded(
          cfg, scenario.deployment, scenario.topology, protocol, rng, shards);
      expectIdentical(sharded, flat,
                      c.name + " shards " + std::to_string(shards) + " " +
                          execName(exec));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ShardedEquivalence, ::testing::ValuesIn(equivalenceMatrix()),
    [](const ::testing::TestParamInfo<ShardCase>& param) {
      return param.param.name;
    });

// Caller-owned ledgers absorb the per-shard counts; every per-node and
// total figure must match the flat per-node run's accounting.
TEST(ShardedEnergy, CallerLedgerMatchesFlat) {
  ShardCase c{"cam_clean", net::ChannelModel::CollisionAware, noFaults};
  const sim::ExperimentConfig cfg = baseConfig(c);
  const sim::Scenario scenario =
      sim::buildScenario(sim::ScenarioKey::forExperiment(cfg, 42, 0));
  protocols::ProbabilisticBroadcast protocol(0.6);

  net::EnergyLedger flatLedger(scenario.deployment.nodeCount(), cfg.costs);
  const sim::RunResult flat =
      flatPerNode(cfg, scenario, protocol, &flatLedger);

  net::EnergyLedger shardLedger(scenario.deployment.nodeCount(), cfg.costs);
  support::Rng rng = scenario.protocolRng;
  const sim::RunResult sharded =
      sim::runBroadcastSharded(cfg, scenario.deployment, scenario.topology,
                               protocol, rng, 3, &shardLedger);
  expectIdentical(sharded, flat, "energy ledger run");
  EXPECT_EQ(shardLedger.txCount(), flatLedger.txCount());
  EXPECT_EQ(shardLedger.rxCount(), flatLedger.rxCount());
  for (net::NodeId node = 0; node < scenario.deployment.nodeCount(); ++node) {
    EXPECT_EQ(shardLedger.txCount(node), flatLedger.txCount(node))
        << "node " << node;
    EXPECT_EQ(shardLedger.rxCount(node), flatLedger.rxCount(node))
        << "node " << node;
  }
}

// A ShardedEngine instance is reusable: the second run on the same
// engine must match the first (all run state is per-run, the engine
// holds only the partition and the restricted CSRs).
TEST(ShardedEngineReuse, SecondRunMatchesFirst) {
  ShardCase c{"cs_drift", net::ChannelModel::CarrierSenseAware, clockDrift};
  const sim::ExperimentConfig cfg = baseConfig(c);
  const sim::Scenario scenario =
      sim::buildScenario(sim::ScenarioKey::forExperiment(cfg, 42, 0));
  protocols::ProbabilisticBroadcast protocol(0.6);
  sim::ShardedEngine engine(scenario.deployment, scenario.topology, 4);
  EXPECT_EQ(engine.shards(), 4);
  support::Rng rng1 = scenario.protocolRng;
  const sim::RunResult first = engine.run(cfg, protocol, rng1);
  support::Rng rng2 = scenario.protocolRng;
  const sim::RunResult second = engine.run(cfg, protocol, rng2);
  expectIdentical(second, first, "engine reuse");
}

// Shard counts beyond the node count clamp instead of starving shards.
TEST(ShardedEngineReuse, ShardCountClampsToNodeCount) {
  ShardCase c{"cam_clean", net::ChannelModel::CollisionAware, noFaults};
  sim::ExperimentConfig cfg = baseConfig(c);
  cfg.rings = 2;
  cfg.neighborDensity = 10.0;
  const sim::Scenario scenario =
      sim::buildScenario(sim::ScenarioKey::forExperiment(cfg, 42, 0));
  protocols::SimpleFlooding protocol;
  const std::size_t n = scenario.deployment.nodeCount();
  sim::ShardedEngine engine(scenario.deployment, scenario.topology,
                            static_cast<int>(n) + 100);
  EXPECT_EQ(static_cast<std::size_t>(engine.shards()), n);
  const sim::RunResult flat = flatPerNode(cfg, scenario, protocol);
  support::Rng rng = scenario.protocolRng;
  expectIdentical(engine.run(cfg, protocol, rng), flat, "clamped shards");
}

// NSMODEL_SHARDS policy resolution: unset/off -> 1, auto -> pool width,
// explicit N -> N; the override wins over everything; DesEngine configs
// never shard.
TEST(ShardPolicy, EnvironmentAndOverrideResolution) {
  ShardGuard guard;
  const char* saved = std::getenv("NSMODEL_SHARDS");
  const std::string savedCopy = saved ? saved : "";

  unsetenv("NSMODEL_SHARDS");
  EXPECT_EQ(sim::shardCount(), 1);  // unset means off
  setenv("NSMODEL_SHARDS", "off", 1);
  EXPECT_EQ(sim::shardCount(), 1);
  setenv("NSMODEL_SHARDS", "5", 1);
  EXPECT_EQ(sim::shardCount(), 5);
  setenv("NSMODEL_SHARDS", "auto", 1);
  EXPECT_GE(sim::shardCount(), 1);
  setenv("NSMODEL_SHARDS", "0", 1);
  EXPECT_THROW(sim::shardCount(), ConfigError);
  setenv("NSMODEL_SHARDS", "7x", 1);
  EXPECT_THROW(sim::shardCount(), ConfigError);

  setenv("NSMODEL_SHARDS", "3", 1);
  sim::setShardCountOverride(6);
  EXPECT_EQ(sim::shardCount(), 6);
  sim::ExperimentConfig cfg;
  EXPECT_EQ(sim::shardCountFor(cfg), 6);
  cfg.driver = sim::SlotDriver::DesEngine;
  EXPECT_EQ(sim::shardCountFor(cfg), 1);
  sim::setShardCountOverride(0);
  EXPECT_EQ(sim::shardCount(), 1);
  sim::setShardCountOverride(-1);
  EXPECT_EQ(sim::shardCount(), 3);  // back to the environment

  if (saved) {
    setenv("NSMODEL_SHARDS", savedCopy.c_str(), 1);
  } else {
    unsetenv("NSMODEL_SHARDS");
  }
}

// The Monte-Carlo wiring hands single-run workloads to the sharded
// engine when replication-level parallelism is idle; the results must
// equal direct sharded runs (which are in turn flat-PerNode-identical).
TEST(ShardedMonteCarlo, RunReplicationsUsesShardedEngine) {
  ShardGuard guard;
  sim::setShardCountOverride(3);

  sim::MonteCarloConfig mc;
  mc.experiment.rings = 3;
  mc.experiment.neighborDensity = 25.0;
  mc.experiment.maxPhases = 40;
  mc.replications = 2;
  mc.parallel = false;  // replication parallelism idle -> shards engage
  const auto factory = [] {
    return std::make_unique<protocols::ProbabilisticBroadcast>(0.6);
  };

  const auto results = sim::runReplications(mc, factory);
  ASSERT_EQ(results.size(), 2u);
  for (std::size_t rep = 0; rep < results.size(); ++rep) {
    const sim::Scenario scenario = sim::buildScenario(
        sim::ScenarioKey::forExperiment(mc.experiment, mc.seed, rep));
    sim::ExperimentConfig cfg = mc.experiment;
    cfg.rngMode = sim::RngMode::PerNode;
    protocols::ProbabilisticBroadcast protocol(0.6);
    support::Rng rng = scenario.protocolRng;
    const sim::RunResult flat =
        sim::runBroadcast(cfg, scenario.deployment, scenario.topology,
                          protocol, rng, nullptr);
    expectIdentical(results[rep], flat, "rep " + std::to_string(rep));
  }
}

// With the policy off (the default), the wiring is untouched: results
// are bit-identical to the historical RunStream path.
TEST(ShardedMonteCarlo, OffRestoresDefaultBehaviour) {
  ShardGuard guard;
  sim::setShardCountOverride(0);  // force off regardless of environment

  sim::MonteCarloConfig mc;
  mc.experiment.rings = 3;
  mc.experiment.neighborDensity = 25.0;
  mc.experiment.maxPhases = 40;
  mc.replications = 2;
  mc.parallel = false;
  const auto factory = [] {
    return std::make_unique<protocols::ProbabilisticBroadcast>(0.6);
  };

  const auto results = sim::runReplications(mc, factory);
  ASSERT_EQ(results.size(), 2u);
  for (std::size_t rep = 0; rep < results.size(); ++rep) {
    const sim::Scenario scenario = sim::buildScenario(
        sim::ScenarioKey::forExperiment(mc.experiment, mc.seed, rep));
    protocols::ProbabilisticBroadcast protocol(0.6);
    support::Rng rng = scenario.protocolRng;
    const sim::RunResult flat =
        sim::runBroadcast(mc.experiment, scenario.deployment,
                          scenario.topology, protocol, rng, nullptr);
    expectIdentical(results[rep], flat, "rep " + std::to_string(rep));
  }
}

}  // namespace
