#include "validate/golden.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

#include "analytic/mu.hpp"
#include "support/error.hpp"
#include "validate/report.hpp"

namespace nsmodel::validate {
namespace {

GoldenTable sampleTable() {
  GoldenTable table;
  table.name = "sample";
  table.inputColumns = {"k", "s"};
  table.valueColumns = {"v"};
  // Values chosen to stress the 17-significant-digit round-trip: a
  // non-terminating binary fraction, a tiny subnormal, a huge magnitude,
  // a negative, and the harness's kUndefined sentinel.
  table.rows = {
      {{2.0, 3.0}, {0.1}},
      {{5.0, 3.0}, {1.0 / 3.0}},
      {{7.0, 8.0}, {4.9406564584124654e-324}},
      {{9.0, 2.0}, {-1.7976931348623157e308}},
      {{11.0, 2.0}, {-1.0}},
  };
  return table;
}

class GoldenFileTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "nsmodel_golden_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(GoldenFileTest, RoundTripIsBitExact) {
  const GoldenTable table = sampleTable();
  writeGoldenTable(table, path_);
  const GoldenTable loaded = loadGoldenTable(path_);
  EXPECT_EQ(loaded.name, table.name);
  EXPECT_EQ(loaded.inputColumns, table.inputColumns);
  EXPECT_EQ(loaded.valueColumns, table.valueColumns);
  ASSERT_EQ(loaded.rows.size(), table.rows.size());
  for (std::size_t i = 0; i < table.rows.size(); ++i) {
    ASSERT_EQ(loaded.rows[i].inputs, table.rows[i].inputs) << "row " << i;
    ASSERT_EQ(loaded.rows[i].values.size(), table.rows[i].values.size());
    for (std::size_t j = 0; j < table.rows[i].values.size(); ++j) {
      EXPECT_EQ(ulpDistance(loaded.rows[i].values[j], table.rows[i].values[j]),
                0)
          << "row " << i << " value " << j;
    }
  }
}

TEST_F(GoldenFileTest, LoadRejectsMalformedFiles) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    std::fputs("not a golden file\n1,2,3\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(loadGoldenTable(path_), nsmodel::Error);
  EXPECT_THROW(loadGoldenTable(path_ + ".does-not-exist"), nsmodel::Error);
}

TEST(GoldenFileName, IsStable) {
  EXPECT_EQ(goldenFileName("mu"), "golden_mu.csv");
  EXPECT_EQ(goldenFileName("ring"), "golden_ring.csv");
}

TEST(CheckGoldenTable, IdenticalTablesPass) {
  const GoldenTable table = sampleTable();
  Report report;
  checkGoldenTable(table, table, 0, report);
  EXPECT_GT(report.total(), 0u);
  EXPECT_TRUE(report.allPassed());
}

TEST(CheckGoldenTable, PerturbedValueFails) {
  const GoldenTable golden = sampleTable();
  GoldenTable computed = golden;
  computed.rows[1].values[0] =
      std::nextafter(computed.rows[1].values[0], 1.0);
  Report strict;
  checkGoldenTable(golden, computed, 0, strict);
  EXPECT_EQ(strict.failures(), 1u);
  // A one-ULP budget absorbs exactly this perturbation.
  Report loose;
  checkGoldenTable(golden, computed, 1, loose);
  EXPECT_TRUE(loose.allPassed());
}

TEST(CheckGoldenTable, GridMismatchIsAFailedCheckNotAnException) {
  const GoldenTable golden = sampleTable();

  GoldenTable fewerRows = golden;
  fewerRows.rows.pop_back();
  Report rowReport;
  checkGoldenTable(golden, fewerRows, 0, rowReport);
  EXPECT_GT(rowReport.failures(), 0u);

  GoldenTable shiftedInputs = golden;
  shiftedInputs.rows[0].inputs[0] += 1.0;
  Report inputReport;
  checkGoldenTable(golden, shiftedInputs, 0, inputReport);
  EXPECT_GT(inputReport.failures(), 0u);
}

TEST(GoldenGenerators, ProduceConsistentTables) {
  for (const GoldenTable& table : computeAllGoldenTables()) {
    EXPECT_FALSE(table.name.empty());
    EXPECT_FALSE(table.rows.empty()) << table.name;
    for (const GoldenRow& row : table.rows) {
      EXPECT_EQ(row.inputs.size(), table.inputColumns.size()) << table.name;
      EXPECT_EQ(row.values.size(), table.valueColumns.size()) << table.name;
      for (double v : row.values) {
        EXPECT_TRUE(std::isfinite(v)) << table.name;
      }
    }
  }
}

TEST(GoldenGenerators, MuTableMatchesLiveImplementation) {
  const GoldenTable table = computeGoldenMu();
  ASSERT_EQ(table.inputColumns.size(), 2u);
  for (const GoldenRow& row : table.rows) {
    const auto k = static_cast<std::int64_t>(row.inputs[0]);
    const auto s = static_cast<int>(row.inputs[1]);
    EXPECT_EQ(ulpDistance(row.values[0], analytic::mu(k, s)), 0)
        << "K=" << k << " s=" << s;
  }
}

}  // namespace
}  // namespace nsmodel::validate
