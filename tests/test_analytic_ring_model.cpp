#include "analytic/ring_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"

namespace nsmodel::analytic {
namespace {

RingModelConfig paperConfig(double rho, double p) {
  RingModelConfig cfg;
  cfg.rings = 5;
  cfg.ringWidth = 1.0;
  cfg.neighborDensity = rho;
  cfg.slotsPerPhase = 3;
  cfg.broadcastProb = p;
  return cfg;
}

TEST(RingModelConfig, DerivedQuantities) {
  const RingModelConfig cfg = paperConfig(60.0, 0.1);
  // delta = rho / (pi r^2); N = delta * pi (P r)^2 = rho P^2.
  EXPECT_NEAR(cfg.nodeDensity(), 60.0 / M_PI, 1e-12);
  EXPECT_NEAR(cfg.expectedNodes(), 60.0 * 25.0, 1e-9);
}

TEST(RingModel, ValidatesConfiguration) {
  EXPECT_THROW(RingModel(paperConfig(60.0, 1.5)), nsmodel::Error);
  EXPECT_THROW(RingModel(paperConfig(60.0, -0.1)), nsmodel::Error);
  EXPECT_THROW(RingModel(paperConfig(-5.0, 0.5)), nsmodel::Error);
  RingModelConfig bad = paperConfig(60.0, 0.5);
  bad.rings = 0;
  EXPECT_THROW(RingModel{bad}, nsmodel::Error);
  bad = paperConfig(60.0, 0.5);
  bad.slotsPerPhase = 0;
  EXPECT_THROW(RingModel{bad}, nsmodel::Error);
  bad = paperConfig(60.0, 0.5);
  bad.quadratureOrder = 1;
  EXPECT_THROW(RingModel{bad}, nsmodel::Error);
}

TEST(RingModel, PhaseOneFillsRingOneExactly) {
  const RingTrace trace = RingModel(paperConfig(60.0, 0.3)).run();
  ASSERT_FALSE(trace.phases().empty());
  const PhaseStats& first = trace.phases().front();
  // All of ring R_1 (expected rho nodes) receives from the lone source tx.
  EXPECT_NEAR(first.newTotal, 60.0, 1e-9);
  EXPECT_DOUBLE_EQ(first.broadcasts, 1.0);
  EXPECT_DOUBLE_EQ(first.successRate, 1.0);
  for (int k = 2; k <= 5; ++k) {
    EXPECT_DOUBLE_EQ(first.newPerRing[k - 1], 0.0);
  }
}

TEST(RingModel, ZeroProbabilityStopsAfterPhaseOne) {
  const RingTrace trace = RingModel(paperConfig(60.0, 0.0)).run();
  EXPECT_EQ(trace.phases().size(), 1u);
  // Only ring 1 + the source: (rho + 1) / (rho P^2).
  EXPECT_NEAR(trace.finalReachability(), 61.0 / 1500.0, 1e-9);
  EXPECT_DOUBLE_EQ(trace.totalBroadcasts(), 1.0);
}

TEST(RingModel, ReceiversNeverExceedPopulation) {
  for (double rho : {20.0, 60.0, 140.0}) {
    for (double p : {0.05, 0.3, 1.0}) {
      const RingTrace trace = RingModel(paperConfig(rho, p)).run();
      double perRing[5] = {0, 0, 0, 0, 0};
      for (const PhaseStats& phase : trace.phases()) {
        for (int k = 0; k < 5; ++k) perRing[k] += phase.newPerRing[k];
      }
      const double delta = rho / M_PI;
      for (int k = 0; k < 5; ++k) {
        const double ringNodes = delta * M_PI * (2.0 * (k + 1) - 1.0);
        EXPECT_LE(perRing[k], ringNodes + 1e-6)
            << "rho=" << rho << " p=" << p << " ring=" << (k + 1);
        EXPECT_GE(perRing[k], -1e-9);
      }
      EXPECT_LE(trace.finalReachability(), 1.0);
    }
  }
}

TEST(RingModel, CumulativeCountsAreConsistent) {
  const RingTrace trace = RingModel(paperConfig(60.0, 0.2)).run();
  double reached = 1.0;
  double broadcasts = 0.0;
  for (const PhaseStats& phase : trace.phases()) {
    reached += phase.newTotal;
    broadcasts += phase.broadcasts;
    EXPECT_NEAR(phase.cumulativeReached, reached, 1e-9);
    EXPECT_NEAR(phase.cumulativeBroadcasts, broadcasts, 1e-9);
  }
}

TEST(RingModel, BroadcastsFollowReceiversWithLag) {
  const RingTrace trace = RingModel(paperConfig(60.0, 0.4)).run();
  const auto& phases = trace.phases();
  for (std::size_t i = 1; i < phases.size(); ++i) {
    EXPECT_NEAR(phases[i].broadcasts, 0.4 * phases[i - 1].newTotal, 1e-9);
  }
}

TEST(RingModel, InformationCannotSkipRings) {
  // New receivers in ring k during phase i require receivers within range
  // (rings k-1..k+1) in phase i-1; in particular ring k stays empty until
  // phase k at the earliest.
  const RingTrace trace = RingModel(paperConfig(60.0, 0.5)).run();
  const auto& phases = trace.phases();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    for (int ring = static_cast<int>(i) + 2; ring <= 5; ++ring) {
      EXPECT_DOUBLE_EQ(phases[i].newPerRing[ring - 1], 0.0)
          << "phase " << (i + 1) << " ring " << ring;
    }
  }
}

TEST(RingModel, CollisionFreeFloodingReachesEveryone) {
  RingModelConfig cfg = paperConfig(60.0, 1.0);
  cfg.channel = ChannelKind::CollisionFree;
  const RingTrace trace = RingModel(cfg).run();
  EXPECT_NEAR(trace.finalReachability(), 1.0, 1e-6);
  // The frontier advances roughly one ring per phase; outer-edge nodes of
  // each ring have only a sliver of the previous frontier in range, so the
  // tail extends a little past P phases.
  const auto latency = trace.latencyForReachability(0.99);
  ASSERT_TRUE(latency.has_value());
  EXPECT_GE(*latency, 4.0);
  EXPECT_LE(*latency, 9.0);
}

TEST(RingModel, CollisionFreeBeatsCollisionAware) {
  for (double p : {0.3, 1.0}) {
    RingModelConfig cam = paperConfig(100.0, p);
    RingModelConfig cfm = cam;
    cfm.channel = ChannelKind::CollisionFree;
    const double reachCam = RingModel(cam).run().reachabilityAfter(5.0);
    const double reachCfm = RingModel(cfm).run().reachabilityAfter(5.0);
    EXPECT_GT(reachCfm, reachCam) << "p=" << p;
  }
}

TEST(RingModel, CarrierSenseIsMorePessimisticThanCam) {
  // Extra interference range can only destroy receptions.
  for (double rho : {40.0, 100.0}) {
    RingModelConfig cam = paperConfig(rho, 0.3);
    RingModelConfig cs = cam;
    cs.channel = ChannelKind::CarrierSenseAware;
    const double reachCam = RingModel(cam).run().reachabilityAfter(5.0);
    const double reachCs = RingModel(cs).run().reachabilityAfter(5.0);
    EXPECT_LE(reachCs, reachCam + 1e-9) << "rho=" << rho;
  }
}

TEST(RingModel, PoissonPolicyGivesSimilarShape) {
  // The two real-K policies must agree on the qualitative picture.
  RingModelConfig interp = paperConfig(100.0, 0.1);
  RingModelConfig poisson = interp;
  poisson.policy = RealKPolicy::Poisson;
  const double a = RingModel(interp).run().reachabilityAfter(5.0);
  const double b = RingModel(poisson).run().reachabilityAfter(5.0);
  EXPECT_NEAR(a, b, 0.15);
}

TEST(RingTrace, ReachabilityAfterIsMonotone) {
  const RingTrace trace = RingModel(paperConfig(80.0, 0.2)).run();
  double prev = 0.0;
  for (double t = 0.0; t <= 12.0; t += 0.25) {
    const double cur = trace.reachabilityAfter(t);
    EXPECT_GE(cur, prev - 1e-12) << "t=" << t;
    prev = cur;
  }
  EXPECT_NEAR(prev, trace.finalReachability(), 1e-9);
}

TEST(RingTrace, ReachabilityInterpolatesWithinPhase) {
  const RingTrace trace = RingModel(paperConfig(60.0, 0.5)).run();
  const double atOne = trace.reachabilityAfter(1.0);
  const double atTwo = trace.reachabilityAfter(2.0);
  const double mid = trace.reachabilityAfter(1.5);
  EXPECT_NEAR(mid, 0.5 * (atOne + atTwo), 1e-9);
}

TEST(RingTrace, LatencyIsInverseOfReachability) {
  const RingTrace trace = RingModel(paperConfig(60.0, 0.3)).run();
  for (double target : {0.1, 0.3, 0.5}) {
    const auto latency = trace.latencyForReachability(target);
    ASSERT_TRUE(latency.has_value()) << "target " << target;
    EXPECT_NEAR(trace.reachabilityAfter(*latency), target, 1e-6);
  }
}

TEST(RingTrace, UnreachableTargetGivesNullopt) {
  // p = 0.01 at rho = 20: almost nobody rebroadcasts.
  const RingTrace trace = RingModel(paperConfig(20.0, 0.01)).run();
  EXPECT_FALSE(trace.latencyForReachability(0.9).has_value());
  EXPECT_FALSE(trace.broadcastsForReachability(0.9).has_value());
}

TEST(RingTrace, BroadcastsUpToIsMonotone) {
  const RingTrace trace = RingModel(paperConfig(60.0, 0.5)).run();
  double prev = 0.0;
  for (double t = 0.0; t <= 10.0; t += 0.5) {
    const double cur = trace.broadcastsUpTo(t);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
  EXPECT_LE(prev, trace.totalBroadcasts() + 1e-9);
}

TEST(RingTrace, TotalBroadcastsMatchesExpectation) {
  // M = 1 + p * (total receivers) when the process dies out naturally.
  const RingModelConfig cfg = paperConfig(60.0, 0.15);
  const RingTrace trace = RingModel(cfg).run();
  double receivers = 0.0;
  for (const PhaseStats& phase : trace.phases()) {
    receivers += phase.newTotal;
  }
  EXPECT_NEAR(trace.totalBroadcasts(), 1.0 + 0.15 * receivers, 1e-6);
}

TEST(RingTrace, BudgetReachabilityBounds) {
  const RingTrace trace = RingModel(paperConfig(100.0, 0.1)).run();
  // Unlimited budget = final reachability.
  EXPECT_DOUBLE_EQ(trace.reachabilityForBudget(1e9),
                   trace.finalReachability());
  // Budget below one broadcast: essentially only the source.
  EXPECT_LT(trace.reachabilityForBudget(0.0), 0.05);
  // Monotone in the budget.
  double prev = 0.0;
  for (double budget : {1.0, 5.0, 20.0, 50.0, 200.0}) {
    const double cur = trace.reachabilityForBudget(budget);
    EXPECT_GE(cur, prev - 1e-12) << "budget " << budget;
    prev = cur;
  }
}

TEST(RingTrace, SuccessRateDropsWithDensityForFlooding) {
  const double sparse =
      RingModel(paperConfig(20.0, 1.0)).run().averageSuccessRate();
  const double dense =
      RingModel(paperConfig(140.0, 1.0)).run().averageSuccessRate();
  EXPECT_GT(sparse, dense);
  EXPECT_GT(dense, 0.0);
  EXPECT_LE(sparse, 1.0);
}

TEST(RingTrace, ValidationOfQueryArguments) {
  const RingTrace trace = RingModel(paperConfig(60.0, 0.3)).run();
  EXPECT_THROW(trace.reachabilityAfter(-1.0), nsmodel::Error);
  EXPECT_THROW(trace.latencyForReachability(0.0), nsmodel::Error);
  EXPECT_THROW(trace.latencyForReachability(1.1), nsmodel::Error);
  EXPECT_THROW(trace.reachabilityForBudget(-5.0), nsmodel::Error);
  EXPECT_THROW(trace.broadcastsUpTo(-0.5), nsmodel::Error);
}

// The paper's headline analytic results, as shape assertions.
TEST(RingModel, PaperShapeOptimalProbabilityDecreasesWithDensity) {
  auto bestP = [](double rho) {
    double best = 0.0, bestReach = -1.0;
    for (int i = 1; i <= 100; ++i) {
      const double p = i * 0.01;
      const double reach =
          RingModel(paperConfig(rho, p)).run().reachabilityAfter(5.0);
      if (reach > bestReach) {
        bestReach = reach;
        best = p;
      }
    }
    return best;
  };
  const double p20 = bestP(20.0);
  const double p80 = bestP(80.0);
  const double p140 = bestP(140.0);
  EXPECT_GT(p20, p80);
  EXPECT_GT(p80, p140);
  EXPECT_LT(p140, 0.15);  // paper: flat and small at high density
}

TEST(RingModel, PaperShapeReachabilityBellCurveInP) {
  // For fixed rho = 100, reachability within 5 phases rises then falls.
  const double low =
      RingModel(paperConfig(100.0, 0.02)).run().reachabilityAfter(5.0);
  const double mid =
      RingModel(paperConfig(100.0, 0.13)).run().reachabilityAfter(5.0);
  const double high =
      RingModel(paperConfig(100.0, 1.0)).run().reachabilityAfter(5.0);
  EXPECT_GT(mid, low);
  EXPECT_GT(mid, high);
}

TEST(RingModel, UnitDensityFactorsMatchUniformModel) {
  RingModelConfig uniform = paperConfig(60.0, 0.2);
  RingModelConfig factored = uniform;
  factored.ringDensityFactor = {1.0, 1.0, 1.0, 1.0, 1.0};
  const RingTrace a = RingModel(uniform).run();
  const RingTrace b = RingModel(factored).run();
  ASSERT_EQ(a.phases().size(), b.phases().size());
  for (std::size_t i = 0; i < a.phases().size(); ++i) {
    EXPECT_NEAR(a.phases()[i].newTotal, b.phases()[i].newTotal, 1e-9);
  }
  EXPECT_NEAR(a.expectedNodes(), b.expectedNodes(), 1e-9);
}

TEST(RingModel, DensityFactorsScalePopulations) {
  RingModelConfig cfg = paperConfig(60.0, 0.2);
  cfg.ringDensityFactor = {2.0, 1.0, 1.0, 0.5, 0.5};
  const RingTrace trace = RingModel(cfg).run();
  // Expected nodes: 60 * (2*1 + 1*3 + 1*5 + 0.5*7 + 0.5*9).
  EXPECT_NEAR(trace.expectedNodes(), 60.0 * 18.0, 1e-6);
  // Phase 1 fills the doubled ring 1: 2 * rho receivers.
  EXPECT_NEAR(trace.phases()[0].newTotal, 120.0, 1e-9);
  EXPECT_LE(trace.finalReachability(), 1.0);
}

TEST(RingModel, SparseOuterRingsLowerReachability) {
  RingModelConfig uniform = paperConfig(60.0, 0.2);
  RingModelConfig sparseEdge = uniform;
  // Same mass near the centre, far fewer relays at the fringe: the wave
  // stalls and leaves a larger unreached fraction.
  sparseEdge.ringDensityFactor = {1.0, 1.0, 0.2, 0.1, 0.1};
  const double u = RingModel(uniform).run().finalReachability();
  const double s = RingModel(sparseEdge).run().finalReachability();
  EXPECT_LT(s, u);
}

TEST(RingModel, DensityFactorValidation) {
  RingModelConfig bad = paperConfig(60.0, 0.2);
  bad.ringDensityFactor = {1.0, 1.0};  // wrong length
  EXPECT_THROW(RingModel{bad}, nsmodel::Error);
  bad = paperConfig(60.0, 0.2);
  bad.ringDensityFactor = {1.0, 1.0, -0.5, 1.0, 1.0};
  EXPECT_THROW(RingModel{bad}, nsmodel::Error);
}

TEST(RingModel, PaperShapeFloodingDegradesWithDensity) {
  const double sparse =
      RingModel(paperConfig(20.0, 1.0)).run().reachabilityAfter(5.0);
  const double dense =
      RingModel(paperConfig(140.0, 1.0)).run().reachabilityAfter(5.0);
  EXPECT_GT(sparse, dense + 0.2);
}

}  // namespace
}  // namespace nsmodel::analytic
