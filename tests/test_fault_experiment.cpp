// Integration tests of fault injection through the simulation backends:
// zero-fault identity, thread-count and cache invariance, energy budgets,
// blackout semantics, and the legacy-knob interaction rules.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "net/energy.hpp"
#include "protocols/flooding.hpp"
#include "protocols/probabilistic.hpp"
#include "sim/async_experiment.hpp"
#include "sim/experiment.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/reliable.hpp"
#include "sim/scenario_cache.hpp"
#include "support/error.hpp"

namespace {

using namespace nsmodel;

sim::ExperimentConfig smallConfig() {
  sim::ExperimentConfig cfg;
  cfg.rings = 4;
  cfg.neighborDensity = 25.0;
  cfg.maxPhases = 60;
  return cfg;
}

protocols::ProtocolFactory flooding() {
  return [] { return std::make_unique<protocols::SimpleFlooding>(); };
}

/// Full observable state of a slotted run, for exact comparisons.
bool identical(const sim::RunResult& a, const sim::RunResult& b) {
  if (a.reachedCount() != b.reachedCount()) return false;
  if (a.totalBroadcasts() != b.totalBroadcasts()) return false;
  if (a.attemptedPairs() != b.attemptedPairs()) return false;
  if (a.deliveredPairs() != b.deliveredPairs()) return false;
  if (a.phases().size() != b.phases().size()) return false;
  for (std::size_t i = 0; i < a.phases().size(); ++i) {
    if (a.phases()[i].transmissions != b.phases()[i].transmissions ||
        a.phases()[i].newReceivers != b.phases()[i].newReceivers ||
        a.phases()[i].deliveries != b.phases()[i].deliveries ||
        a.phases()[i].lostReceivers != b.phases()[i].lostReceivers) {
      return false;
    }
  }
  return a.receptionSlotByNode() == b.receptionSlotByNode();
}

TEST(FaultExperiment, ZeroFaultConfigIsBitIdentical) {
  const sim::ExperimentConfig plain = smallConfig();
  sim::ExperimentConfig zero = smallConfig();
  zero.fault.faultSeed = 123;  // configured but inert

  for (std::uint64_t stream = 0; stream < 4; ++stream) {
    const sim::RunResult a = sim::runExperiment(plain, flooding(), 42, stream);
    const sim::RunResult b = sim::runExperiment(zero, flooding(), 42, stream);
    EXPECT_TRUE(identical(a, b)) << "stream " << stream;
  }
}

TEST(FaultExperiment, FaultedRunsAreReproducible) {
  sim::ExperimentConfig cfg = smallConfig();
  cfg.fault.faultSeed = 5;
  cfg.fault.crash.crashRate = 0.1;
  cfg.fault.crash.recoveryRate = 0.2;
  cfg.fault.link.pGoodToBad = 0.2;
  cfg.fault.link.pBadToGood = 0.3;
  cfg.fault.link.lossBad = 0.6;
  cfg.fault.drift.maxSkewSlots = 0.3;

  const sim::RunResult a = sim::runExperiment(cfg, flooding(), 42, 1);
  const sim::RunResult b = sim::runExperiment(cfg, flooding(), 42, 1);
  EXPECT_TRUE(identical(a, b));

  // A different fault seed over the same deployment changes the outcome.
  sim::ExperimentConfig reseeded = cfg;
  reseeded.fault.faultSeed = 6;
  bool anyDiffers = false;
  for (std::uint64_t stream = 0; stream < 4 && !anyDiffers; ++stream) {
    anyDiffers = !identical(sim::runExperiment(cfg, flooding(), 42, stream),
                            sim::runExperiment(reseeded, flooding(), 42,
                                               stream));
  }
  EXPECT_TRUE(anyDiffers);
}

// The Monte-Carlo aggregate of faulted runs must not depend on how the
// replications are scheduled: parallel and serial evaluation see the same
// per-replication fault plans because plan entropy is derived from each
// replication's own RNG state, not from execution order.
TEST(FaultExperiment, AggregatesIndependentOfThreadCount) {
  sim::MonteCarloConfig mc;
  mc.experiment = smallConfig();
  mc.experiment.fault.faultSeed = 9;
  mc.experiment.fault.crash.crashRate = 0.08;
  mc.experiment.fault.link.pGoodToBad = 0.3;
  mc.experiment.fault.link.pBadToGood = 0.3;
  mc.experiment.fault.link.lossBad = 0.5;
  mc.replications = 12;

  const auto extract = [](const sim::RunResult& r) {
    return std::vector<double>{r.finalReachability(),
                               static_cast<double>(r.totalBroadcasts())};
  };
  mc.parallel = true;
  const auto parallel = sim::monteCarlo(mc, flooding(), extract);
  mc.parallel = false;
  const auto serial = sim::monteCarlo(mc, flooding(), extract);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < parallel.size(); ++i) {
    EXPECT_EQ(parallel[i].stats.mean, serial[i].stats.mean);
    EXPECT_EQ(parallel[i].stats.stddev, serial[i].stats.stddev);
  }
}

// Scenario caching must stay transparent under faults: the cache is keyed
// on (seed, stream, deployment, channel) only, so a cache warmed by a
// fault-free run serves the faulted run the identical scenario.
TEST(FaultExperiment, ScenarioCacheTransparentUnderFaults) {
  sim::ExperimentConfig cfg = smallConfig();
  cfg.fault.faultSeed = 4;
  cfg.fault.crash.crashRate = 0.1;
  cfg.fault.link.lossGood = 0.2;

  const sim::RunResult uncached =
      sim::runExperiment(cfg, flooding(), 42, 2, nullptr);

  sim::ScenarioCache cache;
  // Warm the cache with the fault-free configuration...
  sim::runExperiment(smallConfig(), flooding(), 42, 2, &cache);
  // ...then the faulted run must reuse the scenario without divergence.
  const sim::RunResult cached =
      sim::runExperiment(cfg, flooding(), 42, 2, &cache);
  EXPECT_TRUE(identical(uncached, cached));
}

TEST(FaultExperiment, CrashRateOneSilencesEveryRelay) {
  sim::ExperimentConfig cfg = smallConfig();
  cfg.fault.crash.crashRate = 1.0;
  const sim::RunResult run = sim::runExperiment(cfg, flooding(), 42, 0);
  // Everyone crashes at the first phase boundary: the source's phase-1
  // broadcast is the only transmission that ever happens.
  EXPECT_EQ(run.totalBroadcasts(), 1u);
}

TEST(FaultExperiment, EnergyBudgetBoundsPerNodeSpend) {
  sim::ExperimentConfig cfg = smallConfig();
  cfg.neighborDensity = 60.0;  // dense enough that the budget binds
  cfg.fault.energyBudget = 4.0;

  support::Rng rng = support::Rng::forStream(42, 0);
  const net::Deployment deployment = net::Deployment::paperDisk(
      rng, cfg.rings, cfg.ringWidth, cfg.neighborDensity);
  const net::Topology topology(deployment, cfg.ringWidth, 0.0);
  net::EnergyLedger ledger(deployment.nodeCount(), cfg.costs);
  protocols::SimpleFlooding protocol;
  const sim::RunResult run =
      sim::runBroadcast(cfg, deployment, topology, protocol, rng, &ledger);

  const double cap =
      cfg.fault.energyBudget + std::max(cfg.costs.txCost, cfg.costs.rxCost);
  bool budgetBound = false;
  for (net::NodeId node = 0;
       node < static_cast<net::NodeId>(deployment.nodeCount()); ++node) {
    EXPECT_LE(ledger.energy(node), cap);
    if (ledger.energy(node) >= cfg.fault.energyBudget) budgetBound = true;
  }
  EXPECT_TRUE(budgetBound) << "budget never bound: weak test parameters";
  EXPECT_EQ(ledger.txCount(), run.totalBroadcasts());
}

TEST(FaultExperiment, AsyncBlackoutIsolatesSource) {
  sim::ExperimentConfig cfg = smallConfig();
  cfg.fault.link.lossGood = 1.0;
  cfg.fault.link.lossBad = 1.0;
  const sim::AsyncRunResult run =
      sim::runAsyncExperiment(cfg, flooding(), 42, 0);
  EXPECT_EQ(run.reachedCount(), 1u);
  EXPECT_EQ(run.totalBroadcasts(), 1u);
}

TEST(FaultExperiment, AsyncZeroFaultIsBitIdentical) {
  const sim::ExperimentConfig plain = smallConfig();
  sim::ExperimentConfig zero = smallConfig();
  zero.fault.faultSeed = 77;
  for (std::uint64_t stream = 0; stream < 3; ++stream) {
    const sim::AsyncRunResult a =
        sim::runAsyncExperiment(plain, flooding(), 42, stream);
    const sim::AsyncRunResult b =
        sim::runAsyncExperiment(zero, flooding(), 42, stream);
    EXPECT_EQ(a.reachedCount(), b.reachedCount());
    EXPECT_EQ(a.totalBroadcasts(), b.totalBroadcasts());
    EXPECT_EQ(a.finalReachability(), b.finalReachability());
    EXPECT_EQ(a.averageSuccessRate(), b.averageSuccessRate());
  }
}

TEST(FaultExperiment, LegacyKnobCannotCombineWithCrashModel) {
  sim::ExperimentConfig cfg = smallConfig();
  cfg.nodeFailureRate = 0.1;
  cfg.fault.crash.crashRate = 0.1;
  EXPECT_THROW(sim::runExperiment(cfg, flooding(), 42, 0), ConfigError);
  EXPECT_THROW(sim::runAsyncExperiment(cfg, flooding(), 42, 0), ConfigError);

  sim::ReliableBroadcastConfig rel;
  rel.base = cfg;
  rel.maxRounds = 4;
  rel.maxBackoffWindow = 8;
  EXPECT_THROW(sim::runReliableBroadcast(rel, 42, 0), ConfigError);
}

TEST(FaultExperiment, ReliableCrashesReduceReach) {
  sim::ReliableBroadcastConfig rel;
  rel.base = smallConfig();
  rel.base.channel = net::ChannelModel::CollisionAware;
  rel.maxRounds = 6;
  rel.maxBackoffWindow = 16;

  const sim::ReliableRunResult healthy = sim::runReliableBroadcast(rel, 42, 0);

  sim::ReliableBroadcastConfig crashed = rel;
  crashed.base.fault.faultSeed = 2;
  crashed.base.fault.crash.crashRate = 0.3;
  const sim::ReliableRunResult faulty =
      sim::runReliableBroadcast(crashed, 42, 0);
  EXPECT_LT(faulty.reachedCount, healthy.reachedCount);
}

}  // namespace
