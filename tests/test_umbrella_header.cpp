// The umbrella header must compile standalone and expose the whole API.
#include "nsmodel.hpp"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaHeader, ExposesTheFullSurface) {
  // A symbol from every layer, referenced through the single include.
  EXPECT_EQ(nsmodel::analytic::mu(1, 3), 1.0);
  EXPECT_GT(nsmodel::geom::lensArea(1.0, 1.0, 0.5), 0.0);
  nsmodel::des::Engine engine;
  EXPECT_EQ(engine.pendingCount(), 0u);
  EXPECT_STREQ(nsmodel::net::channelModelName(
                   nsmodel::net::ChannelModel::CollisionAware),
               "CAM");
  nsmodel::protocols::SimpleFlooding flooding;
  EXPECT_STREQ(flooding.name(), "simple-flooding");
  const auto cam = nsmodel::core::CommModel::collisionAware();
  EXPECT_TRUE(cam.exposesCollisions());
  EXPECT_TRUE(nsmodel::core::higherIsBetter(
      nsmodel::core::MetricKind::ReachabilityUnderLatency));
}

}  // namespace
