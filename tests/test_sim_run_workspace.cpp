// RunWorkspace reuse: correctness across scenarios and the
// counting-allocator proof that steady-state replications perform zero
// heap allocations.
//
// This file installs a global operator new/delete override, which is why
// it gets its own test binary (nsmodel_add_test builds one executable per
// file): the counter must observe every allocation of the process.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "protocols/counter_based.hpp"
#include "protocols/probabilistic.hpp"
#include "sim/experiment.hpp"
#include "sim/run_workspace.hpp"
#include "sim/scenario_cache.hpp"

namespace {

std::atomic<std::uint64_t> gAllocations{0};

}  // namespace

// Counting override: every allocation in the process bumps the counter.
// All forms forward to malloc/free so mixed new/delete pairs stay sound.
void* operator new(std::size_t size) {
  gAllocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  gAllocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace nsmodel;

sim::ExperimentConfig smallConfig() {
  sim::ExperimentConfig cfg;
  cfg.rings = 4;
  cfg.neighborDensity = 30.0;
  cfg.maxPhases = 60;
  return cfg;
}

// The tentpole claim: once a workspace's high-water mark fits the run,
// repeating the replication allocates nothing — the agenda, flags,
// observation buffers, and channel scratch all come from the workspace,
// and reclaim() recycles the RunResult's vectors.
TEST(RunWorkspace, SteadyStateReplicationsAllocateNothing) {
  const sim::ExperimentConfig cfg = smallConfig();
  const sim::Scenario scenario =
      sim::buildScenario(sim::ScenarioKey::forExperiment(cfg, 42, 0));
  protocols::ProbabilisticBroadcast protocol(0.6);

  sim::RunWorkspace workspace;
  // Returns the reached count so the measured loop stays free of gtest
  // machinery (assertions may themselves allocate).
  const auto oneRun = [&] {
    support::Rng rng = scenario.protocolRng;
    sim::RunResult result =
        sim::runBroadcast(cfg, scenario.deployment, scenario.topology,
                          protocol, rng, workspace);
    const std::size_t reached = result.reachedCount();
    workspace.reclaim(std::move(result));
    return reached;
  };

  for (int warmup = 0; warmup < 3; ++warmup) {
    EXPECT_GT(oneRun(), 1u);
  }

  const std::uint64_t growthBefore = workspace.growthEvents();
  const std::uint64_t allocationsBefore =
      gAllocations.load(std::memory_order_relaxed);
  std::size_t reachedTotal = 0;
  for (int rep = 0; rep < 20; ++rep) reachedTotal += oneRun();
  const std::uint64_t allocationsAfter =
      gAllocations.load(std::memory_order_relaxed);

  EXPECT_EQ(allocationsAfter, allocationsBefore)
      << "steady-state replications must not touch the heap";
  EXPECT_EQ(workspace.growthEvents(), growthBefore);
  EXPECT_GT(reachedTotal, 20u);  // the runs really ran
}

// Same property for a stateful protocol whose reset() runs per
// replication, and with an active drift plan exercising the interferer
// chains.  The fault plan itself allocates (it materialises per-node
// skews), so only the workspace-side growth counter must stay flat here;
// the allocator-level proof above covers the fault-free hot path.
TEST(RunWorkspace, GrowthStopsAtHighWaterMarkUnderDrift) {
  sim::ExperimentConfig cfg = smallConfig();
  cfg.fault.faultSeed = 13;
  cfg.fault.drift.maxSkewSlots = 0.4;
  const sim::Scenario scenario =
      sim::buildScenario(sim::ScenarioKey::forExperiment(cfg, 42, 0));
  protocols::CounterBasedBroadcast protocol(3);

  sim::RunWorkspace workspace;
  for (int warmup = 0; warmup < 3; ++warmup) {
    support::Rng rng = scenario.protocolRng;
    workspace.reclaim(sim::runBroadcast(cfg, scenario.deployment,
                                        scenario.topology, protocol, rng,
                                        workspace));
  }
  const std::uint64_t growthBefore = workspace.growthEvents();
  for (int rep = 0; rep < 10; ++rep) {
    support::Rng rng = scenario.protocolRng;
    workspace.reclaim(sim::runBroadcast(cfg, scenario.deployment,
                                        scenario.topology, protocol, rng,
                                        workspace));
  }
  EXPECT_EQ(workspace.growthEvents(), growthBefore);
}

// Reusing one workspace across different scenarios (other sizes, other
// channels) must not leak state between runs: results equal those from a
// fresh workspace each time.
TEST(RunWorkspace, ReuseAcrossScenariosMatchesFreshWorkspaces) {
  std::vector<sim::ExperimentConfig> configs;
  {
    sim::ExperimentConfig big = smallConfig();
    big.neighborDensity = 60.0;
    big.channel = net::ChannelModel::CollisionFree;
    sim::ExperimentConfig cs = smallConfig();
    cs.rings = 3;
    cs.channel = net::ChannelModel::CarrierSenseAware;
    configs = {smallConfig(), big, cs, smallConfig()};
  }

  sim::RunWorkspace shared;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const sim::Scenario scenario = sim::buildScenario(
        sim::ScenarioKey::forExperiment(configs[i], 42, i));
    protocols::ProbabilisticBroadcast protocol(0.6);

    support::Rng sharedRng = scenario.protocolRng;
    const sim::RunResult viaShared =
        sim::runBroadcast(configs[i], scenario.deployment, scenario.topology,
                          protocol, sharedRng, shared);

    sim::RunWorkspace fresh;
    support::Rng freshRng = scenario.protocolRng;
    const sim::RunResult viaFresh =
        sim::runBroadcast(configs[i], scenario.deployment, scenario.topology,
                          protocol, freshRng, fresh);

    EXPECT_EQ(viaShared.receptionSlots(), viaFresh.receptionSlots()) << i;
    EXPECT_EQ(viaShared.transmissionSlots(), viaFresh.transmissionSlots())
        << i;
    EXPECT_EQ(viaShared.receptionSlotByNode(), viaFresh.receptionSlotByNode())
        << i;
    EXPECT_EQ(viaShared.attemptedPairs(), viaFresh.attemptedPairs()) << i;
    EXPECT_EQ(viaShared.deliveredPairs(), viaFresh.deliveredPairs()) << i;
  }
}

// reclaim() is an optimisation only — a run after a reclaim sees exactly
// what a run without one would.
TEST(RunWorkspace, ReclaimDoesNotChangeSubsequentRuns) {
  const sim::ExperimentConfig cfg = smallConfig();
  const sim::Scenario scenario =
      sim::buildScenario(sim::ScenarioKey::forExperiment(cfg, 7, 0));
  protocols::ProbabilisticBroadcast protocol(0.5);

  sim::RunWorkspace reclaiming;
  sim::RunWorkspace plain;
  for (int rep = 0; rep < 5; ++rep) {
    support::Rng rngA = scenario.protocolRng;
    sim::RunResult a =
        sim::runBroadcast(cfg, scenario.deployment, scenario.topology,
                          protocol, rngA, reclaiming);
    support::Rng rngB = scenario.protocolRng;
    const sim::RunResult b =
        sim::runBroadcast(cfg, scenario.deployment, scenario.topology,
                          protocol, rngB, plain);
    EXPECT_EQ(a.receptionSlots(), b.receptionSlots()) << rep;
    EXPECT_EQ(a.receptionSlotByNode(), b.receptionSlotByNode()) << rep;
    reclaiming.reclaim(std::move(a));
  }
}

// The pool recycles released workspaces instead of growing.
TEST(RunWorkspacePool, RecyclesReleasedWorkspaces) {
  sim::RunWorkspacePool pool;
  std::unique_ptr<sim::RunWorkspace> first = pool.acquire();
  sim::RunWorkspace* raw = first.get();
  pool.release(std::move(first));
  const std::unique_ptr<sim::RunWorkspace> second = pool.acquire();
  EXPECT_EQ(second.get(), raw);
}

TEST(RunWorkspacePool, LeaseWithoutPoolOwnsPrivateWorkspace) {
  sim::WorkspaceLease lease(nullptr);
  lease->beginRun(16, 30);
  EXPECT_EQ(lease->received.size(), 16u);
  lease->finishRun();
}

}  // namespace
