// Cross-module integration tests: the analytic framework (Eq. 4) against
// the packet-level simulator, and the paper's duality claims.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/network_model.hpp"
#include "core/optimizer.hpp"
#include "protocols/flooding.hpp"
#include "protocols/probabilistic.hpp"
#include "sim/monte_carlo.hpp"

namespace nsmodel {
namespace {

core::NetworkModel paperModel(double rho,
                              core::CommModel comm =
                                  core::CommModel::collisionAware()) {
  core::DeploymentSpec spec;
  spec.rings = 5;
  spec.ringWidth = 1.0;
  spec.neighborDensity = rho;
  return core::NetworkModel(spec, comm, 3);
}

double simulatedReach5(const core::NetworkModel& model, double p, int reps) {
  return model
      .measure(p, core::MetricSpec::reachabilityUnderLatency(5.0), 42, reps)
      .stats.mean;
}

TEST(Integration, PhaseOneAgreesExactlyBetweenBackends) {
  // Analytic: n_1^1 = rho. Simulation: the source's neighbour count in
  // expectation ~ rho (sampling noise over deployments).
  const core::NetworkModel model = paperModel(60.0);
  const auto trace = model.predict(0.5);
  EXPECT_NEAR(trace.phases()[0].newTotal, 60.0, 1e-9);
  sim::MonteCarloConfig mc;
  mc.experiment = model.experimentConfig();
  mc.replications = 24;
  const auto aggs = sim::monteCarlo(
      mc,
      [] { return std::make_unique<protocols::ProbabilisticBroadcast>(0.5); },
      [](const sim::RunResult& run) {
        return std::vector<double>{
            static_cast<double>(run.phases().at(0).newReceivers)};
      });
  EXPECT_NEAR(aggs[0].stats.mean, 60.0, 6.0);
}

TEST(Integration, AnalyticTracksSimulationAcrossP) {
  // Across a p sweep at fixed density, the analytic model must rank
  // configurations like the simulator does (Spearman-style check on three
  // well-separated points).
  const core::NetworkModel model = paperModel(100.0);
  const double pts[3] = {0.02, 0.3, 1.0};
  double analytic[3], simulated[3];
  for (int i = 0; i < 3; ++i) {
    analytic[i] = model.predict(pts[i]).reachabilityAfter(5.0);
    simulated[i] = simulatedReach5(model, pts[i], 12);
  }
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (analytic[i] > analytic[j] + 0.08) {
        EXPECT_GT(simulated[i], simulated[j])
            << "p=" << pts[i] << " vs p=" << pts[j];
      }
    }
  }
}

TEST(Integration, AnalyticReachabilityWithinBandOfSimulation) {
  // Absolute agreement: the paper itself reports analytic ~72% vs
  // simulated ~63% at the optimum — the mean-field recursion is optimistic.
  // Our band allows a comparable systematic gap.
  const core::NetworkModel model = paperModel(60.0);
  for (double p : {0.4, 1.0}) {
    const double predicted = model.predict(p).reachabilityAfter(5.0);
    const double measured = simulatedReach5(model, p, 16);
    EXPECT_GT(predicted, measured - 0.05) << "p=" << p;
    EXPECT_LT(predicted - measured, 0.20) << "p=" << p;
  }
  // At small p the mean-field recursion is systematically optimistic (it
  // redistributes receivers uniformly within each ring every phase); the
  // gap there is larger but still bounded.
  const double predicted = model.predict(0.2).reachabilityAfter(5.0);
  const double measured = simulatedReach5(model, 0.2, 16);
  EXPECT_GT(predicted, measured);
  EXPECT_LT(predicted - measured, 0.40);
}

TEST(Integration, DualityLatencyVsReachability) {
  // Paper Section 4.2.4: the p minimising latency for target R equals the
  // p maximising reachability in T phases, when R is the optimal reach.
  analytic::RingModelConfig base;
  base.rings = 5;
  base.neighborDensity = 100.0;
  const core::ProbabilityGrid grid{0.01, 1.0, 0.01};
  const auto reachOpt = core::optimizeAnalytic(
      base, core::MetricSpec::reachabilityUnderLatency(5.0), grid);
  ASSERT_TRUE(reachOpt.has_value());
  const auto latencyOpt = core::optimizeAnalytic(
      base,
      core::MetricSpec::latencyUnderReachability(reachOpt->value - 1e-6),
      grid);
  ASSERT_TRUE(latencyOpt.has_value());
  EXPECT_NEAR(latencyOpt->probability, reachOpt->probability, 0.03);
  EXPECT_LE(latencyOpt->value, 5.0 + 1e-6);
}

TEST(Integration, DualityEnergyVsReachability) {
  // Paper Section 4.2.6: the p maximising reachability under the energy
  // budget that the energy-minimal p needs is (close to) that same p.
  analytic::RingModelConfig base;
  base.rings = 5;
  base.neighborDensity = 80.0;
  const core::ProbabilityGrid grid{0.01, 1.0, 0.01};
  const auto energyOpt = core::optimizeAnalytic(
      base, core::MetricSpec::energyUnderReachability(0.6), grid);
  ASSERT_TRUE(energyOpt.has_value());
  const auto reachOpt = core::optimizeAnalytic(
      base, core::MetricSpec::reachabilityUnderEnergy(energyOpt->value),
      grid);
  ASSERT_TRUE(reachOpt.has_value());
  EXPECT_GE(reachOpt->value, 0.6 - 0.03);
  EXPECT_LT(std::abs(reachOpt->probability - energyOpt->probability), 0.1);
}

TEST(Integration, FloodingSuccessRateSimulationMatchesAnalytic) {
  const core::NetworkModel model = paperModel(80.0);
  analytic::RingModelConfig cfg =
      model.analyticConfig(1.0, analytic::RealKPolicy::Interpolate);
  const double predicted = analytic::RingModel(cfg).run().averageSuccessRate();
  sim::MonteCarloConfig mc;
  mc.experiment = model.experimentConfig();
  mc.replications = 16;
  const auto aggs = sim::monteCarlo(
      mc, [] { return std::make_unique<protocols::SimpleFlooding>(); },
      [](const sim::RunResult& run) {
        return std::vector<double>{run.averageSuccessRate()};
      });
  EXPECT_NEAR(predicted, aggs[0].stats.mean, 0.05);
}

TEST(Integration, BroadcastCountsAgreeBetweenBackends) {
  const core::NetworkModel model = paperModel(60.0);
  const double p = 0.3;
  const double predicted = model.predict(p).totalBroadcasts();
  sim::MonteCarloConfig mc;
  mc.experiment = model.experimentConfig();
  mc.replications = 16;
  const auto aggs = sim::monteCarlo(
      mc,
      [p] { return std::make_unique<protocols::ProbabilisticBroadcast>(p); },
      [](const sim::RunResult& run) {
        return std::vector<double>{
            static_cast<double>(run.totalBroadcasts())};
      });
  // Within 20% relative: the analytic model is a mean-field approximation.
  EXPECT_NEAR(predicted, aggs[0].stats.mean, 0.2 * aggs[0].stats.mean);
}

TEST(Integration, RingResolvedRecursionTracksSimulation) {
  // The sharpest check of Eq. 4: compare the *per-ring, per-phase*
  // expected new receivers n_j^i against ring-binned first receptions in
  // the packet simulator (via RunResult::receptionSlotByNode), averaged
  // over deployments.
  const double rho = 60.0;
  const double p = 0.4;
  const int reps = 24;
  const int phasesToCheck = 3;
  const int rings = 5;

  analytic::RingModelConfig cfg;
  cfg.neighborDensity = rho;
  cfg.broadcastProb = p;
  const analytic::RingTrace trace = analytic::RingModel(cfg).run();

  std::vector<std::vector<double>> simulated(
      phasesToCheck, std::vector<double>(rings, 0.0));
  for (int rep = 0; rep < reps; ++rep) {
    support::Rng rng = support::Rng::forStream(99, rep);
    const net::Deployment dep =
        net::Deployment::paperDisk(rng, rings, 1.0, rho);
    const net::Topology topo(dep, 1.0);
    sim::ExperimentConfig simCfg;
    simCfg.neighborDensity = rho;
    protocols::ProbabilisticBroadcast protocol(p);
    const auto run = sim::runBroadcast(simCfg, dep, topo, protocol, rng);
    const auto& bySlot = run.receptionSlotByNode();
    ASSERT_EQ(bySlot.size(), dep.nodeCount());
    for (net::NodeId node = 0; node < dep.nodeCount(); ++node) {
      if (bySlot[node] == sim::RunResult::kNeverReceived) continue;
      const int phase = static_cast<int>(bySlot[node] / 3);
      if (phase >= phasesToCheck) continue;
      simulated[phase][dep.ringOf(node, 1.0) - 1] += 1.0;
    }
  }

  for (int phase = 0; phase < phasesToCheck; ++phase) {
    for (int ring = 0; ring < rings; ++ring) {
      const double simMean = simulated[phase][ring] / reps;
      const double predicted = trace.phases()[phase].newPerRing[ring];
      if (predicted < 3.0 && simMean < 3.0) continue;  // noise-dominated
      // Mean-field vs packet-level: the recursion tracks the wavefront
      // ring by ring, but early phases (few broadcasters, high variance)
      // deviate the most — a 50% relative band with an absolute floor
      // still pins the order of magnitude and the spatial pattern.
      EXPECT_NEAR(predicted, simMean,
                  std::max(15.0, 0.5 * std::max(predicted, simMean)))
          << "phase " << (phase + 1) << " ring " << (ring + 1);
    }
  }
}

TEST(Integration, ReceptionSlotTableConsistentWithAggregates) {
  const core::NetworkModel model = paperModel(40.0);
  const auto run = model.simulateOnce(0.4, 42, 0);
  const auto& bySlot = run.receptionSlotByNode();
  ASSERT_FALSE(bySlot.empty());
  std::size_t receivers = 0;
  for (auto slot : bySlot) {
    if (slot != sim::RunResult::kNeverReceived) ++receivers;
  }
  // The source has no reception entry, so receivers + 1 == reachedCount.
  EXPECT_EQ(receivers + 1, run.reachedCount());
}

TEST(Integration, CfmVersusCamGapGrowsWithDensity) {
  // The central motivation of the paper: CFM's prediction error for
  // flooding grows with density.
  double previousGap = -1.0;
  for (double rho : {20.0, 140.0}) {
    const core::NetworkModel cam = paperModel(rho);
    const double camReach = simulatedReach5(cam, 1.0, 10);
    const double gap = 1.0 - camReach;  // CFM predicts 1.0
    EXPECT_GT(gap, previousGap);
    previousGap = gap;
  }
  EXPECT_GT(previousGap, 0.3);
}

}  // namespace
}  // namespace nsmodel
