// Thread-safety of the sharded single-run engine.
//
// Every shard runs on its own thread, touching only the per-node state
// of the nodes it owns and reading the transmitter lists its halo
// neighbors publish through the SeqGate counters — so a sharded run
// must be data-race free (this file is the target of the CI
// thread-sanitizer job) and must be bit-identical to the flat
// per-node-keyed loop on every repetition, regardless of thread
// schedule.  The execution mode is pinned to the thread gang (the
// hardware policy would fall back to the cooperative loop on a
// single-core CI runner and the sanitizer would see no threads at all);
// the runs are repeated to give the scheduler room to interleave shards
// differently each time.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "protocols/counter_based.hpp"
#include "protocols/probabilistic.hpp"
#include "sim/experiment.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/scenario_cache.hpp"
#include "sim/sharded_engine.hpp"

namespace {

using namespace nsmodel;

struct ShardGuard {
  ~ShardGuard() { sim::setShardCountOverride(-1); }
};

/// Pins the gate-synchronised thread gang for the test's lifetime.
struct ThreadsGuard {
  ThreadsGuard() { sim::setShardExecOverride(sim::ShardExec::Threads); }
  ~ThreadsGuard() { sim::setShardExecOverride(sim::ShardExec::Auto); }
};

sim::ExperimentConfig smallConfig() {
  sim::ExperimentConfig cfg;
  cfg.rings = 3;
  cfg.neighborDensity = 25.0;
  cfg.maxPhases = 40;
  cfg.channel = net::ChannelModel::CollisionAware;
  cfg.fault.faultSeed = 19;
  cfg.fault.crash.crashRate = 0.05;
  cfg.fault.crash.recoveryRate = 0.3;
  cfg.fault.link.pGoodToBad = 0.2;
  cfg.fault.link.pBadToGood = 0.5;
  cfg.fault.link.lossBad = 0.5;
  cfg.fault.drift.maxSkewSlots = 0.3;
  cfg.fault.energyBudget = 5.0;
  return cfg;
}

void expectIdentical(const sim::RunResult& sharded, const sim::RunResult& flat,
                     const std::string& label) {
  EXPECT_EQ(sharded.receptionSlots(), flat.receptionSlots()) << label;
  EXPECT_EQ(sharded.transmissionSlots(), flat.transmissionSlots()) << label;
  EXPECT_EQ(sharded.receptionSlotByNode(), flat.receptionSlotByNode())
      << label;
  EXPECT_EQ(sharded.attemptedPairs(), flat.attemptedPairs()) << label;
  EXPECT_EQ(sharded.deliveredPairs(), flat.deliveredPairs()) << label;
  ASSERT_EQ(sharded.phases().size(), flat.phases().size()) << label;
  for (std::size_t i = 0; i < sharded.phases().size(); ++i) {
    EXPECT_EQ(sharded.phases()[i].transmissions,
              flat.phases()[i].transmissions)
        << label << " phase " << i;
    EXPECT_EQ(sharded.phases()[i].newReceivers, flat.phases()[i].newReceivers)
        << label << " phase " << i;
    EXPECT_EQ(sharded.phases()[i].deliveries, flat.phases()[i].deliveries)
        << label << " phase " << i;
    EXPECT_EQ(sharded.phases()[i].lostReceivers,
              flat.phases()[i].lostReceivers)
        << label << " phase " << i;
  }
}

TEST(ShardedThreads, RepeatedRunsStayFlatIdentical) {
  ThreadsGuard execGuard;
  const sim::ExperimentConfig cfg = smallConfig();
  const sim::Scenario scenario =
      sim::buildScenario(sim::ScenarioKey::forExperiment(cfg, 42, 0));
  protocols::ProbabilisticBroadcast protocol(0.6);

  sim::ExperimentConfig flatCfg = cfg;
  flatCfg.rngMode = sim::RngMode::PerNode;
  support::Rng flatRng = scenario.protocolRng;
  const sim::RunResult flat =
      sim::runBroadcast(flatCfg, scenario.deployment, scenario.topology,
                        protocol, flatRng, nullptr);

  sim::ShardedEngine engine(scenario.deployment, scenario.topology, 4);
  for (int rep = 0; rep < 8; ++rep) {
    support::Rng rng = scenario.protocolRng;
    const sim::RunResult sharded = engine.run(cfg, protocol, rng);
    expectIdentical(sharded, flat, "rep " + std::to_string(rep));
  }
}

TEST(ShardedThreads, CancellationHeavyProtocolStaysIdentical) {
  ThreadsGuard execGuard;
  sim::ExperimentConfig cfg = smallConfig();
  cfg.channel = net::ChannelModel::CarrierSenseAware;
  const sim::Scenario scenario =
      sim::buildScenario(sim::ScenarioKey::forExperiment(cfg, 42, 0));
  protocols::CounterBasedBroadcast protocol(3);

  sim::ExperimentConfig flatCfg = cfg;
  flatCfg.rngMode = sim::RngMode::PerNode;
  support::Rng flatRng = scenario.protocolRng;
  const sim::RunResult flat =
      sim::runBroadcast(flatCfg, scenario.deployment, scenario.topology,
                        protocol, flatRng, nullptr);

  sim::ShardedEngine engine(scenario.deployment, scenario.topology, 4);
  for (int rep = 0; rep < 8; ++rep) {
    support::Rng rng = scenario.protocolRng;
    const sim::RunResult sharded = engine.run(cfg, protocol, rng);
    expectIdentical(sharded, flat, "rep " + std::to_string(rep));
  }
}

// The SINR channel adds a second shared read surface (the restricted
// gain CSRs) and per-shard floating-point accumulators to the gang;
// repeated runs must stay flat-identical under every thread schedule.
TEST(ShardedThreads, SinrChannelStaysIdentical) {
  ThreadsGuard execGuard;
  sim::ExperimentConfig cfg = smallConfig();
  cfg.channel = net::ChannelModel::Sinr;
  const sim::Scenario scenario =
      sim::buildScenario(sim::ScenarioKey::forExperiment(cfg, 42, 0));
  protocols::ProbabilisticBroadcast protocol(0.6);

  sim::ExperimentConfig flatCfg = cfg;
  flatCfg.rngMode = sim::RngMode::PerNode;
  support::Rng flatRng = scenario.protocolRng;
  const sim::RunResult flat =
      sim::runBroadcast(flatCfg, scenario.deployment, scenario.topology,
                        protocol, flatRng, nullptr);

  sim::ShardedEngine engine(scenario.deployment, scenario.topology, 4);
  for (int rep = 0; rep < 8; ++rep) {
    support::Rng rng = scenario.protocolRng;
    const sim::RunResult sharded = engine.run(cfg, protocol, rng);
    expectIdentical(sharded, flat, "sinr rep " + std::to_string(rep));
  }
}

TEST(ShardedThreads, MonteCarloWiringIsDeterministicAcrossRuns) {
  ShardGuard guard;
  ThreadsGuard execGuard;
  sim::setShardCountOverride(4);

  sim::MonteCarloConfig mc;
  mc.experiment.rings = 3;
  mc.experiment.neighborDensity = 25.0;
  mc.experiment.maxPhases = 40;
  mc.replications = 4;
  mc.parallel = false;  // shards are the only parallelism in play
  const auto factory = [] {
    return std::make_unique<protocols::ProbabilisticBroadcast>(0.6);
  };

  const auto first = sim::runReplications(mc, factory);
  const auto second = sim::runReplications(mc, factory);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t rep = 0; rep < first.size(); ++rep) {
    expectIdentical(second[rep], first[rep], "rep " + std::to_string(rep));
  }
}

}  // namespace
