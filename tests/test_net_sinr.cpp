// The physical-interference (SINR) channel and its cumulative-power
// kernel (see sinr_channel.hpp, sinr_kernel.hpp):
//
//  * parameter validation and channel-name round-trips cover the new
//    enum value alongside the geometric models;
//  * slot semantics on hand-placed deployments: a sole transmitter
//    delivers exactly its adjacency row, half-duplex suppresses
//    transmitting receivers, capture lets the strongest signal survive
//    a collision CAM would lose, interference power accumulates across
//    transmitters until the capture threshold fails, and the far-field
//    cutoff bounds which transmitters contribute at all;
//  * end to end, every runnable kernel ISA (oracle reference, generic,
//    native) replays the oracle bit for bit across the fault families.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/channel.hpp"
#include "net/gain_field.hpp"
#include "net/slot_kernel.hpp"
#include "protocols/probabilistic.hpp"
#include "sim/experiment.hpp"
#include "support/error.hpp"

namespace nsmodel::net {
namespace {

using Delivery = std::pair<NodeId, NodeId>;  // (receiver, sender)

Deployment customDeployment(std::vector<geom::Vec2> positions) {
  return Deployment(std::move(positions), 0, 100.0);
}

std::vector<Delivery> resolve(Channel& channel, const Topology& topo,
                              const std::vector<NodeId>& transmitters,
                              SlotOutcome* outcome = nullptr) {
  std::vector<Delivery> deliveries;
  const SlotOutcome out = channel.resolveSlot(
      topo, transmitters, [&deliveries](NodeId r, NodeId s) {
        deliveries.emplace_back(r, s);
      });
  if (outcome != nullptr) *outcome = out;
  return deliveries;
}

TEST(SinrChannelModel, NameRoundTripsForEveryModel) {
  EXPECT_STREQ(channelModelName(ChannelModel::Sinr), "SINR");
  for (auto model :
       {ChannelModel::CollisionFree, ChannelModel::CollisionAware,
        ChannelModel::CarrierSenseAware, ChannelModel::Sinr}) {
    EXPECT_EQ(channelModelFromName(channelModelName(model)), model);
  }
  // Parsing is case-insensitive (the CLI passes lowercase spellings).
  EXPECT_EQ(channelModelFromName("sinr"), ChannelModel::Sinr);
  EXPECT_EQ(channelModelFromName("cfm"), ChannelModel::CollisionFree);
  EXPECT_EQ(channelModelFromName("cam"), ChannelModel::CollisionAware);
  EXPECT_EQ(channelModelFromName("cam-cs"), ChannelModel::CarrierSenseAware);
  EXPECT_THROW(channelModelFromName("tdma"), ConfigError);
  EXPECT_THROW(channelModelFromName(""), ConfigError);
}

TEST(SinrChannelModel, MakeChannelReportsSinr) {
  EXPECT_EQ(makeChannel(ChannelModel::Sinr)->model(), ChannelModel::Sinr);
  SinrParams params;
  params.beta = 2.0;
  EXPECT_EQ(makeChannel(ChannelModel::Sinr, params)->model(),
            ChannelModel::Sinr);
}

TEST(SinrParamsValidate, RejectsDegenerateValues) {
  SinrParams good;
  EXPECT_NO_THROW(good.validate());
  SinrParams p = good;
  p.beta = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = good;
  p.beta = -1.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = good;
  p.noise = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = good;
  p.alpha = 0.0;
  EXPECT_THROW(p.validate(), ConfigError);
  p = good;
  p.cutoff = 0.5;  // below the transmission range makes no sense
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(SinrChannel, RequiresGainFieldTopology) {
  const Deployment dep = customDeployment({{0, 0}, {0.5, 0}});
  const Topology topo(dep, 1.0);  // no GainFieldSpec
  auto channel = makeChannel(ChannelModel::Sinr);
  EXPECT_THROW(resolve(*channel, topo, {0}), nsmodel::Error);
}

TEST(SinrChannel, SoleTransmitterDeliversToNeighbors) {
  // Line 0-1-2 at unit spacing: node 1's neighbours are 0 and 2.
  const Deployment dep = customDeployment({{0, 0}, {1, 0}, {2, 0}});
  const Topology topo(dep, 1.0, 0.0, GainFieldSpec{});
  auto channel = makeChannel(ChannelModel::Sinr);
  SlotOutcome outcome;
  const auto deliveries = resolve(*channel, topo, {1}, &outcome);
  const std::set<Delivery> got(deliveries.begin(), deliveries.end());
  EXPECT_EQ(got, (std::set<Delivery>{{0, 1}, {2, 1}}));
  EXPECT_EQ(outcome.deliveries, 2u);
  EXPECT_EQ(outcome.lostReceivers, 0u);
}

TEST(SinrChannel, TransmitterCannotReceive) {
  const Deployment dep = customDeployment({{0, 0}, {0.5, 0}});
  const Topology topo(dep, 1.0, 0.0, GainFieldSpec{});
  auto channel = makeChannel(ChannelModel::Sinr);
  const auto deliveries = resolve(*channel, topo, {0, 1});
  EXPECT_TRUE(deliveries.empty());
}

TEST(SinrChannel, CaptureBeatsCamCollision) {
  // Receiver 1 at 0.5 hears transmitter 0 (gain 0.25^-1.5 = 8) and
  // transmitter 2 at distance 0.9 (gain 0.81^-1.5 ~ 1.37).  CAM calls
  // that a collision; under SINR the strong signal captures:
  // 8 / (1e-4 + 1.37) ~ 5.8 >= beta = 3.
  const Deployment dep = customDeployment({{0, 0}, {0.5, 0}, {1.4, 0}});
  const Topology topo(dep, 1.0, 0.0, GainFieldSpec{});
  auto cam = makeChannel(ChannelModel::CollisionAware);
  auto sinr = makeChannel(ChannelModel::Sinr);
  EXPECT_TRUE(resolve(*cam, topo, {0, 2}).empty());
  const auto deliveries = resolve(*sinr, topo, {0, 2});
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], (Delivery{1, 0}));
}

TEST(SinrChannel, InterferencePowerAccumulates) {
  // Receiver 0 decodes transmitter 1 (distance 0.7, gain 0.49^-1.5 ~
  // 2.92).  The out-of-range transmitters at 1.2/1.3/1.4 contribute
  // gains ~0.58/0.46/0.36.  Against the strongest alone the SINR is
  // ~8.0 >= 3 (delivered); against all three the cumulative power drags
  // it to ~2.08 < 3 (lost) — the pairwise models cannot express this.
  const Deployment dep = customDeployment(
      {{0, 0}, {0.7, 0}, {-1.2, 0}, {-1.3, 0}, {-1.4, 0}});
  const Topology topo(dep, 1.0, 0.0, GainFieldSpec{});
  auto channel = makeChannel(ChannelModel::Sinr);
  SlotOutcome one;
  const auto single = resolve(*channel, topo, {1, 4}, &one);
  // Node 4 also delivers to its idle neighbours 2 and 3; the pair under
  // test is (0, 1) surviving the lone interferer.
  const std::set<Delivery> got(single.begin(), single.end());
  EXPECT_EQ(got, (std::set<Delivery>{{0, 1}, {2, 4}, {3, 4}}));
  EXPECT_EQ(one.lostReceivers, 0u);
  SlotOutcome all;
  const auto crowded = resolve(*channel, topo, {1, 2, 3, 4}, &all);
  EXPECT_TRUE(crowded.empty());
  EXPECT_EQ(all.lostReceivers, 1u);
}

TEST(SinrChannel, FarFieldCutoffBoundsInterference) {
  // The interferer at 1.1 (gain ~0.75) kills the reception from 0.9
  // (gain ~1.37): SINR ~1.8 < 3.  Rebuilding the field with cutoff = 1
  // excludes everything beyond the transmission range, so the same slot
  // delivers.
  const Deployment dep = customDeployment({{0, 0}, {0.9, 0}, {-1.1, 0}});
  const SinrParams wide;  // cutoff = 2
  const Topology topoWide(dep, 1.0, 0.0,
                          GainFieldSpec{wide.alpha, wide.cutoff});
  auto channelWide = makeChannel(ChannelModel::Sinr, wide);
  EXPECT_TRUE(resolve(*channelWide, topoWide, {1, 2}).empty());

  SinrParams narrow;
  narrow.cutoff = 1.0;
  const Topology topoNarrow(dep, 1.0, 0.0,
                            GainFieldSpec{narrow.alpha, narrow.cutoff});
  auto channelNarrow = makeChannel(ChannelModel::Sinr, narrow);
  const auto deliveries = resolve(*channelNarrow, topoNarrow, {1, 2});
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], (Delivery{0, 1}));
}

TEST(SinrChannel, NoiseFloorAloneCanDenyReception) {
  // A sole transmitter at 0.9 has gain ~1.37; with noise = 0.5 the
  // capture test needs beta * noise = 1.5 and fails, with the default
  // noise floor it passes.
  const Deployment dep = customDeployment({{0, 0}, {0.9, 0}});
  SinrParams loud;
  loud.noise = 0.5;
  const Topology topo(dep, 1.0, 0.0, GainFieldSpec{});
  auto noisy = makeChannel(ChannelModel::Sinr, loud);
  EXPECT_TRUE(resolve(*noisy, topo, {1}).empty());
  auto quiet = makeChannel(ChannelModel::Sinr);
  EXPECT_EQ(resolve(*quiet, topo, {1}).size(), 1u);
}

TEST(SinrChannel, RepeatSlotsReuseScratchCorrectly) {
  const Deployment dep = customDeployment(
      {{0, 0}, {0.7, 0}, {-1.2, 0}, {-1.3, 0}, {-1.4, 0}});
  const Topology topo(dep, 1.0, 0.0, GainFieldSpec{});
  auto channel = makeChannel(ChannelModel::Sinr);
  // Slot 1: crowded loss dirties the accumulators for every candidate.
  EXPECT_TRUE(resolve(*channel, topo, {1, 2, 3, 4}).empty());
  // Slot 2: the clean delivery must not see stale power totals.
  const auto second = resolve(*channel, topo, {1});
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], (Delivery{0, 1}));
  // Slot 3: empty transmitter set.
  EXPECT_TRUE(resolve(*channel, topo, {}).empty());
}

// ---- end to end: every ISA replays the oracle bit for bit ----

/// Restores the dispatched kernel selection on scope exit.
struct KernelGuard {
  SlotKernelIsa prev;
  KernelGuard() : prev(slotKernelOps().isa) {}
  ~KernelGuard() { setSlotKernel(prev); }
};

std::vector<SlotKernelIsa> runnableIsas() {
  std::vector<SlotKernelIsa> isas{SlotKernelIsa::Oracle,
                                  SlotKernelIsa::Generic};
  if (slotKernelAvailable(SlotKernelIsa::Native)) {
    isas.push_back(SlotKernelIsa::Native);
  }
  return isas;
}

struct FaultCase {
  const char* name;
  void (*mutate)(sim::ExperimentConfig&);
};

void noFaults(sim::ExperimentConfig&) {}

void crashFaults(sim::ExperimentConfig& cfg) {
  cfg.fault.faultSeed = 7;
  cfg.fault.crash.crashRate = 0.08;
  cfg.fault.crash.recoveryRate = 0.25;
}

void linkLoss(sim::ExperimentConfig& cfg) {
  cfg.fault.faultSeed = 11;
  cfg.fault.link.pGoodToBad = 0.25;
  cfg.fault.link.pBadToGood = 0.4;
  cfg.fault.link.lossBad = 0.7;
  cfg.fault.link.lossGood = 0.02;
}

void clockDrift(sim::ExperimentConfig& cfg) {
  cfg.fault.faultSeed = 13;
  cfg.fault.drift.maxSkewSlots = 0.4;
}

void energyCutoff(sim::ExperimentConfig& cfg) {
  cfg.fault.faultSeed = 17;
  cfg.fault.energyBudget = 3.0;
}

TEST(SinrKernelEndToEnd, AllIsasMatchTheOracleExactly) {
  KernelGuard guard;
  const FaultCase faults[] = {
      {"clean", noFaults},   {"crash", crashFaults}, {"link", linkLoss},
      {"drift", clockDrift}, {"energy", energyCutoff},
  };
  const auto factory = [] {
    return std::make_unique<protocols::ProbabilisticBroadcast>(0.9);
  };
  for (const FaultCase& f : faults) {
    sim::ExperimentConfig cfg;
    cfg.rings = 4;
    cfg.neighborDensity = 35.0;
    cfg.maxPhases = 60;
    cfg.channel = ChannelModel::Sinr;
    f.mutate(cfg);
    setSlotKernel(SlotKernelIsa::Oracle);
    const sim::RunResult oracle = sim::runExperiment(cfg, factory, 42, 0);
    EXPECT_GT(oracle.reachedCount(), 1u) << f.name;
    for (const SlotKernelIsa isa : runnableIsas()) {
      setSlotKernel(isa);
      const sim::RunResult run = sim::runExperiment(cfg, factory, 42, 0);
      const std::string label =
          std::string(f.name) + " " + slotKernelIsaName(isa);
      EXPECT_EQ(run.receptionSlots(), oracle.receptionSlots()) << label;
      EXPECT_EQ(run.receptionSlotByNode(), oracle.receptionSlotByNode())
          << label;
      EXPECT_EQ(run.transmissionSlots(), oracle.transmissionSlots()) << label;
      EXPECT_EQ(run.attemptedPairs(), oracle.attemptedPairs()) << label;
      EXPECT_EQ(run.deliveredPairs(), oracle.deliveredPairs()) << label;
    }
  }
}

}  // namespace
}  // namespace nsmodel::net
