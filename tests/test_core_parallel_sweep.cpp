// End-to-end determinism of the sweep drivers in bench/bench_common.hpp:
// the cached + parallel accelerated path must be bit-identical to the
// uncached serial reference path, cell by cell.
#include "bench/bench_common.hpp"

#include <gtest/gtest.h>

namespace nsmodel::bench {
namespace {

BenchOptions tinyOptions() {
  BenchOptions opts;
  opts.fast = true;       // 3 densities x 10 probabilities
  opts.replications = 2;  // keep the uncached arm cheap
  return opts;
}

using Sweep = std::vector<std::vector<sim::MetricAggregate>>;

void expectSameSweep(const Sweep& a, const Sweep& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      // Bitwise equality, not tolerance: the accelerated sweep replays
      // the identical RNG streams, so every double must match exactly.
      EXPECT_EQ(a[i][j].stats.mean, b[i][j].stats.mean) << i << "," << j;
      EXPECT_EQ(a[i][j].stats.stddev, b[i][j].stats.stddev);
      EXPECT_EQ(a[i][j].stats.count, b[i][j].stats.count);
      EXPECT_EQ(a[i][j].definedFraction, b[i][j].definedFraction);
    }
  }
}

TEST(ParallelSweep, CachedParallelSweepIsBitIdenticalToSerialUncached) {
  const BenchOptions opts = tinyOptions();
  const auto spec = core::MetricSpec::reachabilityUnderLatency(5.0);
  const Sweep reference = simSweep(opts, spec, SweepAccel{});
  sim::ScenarioCache cache;
  const Sweep accelerated = simSweep(opts, spec, SweepAccel{&cache, true});
  expectSameSweep(reference, accelerated);
  // Topologies were shared across the p-axis: one build per
  // (density, replication) instead of one per (density, p, replication).
  // The replication-major sweep fetches each scenario exactly once and
  // holds it for the whole p-axis, so a single sweep records no cache
  // hits; a second sweep over the same axes must hit every entry.
  EXPECT_EQ(cache.size(),
            opts.rhos().size() * static_cast<std::size_t>(opts.replications));
  EXPECT_EQ(cache.hits(), 0u);
  const Sweep again = simSweep(opts, spec, SweepAccel{&cache, true});
  expectSameSweep(reference, again);
  EXPECT_EQ(cache.size(),
            opts.rhos().size() * static_cast<std::size_t>(opts.replications));
  EXPECT_GT(cache.hits(), 0u);
}

TEST(ParallelSweep, CacheAloneAndParallelAloneAgreeWithReference) {
  const BenchOptions opts = tinyOptions();
  const auto spec = core::MetricSpec::energyUnderReachability(0.9);
  const Sweep reference = simSweep(opts, spec, SweepAccel{});
  sim::ScenarioCache cacheOnly;
  expectSameSweep(reference,
                  simSweep(opts, spec, SweepAccel{&cacheOnly, false}));
  expectSameSweep(reference, simSweep(opts, spec, SweepAccel{nullptr, true}));
}

TEST(ParallelSweep, ParallelReplicationsMatchSerialReplications) {
  const core::NetworkModel model = paperModel(30.0);
  const auto spec = core::MetricSpec::reachabilityUnderLatency(5.0);
  const auto serial = model.measure(0.5, spec, 42, 6, nullptr,
                                    /*parallelReplications=*/false);
  const auto parallel = model.measure(0.5, spec, 42, 6, nullptr,
                                      /*parallelReplications=*/true);
  EXPECT_EQ(serial.stats.mean, parallel.stats.mean);
  EXPECT_EQ(serial.stats.stddev, parallel.stats.stddev);
  EXPECT_EQ(serial.definedFraction, parallel.definedFraction);
}

TEST(ParallelSweep, ParallelAnalyticOptimizeMatchesSerial) {
  const core::NetworkModel model = paperModel(40.0);
  const auto spec = core::MetricSpec::latencyUnderReachability(0.9);
  const auto serial =
      model.optimize(spec, core::ProbabilityGrid{0.05, 1.0, 0.05},
                     analytic::RealKPolicy::Interpolate, /*parallel=*/false);
  const auto parallel =
      model.optimize(spec, core::ProbabilityGrid{0.05, 1.0, 0.05},
                     analytic::RealKPolicy::Interpolate, /*parallel=*/true);
  ASSERT_EQ(serial.has_value(), parallel.has_value());
  if (serial) {
    EXPECT_EQ(serial->probability, parallel->probability);
    EXPECT_EQ(serial->value, parallel->value);
  }
}

}  // namespace
}  // namespace nsmodel::bench
