#include "net/channel.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "support/error.hpp"

namespace nsmodel::net {
namespace {

using Delivery = std::pair<NodeId, NodeId>;  // (receiver, sender)

/// Line of nodes at x = 0..n-1; range picks who hears whom.
Deployment lineDeployment(std::size_t n) {
  std::vector<geom::Vec2> positions;
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back({static_cast<double>(i), 0.0});
  }
  return Deployment(std::move(positions), 0, static_cast<double>(n));
}

std::vector<Delivery> resolve(Channel& channel, const Topology& topo,
                              const std::vector<NodeId>& transmitters,
                              SlotOutcome* outcome = nullptr) {
  std::vector<Delivery> deliveries;
  const SlotOutcome out = channel.resolveSlot(
      topo, transmitters, [&deliveries](NodeId r, NodeId s) {
        deliveries.emplace_back(r, s);
      });
  if (outcome != nullptr) *outcome = out;
  return deliveries;
}

TEST(ChannelModelName, AllNames) {
  EXPECT_STREQ(channelModelName(ChannelModel::CollisionFree), "CFM");
  EXPECT_STREQ(channelModelName(ChannelModel::CollisionAware), "CAM");
  EXPECT_STREQ(channelModelName(ChannelModel::CarrierSenseAware), "CAM-CS");
}

TEST(MakeChannel, ReportsItsModel) {
  for (auto model :
       {ChannelModel::CollisionFree, ChannelModel::CollisionAware,
        ChannelModel::CarrierSenseAware}) {
    EXPECT_EQ(makeChannel(model)->model(), model);
  }
}

TEST(CollisionFree, DeliversToAllNeighbors) {
  const Deployment dep = lineDeployment(5);
  const Topology topo(dep, 1.0);
  auto channel = makeChannel(ChannelModel::CollisionFree);
  SlotOutcome outcome;
  const auto deliveries = resolve(*channel, topo, {2}, &outcome);
  std::set<Delivery> got(deliveries.begin(), deliveries.end());
  EXPECT_EQ(got, (std::set<Delivery>{{1, 2}, {3, 2}}));
  EXPECT_EQ(outcome.deliveries, 2u);
  EXPECT_EQ(outcome.lostReceivers, 0u);
}

TEST(CollisionFree, ConcurrentTransmissionsAllSucceed) {
  const Deployment dep = lineDeployment(4);
  const Topology topo(dep, 1.0);
  auto channel = makeChannel(ChannelModel::CollisionFree);
  // Nodes 1 and 2 transmit; node 1's neighbours are {0,2}, node 2's {1,3}.
  const auto deliveries = resolve(*channel, topo, {1, 2});
  EXPECT_EQ(deliveries.size(), 4u);  // every (tx, neighbour) pair delivers
}

TEST(CollisionAware, SingleTransmitterDelivers) {
  const Deployment dep = lineDeployment(3);
  const Topology topo(dep, 1.0);
  auto channel = makeChannel(ChannelModel::CollisionAware);
  SlotOutcome outcome;
  const auto deliveries = resolve(*channel, topo, {1}, &outcome);
  std::set<Delivery> got(deliveries.begin(), deliveries.end());
  EXPECT_EQ(got, (std::set<Delivery>{{0, 1}, {2, 1}}));
  EXPECT_EQ(outcome.lostReceivers, 0u);
}

TEST(CollisionAware, TwoTransmittersCollideAtCommonNeighbor) {
  // 0 and 2 transmit; node 1 hears both -> collision (Assumption 6).
  const Deployment dep = lineDeployment(3);
  const Topology topo(dep, 1.0);
  auto channel = makeChannel(ChannelModel::CollisionAware);
  SlotOutcome outcome;
  const auto deliveries = resolve(*channel, topo, {0, 2}, &outcome);
  EXPECT_TRUE(deliveries.empty());
  EXPECT_EQ(outcome.lostReceivers, 1u);  // node 1 lost everything
}

TEST(CollisionAware, DisjointNeighborhoodsBothDeliver) {
  // 0 and 3 transmit on a 5-line: node 1 hears only 0, node 2 hears only 3
  // ... wait, node 2 neighbours {1, 3}; only 3 transmits -> delivers.
  const Deployment dep = lineDeployment(5);
  const Topology topo(dep, 1.0);
  auto channel = makeChannel(ChannelModel::CollisionAware);
  const auto deliveries = resolve(*channel, topo, {0, 3});
  std::set<Delivery> got(deliveries.begin(), deliveries.end());
  EXPECT_EQ(got, (std::set<Delivery>{{1, 0}, {2, 3}, {4, 3}}));
}

TEST(CollisionAware, TransmitterCannotReceive) {
  // 0 and 1 transmit; each is the other's only transmitting neighbour but
  // half-duplex forbids reception while transmitting.
  const Deployment dep = lineDeployment(2);
  const Topology topo(dep, 1.0);
  auto channel = makeChannel(ChannelModel::CollisionAware);
  const auto deliveries = resolve(*channel, topo, {0, 1});
  EXPECT_TRUE(deliveries.empty());
}

TEST(CollisionAware, ExactlyOneOfManyNeighborsRequired) {
  // Star: centre 0 with three leaves in range; two leaves transmit.
  std::vector<geom::Vec2> positions{
      {0, 0}, {1, 0}, {0, 1}, {-1, 0}};
  const Deployment dep(std::move(positions), 0, 5.0);
  const Topology topo(dep, 1.0);
  auto channel = makeChannel(ChannelModel::CollisionAware);
  SlotOutcome outcome;
  const auto deliveries = resolve(*channel, topo, {1, 2}, &outcome);
  // Centre hears 2 transmitters -> lost. Leaves 1, 2 are transmitting;
  // leaf 3 hears only the centre (silent) -> nothing.
  EXPECT_TRUE(deliveries.empty());
  EXPECT_EQ(outcome.lostReceivers, 1u);
}

TEST(CollisionAware, RepeatSlotsReuseScratchCorrectly) {
  const Deployment dep = lineDeployment(4);
  const Topology topo(dep, 1.0);
  auto channel = makeChannel(ChannelModel::CollisionAware);
  // Slot 1: collision at node 1.
  auto first = resolve(*channel, topo, {0, 2});
  // Slot 2: clean single transmission must not see stale counts.
  auto second = resolve(*channel, topo, {0});
  EXPECT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0], (Delivery{1, 0}));
  // Slot 3: empty transmitter set.
  auto third = resolve(*channel, topo, {});
  EXPECT_TRUE(third.empty());
}

TEST(CarrierSense, RequiresCsTopology) {
  const Deployment dep = lineDeployment(3);
  const Topology topo(dep, 1.0);  // no cs factor
  auto channel = makeChannel(ChannelModel::CarrierSenseAware);
  EXPECT_THROW(resolve(*channel, topo, {0}), nsmodel::Error);
}

TEST(CarrierSense, SingleTransmitterStillDelivers) {
  const Deployment dep = lineDeployment(3);
  const Topology topo(dep, 1.0, 2.0);
  auto channel = makeChannel(ChannelModel::CarrierSenseAware);
  const auto deliveries = resolve(*channel, topo, {1});
  EXPECT_EQ(deliveries.size(), 2u);
}

TEST(CarrierSense, AnnulusTransmitterDestroysReception) {
  // Line 0-1-2-3: node 3 transmits to... consider receiver 1: transmitter
  // 0 in range; transmitter 3 is at distance 2 (within cs range 2, outside
  // tx range 1) -> reception at 1 destroyed under CAM-CS but fine in CAM.
  const Deployment dep = lineDeployment(4);
  const Topology topoCs(dep, 1.0, 2.0);
  auto cam = makeChannel(ChannelModel::CollisionAware);
  auto cs = makeChannel(ChannelModel::CarrierSenseAware);
  const auto camDeliveries = resolve(*cam, topoCs, {0, 3});
  const auto csDeliveries = resolve(*cs, topoCs, {0, 3});
  // CAM: 1 hears only 0 -> delivered; 2 hears only 3 -> delivered.
  EXPECT_EQ(camDeliveries.size(), 2u);
  // CAM-CS: 1 is within 2 of transmitter 3; 2 is within 2 of 0 -> both lost.
  EXPECT_TRUE(csDeliveries.empty());
}

TEST(CarrierSense, FarApartTransmittersUnaffected) {
  const Deployment dep = lineDeployment(8);
  const Topology topo(dep, 1.0, 2.0);
  auto channel = makeChannel(ChannelModel::CarrierSenseAware);
  // Transmitters 0 and 7: no receiver is within cs range of both.
  const auto deliveries = resolve(*channel, topo, {0, 7});
  std::set<Delivery> got(deliveries.begin(), deliveries.end());
  EXPECT_EQ(got, (std::set<Delivery>{{1, 0}, {6, 7}}));
}

TEST(CarrierSense, NeverDeliversMoreThanCam) {
  // Property: on the same transmitter set, CAM-CS deliveries form a subset
  // of CAM deliveries.
  support::Rng rng(1);
  const Deployment dep = Deployment::paperDisk(rng, 4, 1.0, 30.0);
  const Topology topo(dep, 1.0, 2.0);
  auto cam = makeChannel(ChannelModel::CollisionAware);
  auto cs = makeChannel(ChannelModel::CarrierSenseAware);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<NodeId> transmitters;
    for (NodeId id = 0; id < dep.nodeCount(); ++id) {
      if (rng.bernoulli(0.02)) transmitters.push_back(id);
    }
    const auto camD = resolve(*cam, topo, transmitters);
    const auto csD = resolve(*cs, topo, transmitters);
    const std::set<Delivery> camSet(camD.begin(), camD.end());
    for (const Delivery& d : csD) {
      EXPECT_TRUE(camSet.count(d)) << "CS delivered a pair CAM did not";
    }
    EXPECT_LE(csD.size(), camD.size());
  }
}

}  // namespace
}  // namespace nsmodel::net
