#include "sim/async_experiment.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "protocols/flooding.hpp"
#include "protocols/probabilistic.hpp"
#include "support/error.hpp"

namespace nsmodel::sim {
namespace {

ExperimentConfig smallConfig(double rho) {
  ExperimentConfig cfg;
  cfg.rings = 4;
  cfg.neighborDensity = rho;
  return cfg;
}

protocols::ProtocolFactory pb(double p) {
  return [p] {
    return std::make_unique<protocols::ProbabilisticBroadcast>(p);
  };
}

protocols::ProtocolFactory flooding() {
  return [] { return std::make_unique<protocols::SimpleFlooding>(); };
}

TEST(AsyncExperiment, IsDeterministicPerStream) {
  const auto a = runAsyncExperiment(smallConfig(30.0), pb(0.4), 42, 5);
  const auto b = runAsyncExperiment(smallConfig(30.0), pb(0.4), 42, 5);
  EXPECT_EQ(a.reachedCount(), b.reachedCount());
  EXPECT_EQ(a.totalBroadcasts(), b.totalBroadcasts());
  EXPECT_DOUBLE_EQ(a.averageSuccessRate(), b.averageSuccessRate());
}

TEST(AsyncExperiment, CfmFloodingReachesEveryConnectedNode) {
  ExperimentConfig cfg = smallConfig(30.0);
  cfg.channel = net::ChannelModel::CollisionFree;
  const auto run = runAsyncExperiment(cfg, flooding(), 1, 0);
  EXPECT_DOUBLE_EQ(run.finalReachability(), 1.0);
  EXPECT_EQ(run.totalBroadcasts(), run.nodeCount());
  EXPECT_DOUBLE_EQ(run.averageSuccessRate(), 1.0);
}

TEST(AsyncExperiment, StructuralInvariants) {
  const auto run = runAsyncExperiment(smallConfig(50.0), pb(0.3), 2, 0);
  EXPECT_LE(run.reachedCount(), run.nodeCount());
  EXPECT_LE(run.totalBroadcasts(), run.reachedCount());
  EXPECT_GE(run.totalBroadcasts(), 1u);
  EXPECT_GE(run.averageSuccessRate(), 0.0);
  EXPECT_LE(run.averageSuccessRate(), 1.0);
}

TEST(AsyncExperiment, ReachabilityTimeSeriesIsMonotone) {
  const auto run = runAsyncExperiment(smallConfig(40.0), pb(0.5), 3, 0);
  double prev = 0.0;
  for (double t = 0.0; t <= 30.0; t += 0.5) {
    const double cur = run.reachabilityAfter(t);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_DOUBLE_EQ(prev, run.finalReachability());
}

TEST(AsyncExperiment, LatencyInvertsReachability) {
  const auto run = runAsyncExperiment(smallConfig(40.0), pb(0.5), 4, 0);
  const double half = run.finalReachability() * 0.5;
  const auto latency = run.latencyForReachability(half);
  ASSERT_TRUE(latency.has_value());
  EXPECT_GE(run.reachabilityAfter(*latency), half - 1e-9);
  EXPECT_FALSE(run.latencyForReachability(1.0).has_value() &&
               run.finalReachability() < 1.0);
}

TEST(AsyncExperiment, HarsherThanAlignedChannel) {
  // Interval-overlap collisions destroy strictly more receptions than
  // exact-slot collisions; compare mean success rate for flooding.
  const ExperimentConfig cfg = smallConfig(60.0);
  double alignedRate = 0.0, asyncRate = 0.0;
  for (std::uint64_t s = 0; s < 8; ++s) {
    alignedRate += runExperiment(cfg, flooding(), 42, s).averageSuccessRate();
    asyncRate +=
        runAsyncExperiment(cfg, flooding(), 42, s).averageSuccessRate();
  }
  EXPECT_LT(asyncRate, alignedRate);
}

TEST(AsyncExperiment, ZeroProbabilityOnlySourceTransmits) {
  const auto run = runAsyncExperiment(smallConfig(40.0), pb(0.0), 5, 0);
  EXPECT_EQ(run.totalBroadcasts(), 1u);
  // The lone source transmission cannot collide: all neighbours receive.
  EXPECT_DOUBLE_EQ(run.averageSuccessRate(), 1.0);
}

TEST(AsyncExperiment, CarrierSenseIsHarsherThanCam) {
  ExperimentConfig cam = smallConfig(60.0);
  ExperimentConfig cs = cam;
  cs.channel = net::ChannelModel::CarrierSenseAware;
  double camReach = 0.0, csReach = 0.0;
  for (std::uint64_t s = 0; s < 6; ++s) {
    camReach += runAsyncExperiment(cam, pb(0.3), 42, s).reachabilityAfter(5.0);
    csReach += runAsyncExperiment(cs, pb(0.3), 42, s).reachabilityAfter(5.0);
  }
  EXPECT_LE(csReach, camReach + 0.02);
}

TEST(AsyncExperiment, MaxPhasesBoundsTheRun) {
  ExperimentConfig cfg = smallConfig(40.0);
  cfg.maxPhases = 2;
  const auto run = runAsyncExperiment(cfg, flooding(), 6, 0);
  // Nothing can be received after the horizon plus one in-flight interval.
  EXPECT_LE(run.reachabilityAfter(3.0), run.finalReachability());
  EXPECT_DOUBLE_EQ(run.reachabilityAfter(3.0), run.finalReachability());
}

TEST(AsyncRunResult, QueryValidation) {
  const auto run = runAsyncExperiment(smallConfig(30.0), pb(0.3), 7, 0);
  EXPECT_THROW(run.reachabilityAfter(-1.0), nsmodel::Error);
  EXPECT_THROW(run.latencyForReachability(0.0), nsmodel::Error);
  EXPECT_THROW(run.latencyForReachability(1.2), nsmodel::Error);
}

}  // namespace
}  // namespace nsmodel::sim
