#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "support/error.hpp"

namespace nsmodel::support {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(12345);
  SplitMix64 b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(SplitMix64, KnownVector) {
  // Reference value for seed 0 from the published splitmix64 algorithm.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, StreamsAreIndependentOfEachOther) {
  Rng s0 = Rng::forStream(42, 0);
  Rng s1 = Rng::forStream(42, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (s0.next() == s1.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, StreamsAreReproducible) {
  Rng a = Rng::forStream(42, 7);
  Rng b = Rng::forStream(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(4);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformRangeRejectsInvertedBounds) {
  Rng rng(6);
  EXPECT_THROW(rng.uniform(1.0, 0.0), Error);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(7), 7u);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(9);
  EXPECT_THROW(rng.below(0), Error);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng rng(10);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.below(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
  }
}

TEST(Rng, InRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.inRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values appear
}

TEST(Rng, InRangeSingleton) {
  Rng rng(12);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.inRange(5, 5), 5);
}

TEST(Rng, BernoulliDegenerateCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));  // clamped
    EXPECT_TRUE(rng.bernoulli(1.5));    // clamped
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(14);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(15);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(16);
  EXPECT_THROW(rng.exponential(0.0), Error);
  EXPECT_THROW(rng.exponential(-1.0), Error);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonMeanAndVarianceMatchLambda) {
  Rng rng(18);
  const double lambda = 7.5;
  const int n = 50000;
  double sum = 0.0, sumSq = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto v = static_cast<double>(rng.poisson(lambda));
    sum += v;
    sumSq += v * v;
  }
  const double mean = sum / n;
  const double var = sumSq / n - mean * mean;
  EXPECT_NEAR(mean, lambda, 0.1);
  EXPECT_NEAR(var, lambda, 0.25);
}

TEST(Rng, PoissonLargeLambdaViaChunking) {
  Rng rng(19);
  const double lambda = 1200.0;  // beyond the exp underflow threshold
  const int n = 2000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(lambda));
  EXPECT_NEAR(sum / n, lambda, 5.0);
}

TEST(Rng, PoissonNegativeLambdaThrows) {
  Rng rng(20);
  EXPECT_THROW(rng.poisson(-1.0), Error);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace nsmodel::support
