// Memory-budget admission control, the byte-count parser, durable-IO
// primitives, and peakRssMb.
//
// The admission contract (support/resource.hpp) is that an over-budget
// run shape is refused with a structured ResourceError — never a raw
// std::bad_alloc — after degrading stepwise: batch width halves toward
// 1, shard counts step down toward 1, and only then does the request
// fail.  The estimators are checked for the properties the contract
// leans on (monotonicity in every axis), not for exact byte counts,
// which DESIGN.md §13 compares against measured RSS instead.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "protocols/probabilistic.hpp"
#include "sim/experiment.hpp"
#include "sim/monte_carlo.hpp"
#include "support/error.hpp"
#include "support/fsio.hpp"
#include "support/resource.hpp"

namespace {

using namespace nsmodel;
using support::RunShape;

/// Restores the unlimited default on scope exit so test order and other
/// suites never see a leftover budget.
struct BudgetGuard {
  ~BudgetGuard() { support::setMemBudgetOverride(-1); }
};

RunShape mediumShape() {
  RunShape shape;
  shape.nodes = 5000;
  shape.avgNeighbors = 60.0;
  shape.carrierSense = false;
  shape.maxSlots = 600;
  return shape;
}

// ---------------------------------------------------------------------------
// parseMemBytes.

TEST(ParseMemBytes, AcceptsPlainAndSuffixedCounts) {
  EXPECT_EQ(support::parseMemBytes("t", "0"), 0u);
  EXPECT_EQ(support::parseMemBytes("t", "1048576"), 1048576u);
  EXPECT_EQ(support::parseMemBytes("t", "512K"), 512ull * 1024);
  EXPECT_EQ(support::parseMemBytes("t", "64m"), 64ull << 20);
  EXPECT_EQ(support::parseMemBytes("t", "2G"), 2ull << 30);
}

TEST(ParseMemBytes, RejectsGarbageSignsAndOverflow) {
  for (const char* bad : {"", " ", "abc", "-1", "+5", "12MB", "1.5G", "G",
                          "0x10", "99999999999999999999",
                          "99999999999999999999G", "18446744073709551615G",
                          "12 K", "1K2"}) {
    EXPECT_THROW(support::parseMemBytes("t", bad), ConfigError) << bad;
  }
}

TEST(MemBudget, OverrideWinsOverEnvironmentAndResets) {
  BudgetGuard guard;
  support::setMemBudgetOverride(12345);
  EXPECT_EQ(support::memBudgetBytes(), 12345u);
  support::setMemBudgetOverride(0);  // explicitly unlimited
  EXPECT_EQ(support::memBudgetBytes(), 0u);
}

// ---------------------------------------------------------------------------
// Estimators: monotone in every axis the admission logic varies.

TEST(Estimators, ScaleWithNodesShardsLanesAndCarrierSense) {
  const RunShape base = mediumShape();
  RunShape bigger = base;
  bigger.nodes *= 4;
  EXPECT_GT(support::estimateScenarioBytes(bigger),
            support::estimateScenarioBytes(base));
  EXPECT_GT(support::estimateFlatRunBytes(bigger),
            support::estimateFlatRunBytes(base));

  RunShape cs = base;
  cs.carrierSense = true;
  EXPECT_GT(support::estimateScenarioBytes(cs),
            support::estimateScenarioBytes(base));

  EXPECT_GT(support::estimateBatchRunBytes(base, 8),
            support::estimateBatchRunBytes(base, 2));
  EXPECT_GT(support::estimateShardedRunBytes(base, 8),
            support::estimateShardedRunBytes(base, 2));
  EXPECT_GT(support::estimateScenarioBytes(base), 0u);
}

// ---------------------------------------------------------------------------
// Admission: degrade stepwise, refuse structurally.

TEST(Admission, UnlimitedBudgetAdmitsTheRequest) {
  const RunShape shape = mediumShape();
  EXPECT_EQ(support::admitShardCount(shape, 8, 0), 8);
  EXPECT_EQ(support::admitBatchWidth(shape, 16, 4, 0), 16);
}

TEST(Admission, GenerousBudgetAdmitsTheRequest) {
  const RunShape shape = mediumShape();
  const std::uint64_t generous = 64ull << 30;
  EXPECT_EQ(support::admitShardCount(shape, 8, generous), 8);
  EXPECT_EQ(support::admitBatchWidth(shape, 16, 4, generous), 16);
}

TEST(Admission, TightBudgetDegradesShardsStepwise) {
  const RunShape shape = mediumShape();
  // A budget that fits a few shards but not eight: pick the footprint of
  // three shards, so the request degrades into [1, 8) instead of
  // refusing.
  const std::uint64_t budget = support::estimateShardedRunBytes(shape, 3);
  const int admitted = support::admitShardCount(shape, 8, budget);
  EXPECT_GE(admitted, 1);
  EXPECT_LT(admitted, 8);
  EXPECT_LE(support::estimateShardedRunBytes(shape, admitted), budget);
}

TEST(Admission, TightBudgetHalvesBatchWidth) {
  const RunShape shape = mediumShape();
  const std::uint64_t budget = 2 * support::estimateBatchRunBytes(shape, 4);
  const int admitted = support::admitBatchWidth(shape, 32, 2, budget);
  EXPECT_GE(admitted, 1);
  EXPECT_LT(admitted, 32);
  EXPECT_LE(static_cast<std::uint64_t>(2) *
                support::estimateBatchRunBytes(shape, admitted),
            budget);
}

TEST(Admission, ImpossibleBudgetRefusesWithResourceError) {
  const RunShape shape = mediumShape();
  try {
    support::admitShardCount(shape, 4, 1024);
    FAIL() << "expected ResourceError";
  } catch (const ResourceError& e) {
    EXPECT_EQ(e.category(), ErrorCategory::Resource);
    EXPECT_FALSE(e.retryable());
    // The message names the budget knobs so the caller can act on it.
    EXPECT_NE(std::string(e.what()).find("budget"), std::string::npos);
  }
  EXPECT_THROW(support::admitBatchWidth(shape, 4, 1, 1024), ResourceError);
}

// Drivers consult the budget before allocating: a hopeless budget turns
// the whole Monte-Carlo call into a ResourceError up front.
TEST(Admission, MonteCarloRefusesUnderHopelessBudget) {
  BudgetGuard guard;
  sim::MonteCarloConfig mc;
  mc.experiment.rings = 4;
  mc.experiment.neighborDensity = 25.0;
  mc.experiment.maxPhases = 40;
  mc.replications = 2;
  mc.parallel = false;
  support::setMemBudgetOverride(1024);
  EXPECT_THROW(
      sim::monteCarlo(
          mc, [] { return std::make_unique<protocols::ProbabilisticBroadcast>(
                       0.5); },
          [](const sim::RunResult& r) {
            return std::vector<double>{r.finalReachability()};
          }),
      ResourceError);
}

TEST(Admission, MonteCarloRunsUnderAmpleBudget) {
  BudgetGuard guard;
  sim::MonteCarloConfig mc;
  mc.experiment.rings = 4;
  mc.experiment.neighborDensity = 25.0;
  mc.experiment.maxPhases = 40;
  mc.replications = 2;
  mc.parallel = false;
  support::setMemBudgetOverride(4ll << 30);
  const auto aggs = sim::monteCarlo(
      mc, [] { return std::make_unique<protocols::ProbabilisticBroadcast>(
                   0.5); },
      [](const sim::RunResult& r) {
        return std::vector<double>{r.finalReachability()};
      });
  ASSERT_EQ(aggs.size(), 1u);
  EXPECT_GT(aggs[0].stats.mean, 0.0);
}

// ---------------------------------------------------------------------------
// peakRssMb.

TEST(PeakRss, ReportsAPlausiblePositiveValueOnSupportedPlatforms) {
#if defined(__linux__) || defined(__APPLE__)
  const double mb = support::peakRssMb();
  EXPECT_GT(mb, 1.0);
  EXPECT_LT(mb, 1024.0 * 1024.0);
#else
  EXPECT_GE(support::peakRssMb(), 0.0);
#endif
}

// ---------------------------------------------------------------------------
// fsio primitives.

class TempFile {
 public:
  explicit TempFile(const char* tag) {
    path_ = (std::filesystem::temp_directory_path() /
             (std::string("nsmodel_fsio_") + tag + ".txt"))
                .string();
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Fsio, Crc32MatchesTheIeeeCheckValue) {
  // The classic check value of the reflected IEEE polynomial.
  EXPECT_EQ(support::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(support::crc32("", 0), 0u);
  // Chunked == one-shot.
  const std::uint32_t half = support::crc32("12345", 5);
  EXPECT_EQ(support::crc32("6789", 4, half), 0xCBF43926u);
}

TEST(Fsio, WriteFileAtomicRoundTripsAndReplaces) {
  TempFile file("atomic");
  support::writeFileAtomic(file.path(), "first\n");
  EXPECT_EQ(support::readFile(file.path()), "first\n");
  EXPECT_TRUE(support::fileReadable(file.path()));
  support::writeFileAtomic(file.path(), "second, longer contents\n");
  EXPECT_EQ(support::readFile(file.path()), "second, longer contents\n");
  // No tmp residue.
  EXPECT_FALSE(std::filesystem::exists(file.path() + ".tmp"));
}

TEST(Fsio, ErrorsAreStructuredIoErrors) {
  EXPECT_THROW(support::readFile("/nonexistent/nsmodel-fsio-test"), IoError);
  EXPECT_THROW(
      support::writeFileAtomic("/nonexistent-dir/nsmodel-fsio-test", "x"),
      IoError);
  EXPECT_FALSE(support::fileReadable("/nonexistent/nsmodel-fsio-test"));
}

}  // namespace
