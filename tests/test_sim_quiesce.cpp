// The quiesce protocol of the sharded engine's neighbor-pair
// synchronisation (DESIGN.md §14.4), under deliberately drifted shards.
//
// With per-neighbor gates the shards of a gang are NOT in lockstep: a
// stalled shard lets the others run ahead to the drift bound before they
// park.  A checkpoint must nevertheless capture a globally consistent
// state, so every shard drains to the due slot and parks on the capture
// gate while shard 0 snapshots.  This suite forces maximal drift with
// the test-only straggler injector and demands, across
// {CFM, CAM, CAM-CS, SINR} x shard counts {1, 3, 7}:
//
//   * the drifted run's result and every snapshot it emits are
//     byte-identical to an undrifted run's (the quiesce points land at
//     the same slots with the same state, drift or no drift);
//   * every such snapshot resumes to the byte-identical final result;
//   * cancellation raised while shards are parked at quiesce and drift
//     rendezvous points unwinds the whole gang (no deadlock, one
//     retryable TimeoutError) and leaves the engine reusable.
//
// The execution mode is pinned to the thread gang — drift does not
// exist in the cooperative fallback — except for the single-shard cells,
// which exercise the gate-free path's checkpoint cadence for contrast.
// The file is grouped with the *_threads binaries so the thread-
// sanitizer CI lane proves the quiesce handshake race-free.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "protocols/probabilistic.hpp"
#include "sim/checkpoint.hpp"
#include "sim/experiment.hpp"
#include "sim/scenario_cache.hpp"
#include "sim/sharded_engine.hpp"
#include "support/deadline.hpp"
#include "support/error.hpp"

namespace {

using namespace nsmodel;

/// Pins the thread gang and clears the straggler injection on exit.
struct QuiesceGuard {
  QuiesceGuard() { sim::setShardExecOverride(sim::ShardExec::Threads); }
  ~QuiesceGuard() {
    sim::setShardStallForTesting(-1, 0);
    sim::setShardExecOverride(sim::ShardExec::Auto);
  }
};

struct QuiesceCase {
  std::string name;
  net::ChannelModel channel = net::ChannelModel::CollisionAware;
  int shards = 1;
};

std::vector<QuiesceCase> quiesceMatrix() {
  const struct {
    const char* name;
    net::ChannelModel channel;
  } channels[] = {
      {"cfm", net::ChannelModel::CollisionFree},
      {"cam", net::ChannelModel::CollisionAware},
      {"cs", net::ChannelModel::CarrierSenseAware},
      {"sinr", net::ChannelModel::Sinr},
  };
  std::vector<QuiesceCase> cases;
  for (const auto& ch : channels) {
    for (const int shards : {1, 3, 7}) {
      cases.push_back({std::string(ch.name) + "_s" + std::to_string(shards),
                       ch.channel, shards});
    }
  }
  return cases;
}

sim::ExperimentConfig configFor(const QuiesceCase& c) {
  sim::ExperimentConfig cfg;
  cfg.rings = 4;
  cfg.neighborDensity = 25.0;
  cfg.maxPhases = 40;
  cfg.channel = c.channel;
  // Clock drift keeps spill-over interferers in the agenda, so the
  // snapshots carry non-trivial interferer chains across the quiesce.
  cfg.fault.faultSeed = 13;
  cfg.fault.drift.maxSkewSlots = 0.4;
  return cfg;
}

void expectIdentical(const sim::RunResult& a, const sim::RunResult& b,
                     const std::string& label) {
  EXPECT_EQ(a.receptionSlots(), b.receptionSlots()) << label;
  EXPECT_EQ(a.transmissionSlots(), b.transmissionSlots()) << label;
  EXPECT_EQ(a.receptionSlotByNode(), b.receptionSlotByNode()) << label;
  EXPECT_EQ(a.attemptedPairs(), b.attemptedPairs()) << label;
  EXPECT_EQ(a.deliveredPairs(), b.deliveredPairs()) << label;
  ASSERT_EQ(a.phases().size(), b.phases().size()) << label;
  for (std::size_t i = 0; i < a.phases().size(); ++i) {
    EXPECT_EQ(a.phases()[i].transmissions, b.phases()[i].transmissions)
        << label << " phase " << i;
    EXPECT_EQ(a.phases()[i].newReceivers, b.phases()[i].newReceivers)
        << label << " phase " << i;
    EXPECT_EQ(a.phases()[i].deliveries, b.phases()[i].deliveries)
        << label << " phase " << i;
    EXPECT_EQ(a.phases()[i].lostReceivers, b.phases()[i].lostReceivers)
        << label << " phase " << i;
  }
}

class QuiesceMatrix : public ::testing::TestWithParam<QuiesceCase> {};

// Undrifted and maximally drifted gangs emit byte-identical snapshot
// sequences, and every drifted snapshot resumes bit-identically.
TEST_P(QuiesceMatrix, DriftedSnapshotsRestoreBitIdentically) {
  QuiesceGuard guard;
  const QuiesceCase& c = GetParam();
  const sim::ExperimentConfig cfg = configFor(c);
  const sim::Scenario scenario =
      sim::buildScenario(sim::ScenarioKey::forExperiment(cfg, 42, 0));
  protocols::ProbabilisticBroadcast protocol(0.5);
  sim::ShardedEngine engine(scenario.deployment, scenario.topology, c.shards);

  // Undrifted reference, snapshots and all.
  std::vector<sim::RunCheckpoint> reference;
  sim::RunControl capture;
  capture.checkpointEveryPhases = 2;
  capture.checkpointSink = [&](const sim::RunCheckpoint& cp) {
    reference.push_back(cp);
  };
  support::Rng rng = scenario.protocolRng;
  const sim::RunResult referenceResult =
      engine.run(cfg, protocol, rng, nullptr, &capture);
  ASSERT_FALSE(reference.empty()) << c.name;

  // Same run with the last shard stalled every slot: the other shards
  // drift to the ring bound before each quiesce drains them back.
  sim::setShardStallForTesting(c.shards - 1, 200);
  std::vector<sim::RunCheckpoint> drifted;
  sim::RunControl captureDrifted;
  captureDrifted.checkpointEveryPhases = 2;
  captureDrifted.checkpointSink = [&](const sim::RunCheckpoint& cp) {
    drifted.push_back(cp);
  };
  support::Rng rng2 = scenario.protocolRng;
  const sim::RunResult driftedResult =
      engine.run(cfg, protocol, rng2, nullptr, &captureDrifted);
  sim::setShardStallForTesting(-1, 0);
  expectIdentical(driftedResult, referenceResult, c.name + " drifted run");
  ASSERT_EQ(drifted.size(), reference.size()) << c.name;
  for (std::size_t i = 0; i < drifted.size(); ++i) {
    EXPECT_EQ(drifted[i].serialize(), reference[i].serialize())
        << c.name << " snapshot " << i;
  }

  // Kill-after-every-snapshot: each drifted snapshot resumes to the
  // byte-identical final result.
  for (std::size_t i = 0; i < drifted.size(); ++i) {
    sim::RunControl resume;
    resume.restore = &drifted[i];
    sim::ShardedEngine restored(scenario.deployment, scenario.topology,
                                c.shards);
    protocols::ProbabilisticBroadcast protocol2(0.5);
    support::Rng rng3 = scenario.protocolRng;
    const sim::RunResult resumed =
        restored.run(cfg, protocol2, rng3, nullptr, &resume);
    expectIdentical(resumed, referenceResult,
                    c.name + " resume from snapshot " + std::to_string(i));
  }
}

// Cancellation raised while the gang is spread across quiesce parks and
// drift rendezvous: the stalled shard's deadline check fires while the
// others are parked on its gates, and the abandonment chain must unwind
// them all.  The engine is then immediately reusable.
TEST_P(QuiesceMatrix, CancelUnderDriftUnwindsTheGang) {
  QuiesceGuard guard;
  const QuiesceCase& c = GetParam();
  sim::ExperimentConfig cfg = configFor(c);
  cfg.maxPhases = 300;  // long enough that the deadline fires mid-run
  const sim::Scenario scenario =
      sim::buildScenario(sim::ScenarioKey::forExperiment(cfg, 42, 0));
  protocols::ProbabilisticBroadcast protocol(0.5);
  sim::ShardedEngine engine(scenario.deployment, scenario.topology, c.shards);

  // The stall (2ms per slot) exceeds the deadline (1ms) on its own, so
  // shard 0's first post-sleep deadline check throws no matter how short
  // the broadcast is; the other shards are by then parked at their drift
  // or quiesce waits on shard 0's gates.
  sim::setShardStallForTesting(0, 2000);
  sim::RunControl control;
  control.deadline = support::Deadline::after(0.001);
  control.checkpointEveryPhases = 2;
  std::size_t captured = 0;
  control.checkpointSink = [&](const sim::RunCheckpoint&) { ++captured; };
  {
    support::Rng rng = scenario.protocolRng;
    try {
      engine.run(cfg, protocol, rng, nullptr, &control);
      FAIL() << c.name << ": expected TimeoutError";
    } catch (const TimeoutError& e) {
      EXPECT_TRUE(e.retryable()) << c.name;
    }
  }

  // Stall removed: the same engine completes and matches a fresh one,
  // proving no state (gates included) leaked out of the aborted run.
  sim::setShardStallForTesting(-1, 0);
  support::Rng rng = scenario.protocolRng;
  const sim::RunResult retried = engine.run(cfg, protocol, rng);
  sim::ShardedEngine fresh(scenario.deployment, scenario.topology, c.shards);
  support::Rng rng2 = scenario.protocolRng;
  const sim::RunResult baseline = fresh.run(cfg, protocol, rng2);
  expectIdentical(retried, baseline, c.name + " retry after cancel");
}

INSTANTIATE_TEST_SUITE_P(Matrix, QuiesceMatrix,
                         ::testing::ValuesIn(quiesceMatrix()),
                         [](const auto& info) { return info.param.name; });

}  // namespace
