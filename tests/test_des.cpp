#include "des/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "des/event_queue.hpp"
#include "support/error.hpp"

namespace nsmodel::des {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW(q.nextTime(), nsmodel::Error);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&order] { order.push_back(3); });
  q.push(1.0, [&order] { order.push_back(1); });
  q.push(2.0, [&order] { order.push_back(2); });
  while (!q.empty()) {
    Time at = 0;
    q.pop(at)();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.push(1.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) {
    Time at = 0;
    q.pop(at)();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ReportsEventTime) {
  EventQueue q;
  q.push(4.5, [] {});
  EXPECT_DOUBLE_EQ(q.nextTime(), 4.5);
  Time at = 0;
  q.pop(at);
  EXPECT_DOUBLE_EQ(at, 4.5);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(1.0, [&fired] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(999));
  const EventId id = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double cancel
}

TEST(EventQueue, CancelledEntriesSkippedOnPop) {
  EventQueue q;
  std::vector<int> order;
  const EventId a = q.push(1.0, [&order] { order.push_back(1); });
  q.push(2.0, [&order] { order.push_back(2); });
  q.cancel(a);
  EXPECT_DOUBLE_EQ(q.nextTime(), 2.0);
  Time at = 0;
  q.pop(at)();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueue, RejectsNullAction) {
  EventQueue q;
  EXPECT_THROW(q.push(1.0, nullptr), nsmodel::Error);
}

TEST(Engine, RunsEventsAndAdvancesClock) {
  Engine engine;
  std::vector<double> times;
  engine.scheduleAt(2.0, [&] { times.push_back(engine.now()); });
  engine.scheduleAt(1.0, [&] { times.push_back(engine.now()); });
  const auto fired = engine.run();
  EXPECT_EQ(fired, 2u);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
}

TEST(Engine, EventsScheduleMoreEvents) {
  Engine engine;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 10) engine.scheduleAfter(1.0, chain);
  };
  engine.scheduleAt(0.0, chain);
  engine.run();
  EXPECT_EQ(depth, 10);
  EXPECT_DOUBLE_EQ(engine.now(), 9.0);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine engine;
  double firedAt = -1.0;
  engine.scheduleAt(5.0, [&] {
    engine.scheduleAfter(2.5, [&] { firedAt = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(firedAt, 7.5);
}

TEST(Engine, RejectsPastScheduling) {
  Engine engine;
  engine.scheduleAt(3.0, [] {});
  engine.run();
  EXPECT_THROW(engine.scheduleAt(2.0, [] {}), nsmodel::Error);
  EXPECT_THROW(engine.scheduleAfter(-1.0, [] {}), nsmodel::Error);
}

TEST(Engine, HorizonStopsBeforeLaterEvents) {
  Engine engine;
  int fired = 0;
  engine.scheduleAt(1.0, [&] { ++fired; });
  engine.scheduleAt(10.0, [&] { ++fired; });
  engine.run(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.pendingCount(), 1u);
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, StopHaltsTheLoop) {
  Engine engine;
  int fired = 0;
  engine.scheduleAt(1.0, [&] {
    ++fired;
    engine.stop();
  });
  engine.scheduleAt(2.0, [&] { ++fired; });
  engine.run();
  EXPECT_EQ(fired, 1);
  // A later run resumes with the remaining events.
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, CancelScheduledEvent) {
  Engine engine;
  bool fired = false;
  const EventId id = engine.scheduleAt(1.0, [&] { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.firedCount(), 0u);
}

TEST(Engine, FiredCountAccumulatesAcrossRuns) {
  Engine engine;
  engine.scheduleAt(1.0, [] {});
  engine.run();
  engine.scheduleAt(2.0, [] {});
  engine.run();
  EXPECT_EQ(engine.firedCount(), 2u);
}

TEST(Engine, ManyEventsDrainDeterministically) {
  Engine engine;
  long sum = 0;
  for (int i = 999; i >= 0; --i) {
    engine.scheduleAt(static_cast<Time>(i), [&sum, i] { sum += i; });
  }
  EXPECT_EQ(engine.run(), 1000u);
  EXPECT_EQ(sum, 499500);
}

}  // namespace
}  // namespace nsmodel::des
