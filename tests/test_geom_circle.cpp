#include "geom/circle.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "geom/vec2.hpp"

namespace nsmodel::geom {
namespace {

TEST(LensArea, DisjointCirclesHaveZeroIntersection) {
  EXPECT_DOUBLE_EQ(lensArea(1.0, 1.0, 2.5), 0.0);
  EXPECT_DOUBLE_EQ(lensArea(1.0, 1.0, 2.0), 0.0);  // externally tangent
}

TEST(LensArea, ContainedCircleGivesSmallerDiskArea) {
  EXPECT_DOUBLE_EQ(lensArea(5.0, 1.0, 0.0), M_PI);
  EXPECT_DOUBLE_EQ(lensArea(1.0, 5.0, 0.0), M_PI);  // symmetric
  EXPECT_DOUBLE_EQ(lensArea(5.0, 1.0, 3.0), M_PI);  // still inside
  EXPECT_DOUBLE_EQ(lensArea(5.0, 1.0, 4.0), M_PI);  // internally tangent
}

TEST(LensArea, IdenticalCirclesGiveFullDisk) {
  EXPECT_NEAR(lensArea(2.0, 2.0, 0.0), 4.0 * M_PI, 1e-12);
}

TEST(LensArea, EqualCirclesAtUnitDistanceKnownValue) {
  // Classic result: two unit circles, centres 1 apart:
  // 2 acos(1/2) - (1/2) sqrt(3) per circle contribution.
  const double expected =
      2.0 * std::acos(0.5) - 0.5 * std::sqrt(3.0);
  EXPECT_NEAR(lensArea(1.0, 1.0, 1.0), expected, 1e-12);
}

TEST(LensArea, HalfOverlapAtCenterDistanceZeroPointEstimate) {
  // r1 = r2 = 1, d -> 0 gives pi; d -> 2 gives 0. Monotone decrease.
  double prev = lensArea(1.0, 1.0, 0.0);
  for (double d = 0.1; d <= 2.0; d += 0.1) {
    const double cur = lensArea(1.0, 1.0, d);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(LensArea, SymmetricInRadii) {
  support::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const double r1 = rng.uniform(0.1, 3.0);
    const double r2 = rng.uniform(0.1, 3.0);
    const double d = rng.uniform(0.0, 6.0);
    EXPECT_NEAR(lensArea(r1, r2, d), lensArea(r2, r1, d), 1e-12);
  }
}

TEST(LensArea, BoundedByeSmallerDisk) {
  support::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    const double r1 = rng.uniform(0.1, 3.0);
    const double r2 = rng.uniform(0.1, 3.0);
    const double d = rng.uniform(0.0, 6.0);
    const double area = lensArea(r1, r2, d);
    const double rmin = std::min(r1, r2);
    EXPECT_GE(area, 0.0);
    EXPECT_LE(area, M_PI * rmin * rmin + 1e-12);
  }
}

TEST(LensArea, MatchesMonteCarloEstimate) {
  support::Rng rng(3);
  const double r1 = 2.0, r2 = 1.5, d = 1.8;
  const double exact = lensArea(r1, r2, d);
  // Sample uniformly in circle 2; fraction inside circle 1 estimates the
  // lens area over circle 2's area.
  const int n = 400000;
  int inside = 0;
  for (int i = 0; i < n; ++i) {
    const double rho = r2 * std::sqrt(rng.uniform());
    const double theta = rng.uniform(0.0, 2.0 * M_PI);
    const Vec2 p{d + rho * std::cos(theta), rho * std::sin(theta)};
    if (p.normSquared() <= r1 * r1) ++inside;
  }
  const double estimate =
      static_cast<double>(inside) / n * M_PI * r2 * r2;
  EXPECT_NEAR(exact, estimate, 0.02);
}

TEST(LensArea, ZeroRadiusGivesZero) {
  EXPECT_DOUBLE_EQ(lensArea(0.0, 1.0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(lensArea(1.0, 0.0, 0.5), 0.0);
}

TEST(LensArea, RejectsNegativeArguments) {
  EXPECT_THROW(lensArea(-1.0, 1.0, 0.0), nsmodel::Error);
  EXPECT_THROW(lensArea(1.0, -1.0, 0.0), nsmodel::Error);
  EXPECT_THROW(lensArea(1.0, 1.0, -0.1), nsmodel::Error);
}

TEST(LensArea, NearTangencyIsNumericallyStable) {
  // Just inside external tangency: tiny positive area, no NaN.
  const double area = lensArea(1.0, 1.0, 2.0 - 1e-12);
  EXPECT_GE(area, 0.0);
  EXPECT_TRUE(std::isfinite(area));
  // Just inside internal tangency.
  const double area2 = lensArea(2.0, 1.0, 1.0 + 1e-13);
  EXPECT_TRUE(std::isfinite(area2));
  EXPECT_NEAR(area2, M_PI, 1e-5);
}

TEST(LensArea, ExactExternalTangencyIsZero) {
  // d == r1 + r2 lies on the "disjoint" side of the branch: exactly zero,
  // for equal and unequal radii, including values where r1 + r2 is not
  // exactly representable.
  EXPECT_DOUBLE_EQ(lensArea(1.0, 1.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(lensArea(2.5, 1.5, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(lensArea(0.1, 0.2, 0.1 + 0.2), 0.0);
}

TEST(LensArea, ExactContainmentGivesSmallerDiskArea) {
  // d == |r1 - r2| takes the containment branch: the full smaller disk.
  EXPECT_DOUBLE_EQ(lensArea(2.0, 1.0, 1.0), M_PI);
  EXPECT_DOUBLE_EQ(lensArea(1.0, 2.0, 1.0), M_PI);
  EXPECT_DOUBLE_EQ(lensArea(3.0, 3.0, 0.0), M_PI * 9.0);
  const double area = lensArea(2.7, 1.3, 2.7 - 1.3);
  EXPECT_DOUBLE_EQ(area, M_PI * 1.3 * 1.3);
}

TEST(LensArea, BothRadiiZero) {
  EXPECT_DOUBLE_EQ(lensArea(0.0, 0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(lensArea(0.0, 0.0, 1.0), 0.0);
}

TEST(LensArea, NearTangencyClampKeepsAcosArgumentsInRange) {
  // Immediately inside both tangency configurations the acos arguments
  // drift just past +-1 without the clamp; the result must stay finite,
  // within [0, pi * rmin^2], and continuous towards the boundary value.
  for (double eps : {1e-9, 1e-12, 1e-15}) {
    const double external = lensArea(1.0, 1.0, 2.0 - eps);
    EXPECT_TRUE(std::isfinite(external)) << eps;
    EXPECT_GE(external, 0.0) << eps;
    EXPECT_LE(external, 1e-3) << eps;

    const double internal = lensArea(2.0, 1.0, 1.0 + eps);
    EXPECT_TRUE(std::isfinite(internal)) << eps;
    EXPECT_LE(internal, M_PI + 1e-12) << eps;
    EXPECT_NEAR(internal, M_PI, 1e-3) << eps;
  }
  // Area shrinks monotonically as the disks pull apart through tangency.
  EXPECT_GE(lensArea(1.0, 1.0, 2.0 - 1e-9), lensArea(1.0, 1.0, 2.0 - 1e-12));
  EXPECT_GE(lensArea(1.0, 1.0, 2.0 - 1e-12), lensArea(1.0, 1.0, 2.0));
}

TEST(IntersectionAreaEq1, MatchesLensAreaWithOffsetConvention) {
  // x is the signed distance from L2's centre to L1's border.
  EXPECT_DOUBLE_EQ(intersectionAreaEq1(2.0, 1.0, 0.5),
                   lensArea(2.0, 1.0, 2.5));
  EXPECT_DOUBLE_EQ(intersectionAreaEq1(2.0, 1.0, -0.5),
                   lensArea(2.0, 1.0, 1.5));
}

TEST(IntersectionAreaEq1, DegenerateInnerCircle) {
  // D1 = 0 models ring R_0 (the field centre): zero area.
  EXPECT_DOUBLE_EQ(intersectionAreaEq1(0.0, 1.0, 0.5), 0.0);
}

TEST(IntersectionAreaEq1, CenterInsideL1UsesNegativeX) {
  // u at the centre of L1 (x = -D1): lens of concentric circles.
  EXPECT_NEAR(intersectionAreaEq1(2.0, 1.0, -2.0), M_PI, 1e-12);
}

TEST(IntersectionAreaEq1, RejectsCenterBeyondOrigin) {
  EXPECT_THROW(intersectionAreaEq1(1.0, 1.0, -1.5), nsmodel::Error);
}

}  // namespace
}  // namespace nsmodel::geom
