#include "support/integrate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"

namespace nsmodel::support {
namespace {

TEST(GaussLegendre, RejectsZeroOrder) {
  EXPECT_THROW(GaussLegendre(0), Error);
}

TEST(GaussLegendre, NodesAndWeightsAreValid) {
  const GaussLegendre quad(16);
  EXPECT_EQ(quad.order(), 16);
  double weightSum = 0.0;
  for (int i = 0; i < quad.order(); ++i) {
    EXPECT_GT(quad.weights()[i], 0.0);
    EXPECT_GT(quad.nodes()[i], -1.0);
    EXPECT_LT(quad.nodes()[i], 1.0);
    weightSum += quad.weights()[i];
  }
  EXPECT_NEAR(weightSum, 2.0, 1e-13);  // integrates 1 over [-1, 1]
}

TEST(GaussLegendre, NodesSymmetricAboutZero) {
  const GaussLegendre quad(10);
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(quad.nodes()[i], -quad.nodes()[9 - i], 1e-13);
    EXPECT_NEAR(quad.weights()[i], quad.weights()[9 - i], 1e-13);
  }
}

TEST(GaussLegendre, OddOrderHasCentralNode) {
  const GaussLegendre quad(7);
  EXPECT_DOUBLE_EQ(quad.nodes()[3], 0.0);
}

TEST(GaussLegendre, ExactForPolynomialsUpToDegree2nMinus1) {
  // n-point Gauss-Legendre integrates degree <= 2n-1 exactly.
  const GaussLegendre quad(5);
  for (int degree = 0; degree <= 9; ++degree) {
    const double got = quad.integrate(
        -1.0, 1.0, [degree](double x) { return std::pow(x, degree); });
    const double expected =
        degree % 2 == 1 ? 0.0 : 2.0 / (static_cast<double>(degree) + 1.0);
    EXPECT_NEAR(got, expected, 1e-12) << "degree " << degree;
  }
}

TEST(GaussLegendre, ArbitraryInterval) {
  const GaussLegendre quad(20);
  const double got = quad.integrate(0.0, M_PI, [](double x) {
    return std::sin(x);
  });
  EXPECT_NEAR(got, 2.0, 1e-12);
}

TEST(GaussLegendre, ReversedIntervalFlipsSign) {
  const GaussLegendre quad(12);
  const auto f = [](double x) { return x * x + 1.0; };
  EXPECT_NEAR(quad.integrate(2.0, 0.0, f), -quad.integrate(0.0, 2.0, f),
              1e-12);
}

TEST(GaussLegendre, HighOrderSmoothFunction) {
  const GaussLegendre quad(48);
  const double got =
      quad.integrate(0.0, 1.0, [](double x) { return std::exp(-x * x); });
  EXPECT_NEAR(got, 0.7468241328124271, 1e-13);
}

TEST(AdaptiveSimpson, MatchesKnownIntegrals) {
  EXPECT_NEAR(adaptiveSimpson([](double x) { return std::sin(x); }, 0.0,
                              M_PI),
              2.0, 1e-9);
  EXPECT_NEAR(adaptiveSimpson([](double x) { return 1.0 / x; }, 1.0,
                              std::exp(1.0)),
              1.0, 1e-9);
}

TEST(AdaptiveSimpson, EmptyIntervalIsZero) {
  EXPECT_DOUBLE_EQ(
      adaptiveSimpson([](double x) { return x * x; }, 3.0, 3.0), 0.0);
}

TEST(AdaptiveSimpson, HandlesSharpPeak) {
  // Narrow Gaussian centred mid-interval; total mass ~ sqrt(pi)*0.01.
  const auto peak = [](double x) {
    const double z = (x - 0.5) / 0.01;
    return std::exp(-z * z);
  };
  const double got = adaptiveSimpson(peak, 0.0, 1.0, 1e-12);
  EXPECT_NEAR(got, std::sqrt(M_PI) * 0.01, 1e-8);
}

TEST(AdaptiveSimpson, RejectsNonPositiveTolerance) {
  EXPECT_THROW(
      adaptiveSimpson([](double x) { return x; }, 0.0, 1.0, 0.0), Error);
}

TEST(AdaptiveSimpson, AgreesWithGaussLegendreOnRingIntegrand) {
  // The kind of integrand the ring model sees: radius-weighted smooth
  // probability over a ring's width.
  const auto f = [](double x) {
    return (2.0 + x) * std::exp(-1.5 * x) * (1.0 - std::exp(-3.0 * x));
  };
  const GaussLegendre quad(48);
  const double gl = quad.integrate(0.0, 1.0, f);
  const double as = adaptiveSimpson(f, 0.0, 1.0, 1e-12);
  EXPECT_NEAR(gl, as, 1e-10);
}

}  // namespace
}  // namespace nsmodel::support
