// Tests of the crash-safe sweep runner: journaling, resume-after-kill
// byte-identity, timeout/retry/skip accounting, fatal propagation, and
// option validation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sim/robust_sweep.hpp"
#include "support/error.hpp"

namespace {

using namespace nsmodel;

/// A fresh journal path under the system temp dir, removed on destruction.
class TempJournal {
 public:
  explicit TempJournal(const char* tag) {
    path_ = (std::filesystem::temp_directory_path() /
             (std::string("nsmodel_sweep_") + tag + ".journal"))
                .string();
    std::remove(path_.c_str());
  }
  ~TempJournal() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

sim::SweepPointFn simplePoint() {
  return [](std::size_t index, int attempt, const support::Deadline&) {
    std::ostringstream row;
    row << index << "," << (index * index) << ",attempt" << attempt;
    return row.str();
  };
}

TEST(RobustSweep, CompletesEveryPointInOrder) {
  sim::RobustSweepOptions options;
  const sim::RobustSweepResult result =
      sim::runRobustSweep(8, simplePoint(), options);
  EXPECT_EQ(result.completed, 8u);
  EXPECT_EQ(result.resumed, 0u);
  EXPECT_EQ(result.skipped, 0u);
  ASSERT_EQ(result.outcomes.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(result.outcomes[i].index, i);
    EXPECT_EQ(result.outcomes[i].status, sim::SweepPointStatus::Completed);
    EXPECT_EQ(result.outcomes[i].attempts, 1);
  }
  // Rows land in grid-index order regardless of evaluation order.
  EXPECT_EQ(result.outcomes[3].row, "3,9,attempt0");
}

TEST(RobustSweep, ParallelAndSerialProduceTheSameCsv) {
  sim::RobustSweepOptions serial;
  serial.parallel = false;
  sim::RobustSweepOptions parallel;
  parallel.parallel = true;
  const std::string a =
      sim::runRobustSweep(16, simplePoint(), serial).csv("i,sq,a");
  const std::string b =
      sim::runRobustSweep(16, simplePoint(), parallel).csv("i,sq,a");
  EXPECT_EQ(a, b);
}

// The acceptance criterion: kill a sweep mid-run (simulated by truncating
// the journal to a prefix plus a partial line), resume, and the aggregate
// CSV must be byte-identical to the uninterrupted sweep's.
TEST(RobustSweep, ResumeAfterTruncatedJournalIsByteIdentical) {
  TempJournal journal("resume");
  sim::RobustSweepOptions options;
  options.journalPath = journal.path();
  options.parallel = false;  // deterministic journal line order

  const std::string full =
      sim::runRobustSweep(10, simplePoint(), options).csv("i,sq,a");

  // Keep the first 6 complete lines and simulate a crash mid-append.
  const std::string content = readFile(journal.path());
  std::size_t pos = 0;
  for (int i = 0; i < 6; ++i) pos = content.find('\n', pos) + 1;
  {
    std::ofstream out(journal.path(), std::ios::binary | std::ios::trunc);
    out << content.substr(0, pos) << "9\tdone\t9,81";  // torn tail, no '\n'
  }

  std::mutex mutex;
  std::set<std::size_t> recomputed;
  const sim::SweepPointFn counting =
      [&](std::size_t index, int attempt, const support::Deadline& deadline) {
        {
          std::lock_guard<std::mutex> lock(mutex);
          recomputed.insert(index);
        }
        return simplePoint()(index, attempt, deadline);
      };
  options.resume = true;
  const sim::RobustSweepResult resumedRun =
      sim::runRobustSweep(10, counting, options);

  EXPECT_EQ(resumedRun.completed, 10u);
  EXPECT_EQ(resumedRun.resumed, 6u);
  EXPECT_EQ(resumedRun.skipped, 0u);
  // Only the lost points ran again — including the torn-tail one.
  EXPECT_EQ(recomputed, (std::set<std::size_t>{6, 7, 8, 9}));
  EXPECT_EQ(resumedRun.csv("i,sq,a"), full);
}

TEST(RobustSweep, WithoutResumeAnExistingJournalIsTruncated) {
  TempJournal journal("truncate");
  sim::RobustSweepOptions options;
  options.journalPath = journal.path();
  options.parallel = false;
  sim::runRobustSweep(3, simplePoint(), options);
  const std::string first = readFile(journal.path());
  sim::runRobustSweep(3, simplePoint(), options);
  EXPECT_EQ(readFile(journal.path()), first);  // rewritten, not doubled
}

TEST(RobustSweep, TimeoutsAreRetriedThenSkipped) {
  std::atomic<int> calls{0};
  const sim::SweepPointFn point =
      [&](std::size_t index, int attempt, const support::Deadline&) {
        ++calls;
        if (index == 2) throw TimeoutError("point 2 always times out");
        std::ostringstream row;
        row << index << ",ok" << attempt;
        return row.str();
      };
  sim::RobustSweepOptions options;
  options.maxAttempts = 3;
  options.parallel = false;
  const sim::RobustSweepResult result = sim::runRobustSweep(4, point, options);
  EXPECT_EQ(result.completed, 3u);
  EXPECT_EQ(result.skipped, 1u);
  EXPECT_EQ(calls.load(), 3 + 3);  // three clean points + three attempts
  EXPECT_EQ(result.outcomes[2].status, sim::SweepPointStatus::Skipped);
  EXPECT_EQ(result.outcomes[2].attempts, 3);
  EXPECT_NE(result.outcomes[2].error.find("times out"), std::string::npos);
  // Skipped points are excluded from the CSV, never silently empty rows.
  EXPECT_EQ(result.csv("h"), "h\n0,ok0\n1,ok0\n3,ok0\n");
}

TEST(RobustSweep, RetryCanSucceedOnALaterAttempt) {
  const sim::SweepPointFn point =
      [](std::size_t index, int attempt, const support::Deadline&) {
        if (index == 1 && attempt == 0) {
          throw TimeoutError("first attempt too slow");
        }
        std::ostringstream row;
        row << index << ",attempt" << attempt;
        return row.str();
      };
  sim::RobustSweepOptions options;
  options.maxAttempts = 2;
  options.parallel = false;
  const sim::RobustSweepResult result = sim::runRobustSweep(3, point, options);
  EXPECT_EQ(result.completed, 3u);
  EXPECT_EQ(result.skipped, 0u);
  EXPECT_EQ(result.outcomes[1].attempts, 2);
  EXPECT_EQ(result.outcomes[1].row, "1,attempt1");  // reseeded attempt
}

TEST(RobustSweep, FatalErrorsPropagateInsteadOfRetrying) {
  std::atomic<int> calls{0};
  const sim::SweepPointFn point =
      [&](std::size_t index, int, const support::Deadline&) -> std::string {
    ++calls;
    if (index == 0) throw ConfigError("bad configuration");
    return "row";
  };
  sim::RobustSweepOptions options;
  options.maxAttempts = 5;
  options.parallel = false;
  EXPECT_THROW(sim::runRobustSweep(3, point, options), ConfigError);
  EXPECT_EQ(calls.load(), 1);  // no retry, and later points never start
}

TEST(RobustSweep, DeadlineReflectsTheTimeoutOption) {
  sim::RobustSweepOptions options;
  options.parallel = false;
  bool sawUnlimited = false;
  sim::runRobustSweep(
      1,
      [&](std::size_t, int, const support::Deadline& deadline) {
        sawUnlimited = !deadline.limited();
        return std::string("x");
      },
      options);
  EXPECT_TRUE(sawUnlimited);

  options.timeoutSeconds = 60.0;
  bool sawLimited = false;
  sim::runRobustSweep(
      1,
      [&](std::size_t, int, const support::Deadline& deadline) {
        sawLimited = deadline.limited();
        deadline.check("should not throw with a minute left");
        return std::string("x");
      },
      options);
  EXPECT_TRUE(sawLimited);
}

TEST(RobustSweep, RejectsInvalidOptions) {
  const sim::SweepPointFn point = simplePoint();
  {
    sim::RobustSweepOptions options;
    options.maxAttempts = 0;
    EXPECT_THROW(sim::runRobustSweep(1, point, options), ConfigError);
  }
  {
    sim::RobustSweepOptions options;
    options.timeoutSeconds = -1.0;
    EXPECT_THROW(sim::runRobustSweep(1, point, options), ConfigError);
  }
  {
    sim::RobustSweepOptions options;
    options.timeoutSeconds = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(sim::runRobustSweep(1, point, options), ConfigError);
  }
  {
    sim::RobustSweepOptions options;
    options.resume = true;  // but no journal path
    EXPECT_THROW(sim::runRobustSweep(1, point, options), ConfigError);
  }
  EXPECT_THROW(sim::runRobustSweep(1, nullptr, {}), ConfigError);
}

TEST(RobustSweep, UnwritableJournalIsAnIoError) {
  sim::RobustSweepOptions options;
  options.journalPath = "/nonexistent-dir/journal.tsv";
  EXPECT_THROW(sim::runRobustSweep(1, simplePoint(), options), IoError);
}

TEST(RobustSweep, StaleJournalFromALargerGridIsRejected) {
  TempJournal journal("stale");
  {
    std::ofstream out(journal.path(), std::ios::binary);
    out << "7\tdone\tsome,row\n";  // index outside a 3-point grid
  }
  sim::RobustSweepOptions options;
  options.journalPath = journal.path();
  options.resume = true;
  EXPECT_THROW(sim::runRobustSweep(3, simplePoint(), options), ConfigError);
}

}  // namespace
