// Allocation-failure injection: every backend surfaces heap exhaustion
// as a structured ResourceError, never a raw std::bad_alloc.
//
// This file installs a global operator new override with an armable
// countdown — after N successful allocations it throws one bad_alloc —
// which is why it gets its own test binary (the override must observe
// every allocation of the process).  Each backend is armed mid-setup so
// the failure lands inside the run body, where the entry-point wrappers
// of experiment.cpp / experiment_batch.cpp / sharded_engine.cpp must
// catch it; the engine/workspace must stay reusable afterwards.  In the
// sharded case the bad_alloc is raised on a worker thread and must
// propagate through the barrier-safe stop protocol without deadlock.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "protocols/probabilistic.hpp"
#include "sim/batch_workspace.hpp"
#include "sim/experiment.hpp"
#include "sim/experiment_batch.hpp"
#include "sim/run_workspace.hpp"
#include "sim/scenario_cache.hpp"
#include "sim/sharded_engine.hpp"
#include "support/error.hpp"

namespace {

// -1 = disarmed; otherwise the number of allocations that still succeed
// before one throws.  The throw disarms, so cleanup and gtest reporting
// allocate freely again.
std::atomic<long long> gFailAfter{-1};

bool shouldFail() {
  long long remaining = gFailAfter.load(std::memory_order_relaxed);
  while (remaining >= 0) {
    if (gFailAfter.compare_exchange_weak(remaining, remaining - 1,
                                         std::memory_order_relaxed)) {
      if (remaining == 0) {
        gFailAfter.store(-1, std::memory_order_relaxed);
        return true;
      }
      return false;
    }
  }
  return false;
}

}  // namespace

void* operator new(std::size_t size) {
  if (shouldFail()) throw std::bad_alloc();
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  if (shouldFail()) throw std::bad_alloc();
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace nsmodel;

/// Disarms on scope exit even when an assertion fails first.
struct ArmGuard {
  explicit ArmGuard(long long after) {
    gFailAfter.store(after, std::memory_order_relaxed);
  }
  ~ArmGuard() { gFailAfter.store(-1, std::memory_order_relaxed); }
};

sim::ExperimentConfig smallConfig() {
  sim::ExperimentConfig cfg;
  cfg.rings = 4;
  cfg.neighborDensity = 25.0;
  cfg.maxPhases = 40;
  return cfg;
}

sim::Scenario scenarioFor(const sim::ExperimentConfig& cfg) {
  return sim::buildScenario(sim::ScenarioKey::forExperiment(cfg, 42, 0));
}

TEST(AllocFailure, FlatLoopTranslatesBadAllocToResourceError) {
  const sim::ExperimentConfig cfg = smallConfig();
  const sim::Scenario scenario = scenarioFor(cfg);
  protocols::ProbabilisticBroadcast protocol(0.6);
  support::Rng rng = scenario.protocolRng;
  bool threw = false;
  {
    ArmGuard arm(8);
    try {
      sim::runBroadcast(cfg, scenario.deployment, scenario.topology, protocol,
                        rng, nullptr);
      // The countdown may not have been consumed if the run needed fewer
      // than 8 allocations; that is a test-shape problem, not a pass.
      ADD_FAILURE() << "run completed without hitting the injected failure";
    } catch (const ResourceError& e) {
      threw = true;
      EXPECT_EQ(e.category(), ErrorCategory::Resource);
      EXPECT_FALSE(e.retryable());
    }
  }
  EXPECT_TRUE(threw);
  // Retry unarmed: the failure was transient, nothing was corrupted.
  support::Rng rng2 = scenario.protocolRng;
  const sim::RunResult result = sim::runBroadcast(
      cfg, scenario.deployment, scenario.topology, protocol, rng2, nullptr);
  EXPECT_GT(result.nodeCount(), 0u);
}

TEST(AllocFailure, BatchBackendTranslatesBadAllocToResourceError) {
  const sim::ExperimentConfig cfg = smallConfig();
  const sim::Scenario scenario = scenarioFor(cfg);
  protocols::ProbabilisticBroadcast protocol(0.6);
  sim::BatchWorkspace workspace;
  bool threw = false;
  {
    std::vector<sim::BatchLane> lanes;
    lanes.push_back({&scenario.deployment, &scenario.topology, &protocol,
                     scenario.protocolRng, nullptr});
    ArmGuard arm(8);
    try {
      sim::runBroadcastBatch(cfg, lanes, workspace);
      ADD_FAILURE() << "run completed without hitting the injected failure";
    } catch (const ResourceError&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw);
  std::vector<sim::BatchLane> lanes;
  lanes.push_back({&scenario.deployment, &scenario.topology, &protocol,
                   scenario.protocolRng, nullptr});
  const auto results = sim::runBroadcastBatch(cfg, lanes, workspace);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].nodeCount(), 0u);
}

TEST(AllocFailure, ShardedEngineTranslatesWorkerBadAllocToResourceError) {
  const sim::ExperimentConfig cfg = smallConfig();
  const sim::Scenario scenario = scenarioFor(cfg);
  protocols::ProbabilisticBroadcast protocol(0.6);
  sim::ShardedEngine engine(scenario.deployment, scenario.topology, 3);
  bool threw = false;
  {
    support::Rng rng = scenario.protocolRng;
    // A later countdown so the throw lands inside the worker slot loop
    // (after the per-shard arenas are up), exercising the barrier-safe
    // stop path rather than the prologue.
    ArmGuard arm(64);
    try {
      engine.run(cfg, protocol, rng);
      ADD_FAILURE() << "run completed without hitting the injected failure";
    } catch (const ResourceError&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw);
  // All shards unwound; the engine runs clean afterwards.
  support::Rng rng = scenario.protocolRng;
  const sim::RunResult result = engine.run(cfg, protocol, rng);
  EXPECT_GT(result.nodeCount(), 0u);
}

}  // namespace
