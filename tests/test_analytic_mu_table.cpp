#include "analytic/mu_table.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "analytic/mu.hpp"
#include "support/thread_pool.hpp"

namespace nsmodel::analytic {
namespace {

TEST(MuTable, MatchesClosedFormExactly) {
  MuTable table;
  for (int s = 1; s <= 5; ++s) {
    for (std::int64_t k = 0; k <= 40; ++k) {
      EXPECT_EQ(table.mu(k, s), mu(k, s)) << "k=" << k << " s=" << s;
      // A second query must serve the identical stored value.
      EXPECT_EQ(table.mu(k, s), mu(k, s));
    }
  }
}

TEST(MuTable, MuPrimeMatchesClosedFormExactly) {
  MuTable table;
  for (int s = 1; s <= 4; ++s) {
    for (std::int64_t k1 = 0; k1 <= 12; ++k1) {
      for (std::int64_t k2 = 0; k2 <= 12; ++k2) {
        EXPECT_EQ(table.muPrime(k1, k2, s), muPrime(k1, k2, s))
            << "k1=" << k1 << " k2=" << k2 << " s=" << s;
      }
    }
  }
}

TEST(MuTable, CountsLookupsAndComputes) {
  MuTable table;
  (void)table.mu(5, 3);
  (void)table.mu(5, 3);
  (void)table.mu(6, 3);
  (void)table.muPrime(2, 3, 3);
  (void)table.muPrime(2, 3, 3);
  EXPECT_EQ(table.lookups(), 5u);
  // The dense mu rows fill [0, k] on first extension, so distinct compute
  // counts track distinct arguments, never repeats.
  const std::uint64_t computesAfter = table.computes();
  EXPECT_GT(computesAfter, 0u);
  (void)table.mu(5, 3);
  (void)table.muPrime(2, 3, 3);
  EXPECT_EQ(table.computes(), computesAfter);  // pure hits
  EXPECT_EQ(table.lookups(), 7u);
  table.resetCounters();
  EXPECT_EQ(table.lookups(), 0u);
  EXPECT_EQ(table.computes(), 0u);
}

TEST(MuTable, DisabledTableStillReturnsExactValues) {
  MuTable table;
  table.setEnabled(false);
  EXPECT_FALSE(table.enabled());
  EXPECT_EQ(table.mu(7, 3), mu(7, 3));
  EXPECT_EQ(table.muPrime(4, 2, 3), muPrime(4, 2, 3));
  table.setEnabled(true);
  EXPECT_EQ(table.mu(7, 3), mu(7, 3));
}

TEST(MuTable, ClearDropsValuesButStaysCorrect) {
  MuTable table;
  (void)table.mu(9, 3);
  table.clear();
  EXPECT_EQ(table.mu(9, 3), mu(9, 3));
}

TEST(MuTable, GlobalInstanceBacksMuReal) {
  // muReal(Interpolate) reads through MuTable::global(): the interpolated
  // value must match manual interpolation of the closed form.
  const double lambda = 7.35;
  const int s = 3;
  const double lo = mu(7, s);
  const double hi = mu(8, s);
  const double expected = lo + (hi - lo) * 0.35;
  EXPECT_NEAR(muReal(lambda, s, RealKPolicy::Interpolate), expected, 1e-12);
}

TEST(MuTable, ConcurrentMixedQueriesStayExact) {
  MuTable table;
  constexpr std::size_t kTasks = 256;
  std::vector<double> values(kTasks);
  // Overlapping arguments from many workers: every query must come back
  // exactly equal to the closed form regardless of interleaving.
  support::parallelFor(
      0, kTasks,
      [&](std::size_t i) {
        const auto k = static_cast<std::int64_t>(i % 32);
        const int s = 1 + static_cast<int>(i % 4);
        values[i] = table.mu(k, s) + table.muPrime(k % 8, (k / 8) % 8, s);
      },
      /*chunk=*/1);
  for (std::size_t i = 0; i < kTasks; ++i) {
    const auto k = static_cast<std::int64_t>(i % 32);
    const int s = 1 + static_cast<int>(i % 4);
    EXPECT_EQ(values[i], mu(k, s) + muPrime(k % 8, (k / 8) % 8, s));
  }
  EXPECT_EQ(table.lookups(), 2 * kTasks);
}

}  // namespace
}  // namespace nsmodel::analytic
