// Bit-identity of the batched lockstep driver against sequential runs.
//
// runBroadcastBatch packs R replications into SoA lanes and steps them
// through one slot loop; the contract (experiment_batch.hpp) is that
// lane k's RunResult is bit-identical to running that replication alone
// through runBroadcast with the same seed.  The matrix here crosses
// every channel model with every fault family — including drift
// spill-over, energy cutoffs, and the legacy node-failure knob — and
// repeats the comparison on every runnable slot-kernel backend (oracle
// reference loops, generic, native), since the batched driver is the
// one consumer that dispatches through the ops table on all three.
// Also covered: per-lane RNG stream independence, caller-owned energy
// ledgers, workspace reuse across batches, the NSMODEL_BATCH policy,
// and Monte-Carlo aggregate equality at width 1 vs width > 1.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "net/energy.hpp"
#include "net/slot_kernel.hpp"
#include "protocols/counter_based.hpp"
#include "protocols/flooding.hpp"
#include "protocols/probabilistic.hpp"
#include "sim/batch_workspace.hpp"
#include "sim/experiment.hpp"
#include "sim/experiment_batch.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/run_workspace.hpp"
#include "sim/scenario_cache.hpp"
#include "support/error.hpp"

namespace {

using namespace nsmodel;

constexpr std::size_t kLanes = 4;

/// One cell of the equivalence matrix: a channel model crossed with a
/// fault mix, applied to ExperimentConfig by `mutate`.
struct BatchCase {
  std::string name;
  net::ChannelModel channel = net::ChannelModel::CollisionAware;
  void (*mutate)(sim::ExperimentConfig&) = nullptr;
};

void noFaults(sim::ExperimentConfig&) {}

void crashFaults(sim::ExperimentConfig& cfg) {
  cfg.fault.faultSeed = 7;
  cfg.fault.crash.crashRate = 0.08;
  cfg.fault.crash.recoveryRate = 0.25;
}

void linkLoss(sim::ExperimentConfig& cfg) {
  cfg.fault.faultSeed = 11;
  cfg.fault.link.pGoodToBad = 0.25;
  cfg.fault.link.pBadToGood = 0.4;
  cfg.fault.link.lossBad = 0.7;
  cfg.fault.link.lossGood = 0.02;
}

void clockDrift(sim::ExperimentConfig& cfg) {
  cfg.fault.faultSeed = 13;
  cfg.fault.drift.maxSkewSlots = 0.4;
}

void energyCutoff(sim::ExperimentConfig& cfg) {
  cfg.fault.faultSeed = 17;
  cfg.fault.energyBudget = 3.0;
}

void legacyNodeFailure(sim::ExperimentConfig& cfg) {
  cfg.nodeFailureRate = 0.05;
}

void combinedFaults(sim::ExperimentConfig& cfg) {
  cfg.fault.faultSeed = 19;
  cfg.fault.crash.crashRate = 0.05;
  cfg.fault.crash.recoveryRate = 0.3;
  cfg.fault.link.pGoodToBad = 0.2;
  cfg.fault.link.pBadToGood = 0.5;
  cfg.fault.link.lossBad = 0.5;
  cfg.fault.drift.maxSkewSlots = 0.3;
  cfg.fault.energyBudget = 5.0;
}

std::vector<BatchCase> equivalenceMatrix() {
  const struct {
    const char* name;
    void (*mutate)(sim::ExperimentConfig&);
  } faults[] = {
      {"clean", noFaults},      {"crash", crashFaults},
      {"link", linkLoss},       {"drift", clockDrift},
      {"energy", energyCutoff}, {"legacy", legacyNodeFailure},
      {"combined", combinedFaults},
  };
  const struct {
    const char* name;
    net::ChannelModel channel;
  } channels[] = {
      {"cfm", net::ChannelModel::CollisionFree},
      {"cam", net::ChannelModel::CollisionAware},
      {"cs", net::ChannelModel::CarrierSenseAware},
      {"sinr", net::ChannelModel::Sinr},
  };
  std::vector<BatchCase> cases;
  for (const auto& ch : channels) {
    for (const auto& f : faults) {
      cases.push_back(
          {std::string(ch.name) + "_" + f.name, ch.channel, f.mutate});
    }
  }
  return cases;
}

sim::ExperimentConfig baseConfig(const BatchCase& c) {
  sim::ExperimentConfig cfg;
  cfg.rings = 4;
  cfg.neighborDensity = 30.0;
  cfg.maxPhases = 60;
  cfg.channel = c.channel;
  c.mutate(cfg);
  return cfg;
}

/// The kernels this build/CPU can actually run.
std::vector<net::SlotKernelIsa> runnableIsas() {
  std::vector<net::SlotKernelIsa> isas{net::SlotKernelIsa::Oracle,
                                       net::SlotKernelIsa::Generic};
  if (net::slotKernelAvailable(net::SlotKernelIsa::Native)) {
    isas.push_back(net::SlotKernelIsa::Native);
  }
  return isas;
}

/// Restores the pre-test kernel selection on scope exit.
struct KernelGuard {
  net::SlotKernelIsa prev;
  KernelGuard() : prev(net::slotKernelOps().isa) {}
  ~KernelGuard() { net::setSlotKernel(prev); }
};

/// Restores the pre-test batch-width override on scope exit.
struct WidthGuard {
  ~WidthGuard() { sim::setBatchWidthOverride(-1); }
};

void expectIdentical(const sim::RunResult& batch, const sim::RunResult& seq,
                     const std::string& label) {
  EXPECT_EQ(batch.nodeCount(), seq.nodeCount()) << label;
  EXPECT_EQ(batch.receptionSlots(), seq.receptionSlots()) << label;
  EXPECT_EQ(batch.transmissionSlots(), seq.transmissionSlots()) << label;
  EXPECT_EQ(batch.receptionSlotByNode(), seq.receptionSlotByNode()) << label;
  EXPECT_EQ(batch.attemptedPairs(), seq.attemptedPairs()) << label;
  EXPECT_EQ(batch.deliveredPairs(), seq.deliveredPairs()) << label;
  ASSERT_EQ(batch.phases().size(), seq.phases().size()) << label;
  for (std::size_t i = 0; i < batch.phases().size(); ++i) {
    EXPECT_EQ(batch.phases()[i].transmissions, seq.phases()[i].transmissions)
        << label << " phase " << i;
    EXPECT_EQ(batch.phases()[i].newReceivers, seq.phases()[i].newReceivers)
        << label << " phase " << i;
    EXPECT_EQ(batch.phases()[i].deliveries, seq.phases()[i].deliveries)
        << label << " phase " << i;
    EXPECT_EQ(batch.phases()[i].lostReceivers, seq.phases()[i].lostReceivers)
        << label << " phase " << i;
  }
}

std::vector<sim::Scenario> buildScenarios(const sim::ExperimentConfig& cfg,
                                          std::uint64_t seed,
                                          std::size_t count) {
  std::vector<sim::Scenario> scenarios;
  scenarios.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    scenarios.push_back(
        sim::buildScenario(sim::ScenarioKey::forExperiment(cfg, seed, k)));
  }
  return scenarios;
}

std::vector<sim::RunResult> sequentialRuns(
    const sim::ExperimentConfig& cfg, const std::vector<sim::Scenario>& scen,
    const protocols::ProtocolFactory& factory) {
  sim::RunWorkspace ws;
  auto protocol = factory();
  std::vector<sim::RunResult> results;
  results.reserve(scen.size());
  for (const sim::Scenario& s : scen) {
    support::Rng rng = s.protocolRng;
    results.push_back(sim::runBroadcast(cfg, s.deployment, s.topology,
                                        *protocol, rng, ws));
  }
  return results;
}

std::vector<sim::RunResult> batchedRuns(
    const sim::ExperimentConfig& cfg, const std::vector<sim::Scenario>& scen,
    const protocols::ProtocolFactory& factory, sim::BatchWorkspace& batch) {
  std::vector<std::unique_ptr<protocols::BroadcastProtocol>> protos;
  std::vector<sim::BatchLane> lanes;
  lanes.reserve(scen.size());
  for (const sim::Scenario& s : scen) {
    protos.push_back(factory());
    lanes.push_back(sim::BatchLane{&s.deployment, &s.topology,
                                   protos.back().get(), s.protocolRng,
                                   nullptr});
  }
  return sim::runBroadcastBatch(cfg, lanes, batch);
}

class BatchEquivalence : public ::testing::TestWithParam<BatchCase> {};

TEST_P(BatchEquivalence, LanesMatchSequentialOnEveryKernel) {
  const BatchCase& c = GetParam();
  const sim::ExperimentConfig cfg = baseConfig(c);
  const auto scenarios = buildScenarios(cfg, 42, kLanes);
  const auto factory = [] {
    return std::make_unique<protocols::ProbabilisticBroadcast>(0.6);
  };
  KernelGuard guard;
  for (const net::SlotKernelIsa isa : runnableIsas()) {
    net::setSlotKernel(isa);
    const auto seq = sequentialRuns(cfg, scenarios, factory);
    sim::BatchWorkspace batch;
    const auto bat = batchedRuns(cfg, scenarios, factory, batch);
    ASSERT_EQ(bat.size(), seq.size());
    for (std::size_t k = 0; k < bat.size(); ++k) {
      expectIdentical(bat[k], seq[k],
                      c.name + " kernel " +
                          std::string(net::slotKernelIsaName(isa)) + " lane " +
                          std::to_string(k));
    }
  }
}

// Counter-based cancellation exercises the duplicate path (pending bit
// live, keepPendingAfterDuplicate consulted) that probabilistic
// broadcast reaches only rarely.
TEST_P(BatchEquivalence, CounterBasedProtocolMatchesToo) {
  const BatchCase& c = GetParam();
  const sim::ExperimentConfig cfg = baseConfig(c);
  const auto scenarios = buildScenarios(cfg, 42, kLanes);
  const auto factory = [] {
    return std::make_unique<protocols::CounterBasedBroadcast>(3);
  };
  const auto seq = sequentialRuns(cfg, scenarios, factory);
  sim::BatchWorkspace batch;
  const auto bat = batchedRuns(cfg, scenarios, factory, batch);
  ASSERT_EQ(bat.size(), seq.size());
  for (std::size_t k = 0; k < bat.size(); ++k) {
    expectIdentical(bat[k], seq[k], c.name + " lane " + std::to_string(k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, BatchEquivalence, ::testing::ValuesIn(equivalenceMatrix()),
    [](const ::testing::TestParamInfo<BatchCase>& param) {
      return param.param.name;
    });

// A reused BatchWorkspace must behave like a fresh one: finishLane
// restores the all-clean invariant and reclaim() recycles capacity, so
// the second batch is bit-identical to the first's conditions.
TEST(BatchWorkspaceReuse, SecondBatchMatchesFresh) {
  BatchCase c{"cam_clean", net::ChannelModel::CollisionAware, noFaults};
  const sim::ExperimentConfig cfg = baseConfig(c);
  const auto scenarios = buildScenarios(cfg, 42, kLanes);
  const auto factory = [] {
    return std::make_unique<protocols::ProbabilisticBroadcast>(0.6);
  };
  sim::BatchWorkspace reused;
  auto first = batchedRuns(cfg, scenarios, factory, reused);
  for (auto& result : first) reused.reclaim(std::move(result));
  const auto second = batchedRuns(cfg, scenarios, factory, reused);
  sim::BatchWorkspace fresh;
  const auto expected = batchedRuns(cfg, scenarios, factory, fresh);
  ASSERT_EQ(second.size(), expected.size());
  for (std::size_t k = 0; k < second.size(); ++k) {
    expectIdentical(second[k], expected[k], "reuse lane " + std::to_string(k));
  }
}

// Lanes may carry caller-owned energy ledgers; per-lane accounting must
// match what a sequential run with the same ledger records.
TEST(BatchEnergy, CallerLedgersAccumulatePerLane) {
  BatchCase c{"cam_clean", net::ChannelModel::CollisionAware, noFaults};
  const sim::ExperimentConfig cfg = baseConfig(c);
  const auto scenarios = buildScenarios(cfg, 42, kLanes);
  const auto factory = [] {
    return std::make_unique<protocols::ProbabilisticBroadcast>(0.6);
  };

  std::vector<net::EnergyLedger> seqLedgers;
  std::vector<sim::RunResult> seq;
  {
    sim::RunWorkspace ws;
    auto protocol = factory();
    for (const sim::Scenario& s : scenarios) {
      seqLedgers.emplace_back(s.deployment.nodeCount(), cfg.costs);
      support::Rng rng = s.protocolRng;
      seq.push_back(sim::runBroadcast(cfg, s.deployment, s.topology,
                                      *protocol, rng, ws,
                                      &seqLedgers.back()));
    }
  }

  std::vector<net::EnergyLedger> batLedgers;
  for (const sim::Scenario& s : scenarios) {
    batLedgers.emplace_back(s.deployment.nodeCount(), cfg.costs);
  }
  std::vector<std::unique_ptr<protocols::BroadcastProtocol>> protos;
  std::vector<sim::BatchLane> lanes;
  for (std::size_t k = 0; k < scenarios.size(); ++k) {
    protos.push_back(factory());
    lanes.push_back(sim::BatchLane{&scenarios[k].deployment,
                                   &scenarios[k].topology, protos[k].get(),
                                   scenarios[k].protocolRng, &batLedgers[k]});
  }
  sim::BatchWorkspace batch;
  const auto bat = sim::runBroadcastBatch(cfg, lanes, batch);

  ASSERT_EQ(bat.size(), seq.size());
  for (std::size_t k = 0; k < bat.size(); ++k) {
    expectIdentical(bat[k], seq[k], "ledger lane " + std::to_string(k));
    EXPECT_DOUBLE_EQ(batLedgers[k].totalEnergy(), seqLedgers[k].totalEnergy())
        << "lane " << k;
    EXPECT_DOUBLE_EQ(batLedgers[k].maxNodeEnergy(),
                     seqLedgers[k].maxNodeEnergy())
        << "lane " << k;
  }
}

// Under SlotDriver::DesEngine the batch entry point must fall back to
// sequential engine-path runs and still match them bit for bit.
TEST(BatchFallback, DesEngineRunsSequentially) {
  BatchCase c{"cam_drift", net::ChannelModel::CollisionAware, clockDrift};
  sim::ExperimentConfig cfg = baseConfig(c);
  cfg.driver = sim::SlotDriver::DesEngine;
  const auto scenarios = buildScenarios(cfg, 42, kLanes);
  const auto factory = [] {
    return std::make_unique<protocols::ProbabilisticBroadcast>(0.6);
  };
  const auto seq = sequentialRuns(cfg, scenarios, factory);
  sim::BatchWorkspace batch;
  const auto bat = batchedRuns(cfg, scenarios, factory, batch);
  ASSERT_EQ(bat.size(), seq.size());
  for (std::size_t k = 0; k < bat.size(); ++k) {
    expectIdentical(bat[k], seq[k], "des lane " + std::to_string(k));
  }
}

/// Protocol that records the RNG stream position after every decision,
/// so cross-lane contamination (any lane drawing from another's stream)
/// shows up as a diverged fingerprint sequence.
class RecordingProtocol : public protocols::BroadcastProtocol {
 public:
  explicit RecordingProtocol(std::vector<std::uint64_t>* log) : log_(log) {}
  const char* name() const override { return "recording"; }
  protocols::RebroadcastDecision onFirstReception(
      net::NodeId /*node*/, net::NodeId /*sender*/,
      protocols::ProtocolContext& ctx) override {
    const bool transmit = ctx.rng.uniform() < 0.7;
    const int slot = static_cast<int>(
        ctx.rng.below(static_cast<std::uint64_t>(ctx.slotsPerPhase)));
    log_->push_back(ctx.rng.stateFingerprint());
    return {transmit, slot};
  }

 private:
  std::vector<std::uint64_t>* log_;
};

// Satellite contract: lane k consumes exactly the draw sequence the
// sequential replication k would, even though the lanes' protocol
// callbacks interleave slot by slot.
TEST(BatchRngStreams, LanesConsumeIndependentStreams) {
  BatchCase c{"cam_clean", net::ChannelModel::CollisionAware, noFaults};
  const sim::ExperimentConfig cfg = baseConfig(c);
  const auto scenarios = buildScenarios(cfg, 42, kLanes);

  std::vector<std::vector<std::uint64_t>> seqLogs(kLanes);
  for (std::size_t k = 0; k < kLanes; ++k) {
    sim::RunWorkspace ws;
    RecordingProtocol protocol(&seqLogs[k]);
    support::Rng rng = scenarios[k].protocolRng;
    sim::runBroadcast(cfg, scenarios[k].deployment, scenarios[k].topology,
                      protocol, rng, ws);
  }

  std::vector<std::vector<std::uint64_t>> batLogs(kLanes);
  std::vector<std::unique_ptr<RecordingProtocol>> protos;
  std::vector<sim::BatchLane> lanes;
  for (std::size_t k = 0; k < kLanes; ++k) {
    protos.push_back(std::make_unique<RecordingProtocol>(&batLogs[k]));
    lanes.push_back(sim::BatchLane{&scenarios[k].deployment,
                                   &scenarios[k].topology, protos[k].get(),
                                   scenarios[k].protocolRng, nullptr});
  }
  sim::BatchWorkspace batch;
  sim::runBroadcastBatch(cfg, lanes, batch);

  for (std::size_t k = 0; k < kLanes; ++k) {
    EXPECT_FALSE(batLogs[k].empty()) << "lane " << k << " never decided";
    EXPECT_EQ(batLogs[k], seqLogs[k]) << "lane " << k;
  }
}

/// Scoped NSMODEL_BATCH assignment (restores the previous value).
struct BatchEnv {
  std::string saved;
  bool had;
  explicit BatchEnv(const char* value) {
    const char* prev = std::getenv("NSMODEL_BATCH");
    had = prev != nullptr;
    if (had) saved = prev;
    if (value == nullptr) {
      ::unsetenv("NSMODEL_BATCH");
    } else {
      ::setenv("NSMODEL_BATCH", value, 1);
    }
  }
  ~BatchEnv() {
    if (had) {
      ::setenv("NSMODEL_BATCH", saved.c_str(), 1);
    } else {
      ::unsetenv("NSMODEL_BATCH");
    }
  }
};

TEST(BatchPolicy, EnvironmentSelectsWidth) {
  WidthGuard guard;
  sim::setBatchWidthOverride(-1);
  {
    BatchEnv env(nullptr);
    EXPECT_EQ(sim::batchWidth(), 8);  // unset -> auto
  }
  {
    BatchEnv env("auto");
    EXPECT_EQ(sim::batchWidth(), 8);
  }
  {
    BatchEnv env("off");
    EXPECT_EQ(sim::batchWidth(), 1);
  }
  {
    BatchEnv env("4");
    EXPECT_EQ(sim::batchWidth(), 4);
  }
  {
    BatchEnv env("1");
    EXPECT_EQ(sim::batchWidth(), 1);
  }
  {
    // Zero is not a lane count and not "off": parsePolicyEnv rejects it
    // so a typo'd NSMODEL_BATCH=0 cannot silently run scalar.
    BatchEnv env("0");
    EXPECT_THROW(sim::batchWidth(), ConfigError);
  }
  {
    BatchEnv env("sixteen");
    EXPECT_THROW(sim::batchWidth(), ConfigError);
  }
  {
    BatchEnv env("-2");
    EXPECT_THROW(sim::batchWidth(), ConfigError);
  }
  {
    BatchEnv env("4x");
    EXPECT_THROW(sim::batchWidth(), ConfigError);
  }
}

TEST(BatchPolicy, OverrideBeatsEnvironment) {
  WidthGuard guard;
  BatchEnv env("off");
  sim::setBatchWidthOverride(5);
  EXPECT_EQ(sim::batchWidth(), 5);
  sim::setBatchWidthOverride(0);
  EXPECT_EQ(sim::batchWidth(), 1);
  sim::setBatchWidthOverride(-1);
  EXPECT_EQ(sim::batchWidth(), 1);  // back to the environment ("off")
}

TEST(BatchPolicy, DesEngineNeverBatches) {
  WidthGuard guard;
  sim::setBatchWidthOverride(6);
  sim::ExperimentConfig cfg;
  cfg.driver = sim::SlotDriver::FlatLoop;
  EXPECT_EQ(sim::batchWidthFor(cfg), 6);
  cfg.driver = sim::SlotDriver::DesEngine;
  EXPECT_EQ(sim::batchWidthFor(cfg), 1);
}

sim::MonteCarloConfig smallMonteCarlo() {
  sim::MonteCarloConfig mc;
  mc.experiment.rings = 4;
  mc.experiment.neighborDensity = 30.0;
  mc.experiment.maxPhases = 60;
  mc.replications = 10;
  mc.parallel = false;
  return mc;
}

sim::MetricExtractor standardExtract() {
  return [](const sim::RunResult& r) {
    return std::vector<double>{r.finalReachability(),
                               static_cast<double>(r.totalBroadcasts()),
                               r.latencyForReachability(0.9).value_or(-1.0)};
  };
}

void expectAggregatesEqual(const std::vector<sim::MetricAggregate>& a,
                           const std::vector<sim::MetricAggregate>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].stats.mean, b[i].stats.mean) << "metric " << i;
    EXPECT_EQ(a[i].stats.stddev, b[i].stats.stddev) << "metric " << i;
    EXPECT_EQ(a[i].definedFraction, b[i].definedFraction) << "metric " << i;
    EXPECT_EQ(a[i].replications, b[i].replications) << "metric " << i;
  }
}

// The Monte-Carlo pipeline must produce identical aggregates whether
// replications run one at a time or through the batch driver.
TEST(BatchMonteCarlo, FixedAggregatesMatchWidthOne) {
  WidthGuard guard;
  const sim::MonteCarloConfig mc = smallMonteCarlo();
  const auto factory = [] {
    return std::make_unique<protocols::ProbabilisticBroadcast>(0.6);
  };
  const auto extract = standardExtract();
  sim::setBatchWidthOverride(1);
  const auto sequential = sim::monteCarlo(mc, factory, extract);
  sim::setBatchWidthOverride(4);
  const auto batched = sim::monteCarlo(mc, factory, extract);
  expectAggregatesEqual(batched, sequential);
}

TEST(BatchMonteCarlo, SweepAggregatesMatchWidthOne) {
  WidthGuard guard;
  sim::MonteCarloConfig mc = smallMonteCarlo();
  sim::ScenarioCache cache;
  mc.cache = &cache;
  const std::vector<protocols::ProtocolFactory> factories = {
      [] { return std::make_unique<protocols::ProbabilisticBroadcast>(0.4); },
      [] { return std::make_unique<protocols::ProbabilisticBroadcast>(0.8); },
      [] { return std::make_unique<protocols::SimpleFlooding>(); },
  };
  const auto extract = standardExtract();
  sim::setBatchWidthOverride(1);
  const auto sequential = sim::monteCarloSweep(mc, factories, extract);
  sim::setBatchWidthOverride(4);
  const auto batched = sim::monteCarloSweep(mc, factories, extract);
  ASSERT_EQ(batched.size(), sequential.size());
  for (std::size_t point = 0; point < batched.size(); ++point) {
    expectAggregatesEqual(batched[point], sequential[point]);
  }
}

// Adaptive mode folds samples in replication order at batch boundaries,
// so the realized replication counts — not just the means — must agree.
TEST(BatchMonteCarlo, AdaptiveRealizedCountsMatchWidthOne) {
  WidthGuard guard;
  sim::MonteCarloConfig mc = smallMonteCarlo();
  mc.adaptive.targetCi = 0.05;
  mc.adaptive.minReps = 4;
  mc.adaptive.maxReps = 20;
  const auto factory = [] {
    return std::make_unique<protocols::ProbabilisticBroadcast>(0.6);
  };
  const auto extract = standardExtract();
  sim::setBatchWidthOverride(1);
  const auto sequential = sim::monteCarlo(mc, factory, extract);
  sim::setBatchWidthOverride(4);
  const auto batched = sim::monteCarlo(mc, factory, extract);
  expectAggregatesEqual(batched, sequential);

  // And through the pruning sweep as well.
  const std::vector<protocols::ProtocolFactory> factories = {
      [] { return std::make_unique<protocols::ProbabilisticBroadcast>(0.5); },
      [] { return std::make_unique<protocols::SimpleFlooding>(); },
  };
  sim::setBatchWidthOverride(1);
  const auto sweepSeq = sim::monteCarloSweep(mc, factories, extract);
  sim::setBatchWidthOverride(4);
  const auto sweepBat = sim::monteCarloSweep(mc, factories, extract);
  ASSERT_EQ(sweepBat.size(), sweepSeq.size());
  for (std::size_t point = 0; point < sweepBat.size(); ++point) {
    expectAggregatesEqual(sweepBat[point], sweepSeq[point]);
  }
}

TEST(BatchMonteCarlo, RunReplicationsMatchesWidthOne) {
  WidthGuard guard;
  const sim::MonteCarloConfig mc = smallMonteCarlo();
  const auto factory = [] {
    return std::make_unique<protocols::CounterBasedBroadcast>(3);
  };
  sim::setBatchWidthOverride(1);
  const auto sequential = sim::runReplications(mc, factory);
  sim::setBatchWidthOverride(4);
  const auto batched = sim::runReplications(mc, factory);
  ASSERT_EQ(batched.size(), sequential.size());
  for (std::size_t rep = 0; rep < batched.size(); ++rep) {
    expectIdentical(batched[rep], sequential[rep],
                    "rep " + std::to_string(rep));
  }
}

}  // namespace
