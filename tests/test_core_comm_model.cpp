#include "core/comm_model.hpp"

#include <gtest/gtest.h>

#include "support/error.hpp"

namespace nsmodel::core {
namespace {

TEST(CommModel, CfmProperties) {
  const CommModel cfm = CommModel::collisionFree();
  EXPECT_STREQ(cfm.name(), "CFM");
  EXPECT_TRUE(cfm.guaranteesDelivery());
  EXPECT_FALSE(cfm.exposesCollisions());
  EXPECT_EQ(cfm.analyticChannel(), analytic::ChannelKind::CollisionFree);
  EXPECT_EQ(cfm.simulationChannel(), net::ChannelModel::CollisionFree);
}

TEST(CommModel, CamProperties) {
  const CommModel cam = CommModel::collisionAware();
  EXPECT_STREQ(cam.name(), "CAM");
  EXPECT_FALSE(cam.guaranteesDelivery());
  EXPECT_TRUE(cam.exposesCollisions());
  EXPECT_EQ(cam.analyticChannel(), analytic::ChannelKind::CollisionAware);
  EXPECT_EQ(cam.simulationChannel(), net::ChannelModel::CollisionAware);
}

TEST(CommModel, CarrierSenseProperties) {
  const CommModel cs = CommModel::carrierSenseAware(2.0);
  EXPECT_STREQ(cs.name(), "CAM-CS");
  EXPECT_TRUE(cs.exposesCollisions());
  EXPECT_DOUBLE_EQ(cs.csFactor(), 2.0);
  EXPECT_EQ(cs.analyticChannel(), analytic::ChannelKind::CarrierSenseAware);
}

TEST(CommModel, CostFunctionsCarryThrough) {
  const CommModel cam = CommModel::collisionAware({0.5, 2.0});
  EXPECT_DOUBLE_EQ(cam.costs().timePerPacket, 0.5);
  EXPECT_DOUBLE_EQ(cam.costs().energyPerPacket, 2.0);
}

TEST(CommModel, CamCostsAtMostCfmCosts) {
  // The paper's relation t_a <= t_f, e_a <= e_f expressed via defaults:
  // callers model it by configuring costs; here we just confirm both are
  // representable.
  const CommModel cfm = CommModel::collisionFree({2.0, 3.0});
  const CommModel cam = CommModel::collisionAware({1.0, 1.5});
  EXPECT_LE(cam.costs().timePerPacket, cfm.costs().timePerPacket);
  EXPECT_LE(cam.costs().energyPerPacket, cfm.costs().energyPerPacket);
}

TEST(CommModel, Validation) {
  EXPECT_THROW(CommModel::collisionAware({0.0, 1.0}), nsmodel::Error);
  EXPECT_THROW(CommModel::collisionAware({1.0, -1.0}), nsmodel::Error);
  EXPECT_THROW(CommModel::carrierSenseAware(1.0), nsmodel::Error);
  EXPECT_THROW(CommModel::carrierSenseAware(0.5), nsmodel::Error);
}

}  // namespace
}  // namespace nsmodel::core
