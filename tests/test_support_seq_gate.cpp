// support::SeqGate: the single-writer monotone counter behind the
// sharded engine's per-neighbor-pair synchronisation (DESIGN.md §14).
// Covered here: the single-threaded counter semantics, the
// release/acquire publication contract (data written before advanceTo
// is visible after a satisfied waitFor — the property TSan checks when
// this binary runs in the sanitizer lane), abandonment waking present
// and future waiters, and a producer/consumer chain pushing thousands
// of values through the park/notify handshake.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "support/seq_gate.hpp"

namespace {

using nsmodel::support::SeqGate;

TEST(SeqGate, StartsAtZeroAndAdvancesMonotonically) {
  SeqGate gate;
  EXPECT_EQ(gate.load(), 0u);
  gate.advanceTo(3);
  EXPECT_EQ(gate.load(), 3u);
  gate.advanceTo(3);  // equal is allowed (idempotent republish)
  EXPECT_EQ(gate.load(), 3u);
  gate.advanceTo(7);
  EXPECT_EQ(gate.load(), 7u);
}

TEST(SeqGate, WaitForReturnsImmediatelyWhenAlreadySatisfied) {
  SeqGate gate;
  gate.advanceTo(10);
  EXPECT_EQ(gate.waitFor(5), 10u);
  EXPECT_EQ(gate.waitFor(10), 10u);
  EXPECT_EQ(gate.waitFor(0), 10u);
}

TEST(SeqGate, ResetReinitialisesBetweenRuns) {
  SeqGate gate;
  gate.advanceTo(42);
  gate.reset(7);
  EXPECT_EQ(gate.load(), 7u);
  EXPECT_EQ(gate.waitFor(7), 7u);
}

TEST(SeqGate, AbandonUnblocksPresentAndFutureWaiters) {
  SeqGate gate;
  std::thread waiter([&] {
    // Parks (the target is far beyond anything advanceTo will publish),
    // then wakes on abandonment with the sentinel value.
    EXPECT_EQ(gate.waitFor(1000), SeqGate::kAbandoned);
  });
  gate.abandon();
  waiter.join();
  // Future waits return immediately, forever.
  EXPECT_EQ(gate.waitFor(5), SeqGate::kAbandoned);
  EXPECT_EQ(gate.load(), SeqGate::kAbandoned);
}

TEST(SeqGate, PublishesWritesToSatisfiedWaiters) {
  // The engine's actual usage pattern: the owner writes data, advances
  // the gate, and a consumer that observed value >= t reads the data.
  // One million-step chain through two gates, each side alternating
  // producer/consumer, with the payload checked at every step.
  SeqGate ping;
  SeqGate pong;
  constexpr std::uint64_t kSteps = 20000;
  std::uint64_t payloadA = 0;
  std::uint64_t payloadB = 0;
  std::thread peer([&] {
    for (std::uint64_t step = 1; step <= kSteps; ++step) {
      ASSERT_GE(ping.waitFor(step), step);
      ASSERT_EQ(payloadA, step);  // the write advanceTo published
      payloadB = step * 2;
      pong.advanceTo(step);
    }
  });
  for (std::uint64_t step = 1; step <= kSteps; ++step) {
    payloadA = step;
    ping.advanceTo(step);
    ASSERT_GE(pong.waitFor(step), step);
    ASSERT_EQ(payloadB, step * 2);
  }
  peer.join();
}

TEST(SeqGate, ManyWaitersAllWakeAtTheSameTarget) {
  SeqGate gate;
  std::vector<std::thread> waiters;
  std::atomic<int> woken{0};
  for (int i = 0; i < 8; ++i) {
    waiters.emplace_back([&] {
      EXPECT_GE(gate.waitFor(100), 100u);
      woken.fetch_add(1);
    });
  }
  gate.advanceTo(99);  // not yet
  gate.advanceTo(100);
  for (auto& t : waiters) t.join();
  EXPECT_EQ(woken.load(), 8);
}

}  // namespace
