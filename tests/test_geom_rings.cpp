#include "geom/rings.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace nsmodel::geom {
namespace {

TEST(RingGeometry, ValidatesConstruction) {
  EXPECT_THROW(RingGeometry(0, 1.0), nsmodel::Error);
  EXPECT_THROW(RingGeometry(5, 0.0), nsmodel::Error);
  EXPECT_THROW(RingGeometry(5, -1.0), nsmodel::Error);
}

TEST(RingGeometry, FieldRadius) {
  const RingGeometry geo(5, 2.0);
  EXPECT_DOUBLE_EQ(geo.fieldRadius(), 10.0);
}

TEST(RingGeometry, RingAreasMatchFormula) {
  const RingGeometry geo(5, 1.0);
  // C_k = pi r^2 (k^2 - (k-1)^2) = pi (2k - 1) for r = 1.
  for (int k = 1; k <= 5; ++k) {
    EXPECT_NEAR(geo.ringArea(k), M_PI * (2.0 * k - 1.0), 1e-12);
  }
}

TEST(RingGeometry, RingAreasSumToFieldArea) {
  const RingGeometry geo(7, 1.3);
  double sum = 0.0;
  for (int k = 1; k <= 7; ++k) sum += geo.ringArea(k);
  const double fieldR = geo.fieldRadius();
  EXPECT_NEAR(sum, M_PI * fieldR * fieldR, 1e-9);
}

TEST(RingGeometry, OutOfRangeRingsHaveZeroArea) {
  const RingGeometry geo(5, 1.0);
  EXPECT_DOUBLE_EQ(geo.ringArea(0), 0.0);
  EXPECT_DOUBLE_EQ(geo.ringArea(-1), 0.0);
  EXPECT_DOUBLE_EQ(geo.ringArea(6), 0.0);
}

TEST(RingGeometry, RadialPositionConvention) {
  const RingGeometry geo(5, 1.0);
  EXPECT_DOUBLE_EQ(geo.radialPosition(1, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(geo.radialPosition(1, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(geo.radialPosition(3, 0.25), 2.25);
  EXPECT_THROW(geo.radialPosition(0, 0.5), nsmodel::Error);
  EXPECT_THROW(geo.radialPosition(1, 1.5), nsmodel::Error);
  EXPECT_THROW(geo.radialPosition(1, -0.1), nsmodel::Error);
}

// The paper's partition property (Fig. 3): A(x, j-1) + A(x, j) + A(x, j+1)
// equals the whole transmission disk pi r^2 for interior nodes.
TEST(RingGeometry, CoverageAreasPartitionTransmissionDisk) {
  const RingGeometry geo(5, 1.0);
  support::Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const int j = static_cast<int>(rng.inRange(2, 4));  // interior rings
    const double x = rng.uniform(0.0, 1.0);
    double sum = 0.0;
    for (int k = j - 1; k <= j + 1; ++k) {
      const double a = geo.coverageArea(j, x, k);
      EXPECT_GE(a, -1e-12);
      sum += a;
    }
    EXPECT_NEAR(sum, M_PI, 1e-9) << "j=" << j << " x=" << x;
  }
}

TEST(RingGeometry, CoverageOutsideAdjacentRingsIsZero) {
  const RingGeometry geo(5, 1.0);
  // A node in ring 3 cannot reach rings 1 or 5 (range == ring width).
  for (double x : {0.0, 0.3, 0.7, 1.0}) {
    EXPECT_NEAR(geo.coverageArea(3, x, 1), 0.0, 1e-12);
    EXPECT_NEAR(geo.coverageArea(3, x, 5), 0.0, 1e-12);
  }
}

TEST(RingGeometry, BoundaryRingLosesCoverageOutsideField) {
  const RingGeometry geo(5, 1.0);
  // A node in the outermost ring: part of its disk leaves the field, so
  // the within-field coverage is less than pi r^2.
  double sum = 0.0;
  for (int k = 4; k <= 5; ++k) sum += geo.coverageArea(5, 0.5, k);
  EXPECT_LT(sum, M_PI - 0.1);
}

TEST(RingGeometry, InnermostNodeCoversWholeRingOne) {
  const RingGeometry geo(5, 1.0);
  // A node at the exact centre (j=1, x=0) covers all of ring 1.
  EXPECT_NEAR(geo.coverageArea(1, 0.0, 1), geo.ringArea(1), 1e-12);
  EXPECT_NEAR(geo.coverageArea(1, 0.0, 2), 0.0, 1e-12);
}

TEST(RingGeometry, CoverageMatchesMonteCarlo) {
  const RingGeometry geo(5, 1.0);
  support::Rng rng(2);
  const int j = 3;
  const double x = 0.4;
  const double pos = geo.radialPosition(j, x);
  const int n = 300000;
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < n; ++i) {
    // Sample uniformly in u's unit transmission disk.
    const double rho = std::sqrt(rng.uniform());
    const double theta = rng.uniform(0.0, 2.0 * M_PI);
    const double px = pos + rho * std::cos(theta);
    const double py = rho * std::sin(theta);
    const double dist = std::sqrt(px * px + py * py);
    const int ring = dist == 0.0 ? 1 : static_cast<int>(std::ceil(dist));
    if (ring >= j - 1 && ring <= j + 1) ++counts[ring - (j - 1)];
  }
  for (int t = 0; t < 3; ++t) {
    const double estimate = static_cast<double>(counts[t]) / n * M_PI;
    EXPECT_NEAR(geo.coverageArea(j, x, j - 1 + t), estimate, 0.02)
        << "ring offset " << t;
  }
}

// Appendix A: B areas partition the carrier-sensing annulus
// (area pi (cs^2 - 1) r^2) for interior nodes.
TEST(RingGeometry, CarrierSenseAreasPartitionAnnulus) {
  const RingGeometry geo(7, 1.0);
  support::Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    const int j = static_cast<int>(rng.inRange(3, 5));
    const double x = rng.uniform(0.0, 1.0);
    double sum = 0.0;
    for (int k = j - 2; k <= j + 2; ++k) {
      const double b = geo.carrierSenseArea(j, x, k, 2.0);
      EXPECT_GE(b, -1e-12);
      sum += b;
    }
    EXPECT_NEAR(sum, M_PI * 3.0, 1e-9) << "j=" << j << " x=" << x;
  }
}

TEST(RingGeometry, CarrierSenseExcludesTransmissionDisk) {
  const RingGeometry geo(5, 1.0);
  // For every ring, B + A <= ring-disk intersection with the cs disk.
  const int j = 3;
  const double x = 0.5;
  for (int k = j - 1; k <= j + 1; ++k) {
    const double total =
        geo.ringDiskIntersection(k, geo.radialPosition(j, x), 2.0);
    const double a = geo.coverageArea(j, x, k);
    const double b = geo.carrierSenseArea(j, x, k, 2.0);
    EXPECT_NEAR(a + b, total, 1e-9);
  }
}

TEST(RingGeometry, CarrierSenseFactorValidation) {
  const RingGeometry geo(5, 1.0);
  EXPECT_THROW(geo.carrierSenseArea(3, 0.5, 3, 1.0), nsmodel::Error);
  EXPECT_THROW(geo.carrierSenseArea(3, 0.5, 3, 0.5), nsmodel::Error);
}

TEST(RingGeometry, RingDiskIntersectionValidation) {
  const RingGeometry geo(5, 1.0);
  EXPECT_THROW(geo.ringDiskIntersection(1, -1.0, 1.0), nsmodel::Error);
  EXPECT_THROW(geo.ringDiskIntersection(1, 1.0, -1.0), nsmodel::Error);
  EXPECT_DOUBLE_EQ(geo.ringDiskIntersection(9, 1.0, 1.0), 0.0);
}

}  // namespace
}  // namespace nsmodel::geom
