#include "sim/experiment.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "protocols/counter_based.hpp"
#include "protocols/flooding.hpp"
#include "protocols/probabilistic.hpp"
#include "support/error.hpp"

namespace nsmodel::sim {
namespace {

ExperimentConfig paperConfig(double rho) {
  ExperimentConfig cfg;
  cfg.rings = 5;
  cfg.ringWidth = 1.0;
  cfg.neighborDensity = rho;
  cfg.slotsPerPhase = 3;
  return cfg;
}

protocols::ProtocolFactory flooding() {
  return [] { return std::make_unique<protocols::SimpleFlooding>(); };
}

protocols::ProtocolFactory pb(double p) {
  return [p] {
    return std::make_unique<protocols::ProbabilisticBroadcast>(p);
  };
}

TEST(Experiment, IsDeterministicPerStream) {
  const ExperimentConfig cfg = paperConfig(40.0);
  const RunResult a = runExperiment(cfg, pb(0.3), 42, 7);
  const RunResult b = runExperiment(cfg, pb(0.3), 42, 7);
  EXPECT_EQ(a.reachedCount(), b.reachedCount());
  EXPECT_EQ(a.totalBroadcasts(), b.totalBroadcasts());
  EXPECT_DOUBLE_EQ(a.finalReachability(), b.finalReachability());
}

TEST(Experiment, StreamsDiffer) {
  const ExperimentConfig cfg = paperConfig(40.0);
  const RunResult a = runExperiment(cfg, pb(0.3), 42, 0);
  const RunResult b = runExperiment(cfg, pb(0.3), 42, 1);
  // Different deployments -> almost surely different outcomes.
  EXPECT_TRUE(a.reachedCount() != b.reachedCount() ||
              a.totalBroadcasts() != b.totalBroadcasts());
}

TEST(Experiment, CfmFloodingReachesEveryConnectedNode) {
  ExperimentConfig cfg = paperConfig(30.0);
  cfg.channel = net::ChannelModel::CollisionFree;
  const RunResult run = runExperiment(cfg, flooding(), 1, 0);
  // With rho = 30 the disk graph is connected w.h.p.; CFM flooding must
  // reach every node.
  EXPECT_DOUBLE_EQ(run.finalReachability(), 1.0);
  // And every node broadcasts exactly once: M = N.
  EXPECT_EQ(run.totalBroadcasts(), run.nodeCount());
}

TEST(Experiment, CfmFloodingLatencyIsRoughlyOneRingPerPhase) {
  ExperimentConfig cfg = paperConfig(30.0);
  cfg.channel = net::ChannelModel::CollisionFree;
  const RunResult run = runExperiment(cfg, flooding(), 2, 0);
  const auto latency = run.latencyForReachability(0.999);
  ASSERT_TRUE(latency.has_value());
  // Each hop advances at most r, so covering the radius-P*r field needs at
  // least ~P phases; discrete relays advance a little less than r per hop,
  // so allow a modest tail beyond P.
  EXPECT_GE(*latency, 4.0);
  EXPECT_LE(*latency, 10.0);
}

TEST(Experiment, CamFloodingLosesTimeToCollisions) {
  // Collisions rarely destroy *final* reachability for flooding — later
  // relays heal the wave — but they cripple progress within the paper's
  // 5-phase window (cf. Fig. 8's p = 1 curve).
  const ExperimentConfig cfg = paperConfig(100.0);
  const RunResult run = runExperiment(cfg, flooding(), 3, 0);
  EXPECT_LT(run.reachabilityAfter(5.0), 0.8);
  std::uint64_t lost = 0;
  for (const auto& phase : run.phases()) lost += phase.lostReceivers;
  EXPECT_GT(lost, 0u);
}

TEST(Experiment, ZeroProbabilityOnlySourceTransmits) {
  const ExperimentConfig cfg = paperConfig(40.0);
  const RunResult run = runExperiment(cfg, pb(0.0), 4, 0);
  EXPECT_EQ(run.totalBroadcasts(), 1u);
  // Only ring-1 nodes (the source's neighbours) receive.
  EXPECT_LT(run.finalReachability(), 0.1);
  EXPECT_GT(run.reachedCount(), 1u);
}

TEST(Experiment, SourceNeighborsAllReceiveInPhaseOne) {
  // Phase 1 has a single transmitter, so no collisions are possible and
  // the source's whole neighbourhood receives (matching the analytic
  // model's n_1^1 = delta * pi * r^2).
  const ExperimentConfig cfg = paperConfig(50.0);
  const RunResult run = runExperiment(cfg, pb(0.5), 5, 0);
  ASSERT_FALSE(run.phases().empty());
  EXPECT_EQ(run.phases()[0].transmissions, 1u);
  EXPECT_EQ(run.phases()[0].lostReceivers, 0u);
  EXPECT_GT(run.phases()[0].newReceivers, 30u);  // ~rho neighbours
}

TEST(Experiment, EachNodeTransmitsAtMostOnce) {
  const ExperimentConfig cfg = paperConfig(60.0);
  support::Rng rng = support::Rng::forStream(6, 0);
  const net::Deployment dep =
      net::Deployment::paperDisk(rng, cfg.rings, cfg.ringWidth,
                                 cfg.neighborDensity);
  const net::Topology topo(dep, cfg.ringWidth);
  net::EnergyLedger ledger(dep.nodeCount(), cfg.costs);
  protocols::SimpleFlooding protocol;
  const RunResult run =
      runBroadcast(cfg, dep, topo, protocol, rng, &ledger);
  for (net::NodeId id = 0; id < dep.nodeCount(); ++id) {
    EXPECT_LE(ledger.txCount(id), 1u) << "node " << id;
  }
  EXPECT_EQ(ledger.txCount(), run.totalBroadcasts());
}

TEST(Experiment, OnlyReceiversRebroadcast) {
  // Total broadcasts can never exceed 1 + receivers.
  const ExperimentConfig cfg = paperConfig(80.0);
  const RunResult run = runExperiment(cfg, flooding(), 7, 0);
  EXPECT_LE(run.totalBroadcasts(), run.reachedCount());
}

TEST(Experiment, EnergyLedgerCountsDeliveries) {
  const ExperimentConfig cfg = paperConfig(40.0);
  support::Rng rng = support::Rng::forStream(8, 0);
  const net::Deployment dep =
      net::Deployment::paperDisk(rng, cfg.rings, cfg.ringWidth,
                                 cfg.neighborDensity);
  const net::Topology topo(dep, cfg.ringWidth);
  net::EnergyLedger ledger(dep.nodeCount(), cfg.costs);
  protocols::ProbabilisticBroadcast protocol(0.4);
  const RunResult run =
      runBroadcast(cfg, dep, topo, protocol, rng, &ledger);
  std::uint64_t deliveries = 0;
  for (const auto& phase : run.phases()) deliveries += phase.deliveries;
  EXPECT_EQ(ledger.rxCount(), deliveries);
}

TEST(Experiment, MaxPhasesBoundsTheRun) {
  ExperimentConfig cfg = paperConfig(60.0);
  cfg.maxPhases = 3;
  const RunResult run = runExperiment(cfg, flooding(), 9, 0);
  EXPECT_LE(run.phases().size(), 3u);
}

TEST(Experiment, CounterBasedSavesBroadcastsVersusFlooding) {
  const ExperimentConfig cfg = paperConfig(80.0);
  const auto counter = [] {
    return std::make_unique<protocols::CounterBasedBroadcast>(2);
  };
  std::uint64_t floodTx = 0, counterTx = 0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    floodTx += runExperiment(cfg, flooding(), 10, s).totalBroadcasts();
    counterTx += runExperiment(cfg, counter, 10, s).totalBroadcasts();
  }
  EXPECT_LT(counterTx, floodTx);
}

TEST(Experiment, CarrierSenseReachesFewerThanCam) {
  ExperimentConfig cam = paperConfig(100.0);
  ExperimentConfig cs = cam;
  cs.channel = net::ChannelModel::CarrierSenseAware;
  double camReach = 0.0, csReach = 0.0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    camReach += runExperiment(cam, pb(0.3), 11, s).finalReachability();
    csReach += runExperiment(cs, pb(0.3), 11, s).finalReachability();
  }
  EXPECT_LT(csReach, camReach);
}

TEST(Experiment, ZeroFailureRateMatchesFailureFreePath) {
  // Turning the feature off must not perturb the RNG stream.
  ExperimentConfig plain = paperConfig(40.0);
  ExperimentConfig zeroRate = paperConfig(40.0);
  zeroRate.nodeFailureRate = 0.0;
  const RunResult a = runExperiment(plain, pb(0.3), 42, 9);
  const RunResult b = runExperiment(zeroRate, pb(0.3), 42, 9);
  EXPECT_EQ(a.reachedCount(), b.reachedCount());
  EXPECT_EQ(a.totalBroadcasts(), b.totalBroadcasts());
}

TEST(Experiment, FailuresReduceReachability) {
  ExperimentConfig healthy = paperConfig(60.0);
  ExperimentConfig failing = paperConfig(60.0);
  failing.nodeFailureRate = 0.3;
  double healthyReach = 0.0, failingReach = 0.0;
  for (std::uint64_t s = 0; s < 6; ++s) {
    healthyReach += runExperiment(healthy, pb(0.3), 42, s).finalReachability();
    failingReach += runExperiment(failing, pb(0.3), 42, s).finalReachability();
  }
  EXPECT_LT(failingReach, healthyReach);
}

TEST(Experiment, HigherFailureRateHurtsMore) {
  auto meanReach = [](double rate) {
    ExperimentConfig cfg = paperConfig(60.0);
    cfg.nodeFailureRate = rate;
    double total = 0.0;
    for (std::uint64_t s = 0; s < 6; ++s) {
      total += runExperiment(cfg, pb(0.3), 42, s).finalReachability();
    }
    return total;
  };
  EXPECT_GT(meanReach(0.05), meanReach(0.5));
}

TEST(Experiment, DeadNodesNeverTransmit) {
  // With a near-certain per-phase death, nothing beyond the source's first
  // wave can propagate: broadcasts stay tiny.
  ExperimentConfig cfg = paperConfig(60.0);
  cfg.nodeFailureRate = 0.99;
  const RunResult run = runExperiment(cfg, flooding(), 42, 0);
  // The source transmits in phase 1; phase-2 rebroadcasters are almost all
  // dead by their slot.
  EXPECT_LT(run.totalBroadcasts(), 60u);
  EXPECT_LT(run.finalReachability(), 0.2);
}

TEST(Experiment, FailureRateValidation) {
  ExperimentConfig cfg = paperConfig(40.0);
  cfg.nodeFailureRate = -0.1;
  EXPECT_THROW(runExperiment(cfg, pb(0.5), 1, 0), nsmodel::ConfigError);
  cfg.nodeFailureRate = 1.5;
  EXPECT_THROW(runExperiment(cfg, pb(0.5), 1, 0), nsmodel::ConfigError);
  cfg.nodeFailureRate = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(runExperiment(cfg, pb(0.5), 1, 0), nsmodel::ConfigError);
  // The boundary cases are legal: 1.0 kills every node at the first phase
  // boundary, leaving just the source's own transmission.
  cfg.nodeFailureRate = 1.0;
  const RunResult run = runExperiment(cfg, flooding(), 1, 0);
  EXPECT_LE(run.totalBroadcasts(), 1u);
  // Legacy knob and the structured crash model are mutually exclusive:
  // one failure code path per run.
  cfg.nodeFailureRate = 0.1;
  cfg.fault.crash.crashRate = 0.1;
  EXPECT_THROW(runExperiment(cfg, pb(0.5), 1, 0), nsmodel::ConfigError);
}

TEST(Experiment, Validation) {
  ExperimentConfig cfg = paperConfig(40.0);
  cfg.slotsPerPhase = 0;
  EXPECT_THROW(runExperiment(cfg, pb(0.5), 1, 0), nsmodel::Error);
  cfg = paperConfig(40.0);
  cfg.maxPhases = 0;
  EXPECT_THROW(runExperiment(cfg, pb(0.5), 1, 0), nsmodel::Error);
  cfg = paperConfig(40.0);
  EXPECT_THROW(
      runExperiment(cfg, [] {
        return std::unique_ptr<protocols::BroadcastProtocol>();
      }, 1, 0),
      nsmodel::Error);
}

}  // namespace
}  // namespace nsmodel::sim
