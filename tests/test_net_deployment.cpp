#include "net/deployment.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"

namespace nsmodel::net {
namespace {

TEST(Deployment, UniformDiskBasics) {
  support::Rng rng(1);
  const Deployment dep = Deployment::uniformDisk(rng, 5.0, 100);
  EXPECT_EQ(dep.nodeCount(), 100u);
  EXPECT_EQ(dep.source(), 0u);
  EXPECT_DOUBLE_EQ(dep.fieldRadius(), 5.0);
  // The source sits at the centre.
  EXPECT_DOUBLE_EQ(dep.position(0).x, 0.0);
  EXPECT_DOUBLE_EQ(dep.position(0).y, 0.0);
}

TEST(Deployment, AllNodesInsideField) {
  support::Rng rng(2);
  const Deployment dep = Deployment::uniformDisk(rng, 3.0, 500);
  for (NodeId id = 0; id < dep.nodeCount(); ++id) {
    EXPECT_LE(dep.position(id).norm(), 3.0 + 1e-12);
  }
}

TEST(Deployment, SingleNodeDeployment) {
  support::Rng rng(3);
  const Deployment dep = Deployment::uniformDisk(rng, 1.0, 1);
  EXPECT_EQ(dep.nodeCount(), 1u);
  EXPECT_EQ(dep.source(), 0u);
}

TEST(Deployment, RejectsZeroNodes) {
  support::Rng rng(4);
  EXPECT_THROW(Deployment::uniformDisk(rng, 1.0, 0), nsmodel::Error);
}

TEST(Deployment, IsReproducibleFromSeed) {
  support::Rng a(77), b(77);
  const Deployment da = Deployment::uniformDisk(a, 5.0, 50);
  const Deployment db = Deployment::uniformDisk(b, 5.0, 50);
  for (NodeId id = 0; id < 50; ++id) {
    EXPECT_EQ(da.position(id), db.position(id));
  }
}

TEST(Deployment, PaperDiskMatchesRhoPSquared) {
  support::Rng rng(5);
  // N = rho * P^2: the paper's 500..3500 range for rho 20..140, P = 5.
  const Deployment d20 = Deployment::paperDisk(rng, 5, 1.0, 20.0);
  EXPECT_EQ(d20.nodeCount(), 500u);
  const Deployment d140 = Deployment::paperDisk(rng, 5, 1.0, 140.0);
  EXPECT_EQ(d140.nodeCount(), 3500u);
  EXPECT_DOUBLE_EQ(d140.fieldRadius(), 5.0);
}

TEST(Deployment, PaperDiskScalesWithRingWidth) {
  support::Rng rng(6);
  const Deployment dep = Deployment::paperDisk(rng, 4, 2.5, 30.0);
  EXPECT_DOUBLE_EQ(dep.fieldRadius(), 10.0);
  EXPECT_EQ(dep.nodeCount(), 480u);  // 30 * 16
}

TEST(Deployment, PaperDiskValidation) {
  support::Rng rng(7);
  EXPECT_THROW(Deployment::paperDisk(rng, 0, 1.0, 20.0), nsmodel::Error);
  EXPECT_THROW(Deployment::paperDisk(rng, 5, 0.0, 20.0), nsmodel::Error);
  EXPECT_THROW(Deployment::paperDisk(rng, 5, 1.0, 0.0), nsmodel::Error);
}

TEST(Deployment, DensityIsSpatialLyUniform) {
  support::Rng rng(8);
  const Deployment dep = Deployment::paperDisk(rng, 5, 1.0, 100.0);
  // Fraction of nodes within half the field radius should be ~1/4
  // (area-uniform), modulo the pinned source.
  std::size_t inner = 0;
  for (NodeId id = 0; id < dep.nodeCount(); ++id) {
    if (dep.position(id).norm() <= 2.5) ++inner;
  }
  const double fraction =
      static_cast<double>(inner) / static_cast<double>(dep.nodeCount());
  EXPECT_NEAR(fraction, 0.25, 0.03);
}

TEST(Deployment, RingOfClassifiesRadii) {
  support::Rng rng(9);
  const Deployment dep = Deployment::uniformDisk(rng, 5.0, 200);
  EXPECT_EQ(dep.ringOf(dep.source(), 1.0), 1);  // centre
  for (NodeId id = 0; id < dep.nodeCount(); ++id) {
    const int ring = dep.ringOf(id, 1.0);
    const double dist = dep.position(id).norm();
    EXPECT_GE(ring, 1);
    EXPECT_LE(ring, 5);
    if (dist > 0.0) {
      EXPECT_GT(dist, ring - 1.0);
      EXPECT_LE(dist, static_cast<double>(ring) + 1e-12);
    }
  }
}

TEST(Deployment, PositionOutOfRangeThrows) {
  support::Rng rng(10);
  const Deployment dep = Deployment::uniformDisk(rng, 1.0, 10);
  EXPECT_THROW(dep.position(10), nsmodel::Error);
  EXPECT_THROW(dep.ringOf(10, 1.0), nsmodel::Error);
  EXPECT_THROW(dep.ringOf(0, 0.0), nsmodel::Error);
}

TEST(Deployment, JitteredGridSourceNearCenter) {
  support::Rng rng(11);
  const Deployment dep = Deployment::jitteredGrid(rng, 5.0, 1.0, 0.0);
  EXPECT_LT(dep.position(dep.source()).norm(), 0.5);
  EXPECT_GT(dep.nodeCount(), 60u);
}

TEST(Deployment, JitteredGridTooCoarseThrows) {
  support::Rng rng(12);
  // Spacing far larger than the field still yields the centre point, so
  // shrink the field below half the spacing with an offset grid... the
  // lattice always contains (0,0), so this cannot actually be empty; keep
  // the constructor contract covered via Deployment directly instead.
  EXPECT_THROW(Deployment({}, 0, 1.0), nsmodel::Error);
  EXPECT_THROW(Deployment({{0.0, 0.0}}, 1, 1.0), nsmodel::Error);
  EXPECT_THROW(Deployment({{0.0, 0.0}}, 0, 0.0), nsmodel::Error);
}

TEST(Deployment, OffCentreSourcePlacement) {
  support::Rng rng(30);
  const Deployment dep =
      Deployment::uniformDiskWithSource(rng, 5.0, 100, 0.8);
  EXPECT_EQ(dep.source(), 0u);
  EXPECT_NEAR(dep.position(0).norm(), 4.0, 1e-12);
  // All other nodes still land inside the field.
  for (NodeId id = 1; id < dep.nodeCount(); ++id) {
    EXPECT_LE(dep.position(id).norm(), 5.0 + 1e-12);
  }
}

TEST(Deployment, ZeroFractionRecoversCentralSource) {
  support::Rng a(31), b(31);
  const Deployment central = Deployment::uniformDisk(a, 5.0, 50);
  const Deployment zero = Deployment::uniformDiskWithSource(b, 5.0, 50, 0.0);
  for (NodeId id = 0; id < 50; ++id) {
    EXPECT_EQ(central.position(id), zero.position(id));
  }
}

TEST(Deployment, SourceFractionValidation) {
  support::Rng rng(32);
  EXPECT_THROW(Deployment::uniformDiskWithSource(rng, 5.0, 10, -0.1),
               nsmodel::Error);
  EXPECT_THROW(Deployment::uniformDiskWithSource(rng, 5.0, 10, 1.1),
               nsmodel::Error);
}

TEST(Deployment, RadialGradientRingPopulations) {
  support::Rng rng(20);
  // rho_k per ring; N_k = rho_k * (2k - 1).
  const std::vector<double> rhos{100.0, 50.0, 20.0};
  const Deployment dep = Deployment::radialGradientDisk(rng, 1.0, rhos);
  EXPECT_DOUBLE_EQ(dep.fieldRadius(), 3.0);
  std::size_t counts[3] = {0, 0, 0};
  for (NodeId id = 1; id < dep.nodeCount(); ++id) {
    const int ring = dep.ringOf(id, 1.0);
    ASSERT_GE(ring, 1);
    ASSERT_LE(ring, 3);
    ++counts[ring - 1];
  }
  EXPECT_EQ(counts[0], 100u);       // 100 * 1
  EXPECT_EQ(counts[1], 150u);       // 50 * 3
  EXPECT_EQ(counts[2], 100u);       // 20 * 5
  EXPECT_EQ(dep.source(), 0u);
}

TEST(Deployment, RadialGradientUniformWithinRings) {
  support::Rng rng(21);
  // One thick outer ring: fraction within the inner half of the annulus
  // [1, 2] should be (1.5^2 - 1) / (2^2 - 1) = 5/12 by area uniformity.
  const Deployment dep =
      Deployment::radialGradientDisk(rng, 1.0, {0.0, 2000.0});
  std::size_t inner = 0, total = 0;
  for (NodeId id = 1; id < dep.nodeCount(); ++id) {
    const double d = dep.position(id).norm();
    ASSERT_GE(d, 1.0 - 1e-9);
    ASSERT_LE(d, 2.0 + 1e-9);
    ++total;
    if (d <= 1.5) ++inner;
  }
  EXPECT_NEAR(static_cast<double>(inner) / static_cast<double>(total),
              5.0 / 12.0, 0.02);
}

TEST(Deployment, RadialGradientUniformMatchesPaperDiskCount) {
  support::Rng rng(22);
  const Deployment gradient = Deployment::radialGradientDisk(
      rng, 1.0, {60.0, 60.0, 60.0, 60.0, 60.0});
  // N = 1 (source) + sum rho (2k - 1) = 1 + 60 * 25.
  EXPECT_EQ(gradient.nodeCount(), 1501u);
}

TEST(Deployment, RadialGradientValidation) {
  support::Rng rng(23);
  EXPECT_THROW(Deployment::radialGradientDisk(rng, 0.0, {10.0}),
               nsmodel::Error);
  EXPECT_THROW(Deployment::radialGradientDisk(rng, 1.0, {}), nsmodel::Error);
  EXPECT_THROW(Deployment::radialGradientDisk(rng, 1.0, {10.0, -1.0}),
               nsmodel::Error);
}

}  // namespace
}  // namespace nsmodel::net
