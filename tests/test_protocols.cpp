#include <gtest/gtest.h>

#include <memory>

#include "protocols/adaptive.hpp"
#include "protocols/counter_based.hpp"
#include "protocols/distance_based.hpp"
#include "protocols/flooding.hpp"
#include "protocols/probabilistic.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace nsmodel::protocols {
namespace {

TEST(SimpleFlooding, AlwaysTransmits) {
  SimpleFlooding protocol;
  support::Rng rng(1);
  ProtocolContext ctx{3, rng};
  for (int i = 0; i < 200; ++i) {
    const auto d = protocol.onFirstReception(0, 0, ctx);
    EXPECT_TRUE(d.transmit);
    EXPECT_GE(d.slot, 0);
    EXPECT_LT(d.slot, 3);
  }
}

TEST(SimpleFlooding, SlotsAreJitteredUniformly) {
  SimpleFlooding protocol;
  support::Rng rng(2);
  ProtocolContext ctx{4, rng};
  int counts[4] = {0, 0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    ++counts[protocol.onFirstReception(0, 0, ctx).slot];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.01);
  }
}

TEST(SimpleFlooding, KeepsPendingOnDuplicates) {
  SimpleFlooding protocol;
  support::Rng rng(3);
  ProtocolContext ctx{3, rng};
  EXPECT_TRUE(protocol.keepPendingAfterDuplicate(0, 0, ctx));
}

TEST(SimpleFlooding, NameAndReset) {
  SimpleFlooding protocol;
  EXPECT_STREQ(protocol.name(), "simple-flooding");
  protocol.reset(100);  // no-op, must not throw
}

TEST(ProbabilisticBroadcast, ValidatesProbability) {
  EXPECT_THROW(ProbabilisticBroadcast(-0.1), nsmodel::Error);
  EXPECT_THROW(ProbabilisticBroadcast(1.1), nsmodel::Error);
  EXPECT_NO_THROW(ProbabilisticBroadcast(0.0));
  EXPECT_NO_THROW(ProbabilisticBroadcast(1.0));
}

TEST(ProbabilisticBroadcast, ExtremesBehaveLikeFloodingAndSilence) {
  support::Rng rng(4);
  ProtocolContext ctx{3, rng};
  ProbabilisticBroadcast always(1.0);
  ProbabilisticBroadcast never(0.0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(always.onFirstReception(0, 0, ctx).transmit);
    EXPECT_FALSE(never.onFirstReception(0, 0, ctx).transmit);
  }
}

TEST(ProbabilisticBroadcast, TransmitFrequencyMatchesP) {
  support::Rng rng(5);
  ProtocolContext ctx{3, rng};
  ProbabilisticBroadcast protocol(0.3);
  EXPECT_DOUBLE_EQ(protocol.probability(), 0.3);
  const int n = 50000;
  int transmitted = 0;
  for (int i = 0; i < n; ++i) {
    if (protocol.onFirstReception(0, 0, ctx).transmit) ++transmitted;
  }
  EXPECT_NEAR(static_cast<double>(transmitted) / n, 0.3, 0.01);
}

TEST(ProbabilisticBroadcast, SlotDistributionIndependentOfOutcome) {
  support::Rng rng(6);
  ProtocolContext ctx{3, rng};
  ProbabilisticBroadcast protocol(0.5);
  int slotCounts[3] = {0, 0, 0};
  int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++slotCounts[protocol.onFirstReception(0, 0, ctx).slot];
  }
  for (int c : slotCounts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 1.0 / 3.0, 0.01);
  }
}

TEST(ProbabilisticBroadcast, SameSeedSameDecisions) {
  support::Rng a(7), b(7);
  ProtocolContext ctxA{3, a}, ctxB{3, b};
  ProbabilisticBroadcast pa(0.4), pb(0.4);
  for (int i = 0; i < 100; ++i) {
    const auto da = pa.onFirstReception(0, 0, ctxA);
    const auto db = pb.onFirstReception(0, 0, ctxB);
    EXPECT_EQ(da.transmit, db.transmit);
    EXPECT_EQ(da.slot, db.slot);
  }
}

TEST(CounterBased, ValidatesThreshold) {
  EXPECT_THROW(CounterBasedBroadcast(1), nsmodel::Error);
  EXPECT_THROW(CounterBasedBroadcast(0), nsmodel::Error);
  EXPECT_NO_THROW(CounterBasedBroadcast(2));
}

TEST(CounterBased, RequiresResetBeforeUse) {
  CounterBasedBroadcast protocol(3);
  support::Rng rng(8);
  ProtocolContext ctx{3, rng};
  EXPECT_THROW(protocol.onFirstReception(0, 0, ctx), nsmodel::Error);
}

TEST(CounterBased, CancelsAfterThresholdDuplicates) {
  CounterBasedBroadcast protocol(3);
  protocol.reset(4);
  support::Rng rng(9);
  ProtocolContext ctx{3, rng};
  const auto d = protocol.onFirstReception(2, 0, ctx);
  EXPECT_TRUE(d.transmit);
  // heard 1 (first reception); duplicates push it to the threshold.
  EXPECT_TRUE(protocol.keepPendingAfterDuplicate(2, 0, ctx));   // heard 2
  EXPECT_FALSE(protocol.keepPendingAfterDuplicate(2, 0, ctx));  // heard 3
}

TEST(CounterBased, CountersArePerNode) {
  CounterBasedBroadcast protocol(2);
  protocol.reset(3);
  support::Rng rng(10);
  ProtocolContext ctx{3, rng};
  protocol.onFirstReception(0, 0, ctx);
  protocol.onFirstReception(1, 0, ctx);
  EXPECT_FALSE(protocol.keepPendingAfterDuplicate(0, 0, ctx));
  // Node 1's counter is untouched by node 0's duplicates... it now takes
  // its own duplicate to reach the threshold.
  EXPECT_FALSE(protocol.keepPendingAfterDuplicate(1, 0, ctx));
}

TEST(CounterBased, ResetClearsCounters) {
  CounterBasedBroadcast protocol(2);
  protocol.reset(2);
  support::Rng rng(11);
  ProtocolContext ctx{3, rng};
  protocol.onFirstReception(0, 0, ctx);
  EXPECT_FALSE(protocol.keepPendingAfterDuplicate(0, 0, ctx));
  protocol.reset(2);
  protocol.onFirstReception(0, 0, ctx);
  EXPECT_FALSE(protocol.keepPendingAfterDuplicate(0, 0, ctx));
}

TEST(CounterBased, HigherThresholdKeepsLonger) {
  CounterBasedBroadcast strict(2), lenient(5);
  strict.reset(1);
  lenient.reset(1);
  support::Rng rng(12);
  ProtocolContext ctx{3, rng};
  strict.onFirstReception(0, 0, ctx);
  lenient.onFirstReception(0, 0, ctx);
  EXPECT_FALSE(strict.keepPendingAfterDuplicate(0, 0, ctx));
  EXPECT_TRUE(lenient.keepPendingAfterDuplicate(0, 0, ctx));
  EXPECT_TRUE(lenient.keepPendingAfterDuplicate(0, 0, ctx));
  EXPECT_TRUE(lenient.keepPendingAfterDuplicate(0, 0, ctx));
  EXPECT_FALSE(lenient.keepPendingAfterDuplicate(0, 0, ctx));
}

TEST(DegreeAdaptive, Validation) {
  EXPECT_THROW(DegreeAdaptiveBroadcast(0.0), nsmodel::Error);
  EXPECT_THROW(DegreeAdaptiveBroadcast(-1.0), nsmodel::Error);
  EXPECT_THROW(DegreeAdaptiveBroadcast(12.8, -0.1), nsmodel::Error);
  EXPECT_THROW(DegreeAdaptiveBroadcast(12.8, 1.1), nsmodel::Error);
  EXPECT_NO_THROW(DegreeAdaptiveBroadcast(12.8));
}

TEST(DegreeAdaptive, ProbabilityScalesInverselyWithDegree) {
  const DegreeAdaptiveBroadcast protocol(12.8, 0.01);
  EXPECT_DOUBLE_EQ(protocol.probabilityFor(0), 1.0);
  EXPECT_DOUBLE_EQ(protocol.probabilityFor(10), 1.0);     // clamped high
  EXPECT_NEAR(protocol.probabilityFor(64), 0.2, 1e-12);
  EXPECT_NEAR(protocol.probabilityFor(128), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(protocol.probabilityFor(10000), 0.01);  // floored
}

TEST(DegreeAdaptive, RequiresTopology) {
  DegreeAdaptiveBroadcast protocol(12.8);
  support::Rng rng(30);
  ProtocolContext ctx{3, rng};  // no topology
  EXPECT_THROW(protocol.onFirstReception(0, 0, ctx), nsmodel::Error);
}

TEST(DegreeAdaptive, TransmitFrequencyMatchesLocalDegree) {
  // Line of 3 nodes with unit range: middle node has degree 2, ends 1.
  std::vector<geom::Vec2> positions{{0, 0}, {1, 0}, {2, 0}};
  const net::Deployment dep(std::move(positions), 0, 5.0);
  const net::Topology topo(dep, 1.0);
  DegreeAdaptiveBroadcast protocol(1.0);  // p = 1/degree
  support::Rng rng(31);
  ProtocolContext ctx{3, rng, &dep, &topo};
  const int n = 30000;
  int txMiddle = 0, txEnd = 0;
  for (int i = 0; i < n; ++i) {
    if (protocol.onFirstReception(1, 0, ctx).transmit) ++txMiddle;
    if (protocol.onFirstReception(2, 1, ctx).transmit) ++txEnd;
  }
  EXPECT_NEAR(static_cast<double>(txMiddle) / n, 0.5, 0.01);
  EXPECT_EQ(txEnd, n);  // degree 1 -> p clamps to 1
}

TEST(DistanceBased, Validation) {
  EXPECT_THROW(DistanceBasedBroadcast(-0.1, 1.0), nsmodel::Error);
  EXPECT_THROW(DistanceBasedBroadcast(1.1, 1.0), nsmodel::Error);
  EXPECT_THROW(DistanceBasedBroadcast(0.5, 0.0), nsmodel::Error);
  EXPECT_NO_THROW(DistanceBasedBroadcast(0.5, 1.0));
}

TEST(DistanceBased, RequiresDeployment) {
  DistanceBasedBroadcast protocol(0.5, 1.0);
  support::Rng rng(20);
  ProtocolContext ctx{3, rng};  // no deployment
  EXPECT_THROW(protocol.onFirstReception(0, 1, ctx), nsmodel::Error);
}

TEST(DistanceBased, FarSenderTriggersRebroadcast) {
  // Nodes at 0, 0.2, and 0.9 on a line; threshold 0.5 * range 1.0.
  std::vector<geom::Vec2> positions{{0, 0}, {0.2, 0}, {0.9, 0}};
  const net::Deployment dep(std::move(positions), 0, 2.0);
  DistanceBasedBroadcast protocol(0.5, 1.0);
  support::Rng rng(21);
  ProtocolContext ctx{3, rng, &dep};
  // Node 2 hears node 0 (distance 0.9 > 0.5): rebroadcast.
  EXPECT_TRUE(protocol.onFirstReception(2, 0, ctx).transmit);
  // Node 1 hears node 0 (distance 0.2 < 0.5): suppress.
  EXPECT_FALSE(protocol.onFirstReception(1, 0, ctx).transmit);
}

TEST(DistanceBased, NearbyDuplicateCancelsPending) {
  std::vector<geom::Vec2> positions{{0, 0}, {0.2, 0}, {0.9, 0}};
  const net::Deployment dep(std::move(positions), 0, 2.0);
  DistanceBasedBroadcast protocol(0.5, 1.0);
  support::Rng rng(22);
  ProtocolContext ctx{3, rng, &dep};
  // Duplicate from far away (0 -> 2): keep; from nearby (1 -> 2, distance
  // 0.7 > 0.5 keep; 0 -> 1 distance 0.2: cancel).
  EXPECT_TRUE(protocol.keepPendingAfterDuplicate(2, 0, ctx));
  EXPECT_TRUE(protocol.keepPendingAfterDuplicate(2, 1, ctx));
  EXPECT_FALSE(protocol.keepPendingAfterDuplicate(1, 0, ctx));
}

TEST(DistanceBased, ZeroThresholdBehavesLikeFlooding) {
  std::vector<geom::Vec2> positions{{0, 0}, {0.01, 0}};
  const net::Deployment dep(std::move(positions), 0, 2.0);
  DistanceBasedBroadcast protocol(0.0, 1.0);
  support::Rng rng(23);
  ProtocolContext ctx{3, rng, &dep};
  EXPECT_TRUE(protocol.onFirstReception(1, 0, ctx).transmit);
  EXPECT_TRUE(protocol.keepPendingAfterDuplicate(1, 0, ctx));
}

TEST(DistanceBased, SlotStaysWithinPhase) {
  std::vector<geom::Vec2> positions{{0, 0}, {0.9, 0}};
  const net::Deployment dep(std::move(positions), 0, 2.0);
  DistanceBasedBroadcast protocol(0.5, 1.0);
  support::Rng rng(24);
  ProtocolContext ctx{4, rng, &dep};
  for (int i = 0; i < 200; ++i) {
    const auto d = protocol.onFirstReception(1, 0, ctx);
    EXPECT_GE(d.slot, 0);
    EXPECT_LT(d.slot, 4);
  }
}

}  // namespace
}  // namespace nsmodel::protocols
