#include "sim/scenario_cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "protocols/probabilistic.hpp"
#include "sim/experiment.hpp"
#include "support/thread_pool.hpp"

namespace nsmodel::sim {
namespace {

ExperimentConfig smallConfig() {
  ExperimentConfig config;
  config.rings = 4;
  config.neighborDensity = 30.0;
  return config;
}

protocols::ProtocolFactory pb(double p) {
  return [p] {
    return std::make_unique<protocols::ProbabilisticBroadcast>(p);
  };
}

void expectSameRun(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.nodeCount(), b.nodeCount());
  EXPECT_EQ(a.totalBroadcasts(), b.totalBroadcasts());
  EXPECT_EQ(a.attemptedPairs(), b.attemptedPairs());
  EXPECT_EQ(a.deliveredPairs(), b.deliveredPairs());
  EXPECT_EQ(a.receptionSlotByNode(), b.receptionSlotByNode());
  EXPECT_EQ(a.phases().size(), b.phases().size());
}

TEST(ScenarioKey, DependsOnDeploymentAndChannelOnly) {
  ExperimentConfig config = smallConfig();
  const auto key = ScenarioKey::forExperiment(config, 42, 3);
  EXPECT_EQ(key.seed, 42u);
  EXPECT_EQ(key.stream, 3u);
  EXPECT_EQ(key.rings, config.rings);
  EXPECT_EQ(key.neighborDensity, config.neighborDensity);
  // The CAM channel ignores csFactor, so it must not split the key.
  ExperimentConfig other = smallConfig();
  other.csFactor = 9.0;
  EXPECT_EQ(ScenarioKey::forExperiment(other, 42, 3), key);
  // A carrier-sensing channel keys on its effective csFactor.
  other.channel = net::ChannelModel::CarrierSenseAware;
  EXPECT_NE(ScenarioKey::forExperiment(other, 42, 3), key);
}

TEST(ScenarioCache, CachedRunsAreBitIdenticalToUncached) {
  const ExperimentConfig config = smallConfig();
  ScenarioCache cache;
  for (std::uint64_t stream = 0; stream < 4; ++stream) {
    // Two probabilities per stream, so the second p is a cache hit.
    for (double p : {0.3, 0.8}) {
      const RunResult uncached = runExperiment(config, pb(p), 42, stream);
      const RunResult cached = runExperiment(config, pb(p), 42, stream, &cache);
      expectSameRun(uncached, cached);
    }
  }
  EXPECT_EQ(cache.misses(), 4u);  // one build per stream
  EXPECT_EQ(cache.hits(), 4u);    // one reuse per stream
  EXPECT_EQ(cache.size(), cache.misses());
}

TEST(ScenarioCache, NullCachePointerFallsBackToUncachedPath) {
  const ExperimentConfig config = smallConfig();
  const RunResult direct = runExperiment(config, pb(0.5), 42, 0);
  const RunResult throughNull = runExperiment(config, pb(0.5), 42, 0, nullptr);
  expectSameRun(direct, throughNull);
}

TEST(ScenarioCache, DistinctKeysGetDistinctScenarios) {
  ScenarioCache cache;
  const ExperimentConfig config = smallConfig();
  const auto a = cache.getOrBuild(ScenarioKey::forExperiment(config, 42, 0));
  const auto b = cache.getOrBuild(ScenarioKey::forExperiment(config, 42, 1));
  const auto c = cache.getOrBuild(ScenarioKey::forExperiment(config, 43, 0));
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.size(), 3u);
  // Same key twice returns the same immutable object.
  const auto a2 = cache.getOrBuild(ScenarioKey::forExperiment(config, 42, 0));
  EXPECT_EQ(a.get(), a2.get());
}

TEST(ScenarioCache, ClearDropsEntriesButKeepsCounters) {
  ScenarioCache cache;
  const ExperimentConfig config = smallConfig();
  (void)cache.getOrBuild(ScenarioKey::forExperiment(config, 42, 0));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
  (void)cache.getOrBuild(ScenarioKey::forExperiment(config, 42, 0));
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(ScenarioCache, ConcurrentRequestsBuildEachScenarioOnce) {
  ScenarioCache cache;
  ExperimentConfig config = smallConfig();
  config.rings = 3;
  config.neighborDensity = 15.0;
  constexpr std::size_t kStreams = 8;
  constexpr std::size_t kRequestsPerStream = 16;
  std::vector<ScenarioCache::ScenarioPtr> seen(kStreams * kRequestsPerStream);
  // Hammer the cache from the pool: many concurrent requests per key.
  support::parallelFor(
      0, seen.size(),
      [&](std::size_t i) {
        const auto key =
            ScenarioKey::forExperiment(config, 7, i % kStreams);
        seen[i] = cache.getOrBuild(key);
      },
      /*chunk=*/1);
  EXPECT_EQ(cache.size(), kStreams);
  EXPECT_EQ(cache.misses(), kStreams);
  EXPECT_EQ(cache.hits(), seen.size() - kStreams);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    ASSERT_NE(seen[i], nullptr);
    // Every request for one stream saw the same immutable scenario.
    EXPECT_EQ(seen[i].get(), seen[i % kStreams].get());
  }
}

TEST(ScenarioCache, TopologyBuildCounterCountsBuilds) {
  resetTopologyBuildCount();
  ScenarioCache cache;
  const ExperimentConfig config = smallConfig();
  (void)cache.getOrBuild(ScenarioKey::forExperiment(config, 42, 0));
  (void)cache.getOrBuild(ScenarioKey::forExperiment(config, 42, 0));
  (void)cache.getOrBuild(ScenarioKey::forExperiment(config, 42, 1));
  EXPECT_EQ(topologyBuildCount(), 2u);
}

}  // namespace
}  // namespace nsmodel::sim
