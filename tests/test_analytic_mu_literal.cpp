// Reproducibility record: Eq. (2) as printed in the paper cannot be the
// recursion its numbers came from.  These tests document the failure
// modes and confirm our re-derivation is the consistent one.
#include "analytic/mu_literal.hpp"

#include <gtest/gtest.h>

#include "analytic/mu.hpp"
#include "support/error.hpp"

namespace nsmodel::analytic {
namespace {

TEST(MuAsPrinted, AgreesOnTrivialBase) {
  EXPECT_DOUBLE_EQ(muAsPrinted(1, 3), 1.0);
  EXPECT_DOUBLE_EQ(muAsPrinted(1, 1), 1.0);
}

TEST(MuAsPrinted, DisagreesWithGroundTruthAlmostEverywhere) {
  // mu(2, 2) = 1/2 by enumeration; the printed recursion cannot produce
  // it (its i-sum is empty for K = 2 and the first term collapses).
  EXPECT_NEAR(mu(2, 2), 0.5, 1e-12);
  EXPECT_GT(std::abs(muAsPrinted(2, 2) - 0.5), 0.2);
}

TEST(MuAsPrinted, CollapsesToZeroForEveryKAboveOne) {
  // The printed recursion's failure mode: the success case multiplies
  // into the recursion instead of terminating it, so every branch
  // eventually bottoms out in the (unstated) s = 1 base case and the
  // whole expression evaluates to exactly zero for K >= 2 — clearly not
  // what generated the paper's Fig. 4 numbers.
  for (int s = 2; s <= 5; ++s) {
    for (int k = 2; k <= 40; ++k) {
      EXPECT_DOUBLE_EQ(muAsPrinted(k, s), 0.0) << "K=" << k << " s=" << s;
    }
  }
}

TEST(MuAsPrinted, DeviationIsLargeNotRoundoff) {
  // If the printed form were just a transcription of the correct one, the
  // deviation would be ~1e-15. It is order 1.
  EXPECT_GT(maxPrintedDeviation(30, 3), 0.5);
  EXPECT_GT(maxPrintedDeviation(30, 5), 0.5);
}

TEST(MuAsPrinted, CorrectedRecursionHasNoSuchDeviation) {
  for (int s = 2; s <= 5; ++s) {
    double worst = 0.0;
    for (int k = 1; k <= 30; ++k) {
      worst = std::max(worst, std::abs(muRecursive(k, s) - mu(k, s)));
    }
    EXPECT_LT(worst, 1e-9) << "s=" << s;
  }
}

TEST(MuAsPrinted, Validation) {
  EXPECT_THROW(muAsPrinted(-1, 3), nsmodel::Error);
  EXPECT_THROW(muAsPrinted(2, 0), nsmodel::Error);
  EXPECT_THROW(maxPrintedDeviation(0, 3), nsmodel::Error);
}

}  // namespace
}  // namespace nsmodel::analytic
