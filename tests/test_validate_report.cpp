#include "validate/report.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

namespace nsmodel::validate {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(UlpDistance, IdenticalValuesAreZero) {
  EXPECT_EQ(ulpDistance(1.0, 1.0), 0);
  EXPECT_EQ(ulpDistance(0.0, 0.0), 0);
  EXPECT_EQ(ulpDistance(-3.5e100, -3.5e100), 0);
  // Signed zeros compare equal even though their bit patterns differ.
  EXPECT_EQ(ulpDistance(0.0, -0.0), 0);
}

TEST(UlpDistance, AdjacentDoublesAreOneApart) {
  const double x = 1.0;
  const double up = std::nextafter(x, 2.0);
  EXPECT_EQ(ulpDistance(x, up), 1);
  EXPECT_EQ(ulpDistance(up, x), 1);  // symmetric
  const double down = std::nextafter(x, 0.0);
  EXPECT_EQ(ulpDistance(x, down), 1);
  EXPECT_EQ(ulpDistance(down, up), 2);
}

TEST(UlpDistance, CrossesZeroWithoutOverflow) {
  const double tiny = std::numeric_limits<double>::denorm_min();
  // The monotone bit mapping gives +0.0 and -0.0 their own ordinals, so
  // the smallest subnormals sit 3 apart (+tiny, +0, -0, -tiny); only
  // exact equality collapses the signed zeros.
  EXPECT_EQ(ulpDistance(tiny, -tiny), 3);
  EXPECT_EQ(ulpDistance(tiny, 0.0), 1);
  // Extreme opposite-sign values must clamp, not overflow.
  const double big = std::numeric_limits<double>::max();
  EXPECT_GT(ulpDistance(big, -big), 0);
}

TEST(UlpDistance, NanIsMaximallyFar) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const auto sentinel = std::numeric_limits<std::int64_t>::max();
  EXPECT_EQ(ulpDistance(nan, 1.0), sentinel);
  EXPECT_EQ(ulpDistance(1.0, nan), sentinel);
  EXPECT_EQ(ulpDistance(nan, nan), sentinel);
}

TEST(CheckExact, PassesWithinUlpBudget) {
  const CheckResult same = checkExact("s", "n", 0.25, 0.25, 0);
  EXPECT_TRUE(same.passed);
  EXPECT_EQ(same.detail, "ulp=0");

  const double off = std::nextafter(0.25, 1.0);
  EXPECT_FALSE(checkExact("s", "n", off, 0.25, 0).passed);
  EXPECT_TRUE(checkExact("s", "n", off, 0.25, 1).passed);
}

TEST(CheckWithin, UsesAbsoluteTolerance) {
  EXPECT_TRUE(checkWithin("s", "n", 1.05, 1.0, 0.1).passed);
  EXPECT_FALSE(checkWithin("s", "n", 1.2, 1.0, 0.1).passed);
  const CheckResult r = checkWithin("s", "n", 1.0, 1.0, 0.0, "note");
  EXPECT_TRUE(r.passed);
  EXPECT_EQ(r.detail, "note");
}

TEST(CheckThat, RecordsPredicate) {
  EXPECT_TRUE(checkThat("s", "holds", true).passed);
  EXPECT_FALSE(checkThat("s", "fails", false, "why").passed);
}

TEST(Report, CountsFailures) {
  Report report;
  report.add(checkThat("a", "ok", true));
  report.add(checkThat("a", "bad", false));
  report.add(checkWithin("b", "close", 1.0, 1.0, 0.0));
  EXPECT_EQ(report.total(), 3u);
  EXPECT_EQ(report.failures(), 1u);
  EXPECT_FALSE(report.allPassed());
}

TEST(Report, SummaryListsFailuresPerSuite) {
  Report report;
  report.add(checkThat("suite-x", "good", true));
  report.add(checkThat("suite-y", "broken-point", false));
  std::ostringstream os;
  report.printSummary(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("suite-x"), std::string::npos);
  EXPECT_NE(text.find("suite-y"), std::string::npos);
  EXPECT_NE(text.find("broken-point"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
}

class ReportFileTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "nsmodel_report_test.out";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(ReportFileTest, JsonDumpContainsEveryCheck) {
  Report report;
  report.add(checkWithin("cross/cam", "rho=20 p=0.5", 0.91, 0.9, 0.05));
  report.add(checkThat("invariant", "mu \"in\" [0,1]", false));
  report.writeJson(path_);
  const std::string json = slurp(path_);
  EXPECT_NE(json.find("\"suite\": \"cross/cam\""), std::string::npos);
  EXPECT_NE(json.find("rho=20 p=0.5"), std::string::npos);
  // The quote inside the check name must be escaped.
  EXPECT_NE(json.find("mu \\\"in\\\" [0,1]"), std::string::npos);
  EXPECT_NE(json.find("\"passed\": false"), std::string::npos);
}

TEST_F(ReportFileTest, CsvDumpHasHeaderAndRows) {
  Report report;
  report.add(checkWithin("a", "p1", 1.0, 2.0, 0.5));
  report.writeCsv(path_);
  const std::string csv = slurp(path_);
  EXPECT_EQ(csv.rfind("suite,", 0), 0u);
  EXPECT_NE(csv.find("\na,p1,"), std::string::npos);
}

}  // namespace
}  // namespace nsmodel::validate
