#include "sim/trace_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "protocols/probabilistic.hpp"
#include "sim/experiment.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace nsmodel::sim {
namespace {

std::vector<std::string> splitCsv(const std::string& line) {
  std::vector<std::string> fields;
  std::istringstream in(line);
  std::string field;
  while (std::getline(in, field, ',')) fields.push_back(field);
  return fields;
}

class TraceExportTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "nsmodel_trace_test.csv";

  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<std::string> lines() const {
    std::ifstream in(path_);
    std::vector<std::string> out;
    std::string line;
    while (std::getline(in, line)) out.push_back(line);
    return out;
  }
};

TEST_F(TraceExportTest, PhaseTraceHasOneRowPerPhase) {
  ExperimentConfig cfg;
  cfg.rings = 3;
  cfg.neighborDensity = 20.0;
  const RunResult run = runExperiment(
      cfg,
      [] { return std::make_unique<protocols::ProbabilisticBroadcast>(0.5); },
      1, 0);
  exportPhaseTraceCsv(run, path_);
  const auto content = lines();
  ASSERT_EQ(content.size(), run.phases().size() + 1);
  EXPECT_EQ(content[0],
            "phase,transmissions,new_receivers,deliveries,lost_receivers,"
            "cum_reachability");
  // First phase: 1 transmission from the source.
  EXPECT_EQ(content[1].rfind("1.000000,1.000000,", 0), 0u);
}

TEST_F(TraceExportTest, PhaseTraceUsesCanonicalReachability) {
  ExperimentConfig cfg;
  cfg.rings = 3;
  cfg.neighborDensity = 25.0;
  const RunResult run = runExperiment(
      cfg,
      [] { return std::make_unique<protocols::ProbabilisticBroadcast>(0.8); },
      2, 0);
  exportPhaseTraceCsv(run, path_);
  const auto content = lines();
  // Every row's cum_reachability is RunResult::reachabilityAfter at that
  // phase boundary — identical formatting, not just numerically close.
  for (std::size_t i = 1; i < content.size(); ++i) {
    const auto fields = splitCsv(content[i]);
    ASSERT_EQ(fields.size(), 6u);
    EXPECT_EQ(fields[5], support::formatDouble(
                             run.reachabilityAfter(static_cast<double>(i)), 6))
        << "row " << i;
  }
  // And the last row agrees with the run's final reachability.
  const auto lastFields = splitCsv(content.back());
  EXPECT_EQ(lastFields[5],
            support::formatDouble(run.finalReachability(), 6));
}

TEST_F(TraceExportTest, DeploymentExportListsEveryNode) {
  support::Rng rng(3);
  const net::Deployment dep = net::Deployment::uniformDisk(rng, 3.0, 50);
  exportDeploymentCsv(dep, 1.0, path_);
  const auto content = lines();
  ASSERT_EQ(content.size(), 51u);
  EXPECT_EQ(content[0], "id,x,y,ring,is_source");
  // The source row (node 0, at the centre, ring 1, flagged).
  EXPECT_EQ(content[1].rfind("0.000000,0.000000,0.000000,1.000000,1", 0),
            0u);
}

TEST_F(TraceExportTest, DeploymentExportUsesModelRingWidth) {
  support::Rng rng(7);
  const double ringWidth = 0.5;
  const net::Deployment dep = net::Deployment::uniformDisk(rng, 2.0, 80);
  exportDeploymentCsv(dep, ringWidth, path_);
  const auto content = lines();
  ASSERT_EQ(content.size(), 81u);
  bool differsFromUnitRings = false;
  for (std::size_t i = 1; i < content.size(); ++i) {
    const auto fields = splitCsv(content[i]);
    ASSERT_EQ(fields.size(), 5u);
    const auto id = static_cast<net::NodeId>(std::stoul(fields[0]));
    const int ring = static_cast<int>(std::stod(fields[3]));
    EXPECT_EQ(ring, dep.ringOf(id, ringWidth)) << "node " << id;
    if (dep.ringOf(id, ringWidth) != dep.ringOf(id, 1.0)) {
      differsFromUnitRings = true;
    }
  }
  // Regression guard for the hard-coded unit ring width: with r = 0.5 the
  // exported indices must not all coincide with the unit-width ones.
  EXPECT_TRUE(differsFromUnitRings);
}

TEST_F(TraceExportTest, DeploymentExportRejectsBadRingWidth) {
  support::Rng rng(5);
  const net::Deployment dep = net::Deployment::uniformDisk(rng, 2.0, 10);
  EXPECT_THROW(exportDeploymentCsv(dep, 0.0, path_), Error);
}

}  // namespace
}  // namespace nsmodel::sim
