#include "sim/trace_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "protocols/probabilistic.hpp"
#include "sim/experiment.hpp"
#include "support/rng.hpp"

namespace nsmodel::sim {
namespace {

class TraceExportTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "nsmodel_trace_test.csv";

  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<std::string> lines() const {
    std::ifstream in(path_);
    std::vector<std::string> out;
    std::string line;
    while (std::getline(in, line)) out.push_back(line);
    return out;
  }
};

TEST_F(TraceExportTest, PhaseTraceHasOneRowPerPhase) {
  ExperimentConfig cfg;
  cfg.rings = 3;
  cfg.neighborDensity = 20.0;
  const RunResult run = runExperiment(
      cfg,
      [] { return std::make_unique<protocols::ProbabilisticBroadcast>(0.5); },
      1, 0);
  exportPhaseTraceCsv(run, path_);
  const auto content = lines();
  ASSERT_EQ(content.size(), run.phases().size() + 1);
  EXPECT_EQ(content[0],
            "phase,transmissions,new_receivers,deliveries,lost_receivers,"
            "cum_reachability");
  // First phase: 1 transmission from the source.
  EXPECT_EQ(content[1].rfind("1.000000,1.000000,", 0), 0u);
}

TEST_F(TraceExportTest, PhaseTraceCumulativeReachabilityEndsAtFinal) {
  ExperimentConfig cfg;
  cfg.rings = 3;
  cfg.neighborDensity = 25.0;
  const RunResult run = runExperiment(
      cfg,
      [] { return std::make_unique<protocols::ProbabilisticBroadcast>(0.8); },
      2, 0);
  exportPhaseTraceCsv(run, path_);
  const auto content = lines();
  const std::string& last = content.back();
  const double tail = std::stod(last.substr(last.rfind(',') + 1));
  EXPECT_NEAR(tail, run.finalReachability(), 1e-5);
}

TEST_F(TraceExportTest, DeploymentExportListsEveryNode) {
  support::Rng rng(3);
  const net::Deployment dep = net::Deployment::uniformDisk(rng, 3.0, 50);
  exportDeploymentCsv(dep, path_);
  const auto content = lines();
  ASSERT_EQ(content.size(), 51u);
  EXPECT_EQ(content[0], "id,x,y,ring,is_source");
  // The source row (node 0, at the centre, ring 1, flagged).
  EXPECT_EQ(content[1].rfind("0.000000,0.000000,0.000000,1.000000,1", 0),
            0u);
}

}  // namespace
}  // namespace nsmodel::sim
