// Thread-safety of the batched Monte-Carlo path.
//
// Each worker chunk owns its BatchWorkspace and protocol instances, so
// a parallel batched sweep must be data-race free (this file is the
// target of the CI thread-sanitizer job) and must aggregate to exactly
// the sequential batched result.  The grain is forced small so several
// chunks genuinely run concurrently.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "protocols/flooding.hpp"
#include "protocols/probabilistic.hpp"
#include "sim/experiment_batch.hpp"
#include "sim/monte_carlo.hpp"
#include "sim/scenario_cache.hpp"

namespace {

using namespace nsmodel;

struct WidthGuard {
  ~WidthGuard() { sim::setBatchWidthOverride(-1); }
};

sim::MetricExtractor extractor() {
  return [](const sim::RunResult& r) {
    return std::vector<double>{r.finalReachability(),
                               static_cast<double>(r.totalBroadcasts())};
  };
}

TEST(BatchThreads, ParallelSweepMatchesSequential) {
  WidthGuard guard;
  sim::setBatchWidthOverride(4);

  sim::MonteCarloConfig mc;
  mc.experiment.rings = 3;
  mc.experiment.neighborDensity = 25.0;
  mc.experiment.maxPhases = 40;
  mc.replications = 16;
  mc.grain = 4;  // several chunks in flight at once
  sim::ScenarioCache cache;
  mc.cache = &cache;

  const std::vector<protocols::ProtocolFactory> factories = {
      [] { return std::make_unique<protocols::ProbabilisticBroadcast>(0.5); },
      [] { return std::make_unique<protocols::ProbabilisticBroadcast>(0.8); },
      [] { return std::make_unique<protocols::SimpleFlooding>(); },
  };

  mc.parallel = true;
  const auto parallel = sim::monteCarloSweep(mc, factories, extractor());
  mc.parallel = false;
  const auto sequential = sim::monteCarloSweep(mc, factories, extractor());

  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t point = 0; point < parallel.size(); ++point) {
    ASSERT_EQ(parallel[point].size(), sequential[point].size());
    for (std::size_t m = 0; m < parallel[point].size(); ++m) {
      EXPECT_EQ(parallel[point][m].stats.mean,
                sequential[point][m].stats.mean)
          << "point " << point << " metric " << m;
      EXPECT_EQ(parallel[point][m].stats.stddev,
                sequential[point][m].stats.stddev)
          << "point " << point << " metric " << m;
      EXPECT_EQ(parallel[point][m].replications,
                sequential[point][m].replications)
          << "point " << point << " metric " << m;
    }
  }
}

// Same contract under the SINR channel: the per-lane power accumulators
// live in each chunk's own BatchWorkspace, so a parallel SINR sweep must
// be race-free and aggregate exactly like the sequential batched path.
TEST(BatchThreads, ParallelSinrSweepMatchesSequential) {
  WidthGuard guard;
  sim::setBatchWidthOverride(4);

  sim::MonteCarloConfig mc;
  mc.experiment.rings = 3;
  mc.experiment.neighborDensity = 25.0;
  mc.experiment.maxPhases = 40;
  mc.experiment.channel = net::ChannelModel::Sinr;
  mc.replications = 16;
  mc.grain = 4;
  sim::ScenarioCache cache;
  mc.cache = &cache;

  const std::vector<protocols::ProtocolFactory> factories = {
      [] { return std::make_unique<protocols::ProbabilisticBroadcast>(0.5); },
      [] { return std::make_unique<protocols::SimpleFlooding>(); },
  };

  mc.parallel = true;
  const auto parallel = sim::monteCarloSweep(mc, factories, extractor());
  mc.parallel = false;
  const auto sequential = sim::monteCarloSweep(mc, factories, extractor());

  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t point = 0; point < parallel.size(); ++point) {
    ASSERT_EQ(parallel[point].size(), sequential[point].size());
    for (std::size_t m = 0; m < parallel[point].size(); ++m) {
      EXPECT_EQ(parallel[point][m].stats.mean,
                sequential[point][m].stats.mean)
          << "point " << point << " metric " << m;
      EXPECT_EQ(parallel[point][m].stats.stddev,
                sequential[point][m].stats.stddev)
          << "point " << point << " metric " << m;
      EXPECT_EQ(parallel[point][m].replications,
                sequential[point][m].replications)
          << "point " << point << " metric " << m;
    }
  }
}

TEST(BatchThreads, ParallelMonteCarloMatchesSequential) {
  WidthGuard guard;
  sim::setBatchWidthOverride(4);

  sim::MonteCarloConfig mc;
  mc.experiment.rings = 3;
  mc.experiment.neighborDensity = 25.0;
  mc.experiment.maxPhases = 40;
  mc.replications = 16;
  mc.grain = 4;
  const auto factory = [] {
    return std::make_unique<protocols::ProbabilisticBroadcast>(0.6);
  };

  mc.parallel = true;
  const auto parallel = sim::monteCarlo(mc, factory, extractor());
  mc.parallel = false;
  const auto sequential = sim::monteCarlo(mc, factory, extractor());

  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t m = 0; m < parallel.size(); ++m) {
    EXPECT_EQ(parallel[m].stats.mean, sequential[m].stats.mean);
    EXPECT_EQ(parallel[m].stats.stddev, sequential[m].stats.stddev);
    EXPECT_EQ(parallel[m].replications, sequential[m].replications);
  }
}

}  // namespace
