#include "core/cfm_cost.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace nsmodel::core {
namespace {

TEST(ReliableCostModel, Validation) {
  EXPECT_THROW(ReliableCostModel(0), nsmodel::Error);
  const ReliableCostModel model(3);
  EXPECT_THROW(model.attemptSuccessProbability(-1.0), nsmodel::Error);
  EXPECT_THROW(model.broadcastCost(-1.0, 1.0), nsmodel::Error);
  EXPECT_THROW(ReliableCostModel::expectedRoundsForAll(5.0, 0.0),
               nsmodel::Error);
  EXPECT_THROW(ReliableCostModel::expectedRoundsForAll(5.0, 1.1),
               nsmodel::Error);
}

TEST(ReliableCostModel, AttemptSuccessIsExponentialInInterferers) {
  const ReliableCostModel model(3);
  EXPECT_DOUBLE_EQ(model.attemptSuccessProbability(0.0), 1.0);
  EXPECT_NEAR(model.attemptSuccessProbability(3.0), std::exp(-1.0), 1e-12);
  EXPECT_GT(model.attemptSuccessProbability(1.0),
            model.attemptSuccessProbability(5.0));
}

TEST(ReliableCostModel, MoreSlotsImproveSuccess) {
  const ReliableCostModel narrow(2);
  const ReliableCostModel wide(8);
  EXPECT_LT(narrow.attemptSuccessProbability(4.0),
            wide.attemptSuccessProbability(4.0));
}

TEST(ReliableCostModel, ExpectedAttemptsIsInverseSquareOfSuccess) {
  const ReliableCostModel model(3);
  const double p = model.attemptSuccessProbability(2.0);
  EXPECT_NEAR(model.expectedAttemptsPerLink(2.0), 1.0 / (p * p), 1e-9);
  EXPECT_DOUBLE_EQ(model.expectedAttemptsPerLink(0.0), 1.0);
}

TEST(ExpectedRoundsForAll, DegenerateCases) {
  EXPECT_DOUBLE_EQ(ReliableCostModel::expectedRoundsForAll(0.0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ReliableCostModel::expectedRoundsForAll(10.0, 1.0), 1.0);
}

TEST(ExpectedRoundsForAll, SingleNeighborIsGeometricMean) {
  // E[Geometric(q)] = 1/q.
  for (double q : {0.2, 0.5, 0.9}) {
    EXPECT_NEAR(ReliableCostModel::expectedRoundsForAll(1.0, q), 1.0 / q,
                1e-6);
  }
}

TEST(ExpectedRoundsForAll, MatchesMonteCarloMaxOfGeometrics) {
  support::Rng rng(1);
  const double q = 0.3;
  const int n = 12;
  const int trials = 40000;
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    int worst = 0;
    for (int i = 0; i < n; ++i) {
      int rounds = 1;
      while (!rng.bernoulli(q)) ++rounds;
      worst = std::max(worst, rounds);
    }
    total += worst;
  }
  EXPECT_NEAR(ReliableCostModel::expectedRoundsForAll(n, q), total / trials,
              0.15);
}

TEST(ExpectedRoundsForAll, GrowsWithNeighborsAndShrinksWithSuccess) {
  EXPECT_LT(ReliableCostModel::expectedRoundsForAll(5.0, 0.5),
            ReliableCostModel::expectedRoundsForAll(50.0, 0.5));
  EXPECT_GT(ReliableCostModel::expectedRoundsForAll(10.0, 0.2),
            ReliableCostModel::expectedRoundsForAll(10.0, 0.8));
}

TEST(BroadcastCost, ComponentsAreConsistent) {
  const ReliableCostModel model(3);
  const auto cost = model.broadcastCost(40.0, 2.0);
  EXPECT_GT(cost.perLinkSuccess, 0.0);
  EXPECT_LE(cost.perLinkSuccess, 1.0);
  EXPECT_DOUBLE_EQ(cost.dataPackets, cost.rounds);
  EXPECT_DOUBLE_EQ(cost.totalPackets, cost.dataPackets + cost.ackPackets);
  EXPECT_DOUBLE_EQ(cost.timePhases, cost.rounds + 1.0);
  EXPECT_GT(cost.ackPackets, 40.0);  // at least one ACK per neighbour
}

TEST(BroadcastCost, GrowsWithDensityAndInterference) {
  const ReliableCostModel model(3);
  EXPECT_LT(model.broadcastCost(20.0, 2.0).totalPackets,
            model.broadcastCost(100.0, 2.0).totalPackets);
  EXPECT_LT(model.broadcastCost(50.0, 1.0).totalPackets,
            model.broadcastCost(50.0, 5.0).totalPackets);
}

TEST(BroadcastCost, InterferenceFreeIsNearMinimal) {
  const ReliableCostModel model(3);
  const auto cost = model.broadcastCost(30.0, 0.0);
  EXPECT_DOUBLE_EQ(cost.perLinkSuccess, 1.0);
  EXPECT_DOUBLE_EQ(cost.rounds, 1.0);
  EXPECT_DOUBLE_EQ(cost.totalPackets, 31.0);  // 1 DATA + 30 ACKs
}

TEST(CfmCosts, ScaleTheCamUnitCosts) {
  const ReliableCostModel model(3);
  const CostFunctions cam{1.0, 1.0};
  const CostFunctions cfm = model.cfmCosts(60.0, 2.0, cam);
  // The paper's relation t_a <= t_f and e_a <= e_f, with the gap growing
  // in density.
  EXPECT_GT(cfm.timePerPacket, cam.timePerPacket);
  EXPECT_GT(cfm.energyPerPacket, cam.energyPerPacket);
  const CostFunctions denser = model.cfmCosts(120.0, 2.0, cam);
  EXPECT_GT(denser.energyPerPacket, cfm.energyPerPacket);
}

}  // namespace
}  // namespace nsmodel::core
