# Empty compiler generated dependencies file for nsmodel_core.
# This may be replaced when dependencies are built.
