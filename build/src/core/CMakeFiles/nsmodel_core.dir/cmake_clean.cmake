file(REMOVE_RECURSE
  "CMakeFiles/nsmodel_core.dir/cfm_analysis.cpp.o"
  "CMakeFiles/nsmodel_core.dir/cfm_analysis.cpp.o.d"
  "CMakeFiles/nsmodel_core.dir/cfm_cost.cpp.o"
  "CMakeFiles/nsmodel_core.dir/cfm_cost.cpp.o.d"
  "CMakeFiles/nsmodel_core.dir/comm_model.cpp.o"
  "CMakeFiles/nsmodel_core.dir/comm_model.cpp.o.d"
  "CMakeFiles/nsmodel_core.dir/metrics.cpp.o"
  "CMakeFiles/nsmodel_core.dir/metrics.cpp.o.d"
  "CMakeFiles/nsmodel_core.dir/network_model.cpp.o"
  "CMakeFiles/nsmodel_core.dir/network_model.cpp.o.d"
  "CMakeFiles/nsmodel_core.dir/optimizer.cpp.o"
  "CMakeFiles/nsmodel_core.dir/optimizer.cpp.o.d"
  "libnsmodel_core.a"
  "libnsmodel_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsmodel_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
