file(REMOVE_RECURSE
  "libnsmodel_core.a"
)
