file(REMOVE_RECURSE
  "libnsmodel_sim.a"
)
