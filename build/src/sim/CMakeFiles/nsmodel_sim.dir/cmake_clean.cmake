file(REMOVE_RECURSE
  "CMakeFiles/nsmodel_sim.dir/async_experiment.cpp.o"
  "CMakeFiles/nsmodel_sim.dir/async_experiment.cpp.o.d"
  "CMakeFiles/nsmodel_sim.dir/convergecast.cpp.o"
  "CMakeFiles/nsmodel_sim.dir/convergecast.cpp.o.d"
  "CMakeFiles/nsmodel_sim.dir/experiment.cpp.o"
  "CMakeFiles/nsmodel_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/nsmodel_sim.dir/monte_carlo.cpp.o"
  "CMakeFiles/nsmodel_sim.dir/monte_carlo.cpp.o.d"
  "CMakeFiles/nsmodel_sim.dir/reliable.cpp.o"
  "CMakeFiles/nsmodel_sim.dir/reliable.cpp.o.d"
  "CMakeFiles/nsmodel_sim.dir/run_result.cpp.o"
  "CMakeFiles/nsmodel_sim.dir/run_result.cpp.o.d"
  "CMakeFiles/nsmodel_sim.dir/trace_export.cpp.o"
  "CMakeFiles/nsmodel_sim.dir/trace_export.cpp.o.d"
  "libnsmodel_sim.a"
  "libnsmodel_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsmodel_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
