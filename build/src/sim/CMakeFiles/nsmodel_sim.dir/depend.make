# Empty dependencies file for nsmodel_sim.
# This may be replaced when dependencies are built.
