
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/async_experiment.cpp" "src/sim/CMakeFiles/nsmodel_sim.dir/async_experiment.cpp.o" "gcc" "src/sim/CMakeFiles/nsmodel_sim.dir/async_experiment.cpp.o.d"
  "/root/repo/src/sim/convergecast.cpp" "src/sim/CMakeFiles/nsmodel_sim.dir/convergecast.cpp.o" "gcc" "src/sim/CMakeFiles/nsmodel_sim.dir/convergecast.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/nsmodel_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/nsmodel_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/monte_carlo.cpp" "src/sim/CMakeFiles/nsmodel_sim.dir/monte_carlo.cpp.o" "gcc" "src/sim/CMakeFiles/nsmodel_sim.dir/monte_carlo.cpp.o.d"
  "/root/repo/src/sim/reliable.cpp" "src/sim/CMakeFiles/nsmodel_sim.dir/reliable.cpp.o" "gcc" "src/sim/CMakeFiles/nsmodel_sim.dir/reliable.cpp.o.d"
  "/root/repo/src/sim/run_result.cpp" "src/sim/CMakeFiles/nsmodel_sim.dir/run_result.cpp.o" "gcc" "src/sim/CMakeFiles/nsmodel_sim.dir/run_result.cpp.o.d"
  "/root/repo/src/sim/trace_export.cpp" "src/sim/CMakeFiles/nsmodel_sim.dir/trace_export.cpp.o" "gcc" "src/sim/CMakeFiles/nsmodel_sim.dir/trace_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/protocols/CMakeFiles/nsmodel_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nsmodel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/nsmodel_des.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/nsmodel_support.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/nsmodel_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
