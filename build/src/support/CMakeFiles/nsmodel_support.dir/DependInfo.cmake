
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/cli_args.cpp" "src/support/CMakeFiles/nsmodel_support.dir/cli_args.cpp.o" "gcc" "src/support/CMakeFiles/nsmodel_support.dir/cli_args.cpp.o.d"
  "/root/repo/src/support/error.cpp" "src/support/CMakeFiles/nsmodel_support.dir/error.cpp.o" "gcc" "src/support/CMakeFiles/nsmodel_support.dir/error.cpp.o.d"
  "/root/repo/src/support/integrate.cpp" "src/support/CMakeFiles/nsmodel_support.dir/integrate.cpp.o" "gcc" "src/support/CMakeFiles/nsmodel_support.dir/integrate.cpp.o.d"
  "/root/repo/src/support/log_math.cpp" "src/support/CMakeFiles/nsmodel_support.dir/log_math.cpp.o" "gcc" "src/support/CMakeFiles/nsmodel_support.dir/log_math.cpp.o.d"
  "/root/repo/src/support/logging.cpp" "src/support/CMakeFiles/nsmodel_support.dir/logging.cpp.o" "gcc" "src/support/CMakeFiles/nsmodel_support.dir/logging.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/support/CMakeFiles/nsmodel_support.dir/rng.cpp.o" "gcc" "src/support/CMakeFiles/nsmodel_support.dir/rng.cpp.o.d"
  "/root/repo/src/support/statistics.cpp" "src/support/CMakeFiles/nsmodel_support.dir/statistics.cpp.o" "gcc" "src/support/CMakeFiles/nsmodel_support.dir/statistics.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/support/CMakeFiles/nsmodel_support.dir/table.cpp.o" "gcc" "src/support/CMakeFiles/nsmodel_support.dir/table.cpp.o.d"
  "/root/repo/src/support/thread_pool.cpp" "src/support/CMakeFiles/nsmodel_support.dir/thread_pool.cpp.o" "gcc" "src/support/CMakeFiles/nsmodel_support.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
