file(REMOVE_RECURSE
  "libnsmodel_support.a"
)
