file(REMOVE_RECURSE
  "CMakeFiles/nsmodel_support.dir/cli_args.cpp.o"
  "CMakeFiles/nsmodel_support.dir/cli_args.cpp.o.d"
  "CMakeFiles/nsmodel_support.dir/error.cpp.o"
  "CMakeFiles/nsmodel_support.dir/error.cpp.o.d"
  "CMakeFiles/nsmodel_support.dir/integrate.cpp.o"
  "CMakeFiles/nsmodel_support.dir/integrate.cpp.o.d"
  "CMakeFiles/nsmodel_support.dir/log_math.cpp.o"
  "CMakeFiles/nsmodel_support.dir/log_math.cpp.o.d"
  "CMakeFiles/nsmodel_support.dir/logging.cpp.o"
  "CMakeFiles/nsmodel_support.dir/logging.cpp.o.d"
  "CMakeFiles/nsmodel_support.dir/rng.cpp.o"
  "CMakeFiles/nsmodel_support.dir/rng.cpp.o.d"
  "CMakeFiles/nsmodel_support.dir/statistics.cpp.o"
  "CMakeFiles/nsmodel_support.dir/statistics.cpp.o.d"
  "CMakeFiles/nsmodel_support.dir/table.cpp.o"
  "CMakeFiles/nsmodel_support.dir/table.cpp.o.d"
  "CMakeFiles/nsmodel_support.dir/thread_pool.cpp.o"
  "CMakeFiles/nsmodel_support.dir/thread_pool.cpp.o.d"
  "libnsmodel_support.a"
  "libnsmodel_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsmodel_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
