# Empty compiler generated dependencies file for nsmodel_support.
# This may be replaced when dependencies are built.
