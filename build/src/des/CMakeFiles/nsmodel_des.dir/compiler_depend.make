# Empty compiler generated dependencies file for nsmodel_des.
# This may be replaced when dependencies are built.
