file(REMOVE_RECURSE
  "libnsmodel_des.a"
)
