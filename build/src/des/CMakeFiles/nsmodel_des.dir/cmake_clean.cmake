file(REMOVE_RECURSE
  "CMakeFiles/nsmodel_des.dir/engine.cpp.o"
  "CMakeFiles/nsmodel_des.dir/engine.cpp.o.d"
  "CMakeFiles/nsmodel_des.dir/event_queue.cpp.o"
  "CMakeFiles/nsmodel_des.dir/event_queue.cpp.o.d"
  "libnsmodel_des.a"
  "libnsmodel_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsmodel_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
