file(REMOVE_RECURSE
  "CMakeFiles/nsmodel_net.dir/channel.cpp.o"
  "CMakeFiles/nsmodel_net.dir/channel.cpp.o.d"
  "CMakeFiles/nsmodel_net.dir/deployment.cpp.o"
  "CMakeFiles/nsmodel_net.dir/deployment.cpp.o.d"
  "CMakeFiles/nsmodel_net.dir/energy.cpp.o"
  "CMakeFiles/nsmodel_net.dir/energy.cpp.o.d"
  "CMakeFiles/nsmodel_net.dir/fading.cpp.o"
  "CMakeFiles/nsmodel_net.dir/fading.cpp.o.d"
  "CMakeFiles/nsmodel_net.dir/tdma.cpp.o"
  "CMakeFiles/nsmodel_net.dir/tdma.cpp.o.d"
  "CMakeFiles/nsmodel_net.dir/topology.cpp.o"
  "CMakeFiles/nsmodel_net.dir/topology.cpp.o.d"
  "libnsmodel_net.a"
  "libnsmodel_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsmodel_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
