# Empty dependencies file for nsmodel_net.
# This may be replaced when dependencies are built.
