file(REMOVE_RECURSE
  "libnsmodel_net.a"
)
