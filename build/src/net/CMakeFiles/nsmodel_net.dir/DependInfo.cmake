
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/channel.cpp" "src/net/CMakeFiles/nsmodel_net.dir/channel.cpp.o" "gcc" "src/net/CMakeFiles/nsmodel_net.dir/channel.cpp.o.d"
  "/root/repo/src/net/deployment.cpp" "src/net/CMakeFiles/nsmodel_net.dir/deployment.cpp.o" "gcc" "src/net/CMakeFiles/nsmodel_net.dir/deployment.cpp.o.d"
  "/root/repo/src/net/energy.cpp" "src/net/CMakeFiles/nsmodel_net.dir/energy.cpp.o" "gcc" "src/net/CMakeFiles/nsmodel_net.dir/energy.cpp.o.d"
  "/root/repo/src/net/fading.cpp" "src/net/CMakeFiles/nsmodel_net.dir/fading.cpp.o" "gcc" "src/net/CMakeFiles/nsmodel_net.dir/fading.cpp.o.d"
  "/root/repo/src/net/tdma.cpp" "src/net/CMakeFiles/nsmodel_net.dir/tdma.cpp.o" "gcc" "src/net/CMakeFiles/nsmodel_net.dir/tdma.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/nsmodel_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/nsmodel_net.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/nsmodel_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/nsmodel_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
