file(REMOVE_RECURSE
  "CMakeFiles/nsmodel_geom.dir/circle.cpp.o"
  "CMakeFiles/nsmodel_geom.dir/circle.cpp.o.d"
  "CMakeFiles/nsmodel_geom.dir/disk_sampling.cpp.o"
  "CMakeFiles/nsmodel_geom.dir/disk_sampling.cpp.o.d"
  "CMakeFiles/nsmodel_geom.dir/rings.cpp.o"
  "CMakeFiles/nsmodel_geom.dir/rings.cpp.o.d"
  "CMakeFiles/nsmodel_geom.dir/spatial_grid.cpp.o"
  "CMakeFiles/nsmodel_geom.dir/spatial_grid.cpp.o.d"
  "libnsmodel_geom.a"
  "libnsmodel_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsmodel_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
