
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/circle.cpp" "src/geom/CMakeFiles/nsmodel_geom.dir/circle.cpp.o" "gcc" "src/geom/CMakeFiles/nsmodel_geom.dir/circle.cpp.o.d"
  "/root/repo/src/geom/disk_sampling.cpp" "src/geom/CMakeFiles/nsmodel_geom.dir/disk_sampling.cpp.o" "gcc" "src/geom/CMakeFiles/nsmodel_geom.dir/disk_sampling.cpp.o.d"
  "/root/repo/src/geom/rings.cpp" "src/geom/CMakeFiles/nsmodel_geom.dir/rings.cpp.o" "gcc" "src/geom/CMakeFiles/nsmodel_geom.dir/rings.cpp.o.d"
  "/root/repo/src/geom/spatial_grid.cpp" "src/geom/CMakeFiles/nsmodel_geom.dir/spatial_grid.cpp.o" "gcc" "src/geom/CMakeFiles/nsmodel_geom.dir/spatial_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/nsmodel_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
