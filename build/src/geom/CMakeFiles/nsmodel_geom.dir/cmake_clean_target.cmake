file(REMOVE_RECURSE
  "libnsmodel_geom.a"
)
