# Empty compiler generated dependencies file for nsmodel_geom.
# This may be replaced when dependencies are built.
