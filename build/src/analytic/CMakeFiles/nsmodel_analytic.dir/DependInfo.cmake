
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytic/mu.cpp" "src/analytic/CMakeFiles/nsmodel_analytic.dir/mu.cpp.o" "gcc" "src/analytic/CMakeFiles/nsmodel_analytic.dir/mu.cpp.o.d"
  "/root/repo/src/analytic/mu_literal.cpp" "src/analytic/CMakeFiles/nsmodel_analytic.dir/mu_literal.cpp.o" "gcc" "src/analytic/CMakeFiles/nsmodel_analytic.dir/mu_literal.cpp.o.d"
  "/root/repo/src/analytic/ring_model.cpp" "src/analytic/CMakeFiles/nsmodel_analytic.dir/ring_model.cpp.o" "gcc" "src/analytic/CMakeFiles/nsmodel_analytic.dir/ring_model.cpp.o.d"
  "/root/repo/src/analytic/success_rate.cpp" "src/analytic/CMakeFiles/nsmodel_analytic.dir/success_rate.cpp.o" "gcc" "src/analytic/CMakeFiles/nsmodel_analytic.dir/success_rate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/nsmodel_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/nsmodel_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
