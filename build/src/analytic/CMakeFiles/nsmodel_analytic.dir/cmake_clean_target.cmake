file(REMOVE_RECURSE
  "libnsmodel_analytic.a"
)
