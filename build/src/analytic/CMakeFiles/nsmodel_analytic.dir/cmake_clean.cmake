file(REMOVE_RECURSE
  "CMakeFiles/nsmodel_analytic.dir/mu.cpp.o"
  "CMakeFiles/nsmodel_analytic.dir/mu.cpp.o.d"
  "CMakeFiles/nsmodel_analytic.dir/mu_literal.cpp.o"
  "CMakeFiles/nsmodel_analytic.dir/mu_literal.cpp.o.d"
  "CMakeFiles/nsmodel_analytic.dir/ring_model.cpp.o"
  "CMakeFiles/nsmodel_analytic.dir/ring_model.cpp.o.d"
  "CMakeFiles/nsmodel_analytic.dir/success_rate.cpp.o"
  "CMakeFiles/nsmodel_analytic.dir/success_rate.cpp.o.d"
  "libnsmodel_analytic.a"
  "libnsmodel_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsmodel_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
