# Empty dependencies file for nsmodel_analytic.
# This may be replaced when dependencies are built.
