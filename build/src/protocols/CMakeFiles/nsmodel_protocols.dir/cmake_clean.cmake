file(REMOVE_RECURSE
  "CMakeFiles/nsmodel_protocols.dir/adaptive.cpp.o"
  "CMakeFiles/nsmodel_protocols.dir/adaptive.cpp.o.d"
  "CMakeFiles/nsmodel_protocols.dir/counter_based.cpp.o"
  "CMakeFiles/nsmodel_protocols.dir/counter_based.cpp.o.d"
  "CMakeFiles/nsmodel_protocols.dir/distance_based.cpp.o"
  "CMakeFiles/nsmodel_protocols.dir/distance_based.cpp.o.d"
  "CMakeFiles/nsmodel_protocols.dir/flooding.cpp.o"
  "CMakeFiles/nsmodel_protocols.dir/flooding.cpp.o.d"
  "CMakeFiles/nsmodel_protocols.dir/probabilistic.cpp.o"
  "CMakeFiles/nsmodel_protocols.dir/probabilistic.cpp.o.d"
  "CMakeFiles/nsmodel_protocols.dir/tdma_flooding.cpp.o"
  "CMakeFiles/nsmodel_protocols.dir/tdma_flooding.cpp.o.d"
  "libnsmodel_protocols.a"
  "libnsmodel_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsmodel_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
