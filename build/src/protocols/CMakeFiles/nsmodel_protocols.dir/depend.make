# Empty dependencies file for nsmodel_protocols.
# This may be replaced when dependencies are built.
