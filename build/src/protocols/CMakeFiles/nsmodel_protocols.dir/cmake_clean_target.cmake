file(REMOVE_RECURSE
  "libnsmodel_protocols.a"
)
