
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/adaptive.cpp" "src/protocols/CMakeFiles/nsmodel_protocols.dir/adaptive.cpp.o" "gcc" "src/protocols/CMakeFiles/nsmodel_protocols.dir/adaptive.cpp.o.d"
  "/root/repo/src/protocols/counter_based.cpp" "src/protocols/CMakeFiles/nsmodel_protocols.dir/counter_based.cpp.o" "gcc" "src/protocols/CMakeFiles/nsmodel_protocols.dir/counter_based.cpp.o.d"
  "/root/repo/src/protocols/distance_based.cpp" "src/protocols/CMakeFiles/nsmodel_protocols.dir/distance_based.cpp.o" "gcc" "src/protocols/CMakeFiles/nsmodel_protocols.dir/distance_based.cpp.o.d"
  "/root/repo/src/protocols/flooding.cpp" "src/protocols/CMakeFiles/nsmodel_protocols.dir/flooding.cpp.o" "gcc" "src/protocols/CMakeFiles/nsmodel_protocols.dir/flooding.cpp.o.d"
  "/root/repo/src/protocols/probabilistic.cpp" "src/protocols/CMakeFiles/nsmodel_protocols.dir/probabilistic.cpp.o" "gcc" "src/protocols/CMakeFiles/nsmodel_protocols.dir/probabilistic.cpp.o.d"
  "/root/repo/src/protocols/tdma_flooding.cpp" "src/protocols/CMakeFiles/nsmodel_protocols.dir/tdma_flooding.cpp.o" "gcc" "src/protocols/CMakeFiles/nsmodel_protocols.dir/tdma_flooding.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/nsmodel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/nsmodel_support.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/nsmodel_geom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
