# Empty compiler generated dependencies file for ablation_fading.
# This may be replaced when dependencies are built.
