file(REMOVE_RECURSE
  "CMakeFiles/ablation_fading.dir/ablation_fading.cpp.o"
  "CMakeFiles/ablation_fading.dir/ablation_fading.cpp.o.d"
  "ablation_fading"
  "ablation_fading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
