file(REMOVE_RECURSE
  "CMakeFiles/ablation_real_k_policy.dir/ablation_real_k_policy.cpp.o"
  "CMakeFiles/ablation_real_k_policy.dir/ablation_real_k_policy.cpp.o.d"
  "ablation_real_k_policy"
  "ablation_real_k_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_real_k_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
