# Empty compiler generated dependencies file for ablation_real_k_policy.
# This may be replaced when dependencies are built.
