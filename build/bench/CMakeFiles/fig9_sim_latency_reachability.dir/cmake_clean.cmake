file(REMOVE_RECURSE
  "CMakeFiles/fig9_sim_latency_reachability.dir/fig9_sim_latency_reachability.cpp.o"
  "CMakeFiles/fig9_sim_latency_reachability.dir/fig9_sim_latency_reachability.cpp.o.d"
  "fig9_sim_latency_reachability"
  "fig9_sim_latency_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_sim_latency_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
