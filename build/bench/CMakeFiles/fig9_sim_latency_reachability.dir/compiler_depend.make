# Empty compiler generated dependencies file for fig9_sim_latency_reachability.
# This may be replaced when dependencies are built.
