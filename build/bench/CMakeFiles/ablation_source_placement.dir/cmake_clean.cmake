file(REMOVE_RECURSE
  "CMakeFiles/ablation_source_placement.dir/ablation_source_placement.cpp.o"
  "CMakeFiles/ablation_source_placement.dir/ablation_source_placement.cpp.o.d"
  "ablation_source_placement"
  "ablation_source_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_source_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
