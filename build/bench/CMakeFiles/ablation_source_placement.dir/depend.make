# Empty dependencies file for ablation_source_placement.
# This may be replaced when dependencies are built.
