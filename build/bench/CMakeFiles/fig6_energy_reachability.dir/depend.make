# Empty dependencies file for fig6_energy_reachability.
# This may be replaced when dependencies are built.
