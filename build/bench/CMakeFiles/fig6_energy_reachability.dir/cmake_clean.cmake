file(REMOVE_RECURSE
  "CMakeFiles/fig6_energy_reachability.dir/fig6_energy_reachability.cpp.o"
  "CMakeFiles/fig6_energy_reachability.dir/fig6_energy_reachability.cpp.o.d"
  "fig6_energy_reachability"
  "fig6_energy_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_energy_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
