file(REMOVE_RECURSE
  "CMakeFiles/fig12_success_rate_heuristic.dir/fig12_success_rate_heuristic.cpp.o"
  "CMakeFiles/fig12_success_rate_heuristic.dir/fig12_success_rate_heuristic.cpp.o.d"
  "fig12_success_rate_heuristic"
  "fig12_success_rate_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_success_rate_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
