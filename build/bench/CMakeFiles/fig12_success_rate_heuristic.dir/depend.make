# Empty dependencies file for fig12_success_rate_heuristic.
# This may be replaced when dependencies are built.
