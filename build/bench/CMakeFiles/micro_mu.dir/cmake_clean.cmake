file(REMOVE_RECURSE
  "CMakeFiles/micro_mu.dir/micro_mu.cpp.o"
  "CMakeFiles/micro_mu.dir/micro_mu.cpp.o.d"
  "micro_mu"
  "micro_mu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_mu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
