# Empty compiler generated dependencies file for micro_mu.
# This may be replaced when dependencies are built.
