# Empty dependencies file for ablation_async_phases.
# This may be replaced when dependencies are built.
