file(REMOVE_RECURSE
  "CMakeFiles/ablation_async_phases.dir/ablation_async_phases.cpp.o"
  "CMakeFiles/ablation_async_phases.dir/ablation_async_phases.cpp.o.d"
  "ablation_async_phases"
  "ablation_async_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_async_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
