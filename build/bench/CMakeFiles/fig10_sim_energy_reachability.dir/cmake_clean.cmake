file(REMOVE_RECURSE
  "CMakeFiles/fig10_sim_energy_reachability.dir/fig10_sim_energy_reachability.cpp.o"
  "CMakeFiles/fig10_sim_energy_reachability.dir/fig10_sim_energy_reachability.cpp.o.d"
  "fig10_sim_energy_reachability"
  "fig10_sim_energy_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sim_energy_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
