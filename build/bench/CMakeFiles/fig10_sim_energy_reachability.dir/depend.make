# Empty dependencies file for fig10_sim_energy_reachability.
# This may be replaced when dependencies are built.
