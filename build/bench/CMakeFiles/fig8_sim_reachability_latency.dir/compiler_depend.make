# Empty compiler generated dependencies file for fig8_sim_reachability_latency.
# This may be replaced when dependencies are built.
