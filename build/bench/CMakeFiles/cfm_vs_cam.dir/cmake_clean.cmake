file(REMOVE_RECURSE
  "CMakeFiles/cfm_vs_cam.dir/cfm_vs_cam.cpp.o"
  "CMakeFiles/cfm_vs_cam.dir/cfm_vs_cam.cpp.o.d"
  "cfm_vs_cam"
  "cfm_vs_cam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfm_vs_cam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
