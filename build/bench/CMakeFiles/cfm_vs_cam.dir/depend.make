# Empty dependencies file for cfm_vs_cam.
# This may be replaced when dependencies are built.
