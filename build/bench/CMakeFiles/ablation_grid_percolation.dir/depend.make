# Empty dependencies file for ablation_grid_percolation.
# This may be replaced when dependencies are built.
