file(REMOVE_RECURSE
  "CMakeFiles/ablation_grid_percolation.dir/ablation_grid_percolation.cpp.o"
  "CMakeFiles/ablation_grid_percolation.dir/ablation_grid_percolation.cpp.o.d"
  "ablation_grid_percolation"
  "ablation_grid_percolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_grid_percolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
