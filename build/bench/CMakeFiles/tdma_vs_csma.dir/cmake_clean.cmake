file(REMOVE_RECURSE
  "CMakeFiles/tdma_vs_csma.dir/tdma_vs_csma.cpp.o"
  "CMakeFiles/tdma_vs_csma.dir/tdma_vs_csma.cpp.o.d"
  "tdma_vs_csma"
  "tdma_vs_csma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdma_vs_csma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
