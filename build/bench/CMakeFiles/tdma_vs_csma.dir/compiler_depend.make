# Empty compiler generated dependencies file for tdma_vs_csma.
# This may be replaced when dependencies are built.
