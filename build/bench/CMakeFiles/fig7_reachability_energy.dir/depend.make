# Empty dependencies file for fig7_reachability_energy.
# This may be replaced when dependencies are built.
