file(REMOVE_RECURSE
  "CMakeFiles/fig11_sim_reachability_energy.dir/fig11_sim_reachability_energy.cpp.o"
  "CMakeFiles/fig11_sim_reachability_energy.dir/fig11_sim_reachability_energy.cpp.o.d"
  "fig11_sim_reachability_energy"
  "fig11_sim_reachability_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_sim_reachability_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
