# Empty compiler generated dependencies file for fig11_sim_reachability_energy.
# This may be replaced when dependencies are built.
