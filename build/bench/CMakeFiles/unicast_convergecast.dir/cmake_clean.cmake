file(REMOVE_RECURSE
  "CMakeFiles/unicast_convergecast.dir/unicast_convergecast.cpp.o"
  "CMakeFiles/unicast_convergecast.dir/unicast_convergecast.cpp.o.d"
  "unicast_convergecast"
  "unicast_convergecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unicast_convergecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
