# Empty dependencies file for unicast_convergecast.
# This may be replaced when dependencies are built.
