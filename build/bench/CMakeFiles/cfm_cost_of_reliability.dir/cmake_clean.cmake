file(REMOVE_RECURSE
  "CMakeFiles/cfm_cost_of_reliability.dir/cfm_cost_of_reliability.cpp.o"
  "CMakeFiles/cfm_cost_of_reliability.dir/cfm_cost_of_reliability.cpp.o.d"
  "cfm_cost_of_reliability"
  "cfm_cost_of_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfm_cost_of_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
