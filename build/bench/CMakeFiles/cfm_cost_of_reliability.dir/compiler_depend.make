# Empty compiler generated dependencies file for cfm_cost_of_reliability.
# This may be replaced when dependencies are built.
