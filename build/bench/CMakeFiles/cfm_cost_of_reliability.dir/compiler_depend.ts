# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cfm_cost_of_reliability.
