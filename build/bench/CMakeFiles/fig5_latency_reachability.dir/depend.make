# Empty dependencies file for fig5_latency_reachability.
# This may be replaced when dependencies are built.
