file(REMOVE_RECURSE
  "CMakeFiles/fig5_latency_reachability.dir/fig5_latency_reachability.cpp.o"
  "CMakeFiles/fig5_latency_reachability.dir/fig5_latency_reachability.cpp.o.d"
  "fig5_latency_reachability"
  "fig5_latency_reachability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_latency_reachability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
