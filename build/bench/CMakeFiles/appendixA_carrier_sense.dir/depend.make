# Empty dependencies file for appendixA_carrier_sense.
# This may be replaced when dependencies are built.
