file(REMOVE_RECURSE
  "CMakeFiles/appendixA_carrier_sense.dir/appendixA_carrier_sense.cpp.o"
  "CMakeFiles/appendixA_carrier_sense.dir/appendixA_carrier_sense.cpp.o.d"
  "appendixA_carrier_sense"
  "appendixA_carrier_sense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendixA_carrier_sense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
