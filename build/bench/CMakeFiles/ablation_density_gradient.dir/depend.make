# Empty dependencies file for ablation_density_gradient.
# This may be replaced when dependencies are built.
