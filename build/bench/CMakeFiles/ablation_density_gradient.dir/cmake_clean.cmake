file(REMOVE_RECURSE
  "CMakeFiles/ablation_density_gradient.dir/ablation_density_gradient.cpp.o"
  "CMakeFiles/ablation_density_gradient.dir/ablation_density_gradient.cpp.o.d"
  "ablation_density_gradient"
  "ablation_density_gradient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_density_gradient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
