# Empty dependencies file for energy_hole.
# This may be replaced when dependencies are built.
