file(REMOVE_RECURSE
  "CMakeFiles/energy_hole.dir/energy_hole.cpp.o"
  "CMakeFiles/energy_hole.dir/energy_hole.cpp.o.d"
  "energy_hole"
  "energy_hole.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_hole.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
