file(REMOVE_RECURSE
  "CMakeFiles/density_adaptive_broadcast.dir/density_adaptive_broadcast.cpp.o"
  "CMakeFiles/density_adaptive_broadcast.dir/density_adaptive_broadcast.cpp.o.d"
  "density_adaptive_broadcast"
  "density_adaptive_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/density_adaptive_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
