# Empty dependencies file for density_adaptive_broadcast.
# This may be replaced when dependencies are built.
