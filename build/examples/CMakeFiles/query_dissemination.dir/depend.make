# Empty dependencies file for query_dissemination.
# This may be replaced when dependencies are built.
