file(REMOVE_RECURSE
  "CMakeFiles/query_dissemination.dir/query_dissemination.cpp.o"
  "CMakeFiles/query_dissemination.dir/query_dissemination.cpp.o.d"
  "query_dissemination"
  "query_dissemination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_dissemination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
