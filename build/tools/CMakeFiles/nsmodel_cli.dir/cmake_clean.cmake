file(REMOVE_RECURSE
  "CMakeFiles/nsmodel_cli.dir/nsmodel_cli.cpp.o"
  "CMakeFiles/nsmodel_cli.dir/nsmodel_cli.cpp.o.d"
  "nsmodel_cli"
  "nsmodel_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsmodel_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
