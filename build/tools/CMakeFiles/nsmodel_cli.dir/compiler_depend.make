# Empty compiler generated dependencies file for nsmodel_cli.
# This may be replaced when dependencies are built.
