add_test([=[UmbrellaHeader.ExposesTheFullSurface]=]  /root/repo/build/tests/test_umbrella_header [==[--gtest_filter=UmbrellaHeader.ExposesTheFullSurface]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[UmbrellaHeader.ExposesTheFullSurface]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_umbrella_header_TESTS UmbrellaHeader.ExposesTheFullSurface)
