file(REMOVE_RECURSE
  "CMakeFiles/test_geom_sampling.dir/test_geom_sampling.cpp.o"
  "CMakeFiles/test_geom_sampling.dir/test_geom_sampling.cpp.o.d"
  "test_geom_sampling"
  "test_geom_sampling.pdb"
  "test_geom_sampling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
