file(REMOVE_RECURSE
  "CMakeFiles/test_geom_rings.dir/test_geom_rings.cpp.o"
  "CMakeFiles/test_geom_rings.dir/test_geom_rings.cpp.o.d"
  "test_geom_rings"
  "test_geom_rings.pdb"
  "test_geom_rings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geom_rings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
