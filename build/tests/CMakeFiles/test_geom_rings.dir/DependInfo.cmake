
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_geom_rings.cpp" "tests/CMakeFiles/test_geom_rings.dir/test_geom_rings.cpp.o" "gcc" "tests/CMakeFiles/test_geom_rings.dir/test_geom_rings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nsmodel_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nsmodel_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/nsmodel_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nsmodel_net.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/nsmodel_des.dir/DependInfo.cmake"
  "/root/repo/build/src/analytic/CMakeFiles/nsmodel_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/nsmodel_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/nsmodel_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
