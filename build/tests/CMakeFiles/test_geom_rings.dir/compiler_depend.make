# Empty compiler generated dependencies file for test_geom_rings.
# This may be replaced when dependencies are built.
