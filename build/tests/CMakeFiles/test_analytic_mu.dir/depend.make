# Empty dependencies file for test_analytic_mu.
# This may be replaced when dependencies are built.
