file(REMOVE_RECURSE
  "CMakeFiles/test_analytic_mu.dir/test_analytic_mu.cpp.o"
  "CMakeFiles/test_analytic_mu.dir/test_analytic_mu.cpp.o.d"
  "test_analytic_mu"
  "test_analytic_mu.pdb"
  "test_analytic_mu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analytic_mu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
