# Empty compiler generated dependencies file for test_net_deployment.
# This may be replaced when dependencies are built.
