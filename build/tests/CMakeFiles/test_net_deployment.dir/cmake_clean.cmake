file(REMOVE_RECURSE
  "CMakeFiles/test_net_deployment.dir/test_net_deployment.cpp.o"
  "CMakeFiles/test_net_deployment.dir/test_net_deployment.cpp.o.d"
  "test_net_deployment"
  "test_net_deployment.pdb"
  "test_net_deployment[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
