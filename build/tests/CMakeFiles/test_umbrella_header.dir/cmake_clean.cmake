file(REMOVE_RECURSE
  "CMakeFiles/test_umbrella_header.dir/test_umbrella_header.cpp.o"
  "CMakeFiles/test_umbrella_header.dir/test_umbrella_header.cpp.o.d"
  "test_umbrella_header"
  "test_umbrella_header.pdb"
  "test_umbrella_header[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_umbrella_header.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
