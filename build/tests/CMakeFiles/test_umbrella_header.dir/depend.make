# Empty dependencies file for test_umbrella_header.
# This may be replaced when dependencies are built.
