file(REMOVE_RECURSE
  "CMakeFiles/test_sim_trace_export.dir/test_sim_trace_export.cpp.o"
  "CMakeFiles/test_sim_trace_export.dir/test_sim_trace_export.cpp.o.d"
  "test_sim_trace_export"
  "test_sim_trace_export.pdb"
  "test_sim_trace_export[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_trace_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
