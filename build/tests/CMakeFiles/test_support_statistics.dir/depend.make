# Empty dependencies file for test_support_statistics.
# This may be replaced when dependencies are built.
