file(REMOVE_RECURSE
  "CMakeFiles/test_support_statistics.dir/test_support_statistics.cpp.o"
  "CMakeFiles/test_support_statistics.dir/test_support_statistics.cpp.o.d"
  "test_support_statistics"
  "test_support_statistics.pdb"
  "test_support_statistics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_statistics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
