# Empty compiler generated dependencies file for test_net_fading.
# This may be replaced when dependencies are built.
