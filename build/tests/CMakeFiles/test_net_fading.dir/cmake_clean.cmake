file(REMOVE_RECURSE
  "CMakeFiles/test_net_fading.dir/test_net_fading.cpp.o"
  "CMakeFiles/test_net_fading.dir/test_net_fading.cpp.o.d"
  "test_net_fading"
  "test_net_fading.pdb"
  "test_net_fading[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_fading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
