# Empty dependencies file for test_sim_monte_carlo.
# This may be replaced when dependencies are built.
