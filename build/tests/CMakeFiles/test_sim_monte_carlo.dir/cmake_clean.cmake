file(REMOVE_RECURSE
  "CMakeFiles/test_sim_monte_carlo.dir/test_sim_monte_carlo.cpp.o"
  "CMakeFiles/test_sim_monte_carlo.dir/test_sim_monte_carlo.cpp.o.d"
  "test_sim_monte_carlo"
  "test_sim_monte_carlo.pdb"
  "test_sim_monte_carlo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_monte_carlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
