# Empty compiler generated dependencies file for test_support_integrate.
# This may be replaced when dependencies are built.
