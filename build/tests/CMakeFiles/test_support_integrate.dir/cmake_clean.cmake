file(REMOVE_RECURSE
  "CMakeFiles/test_support_integrate.dir/test_support_integrate.cpp.o"
  "CMakeFiles/test_support_integrate.dir/test_support_integrate.cpp.o.d"
  "test_support_integrate"
  "test_support_integrate.pdb"
  "test_support_integrate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_integrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
