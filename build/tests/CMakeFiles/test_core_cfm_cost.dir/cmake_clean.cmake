file(REMOVE_RECURSE
  "CMakeFiles/test_core_cfm_cost.dir/test_core_cfm_cost.cpp.o"
  "CMakeFiles/test_core_cfm_cost.dir/test_core_cfm_cost.cpp.o.d"
  "test_core_cfm_cost"
  "test_core_cfm_cost.pdb"
  "test_core_cfm_cost[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_cfm_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
