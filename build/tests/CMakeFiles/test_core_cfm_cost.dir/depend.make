# Empty dependencies file for test_core_cfm_cost.
# This may be replaced when dependencies are built.
