# Empty compiler generated dependencies file for test_analytic_success_rate.
# This may be replaced when dependencies are built.
