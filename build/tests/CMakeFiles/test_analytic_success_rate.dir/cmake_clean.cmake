file(REMOVE_RECURSE
  "CMakeFiles/test_analytic_success_rate.dir/test_analytic_success_rate.cpp.o"
  "CMakeFiles/test_analytic_success_rate.dir/test_analytic_success_rate.cpp.o.d"
  "test_analytic_success_rate"
  "test_analytic_success_rate.pdb"
  "test_analytic_success_rate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analytic_success_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
