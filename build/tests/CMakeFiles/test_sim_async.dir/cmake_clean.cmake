file(REMOVE_RECURSE
  "CMakeFiles/test_sim_async.dir/test_sim_async.cpp.o"
  "CMakeFiles/test_sim_async.dir/test_sim_async.cpp.o.d"
  "test_sim_async"
  "test_sim_async.pdb"
  "test_sim_async[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
