# Empty dependencies file for test_net_tdma.
# This may be replaced when dependencies are built.
