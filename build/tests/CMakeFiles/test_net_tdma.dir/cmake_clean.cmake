file(REMOVE_RECURSE
  "CMakeFiles/test_net_tdma.dir/test_net_tdma.cpp.o"
  "CMakeFiles/test_net_tdma.dir/test_net_tdma.cpp.o.d"
  "test_net_tdma"
  "test_net_tdma.pdb"
  "test_net_tdma[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_tdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
