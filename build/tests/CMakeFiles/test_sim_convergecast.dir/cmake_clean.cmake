file(REMOVE_RECURSE
  "CMakeFiles/test_sim_convergecast.dir/test_sim_convergecast.cpp.o"
  "CMakeFiles/test_sim_convergecast.dir/test_sim_convergecast.cpp.o.d"
  "test_sim_convergecast"
  "test_sim_convergecast.pdb"
  "test_sim_convergecast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_convergecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
