file(REMOVE_RECURSE
  "CMakeFiles/test_analytic_properties.dir/test_analytic_properties.cpp.o"
  "CMakeFiles/test_analytic_properties.dir/test_analytic_properties.cpp.o.d"
  "test_analytic_properties"
  "test_analytic_properties.pdb"
  "test_analytic_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analytic_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
