# Empty compiler generated dependencies file for test_core_optimizer.
# This may be replaced when dependencies are built.
