# Empty compiler generated dependencies file for test_geom_circle.
# This may be replaced when dependencies are built.
