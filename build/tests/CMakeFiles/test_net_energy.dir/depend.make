# Empty dependencies file for test_net_energy.
# This may be replaced when dependencies are built.
