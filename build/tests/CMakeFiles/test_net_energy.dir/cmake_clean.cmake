file(REMOVE_RECURSE
  "CMakeFiles/test_net_energy.dir/test_net_energy.cpp.o"
  "CMakeFiles/test_net_energy.dir/test_net_energy.cpp.o.d"
  "test_net_energy"
  "test_net_energy.pdb"
  "test_net_energy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
