file(REMOVE_RECURSE
  "CMakeFiles/test_support_table.dir/test_support_table.cpp.o"
  "CMakeFiles/test_support_table.dir/test_support_table.cpp.o.d"
  "test_support_table"
  "test_support_table.pdb"
  "test_support_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
