# Empty dependencies file for test_geom_spatial_grid.
# This may be replaced when dependencies are built.
