file(REMOVE_RECURSE
  "CMakeFiles/test_support_log_math.dir/test_support_log_math.cpp.o"
  "CMakeFiles/test_support_log_math.dir/test_support_log_math.cpp.o.d"
  "test_support_log_math"
  "test_support_log_math.pdb"
  "test_support_log_math[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_log_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
