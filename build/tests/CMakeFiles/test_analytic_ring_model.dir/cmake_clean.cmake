file(REMOVE_RECURSE
  "CMakeFiles/test_analytic_ring_model.dir/test_analytic_ring_model.cpp.o"
  "CMakeFiles/test_analytic_ring_model.dir/test_analytic_ring_model.cpp.o.d"
  "test_analytic_ring_model"
  "test_analytic_ring_model.pdb"
  "test_analytic_ring_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analytic_ring_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
