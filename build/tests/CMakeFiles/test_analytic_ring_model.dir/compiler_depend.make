# Empty compiler generated dependencies file for test_analytic_ring_model.
# This may be replaced when dependencies are built.
