file(REMOVE_RECURSE
  "CMakeFiles/test_sim_reliable.dir/test_sim_reliable.cpp.o"
  "CMakeFiles/test_sim_reliable.dir/test_sim_reliable.cpp.o.d"
  "test_sim_reliable"
  "test_sim_reliable.pdb"
  "test_sim_reliable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_reliable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
