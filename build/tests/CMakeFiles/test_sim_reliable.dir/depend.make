# Empty dependencies file for test_sim_reliable.
# This may be replaced when dependencies are built.
