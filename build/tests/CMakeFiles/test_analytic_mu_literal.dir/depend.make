# Empty dependencies file for test_analytic_mu_literal.
# This may be replaced when dependencies are built.
