file(REMOVE_RECURSE
  "CMakeFiles/test_analytic_mu_literal.dir/test_analytic_mu_literal.cpp.o"
  "CMakeFiles/test_analytic_mu_literal.dir/test_analytic_mu_literal.cpp.o.d"
  "test_analytic_mu_literal"
  "test_analytic_mu_literal.pdb"
  "test_analytic_mu_literal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analytic_mu_literal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
