file(REMOVE_RECURSE
  "CMakeFiles/test_net_topology.dir/test_net_topology.cpp.o"
  "CMakeFiles/test_net_topology.dir/test_net_topology.cpp.o.d"
  "test_net_topology"
  "test_net_topology.pdb"
  "test_net_topology[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
