// The packet abstraction used by the broadcast protocols.
//
// The paper's models are link level and its case study floods a single
// piece of information, so the payload is irrelevant; a packet carries
// identity and provenance only.
#pragma once

#include <cstdint>

namespace nsmodel::net {

/// Node identifier; nodes are numbered 0..N-1 within a deployment.
using NodeId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = 0xffffffffu;

/// A broadcast packet.
struct Packet {
  NodeId origin = kNoNode;  ///< node that initiated the broadcast
  NodeId sender = kNoNode;  ///< node that transmitted this copy
  std::uint32_t hopCount = 0;  ///< hops from the origin (origin tx = 1)
};

}  // namespace nsmodel::net
