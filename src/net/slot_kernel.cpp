// Runtime dispatch for the slot-resolution kernel (see slot_kernel.hpp).
#include "net/slot_kernel.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "support/error.hpp"

namespace nsmodel::net {

namespace detail {
namespace generic {
std::size_t bumpRow(std::uint32_t* entries, NodeId* touched,
                    std::size_t touchedCount, const NodeId* ids,
                    std::size_t n, std::uint32_t senderBits,
                    std::uint32_t add, const NodeId* prefetchIds,
                    std::size_t prefetchN);
std::size_t scanTouched(std::uint32_t* entries, const NodeId* touched,
                        std::size_t n, NodeId* receivers, NodeId* senders,
                        std::size_t* lost);
bool runtimeSupported();
}  // namespace generic
#if NSMODEL_SLOT_KERNEL_NATIVE
namespace native {
std::size_t bumpRow(std::uint32_t* entries, NodeId* touched,
                    std::size_t touchedCount, const NodeId* ids,
                    std::size_t n, std::uint32_t senderBits,
                    std::uint32_t add, const NodeId* prefetchIds,
                    std::size_t prefetchN);
std::size_t scanTouched(std::uint32_t* entries, const NodeId* touched,
                        std::size_t n, NodeId* receivers, NodeId* senders,
                        std::size_t* lost);
bool runtimeSupported();
}  // namespace native
#endif
}  // namespace detail

namespace {

const SlotKernelOps kOracleOps{SlotKernelIsa::Oracle, "oracle", nullptr,
                               nullptr};
const SlotKernelOps kGenericOps{SlotKernelIsa::Generic, "generic",
                                &detail::generic::bumpRow,
                                &detail::generic::scanTouched};
#if NSMODEL_SLOT_KERNEL_NATIVE
const SlotKernelOps kNativeOps{SlotKernelIsa::Native, "native",
                               &detail::native::bumpRow,
                               &detail::native::scanTouched};
#endif

const SlotKernelOps* opsFor(SlotKernelIsa isa) {
  switch (isa) {
    case SlotKernelIsa::Oracle:
      return &kOracleOps;
    case SlotKernelIsa::Generic:
      return &kGenericOps;
    case SlotKernelIsa::Native:
#if NSMODEL_SLOT_KERNEL_NATIVE
      return &kNativeOps;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

std::atomic<const SlotKernelOps*>& currentOps() {
  static std::atomic<const SlotKernelOps*> current{nullptr};
  return current;
}

}  // namespace

const char* slotKernelIsaName(SlotKernelIsa isa) {
  switch (isa) {
    case SlotKernelIsa::Oracle:
      return "oracle";
    case SlotKernelIsa::Generic:
      return "generic";
    case SlotKernelIsa::Native:
      return "native";
  }
  return "?";
}

bool slotKernelAvailable(SlotKernelIsa isa) {
  if (isa != SlotKernelIsa::Native) return true;
#if NSMODEL_SLOT_KERNEL_NATIVE
  // Computed once: the answer cannot change while the process runs.
  static const bool supported = detail::native::runtimeSupported();
  return supported;
#else
  return false;
#endif
}

SlotKernelIsa defaultSlotKernel() {
  const char* env = std::getenv("NSMODEL_SLOT_KERNEL");
  const std::string choice = env == nullptr ? "auto" : env;
  if (choice == "auto" || choice.empty()) {
    return slotKernelAvailable(SlotKernelIsa::Native) ? SlotKernelIsa::Native
                                                      : SlotKernelIsa::Generic;
  }
  if (choice == "oracle") return SlotKernelIsa::Oracle;
  if (choice == "generic") return SlotKernelIsa::Generic;
  if (choice == "native") {
    NSMODEL_CHECK(slotKernelAvailable(SlotKernelIsa::Native),
                  "NSMODEL_SLOT_KERNEL=native, but this build has no native "
                  "kernel (or the CPU lacks its ISA)");
    return SlotKernelIsa::Native;
  }
  throw ConfigError("unknown NSMODEL_SLOT_KERNEL value '" + choice +
                    "' (want oracle|generic|native|auto)");
}

const SlotKernelOps& slotKernelOps() {
  const SlotKernelOps* ops = currentOps().load(std::memory_order_relaxed);
  if (ops == nullptr) {
    // Benign race: concurrent first calls resolve to the same table.
    ops = opsFor(defaultSlotKernel());
    currentOps().store(ops, std::memory_order_relaxed);
  }
  return *ops;
}

void setSlotKernel(SlotKernelIsa isa) {
  NSMODEL_CHECK(slotKernelAvailable(isa),
                std::string("slot kernel '") + slotKernelIsaName(isa) +
                    "' is not available in this build/CPU");
  currentOps().store(opsFor(isa), std::memory_order_relaxed);
}

}  // namespace nsmodel::net
