// Runtime dispatch for the slot-resolution kernel (see slot_kernel.hpp).
#include "net/slot_kernel.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "support/error.hpp"

namespace nsmodel::net {

namespace detail {
namespace generic {
std::size_t bumpRow(std::uint32_t* entries, NodeId* touched,
                    std::size_t touchedCount, const NodeId* ids,
                    std::size_t n, std::uint32_t senderBits,
                    std::uint32_t add, const NodeId* prefetchIds,
                    std::size_t prefetchN);
std::size_t scanTouched(std::uint32_t* entries, const NodeId* touched,
                        std::size_t n, NodeId* receivers, NodeId* senders,
                        std::size_t* lost);
std::size_t scanTouchedRO(const std::uint32_t* entries, const NodeId* touched,
                          std::size_t n, NodeId* receivers, NodeId* senders,
                          std::size_t* lost);
std::size_t filterActionable(const std::uint32_t* status,
                             const NodeId* receivers, std::size_t n,
                             std::uint32_t* outIdx);
bool runtimeSupported();
}  // namespace generic
#if NSMODEL_SLOT_KERNEL_NATIVE
namespace native {
std::size_t bumpRow(std::uint32_t* entries, NodeId* touched,
                    std::size_t touchedCount, const NodeId* ids,
                    std::size_t n, std::uint32_t senderBits,
                    std::uint32_t add, const NodeId* prefetchIds,
                    std::size_t prefetchN);
std::size_t scanTouched(std::uint32_t* entries, const NodeId* touched,
                        std::size_t n, NodeId* receivers, NodeId* senders,
                        std::size_t* lost);
std::size_t scanTouchedRO(const std::uint32_t* entries, const NodeId* touched,
                          std::size_t n, NodeId* receivers, NodeId* senders,
                          std::size_t* lost);
std::size_t filterActionable(const std::uint32_t* status,
                             const NodeId* receivers, std::size_t n,
                             std::uint32_t* outIdx);
bool runtimeSupported();
}  // namespace native
#endif

// Scalar reference loops for the Oracle table.  The channels never reach
// these (they dispatch to their own reference path on isa == Oracle);
// only the batched replication driver does, so that
// NSMODEL_SLOT_KERNEL=oracle exercises it with plain unvectorized code.
namespace oracle {
namespace {
std::size_t bumpRow(std::uint32_t* entries, NodeId* touched,
                    std::size_t touchedCount, const NodeId* ids,
                    std::size_t n, std::uint32_t senderBits,
                    std::uint32_t add, const NodeId* /*prefetchIds*/,
                    std::size_t /*prefetchN*/) {
  std::size_t tc = touchedCount;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node = ids[i];
    const std::uint32_t e = entries[node];
    touched[tc] = node;  // kept only when this is a first touch
    tc += static_cast<std::size_t>(static_cast<std::uint16_t>(e) == 0);
    entries[node] = (e + add) ^ senderBits;
  }
  return tc;
}

std::size_t scanTouched(std::uint32_t* entries, const NodeId* touched,
                        std::size_t n, NodeId* receivers, NodeId* senders,
                        std::size_t* lost) {
  std::size_t wins = 0;
  std::size_t lostLocal = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node = touched[i];
    const std::uint32_t e = entries[node];
    entries[node] = 0;
    const bool win = (e & 0xFFFF) == 1;
    receivers[wins] = node;
    senders[wins] = static_cast<NodeId>(e >> 16);
    wins += static_cast<std::size_t>(win);
    lostLocal += static_cast<std::size_t>(!win);
  }
  *lost += lostLocal;
  return wins;
}

std::size_t scanTouchedRO(const std::uint32_t* entries, const NodeId* touched,
                          std::size_t n, NodeId* receivers, NodeId* senders,
                          std::size_t* lost) {
  std::size_t wins = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node = touched[i];
    const std::uint32_t e = entries[node];
    receivers[wins] = node;  // kept only on a win
    senders[wins] = static_cast<NodeId>(e >> 16);
    wins += static_cast<std::size_t>((e & 0xFFFF) == 1);
  }
  *lost += n - wins;
  return wins;
}

std::size_t filterActionable(const std::uint32_t* status,
                             const NodeId* receivers, std::size_t n,
                             std::uint32_t* outIdx) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t s = status[receivers[i]];
    outIdx[count] = static_cast<std::uint32_t>(i);
    count += static_cast<std::size_t>((s & 1u) == 0u || (s & 7u) == 3u);
  }
  return count;
}
}  // namespace
}  // namespace oracle
}  // namespace detail

namespace {

const SlotKernelOps kOracleOps{
    SlotKernelIsa::Oracle,        "oracle",
    &detail::oracle::bumpRow,     &detail::oracle::scanTouched,
    &detail::oracle::scanTouchedRO, &detail::oracle::filterActionable};
const SlotKernelOps kGenericOps{
    SlotKernelIsa::Generic,        "generic",
    &detail::generic::bumpRow,     &detail::generic::scanTouched,
    &detail::generic::scanTouchedRO, &detail::generic::filterActionable};
#if NSMODEL_SLOT_KERNEL_NATIVE
const SlotKernelOps kNativeOps{
    SlotKernelIsa::Native,        "native",
    &detail::native::bumpRow,     &detail::native::scanTouched,
    &detail::native::scanTouchedRO, &detail::native::filterActionable};
#endif

const SlotKernelOps* opsFor(SlotKernelIsa isa) {
  switch (isa) {
    case SlotKernelIsa::Oracle:
      return &kOracleOps;
    case SlotKernelIsa::Generic:
      return &kGenericOps;
    case SlotKernelIsa::Native:
#if NSMODEL_SLOT_KERNEL_NATIVE
      return &kNativeOps;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

std::atomic<const SlotKernelOps*>& currentOps() {
  static std::atomic<const SlotKernelOps*> current{nullptr};
  return current;
}

}  // namespace

const char* slotKernelIsaName(SlotKernelIsa isa) {
  switch (isa) {
    case SlotKernelIsa::Oracle:
      return "oracle";
    case SlotKernelIsa::Generic:
      return "generic";
    case SlotKernelIsa::Native:
      return "native";
  }
  return "?";
}

bool slotKernelAvailable(SlotKernelIsa isa) {
  if (isa != SlotKernelIsa::Native) return true;
#if NSMODEL_SLOT_KERNEL_NATIVE
  // Computed once: the answer cannot change while the process runs.
  static const bool supported = detail::native::runtimeSupported();
  return supported;
#else
  return false;
#endif
}

SlotKernelIsa defaultSlotKernel() {
  const char* env = std::getenv("NSMODEL_SLOT_KERNEL");
  const std::string choice = env == nullptr ? "auto" : env;
  if (choice == "auto" || choice.empty()) {
    return slotKernelAvailable(SlotKernelIsa::Native) ? SlotKernelIsa::Native
                                                      : SlotKernelIsa::Generic;
  }
  if (choice == "oracle") return SlotKernelIsa::Oracle;
  if (choice == "generic") return SlotKernelIsa::Generic;
  if (choice == "native") {
    NSMODEL_CHECK(slotKernelAvailable(SlotKernelIsa::Native),
                  "NSMODEL_SLOT_KERNEL=native, but this build has no native "
                  "kernel (or the CPU lacks its ISA)");
    return SlotKernelIsa::Native;
  }
  throw ConfigError("unknown NSMODEL_SLOT_KERNEL value '" + choice +
                    "' (want oracle|generic|native|auto)");
}

const SlotKernelOps& slotKernelOps() {
  const SlotKernelOps* ops = currentOps().load(std::memory_order_relaxed);
  if (ops == nullptr) {
    // Benign race: concurrent first calls resolve to the same table.
    ops = opsFor(defaultSlotKernel());
    currentOps().store(ops, std::memory_order_relaxed);
  }
  return *ops;
}

void setSlotKernel(SlotKernelIsa isa) {
  NSMODEL_CHECK(slotKernelAvailable(isa),
                std::string("slot kernel '") + slotKernelIsaName(isa) +
                    "' is not available in this build/CPU");
  currentOps().store(opsFor(isa), std::memory_order_relaxed);
}

}  // namespace nsmodel::net
