// Physical-interference (SINR) channel with capture.
//
// A receiver r decodes the strongest in-range signal b iff
//
//     b / (noise + sum_{other emitters e within cutoff} gain_e(r)) >= beta
//
// — log-distance pathloss gain(d) = max(d, d0)^-alpha, cumulative
// interference power over *all* transmitters within the far-field
// cutoff (cutoffFactor * range), a noise floor, and capture threshold
// beta.  Unlike the geometric CAM/CAM-CS abstractions, two simultaneous
// in-range transmissions need not destroy each other: the closer one is
// captured when it is strong enough to beat the other plus noise.
//
// Slot resolution runs three passes over precomputed CSRs:
//
//   1. *Candidates*: the shared integer bump kernel (slot_kernel.hpp,
//      count-only, so the 16-bit packing cap does not apply) marks every
//      node with at least one in-range emitter, with transmitters and
//      interferers pre-biased out (half duplex).  The touched list is
//      the candidate list.
//   2. *Power*: the SINR kernel (sinr_kernel.hpp) pushes every
//      emitter's gain row (gain_field.hpp) into per-receiver f64
//      accumulators — emitters in ascending node-id order, so the
//      floating-point sums are reproducible across every backend — and
//      tracks the strongest decodable signal per receiver.
//   3. *Capture*: sinrCaptureScan applies the division-free win test
//      over the candidates in touched order.
//
// Clock-drift interferers contribute interference power and are deaf,
// but never deliver — the same contract the CAM channels implement.
// Requires a topology built with a GainFieldSpec whose alpha/cutoff
// match the channel's SinrParams (checked).
#pragma once

#include <cstdint>
#include <vector>

#include "net/channel.hpp"
#include "net/interference.hpp"

namespace nsmodel::net {

class SinrChannel final : public Channel {
 public:
  explicit SinrChannel(const SinrParams& params);

  ChannelModel model() const override { return ChannelModel::Sinr; }
  const SinrParams& params() const { return params_; }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const DeliverFn& deliver) override;

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const std::vector<NodeId>& interferers,
                          const DeliverFn& deliver) override;

 private:
  SlotOutcome resolveFull(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const std::vector<NodeId>* interferers,
                          const DeliverFn& deliver);

  SinrParams params_;
  interference::WideKernelScratch scratch_;  // candidate pass + winners
  // Power-pass accumulators, all-zero between slots (cleared by walking
  // gainTouched_; bestSender_ may stay stale — it is only read where
  // bestGain_ is nonzero).  Grow-only, like the scratch.
  std::vector<double> totals_;
  std::vector<double> bestGain_;
  std::vector<NodeId> bestSender_;
  std::vector<NodeId> gainTouched_;
  /// Merged (id, isTransmitter) emitter list, sorted ascending by id.
  std::vector<std::pair<NodeId, std::uint8_t>> emitters_;
};

}  // namespace nsmodel::net
