#include "net/fading.hpp"

#include "support/error.hpp"

namespace nsmodel::net {

FadingChannel::FadingChannel(const Deployment& deployment,
                             FadingParams params)
    : deployment_(deployment),
      params_(params),
      rng_(support::Rng::forStream(params.seed, 0xFADE5EEDULL)) {
  NSMODEL_CHECK(params.nominalRange > 0.0, "nominal range must be positive");
  NSMODEL_CHECK(params.transitionWidth > 0.0 && params.transitionWidth < 1.0,
                "transition width must lie in (0, 1)");
}

double FadingChannel::reachProbability(double distance) const {
  NSMODEL_CHECK(distance >= 0.0, "distance must be non-negative");
  const double r = params_.nominalRange;
  const double w = params_.transitionWidth;
  const double inner = (1.0 - w) * r;
  const double outer = (1.0 + w) * r;
  if (distance <= inner) return 1.0;
  if (distance >= outer) return 0.0;
  return (outer - distance) / (outer - inner);
}

SlotOutcome FadingChannel::resolveSlot(const Topology& topology,
                                       const std::vector<NodeId>& transmitters,
                                       const DeliverFn& deliver) {
  const std::size_t n = topology.nodeCount();
  NSMODEL_CHECK(n == deployment_.nodeCount(),
                "topology/deployment size mismatch");
  if (counts_.size() != n) {
    counts_.assign(n, 0);
    stamps_.assign(n, 0);
    lastSender_.assign(n, kNoNode);
    txStamps_.assign(n, 0);
    epoch_ = 0;
  }
  ++epoch_;
  touched_.clear();
  for (NodeId tx : transmitters) txStamps_[tx] = epoch_;

  // Sample which signals physically reach each candidate receiver; every
  // reached signal both carries the packet and interferes.
  for (NodeId tx : transmitters) {
    const auto& txPos = deployment_.position(tx);
    for (NodeId rx : topology.neighbors(tx)) {
      const double d = txPos.distanceTo(deployment_.position(rx));
      if (!rng_.bernoulli(reachProbability(d))) continue;
      if (stamps_[rx] != epoch_) {
        stamps_[rx] = epoch_;
        counts_[rx] = 0;
        touched_.push_back(rx);
      }
      ++counts_[rx];
      lastSender_[rx] = tx;
    }
  }

  SlotOutcome outcome;
  for (NodeId rx : touched_) {
    if (txStamps_[rx] == epoch_) continue;  // half duplex
    if (counts_[rx] == 1) {
      deliver(rx, lastSender_[rx]);
      ++outcome.deliveries;
    } else {
      ++outcome.lostReceivers;
    }
  }
  return outcome;
}

}  // namespace nsmodel::net
