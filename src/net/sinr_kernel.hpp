// Data-parallel inner loops of SINR slot resolution (sinr_channel.hpp).
//
// Where the CAM kernels bump packed integer count-xor words, the SINR
// channel accumulates real per-receiver power along the precomputed gain
// CSR (gain_field.hpp): for every emitter, totals[r] += gain for each
// (r, gain) pair of its row, and — for true transmitters only — a
// parallel best-signal table records the strongest *decodable* signal
// (gain >= minDecodeGain, i.e. the sender is within transmission range)
// and its sender.  Both loops are gather/add/scatter sweeps over f64
// accumulators indexed by 32-bit receiver ids; this header exposes them
// behind the same three-way ISA dispatch as slot_kernel.hpp — a scalar
// oracle reference, a portable generic TU, and a -march=native TU
// (AVX-512 8-lane double gather/scatter) — keyed off the *same*
// NSMODEL_SLOT_KERNEL selection, so one env var pins the whole slot
// path.
//
// Kernel contracts (shared by every implementation, all bit-identical):
//
//  * Rows come from one gain CSR row, so ids within a call are distinct —
//    the vector gather/modify/scatter is race-free.
//  * First touches (totals[id] == 0.0 before the add; gains are strictly
//    positive, so 0.0 marks "untouched this slot") append id to
//    `gainTouched` in row order.  The caller clears totals/bestGain by
//    walking that list after the slot, restoring the all-zero invariant.
//    `gainTouched` needs one sentinel slot of slack past nodeCount: the
//    branchless scalar tail writes before deciding whether to keep.
//  * accumulatePowerTx additionally updates bestGain/bestSender under
//    (gain >= minDecodeGain && gain > bestGain[id]).  Emitters are
//    processed in ascending node-id order by every backend, so the
//    strict > makes ties resolve to the lowest sender id everywhere.
//  * Per-receiver sums are accumulated in row-major emitter order on
//    every ISA — vector lanes touch distinct receivers, never reorder
//    one receiver's additions — so the f64 results are bit-identical
//    across oracle/generic/native, flat/batched/sharded.
#pragma once

#include <cstddef>

#include "net/packet.hpp"
#include "net/slot_kernel.hpp"

namespace nsmodel::net {

/// The dispatched SINR accumulation loops.  Selection rides on the slot
/// kernel's: sinrKernelOpsFor(slotKernelOps().isa) is the table the SINR
/// channel uses, so NSMODEL_SLOT_KERNEL / setSlotKernel() pin both
/// kernel families at once.  Unlike the CAM channels there is no
/// special-cased oracle path inside the channel: the Oracle table's
/// plain scalar reference loops *are* the reference implementation.
struct SinrKernelOps {
  SlotKernelIsa isa;
  const char* name;
  /// Interferer row: totals[id] += gain for each pair; first touches
  /// append to gainTouched.  Returns the new touched count.
  std::size_t (*accumulatePower)(double* totals, NodeId* gainTouched,
                                 std::size_t touchedCount, const NodeId* ids,
                                 const double* gains, std::size_t n);
  /// Transmitter row: as accumulatePower, plus the best-decodable-signal
  /// update (see the header comment) with `sender` as the emitting node.
  std::size_t (*accumulatePowerTx)(double* totals, double* bestGain,
                                   NodeId* bestSender, NodeId* gainTouched,
                                   std::size_t touchedCount,
                                   const NodeId* ids, const double* gains,
                                   std::size_t n, NodeId sender,
                                   double minDecodeGain);
};

/// The SINR table for `isa` (must be available, slotKernelAvailable()).
const SinrKernelOps& sinrKernelOpsFor(SlotKernelIsa isa);

/// The SINR table matching the currently selected slot kernel.
const SinrKernelOps& sinrKernelOps();

/// The capture scan every backend shares: receiver r (a candidate with
/// at least one in-range emitter) decodes its best signal b = bestGain[r]
/// iff  b / (noise + (totals[r] - b)) >= beta,  tested division-free as
/// b >= beta * (noise + (totals[r] - b)).  b == 0.0 (no decodable
/// signal, only out-of-range interference) always loses.  Winners
/// compress into receivers/senders in candidate order; losers add to
/// *lost.  One inline definition used everywhere keeps the FP expression
/// a single instruction sequence; the expression itself has no
/// mul-then-add chain, so no FMA contraction can differ between TUs.
inline std::size_t sinrCaptureScan(const double* totals,
                                   const double* bestGain,
                                   const NodeId* bestSender,
                                   const NodeId* candidates, std::size_t n,
                                   double beta, double noise,
                                   NodeId* receivers, NodeId* senders,
                                   std::size_t* lost) {
  std::size_t wins = 0;
  std::size_t lostLocal = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId r = candidates[i];
    const double b = bestGain[r];
    const bool win = b > 0.0 && b >= beta * (noise + (totals[r] - b));
    // Branchless compress: always write, advance only on a win.  A stale
    // bestSender (left from an earlier slot) is only ever written under
    // b == 0.0, i.e. never kept.
    receivers[wins] = r;
    senders[wins] = bestSender[r];
    wins += static_cast<std::size_t>(win);
    lostLocal += static_cast<std::size_t>(!win);
  }
  *lost += lostLocal;
  return wins;
}

}  // namespace nsmodel::net
