// Inner-loop bodies of the slot-resolution kernel (see slot_kernel.hpp).
//
// This file is compiled twice: slot_kernel_generic.cpp includes it at the
// portable baseline ISA and slot_kernel_native.cpp includes it with
// -march=native, each under its own NSMODEL_SLOT_KERNEL_NS namespace.
// The scalar loops are written branchlessly with restrict-qualified
// pointers so the baseline build already runs at the oracle's speed; on
// AVX-512-capable builds the bump loop switches to explicit 16-lane
// gather/compress/scatter, which is safe because the ids of one call are
// distinct (one CSR row / one touched list) — no two lanes ever address
// the same entry.  The scan stays scalar on every ISA: it is one strided
// pass over a mostly short list, and the vector variant measured slower.
//
// The vector bump exploits the saturation licence documented in
// slot_kernel.hpp: lanes whose count half is already >= 2 mask their
// scatter away, so in dense slots — where most receivers hear many
// transmitters — the store side of the read-modify-write mostly
// disappears.

#ifndef NSMODEL_SLOT_KERNEL_NS
#error "define NSMODEL_SLOT_KERNEL_NS before including slot_kernel_impl.inl"
#endif

#include <cstddef>
#include <cstdint>

#include "net/packet.hpp"

#if defined(__AVX512F__)
#include <immintrin.h>
#if defined(__GNUC__) && !defined(__clang__)
// GCC implements _mm512_undefined_epi32 (used inside srli and friends) as
// a self-initialised local, which trips -Wmaybe-uninitialized (GCC
// PR105593).  Nothing here reads uninitialised data.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#define NSMODEL_SLOT_KERNEL_POPPED_DIAGNOSTIC 1
#endif
#endif

namespace nsmodel::net::detail::NSMODEL_SLOT_KERNEL_NS {

std::size_t bumpRow(std::uint32_t* __restrict entries,
                    NodeId* __restrict touched, std::size_t touchedCount,
                    const NodeId* __restrict ids, std::size_t n,
                    std::uint32_t senderBits, std::uint32_t add,
                    const NodeId* prefetchIds, std::size_t prefetchN) {
  std::size_t tc = touchedCount;
  // Stream the next row toward L1 while this row's accesses retire: CSR
  // rows of successive transmitters are scattered across the topology
  // arena, a stride the hardware prefetcher cannot learn, and the id
  // loads are otherwise the critical path of the whole pass.
  if (prefetchIds != nullptr) {
    const char* base = reinterpret_cast<const char*>(prefetchIds);
    for (std::size_t b = 0; b < prefetchN * sizeof(NodeId); b += 64) {
      __builtin_prefetch(base + b, 0 /*read*/, 3 /*all cache levels*/);
    }
  }
#if defined(__AVX512F__)
  // Software-pipelined 16-lane blocks: each iteration loads the NEXT
  // block's ids before gathering the current one.  The ids stream from
  // the topology CSR (L2-resident at realistic densities) while the
  // entries table stays in L1; without the pipelining the gathers
  // serialize behind the id loads and the vector path loses to scalar
  // out-of-order execution.
  const __m512i vSender = _mm512_set1_epi32(static_cast<int>(senderBits));
  const __m512i vAdd = _mm512_set1_epi32(static_cast<int>(add));
  const __m512i vLowMask = _mm512_set1_epi32(0xFFFF);
  const __m512i vTwo = _mm512_set1_epi32(2);
  const __m512i vZero = _mm512_setzero_si512();
  std::size_t i = 0;
  if (n >= 16) {
    __m512i vid = _mm512_loadu_si512(ids);
    for (; i + 32 <= n; i += 16) {
      const __m512i vidNext = _mm512_loadu_si512(ids + i + 16);
      const __m512i e = _mm512_i32gather_epi32(vid, entries, 4);
      const __m512i lo = _mm512_and_epi32(e, vLowMask);
      // First touches: count half still zero.  Compress their ids onto
      // the touched list in lane (= row) order.
      const __mmask16 kFirst = _mm512_cmpeq_epi32_mask(lo, vZero);
      _mm512_mask_compressstoreu_epi32(touched + tc, kFirst, vid);
      tc += static_cast<std::size_t>(__builtin_popcount(kFirst));
      // Saturation: entries already at count >= 2 keep their word; only
      // lanes still deciding between 0/1/2 pay for the scatter.
      const __mmask16 kLive = _mm512_cmplt_epu32_mask(lo, vTwo);
      const __m512i bumped =
          _mm512_xor_epi32(_mm512_add_epi32(e, vAdd), vSender);
      _mm512_mask_i32scatter_epi32(entries, kLive, vid, bumped, 4);
      vid = vidNext;
    }
    // The last full-width block is already loaded in vid.
    const __m512i e = _mm512_i32gather_epi32(vid, entries, 4);
    const __m512i lo = _mm512_and_epi32(e, vLowMask);
    const __mmask16 kFirst = _mm512_cmpeq_epi32_mask(lo, vZero);
    _mm512_mask_compressstoreu_epi32(touched + tc, kFirst, vid);
    tc += static_cast<std::size_t>(__builtin_popcount(kFirst));
    const __mmask16 kLive = _mm512_cmplt_epu32_mask(lo, vTwo);
    const __m512i bumped =
        _mm512_xor_epi32(_mm512_add_epi32(e, vAdd), vSender);
    _mm512_mask_i32scatter_epi32(entries, kLive, vid, bumped, 4);
    i += 16;
  }
  for (; i < n; ++i) {
    const NodeId node = ids[i];
    const std::uint32_t e = entries[node];
    touched[tc] = node;  // kept only when this is a first touch
    tc += static_cast<std::size_t>(static_cast<std::uint16_t>(e) == 0);
    entries[node] = (e + add) ^ senderBits;
  }
#else
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node = ids[i];
    const std::uint32_t e = entries[node];
    touched[tc] = node;  // kept only when this is a first touch
    tc += static_cast<std::size_t>(static_cast<std::uint16_t>(e) == 0);
    entries[node] = (e + add) ^ senderBits;
  }
#endif
  return tc;
}

std::size_t scanTouched(std::uint32_t* __restrict entries,
                        const NodeId* __restrict touched, std::size_t n,
                        NodeId* __restrict receivers,
                        NodeId* __restrict senders,
                        std::size_t* __restrict lost) {
  std::size_t wins = 0;
  std::size_t lostLocal = 0;
  // Deliberately scalar on every ISA: the touched list is consumed once,
  // its entries are random-access (gathers cannot amortize), and a
  // vectorized variant measured slower than this branchless compress on
  // AVX-512 hardware — every lane pays the gather+scatter latency for a
  // single use.
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node = touched[i];
    const std::uint32_t e = entries[node];
    entries[node] = 0;
    const bool win = (e & 0xFFFF) == 1;
    // Branchless compress: always write, advance only on a win.
    receivers[wins] = node;
    senders[wins] = static_cast<NodeId>(e >> 16);
    wins += static_cast<std::size_t>(win);
    lostLocal += static_cast<std::size_t>(!win);
  }
  *lost += lostLocal;
  return wins;
}

std::size_t scanTouchedRO(const std::uint32_t* __restrict entries,
                          const NodeId* __restrict touched, std::size_t n,
                          NodeId* __restrict receivers,
                          NodeId* __restrict senders,
                          std::size_t* __restrict lost) {
  std::size_t wins = 0;
#if defined(__AVX512F__)
  // Unlike scanTouched, there is no store side: the table is cleared in
  // bulk by the caller.  That removes the gather/scatter pairing that
  // made the zeroing scan lose to scalar code, so the read-only scan
  // vectorizes profitably — one gather, two compress-stores per block.
  const __m512i vLowMask = _mm512_set1_epi32(0xFFFF);
  const __m512i vOne = _mm512_set1_epi32(1);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i vid = _mm512_loadu_si512(touched + i);
    const __m512i e = _mm512_i32gather_epi32(vid, entries, 4);
    const __mmask16 kWin =
        _mm512_cmpeq_epi32_mask(_mm512_and_epi32(e, vLowMask), vOne);
    if (kWin) {
      _mm512_mask_compressstoreu_epi32(receivers + wins, kWin, vid);
      _mm512_mask_compressstoreu_epi32(senders + wins, kWin,
                                       _mm512_srli_epi32(e, 16));
      wins += static_cast<std::size_t>(__builtin_popcount(kWin));
    }
  }
  for (; i < n; ++i) {
    const NodeId node = touched[i];
    const std::uint32_t e = entries[node];
    receivers[wins] = node;  // kept only on a win, like the bump's tail
    senders[wins] = static_cast<NodeId>(e >> 16);
    wins += static_cast<std::size_t>((e & 0xFFFF) == 1);
  }
#else
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node = touched[i];
    const std::uint32_t e = entries[node];
    receivers[wins] = node;
    senders[wins] = static_cast<NodeId>(e >> 16);
    wins += static_cast<std::size_t>((e & 0xFFFF) == 1);
  }
#endif
  *lost += n - wins;
  return wins;
}

std::size_t filterActionable(const std::uint32_t* __restrict status,
                             const NodeId* __restrict receivers,
                             std::size_t n, std::uint32_t* __restrict outIdx) {
  std::size_t count = 0;
#if defined(__AVX512F__)
  // In dense slots most winners are duplicates with nothing pending, so
  // filtering them out with one gather before the scalar delivery loop
  // removes the bulk of its branchy per-win work.  Ascending index order
  // preserves the sequential delivery (and hence RNG-consumption) order.
  const __m512i vSeven = _mm512_set1_epi32(7);
  const __m512i vThree = _mm512_set1_epi32(3);
  const __m512i vOne = _mm512_set1_epi32(1);
  __m512i vIdx = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                   13, 14, 15);
  const __m512i vStep = _mm512_set1_epi32(16);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512i vid = _mm512_loadu_si512(receivers + i);
    const __m512i s = _mm512_i32gather_epi32(vid, status, 4);
    const __mmask16 kNew = _mm512_testn_epi32_mask(s, vOne);
    const __mmask16 kDup =
        _mm512_cmpeq_epi32_mask(_mm512_and_epi32(s, vSeven), vThree);
    const __mmask16 k = kNew | kDup;
    if (k) {
      _mm512_mask_compressstoreu_epi32(outIdx + count, k, vIdx);
      count += static_cast<std::size_t>(__builtin_popcount(k));
    }
    vIdx = _mm512_add_epi32(vIdx, vStep);
  }
  for (; i < n; ++i) {
    const std::uint32_t s = status[receivers[i]];
    outIdx[count] = static_cast<std::uint32_t>(i);
    count += static_cast<std::size_t>((s & 1u) == 0u || (s & 7u) == 3u);
  }
#else
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t s = status[receivers[i]];
    outIdx[count] = static_cast<std::uint32_t>(i);
    count += static_cast<std::size_t>((s & 1u) == 0u || (s & 7u) == 3u);
  }
#endif
  return count;
}

/// True when the CPU running this binary supports the ISA this TU was
/// compiled for.  Checked per feature macro: a -march=native binary moved
/// to an older machine falls back to the generic kernel instead of
/// faulting on its first gather.
bool runtimeSupported() {
#if defined(__x86_64__) || defined(__i386__)
  bool ok = true;
#if defined(__AVX512F__)
  ok = ok && __builtin_cpu_supports("avx512f") != 0;
#endif
#if defined(__AVX512BW__)
  ok = ok && __builtin_cpu_supports("avx512bw") != 0;
#endif
#if defined(__AVX512VL__)
  ok = ok && __builtin_cpu_supports("avx512vl") != 0;
#endif
#if defined(__AVX2__)
  ok = ok && __builtin_cpu_supports("avx2") != 0;
#endif
#if defined(__BMI2__)
  ok = ok && __builtin_cpu_supports("bmi2") != 0;
#endif
#if defined(__FMA__)
  ok = ok && __builtin_cpu_supports("fma") != 0;
#endif
  return ok;
#else
  return true;
#endif
}

}  // namespace nsmodel::net::detail::NSMODEL_SLOT_KERNEL_NS

#if defined(NSMODEL_SLOT_KERNEL_POPPED_DIAGNOSTIC)
#pragma GCC diagnostic pop
#undef NSMODEL_SLOT_KERNEL_POPPED_DIAGNOSTIC
#endif
