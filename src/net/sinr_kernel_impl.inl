// Inner-loop bodies of the SINR accumulation kernel (see sinr_kernel.hpp).
//
// This file is compiled twice: sinr_kernel_generic.cpp includes it at the
// portable baseline ISA and sinr_kernel_native.cpp includes it with
// -march=native, each under its own NSMODEL_SINR_KERNEL_NS namespace —
// the same two-TU scheme as slot_kernel_impl.inl, and the same runtime
// gating (slot_kernel's runtimeSupported() covers every feature macro
// both -march=native TUs are compiled with).
//
// The scalar loops are written with restrict-qualified pointers and a
// branchless touched-list append; on AVX-512 builds the loops switch to
// explicit 8-lane double gather/add/scatter (f64 accumulators indexed by
// 32-bit ids: _mm512_i32gather_pd takes a __m256i of indices).  The ids
// of one call are one gain-CSR row, hence distinct — no two lanes ever
// address the same accumulator, so the gather/modify/scatter is
// race-free AND each receiver's running sum sees exactly one addition
// per emitter in emitter order, keeping the f64 results bit-identical
// to the scalar loops.
//
// There is no FMA in the accumulation (it is a pure add chain; the gains
// are premultiplied at build time), so -ffp-contract cannot introduce
// cross-TU rounding differences.

#ifndef NSMODEL_SINR_KERNEL_NS
#error "define NSMODEL_SINR_KERNEL_NS before including sinr_kernel_impl.inl"
#endif

#include <cstddef>
#include <cstdint>

#include "net/packet.hpp"

#if defined(__AVX512F__) && defined(__AVX512VL__)
#define NSMODEL_SINR_KERNEL_VECTOR 1
#include <immintrin.h>
#if defined(__GNUC__) && !defined(__clang__)
// GCC implements _mm512_undefined_epi32 (used inside several intrinsic
// expansions) as a self-initialised local, which trips
// -Wmaybe-uninitialized (GCC PR105593).  Nothing here reads
// uninitialised data.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#define NSMODEL_SINR_KERNEL_POPPED_DIAGNOSTIC 1
#endif
#endif

namespace nsmodel::net::detail::NSMODEL_SINR_KERNEL_NS {

std::size_t accumulatePower(double* __restrict totals,
                            NodeId* __restrict gainTouched,
                            std::size_t touchedCount,
                            const NodeId* __restrict ids,
                            const double* __restrict gains, std::size_t n) {
  std::size_t tc = touchedCount;
#if defined(NSMODEL_SINR_KERNEL_VECTOR)
  // 8-lane blocks: gather the running totals, compress the first-touch
  // ids (total still exactly 0.0 — gains are strictly positive) onto the
  // touched list in lane order, add, scatter back.  Lanes are distinct
  // receivers, so the per-receiver addition order is emitter order on
  // every ISA.
  const __m512d vZero = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vid =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
    const __m512d vt = _mm512_i32gather_pd(vid, totals, 8);
    const __mmask8 kFirst = _mm512_cmp_pd_mask(vt, vZero, _CMP_EQ_OQ);
    _mm256_mask_compressstoreu_epi32(gainTouched + tc, kFirst, vid);
    tc += static_cast<std::size_t>(__builtin_popcount(kFirst));
    const __m512d vg = _mm512_loadu_pd(gains + i);
    _mm512_i32scatter_pd(totals, vid, _mm512_add_pd(vt, vg), 8);
  }
  for (; i < n; ++i) {
    const NodeId node = ids[i];
    const double before = totals[node];
    gainTouched[tc] = node;  // kept only when this is a first touch
    tc += static_cast<std::size_t>(before == 0.0);
    totals[node] = before + gains[i];
  }
#else
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node = ids[i];
    const double before = totals[node];
    gainTouched[tc] = node;  // kept only when this is a first touch
    tc += static_cast<std::size_t>(before == 0.0);
    totals[node] = before + gains[i];
  }
#endif
  return tc;
}

std::size_t accumulatePowerTx(double* __restrict totals,
                              double* __restrict bestGain,
                              NodeId* __restrict bestSender,
                              NodeId* __restrict gainTouched,
                              std::size_t touchedCount,
                              const NodeId* __restrict ids,
                              const double* __restrict gains, std::size_t n,
                              NodeId sender, double minDecodeGain) {
  std::size_t tc = touchedCount;
#if defined(NSMODEL_SINR_KERNEL_VECTOR)
  // As accumulatePower, plus the best-decodable-signal update: lanes
  // whose gain is decodable (>= minDecodeGain, i.e. the sender is within
  // transmission range) and beats the current best scatter the gain and
  // broadcast the sender id.  The strict > preserves the ascending-
  // emitter-order lowest-id tie-break of the scalar loops.
  const __m512d vZero = _mm512_setzero_pd();
  const __m512d vMin = _mm512_set1_pd(minDecodeGain);
  const __m256i vSender = _mm256_set1_epi32(static_cast<int>(sender));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vid =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ids + i));
    const __m512d vt = _mm512_i32gather_pd(vid, totals, 8);
    const __mmask8 kFirst = _mm512_cmp_pd_mask(vt, vZero, _CMP_EQ_OQ);
    _mm256_mask_compressstoreu_epi32(gainTouched + tc, kFirst, vid);
    tc += static_cast<std::size_t>(__builtin_popcount(kFirst));
    const __m512d vg = _mm512_loadu_pd(gains + i);
    _mm512_i32scatter_pd(totals, vid, _mm512_add_pd(vt, vg), 8);
    const __m512d vb = _mm512_i32gather_pd(vid, bestGain, 8);
    const __mmask8 kBest =
        _mm512_cmp_pd_mask(vg, vMin, _CMP_GE_OQ) &
        _mm512_cmp_pd_mask(vg, vb, _CMP_GT_OQ);
    if (kBest) {
      _mm512_mask_i32scatter_pd(bestGain, kBest, vid, vg, 8);
      _mm256_mask_i32scatter_epi32(bestSender, kBest, vid, vSender, 4);
    }
  }
  for (; i < n; ++i) {
    const NodeId node = ids[i];
    const double gain = gains[i];
    const double before = totals[node];
    gainTouched[tc] = node;  // kept only when this is a first touch
    tc += static_cast<std::size_t>(before == 0.0);
    totals[node] = before + gain;
    if (gain >= minDecodeGain && gain > bestGain[node]) {
      bestGain[node] = gain;
      bestSender[node] = sender;
    }
  }
#else
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node = ids[i];
    const double gain = gains[i];
    const double before = totals[node];
    gainTouched[tc] = node;  // kept only when this is a first touch
    tc += static_cast<std::size_t>(before == 0.0);
    totals[node] = before + gain;
    if (gain >= minDecodeGain && gain > bestGain[node]) {
      bestGain[node] = gain;
      bestSender[node] = sender;
    }
  }
#endif
  return tc;
}

}  // namespace nsmodel::net::detail::NSMODEL_SINR_KERNEL_NS

#if defined(NSMODEL_SINR_KERNEL_POPPED_DIAGNOSTIC)
#pragma GCC diagnostic pop
#undef NSMODEL_SINR_KERNEL_POPPED_DIAGNOSTIC
#endif
#undef NSMODEL_SINR_KERNEL_VECTOR
