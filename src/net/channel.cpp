#include "net/channel.hpp"

#include <utility>

#include "support/error.hpp"

namespace nsmodel::net {

const char* channelModelName(ChannelModel model) {
  switch (model) {
    case ChannelModel::CollisionFree:
      return "CFM";
    case ChannelModel::CollisionAware:
      return "CAM";
    case ChannelModel::CarrierSenseAware:
      return "CAM-CS";
  }
  return "?";
}

SlotOutcome Channel::resolveSlot(const Topology& topology,
                                 const std::vector<NodeId>& transmitters,
                                 const std::vector<NodeId>& interferers,
                                 const DeliverFn& deliver) {
  NSMODEL_CHECK(interferers.empty(),
                "this channel model does not support clock-drift interferers");
  return resolveSlot(topology, transmitters, deliver);
}

namespace {

/// Per-node reception count and sender for one slot, packed into one
/// 32-bit word: count in the low half, the XOR of all bumping senders in
/// the high half.  The bump loop — the innermost loop of every slot
/// resolution, one random-indexed access per (transmitter, neighbour)
/// pair — is then a branchless load/add/xor/store, and the whole table is
/// 4 bytes per node, small enough to stay L1-resident while the
/// neighbour lists stream through the cache.  The XOR trick works because
/// the sender is only ever read back when the final count is exactly 1,
/// and the XOR of a single sender is that sender.
/// Entries are cleared by walking the touched list after the slot.
/// Invariant between slots: all entries are zero.
class SlotCounts {
 public:
  /// Grow-only: a channel owned by a reusable RunWorkspace sees runs of
  /// varying node counts; shrinking would make the next bigger run
  /// reallocate.  Extra entries stay zero (resize value-initialises) and
  /// are never indexed.
  void ensure(std::size_t n) {
    // NodeId and the per-slot count must both fit 16 bits.
    NSMODEL_CHECK(n <= 0xFFFF,
                  "collision-aware channels support at most 65535 nodes");
    if (entries_.size() < n) {
      entries_.resize(n, 0);
      touched_.resize(n);  // every node can be touched at most once
    }
  }

  /// Bumps every node in `ids`.  Members are hoisted into locals for the
  /// duration of the loop: the entry stores could otherwise alias the
  /// size_t touched counter under type-based aliasing, forcing the
  /// compiler to reload it (and the data pointers) on every iteration of
  /// the hottest loop in the simulator.
  void bumpMany(const NodeId* ids, std::size_t m, NodeId sender) {
    std::uint32_t* entries = entries_.data();
    NodeId* touched = touched_.data();
    std::size_t tc = touchedCount_;
    const std::uint32_t senderBits = static_cast<std::uint32_t>(sender) << 16;
    for (std::size_t i = 0; i < m; ++i) {
      const NodeId node = ids[i];
      const std::uint32_t e = entries[node];
      touched[tc] = node;  // kept only when this is a first touch
      tc += static_cast<std::size_t>(static_cast<std::uint16_t>(e) == 0);
      // A node is never its own neighbour, so the count stays below
      // 0xFFFF and the +1 cannot carry into the sender half.
      entries[node] = (e + 1) ^ senderBits;
    }
    touchedCount_ = tc;
  }

  /// Reads and zeroes `node`'s entry in one cache-line visit.  The
  /// delivery loop consumes each touched entry exactly once, so clearing
  /// inline halves the random accesses versus a separate clear pass.
  std::uint32_t take(NodeId node) {
    const std::uint32_t e = entries_[node];
    entries_[node] = 0;
    return e;
  }
  static std::uint32_t entryCount(std::uint32_t e) { return e & 0xFFFF; }
  static NodeId entrySender(std::uint32_t e) {
    return static_cast<NodeId>(e >> 16);
  }

  const NodeId* touched() const { return touched_.data(); }
  std::size_t touchedCount() const { return touchedCount_; }

  /// Forgets the touched list; the entries must all have been take()n.
  void resetTouched() { touchedCount_ = 0; }

 private:
  std::vector<std::uint32_t> entries_;
  std::vector<NodeId> touched_;
  std::size_t touchedCount_ = 0;
};

/// "Is this node transmitting" as byte flags set from and cleared by the
/// (short) transmitter list.  Invariant between slots: all flags clear.
class TxFlags {
 public:
  void ensure(std::size_t n) {
    if (flags_.size() < n) flags_.resize(n, 0);  // grow-only, see SlotCounts
  }
  void set(const std::vector<NodeId>& txs) {
    for (NodeId tx : txs) flags_[tx] = 1;
  }
  bool contains(NodeId node) const { return flags_[node] != 0; }
  void clear(const std::vector<NodeId>& txs) {
    for (NodeId tx : txs) flags_[tx] = 0;
  }

 private:
  std::vector<std::uint8_t> flags_;
};

/// Count-only variant of SlotCounts for the carrier-sense tally, whose
/// sender is never read.
class SlotTally {
 public:
  void ensure(std::size_t n) {
    NSMODEL_CHECK(n <= 0xFFFF,
                  "collision-aware channels support at most 65535 nodes");
    if (counts_.size() < n) {  // grow-only, see SlotCounts
      counts_.resize(n, 0);
      touched_.resize(n);
    }
  }

  /// Bumps every node in `ids` (see SlotCounts::bumpMany for why the
  /// members are hoisted into locals).
  void bumpMany(const NodeId* ids, std::size_t m) {
    std::uint16_t* counts = counts_.data();
    NodeId* touched = touched_.data();
    std::size_t tc = touchedCount_;
    for (std::size_t i = 0; i < m; ++i) {
      const NodeId node = ids[i];
      const std::uint16_t c = counts[node];
      touched[tc] = node;
      tc += static_cast<std::size_t>(c == 0);
      counts[node] = static_cast<std::uint16_t>(c + 1);
    }
    touchedCount_ = tc;
  }

  std::uint32_t count(NodeId node) const { return counts_[node]; }

  void clear() {
    for (std::size_t i = 0; i < touchedCount_; ++i) counts_[touched_[i]] = 0;
    touchedCount_ = 0;
  }

 private:
  std::vector<std::uint16_t> counts_;
  std::vector<NodeId> touched_;
  std::size_t touchedCount_ = 0;
};

class CollisionFreeChannel final : public Channel {
 public:
  ChannelModel model() const override { return ChannelModel::CollisionFree; }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const DeliverFn& deliver) override {
    SlotOutcome outcome;
    for (NodeId tx : transmitters) {
      for (NodeId nb : topology.neighbors(tx)) {
        deliver(nb, tx);
        ++outcome.deliveries;
      }
    }
    return outcome;
  }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const std::vector<NodeId>& /*interferers*/,
                          const DeliverFn& deliver) override {
    // Collision-free transmission is atomic and guaranteed: spill-over
    // from a skewed neighbour cannot corrupt a reception.
    return resolveSlot(topology, transmitters, deliver);
  }
};

class CollisionAwareChannel final : public Channel {
 public:
  ChannelModel model() const override { return ChannelModel::CollisionAware; }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const DeliverFn& deliver) override {
    if (transmitters.size() == 1) {
      // Sole transmitter: every neighbour hears exactly one packet and
      // cannot itself be transmitting, so the counting pass reduces to
      // direct delivery in neighbour order — the order it would produce.
      SlotOutcome outcome;
      const NodeId tx = transmitters.front();
      for (NodeId nb : topology.neighbors(tx)) {
        deliver(nb, tx);
        ++outcome.deliveries;
      }
      return outcome;
    }
    return resolveFull(topology, transmitters, nullptr, deliver);
  }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const std::vector<NodeId>& interferers,
                          const DeliverFn& deliver) override {
    if (interferers.empty()) {
      return resolveSlot(topology, transmitters, deliver);
    }
    return resolveFull(topology, transmitters, &interferers, deliver);
  }

 private:
  SlotOutcome resolveFull(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const std::vector<NodeId>* interferers,
                          const DeliverFn& deliver) {
    SlotOutcome outcome;
    inRange_.ensure(topology.nodeCount());
    txFlags_.ensure(topology.nodeCount());
    txFlags_.set(transmitters);
    for (NodeId tx : transmitters) {
      const NeighborSpan nbs = topology.neighbors(tx);
      inRange_.bumpMany(nbs.data(), nbs.size(), tx);
    }
    if (interferers) {
      // A skewed neighbour's spill-over is undecodable noise: bump each
      // reached receiver twice so its count can never be exactly 1, and
      // the sender half XORs itself away.  Interferers are also deaf —
      // they are mid-transmission themselves.
      txFlags_.set(*interferers);
      for (NodeId ix : *interferers) {
        const NeighborSpan nbs = topology.neighbors(ix);
        inRange_.bumpMany(nbs.data(), nbs.size(), ix);
        inRange_.bumpMany(nbs.data(), nbs.size(), ix);
      }
    }
    const NodeId* touched = inRange_.touched();
    const std::size_t touchedCount = inRange_.touchedCount();
    // Collect successes first, then invoke the callback in a separate
    // loop: the opaque call would otherwise force the compiler to spill
    // and reload the loop state around every delivery inside the
    // random-access scan.  The delivery order is unchanged.
    pairs_.clear();
    pairs_.reserve(touchedCount);
    for (std::size_t i = 0; i < touchedCount; ++i) {
      const NodeId receiver = touched[i];
      const std::uint32_t e = inRange_.take(receiver);  // read + clear
      if (txFlags_.contains(receiver)) continue;  // half duplex
      if (SlotCounts::entryCount(e) == 1) {
        pairs_.emplace_back(receiver, SlotCounts::entrySender(e));
      } else {
        ++outcome.lostReceivers;
      }
    }
    for (const auto& [receiver, sender] : pairs_) deliver(receiver, sender);
    outcome.deliveries = pairs_.size();
    inRange_.resetTouched();
    txFlags_.clear(transmitters);
    if (interferers) txFlags_.clear(*interferers);
    return outcome;
  }

  SlotCounts inRange_;
  TxFlags txFlags_;
  std::vector<std::pair<NodeId, NodeId>> pairs_;  // (receiver, sender)
};

class CarrierSenseChannel final : public Channel {
 public:
  ChannelModel model() const override {
    return ChannelModel::CarrierSenseAware;
  }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const DeliverFn& deliver) override {
    NSMODEL_CHECK(topology.hasCarrierSense(),
                  "CarrierSenseChannel needs a topology built with a "
                  "carrier-sense factor");
    if (transmitters.size() == 1) {
      // Sole transmitter: the cs-disk contains the transmission disk, so
      // every in-range neighbour senses exactly that one transmitter.
      SlotOutcome outcome;
      const NodeId tx = transmitters.front();
      for (NodeId nb : topology.neighbors(tx)) {
        deliver(nb, tx);
        ++outcome.deliveries;
      }
      return outcome;
    }
    return resolveFull(topology, transmitters, nullptr, deliver);
  }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const std::vector<NodeId>& interferers,
                          const DeliverFn& deliver) override {
    if (interferers.empty()) {
      return resolveSlot(topology, transmitters, deliver);
    }
    NSMODEL_CHECK(topology.hasCarrierSense(),
                  "CarrierSenseChannel needs a topology built with a "
                  "carrier-sense factor");
    return resolveFull(topology, transmitters, &interferers, deliver);
  }

 private:
  SlotOutcome resolveFull(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const std::vector<NodeId>* interferers,
                          const DeliverFn& deliver) {
    SlotOutcome outcome;
    inRange_.ensure(topology.nodeCount());
    inSense_.ensure(topology.nodeCount());
    txFlags_.ensure(topology.nodeCount());
    txFlags_.set(transmitters);
    for (NodeId tx : transmitters) {
      const NeighborSpan nbs = topology.neighbors(tx);
      inRange_.bumpMany(nbs.data(), nbs.size(), tx);
      const NeighborSpan cs = topology.carrierSenseNeighbors(tx);
      inSense_.bumpMany(cs.data(), cs.size());
    }
    if (interferers) {
      // See CollisionAwareChannel::resolveFull: double-bump the reached
      // receivers so spill-over is never decodable, and bump the sensed
      // tally once so a cs-range interferer destroys the reception too.
      txFlags_.set(*interferers);
      for (NodeId ix : *interferers) {
        const NeighborSpan nbs = topology.neighbors(ix);
        inRange_.bumpMany(nbs.data(), nbs.size(), ix);
        inRange_.bumpMany(nbs.data(), nbs.size(), ix);
        const NeighborSpan cs = topology.carrierSenseNeighbors(ix);
        inSense_.bumpMany(cs.data(), cs.size());
      }
    }
    const NodeId* touched = inRange_.touched();
    const std::size_t touchedCount = inRange_.touchedCount();
    // See CollisionAwareChannel: buffer successes, call back in a second
    // loop so the scan itself is call-free.
    pairs_.clear();
    pairs_.reserve(touchedCount);
    for (std::size_t i = 0; i < touchedCount; ++i) {
      const NodeId receiver = touched[i];
      const std::uint32_t e = inRange_.take(receiver);  // read + clear
      if (txFlags_.contains(receiver)) continue;  // half duplex
      // The cs-disk contains the transmission disk, so inSense >= inRange;
      // success needs the sole cs-range transmitter to be in range.
      if (SlotCounts::entryCount(e) == 1 && inSense_.count(receiver) == 1) {
        pairs_.emplace_back(receiver, SlotCounts::entrySender(e));
      } else {
        ++outcome.lostReceivers;
      }
    }
    for (const auto& [receiver, sender] : pairs_) deliver(receiver, sender);
    outcome.deliveries = pairs_.size();
    inRange_.resetTouched();
    inSense_.clear();
    txFlags_.clear(transmitters);
    if (interferers) txFlags_.clear(*interferers);
    return outcome;
  }

  SlotCounts inRange_;
  SlotTally inSense_;
  TxFlags txFlags_;
  std::vector<std::pair<NodeId, NodeId>> pairs_;  // (receiver, sender)
};

}  // namespace

std::unique_ptr<Channel> makeChannel(ChannelModel model) {
  switch (model) {
    case ChannelModel::CollisionFree:
      return std::make_unique<CollisionFreeChannel>();
    case ChannelModel::CollisionAware:
      return std::make_unique<CollisionAwareChannel>();
    case ChannelModel::CarrierSenseAware:
      return std::make_unique<CarrierSenseChannel>();
  }
  NSMODEL_ASSERT(false);
  return nullptr;
}

}  // namespace nsmodel::net
