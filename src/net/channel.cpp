#include "net/channel.hpp"

#include <cctype>
#include <cmath>
#include <string>
#include <utility>

#include "net/interference.hpp"
#include "net/sinr_channel.hpp"
#include "net/slot_kernel.hpp"
#include "support/error.hpp"

namespace nsmodel::net {

const char* channelModelName(ChannelModel model) {
  switch (model) {
    case ChannelModel::CollisionFree:
      return "CFM";
    case ChannelModel::CollisionAware:
      return "CAM";
    case ChannelModel::CarrierSenseAware:
      return "CAM-CS";
    case ChannelModel::Sinr:
      return "SINR";
  }
  return "?";
}

ChannelModel channelModelFromName(std::string_view name) {
  std::string upper(name);
  for (char& c : upper) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  if (upper == "CFM") return ChannelModel::CollisionFree;
  if (upper == "CAM") return ChannelModel::CollisionAware;
  if (upper == "CAM-CS") return ChannelModel::CarrierSenseAware;
  if (upper == "SINR") return ChannelModel::Sinr;
  throw ConfigError("unknown channel model \"" + std::string(name) +
                    "\" (expected cfm, cam, cam-cs or sinr)");
}

void SinrParams::validate() const {
  NSMODEL_CHECK(std::isfinite(beta) && beta > 0.0,
                "SINR capture threshold beta must be positive and finite");
  NSMODEL_CHECK(std::isfinite(noise) && noise > 0.0,
                "SINR noise floor must be positive and finite");
  NSMODEL_CHECK(std::isfinite(alpha) && alpha > 0.0,
                "SINR pathloss exponent alpha must be positive and finite");
  NSMODEL_CHECK(std::isfinite(cutoff) && cutoff >= 1.0,
                "SINR far-field cutoff must be a finite factor >= 1");
}

SlotOutcome Channel::resolveSlot(const Topology& topology,
                                 const std::vector<NodeId>& transmitters,
                                 const std::vector<NodeId>& interferers,
                                 const DeliverFn& deliver) {
  NSMODEL_CHECK(interferers.empty(),
                "this channel model does not support clock-drift interferers");
  return resolveSlot(topology, transmitters, deliver);
}

namespace {

// The geometric channels are instances of the shared interference layer;
// the per-receiver accumulator primitives live in interference.hpp so the
// SINR backend (sinr_channel.cpp) and the batched/sharded engines can
// reuse them.
using interference::biasClear;
using interference::biasTransmitters;
using interference::KernelScratch;
using interference::SlotCounts;
using interference::SlotTally;
using interference::TxFlags;

class CollisionFreeChannel final : public Channel {
 public:
  ChannelModel model() const override { return ChannelModel::CollisionFree; }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const DeliverFn& deliver) override {
    SlotOutcome outcome;
    for (NodeId tx : transmitters) {
      for (NodeId nb : topology.neighbors(tx)) {
        deliver(nb, tx);
        ++outcome.deliveries;
      }
    }
    return outcome;
  }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const std::vector<NodeId>& /*interferers*/,
                          const DeliverFn& deliver) override {
    // Collision-free transmission is atomic and guaranteed: spill-over
    // from a skewed neighbour cannot corrupt a reception.
    return resolveSlot(topology, transmitters, deliver);
  }
};

class CollisionAwareChannel final : public Channel {
 public:
  ChannelModel model() const override { return ChannelModel::CollisionAware; }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const DeliverFn& deliver) override {
    if (transmitters.size() == 1) {
      // Sole transmitter: every neighbour hears exactly one packet and
      // cannot itself be transmitting, so the counting pass reduces to
      // direct delivery in neighbour order — the order it would produce.
      SlotOutcome outcome;
      const NodeId tx = transmitters.front();
      for (NodeId nb : topology.neighbors(tx)) {
        deliver(nb, tx);
        ++outcome.deliveries;
      }
      return outcome;
    }
    return resolveFull(topology, transmitters, nullptr, deliver);
  }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const std::vector<NodeId>& interferers,
                          const DeliverFn& deliver) override {
    if (interferers.empty()) {
      return resolveSlot(topology, transmitters, deliver);
    }
    return resolveFull(topology, transmitters, &interferers, deliver);
  }

 private:
  SlotOutcome resolveFull(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const std::vector<NodeId>* interferers,
                          const DeliverFn& deliver) {
    const SlotKernelOps& ops = slotKernelOps();
    if (ops.isa == SlotKernelIsa::Oracle) {
      return resolveOracle(topology, transmitters, interferers, deliver);
    }
    return resolveKernel(topology, transmitters, interferers, ops, deliver);
  }

  SlotOutcome resolveKernel(const Topology& topology,
                            const std::vector<NodeId>& transmitters,
                            const std::vector<NodeId>* interferers,
                            const SlotKernelOps& ops,
                            const DeliverFn& deliver) {
    SlotOutcome outcome;
    scratch_.ensure(topology.nodeCount());
    std::uint32_t* entries = scratch_.entries.data();
    biasTransmitters(entries, transmitters, interferers);
    std::size_t tc = 0;
    const std::size_t txCount = transmitters.size();
    for (std::size_t t = 0; t < txCount; ++t) {
      const NodeId tx = transmitters[t];
      const NeighborSpan nbs = topology.neighbors(tx);
      // The row bumped after this one (the next transmitter's, then the
      // first interferer's) is handed down as a prefetch hint.
      NeighborSpan next{};
      if (t + 1 < txCount) {
        next = topology.neighbors(transmitters[t + 1]);
      } else if (interferers != nullptr && !interferers->empty()) {
        next = topology.neighbors(interferers->front());
      }
      tc = ops.bumpRow(entries, scratch_.touched.data(), tc, nbs.data(),
                       nbs.size(), static_cast<std::uint32_t>(tx) << 16, 1,
                       next.data(), next.size());
    }
    if (interferers != nullptr) {
      // Drift epilogue: spill-over is undecodable noise.  One bump of 2
      // with a zero sender half leaves exactly the word the oracle's two
      // single bumps produce (the sender XORs itself away), so a reached
      // receiver's count can never end at 1.
      const std::size_t ixCount = interferers->size();
      for (std::size_t t = 0; t < ixCount; ++t) {
        const NeighborSpan nbs = topology.neighbors((*interferers)[t]);
        const NeighborSpan next =
            t + 1 < ixCount ? topology.neighbors((*interferers)[t + 1])
                            : NeighborSpan{};
        tc = ops.bumpRow(entries, scratch_.touched.data(), tc, nbs.data(),
                         nbs.size(), 0, 2, next.data(), next.size());
      }
    }
    std::size_t lost = 0;
    const std::size_t wins = ops.scanTouched(
        entries, scratch_.touched.data(), tc, scratch_.receivers.data(),
        scratch_.senders.data(), &lost);
    biasClear(entries, transmitters, interferers);
    for (std::size_t i = 0; i < wins; ++i) {
      deliver(scratch_.receivers[i], scratch_.senders[i]);
    }
    outcome.deliveries = wins;
    outcome.lostReceivers = lost;
    return outcome;
  }

  SlotOutcome resolveOracle(const Topology& topology,
                            const std::vector<NodeId>& transmitters,
                            const std::vector<NodeId>* interferers,
                            const DeliverFn& deliver) {
    SlotOutcome outcome;
    inRange_.ensure(topology.nodeCount());
    txFlags_.ensure(topology.nodeCount());
    txFlags_.set(transmitters);
    for (NodeId tx : transmitters) {
      const NeighborSpan nbs = topology.neighbors(tx);
      inRange_.bumpMany(nbs.data(), nbs.size(), tx);
    }
    if (interferers) {
      // A skewed neighbour's spill-over is undecodable noise: bump each
      // reached receiver twice so its count can never be exactly 1, and
      // the sender half XORs itself away.  Interferers are also deaf —
      // they are mid-transmission themselves.
      txFlags_.set(*interferers);
      for (NodeId ix : *interferers) {
        const NeighborSpan nbs = topology.neighbors(ix);
        inRange_.bumpMany(nbs.data(), nbs.size(), ix);
        inRange_.bumpMany(nbs.data(), nbs.size(), ix);
      }
    }
    const NodeId* touched = inRange_.touched();
    const std::size_t touchedCount = inRange_.touchedCount();
    // Collect successes first, then invoke the callback in a separate
    // loop: the opaque call would otherwise force the compiler to spill
    // and reload the loop state around every delivery inside the
    // random-access scan.  The delivery order is unchanged.
    pairs_.clear();
    pairs_.reserve(touchedCount);
    for (std::size_t i = 0; i < touchedCount; ++i) {
      const NodeId receiver = touched[i];
      const std::uint32_t e = inRange_.take(receiver);  // read + clear
      if (txFlags_.contains(receiver)) continue;  // half duplex
      if (SlotCounts::entryCount(e) == 1) {
        pairs_.emplace_back(receiver, SlotCounts::entrySender(e));
      } else {
        ++outcome.lostReceivers;
      }
    }
    for (const auto& [receiver, sender] : pairs_) deliver(receiver, sender);
    outcome.deliveries = pairs_.size();
    inRange_.resetTouched();
    txFlags_.clear(transmitters);
    if (interferers) txFlags_.clear(*interferers);
    return outcome;
  }

  SlotCounts inRange_;
  TxFlags txFlags_;
  KernelScratch scratch_;
  std::vector<std::pair<NodeId, NodeId>> pairs_;  // (receiver, sender)
};

class CarrierSenseChannel final : public Channel {
 public:
  ChannelModel model() const override {
    return ChannelModel::CarrierSenseAware;
  }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const DeliverFn& deliver) override {
    NSMODEL_CHECK(topology.hasCarrierSense(),
                  "CarrierSenseChannel needs a topology built with a "
                  "carrier-sense factor");
    if (transmitters.size() == 1) {
      // Sole transmitter: the cs-disk contains the transmission disk, so
      // every in-range neighbour senses exactly that one transmitter.
      SlotOutcome outcome;
      const NodeId tx = transmitters.front();
      for (NodeId nb : topology.neighbors(tx)) {
        deliver(nb, tx);
        ++outcome.deliveries;
      }
      return outcome;
    }
    return resolveFull(topology, transmitters, nullptr, deliver);
  }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const std::vector<NodeId>& interferers,
                          const DeliverFn& deliver) override {
    if (interferers.empty()) {
      return resolveSlot(topology, transmitters, deliver);
    }
    NSMODEL_CHECK(topology.hasCarrierSense(),
                  "CarrierSenseChannel needs a topology built with a "
                  "carrier-sense factor");
    return resolveFull(topology, transmitters, &interferers, deliver);
  }

 private:
  SlotOutcome resolveFull(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const std::vector<NodeId>* interferers,
                          const DeliverFn& deliver) {
    const SlotKernelOps& ops = slotKernelOps();
    if (ops.isa == SlotKernelIsa::Oracle) {
      return resolveOracle(topology, transmitters, interferers, deliver);
    }
    return resolveKernel(topology, transmitters, interferers, ops, deliver);
  }

  SlotOutcome resolveKernel(const Topology& topology,
                            const std::vector<NodeId>& transmitters,
                            const std::vector<NodeId>* interferers,
                            const SlotKernelOps& ops,
                            const DeliverFn& deliver) {
    SlotOutcome outcome;
    scratch_.ensure(topology.nodeCount());
    senseScratch_.ensure(topology.nodeCount());
    std::uint32_t* entries = scratch_.entries.data();
    // The carrier-sense tally reuses the same kernel on a second table
    // with a zero sender half; only its count is ever read.  No tx bias
    // there: the oracle's tally counts transmitters' signals everywhere,
    // and half-duplex filtering already happened on the in-range side.
    std::uint32_t* sense = senseScratch_.entries.data();
    biasTransmitters(entries, transmitters, interferers);
    std::size_t tc = 0;
    std::size_t sc = 0;
    const std::size_t txCount = transmitters.size();
    for (std::size_t t = 0; t < txCount; ++t) {
      const NodeId tx = transmitters[t];
      // Rows are bumped in the order nbs, cs, next-nbs, next-cs, ...; each
      // call prefetches the row that follows it.
      const NeighborSpan nbs = topology.neighbors(tx);
      const NeighborSpan cs = topology.carrierSenseNeighbors(tx);
      tc = ops.bumpRow(entries, scratch_.touched.data(), tc, nbs.data(),
                       nbs.size(), static_cast<std::uint32_t>(tx) << 16, 1,
                       cs.data(), cs.size());
      NeighborSpan next{};
      if (t + 1 < txCount) {
        next = topology.neighbors(transmitters[t + 1]);
      } else if (interferers != nullptr && !interferers->empty()) {
        next = topology.neighbors(interferers->front());
      }
      sc = ops.bumpRow(sense, senseScratch_.touched.data(), sc, cs.data(),
                       cs.size(), 0, 1, next.data(), next.size());
    }
    if (interferers != nullptr) {
      // Drift epilogue, as in CollisionAwareChannel::resolveKernel; the
      // sensed tally takes a single bump so a cs-range interferer
      // destroys the reception too.
      const std::size_t ixCount = interferers->size();
      for (std::size_t t = 0; t < ixCount; ++t) {
        const NodeId ix = (*interferers)[t];
        const NeighborSpan nbs = topology.neighbors(ix);
        const NeighborSpan cs = topology.carrierSenseNeighbors(ix);
        tc = ops.bumpRow(entries, scratch_.touched.data(), tc, nbs.data(),
                         nbs.size(), 0, 2, cs.data(), cs.size());
        const NeighborSpan next =
            t + 1 < ixCount ? topology.neighbors((*interferers)[t + 1])
                            : NeighborSpan{};
        sc = ops.bumpRow(sense, senseScratch_.touched.data(), sc, cs.data(),
                         cs.size(), 0, 1, next.data(), next.size());
      }
    }
    std::size_t lost = 0;
    const std::size_t candidates = ops.scanTouched(
        entries, scratch_.touched.data(), tc, scratch_.receivers.data(),
        scratch_.senders.data(), &lost);
    // Carrier-sense filter over the (few) sole-sender candidates: the
    // cs-disk contains the transmission disk, so success needs the sole
    // cs-range signal to be the in-range transmitter.  Winners keep
    // touched order, so delivery order matches the oracle.
    std::size_t wins = 0;
    for (std::size_t i = 0; i < candidates; ++i) {
      const NodeId receiver = scratch_.receivers[i];
      if ((sense[receiver] & 0xFFFF) == 1) {
        scratch_.receivers[wins] = receiver;
        scratch_.senders[wins] = scratch_.senders[i];
        ++wins;
      } else {
        ++lost;
      }
    }
    for (std::size_t i = 0; i < sc; ++i) {
      sense[senseScratch_.touched[i]] = 0;
    }
    biasClear(entries, transmitters, interferers);
    for (std::size_t i = 0; i < wins; ++i) {
      deliver(scratch_.receivers[i], scratch_.senders[i]);
    }
    outcome.deliveries = wins;
    outcome.lostReceivers = lost;
    return outcome;
  }

  SlotOutcome resolveOracle(const Topology& topology,
                            const std::vector<NodeId>& transmitters,
                            const std::vector<NodeId>* interferers,
                            const DeliverFn& deliver) {
    SlotOutcome outcome;
    inRange_.ensure(topology.nodeCount());
    inSense_.ensure(topology.nodeCount());
    txFlags_.ensure(topology.nodeCount());
    txFlags_.set(transmitters);
    for (NodeId tx : transmitters) {
      const NeighborSpan nbs = topology.neighbors(tx);
      inRange_.bumpMany(nbs.data(), nbs.size(), tx);
      const NeighborSpan cs = topology.carrierSenseNeighbors(tx);
      inSense_.bumpMany(cs.data(), cs.size());
    }
    if (interferers) {
      // See CollisionAwareChannel::resolveFull: double-bump the reached
      // receivers so spill-over is never decodable, and bump the sensed
      // tally once so a cs-range interferer destroys the reception too.
      txFlags_.set(*interferers);
      for (NodeId ix : *interferers) {
        const NeighborSpan nbs = topology.neighbors(ix);
        inRange_.bumpMany(nbs.data(), nbs.size(), ix);
        inRange_.bumpMany(nbs.data(), nbs.size(), ix);
        const NeighborSpan cs = topology.carrierSenseNeighbors(ix);
        inSense_.bumpMany(cs.data(), cs.size());
      }
    }
    const NodeId* touched = inRange_.touched();
    const std::size_t touchedCount = inRange_.touchedCount();
    // See CollisionAwareChannel: buffer successes, call back in a second
    // loop so the scan itself is call-free.
    pairs_.clear();
    pairs_.reserve(touchedCount);
    for (std::size_t i = 0; i < touchedCount; ++i) {
      const NodeId receiver = touched[i];
      const std::uint32_t e = inRange_.take(receiver);  // read + clear
      if (txFlags_.contains(receiver)) continue;  // half duplex
      // The cs-disk contains the transmission disk, so inSense >= inRange;
      // success needs the sole cs-range transmitter to be in range.
      if (SlotCounts::entryCount(e) == 1 && inSense_.count(receiver) == 1) {
        pairs_.emplace_back(receiver, SlotCounts::entrySender(e));
      } else {
        ++outcome.lostReceivers;
      }
    }
    for (const auto& [receiver, sender] : pairs_) deliver(receiver, sender);
    outcome.deliveries = pairs_.size();
    inRange_.resetTouched();
    inSense_.clear();
    txFlags_.clear(transmitters);
    if (interferers) txFlags_.clear(*interferers);
    return outcome;
  }

  SlotCounts inRange_;
  SlotTally inSense_;
  TxFlags txFlags_;
  KernelScratch scratch_;
  KernelScratch senseScratch_;
  std::vector<std::pair<NodeId, NodeId>> pairs_;  // (receiver, sender)
};

}  // namespace

std::unique_ptr<Channel> makeChannel(ChannelModel model) {
  return makeChannel(model, SinrParams{});
}

std::unique_ptr<Channel> makeChannel(ChannelModel model,
                                     const SinrParams& sinr) {
  switch (model) {
    case ChannelModel::CollisionFree:
      return std::make_unique<CollisionFreeChannel>();
    case ChannelModel::CollisionAware:
      return std::make_unique<CollisionAwareChannel>();
    case ChannelModel::CarrierSenseAware:
      return std::make_unique<CarrierSenseChannel>();
    case ChannelModel::Sinr:
      return std::make_unique<SinrChannel>(sinr);
  }
  NSMODEL_ASSERT(false);
  return nullptr;
}

}  // namespace nsmodel::net
