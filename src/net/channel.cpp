#include "net/channel.hpp"

#include "support/error.hpp"

namespace nsmodel::net {

const char* channelModelName(ChannelModel model) {
  switch (model) {
    case ChannelModel::CollisionFree:
      return "CFM";
    case ChannelModel::CollisionAware:
      return "CAM";
    case ChannelModel::CarrierSenseAware:
      return "CAM-CS";
  }
  return "?";
}

namespace {

/// Epoch-stamped per-node counters reused across slots without clearing.
class StampedCounts {
 public:
  void reset(std::size_t n) {
    if (counts_.size() != n) {
      counts_.assign(n, 0);
      stamps_.assign(n, 0);
      lastSender_.assign(n, kNoNode);
      epoch_ = 0;
    }
    ++epoch_;
    touched_.clear();
  }

  void bump(NodeId node, NodeId sender) {
    if (stamps_[node] != epoch_) {
      stamps_[node] = epoch_;
      counts_[node] = 0;
      touched_.push_back(node);
    }
    ++counts_[node];
    lastSender_[node] = sender;
  }

  std::uint32_t count(NodeId node) const {
    return stamps_[node] == epoch_ ? counts_[node] : 0;
  }

  NodeId sender(NodeId node) const { return lastSender_[node]; }

  const std::vector<NodeId>& touched() const { return touched_; }

 private:
  std::vector<std::uint32_t> counts_;
  std::vector<std::uint64_t> stamps_;
  std::vector<NodeId> lastSender_;
  std::vector<NodeId> touched_;
  std::uint64_t epoch_ = 0;
};

/// Epoch-stamped membership set for "is this node transmitting".
class StampedSet {
 public:
  void reset(std::size_t n) {
    if (stamps_.size() != n) {
      stamps_.assign(n, 0);
      epoch_ = 0;
    }
    ++epoch_;
  }
  void add(NodeId node) { stamps_[node] = epoch_; }
  bool contains(NodeId node) const { return stamps_[node] == epoch_; }

 private:
  std::vector<std::uint64_t> stamps_;
  std::uint64_t epoch_ = 0;
};

class CollisionFreeChannel final : public Channel {
 public:
  ChannelModel model() const override { return ChannelModel::CollisionFree; }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const DeliverFn& deliver) override {
    SlotOutcome outcome;
    for (NodeId tx : transmitters) {
      for (NodeId nb : topology.neighbors(tx)) {
        deliver(nb, tx);
        ++outcome.deliveries;
      }
    }
    return outcome;
  }
};

class CollisionAwareChannel final : public Channel {
 public:
  ChannelModel model() const override { return ChannelModel::CollisionAware; }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const DeliverFn& deliver) override {
    inRange_.reset(topology.nodeCount());
    txSet_.reset(topology.nodeCount());
    for (NodeId tx : transmitters) txSet_.add(tx);
    for (NodeId tx : transmitters) {
      for (NodeId nb : topology.neighbors(tx)) inRange_.bump(nb, tx);
    }
    SlotOutcome outcome;
    for (NodeId receiver : inRange_.touched()) {
      if (txSet_.contains(receiver)) continue;  // half duplex
      if (inRange_.count(receiver) == 1) {
        deliver(receiver, inRange_.sender(receiver));
        ++outcome.deliveries;
      } else {
        ++outcome.lostReceivers;
      }
    }
    return outcome;
  }

 private:
  StampedCounts inRange_;
  StampedSet txSet_;
};

class CarrierSenseChannel final : public Channel {
 public:
  ChannelModel model() const override {
    return ChannelModel::CarrierSenseAware;
  }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const DeliverFn& deliver) override {
    NSMODEL_CHECK(topology.hasCarrierSense(),
                  "CarrierSenseChannel needs a topology built with a "
                  "carrier-sense factor");
    inRange_.reset(topology.nodeCount());
    inSense_.reset(topology.nodeCount());
    txSet_.reset(topology.nodeCount());
    for (NodeId tx : transmitters) txSet_.add(tx);
    for (NodeId tx : transmitters) {
      for (NodeId nb : topology.neighbors(tx)) inRange_.bump(nb, tx);
      for (NodeId nb : topology.carrierSenseNeighbors(tx)) {
        inSense_.bump(nb, tx);
      }
    }
    SlotOutcome outcome;
    for (NodeId receiver : inRange_.touched()) {
      if (txSet_.contains(receiver)) continue;  // half duplex
      // The cs-disk contains the transmission disk, so inSense >= inRange;
      // success needs the sole cs-range transmitter to be in range.
      if (inRange_.count(receiver) == 1 && inSense_.count(receiver) == 1) {
        deliver(receiver, inRange_.sender(receiver));
        ++outcome.deliveries;
      } else {
        ++outcome.lostReceivers;
      }
    }
    return outcome;
  }

 private:
  StampedCounts inRange_;
  StampedCounts inSense_;
  StampedSet txSet_;
};

}  // namespace

std::unique_ptr<Channel> makeChannel(ChannelModel model) {
  switch (model) {
    case ChannelModel::CollisionFree:
      return std::make_unique<CollisionFreeChannel>();
    case ChannelModel::CollisionAware:
      return std::make_unique<CollisionAwareChannel>();
    case ChannelModel::CarrierSenseAware:
      return std::make_unique<CarrierSenseChannel>();
  }
  NSMODEL_ASSERT(false);
  return nullptr;
}

}  // namespace nsmodel::net
