#include "net/channel.hpp"

#include <utility>

#include "net/slot_kernel.hpp"
#include "support/error.hpp"

namespace nsmodel::net {

const char* channelModelName(ChannelModel model) {
  switch (model) {
    case ChannelModel::CollisionFree:
      return "CFM";
    case ChannelModel::CollisionAware:
      return "CAM";
    case ChannelModel::CarrierSenseAware:
      return "CAM-CS";
  }
  return "?";
}

SlotOutcome Channel::resolveSlot(const Topology& topology,
                                 const std::vector<NodeId>& transmitters,
                                 const std::vector<NodeId>& interferers,
                                 const DeliverFn& deliver) {
  NSMODEL_CHECK(interferers.empty(),
                "this channel model does not support clock-drift interferers");
  return resolveSlot(topology, transmitters, deliver);
}

namespace {

/// Per-node reception count and sender for one slot, packed into one
/// 32-bit word: count in the low half, the XOR of all bumping senders in
/// the high half.  The bump loop — the innermost loop of every slot
/// resolution, one random-indexed access per (transmitter, neighbour)
/// pair — is then a branchless load/add/xor/store, and the whole table is
/// 4 bytes per node, small enough to stay L1-resident while the
/// neighbour lists stream through the cache.  The XOR trick works because
/// the sender is only ever read back when the final count is exactly 1,
/// and the XOR of a single sender is that sender.
/// Entries are cleared by walking the touched list after the slot.
/// Invariant between slots: all entries are zero.
class SlotCounts {
 public:
  /// Grow-only: a channel owned by a reusable RunWorkspace sees runs of
  /// varying node counts; shrinking would make the next bigger run
  /// reallocate.  Extra entries stay zero (resize value-initialises) and
  /// are never indexed.
  void ensure(std::size_t n) {
    // NodeId and the per-slot count must both fit 16 bits.
    NSMODEL_CHECK(n <= 0xFFFF,
                  "collision-aware channels support at most 65535 nodes");
    if (entries_.size() < n) {
      entries_.resize(n, 0);
      // Every node can be touched at most once, but the branchless bump
      // writes touched[tc] unconditionally before deciding whether to
      // keep it — once all n nodes are touched, that scratch write lands
      // at index n, so the list needs one sentinel slot of slack.
      touched_.resize(n + 1);
    }
  }

  /// Bumps every node in `ids`.  Members are hoisted into locals for the
  /// duration of the loop: the entry stores could otherwise alias the
  /// size_t touched counter under type-based aliasing, forcing the
  /// compiler to reload it (and the data pointers) on every iteration of
  /// the hottest loop in the simulator.
  void bumpMany(const NodeId* ids, std::size_t m, NodeId sender) {
    std::uint32_t* entries = entries_.data();
    NodeId* touched = touched_.data();
    std::size_t tc = touchedCount_;
    const std::uint32_t senderBits = static_cast<std::uint32_t>(sender) << 16;
    for (std::size_t i = 0; i < m; ++i) {
      const NodeId node = ids[i];
      const std::uint32_t e = entries[node];
      touched[tc] = node;  // kept only when this is a first touch
      tc += static_cast<std::size_t>(static_cast<std::uint16_t>(e) == 0);
      // A node is never its own neighbour, so the count stays below
      // 0xFFFF and the +1 cannot carry into the sender half.
      entries[node] = (e + 1) ^ senderBits;
    }
    touchedCount_ = tc;
  }

  /// Reads and zeroes `node`'s entry in one cache-line visit.  The
  /// delivery loop consumes each touched entry exactly once, so clearing
  /// inline halves the random accesses versus a separate clear pass.
  std::uint32_t take(NodeId node) {
    const std::uint32_t e = entries_[node];
    entries_[node] = 0;
    return e;
  }
  static std::uint32_t entryCount(std::uint32_t e) { return e & 0xFFFF; }
  static NodeId entrySender(std::uint32_t e) {
    return static_cast<NodeId>(e >> 16);
  }

  const NodeId* touched() const { return touched_.data(); }
  std::size_t touchedCount() const { return touchedCount_; }

  /// Forgets the touched list; the entries must all have been take()n.
  void resetTouched() { touchedCount_ = 0; }

 private:
  std::vector<std::uint32_t> entries_;
  std::vector<NodeId> touched_;
  std::size_t touchedCount_ = 0;
};

/// "Is this node transmitting" as byte flags set from and cleared by the
/// (short) transmitter list.  Invariant between slots: all flags clear.
class TxFlags {
 public:
  void ensure(std::size_t n) {
    if (flags_.size() < n) flags_.resize(n, 0);  // grow-only, see SlotCounts
  }
  void set(const std::vector<NodeId>& txs) {
    for (NodeId tx : txs) flags_[tx] = 1;
  }
  bool contains(NodeId node) const { return flags_[node] != 0; }
  void clear(const std::vector<NodeId>& txs) {
    for (NodeId tx : txs) flags_[tx] = 0;
  }

 private:
  std::vector<std::uint8_t> flags_;
};

/// Count-only variant of SlotCounts for the carrier-sense tally, whose
/// sender is never read.
class SlotTally {
 public:
  void ensure(std::size_t n) {
    NSMODEL_CHECK(n <= 0xFFFF,
                  "collision-aware channels support at most 65535 nodes");
    if (counts_.size() < n) {  // grow-only, see SlotCounts
      counts_.resize(n, 0);
      touched_.resize(n + 1);  // sentinel slot, see SlotCounts::ensure
    }
  }

  /// Bumps every node in `ids` (see SlotCounts::bumpMany for why the
  /// members are hoisted into locals).
  void bumpMany(const NodeId* ids, std::size_t m) {
    std::uint16_t* counts = counts_.data();
    NodeId* touched = touched_.data();
    std::size_t tc = touchedCount_;
    for (std::size_t i = 0; i < m; ++i) {
      const NodeId node = ids[i];
      const std::uint16_t c = counts[node];
      touched[tc] = node;
      tc += static_cast<std::size_t>(c == 0);
      counts[node] = static_cast<std::uint16_t>(c + 1);
    }
    touchedCount_ = tc;
  }

  std::uint32_t count(NodeId node) const { return counts_[node]; }

  void clear() {
    for (std::size_t i = 0; i < touchedCount_; ++i) counts_[touched_[i]] = 0;
    touchedCount_ = 0;
  }

 private:
  std::vector<std::uint16_t> counts_;
  std::vector<NodeId> touched_;
  std::size_t touchedCount_ = 0;
};

/// Scratch arrays for the dispatched slot kernel (slot_kernel.hpp): the
/// packed count-xor-sender table plus the touched list and the compressed
/// winner arrays the scan pass writes.  Grow-only, like SlotCounts; the
/// invariant between slots is likewise all-entries-zero.
struct KernelScratch {
  std::vector<std::uint32_t> entries;
  std::vector<NodeId> touched;
  std::vector<NodeId> receivers;
  std::vector<NodeId> senders;

  void ensure(std::size_t n) {
    NSMODEL_CHECK(n <= 0xFFFF,
                  "collision-aware channels support at most 65535 nodes");
    if (entries.size() < n) {
      entries.resize(n, 0);
      touched.resize(n + 1);  // sentinel slot, see SlotCounts::ensure
      receivers.resize(n);
      senders.resize(n);
    }
  }
};

/// Pre-biases each transmitter's own entry to count 2.  A biased entry is
/// nonzero before the bump pass, so the node never enters the touched
/// list and so never scans as either a winner or a collision loss —
/// exactly the oracle's half-duplex skip of transmitting receivers,
/// without any per-receiver flag lookup in the scan.  biasClear undoes
/// the bias (the entry may have been bumped further; whatever it holds,
/// the node was filtered out, so zero is the correct between-slots state).
void biasTransmitters(std::uint32_t* entries,
                      const std::vector<NodeId>& transmitters,
                      const std::vector<NodeId>* interferers) {
  for (NodeId tx : transmitters) entries[tx] += 2;
  if (interferers != nullptr) {
    for (NodeId ix : *interferers) entries[ix] += 2;
  }
}

void biasClear(std::uint32_t* entries,
               const std::vector<NodeId>& transmitters,
               const std::vector<NodeId>* interferers) {
  for (NodeId tx : transmitters) entries[tx] = 0;
  if (interferers != nullptr) {
    for (NodeId ix : *interferers) entries[ix] = 0;
  }
}

class CollisionFreeChannel final : public Channel {
 public:
  ChannelModel model() const override { return ChannelModel::CollisionFree; }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const DeliverFn& deliver) override {
    SlotOutcome outcome;
    for (NodeId tx : transmitters) {
      for (NodeId nb : topology.neighbors(tx)) {
        deliver(nb, tx);
        ++outcome.deliveries;
      }
    }
    return outcome;
  }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const std::vector<NodeId>& /*interferers*/,
                          const DeliverFn& deliver) override {
    // Collision-free transmission is atomic and guaranteed: spill-over
    // from a skewed neighbour cannot corrupt a reception.
    return resolveSlot(topology, transmitters, deliver);
  }
};

class CollisionAwareChannel final : public Channel {
 public:
  ChannelModel model() const override { return ChannelModel::CollisionAware; }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const DeliverFn& deliver) override {
    if (transmitters.size() == 1) {
      // Sole transmitter: every neighbour hears exactly one packet and
      // cannot itself be transmitting, so the counting pass reduces to
      // direct delivery in neighbour order — the order it would produce.
      SlotOutcome outcome;
      const NodeId tx = transmitters.front();
      for (NodeId nb : topology.neighbors(tx)) {
        deliver(nb, tx);
        ++outcome.deliveries;
      }
      return outcome;
    }
    return resolveFull(topology, transmitters, nullptr, deliver);
  }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const std::vector<NodeId>& interferers,
                          const DeliverFn& deliver) override {
    if (interferers.empty()) {
      return resolveSlot(topology, transmitters, deliver);
    }
    return resolveFull(topology, transmitters, &interferers, deliver);
  }

 private:
  SlotOutcome resolveFull(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const std::vector<NodeId>* interferers,
                          const DeliverFn& deliver) {
    const SlotKernelOps& ops = slotKernelOps();
    if (ops.isa == SlotKernelIsa::Oracle) {
      return resolveOracle(topology, transmitters, interferers, deliver);
    }
    return resolveKernel(topology, transmitters, interferers, ops, deliver);
  }

  SlotOutcome resolveKernel(const Topology& topology,
                            const std::vector<NodeId>& transmitters,
                            const std::vector<NodeId>* interferers,
                            const SlotKernelOps& ops,
                            const DeliverFn& deliver) {
    SlotOutcome outcome;
    scratch_.ensure(topology.nodeCount());
    std::uint32_t* entries = scratch_.entries.data();
    biasTransmitters(entries, transmitters, interferers);
    std::size_t tc = 0;
    const std::size_t txCount = transmitters.size();
    for (std::size_t t = 0; t < txCount; ++t) {
      const NodeId tx = transmitters[t];
      const NeighborSpan nbs = topology.neighbors(tx);
      // The row bumped after this one (the next transmitter's, then the
      // first interferer's) is handed down as a prefetch hint.
      NeighborSpan next{};
      if (t + 1 < txCount) {
        next = topology.neighbors(transmitters[t + 1]);
      } else if (interferers != nullptr && !interferers->empty()) {
        next = topology.neighbors(interferers->front());
      }
      tc = ops.bumpRow(entries, scratch_.touched.data(), tc, nbs.data(),
                       nbs.size(), static_cast<std::uint32_t>(tx) << 16, 1,
                       next.data(), next.size());
    }
    if (interferers != nullptr) {
      // Drift epilogue: spill-over is undecodable noise.  One bump of 2
      // with a zero sender half leaves exactly the word the oracle's two
      // single bumps produce (the sender XORs itself away), so a reached
      // receiver's count can never end at 1.
      const std::size_t ixCount = interferers->size();
      for (std::size_t t = 0; t < ixCount; ++t) {
        const NeighborSpan nbs = topology.neighbors((*interferers)[t]);
        const NeighborSpan next =
            t + 1 < ixCount ? topology.neighbors((*interferers)[t + 1])
                            : NeighborSpan{};
        tc = ops.bumpRow(entries, scratch_.touched.data(), tc, nbs.data(),
                         nbs.size(), 0, 2, next.data(), next.size());
      }
    }
    std::size_t lost = 0;
    const std::size_t wins = ops.scanTouched(
        entries, scratch_.touched.data(), tc, scratch_.receivers.data(),
        scratch_.senders.data(), &lost);
    biasClear(entries, transmitters, interferers);
    for (std::size_t i = 0; i < wins; ++i) {
      deliver(scratch_.receivers[i], scratch_.senders[i]);
    }
    outcome.deliveries = wins;
    outcome.lostReceivers = lost;
    return outcome;
  }

  SlotOutcome resolveOracle(const Topology& topology,
                            const std::vector<NodeId>& transmitters,
                            const std::vector<NodeId>* interferers,
                            const DeliverFn& deliver) {
    SlotOutcome outcome;
    inRange_.ensure(topology.nodeCount());
    txFlags_.ensure(topology.nodeCount());
    txFlags_.set(transmitters);
    for (NodeId tx : transmitters) {
      const NeighborSpan nbs = topology.neighbors(tx);
      inRange_.bumpMany(nbs.data(), nbs.size(), tx);
    }
    if (interferers) {
      // A skewed neighbour's spill-over is undecodable noise: bump each
      // reached receiver twice so its count can never be exactly 1, and
      // the sender half XORs itself away.  Interferers are also deaf —
      // they are mid-transmission themselves.
      txFlags_.set(*interferers);
      for (NodeId ix : *interferers) {
        const NeighborSpan nbs = topology.neighbors(ix);
        inRange_.bumpMany(nbs.data(), nbs.size(), ix);
        inRange_.bumpMany(nbs.data(), nbs.size(), ix);
      }
    }
    const NodeId* touched = inRange_.touched();
    const std::size_t touchedCount = inRange_.touchedCount();
    // Collect successes first, then invoke the callback in a separate
    // loop: the opaque call would otherwise force the compiler to spill
    // and reload the loop state around every delivery inside the
    // random-access scan.  The delivery order is unchanged.
    pairs_.clear();
    pairs_.reserve(touchedCount);
    for (std::size_t i = 0; i < touchedCount; ++i) {
      const NodeId receiver = touched[i];
      const std::uint32_t e = inRange_.take(receiver);  // read + clear
      if (txFlags_.contains(receiver)) continue;  // half duplex
      if (SlotCounts::entryCount(e) == 1) {
        pairs_.emplace_back(receiver, SlotCounts::entrySender(e));
      } else {
        ++outcome.lostReceivers;
      }
    }
    for (const auto& [receiver, sender] : pairs_) deliver(receiver, sender);
    outcome.deliveries = pairs_.size();
    inRange_.resetTouched();
    txFlags_.clear(transmitters);
    if (interferers) txFlags_.clear(*interferers);
    return outcome;
  }

  SlotCounts inRange_;
  TxFlags txFlags_;
  KernelScratch scratch_;
  std::vector<std::pair<NodeId, NodeId>> pairs_;  // (receiver, sender)
};

class CarrierSenseChannel final : public Channel {
 public:
  ChannelModel model() const override {
    return ChannelModel::CarrierSenseAware;
  }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const DeliverFn& deliver) override {
    NSMODEL_CHECK(topology.hasCarrierSense(),
                  "CarrierSenseChannel needs a topology built with a "
                  "carrier-sense factor");
    if (transmitters.size() == 1) {
      // Sole transmitter: the cs-disk contains the transmission disk, so
      // every in-range neighbour senses exactly that one transmitter.
      SlotOutcome outcome;
      const NodeId tx = transmitters.front();
      for (NodeId nb : topology.neighbors(tx)) {
        deliver(nb, tx);
        ++outcome.deliveries;
      }
      return outcome;
    }
    return resolveFull(topology, transmitters, nullptr, deliver);
  }

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const std::vector<NodeId>& interferers,
                          const DeliverFn& deliver) override {
    if (interferers.empty()) {
      return resolveSlot(topology, transmitters, deliver);
    }
    NSMODEL_CHECK(topology.hasCarrierSense(),
                  "CarrierSenseChannel needs a topology built with a "
                  "carrier-sense factor");
    return resolveFull(topology, transmitters, &interferers, deliver);
  }

 private:
  SlotOutcome resolveFull(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const std::vector<NodeId>* interferers,
                          const DeliverFn& deliver) {
    const SlotKernelOps& ops = slotKernelOps();
    if (ops.isa == SlotKernelIsa::Oracle) {
      return resolveOracle(topology, transmitters, interferers, deliver);
    }
    return resolveKernel(topology, transmitters, interferers, ops, deliver);
  }

  SlotOutcome resolveKernel(const Topology& topology,
                            const std::vector<NodeId>& transmitters,
                            const std::vector<NodeId>* interferers,
                            const SlotKernelOps& ops,
                            const DeliverFn& deliver) {
    SlotOutcome outcome;
    scratch_.ensure(topology.nodeCount());
    senseScratch_.ensure(topology.nodeCount());
    std::uint32_t* entries = scratch_.entries.data();
    // The carrier-sense tally reuses the same kernel on a second table
    // with a zero sender half; only its count is ever read.  No tx bias
    // there: the oracle's tally counts transmitters' signals everywhere,
    // and half-duplex filtering already happened on the in-range side.
    std::uint32_t* sense = senseScratch_.entries.data();
    biasTransmitters(entries, transmitters, interferers);
    std::size_t tc = 0;
    std::size_t sc = 0;
    const std::size_t txCount = transmitters.size();
    for (std::size_t t = 0; t < txCount; ++t) {
      const NodeId tx = transmitters[t];
      // Rows are bumped in the order nbs, cs, next-nbs, next-cs, ...; each
      // call prefetches the row that follows it.
      const NeighborSpan nbs = topology.neighbors(tx);
      const NeighborSpan cs = topology.carrierSenseNeighbors(tx);
      tc = ops.bumpRow(entries, scratch_.touched.data(), tc, nbs.data(),
                       nbs.size(), static_cast<std::uint32_t>(tx) << 16, 1,
                       cs.data(), cs.size());
      NeighborSpan next{};
      if (t + 1 < txCount) {
        next = topology.neighbors(transmitters[t + 1]);
      } else if (interferers != nullptr && !interferers->empty()) {
        next = topology.neighbors(interferers->front());
      }
      sc = ops.bumpRow(sense, senseScratch_.touched.data(), sc, cs.data(),
                       cs.size(), 0, 1, next.data(), next.size());
    }
    if (interferers != nullptr) {
      // Drift epilogue, as in CollisionAwareChannel::resolveKernel; the
      // sensed tally takes a single bump so a cs-range interferer
      // destroys the reception too.
      const std::size_t ixCount = interferers->size();
      for (std::size_t t = 0; t < ixCount; ++t) {
        const NodeId ix = (*interferers)[t];
        const NeighborSpan nbs = topology.neighbors(ix);
        const NeighborSpan cs = topology.carrierSenseNeighbors(ix);
        tc = ops.bumpRow(entries, scratch_.touched.data(), tc, nbs.data(),
                         nbs.size(), 0, 2, cs.data(), cs.size());
        const NeighborSpan next =
            t + 1 < ixCount ? topology.neighbors((*interferers)[t + 1])
                            : NeighborSpan{};
        sc = ops.bumpRow(sense, senseScratch_.touched.data(), sc, cs.data(),
                         cs.size(), 0, 1, next.data(), next.size());
      }
    }
    std::size_t lost = 0;
    const std::size_t candidates = ops.scanTouched(
        entries, scratch_.touched.data(), tc, scratch_.receivers.data(),
        scratch_.senders.data(), &lost);
    // Carrier-sense filter over the (few) sole-sender candidates: the
    // cs-disk contains the transmission disk, so success needs the sole
    // cs-range signal to be the in-range transmitter.  Winners keep
    // touched order, so delivery order matches the oracle.
    std::size_t wins = 0;
    for (std::size_t i = 0; i < candidates; ++i) {
      const NodeId receiver = scratch_.receivers[i];
      if ((sense[receiver] & 0xFFFF) == 1) {
        scratch_.receivers[wins] = receiver;
        scratch_.senders[wins] = scratch_.senders[i];
        ++wins;
      } else {
        ++lost;
      }
    }
    for (std::size_t i = 0; i < sc; ++i) {
      sense[senseScratch_.touched[i]] = 0;
    }
    biasClear(entries, transmitters, interferers);
    for (std::size_t i = 0; i < wins; ++i) {
      deliver(scratch_.receivers[i], scratch_.senders[i]);
    }
    outcome.deliveries = wins;
    outcome.lostReceivers = lost;
    return outcome;
  }

  SlotOutcome resolveOracle(const Topology& topology,
                            const std::vector<NodeId>& transmitters,
                            const std::vector<NodeId>* interferers,
                            const DeliverFn& deliver) {
    SlotOutcome outcome;
    inRange_.ensure(topology.nodeCount());
    inSense_.ensure(topology.nodeCount());
    txFlags_.ensure(topology.nodeCount());
    txFlags_.set(transmitters);
    for (NodeId tx : transmitters) {
      const NeighborSpan nbs = topology.neighbors(tx);
      inRange_.bumpMany(nbs.data(), nbs.size(), tx);
      const NeighborSpan cs = topology.carrierSenseNeighbors(tx);
      inSense_.bumpMany(cs.data(), cs.size());
    }
    if (interferers) {
      // See CollisionAwareChannel::resolveFull: double-bump the reached
      // receivers so spill-over is never decodable, and bump the sensed
      // tally once so a cs-range interferer destroys the reception too.
      txFlags_.set(*interferers);
      for (NodeId ix : *interferers) {
        const NeighborSpan nbs = topology.neighbors(ix);
        inRange_.bumpMany(nbs.data(), nbs.size(), ix);
        inRange_.bumpMany(nbs.data(), nbs.size(), ix);
        const NeighborSpan cs = topology.carrierSenseNeighbors(ix);
        inSense_.bumpMany(cs.data(), cs.size());
      }
    }
    const NodeId* touched = inRange_.touched();
    const std::size_t touchedCount = inRange_.touchedCount();
    // See CollisionAwareChannel: buffer successes, call back in a second
    // loop so the scan itself is call-free.
    pairs_.clear();
    pairs_.reserve(touchedCount);
    for (std::size_t i = 0; i < touchedCount; ++i) {
      const NodeId receiver = touched[i];
      const std::uint32_t e = inRange_.take(receiver);  // read + clear
      if (txFlags_.contains(receiver)) continue;  // half duplex
      // The cs-disk contains the transmission disk, so inSense >= inRange;
      // success needs the sole cs-range transmitter to be in range.
      if (SlotCounts::entryCount(e) == 1 && inSense_.count(receiver) == 1) {
        pairs_.emplace_back(receiver, SlotCounts::entrySender(e));
      } else {
        ++outcome.lostReceivers;
      }
    }
    for (const auto& [receiver, sender] : pairs_) deliver(receiver, sender);
    outcome.deliveries = pairs_.size();
    inRange_.resetTouched();
    inSense_.clear();
    txFlags_.clear(transmitters);
    if (interferers) txFlags_.clear(*interferers);
    return outcome;
  }

  SlotCounts inRange_;
  SlotTally inSense_;
  TxFlags txFlags_;
  KernelScratch scratch_;
  KernelScratch senseScratch_;
  std::vector<std::pair<NodeId, NodeId>> pairs_;  // (receiver, sender)
};

}  // namespace

std::unique_ptr<Channel> makeChannel(ChannelModel model) {
  switch (model) {
    case ChannelModel::CollisionFree:
      return std::make_unique<CollisionFreeChannel>();
    case ChannelModel::CollisionAware:
      return std::make_unique<CollisionAwareChannel>();
    case ChannelModel::CarrierSenseAware:
      return std::make_unique<CarrierSenseChannel>();
  }
  NSMODEL_ASSERT(false);
  return nullptr;
}

}  // namespace nsmodel::net
