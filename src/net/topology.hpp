// Neighbour tables over a deployment (Assumptions 2 and 3: symmetric
// links, every node knows its neighbours).
#pragma once

#include <vector>

#include "net/deployment.hpp"
#include "support/error.hpp"

namespace nsmodel::net {

/// Immutable adjacency derived from positions and the transmission range.
/// Optionally also precomputes the carrier-sense neighbourhood (nodes
/// within csFactor * range) used by the Appendix-A channel.
class Topology {
 public:
  /// Builds range-`range` adjacency. When `csFactor` > 1, carrier-sense
  /// adjacency at csFactor*range is built as well.
  Topology(const Deployment& deployment, double range, double csFactor = 0.0);

  std::size_t nodeCount() const { return neighbors_.size(); }
  double range() const { return range_; }
  bool hasCarrierSense() const { return !csNeighbors_.empty(); }
  double carrierSenseRange() const;

  /// Nodes within `range` of `id`, excluding `id` itself.  Inline: this
  /// sits on the per-transmitter path of every slot resolution.
  const std::vector<NodeId>& neighbors(NodeId id) const {
    NSMODEL_CHECK(id < neighbors_.size(), "node id out of range");
    return neighbors_[id];
  }

  /// Nodes within the carrier-sense range of `id`, excluding `id`;
  /// requires hasCarrierSense(). Includes the transmission-range
  /// neighbours (it is the full cs-disk, not the annulus).
  const std::vector<NodeId>& carrierSenseNeighbors(NodeId id) const {
    NSMODEL_CHECK(hasCarrierSense(), "carrier sensing not configured");
    NSMODEL_CHECK(id < csNeighbors_.size(), "node id out of range");
    return csNeighbors_[id];
  }

  /// Average number of neighbours (the empirical rho).
  double averageDegree() const;

  /// True when every node can reach every other through links
  /// (BFS from node 0).
  bool isConnected() const;

  /// Number of nodes reachable from `start` through links (incl. start).
  std::size_t reachableCount(NodeId start) const;

 private:
  double range_;
  double csRange_ = 0.0;
  std::vector<std::vector<NodeId>> neighbors_;
  std::vector<std::vector<NodeId>> csNeighbors_;
};

}  // namespace nsmodel::net
