// Neighbour tables over a deployment (Assumptions 2 and 3: symmetric
// links, every node knows its neighbours).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "net/deployment.hpp"
#include "net/gain_field.hpp"
#include "support/error.hpp"

namespace nsmodel::geom {
class SpatialGrid;
}  // namespace nsmodel::geom

namespace nsmodel::net {

/// Lightweight view of one node's neighbour list (a CSR row).
using NeighborSpan = std::span<const NodeId>;

/// Immutable adjacency derived from positions and the transmission range.
/// Optionally also precomputes the carrier-sense neighbourhood (nodes
/// within csFactor * range) used by the Appendix-A channel.
///
/// Storage is CSR: one flat NodeId array plus an offsets array per table,
/// so a whole table is two allocations and the per-transmitter neighbour
/// scan of every slot resolution streams through contiguous memory
/// instead of chasing a vector-of-vectors.
class Topology {
 public:
  /// Builds range-`range` adjacency. When `csFactor` > 1, carrier-sense
  /// adjacency at csFactor*range is built as well.
  Topology(const Deployment& deployment, double range, double csFactor = 0.0);

  /// As above, and additionally precomputes the SINR gain field
  /// (gain_field.hpp) at sinr.cutoffFactor * range from the same grid.
  Topology(const Deployment& deployment, double range, double csFactor,
           const GainFieldSpec& sinr);

  std::size_t nodeCount() const { return nodeCount_; }
  double range() const { return range_; }
  bool hasCarrierSense() const { return csRange_ > 0.0; }
  double carrierSenseRange() const;

  /// Whether a SINR gain field was precomputed (GainFieldSpec ctor).
  bool hasGainField() const { return gainField_ != nullptr; }
  const GainField& gainField() const {
    NSMODEL_CHECK(hasGainField(), "SINR gain field not configured");
    return *gainField_;
  }

  /// Nodes within `range` of `id`, excluding `id` itself.  Inline: this
  /// sits on the per-transmitter path of every slot resolution.
  NeighborSpan neighbors(NodeId id) const {
    NSMODEL_CHECK(id < nodeCount_, "node id out of range");
    return links_.row(id);
  }

  /// Nodes within the carrier-sense range of `id`, excluding `id`;
  /// requires hasCarrierSense(). Includes the transmission-range
  /// neighbours (it is the full cs-disk, not the annulus).
  NeighborSpan carrierSenseNeighbors(NodeId id) const {
    NSMODEL_CHECK(hasCarrierSense(), "carrier sensing not configured");
    NSMODEL_CHECK(id < nodeCount_, "node id out of range");
    return csLinks_.row(id);
  }

  /// Average number of neighbours (the empirical rho).
  double averageDegree() const;

  /// True when every node can reach every other through links
  /// (BFS from node 0).
  bool isConnected() const;

  /// Number of nodes reachable from `start` through links (incl. start).
  std::size_t reachableCount(NodeId start) const;

 private:
  /// One CSR table: row i is ids[offsets[i] .. offsets[i+1]).
  struct Csr {
    std::vector<std::size_t> offsets;  // nodeCount + 1 entries
    std::vector<NodeId> ids;

    NeighborSpan row(NodeId id) const {
      return {ids.data() + offsets[id], offsets[id + 1] - offsets[id]};
    }
  };

  /// Two passes over the grid — count then fill — in the grid's
  /// deterministic visit order, so row contents match what the old
  /// per-node push_back construction produced, in exactly two
  /// allocations.
  static Csr buildAdjacency(const std::vector<geom::Vec2>& positions,
                            const geom::SpatialGrid& grid, double radius);

  double range_;
  double csRange_ = 0.0;
  std::size_t nodeCount_ = 0;
  Csr links_;
  Csr csLinks_;
  /// shared_ptr keeps Topology cheaply copyable (scenario caches copy
  /// topologies by value); the field itself is immutable once built.
  std::shared_ptr<const GainField> gainField_;
};

}  // namespace nsmodel::net
