#include "net/tdma.hpp"

#include <algorithm>
#include <numeric>

#include "support/error.hpp"

namespace nsmodel::net {

namespace {

/// Calls `visit` for every node at graph distance exactly 1 or 2 from u
/// (duplicates possible; callers tolerate them).
template <typename Visitor>
void forEachWithinTwoHops(const Topology& topology, NodeId u,
                          Visitor&& visit) {
  for (NodeId v : topology.neighbors(u)) {
    visit(v);
    for (NodeId w : topology.neighbors(v)) {
      if (w != u) visit(w);
    }
  }
}

}  // namespace

bool TdmaSchedule::isValidFor(const Topology& topology) const {
  if (slotOf.size() != topology.nodeCount()) return false;
  for (NodeId u = 0; u < topology.nodeCount(); ++u) {
    if (slotOf[u] < 0 || slotOf[u] >= frameLength) return false;
    bool conflict = false;
    forEachWithinTwoHops(topology, u, [&](NodeId other) {
      if (other != u && slotOf[other] == slotOf[u]) conflict = true;
    });
    if (conflict) return false;
  }
  return true;
}

TdmaSchedule buildTdmaSchedule(const Topology& topology) {
  const std::size_t n = topology.nodeCount();
  TdmaSchedule schedule;
  schedule.slotOf.assign(n, -1);

  // Colour in descending-degree order: high-degree nodes first keeps the
  // colour count near the clique bound.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const auto da = topology.neighbors(a).size();
    const auto db = topology.neighbors(b).size();
    if (da != db) return da > db;
    return a < b;  // deterministic tie-break
  });

  std::vector<char> taken;
  for (NodeId u : order) {
    taken.assign(static_cast<std::size_t>(schedule.frameLength) + 1, 0);
    forEachWithinTwoHops(topology, u, [&](NodeId other) {
      const int slot = schedule.slotOf[other];
      if (slot >= 0 && slot < static_cast<int>(taken.size())) {
        taken[slot] = 1;
      }
    });
    int slot = 0;
    while (slot < static_cast<int>(taken.size()) && taken[slot]) ++slot;
    schedule.slotOf[u] = slot;
    schedule.frameLength = std::max(schedule.frameLength, slot + 1);
  }
  NSMODEL_ASSERT(schedule.frameLength >= 1 || n == 0);
  if (schedule.frameLength == 0) schedule.frameLength = 1;
  return schedule;
}

}  // namespace nsmodel::net
