// TDMA slot assignment — the second CFM implementation of Section 3.2.1.
//
// "TDMA exploits the time diversity by assigning to each sensor node a
// specific time slot that is ideally unique in its neighborhood."  For
// the Assumption-6 collision rule, "unique in its neighbourhood" must
// mean unique within *distance two*: if two transmitters share a slot and
// share a neighbour, that neighbour loses both packets.  A distance-2
// vertex colouring therefore yields a provably collision-free schedule:
// run the slotted broadcast machinery with slotsPerPhase = frame length
// and every node transmitting in its own colour's slot, and the CAM
// channel can never destroy a reception (property-tested).
//
// The price is time: the frame must be at least as long as the largest
// distance-2 neighbourhood, which grows linearly with density — the
// "additional hardware and more complicated coordination" trade-off the
// paper describes, quantified by bench/tdma_vs_csma.
#pragma once

#include <vector>

#include "net/topology.hpp"

namespace nsmodel::net {

/// A TDMA schedule: one slot per node, valid within a frame.
struct TdmaSchedule {
  std::vector<int> slotOf;  ///< per-node slot in [0, frameLength)
  int frameLength = 0;      ///< number of slots per frame

  /// True when no two distinct nodes at graph distance <= 2 share a slot
  /// (the collision-freedom condition under Assumption 6).
  bool isValidFor(const Topology& topology) const;
};

/// Greedy distance-2 colouring in descending-degree order. The frame
/// length is (number of colours used); it is at most
/// max_{v} |N2(v)| + 1 and typically close to the largest two-hop
/// neighbourhood.
TdmaSchedule buildTdmaSchedule(const Topology& topology);

}  // namespace nsmodel::net
