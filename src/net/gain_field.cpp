#include "net/gain_field.hpp"

#include <cmath>

#include "geom/spatial_grid.hpp"
#include "support/thread_pool.hpp"

namespace nsmodel::net {

namespace {

/// Same fan-out point as Topology's adjacency build: below it the serial
/// single-allocation path wins on fixed costs, above it (sharded-engine
/// deployments) the duplicated counting pass is cheap against the
/// speedup.
constexpr std::size_t kParallelBuildThreshold = 65536;

}  // namespace

GainField::GainField(const std::vector<geom::Vec2>& positions,
                     const geom::SpatialGrid& grid, double range,
                     GainFieldSpec spec)
    : spec_(spec) {
  NSMODEL_CHECK(range > 0.0, "transmission range must be positive");
  NSMODEL_CHECK(std::isfinite(spec.alpha) && spec.alpha > 0.0,
                "SINR pathloss exponent alpha must be positive and finite");
  NSMODEL_CHECK(std::isfinite(spec.cutoffFactor) && spec.cutoffFactor >= 1.0,
                "SINR far-field cutoff must be a finite factor >= 1");
  cutoffRadius_ = spec.cutoffFactor * range;
  const double exponent = -0.5 * spec.alpha;  // pow over squared distances
  minDecodeGain_ = std::pow(range * range, exponent);
  // Near-field clamp at d0 = 1e-3 * range: gains stay finite however
  // close two nodes land, and the clamp sits far below any distance the
  // disk deployments realise, so it never distorts a real edge.
  const double d0sq = 1e-6 * (range * range);
  const double c2 = cutoffRadius_ * cutoffRadius_;

  const std::size_t n = positions.size();
  offsets_.assign(n + 1, 0);

  // Two passes — count, prefix-sum, fill — in the grid's deterministic
  // strip order, so rows are independent of the chunking and identical
  // between the serial and parallel paths.  Unlike the adjacency build
  // there is no branchless variant: the pow() per accepted edge
  // dominates the distance-test branch either way.
  const auto countRow = [&](std::size_t u) {
    const double cx = positions[u].x;
    const double cy = positions[u].y;
    const auto id = static_cast<NodeId>(u);
    std::size_t degree = 0;
    grid.forEachCandidateStrip(
        positions[u], cutoffRadius_,
        [&](const double* xs, const double* ys, const std::uint32_t* ids,
            std::size_t count) {
          for (std::size_t s = 0; s < count; ++s) {
            const double dx = xs[s] - cx;
            const double dy = ys[s] - cy;
            degree += static_cast<std::size_t>(
                (dx * dx + dy * dy <= c2) & (ids[s] != id));
          }
        });
    return degree;
  };
  const auto fillRow = [&](std::size_t u) {
    const double cx = positions[u].x;
    const double cy = positions[u].y;
    const auto id = static_cast<NodeId>(u);
    std::size_t cursor = offsets_[u];
    grid.forEachCandidateStrip(
        positions[u], cutoffRadius_,
        [&](const double* xs, const double* ys, const std::uint32_t* ids,
            std::size_t count) {
          for (std::size_t s = 0; s < count; ++s) {
            const double dx = xs[s] - cx;
            const double dy = ys[s] - cy;
            const double d2 = dx * dx + dy * dy;
            if (d2 <= c2 && ids[s] != id) {
              ids_[cursor] = ids[s];
              gains_[cursor] = std::pow(d2 < d0sq ? d0sq : d2, exponent);
              ++cursor;
            }
          }
        });
  };

  support::ThreadPool& pool = support::globalPool();
  if (n >= kParallelBuildThreshold && pool.size() >= 2) {
    support::parallelForChunks(0, n, 4096,
                               [&](std::size_t lo, std::size_t hi) {
                                 for (std::size_t u = lo; u < hi; ++u) {
                                   offsets_[u + 1] = countRow(u);
                                 }
                               });
    for (std::size_t u = 0; u < n; ++u) offsets_[u + 1] += offsets_[u];
    ids_.resize(offsets_[n]);
    gains_.resize(offsets_[n]);
    support::parallelForChunks(0, n, 4096,
                               [&](std::size_t lo, std::size_t hi) {
                                 for (std::size_t u = lo; u < hi; ++u) {
                                   fillRow(u);
                                 }
                               });
    return;
  }

  for (std::size_t u = 0; u < n; ++u) {
    offsets_[u + 1] = offsets_[u] + countRow(u);
  }
  ids_.resize(offsets_[n]);
  gains_.resize(offsets_[n]);
  for (std::size_t u = 0; u < n; ++u) fillRow(u);
}

}  // namespace nsmodel::net
