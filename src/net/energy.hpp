// Per-node energy accounting (Assumptions 1 and 4).
//
// Radios are assumed off when idle, so only transmission and reception
// cost energy, and the per-packet cost is identical for both and across
// nodes. The paper's energy metric M counts broadcasts only; the ledger
// additionally tracks receptions so downstream users can charge e_a per
// packet on both sides.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"

namespace nsmodel::net {

/// Per-packet costs. The paper's CFM cost is e_f, CAM's is e_a <= e_f.
struct EnergyCosts {
  double txCost = 1.0;
  double rxCost = 1.0;
};

/// Accumulates transmission/reception counts and energy per node.
class EnergyLedger {
 public:
  EnergyLedger(std::size_t nodeCount, EnergyCosts costs);

  void recordTx(NodeId node);
  void recordRx(NodeId node);

  /// Adds every count of `other` (same node count required) into this
  /// ledger.  Lets the sharded engine keep a private ledger per shard —
  /// the shared totals here would be a data race — and merge them once
  /// the run completes.
  void absorb(const EnergyLedger& other);

  std::uint64_t txCount() const { return totalTx_; }
  std::uint64_t rxCount() const { return totalRx_; }
  std::uint64_t txCount(NodeId node) const;
  std::uint64_t rxCount(NodeId node) const;

  /// Energy spent by one node.
  double energy(NodeId node) const;

  /// Total energy across the network.
  double totalEnergy() const;

  /// Highest per-node energy (the bottleneck node, relevant for lifetime).
  double maxNodeEnergy() const;

  std::size_t nodeCount() const { return tx_.size(); }
  const EnergyCosts& costs() const { return costs_; }

  /// Raw per-node counters, exposed so a run checkpoint can snapshot the
  /// ledger verbatim.
  const std::vector<std::uint32_t>& perNodeTx() const { return tx_; }
  const std::vector<std::uint32_t>& perNodeRx() const { return rx_; }

  /// Replaces every counter with a snapshot taken by perNodeTx/perNodeRx
  /// (same node count required); totals are recomputed.
  void restoreCounts(const std::vector<std::uint32_t>& tx,
                     const std::vector<std::uint32_t>& rx);

 private:
  EnergyCosts costs_;
  std::vector<std::uint32_t> tx_;
  std::vector<std::uint32_t> rx_;
  std::uint64_t totalTx_ = 0;
  std::uint64_t totalRx_ = 0;
};

}  // namespace nsmodel::net
