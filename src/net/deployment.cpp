#include "net/deployment.hpp"

#include <cmath>

#include "geom/disk_sampling.hpp"
#include "support/error.hpp"

namespace nsmodel::net {

Deployment::Deployment(std::vector<geom::Vec2> positions, NodeId source,
                       double fieldRadius)
    : positions_(std::move(positions)),
      source_(source),
      fieldRadius_(fieldRadius) {
  NSMODEL_CHECK(!positions_.empty(), "deployment needs at least one node");
  NSMODEL_CHECK(source_ < positions_.size(), "source id out of range");
  NSMODEL_CHECK(fieldRadius_ > 0.0, "field radius must be positive");
}

Deployment Deployment::uniformDisk(support::Rng& rng, double fieldRadius,
                                   std::size_t count) {
  return uniformDiskWithSource(rng, fieldRadius, count, 0.0);
}

Deployment Deployment::uniformDiskWithSource(support::Rng& rng,
                                             double fieldRadius,
                                             std::size_t count,
                                             double sourceRadiusFraction) {
  NSMODEL_CHECK(count >= 1, "deployment needs at least one node");
  NSMODEL_CHECK(sourceRadiusFraction >= 0.0 && sourceRadiusFraction <= 1.0,
                "source radius fraction must lie in [0, 1]");
  std::vector<geom::Vec2> positions;
  positions.reserve(count);
  positions.emplace_back(sourceRadiusFraction * fieldRadius, 0.0);
  for (std::size_t i = 1; i < count; ++i) {
    positions.push_back(geom::sampleDisk(rng, {0.0, 0.0}, fieldRadius));
  }
  return Deployment(std::move(positions), 0, fieldRadius);
}

Deployment Deployment::paperDisk(support::Rng& rng, int rings,
                                 double ringWidth, double neighborDensity) {
  NSMODEL_CHECK(rings >= 1, "need at least one ring");
  NSMODEL_CHECK(ringWidth > 0.0, "ring width must be positive");
  NSMODEL_CHECK(neighborDensity > 0.0, "rho must be positive");
  // N = delta * pi * (P r)^2 with rho = delta * pi * r^2  =>  N = rho P^2.
  const double n = neighborDensity * static_cast<double>(rings) *
                   static_cast<double>(rings);
  const auto count = static_cast<std::size_t>(std::llround(n));
  return uniformDisk(rng, static_cast<double>(rings) * ringWidth,
                     std::max<std::size_t>(1, count));
}

Deployment Deployment::jitteredGrid(support::Rng& rng, double fieldRadius,
                                    double spacing, double jitter) {
  auto positions =
      geom::sampleJitteredGridDisk(rng, {0.0, 0.0}, fieldRadius, spacing,
                                   jitter);
  NSMODEL_CHECK(!positions.empty(),
                "grid spacing too coarse: no nodes inside the field");
  NodeId best = 0;
  double bestDist = positions[0].normSquared();
  for (std::size_t i = 1; i < positions.size(); ++i) {
    const double d = positions[i].normSquared();
    if (d < bestDist) {
      bestDist = d;
      best = static_cast<NodeId>(i);
    }
  }
  return Deployment(std::move(positions), best, fieldRadius);
}

Deployment Deployment::radialGradientDisk(
    support::Rng& rng, double ringWidth,
    const std::vector<double>& neighborDensityPerRing) {
  NSMODEL_CHECK(ringWidth > 0.0, "ring width must be positive");
  NSMODEL_CHECK(!neighborDensityPerRing.empty(),
                "need at least one ring density");
  std::vector<geom::Vec2> positions;
  positions.emplace_back(0.0, 0.0);  // the source
  for (std::size_t k = 1; k <= neighborDensityPerRing.size(); ++k) {
    const double rho = neighborDensityPerRing[k - 1];
    NSMODEL_CHECK(rho >= 0.0, "ring densities must be non-negative");
    // N_k = delta_k * C_k with delta_k = rho_k / (pi r^2) and
    // C_k = pi r^2 (2k - 1).
    const auto count = static_cast<std::size_t>(
        std::llround(rho * (2.0 * static_cast<double>(k) - 1.0)));
    const double inner = static_cast<double>(k - 1) * ringWidth;
    const double outer = static_cast<double>(k) * ringWidth;
    for (std::size_t i = 0; i < count; ++i) {
      positions.push_back(inner == 0.0
                              ? geom::sampleDisk(rng, {0.0, 0.0}, outer)
                              : geom::sampleAnnulus(rng, {0.0, 0.0}, inner,
                                                    outer));
    }
  }
  const double fieldRadius =
      static_cast<double>(neighborDensityPerRing.size()) * ringWidth;
  return Deployment(std::move(positions), 0, fieldRadius);
}

const geom::Vec2& Deployment::position(NodeId id) const {
  NSMODEL_CHECK(id < positions_.size(), "node id out of range");
  return positions_[id];
}

int Deployment::ringOf(NodeId id, double ringWidth) const {
  NSMODEL_CHECK(ringWidth > 0.0, "ring width must be positive");
  const double dist = position(id).norm();
  if (dist == 0.0) return 1;
  return static_cast<int>(std::ceil(dist / ringWidth));
}

}  // namespace nsmodel::net
