// Baseline-ISA build of the slot-resolution inner loops.  Compiled with
// the project's ordinary flags (no -march), so the binary runs on any
// machine the rest of the build runs on.
#define NSMODEL_SLOT_KERNEL_NS generic
#include "net/slot_kernel_impl.inl"
