// Data-parallel inner loops of slot resolution, with runtime ISA dispatch.
//
// The CAM/CAM-CS channels spend almost all of their time in two loops over
// CSR neighbour rows: the *bump* pass (one random-indexed
// read-modify-write per (transmitter, neighbour) pair, accumulating the
// packed count-xor-sender word of channel.cpp) and the *scan* pass (one
// random-indexed read-and-clear per touched receiver, compressing the
// sole-sender winners).  This header exposes those two loops as free
// functions behind a table of function pointers so they can be compiled
// twice — once at the portable baseline and once with the build machine's
// full ISA (`-march=native`, AVX-512 gather/scatter on capable parts) —
// and selected once at startup.
//
// Kernel contracts (shared by every implementation):
//
//  * bumpRow advances each id's count half by `add` and XORs `senderBits`
//    into its sender half; ids whose count half was zero are appended to
//    `touched`.  Ids within one call are distinct (they are one CSR row),
//    which is what makes the vector gather/modify/scatter race-free.
//    Implementations may *saturate*: once an entry's count half reaches 2
//    its word may be left frozen, because callers only ever distinguish
//    counts 0 / 1 / "2 or more" and read the sender half at count 1.
//  * scanTouched reads and zeroes each touched entry, appends the
//    (receiver, sender) of every count==1 entry to the output arrays in
//    touched order, and adds the rest to `*lost`.
//
// All implementations produce bit-identical simulation results; the
// packed-word scatter in channel.cpp (the original implementation) is
// kept as the semantics oracle and remains selectable.  Selection:
// NSMODEL_SLOT_KERNEL=oracle|generic|native|auto (default auto = the
// fastest available), overridable programmatically for tests and benches.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/packet.hpp"

namespace nsmodel::net {

/// Which slot-resolution implementation resolves CAM/CAM-CS slots.
enum class SlotKernelIsa {
  Oracle,   ///< the reference scatter loop inside channel.cpp
  Generic,  ///< kernel TU built at the portable baseline ISA
  Native,   ///< kernel TU built with -march=native (when configured in)
};

/// Lower-case name ("oracle", "generic", "native").
const char* slotKernelIsaName(SlotKernelIsa isa);

/// The dispatched inner loops.  Every entry of every table is non-null;
/// the Oracle's point at plain scalar reference loops.  Channels still
/// special-case isa == Oracle to their original packed-scatter path
/// (dispatch is on `isa`, not the pointers); the batched replication
/// driver in sim/experiment_batch.cpp uses the tables uniformly, so
/// NSMODEL_SLOT_KERNEL=oracle runs it on unvectorized reference code.
struct SlotKernelOps {
  SlotKernelIsa isa;
  const char* name;
  /// Bumps every id of one CSR row; returns the new touched count.
  /// `touched` must have capacity nodeCount + 1: the branchless scalar
  /// tail writes touched[tc] before deciding whether to keep it, so once
  /// every node is on the list the scratch write lands one slot past it.
  /// `prefetchIds`/`prefetchN` name the row the caller will bump next (or
  /// null/0): rows of distinct transmitters are scattered across the CSR,
  /// so streaming the next row into cache while this row's gathers retire
  /// hides the row-to-row latency hardware prefetch cannot predict.
  std::size_t (*bumpRow)(std::uint32_t* entries, NodeId* touched,
                         std::size_t touchedCount, const NodeId* ids,
                         std::size_t n, std::uint32_t senderBits,
                         std::uint32_t add, const NodeId* prefetchIds,
                         std::size_t prefetchN);
  /// Consumes touched[0, n): winners compress into receivers/senders (in
  /// touched order), losers add to *lost; every entry is zeroed.
  /// Returns the number of winners.
  std::size_t (*scanTouched)(std::uint32_t* entries, const NodeId* touched,
                             std::size_t n, NodeId* receivers,
                             NodeId* senders, std::size_t* lost);
  /// Read-only variant of scanTouched for the batched driver: identical
  /// winner selection and order, but the entries are left untouched so
  /// the caller can clear the table in bulk afterwards — a memset beats
  /// the per-entry random-access zeroing once most nodes were touched.
  std::size_t (*scanTouchedRO)(const std::uint32_t* entries,
                               const NodeId* touched, std::size_t n,
                               NodeId* receivers, NodeId* senders,
                               std::size_t* lost);
  /// Compresses the ascending indices i in [0, n) whose receiver's packed
  /// lane-status word makes the delivery actionable: first receptions
  /// ((status & 1) == 0) and duplicates with a live pending transmission
  /// ((status & 7) == 3).  Returns the count.  `outIdx` needs capacity n.
  /// Status-word layout: sim/experiment_batch.cpp.  Only valid when the
  /// run has no per-delivery side effects beyond the status machine (no
  /// link-loss plan, no energy ledger) — the caller checks.
  std::size_t (*filterActionable)(const std::uint32_t* status,
                                  const NodeId* receivers, std::size_t n,
                                  std::uint32_t* outIdx);
};

/// Whether `isa` can run here (Native needs the TU configured in at build
/// time *and* the CPU to support the build machine's ISA).
bool slotKernelAvailable(SlotKernelIsa isa);

/// The selection NSMODEL_SLOT_KERNEL/auto resolves to on this machine.
/// Throws ConfigError on an unknown value or an unavailable explicit
/// choice.
SlotKernelIsa defaultSlotKernel();

/// The currently selected kernel (resolves defaultSlotKernel() on first
/// use).  Channels reload this on every resolved slot — one relaxed
/// atomic load — so tests can flip implementations between runs.
const SlotKernelOps& slotKernelOps();

/// Overrides the selection process-wide.  Throws ConfigError if `isa` is
/// not available.
void setSlotKernel(SlotKernelIsa isa);

}  // namespace nsmodel::net
