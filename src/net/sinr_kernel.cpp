// Runtime dispatch for the SINR accumulation kernel (see sinr_kernel.hpp).
#include "net/sinr_kernel.hpp"

#include "support/error.hpp"

namespace nsmodel::net {

namespace detail {
namespace sinr_generic {
std::size_t accumulatePower(double* totals, NodeId* gainTouched,
                            std::size_t touchedCount, const NodeId* ids,
                            const double* gains, std::size_t n);
std::size_t accumulatePowerTx(double* totals, double* bestGain,
                              NodeId* bestSender, NodeId* gainTouched,
                              std::size_t touchedCount, const NodeId* ids,
                              const double* gains, std::size_t n,
                              NodeId sender, double minDecodeGain);
}  // namespace sinr_generic
#if NSMODEL_SLOT_KERNEL_NATIVE
namespace sinr_native {
std::size_t accumulatePower(double* totals, NodeId* gainTouched,
                            std::size_t touchedCount, const NodeId* ids,
                            const double* gains, std::size_t n);
std::size_t accumulatePowerTx(double* totals, double* bestGain,
                              NodeId* bestSender, NodeId* gainTouched,
                              std::size_t touchedCount, const NodeId* ids,
                              const double* gains, std::size_t n,
                              NodeId sender, double minDecodeGain);
}  // namespace sinr_native
#endif

// Scalar reference loops for the Oracle table — the plainest statement
// of the accumulation semantics, and what the micro_sweep SINR section
// measures the vector TUs against.
namespace sinr_oracle {
namespace {
std::size_t accumulatePower(double* totals, NodeId* gainTouched,
                            std::size_t touchedCount, const NodeId* ids,
                            const double* gains, std::size_t n) {
  std::size_t tc = touchedCount;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node = ids[i];
    const double before = totals[node];
    if (before == 0.0) gainTouched[tc++] = node;
    totals[node] = before + gains[i];
  }
  return tc;
}

std::size_t accumulatePowerTx(double* totals, double* bestGain,
                              NodeId* bestSender, NodeId* gainTouched,
                              std::size_t touchedCount, const NodeId* ids,
                              const double* gains, std::size_t n,
                              NodeId sender, double minDecodeGain) {
  std::size_t tc = touchedCount;
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId node = ids[i];
    const double gain = gains[i];
    const double before = totals[node];
    if (before == 0.0) gainTouched[tc++] = node;
    totals[node] = before + gain;
    if (gain >= minDecodeGain && gain > bestGain[node]) {
      bestGain[node] = gain;
      bestSender[node] = sender;
    }
  }
  return tc;
}
}  // namespace
}  // namespace sinr_oracle
}  // namespace detail

namespace {

const SinrKernelOps kOracleOps{SlotKernelIsa::Oracle, "oracle",
                               &detail::sinr_oracle::accumulatePower,
                               &detail::sinr_oracle::accumulatePowerTx};
const SinrKernelOps kGenericOps{SlotKernelIsa::Generic, "generic",
                                &detail::sinr_generic::accumulatePower,
                                &detail::sinr_generic::accumulatePowerTx};
#if NSMODEL_SLOT_KERNEL_NATIVE
const SinrKernelOps kNativeOps{SlotKernelIsa::Native, "native",
                               &detail::sinr_native::accumulatePower,
                               &detail::sinr_native::accumulatePowerTx};
#endif

}  // namespace

const SinrKernelOps& sinrKernelOpsFor(SlotKernelIsa isa) {
  switch (isa) {
    case SlotKernelIsa::Oracle:
      return kOracleOps;
    case SlotKernelIsa::Generic:
      return kGenericOps;
    case SlotKernelIsa::Native:
#if NSMODEL_SLOT_KERNEL_NATIVE
      NSMODEL_CHECK(slotKernelAvailable(SlotKernelIsa::Native),
                    "native SINR kernel requested on a CPU without its ISA");
      return kNativeOps;
#else
      break;
#endif
  }
  throw ConfigError("native SINR kernel requested but not built in");
}

const SinrKernelOps& sinrKernelOps() {
  return sinrKernelOpsFor(slotKernelOps().isa);
}

}  // namespace nsmodel::net
