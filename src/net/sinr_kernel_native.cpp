// Build-machine-ISA build of the SINR accumulation inner loops.  CMake
// compiles this single translation unit with -march=native under the
// same NSMODEL_KERNEL_NATIVE option as slot_kernel_native.cpp;
// sinr_kernel.cpp only dispatches here when the slot-kernel selection
// resolved to Native, which implies runtimeSupported() confirmed the
// running CPU has every feature macro the -march=native TUs carry.
#define NSMODEL_SINR_KERNEL_NS sinr_native
#include "net/sinr_kernel_impl.inl"
