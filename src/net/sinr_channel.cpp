#include "net/sinr_channel.hpp"

#include <algorithm>

#include "net/gain_field.hpp"
#include "net/sinr_kernel.hpp"
#include "net/slot_kernel.hpp"
#include "support/error.hpp"

namespace nsmodel::net {

SinrChannel::SinrChannel(const SinrParams& params) : params_(params) {
  params_.validate();
}

SlotOutcome SinrChannel::resolveSlot(const Topology& topology,
                                     const std::vector<NodeId>& transmitters,
                                     const DeliverFn& deliver) {
  return resolveFull(topology, transmitters, nullptr, deliver);
}

SlotOutcome SinrChannel::resolveSlot(const Topology& topology,
                                     const std::vector<NodeId>& transmitters,
                                     const std::vector<NodeId>& interferers,
                                     const DeliverFn& deliver) {
  if (interferers.empty()) {
    return resolveFull(topology, transmitters, nullptr, deliver);
  }
  return resolveFull(topology, transmitters, &interferers, deliver);
}

SlotOutcome SinrChannel::resolveFull(const Topology& topology,
                                     const std::vector<NodeId>& transmitters,
                                     const std::vector<NodeId>* interferers,
                                     const DeliverFn& deliver) {
  NSMODEL_CHECK(topology.hasGainField(),
                "SinrChannel needs a topology built with a GainFieldSpec");
  const GainField& field = topology.gainField();
  NSMODEL_CHECK(field.spec().alpha == params_.alpha &&
                    field.spec().cutoffFactor == params_.cutoff,
                "topology gain field was built with different SINR "
                "alpha/cutoff than this channel");
  const std::size_t n = topology.nodeCount();
  scratch_.ensure(n);
  if (totals_.size() < n) {
    totals_.resize(n, 0.0);
    bestGain_.resize(n, 0.0);
    bestSender_.resize(n, 0);
    gainTouched_.resize(n + 1);  // sentinel slot, see sinr_kernel.hpp
  }

  // Merge transmitters and drift interferers into one ascending-id
  // emitter list.  Ascending order pins the floating-point accumulation
  // order (and the bestGain tie-break) to a canonical sequence every
  // backend — flat, batched, sharded at any shard count — reproduces.
  emitters_.clear();
  for (NodeId tx : transmitters) emitters_.emplace_back(tx, 1);
  if (interferers != nullptr) {
    for (NodeId ix : *interferers) emitters_.emplace_back(ix, 0);
  }
  std::sort(emitters_.begin(), emitters_.end());

  const SlotKernelOps& ops = slotKernelOps();
  const SinrKernelOps& sops = sinrKernelOpsFor(ops.isa);

  // Pass 1 — candidates: count-only bumps (senderBits = 0, so the 16-bit
  // sender packing never happens and node ids are unrestricted) over the
  // transmission-range rows of every emitter.  The bias excludes the
  // emitters themselves (half duplex); the touched list that falls out
  // is exactly the candidate set, in a deterministic first-touch order.
  std::uint32_t* entries = scratch_.entries.data();
  interference::biasTransmitters(entries, transmitters, interferers);
  std::size_t tc = 0;
  const std::size_t emitterCount = emitters_.size();
  for (std::size_t t = 0; t < emitterCount; ++t) {
    const NeighborSpan nbs = topology.neighbors(emitters_[t].first);
    const NeighborSpan next = t + 1 < emitterCount
                                  ? topology.neighbors(emitters_[t + 1].first)
                                  : NeighborSpan{};
    tc = ops.bumpRow(entries, scratch_.touched.data(), tc, nbs.data(),
                     nbs.size(), 0, 1, next.data(), next.size());
  }

  // Pass 2 — power: push every emitter's gain row into the per-receiver
  // accumulators; transmitter rows also contend for the best decodable
  // signal.  Emitters are already ascending.
  double* totals = totals_.data();
  double* bestGain = bestGain_.data();
  NodeId* bestSender = bestSender_.data();
  NodeId* gainTouched = gainTouched_.data();
  const double minDecodeGain = field.minDecodeGain();
  std::size_t gc = 0;
  for (const auto& [emitter, isTx] : emitters_) {
    const GainField::Row row = field.row(emitter);
    if (isTx != 0) {
      gc = sops.accumulatePowerTx(totals, bestGain, bestSender, gainTouched,
                                  gc, row.ids, row.gains, row.size, emitter,
                                  minDecodeGain);
    } else {
      gc = sops.accumulatePower(totals, gainTouched, gc, row.ids, row.gains,
                                row.size);
    }
  }

  // Pass 3 — capture scan over the candidates, in touched order.
  std::size_t lost = 0;
  const std::size_t wins = sinrCaptureScan(
      totals, bestGain, bestSender, scratch_.touched.data(), tc,
      params_.beta, params_.noise, scratch_.receivers.data(),
      scratch_.senders.data(), &lost);

  // Restore the all-zero invariants before the delivery callbacks run
  // (a callback could re-enter another channel, never this one).
  for (std::size_t i = 0; i < tc; ++i) entries[scratch_.touched[i]] = 0;
  interference::biasClear(entries, transmitters, interferers);
  for (std::size_t i = 0; i < gc; ++i) {
    const NodeId node = gainTouched[i];
    totals[node] = 0.0;
    bestGain[node] = 0.0;
  }

  SlotOutcome outcome;
  for (std::size_t i = 0; i < wins; ++i) {
    deliver(scratch_.receivers[i], scratch_.senders[i]);
  }
  outcome.deliveries = wins;
  outcome.lostReceivers = lost;
  return outcome;
}

}  // namespace nsmodel::net
