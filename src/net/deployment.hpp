// Network deployments (Section 4: uniform deployment in a disk of radius
// P*r with the source at the centre), plus alternatives for ablations.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"
#include "net/packet.hpp"
#include "support/rng.hpp"

namespace nsmodel::net {

/// Node positions plus the designated source.
class Deployment {
 public:
  Deployment(std::vector<geom::Vec2> positions, NodeId source,
             double fieldRadius);

  /// The paper's deployment: `count` nodes uniform in a disk of radius
  /// `fieldRadius`; node 0 is the source, pinned at the centre.
  /// `count` includes the source and must be >= 1.
  static Deployment uniformDisk(support::Rng& rng, double fieldRadius,
                                std::size_t count);

  /// Like uniformDisk, but the source (node 0) is pinned at radial
  /// distance `sourceRadiusFraction * fieldRadius` from the centre
  /// (fraction in [0, 1]; 0 recovers the paper's central placement).
  /// Used to probe the analysis's centred-source assumption.
  static Deployment uniformDiskWithSource(support::Rng& rng,
                                          double fieldRadius,
                                          std::size_t count,
                                          double sourceRadiusFraction);

  /// The paper's configuration expressed in its own parameters: field
  /// radius P*r, expected neighbour count rho = delta*pi*r^2, hence
  /// N = rho * P^2 nodes (rounded).
  static Deployment paperDisk(support::Rng& rng, int rings, double ringWidth,
                              double neighborDensity);

  /// Jittered-grid deployment clipped to the disk (grid ablation; cf. the
  /// percolation-based grid study the paper cites). The node closest to the
  /// centre becomes the source.
  static Deployment jitteredGrid(support::Rng& rng, double fieldRadius,
                                 double spacing, double jitter);

  /// Radially non-uniform deployment: ring k (width `ringWidth`) holds
  /// round(rho_k * (2k - 1)) nodes placed uniformly within the ring, where
  /// rho_k = neighborDensityPerRing[k-1] is that ring's local average
  /// neighbour count. Models the spatial density variation the paper's
  /// Section 6 raises. Node 0 is the source, pinned at the centre.
  static Deployment radialGradientDisk(
      support::Rng& rng, double ringWidth,
      const std::vector<double>& neighborDensityPerRing);

  std::size_t nodeCount() const { return positions_.size(); }
  const std::vector<geom::Vec2>& positions() const { return positions_; }
  const geom::Vec2& position(NodeId id) const;
  NodeId source() const { return source_; }
  double fieldRadius() const { return fieldRadius_; }

  /// 1-based index of the concentric ring of width `ringWidth` containing
  /// the node (ring k covers radii ((k-1)*w, k*w]); 1 for the centre.
  int ringOf(NodeId id, double ringWidth) const;

 private:
  std::vector<geom::Vec2> positions_;
  NodeId source_;
  double fieldRadius_;
};

}  // namespace nsmodel::net
