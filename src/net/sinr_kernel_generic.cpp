// Baseline-ISA build of the SINR accumulation inner loops.  Compiled
// with the project's ordinary flags (no -march), so the binary runs on
// any machine the rest of the build runs on.
#define NSMODEL_SINR_KERNEL_NS sinr_generic
#include "net/sinr_kernel_impl.inl"
