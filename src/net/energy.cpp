#include "net/energy.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace nsmodel::net {

EnergyLedger::EnergyLedger(std::size_t nodeCount, EnergyCosts costs)
    : costs_(costs), tx_(nodeCount, 0), rx_(nodeCount, 0) {
  NSMODEL_CHECK(nodeCount >= 1, "ledger needs at least one node");
  NSMODEL_CHECK(costs.txCost >= 0.0 && costs.rxCost >= 0.0,
                "energy costs must be non-negative");
}

void EnergyLedger::recordTx(NodeId node) {
  NSMODEL_CHECK(node < tx_.size(), "node id out of range");
  ++tx_[node];
  ++totalTx_;
}

void EnergyLedger::recordRx(NodeId node) {
  NSMODEL_CHECK(node < rx_.size(), "node id out of range");
  ++rx_[node];
  ++totalRx_;
}

void EnergyLedger::absorb(const EnergyLedger& other) {
  NSMODEL_CHECK(other.tx_.size() == tx_.size(),
                "cannot absorb a ledger of a different node count");
  for (std::size_t i = 0; i < tx_.size(); ++i) {
    tx_[i] += other.tx_[i];
    rx_[i] += other.rx_[i];
  }
  totalTx_ += other.totalTx_;
  totalRx_ += other.totalRx_;
}

void EnergyLedger::restoreCounts(const std::vector<std::uint32_t>& tx,
                                 const std::vector<std::uint32_t>& rx) {
  NSMODEL_CHECK(tx.size() == tx_.size() && rx.size() == rx_.size(),
                "cannot restore counts of a different node count");
  tx_ = tx;
  rx_ = rx;
  totalTx_ = 0;
  totalRx_ = 0;
  for (std::size_t i = 0; i < tx_.size(); ++i) {
    totalTx_ += tx_[i];
    totalRx_ += rx_[i];
  }
}

std::uint64_t EnergyLedger::txCount(NodeId node) const {
  NSMODEL_CHECK(node < tx_.size(), "node id out of range");
  return tx_[node];
}

std::uint64_t EnergyLedger::rxCount(NodeId node) const {
  NSMODEL_CHECK(node < rx_.size(), "node id out of range");
  return rx_[node];
}

double EnergyLedger::energy(NodeId node) const {
  return static_cast<double>(txCount(node)) * costs_.txCost +
         static_cast<double>(rxCount(node)) * costs_.rxCost;
}

double EnergyLedger::totalEnergy() const {
  return static_cast<double>(totalTx_) * costs_.txCost +
         static_cast<double>(totalRx_) * costs_.rxCost;
}

double EnergyLedger::maxNodeEnergy() const {
  double best = 0.0;
  for (std::size_t i = 0; i < tx_.size(); ++i) {
    best = std::max(best, energy(static_cast<NodeId>(i)));
  }
  return best;
}

}  // namespace nsmodel::net
