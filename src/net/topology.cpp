#include "net/topology.hpp"

#include "geom/spatial_grid.hpp"
#include "support/error.hpp"

namespace nsmodel::net {

Topology::Csr Topology::buildAdjacency(
    const std::vector<geom::Vec2>& positions, const geom::SpatialGrid& grid,
    double radius) {
  const std::size_t n = positions.size();
  Csr table;
  table.offsets.assign(n + 1, 0);
  // One grid pass per node, appending neighbours in visit order to a
  // reusable per-thread scratch block; running totals land directly in
  // `offsets`, so no separate counting or prefix-sum pass is needed.  The
  // scratch grows to the sweep's high-water mark once and is then
  // allocation-free, leaving exactly two allocations per table (offsets
  // and the right-sized ids copy).
  //
  // The accept loop is branchless: every candidate id is stored and the
  // cursor advances only on a hit.  Only ~pi/9 of the candidates in the
  // 3x3 cell neighbourhood pass the distance test, so a conditional
  // branch here mispredicts constantly — and this loop dominates
  // scenario construction for the whole Monte-Carlo sweep.
  static thread_local std::vector<NodeId> scratch;
  std::size_t used = 0;
  for (NodeId id = 0; id < n; ++id) {
    const double cx = positions[id].x;
    const double cy = positions[id].y;
    const double r2 = radius * radius;
    grid.forEachCandidateStrip(
        positions[id], radius,
        [&](const double* xs, const double* ys, const std::uint32_t* ids,
            std::size_t count) {
          if (scratch.size() < used + count) {
            scratch.resize(std::max(scratch.size() * 2, used + count));
          }
          NodeId* out = scratch.data();
          for (std::size_t s = 0; s < count; ++s) {
            const double dx = xs[s] - cx;
            const double dy = ys[s] - cy;
            out[used] = ids[s];
            used += static_cast<std::size_t>(
                (dx * dx + dy * dy <= r2) & (ids[s] != id));
          }
        });
    table.offsets[id + 1] = used;
  }
  table.ids.assign(scratch.begin(), scratch.begin() + used);
  return table;
}

Topology::Topology(const Deployment& deployment, double range,
                   double csFactor)
    : range_(range) {
  NSMODEL_CHECK(range > 0.0, "transmission range must be positive");
  NSMODEL_CHECK(csFactor == 0.0 || csFactor > 1.0,
                "carrier-sense factor must be 0 (off) or > 1");
  const auto& positions = deployment.positions();
  nodeCount_ = positions.size();

  const auto grid = geom::SpatialGrid::build(positions, range);
  links_ = buildAdjacency(positions, grid, range);

  if (csFactor > 1.0) {
    csRange_ = csFactor * range;
    csLinks_ = buildAdjacency(positions, grid, csRange_);
  }
}

double Topology::carrierSenseRange() const {
  NSMODEL_CHECK(hasCarrierSense(), "carrier sensing not configured");
  return csRange_;
}

double Topology::averageDegree() const {
  if (nodeCount_ == 0) return 0.0;
  return static_cast<double>(links_.ids.size()) /
         static_cast<double>(nodeCount_);
}

std::size_t Topology::reachableCount(NodeId start) const {
  NSMODEL_CHECK(start < nodeCount_, "node id out of range");
  std::vector<bool> seen(nodeCount_, false);
  std::vector<NodeId> frontier{start};
  seen[start] = true;
  std::size_t count = 1;
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const NodeId u = frontier[head];
    for (NodeId v : links_.row(u)) {
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        frontier.push_back(v);
      }
    }
  }
  return count;
}

bool Topology::isConnected() const {
  return reachableCount(0) == nodeCount_;
}

}  // namespace nsmodel::net
