#include "net/topology.hpp"

#include "geom/spatial_grid.hpp"
#include "support/error.hpp"
#include "support/thread_pool.hpp"

namespace nsmodel::net {

namespace {

/// Node count above which the CSR build fans out over the shared pool.
/// Below it the two-pass parallel build loses to the single-pass serial
/// one on fixed costs (the sweep builds thousands of ~10^3-node tables);
/// above it — the sharded engine's million-node deployments — the serial
/// build is the dominant setup cost and the counting pass's duplicated
/// distance tests are cheap against the parallel speedup.
constexpr std::size_t kParallelBuildThreshold = 65536;

/// Capacity bound for the reusable thread-local scratch, in entries
/// (4 MiB of ids = ~4.2M entries).  A million-node build at rho=140
/// would otherwise leave a ~600 MB high-water-mark allocation pinned to
/// the thread for its lifetime; any build whose scratch grew past this
/// releases the block afterwards.  Sweep-sized builds (thousands of
/// nodes) stay far below the bound and keep the allocation-free reuse.
constexpr std::size_t kScratchShrinkEntries = std::size_t{1} << 22;

/// Branchless accept over one candidate strip: stores every candidate,
/// advances the cursor only on a hit.  Only ~pi/9 of the candidates in
/// the 3x3 cell neighbourhood pass the distance test, so a conditional
/// branch here mispredicts constantly — and this loop dominates scenario
/// construction for the whole Monte-Carlo sweep.
inline std::size_t acceptStrip(NodeId* out, std::size_t used, NodeId id,
                               double cx, double cy, double r2,
                               const double* xs, const double* ys,
                               const std::uint32_t* ids, std::size_t count) {
  for (std::size_t s = 0; s < count; ++s) {
    const double dx = xs[s] - cx;
    const double dy = ys[s] - cy;
    out[used] = ids[s];
    used += static_cast<std::size_t>(
        (dx * dx + dy * dy <= r2) & (ids[s] != id));
  }
  return used;
}

/// Counting-only variant for the parallel build's first pass.
inline std::size_t countStrip(NodeId id, double cx, double cy, double r2,
                              const double* xs, const double* ys,
                              const std::uint32_t* ids, std::size_t count) {
  std::size_t used = 0;
  for (std::size_t s = 0; s < count; ++s) {
    const double dx = xs[s] - cx;
    const double dy = ys[s] - cy;
    used += static_cast<std::size_t>(
        (dx * dx + dy * dy <= r2) & (ids[s] != id));
  }
  return used;
}

}  // namespace

Topology::Csr Topology::buildAdjacency(
    const std::vector<geom::Vec2>& positions, const geom::SpatialGrid& grid,
    double radius) {
  const std::size_t n = positions.size();
  const double r2 = radius * radius;
  Csr table;
  table.offsets.assign(n + 1, 0);

  support::ThreadPool& pool = support::globalPool();
  if (n >= kParallelBuildThreshold && pool.size() >= 2) {
    // Two-pass parallel build: a parallel counting pass fills per-node
    // degrees, a serial prefix sum turns them into offsets, and a
    // parallel fill pass writes each node's row into its final slot.
    // Candidate visit order per node is identical to the serial path's,
    // so the resulting CSR is byte-identical to it (and the choice of
    // path machine-independent for golden traces).
    support::parallelForChunks(0, n, 4096, [&](std::size_t lo,
                                               std::size_t hi) {
      for (std::size_t u = lo; u < hi; ++u) {
        const auto id = static_cast<NodeId>(u);
        const double cx = positions[u].x;
        const double cy = positions[u].y;
        std::size_t degree = 0;
        grid.forEachCandidateStrip(
            positions[u], radius,
            [&](const double* xs, const double* ys, const std::uint32_t* ids,
                std::size_t count) {
              degree += countStrip(id, cx, cy, r2, xs, ys, ids, count);
            });
        table.offsets[u + 1] = degree;
      }
    });
    for (std::size_t u = 0; u < n; ++u) {
      table.offsets[u + 1] += table.offsets[u];
    }
    table.ids.resize(table.offsets[n]);
    support::parallelForChunks(0, n, 4096, [&](std::size_t lo,
                                               std::size_t hi) {
      NodeId* base = table.ids.data();
      const std::size_t chunkEnd = table.offsets[hi];
      for (std::size_t u = lo; u < hi; ++u) {
        const auto id = static_cast<NodeId>(u);
        const double cx = positions[u].x;
        const double cy = positions[u].y;
        std::size_t cursor = table.offsets[u];
        if (table.offsets[u + 1] < chunkEnd) {
          // The branchless store may spill one entry past the row, into
          // the first slot of the chunk's next non-empty row; that row
          // is filled later by this same chunk, so the spill is always
          // overwritten.
          grid.forEachCandidateStrip(
              positions[u], radius,
              [&](const double* xs, const double* ys,
                  const std::uint32_t* ids, std::size_t count) {
                cursor = acceptStrip(base, cursor, id, cx, cy, r2, xs, ys,
                                     ids, count);
              });
        } else {
          // No later entries in this chunk: a spill would cross into
          // another chunk's territory (a data race) or past the array,
          // so take the branchy loop.
          grid.forEachCandidateStrip(
              positions[u], radius,
              [&](const double* xs, const double* ys,
                  const std::uint32_t* ids, std::size_t count) {
                for (std::size_t s = 0; s < count; ++s) {
                  const double dx = xs[s] - cx;
                  const double dy = ys[s] - cy;
                  if (dx * dx + dy * dy <= r2 && ids[s] != id) {
                    base[cursor++] = ids[s];
                  }
                }
              });
        }
      }
    });
    return table;
  }

  // Serial single-pass build: one grid pass per node, appending
  // neighbours in visit order to a reusable per-thread scratch block;
  // running totals land directly in `offsets`, so no separate counting
  // or prefix-sum pass is needed.  The scratch grows to the sweep's
  // high-water mark once and is then allocation-free, leaving exactly
  // two allocations per table (offsets and the right-sized ids copy).
  static thread_local std::vector<NodeId> scratch;
  std::size_t used = 0;
  for (NodeId id = 0; id < n; ++id) {
    const double cx = positions[id].x;
    const double cy = positions[id].y;
    grid.forEachCandidateStrip(
        positions[id], radius,
        [&](const double* xs, const double* ys, const std::uint32_t* ids,
            std::size_t count) {
          if (scratch.size() < used + count) {
            scratch.resize(std::max(scratch.size() * 2, used + count));
          }
          used = acceptStrip(scratch.data(), used, id, cx, cy, r2, xs, ys,
                             ids, count);
        });
    table.offsets[id + 1] = used;
  }
  table.ids.assign(scratch.begin(), scratch.begin() + used);
  if (scratch.capacity() > kScratchShrinkEntries) {
    // A huge single-run build inflated the scratch; release it rather
    // than pin hundreds of megabytes to this thread until process exit.
    scratch.clear();
    scratch.shrink_to_fit();
  }
  return table;
}

Topology::Topology(const Deployment& deployment, double range,
                   double csFactor)
    : range_(range) {
  NSMODEL_CHECK(range > 0.0, "transmission range must be positive");
  NSMODEL_CHECK(csFactor == 0.0 || csFactor > 1.0,
                "carrier-sense factor must be 0 (off) or > 1");
  const auto& positions = deployment.positions();
  nodeCount_ = positions.size();

  const auto grid = geom::SpatialGrid::build(positions, range);
  links_ = buildAdjacency(positions, grid, range);

  if (csFactor > 1.0) {
    csRange_ = csFactor * range;
    csLinks_ = buildAdjacency(positions, grid, csRange_);
  }
}

Topology::Topology(const Deployment& deployment, double range,
                   double csFactor, const GainFieldSpec& sinr)
    : Topology(deployment, range, csFactor) {
  // The delegated ctor's grid is gone; rebuilding it is O(n) against the
  // O(n * rho * cutoff^2) gain pass and keeps the adjacency path
  // untouched for the (overwhelmingly common) non-SINR builds.
  const auto& positions = deployment.positions();
  const auto grid = geom::SpatialGrid::build(positions, range);
  gainField_ =
      std::make_shared<const GainField>(positions, grid, range, sinr);
}

double Topology::carrierSenseRange() const {
  NSMODEL_CHECK(hasCarrierSense(), "carrier sensing not configured");
  return csRange_;
}

double Topology::averageDegree() const {
  if (nodeCount_ == 0) return 0.0;
  return static_cast<double>(links_.ids.size()) /
         static_cast<double>(nodeCount_);
}

std::size_t Topology::reachableCount(NodeId start) const {
  NSMODEL_CHECK(start < nodeCount_, "node id out of range");
  std::vector<bool> seen(nodeCount_, false);
  std::vector<NodeId> frontier{start};
  seen[start] = true;
  std::size_t count = 1;
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const NodeId u = frontier[head];
    for (NodeId v : links_.row(u)) {
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        frontier.push_back(v);
      }
    }
  }
  return count;
}

bool Topology::isConnected() const {
  return reachableCount(0) == nodeCount_;
}

}  // namespace nsmodel::net
