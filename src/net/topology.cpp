#include "net/topology.hpp"

#include <deque>

#include "geom/spatial_grid.hpp"
#include "support/error.hpp"

namespace nsmodel::net {

Topology::Topology(const Deployment& deployment, double range,
                   double csFactor)
    : range_(range) {
  NSMODEL_CHECK(range > 0.0, "transmission range must be positive");
  NSMODEL_CHECK(csFactor == 0.0 || csFactor > 1.0,
                "carrier-sense factor must be 0 (off) or > 1");
  const auto& positions = deployment.positions();
  const auto n = positions.size();
  neighbors_.resize(n);

  const auto grid = geom::SpatialGrid::build(positions, range);
  for (NodeId id = 0; id < n; ++id) {
    grid.forEachWithin(positions[id], range,
                       [&](NodeId other, const geom::Vec2&) {
                         if (other != id) neighbors_[id].push_back(other);
                       });
  }

  if (csFactor > 1.0) {
    csRange_ = csFactor * range;
    csNeighbors_.resize(n);
    for (NodeId id = 0; id < n; ++id) {
      grid.forEachWithin(positions[id], csRange_,
                         [&](NodeId other, const geom::Vec2&) {
                           if (other != id) csNeighbors_[id].push_back(other);
                         });
    }
  }
}

double Topology::carrierSenseRange() const {
  NSMODEL_CHECK(hasCarrierSense(), "carrier sensing not configured");
  return csRange_;
}

double Topology::averageDegree() const {
  if (neighbors_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& adj : neighbors_) total += adj.size();
  return static_cast<double>(total) / static_cast<double>(neighbors_.size());
}

std::size_t Topology::reachableCount(NodeId start) const {
  NSMODEL_CHECK(start < neighbors_.size(), "node id out of range");
  std::vector<bool> seen(neighbors_.size(), false);
  std::deque<NodeId> frontier{start};
  seen[start] = true;
  std::size_t count = 1;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId v : neighbors_[u]) {
      if (!seen[v]) {
        seen[v] = true;
        ++count;
        frontier.push_back(v);
      }
    }
  }
  return count;
}

bool Topology::isConnected() const {
  return reachableCount(0) == neighbors_.size();
}

}  // namespace nsmodel::net
