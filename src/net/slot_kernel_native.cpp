// Build-machine-ISA build of the slot-resolution inner loops.  CMake
// compiles this single translation unit with -march=native (option
// NSMODEL_KERNEL_NATIVE, on by default where the flag is supported);
// slot_kernel.cpp only dispatches here after runtimeSupported() confirms
// the running CPU has the instructions this TU was compiled for.
#define NSMODEL_SLOT_KERNEL_NS native
#include "net/slot_kernel_impl.inl"
