// Fading (transitional-region) channel — relaxing Assumption 1.
//
// The paper's unit-disk abstraction assumes SNR stays high up to distance
// r and collapses beyond it, explicitly ignoring "the fluctuation in SNR
// due to shadowing and multi-path fading".  This channel restores a
// first-order version of that fluctuation: each transmission reaches a
// candidate receiver at distance d with probability
//
//   q(d) = 1                         for d <= (1 - w) r,
//   q(d) = ((1+w)r - d) / (2 w r)    linearly falling across the
//                                    transitional region,
//   q(d) = 0                         for d >= (1 + w) r,
//
// sampled independently per (transmission, receiver).  Signals that reach
// a receiver — decodable or not — interfere under the Assumption-6 rule:
// the receiver decodes iff exactly one signal reached it in the slot.
//
// Build the Topology with range (1 + w) * r so candidate links cover the
// whole transitional region, then hand this channel to
// runBroadcast(...): it degrades gracefully to the unit-disk CAM channel
// as w -> 0.
#pragma once

#include "net/channel.hpp"
#include "net/deployment.hpp"
#include "support/rng.hpp"

namespace nsmodel::net {

/// Transitional-region parameters.
struct FadingParams {
  double nominalRange = 1.0;     ///< r
  double transitionWidth = 0.3;  ///< w in (0, 1)
  std::uint64_t seed = 0;        ///< stream for the per-link fades
};

/// Collision-aware channel with a probabilistic transitional region.
class FadingChannel final : public Channel {
 public:
  FadingChannel(const Deployment& deployment, FadingParams params);

  /// Reports CollisionAware: the collision semantics are Assumption 6;
  /// only the reachability of individual signals is randomised.
  ChannelModel model() const override {
    return ChannelModel::CollisionAware;
  }

  /// Reception probability at distance `d` (no interference).
  double reachProbability(double distance) const;

  SlotOutcome resolveSlot(const Topology& topology,
                          const std::vector<NodeId>& transmitters,
                          const DeliverFn& deliver) override;

 private:
  const Deployment& deployment_;
  FadingParams params_;
  support::Rng rng_;

  // Epoch-stamped per-receiver signal bookkeeping (cf. channel.cpp).
  std::vector<std::uint32_t> counts_;
  std::vector<std::uint64_t> stamps_;
  std::vector<NodeId> lastSender_;
  std::vector<NodeId> touched_;
  std::vector<std::uint64_t> txStamps_;
  std::uint64_t epoch_ = 0;
};

}  // namespace nsmodel::net
