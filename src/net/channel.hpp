// Link-level channel models (Section 3.2).
//
// A channel resolves one time slot: given the set of nodes transmitting in
// that slot, it decides which (sender, receiver) deliveries succeed.
//
//  * CollisionFreeChannel (CFM): every transmission reaches every
//    neighbour of the sender — packet transmission is an atomic operation
//    guaranteed to succeed.
//  * CollisionAwareChannel (CAM, Assumption 6): a node receives iff
//    exactly one of its in-range neighbours transmits in the slot.
//    Transmitting nodes never receive (half duplex).
//  * CarrierSenseChannel (Appendix A): additionally, any transmitter
//    within csFactor * range of the receiver destroys the reception, so a
//    node receives iff exactly one transmitter lies within its
//    carrier-sense range and that transmitter is within its transmission
//    range.
//  * SinrChannel (sinr_channel.hpp): physical-interference model — a node
//    receives iff the strongest in-range signal beats the capture
//    threshold beta against noise plus the cumulative power of every
//    other transmitter within the far-field cutoff.
//
// All four are instances of the shared interference layer
// (interference.hpp): scatter emitter signals into per-receiver
// accumulators along topology CSR rows, then scan the touched receivers.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <type_traits>
#include <vector>

#include "net/topology.hpp"

namespace nsmodel::net {

/// Which link-level semantics a channel implements.
enum class ChannelModel {
  CollisionFree,
  CollisionAware,
  CarrierSenseAware,
  Sinr,
};

/// Human-readable channel name ("CFM", "CAM", "CAM-CS", "SINR").
const char* channelModelName(ChannelModel model);

/// Inverse of channelModelName, case-insensitive ("cam-cs" == "CAM-CS").
/// Throws ConfigError on anything else — unknown names must fail loudly,
/// not default to some channel.
ChannelModel channelModelFromName(std::string_view name);

/// Parameters of the SINR channel (ChannelModel::Sinr).  alpha and
/// cutoff shape the per-edge gain field precomputed with the topology
/// (net::GainFieldSpec); beta and noise are pure channel-instance state.
struct SinrParams {
  double beta = 3.0;    ///< capture threshold (SINR >= beta decodes)
  double noise = 1e-4;  ///< noise floor, in units of gain at distance 1
  double alpha = 3.0;   ///< log-distance pathloss exponent
  double cutoff = 2.0;  ///< far-field cutoff, as a multiple of range (>= 1)

  /// Throws ConfigError unless beta/noise/alpha are positive finite and
  /// cutoff is a finite multiple >= 1.
  void validate() const;

  bool operator==(const SinrParams&) const = default;
};

/// Outcome statistics for one resolved slot.
struct SlotOutcome {
  std::size_t deliveries = 0;  ///< successful (sender, receiver) pairs
  std::size_t lostReceivers = 0;  ///< non-transmitting nodes with at least
                                  ///< one in-range transmitter that decoded
                                  ///< nothing (collision victims)
};

/// Callback invoked for each successful delivery.  A non-owning
/// context + function-pointer pair rather than std::function: deliveries
/// number ~10^7 per sweep, and the callback never outlives the
/// resolveSlot call that receives it.
class DeliverFn {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, DeliverFn>>>
  // NOLINTNEXTLINE(google-explicit-constructor): mimics std::function.
  DeliverFn(const F& fn)
      : ctx_(&fn), call_([](const void* ctx, NodeId receiver, NodeId sender) {
          (*static_cast<const F*>(ctx))(receiver, sender);
        }) {}

  void operator()(NodeId receiver, NodeId sender) const {
    call_(ctx_, receiver, sender);
  }

 private:
  const void* ctx_;
  void (*call_)(const void*, NodeId, NodeId);
};

/// Abstract slot-resolution interface. Implementations keep reusable
/// scratch buffers, so a channel instance is not thread-safe; use one per
/// simulation run.
class Channel {
 public:
  virtual ~Channel() = default;

  virtual ChannelModel model() const = 0;

  /// Resolves one slot. `transmitters` are the nodes transmitting
  /// simultaneously; `deliver` is called once per successful reception.
  virtual SlotOutcome resolveSlot(const Topology& topology,
                                  const std::vector<NodeId>& transmitters,
                                  const DeliverFn& deliver) = 0;

  /// Resolves one slot under clock drift (fault::ClockDriftConfig):
  /// `interferers` are nodes whose skewed transmissions partially overlap
  /// this slot.  They contribute interference — colliding with same-slot
  /// receptions at receivers they reach — and are half-duplex deaf, but
  /// never deliver here (their packet delivers in its majority slot).
  /// The base implementation rejects non-empty interferers; CFM ignores
  /// them (collision-free transmissions always succeed); CAM and CAM-CS
  /// implement the partial-overlap semantics.
  virtual SlotOutcome resolveSlot(const Topology& topology,
                                  const std::vector<NodeId>& transmitters,
                                  const std::vector<NodeId>& interferers,
                                  const DeliverFn& deliver);
};

/// Factory. CarrierSenseAware requires the topology passed to resolveSlot
/// to have been built with a carrier-sense factor; Sinr (built here with
/// default SinrParams) requires one built with a GainFieldSpec.
std::unique_ptr<Channel> makeChannel(ChannelModel model);

/// Factory with explicit SINR parameters (validated; ignored unless
/// `model` is ChannelModel::Sinr).  The topology's gain field must have
/// been built with the same alpha and cutoff (checked in resolveSlot).
std::unique_ptr<Channel> makeChannel(ChannelModel model,
                                     const SinrParams& sinr);

}  // namespace nsmodel::net
