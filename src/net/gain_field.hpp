// Per-edge pathloss gains in CSR order, precomputed with the topology.
//
// The SINR channel (sinr_channel.hpp) accumulates real per-receiver
// power: every emitter contributes gain(d) = max(d, d0)^-alpha to every
// node within the far-field cutoff.  Computing pow() per (emitter,
// receiver) pair per slot would dwarf the slot loop, so the gains are
// precomputed once per deployment, exactly like the neighbour tables —
// one CSR whose row i holds (receiver id, gain) pairs for every node
// within cutoffFactor * range of node i, in the spatial grid's
// deterministic visit order.  The cutoff bounds the accumulation set the
// same way the transmission radius bounds the adjacency CSR: both are
// hard disks over the same grid.
//
// Distances below d0 = 1e-3 * range are clamped (near-field limit) so
// gains stay finite for arbitrarily close pairs.  Gains are a pure
// function of squared distance via pow(max(d^2, d0^2), -alpha/2); pow is
// correctly rounded for these args in glibc, hence monotone in d^2, so
//   d <= range  <=>  gain >= minDecodeGain() = pow(range^2, -alpha/2)
// holds *exactly*: the kernel's decodability test (gain >= minDecodeGain)
// accepts precisely the adjacency CSR's membership test (d^2 <= range^2).
#pragma once

#include <cstddef>
#include <vector>

#include "net/packet.hpp"
#include "support/error.hpp"

namespace nsmodel::geom {
class SpatialGrid;
struct Vec2;
}  // namespace nsmodel::geom

namespace nsmodel::net {

/// The two SINR parameters that shape the precomputed gain field (the
/// other two — beta and noise — are pure channel state, SinrParams).
struct GainFieldSpec {
  double alpha = 3.0;         ///< log-distance pathloss exponent (> 0)
  double cutoffFactor = 2.0;  ///< far-field cutoff / range (>= 1)

  bool operator==(const GainFieldSpec&) const = default;
};

/// Immutable per-edge gain CSR for one (deployment, range, spec) triple.
class GainField {
 public:
  /// Builds the gain rows from the same grid the topology's adjacency
  /// build used (cells of `range`, queried at cutoffFactor * range —
  /// the carrier-sense build already queries the grid past its cell
  /// size, so the visit-order determinism carries over unchanged).
  GainField(const std::vector<geom::Vec2>& positions,
            const geom::SpatialGrid& grid, double range, GainFieldSpec spec);

  const GainFieldSpec& spec() const { return spec_; }
  std::size_t nodeCount() const { return offsets_.size() - 1; }
  std::size_t edgeCount() const { return ids_.size(); }
  double cutoffRadius() const { return cutoffRadius_; }

  /// Gain at exactly the transmission range: the decodability threshold.
  double minDecodeGain() const { return minDecodeGain_; }

  /// One node's gain row: parallel (receiver id, gain) arrays covering
  /// every node within cutoffRadius(), excluding the node itself.
  struct Row {
    const NodeId* ids;
    const double* gains;
    std::size_t size;
  };
  Row row(NodeId id) const {
    NSMODEL_CHECK(id + 1 < offsets_.size(), "node id out of range");
    const std::size_t lo = offsets_[id];
    return {ids_.data() + lo, gains_.data() + lo, offsets_[id + 1] - lo};
  }

 private:
  GainFieldSpec spec_;
  double cutoffRadius_;
  double minDecodeGain_;
  std::vector<std::size_t> offsets_;  // nodeCount + 1 entries
  std::vector<NodeId> ids_;
  std::vector<double> gains_;
};

}  // namespace nsmodel::net
