// The interference layer: shared slot-resolution primitives.
//
// Every channel model resolves a slot the same way — scatter each
// emitter's signal into per-receiver accumulators indexed by a topology
// CSR row, then scan the touched receivers and decide who decoded what.
// What varies between models is only the *accumulator semantics*:
//
//   * CFM needs no accumulator at all (delivery is unconditional);
//   * CAM packs a reception count and the XOR of the bumping senders
//     into one 32-bit word per receiver (SlotCounts / KernelScratch) and
//     decodes iff the count is exactly 1;
//   * CAM-CS adds a second count-only tally over the carrier-sense rows
//     (SlotTally) and requires both counts to be 1;
//   * SINR (sinr_channel.hpp) accumulates real per-receiver power over
//     the gain CSR (gain_field.hpp) and decodes iff the strongest
//     in-range signal beats beta * (noise + interference).
//
// This header holds the primitives those instances share: the grow-only
// scratch tables with their touched-list bookkeeping, the transmitter
// bias trick that implements half duplex without per-receiver flag
// lookups, and the all-entries-zero invariant every table maintains
// between slots.  channel.cpp (CFM/CAM/CAM-CS) and sinr_channel.cpp
// (SINR) are the instances; the replication-batched and sharded engines
// reuse the same primitives per lane / per shard.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "support/error.hpp"

namespace nsmodel::net::interference {

/// Per-node reception count and sender for one slot, packed into one
/// 32-bit word: count in the low half, the XOR of all bumping senders in
/// the high half.  The bump loop — the innermost loop of every slot
/// resolution, one random-indexed access per (transmitter, neighbour)
/// pair — is then a branchless load/add/xor/store, and the whole table is
/// 4 bytes per node, small enough to stay L1-resident while the
/// neighbour lists stream through the cache.  The XOR trick works because
/// the sender is only ever read back when the final count is exactly 1,
/// and the XOR of a single sender is that sender.
/// Entries are cleared by walking the touched list after the slot.
/// Invariant between slots: all entries are zero.
class SlotCounts {
 public:
  /// Grow-only: a channel owned by a reusable RunWorkspace sees runs of
  /// varying node counts; shrinking would make the next bigger run
  /// reallocate.  Extra entries stay zero (resize value-initialises) and
  /// are never indexed.
  void ensure(std::size_t n) {
    // NodeId and the per-slot count must both fit 16 bits.
    NSMODEL_CHECK(n <= 0xFFFF,
                  "collision-aware channels support at most 65535 nodes");
    if (entries_.size() < n) {
      entries_.resize(n, 0);
      // Every node can be touched at most once, but the branchless bump
      // writes touched[tc] unconditionally before deciding whether to
      // keep it — once all n nodes are touched, that scratch write lands
      // at index n, so the list needs one sentinel slot of slack.
      touched_.resize(n + 1);
    }
  }

  /// Bumps every node in `ids`.  Members are hoisted into locals for the
  /// duration of the loop: the entry stores could otherwise alias the
  /// size_t touched counter under type-based aliasing, forcing the
  /// compiler to reload it (and the data pointers) on every iteration of
  /// the hottest loop in the simulator.
  void bumpMany(const NodeId* ids, std::size_t m, NodeId sender) {
    std::uint32_t* entries = entries_.data();
    NodeId* touched = touched_.data();
    std::size_t tc = touchedCount_;
    const std::uint32_t senderBits = static_cast<std::uint32_t>(sender) << 16;
    for (std::size_t i = 0; i < m; ++i) {
      const NodeId node = ids[i];
      const std::uint32_t e = entries[node];
      touched[tc] = node;  // kept only when this is a first touch
      tc += static_cast<std::size_t>(static_cast<std::uint16_t>(e) == 0);
      // A node is never its own neighbour, so the count stays below
      // 0xFFFF and the +1 cannot carry into the sender half.
      entries[node] = (e + 1) ^ senderBits;
    }
    touchedCount_ = tc;
  }

  /// Reads and zeroes `node`'s entry in one cache-line visit.  The
  /// delivery loop consumes each touched entry exactly once, so clearing
  /// inline halves the random accesses versus a separate clear pass.
  std::uint32_t take(NodeId node) {
    const std::uint32_t e = entries_[node];
    entries_[node] = 0;
    return e;
  }
  static std::uint32_t entryCount(std::uint32_t e) { return e & 0xFFFF; }
  static NodeId entrySender(std::uint32_t e) {
    return static_cast<NodeId>(e >> 16);
  }

  const NodeId* touched() const { return touched_.data(); }
  std::size_t touchedCount() const { return touchedCount_; }

  /// Forgets the touched list; the entries must all have been take()n.
  void resetTouched() { touchedCount_ = 0; }

 private:
  std::vector<std::uint32_t> entries_;
  std::vector<NodeId> touched_;
  std::size_t touchedCount_ = 0;
};

/// "Is this node transmitting" as byte flags set from and cleared by the
/// (short) transmitter list.  Invariant between slots: all flags clear.
class TxFlags {
 public:
  void ensure(std::size_t n) {
    if (flags_.size() < n) flags_.resize(n, 0);  // grow-only, see SlotCounts
  }
  void set(const std::vector<NodeId>& txs) {
    for (NodeId tx : txs) flags_[tx] = 1;
  }
  bool contains(NodeId node) const { return flags_[node] != 0; }
  void clear(const std::vector<NodeId>& txs) {
    for (NodeId tx : txs) flags_[tx] = 0;
  }

 private:
  std::vector<std::uint8_t> flags_;
};

/// Count-only variant of SlotCounts for the carrier-sense tally, whose
/// sender is never read.
class SlotTally {
 public:
  void ensure(std::size_t n) {
    NSMODEL_CHECK(n <= 0xFFFF,
                  "collision-aware channels support at most 65535 nodes");
    if (counts_.size() < n) {  // grow-only, see SlotCounts
      counts_.resize(n, 0);
      touched_.resize(n + 1);  // sentinel slot, see SlotCounts::ensure
    }
  }

  /// Bumps every node in `ids` (see SlotCounts::bumpMany for why the
  /// members are hoisted into locals).
  void bumpMany(const NodeId* ids, std::size_t m) {
    std::uint16_t* counts = counts_.data();
    NodeId* touched = touched_.data();
    std::size_t tc = touchedCount_;
    for (std::size_t i = 0; i < m; ++i) {
      const NodeId node = ids[i];
      const std::uint16_t c = counts[node];
      touched[tc] = node;
      tc += static_cast<std::size_t>(c == 0);
      counts[node] = static_cast<std::uint16_t>(c + 1);
    }
    touchedCount_ = tc;
  }

  std::uint32_t count(NodeId node) const { return counts_[node]; }

  void clear() {
    for (std::size_t i = 0; i < touchedCount_; ++i) counts_[touched_[i]] = 0;
    touchedCount_ = 0;
  }

 private:
  std::vector<std::uint16_t> counts_;
  std::vector<NodeId> touched_;
  std::size_t touchedCount_ = 0;
};

/// Scratch arrays for the dispatched slot kernel (slot_kernel.hpp): the
/// packed count-xor-sender table plus the touched list and the compressed
/// winner arrays the scan pass writes.  Grow-only, like SlotCounts; the
/// invariant between slots is likewise all-entries-zero.
struct KernelScratch {
  std::vector<std::uint32_t> entries;
  std::vector<NodeId> touched;
  std::vector<NodeId> receivers;
  std::vector<NodeId> senders;

  void ensure(std::size_t n) {
    NSMODEL_CHECK(n <= 0xFFFF,
                  "collision-aware channels support at most 65535 nodes");
    if (entries.size() < n) {
      entries.resize(n, 0);
      touched.resize(n + 1);  // sentinel slot, see SlotCounts::ensure
      receivers.resize(n);
      senders.resize(n);
    }
  }
};

/// KernelScratch without the 16-bit node-id cap.  The SINR channel bumps
/// the entry table with a zero sender half (count only, add = 1), so
/// nothing ever packs a node id into the entry word and any 32-bit id
/// works — the same reason the sharded engine's scalar path escapes the
/// cap.  Same layout, same touched-list sentinel, same all-entries-zero
/// invariant between slots.
struct WideKernelScratch {
  std::vector<std::uint32_t> entries;
  std::vector<NodeId> touched;
  std::vector<NodeId> receivers;
  std::vector<NodeId> senders;

  void ensure(std::size_t n) {
    if (entries.size() < n) {
      entries.resize(n, 0);
      touched.resize(n + 1);  // sentinel slot, see SlotCounts::ensure
      receivers.resize(n);
      senders.resize(n);
    }
  }
};

/// Pre-biases each transmitter's own entry to count 2.  A biased entry is
/// nonzero before the bump pass, so the node never enters the touched
/// list and so never scans as either a winner or a collision loss —
/// exactly the oracle's half-duplex skip of transmitting receivers,
/// without any per-receiver flag lookup in the scan.  biasClear undoes
/// the bias (the entry may have been bumped further; whatever it holds,
/// the node was filtered out, so zero is the correct between-slots state).
inline void biasTransmitters(std::uint32_t* entries,
                             const std::vector<NodeId>& transmitters,
                             const std::vector<NodeId>* interferers) {
  for (NodeId tx : transmitters) entries[tx] += 2;
  if (interferers != nullptr) {
    for (NodeId ix : *interferers) entries[ix] += 2;
  }
}

inline void biasClear(std::uint32_t* entries,
                      const std::vector<NodeId>& transmitters,
                      const std::vector<NodeId>* interferers) {
  for (NodeId tx : transmitters) entries[tx] = 0;
  if (interferers != nullptr) {
    for (NodeId ix : *interferers) entries[ix] = 0;
  }
}

}  // namespace nsmodel::net::interference
