// Uniform point sampling in disks and annuli.
#pragma once

#include <vector>

#include "geom/vec2.hpp"
#include "support/rng.hpp"

namespace nsmodel::geom {

/// One point uniformly distributed in the disk of radius `radius` centred
/// at `center`.
Vec2 sampleDisk(support::Rng& rng, const Vec2& center, double radius);

/// One point uniformly distributed in the annulus innerRadius < d <=
/// outerRadius around `center`. Requires 0 <= innerRadius < outerRadius.
Vec2 sampleAnnulus(support::Rng& rng, const Vec2& center, double innerRadius,
                   double outerRadius);

/// `count` i.i.d. uniform points in the disk.
std::vector<Vec2> sampleDiskPoints(support::Rng& rng, const Vec2& center,
                                   double radius, std::size_t count);

/// Points on a jittered grid clipped to the disk: a deterministic,
/// low-discrepancy alternative deployment used in tests and ablations.
/// `spacing` is the grid pitch; `jitter` in [0, 1] scales a uniform offset
/// of up to jitter*spacing/2 per axis.
std::vector<Vec2> sampleJitteredGridDisk(support::Rng& rng, const Vec2& center,
                                         double radius, double spacing,
                                         double jitter);

}  // namespace nsmodel::geom
