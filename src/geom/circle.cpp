#include "geom/circle.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace nsmodel::geom {

double lensArea(double r1, double r2, double centerDistance) {
  NSMODEL_CHECK(r1 >= 0.0 && r2 >= 0.0, "lensArea requires radii >= 0");
  NSMODEL_CHECK(centerDistance >= 0.0,
                "lensArea requires a non-negative centre distance");
  if (r1 == 0.0 || r2 == 0.0) return 0.0;
  const double d = centerDistance;
  if (d >= r1 + r2) return 0.0;  // disjoint (or tangent)
  const double rmin = std::min(r1, r2);
  if (d <= std::abs(r1 - r2)) {
    return M_PI * rmin * rmin;  // smaller disk contained
  }
  // Clamp the acos arguments: they can drift a hair outside [-1, 1] when the
  // configuration is close to tangency.
  const double cosA =
      std::clamp((d * d + r1 * r1 - r2 * r2) / (2.0 * d * r1), -1.0, 1.0);
  const double cosB =
      std::clamp((d * d + r2 * r2 - r1 * r1) / (2.0 * d * r2), -1.0, 1.0);
  const double alpha = std::acos(cosA);
  const double beta = std::acos(cosB);
  const double kite = 0.5 * std::sqrt(std::max(
                                0.0, (-d + r1 + r2) * (d + r1 - r2) *
                                         (d - r1 + r2) * (d + r1 + r2)));
  // Cancellation within ~1e-15 of internal tangency can overshoot the
  // smaller disk's area by ~1e-8; the true lens is confined to it.
  return std::clamp(r1 * r1 * alpha + r2 * r2 * beta - kite, 0.0,
                    M_PI * rmin * rmin);
}

double intersectionAreaEq1(double d1, double d2, double x) {
  if (d1 <= 0.0) return 0.0;
  const double centerDistance = d1 + x;
  NSMODEL_CHECK(centerDistance >= 0.0,
                "f(D1, D2, x): centre of L2 would be at negative distance");
  return lensArea(d1, d2, centerDistance);
}

}  // namespace nsmodel::geom
