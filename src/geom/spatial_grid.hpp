// Uniform spatial grid for radius queries, stored flat (CSR).
//
// Building neighbour tables for N up to a few thousand nodes per Monte-
// Carlo replication is the hot path of deployment setup; the grid makes it
// O(N * rho) instead of O(N^2).  Cells live in a dense row-major array
// over the points' bounding box with a CSR offset table, and entries are
// held in structure-of-arrays form, so a radius query walks one
// contiguous span per cell row instead of hashing each candidate cell.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"
#include "support/error.hpp"

namespace nsmodel::geom {

/// Maps points to square cells of a fixed size and answers radius queries.
/// Indices stored are caller-provided (typically node ids).
///
/// Points may be inserted incrementally; the flat cell index is (re)built
/// lazily on the next query.  The dense cell array covers the bounding
/// box of the inserted points, so the grid is meant for compact point
/// sets (disk deployments), not coordinates scattered across huge spans.
class SpatialGrid {
 public:
  /// `cellSize` should normally equal the most common query radius.
  explicit SpatialGrid(double cellSize);

  /// Inserts point `p` with payload `id`.
  void insert(const Vec2& p, std::uint32_t id);

  /// Bulk construction from a point array; id i = index i.  The cell
  /// index is finalized eagerly so later concurrent queries never race
  /// on the lazy rebuild.
  static SpatialGrid build(const std::vector<Vec2>& points, double cellSize);

  std::size_t size() const { return entries_.size(); }

  /// Calls `visit(id, position)` for every stored point within `radius`
  /// of `center` (inclusive).  Templated so the per-point call inlines:
  /// neighbour-table construction visits every (node, candidate) pair and
  /// an opaque std::function call per pair dominated the profile.
  /// The visit order is deterministic and repeatable: cells in row-major
  /// (dy, dx) order around the centre, entries within a cell in insertion
  /// order — Topology's CSR build relies on this to keep neighbour rows
  /// (and hence golden traces) bit-identical across grid rewrites.
  template <typename Visit>
  void forEachWithin(const Vec2& center, double radius, Visit&& visit) const {
    NSMODEL_CHECK(radius >= 0.0, "query radius must be >= 0");
    if (entries_.empty()) return;
    if (dirty_) finalize();
    const double r2 = radius * radius;
    const auto reach =
        static_cast<std::int64_t>(std::ceil(radius / cellSize_));
    const CellKey home = cellOf(center);
    const std::int64_t gxLo = std::max(home.cx - reach, minCx_);
    const std::int64_t gxHi = std::min(home.cx + reach, minCx_ + width_ - 1);
    const std::int64_t gyLo = std::max(home.cy - reach, minCy_);
    const std::int64_t gyHi = std::min(home.cy + reach, minCy_ + height_ - 1);
    if (gxLo > gxHi || gyLo > gyHi) return;
    for (std::int64_t gy = gyLo; gy <= gyHi; ++gy) {
      // Cells of one row are adjacent in the flat index, so the whole
      // (dy, dx=-reach..reach) strip is a single contiguous slot span.
      const std::size_t row = static_cast<std::size_t>(gy - minCy_) *
                              static_cast<std::size_t>(width_);
      const std::size_t lo =
          offsets_[row + static_cast<std::size_t>(gxLo - minCx_)];
      const std::size_t hi =
          offsets_[row + static_cast<std::size_t>(gxHi - minCx_) + 1];
      for (std::size_t s = lo; s < hi; ++s) {
        const double dx = slotX_[s] - center.x;
        const double dy = slotY_[s] - center.y;
        if (dx * dx + dy * dy <= r2) {
          visit(slotId_[s], Vec2{slotX_[s], slotY_[s]});
        }
      }
    }
  }

  /// Ids of points within `radius` of `center` (inclusive).
  std::vector<std::uint32_t> queryWithin(const Vec2& center,
                                         double radius) const;

  /// Hands the candidate cells of a radius query to `body` one contiguous
  /// strip at a time as raw structure-of-arrays spans:
  /// `body(xs, ys, ids, count)`.  Candidates are NOT distance-filtered —
  /// the caller applies its own test — but the strip order (and the entry
  /// order within a strip) is exactly forEachWithin's visit order, so a
  /// caller that filters by distance sees the identical sequence.
  /// Topology::buildAdjacency uses this to run a branchless accept loop
  /// over each strip instead of paying an unpredictable branch per
  /// candidate.  The spans are invalidated by the next insert().
  template <typename Body>
  void forEachCandidateStrip(const Vec2& center, double radius,
                             Body&& body) const {
    NSMODEL_CHECK(radius >= 0.0, "query radius must be >= 0");
    if (entries_.empty()) return;
    if (dirty_) finalize();
    const auto reach =
        static_cast<std::int64_t>(std::ceil(radius / cellSize_));
    const CellKey home = cellOf(center);
    const std::int64_t gxLo = std::max(home.cx - reach, minCx_);
    const std::int64_t gxHi = std::min(home.cx + reach, minCx_ + width_ - 1);
    const std::int64_t gyLo = std::max(home.cy - reach, minCy_);
    const std::int64_t gyHi = std::min(home.cy + reach, minCy_ + height_ - 1);
    if (gxLo > gxHi || gyLo > gyHi) return;
    for (std::int64_t gy = gyLo; gy <= gyHi; ++gy) {
      const std::size_t row = static_cast<std::size_t>(gy - minCy_) *
                              static_cast<std::size_t>(width_);
      const std::size_t lo =
          offsets_[row + static_cast<std::size_t>(gxLo - minCx_)];
      const std::size_t hi =
          offsets_[row + static_cast<std::size_t>(gxHi - minCx_) + 1];
      if (lo == hi) continue;
      body(slotX_.data() + lo, slotY_.data() + lo, slotId_.data() + lo,
           hi - lo);
    }
  }

 private:
  struct Entry {
    Vec2 position;
    std::uint32_t id;
  };

  struct CellKey {
    std::int64_t cx;
    std::int64_t cy;
  };

  CellKey cellOf(const Vec2& p) const;

  /// Counting-sorts the entries into the dense cell array (stable, so
  /// insertion order within a cell survives).
  void finalize() const;

  double cellSize_;
  std::vector<Entry> entries_;  ///< insertion order, source of truth

  // Lazily rebuilt flat index (mutable: queries are logically const).
  mutable bool dirty_ = true;
  mutable std::int64_t minCx_ = 0;
  mutable std::int64_t minCy_ = 0;
  mutable std::int64_t width_ = 0;
  mutable std::int64_t height_ = 0;
  mutable std::vector<std::size_t> offsets_;  ///< width*height + 1 slots
  mutable std::vector<double> slotX_;
  mutable std::vector<double> slotY_;
  mutable std::vector<std::uint32_t> slotId_;
};

}  // namespace nsmodel::geom
