// Uniform spatial hash grid for radius queries.
//
// Building neighbour tables for N up to a few thousand nodes per Monte-
// Carlo replication is the hot path of deployment setup; the grid makes it
// O(N * rho) instead of O(N^2).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "geom/vec2.hpp"

namespace nsmodel::geom {

/// Maps points to square cells of a fixed size and answers radius queries.
/// Indices stored are caller-provided (typically node ids).
class SpatialGrid {
 public:
  /// `cellSize` should normally equal the most common query radius.
  explicit SpatialGrid(double cellSize);

  /// Inserts point `p` with payload `id`.
  void insert(const Vec2& p, std::uint32_t id);

  /// Bulk construction from a point array; id i = index i.
  static SpatialGrid build(const std::vector<Vec2>& points, double cellSize);

  std::size_t size() const { return count_; }

  /// Calls `visit(id, position)` for every stored point within `radius`
  /// of `center` (inclusive).
  void forEachWithin(
      const Vec2& center, double radius,
      const std::function<void(std::uint32_t, const Vec2&)>& visit) const;

  /// Ids of points within `radius` of `center` (inclusive).
  std::vector<std::uint32_t> queryWithin(const Vec2& center,
                                         double radius) const;

 private:
  struct Entry {
    Vec2 position;
    std::uint32_t id;
  };

  struct CellKey {
    std::int64_t cx;
    std::int64_t cy;
    bool operator==(const CellKey&) const = default;
  };

  struct CellHash {
    std::size_t operator()(const CellKey& k) const {
      // 64-bit mix of the two cell coordinates.
      std::uint64_t h = static_cast<std::uint64_t>(k.cx) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<std::uint64_t>(k.cy) + 0x517cc1b727220a95ULL +
           (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  CellKey cellOf(const Vec2& p) const;

  double cellSize_;
  std::size_t count_ = 0;
  std::unordered_map<CellKey, std::vector<Entry>, CellHash> cells_;
};

}  // namespace nsmodel::geom
