#include "geom/rings.hpp"

#include <cmath>

#include "geom/circle.hpp"
#include "support/error.hpp"

namespace nsmodel::geom {

RingGeometry::RingGeometry(int ringCount, double ringWidth)
    : ringCount_(ringCount), ringWidth_(ringWidth) {
  NSMODEL_CHECK(ringCount >= 1, "RingGeometry needs at least one ring");
  NSMODEL_CHECK(ringWidth > 0.0, "ring width must be positive");
}

double RingGeometry::fieldRadius() const {
  return static_cast<double>(ringCount_) * ringWidth_;
}

double RingGeometry::ringArea(int k) const {
  if (k < 1 || k > ringCount_) return 0.0;
  const double r = ringWidth_;
  const double outer = static_cast<double>(k) * r;
  const double inner = static_cast<double>(k - 1) * r;
  return M_PI * (outer * outer - inner * inner);
}

double RingGeometry::ringDiskIntersection(int k, double centerDist,
                                          double radius) const {
  if (k < 1 || k > ringCount_) return 0.0;
  NSMODEL_CHECK(centerDist >= 0.0, "centre distance must be >= 0");
  NSMODEL_CHECK(radius >= 0.0, "radius must be >= 0");
  const double outer = static_cast<double>(k) * ringWidth_;
  const double inner = static_cast<double>(k - 1) * ringWidth_;
  return lensArea(outer, radius, centerDist) -
         lensArea(inner, radius, centerDist);
}

double RingGeometry::radialPosition(int j, double x) const {
  NSMODEL_CHECK(j >= 1 && j <= ringCount_, "ring index out of range");
  NSMODEL_CHECK(x >= 0.0 && x <= ringWidth_,
                "radial offset must lie in [0, ring width]");
  return static_cast<double>(j - 1) * ringWidth_ + x;
}

double RingGeometry::coverageArea(int j, double x, int k) const {
  return ringDiskIntersection(k, radialPosition(j, x), ringWidth_);
}

double RingGeometry::carrierSenseArea(int j, double x, int k,
                                      double csFactor) const {
  NSMODEL_CHECK(csFactor > 1.0, "carrier-sense factor must exceed 1");
  const double centerDist = radialPosition(j, x);
  return ringDiskIntersection(k, centerDist, csFactor * ringWidth_) -
         ringDiskIntersection(k, centerDist, ringWidth_);
}

}  // namespace nsmodel::geom
