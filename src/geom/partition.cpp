#include "geom/partition.hpp"

#include <algorithm>
#include <numeric>

#include "support/error.hpp"

namespace nsmodel::geom {

std::vector<std::uint32_t> quantileStripeOwners(
    const std::vector<Vec2>& points, std::size_t stripes) {
  const std::size_t n = points.size();
  NSMODEL_CHECK(stripes >= 1 && stripes <= n,
                "stripe count must lie in [1, point count]");
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (points[a].x != points[b].x) return points[a].x < points[b].x;
              return a < b;
            });
  std::vector<std::uint32_t> owner(n);
  for (std::size_t i = 0; i < n; ++i) {
    owner[order[i]] = static_cast<std::uint32_t>(i * stripes / n);
  }
  return owner;
}

}  // namespace nsmodel::geom
