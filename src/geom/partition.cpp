#include "geom/partition.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "support/error.hpp"

namespace nsmodel::geom {

std::vector<std::uint32_t> quantileStripeOwners(
    const std::vector<Vec2>& points, std::size_t stripes) {
  const std::size_t n = points.size();
  NSMODEL_CHECK(stripes >= 1 && stripes <= n,
                "stripe count must lie in [1, point count]");
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (points[a].x != points[b].x) return points[a].x < points[b].x;
              return a < b;
            });
  std::vector<std::uint32_t> owner(n);
  for (std::size_t i = 0; i < n; ++i) {
    owner[order[i]] = static_cast<std::uint32_t>(i * stripes / n);
  }
  return owner;
}

std::vector<StripeInterval> stripeReachNeighbors(
    const std::vector<Vec2>& points, const std::vector<std::uint32_t>& owner,
    std::size_t stripes, double reach) {
  NSMODEL_CHECK(owner.size() == points.size(),
                "owner map must cover every point");
  NSMODEL_CHECK(stripes >= 1, "need at least one stripe");
  NSMODEL_CHECK(reach >= 0.0, "interaction reach must be >= 0");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> minX(stripes, kInf);
  std::vector<double> maxX(stripes, -kInf);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::uint32_t s = owner[i];
    NSMODEL_CHECK(s < stripes, "owner stripe out of range");
    minX[s] = std::min(minX[s], points[i].x);
    maxX[s] = std::max(maxX[s], points[i].x);
  }
  for (std::size_t s = 0; s < stripes; ++s) {
    NSMODEL_CHECK(minX[s] <= maxX[s], "every stripe must own a point");
  }
  // Two stripes interact when their x-extents come within `reach` — a
  // necessary condition for any pair of their points to be within reach
  // in the plane.  Stripe counts are tiny, so the quadratic scan costs
  // nothing against the CSR builds around it.
  std::vector<StripeInterval> halo(stripes);
  for (std::size_t s = 0; s < stripes; ++s) {
    std::size_t lo = s;
    std::size_t hi = s;
    for (std::size_t t = 0; t < stripes; ++t) {
      if (maxX[t] >= minX[s] - reach && minX[t] <= maxX[s] + reach) {
        lo = std::min(lo, t);
        hi = std::max(hi, t);
      }
    }
    halo[s].lo = static_cast<std::uint32_t>(lo);
    halo[s].hi = static_cast<std::uint32_t>(hi);
  }
  return halo;
}

}  // namespace nsmodel::geom
