#include "geom/spatial_grid.hpp"

#include <cmath>

#include "support/error.hpp"

namespace nsmodel::geom {

SpatialGrid::SpatialGrid(double cellSize) : cellSize_(cellSize) {
  NSMODEL_CHECK(cellSize > 0.0, "SpatialGrid cell size must be positive");
}

SpatialGrid::CellKey SpatialGrid::cellOf(const Vec2& p) const {
  return {static_cast<std::int64_t>(std::floor(p.x / cellSize_)),
          static_cast<std::int64_t>(std::floor(p.y / cellSize_))};
}

void SpatialGrid::insert(const Vec2& p, std::uint32_t id) {
  cells_[cellOf(p)].push_back(Entry{p, id});
  ++count_;
}

SpatialGrid SpatialGrid::build(const std::vector<Vec2>& points,
                               double cellSize) {
  SpatialGrid grid(cellSize);
  for (std::size_t i = 0; i < points.size(); ++i) {
    grid.insert(points[i], static_cast<std::uint32_t>(i));
  }
  return grid;
}

void SpatialGrid::forEachWithin(
    const Vec2& center, double radius,
    const std::function<void(std::uint32_t, const Vec2&)>& visit) const {
  NSMODEL_CHECK(radius >= 0.0, "query radius must be >= 0");
  const double r2 = radius * radius;
  const auto reach =
      static_cast<std::int64_t>(std::ceil(radius / cellSize_));
  const CellKey home = cellOf(center);
  for (std::int64_t dy = -reach; dy <= reach; ++dy) {
    for (std::int64_t dx = -reach; dx <= reach; ++dx) {
      const auto it = cells_.find(CellKey{home.cx + dx, home.cy + dy});
      if (it == cells_.end()) continue;
      for (const Entry& entry : it->second) {
        if (entry.position.distanceSquaredTo(center) <= r2) {
          visit(entry.id, entry.position);
        }
      }
    }
  }
}

std::vector<std::uint32_t> SpatialGrid::queryWithin(const Vec2& center,
                                                    double radius) const {
  std::vector<std::uint32_t> ids;
  forEachWithin(center, radius,
                [&ids](std::uint32_t id, const Vec2&) { ids.push_back(id); });
  return ids;
}

}  // namespace nsmodel::geom
