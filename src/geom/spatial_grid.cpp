#include "geom/spatial_grid.hpp"

#include <cmath>

#include "support/error.hpp"

namespace nsmodel::geom {

SpatialGrid::SpatialGrid(double cellSize) : cellSize_(cellSize) {
  NSMODEL_CHECK(cellSize > 0.0, "SpatialGrid cell size must be positive");
}

SpatialGrid::CellKey SpatialGrid::cellOf(const Vec2& p) const {
  return {static_cast<std::int64_t>(std::floor(p.x / cellSize_)),
          static_cast<std::int64_t>(std::floor(p.y / cellSize_))};
}

void SpatialGrid::insert(const Vec2& p, std::uint32_t id) {
  entries_.push_back(Entry{p, id});
  dirty_ = true;
}

void SpatialGrid::finalize() const {
  // Bounding box in cell coordinates.
  minCx_ = minCy_ = 0;
  std::int64_t maxCx = -1;
  std::int64_t maxCy = -1;
  bool first = true;
  for (const Entry& entry : entries_) {
    const CellKey key = cellOf(entry.position);
    if (first) {
      minCx_ = maxCx = key.cx;
      minCy_ = maxCy = key.cy;
      first = false;
    } else {
      minCx_ = std::min(minCx_, key.cx);
      maxCx = std::max(maxCx, key.cx);
      minCy_ = std::min(minCy_, key.cy);
      maxCy = std::max(maxCy, key.cy);
    }
  }
  width_ = maxCx - minCx_ + 1;
  height_ = maxCy - minCy_ + 1;
  const std::size_t cells =
      static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);

  // Stable counting sort by flat cell index: a count pass filling the
  // CSR offsets, then a placement pass in insertion order.
  offsets_.assign(cells + 1, 0);
  const auto flatCell = [&](const Entry& entry) {
    const CellKey key = cellOf(entry.position);
    return static_cast<std::size_t>(key.cy - minCy_) *
               static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(key.cx - minCx_);
  };
  for (const Entry& entry : entries_) ++offsets_[flatCell(entry) + 1];
  for (std::size_t c = 1; c <= cells; ++c) offsets_[c] += offsets_[c - 1];

  slotX_.resize(entries_.size());
  slotY_.resize(entries_.size());
  slotId_.resize(entries_.size());
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Entry& entry : entries_) {
    const std::size_t slot = cursor[flatCell(entry)]++;
    slotX_[slot] = entry.position.x;
    slotY_[slot] = entry.position.y;
    slotId_[slot] = entry.id;
  }
  dirty_ = false;
}

SpatialGrid SpatialGrid::build(const std::vector<Vec2>& points,
                               double cellSize) {
  SpatialGrid grid(cellSize);
  grid.entries_.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    grid.insert(points[i], static_cast<std::uint32_t>(i));
  }
  if (!grid.entries_.empty()) grid.finalize();
  return grid;
}

std::vector<std::uint32_t> SpatialGrid::queryWithin(const Vec2& center,
                                                    double radius) const {
  std::vector<std::uint32_t> ids;
  forEachWithin(center, radius,
                [&ids](std::uint32_t id, const Vec2&) { ids.push_back(id); });
  return ids;
}

}  // namespace nsmodel::geom
