// Circle-circle intersection areas (Eq. 1 of the paper).
//
// The paper parameterises the lens area as f(D1, D2, x) where x is the
// signed distance from the centre of the second circle to the *border* of
// the first (positive outside).  The canonical quantity is lensArea(), the
// intersection area of two disks given their centre distance; f() is a thin
// wrapper matching the paper's convention.
#pragma once

namespace nsmodel::geom {

/// Area of the intersection of two disks with radii `r1`, `r2` whose
/// centres are `centerDistance` apart. Handles disjoint and contained
/// configurations exactly; requires non-negative radii and distance.
double lensArea(double r1, double r2, double centerDistance);

/// The paper's f(D1, D2, x): intersection area of disk L1 (radius D1,
/// centred at the origin) and disk L2 (radius D2) whose centre lies at
/// signed distance x from L1's border (centre distance D1 + x).
/// D1 == 0 denotes a degenerate disk with zero area.
double intersectionAreaEq1(double d1, double d2, double x);

}  // namespace nsmodel::geom
