// Concentric-ring decomposition of the deployment disk (Section 4.2.2 and
// Appendix A of the paper).
//
// The analytical framework partitions the field (a disk of radius P*r) into
// P rings R_1..R_P of width r.  For a node u in ring R_j at radial offset
// x in [0, r] from the ring's inner boundary, it needs
//
//   A(x, k): the area of ring R_k within u's transmission range r,
//   B(x, k): the area of ring R_k within u's carrier-sensing annulus
//            (distance in (r, cs*r] from u, cs = 2 in the paper).
//
// Both are derived from the circle-intersection primitive; this header
// exposes them for arbitrary k so callers can iterate k = j-1..j+1
// (resp. j-2..j+2) exactly as the paper does, with out-of-range rings
// returning zero area.
#pragma once

#include <vector>

namespace nsmodel::geom {

/// Geometry of the P-ring decomposition with ring width `r`.
class RingGeometry {
 public:
  /// `ringCount` = P (>= 1), `ringWidth` = r (> 0).
  RingGeometry(int ringCount, double ringWidth);

  int ringCount() const { return ringCount_; }
  double ringWidth() const { return ringWidth_; }

  /// Outer radius of the field, P * r.
  double fieldRadius() const;

  /// Area C_k of ring R_k (1-based). Rings outside 1..P have zero area.
  double ringArea(int k) const;

  /// Area of ring R_k within distance `radius` of a point at distance
  /// `centerDist` from the field centre. Zero for k outside 1..P.
  double ringDiskIntersection(int k, double centerDist, double radius) const;

  /// A(x, k) for u in ring j at offset x in [0, r] from the inner boundary.
  double coverageArea(int j, double x, int k) const;

  /// B(x, k): ring R_k within the annulus (r, csFactor*r] around u.
  /// csFactor > 1 (the paper uses 2).
  double carrierSenseArea(int j, double x, int k, double csFactor = 2.0) const;

  /// Radial distance of u in ring j at offset x from the field centre.
  double radialPosition(int j, double x) const;

 private:
  int ringCount_;
  double ringWidth_;
};

}  // namespace nsmodel::geom
