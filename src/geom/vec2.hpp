// Two-dimensional vectors for node positions.
#pragma once

#include <cmath>

namespace nsmodel::geom {

/// A 2-D point / vector with double components.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double xx, double yy) : x(xx), y(yy) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }

  constexpr bool operator==(const Vec2& o) const = default;

  constexpr double dot(const Vec2& o) const { return x * o.x + y * o.y; }
  constexpr double normSquared() const { return dot(*this); }
  double norm() const { return std::sqrt(normSquared()); }

  double distanceTo(const Vec2& o) const { return (*this - o).norm(); }
  constexpr double distanceSquaredTo(const Vec2& o) const {
    return (*this - o).normSquared();
  }
};

constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

}  // namespace nsmodel::geom
