#include "geom/disk_sampling.hpp"

#include <cmath>

#include "support/error.hpp"

namespace nsmodel::geom {

Vec2 sampleDisk(support::Rng& rng, const Vec2& center, double radius) {
  NSMODEL_CHECK(radius >= 0.0, "disk radius must be >= 0");
  const double rho = radius * std::sqrt(rng.uniform());
  const double theta = rng.uniform(0.0, 2.0 * M_PI);
  return center + Vec2{rho * std::cos(theta), rho * std::sin(theta)};
}

Vec2 sampleAnnulus(support::Rng& rng, const Vec2& center, double innerRadius,
                   double outerRadius) {
  NSMODEL_CHECK(innerRadius >= 0.0 && innerRadius < outerRadius,
                "annulus requires 0 <= inner < outer");
  const double u = rng.uniform();
  const double rho = std::sqrt(innerRadius * innerRadius +
                               u * (outerRadius * outerRadius -
                                    innerRadius * innerRadius));
  const double theta = rng.uniform(0.0, 2.0 * M_PI);
  return center + Vec2{rho * std::cos(theta), rho * std::sin(theta)};
}

std::vector<Vec2> sampleDiskPoints(support::Rng& rng, const Vec2& center,
                                   double radius, std::size_t count) {
  std::vector<Vec2> points;
  points.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    points.push_back(sampleDisk(rng, center, radius));
  }
  return points;
}

std::vector<Vec2> sampleJitteredGridDisk(support::Rng& rng, const Vec2& center,
                                         double radius, double spacing,
                                         double jitter) {
  NSMODEL_CHECK(spacing > 0.0, "grid spacing must be positive");
  NSMODEL_CHECK(jitter >= 0.0 && jitter <= 1.0, "jitter must lie in [0, 1]");
  std::vector<Vec2> points;
  const auto steps = static_cast<long>(std::ceil(radius / spacing));
  for (long iy = -steps; iy <= steps; ++iy) {
    for (long ix = -steps; ix <= steps; ++ix) {
      Vec2 p{static_cast<double>(ix) * spacing,
             static_cast<double>(iy) * spacing};
      if (jitter > 0.0) {
        const double half = jitter * spacing * 0.5;
        p += Vec2{rng.uniform(-half, half), rng.uniform(-half, half)};
      }
      if (p.normSquared() <= radius * radius) points.push_back(center + p);
    }
  }
  return points;
}

}  // namespace nsmodel::geom
