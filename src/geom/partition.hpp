// Spatial partitioning of point sets into balanced stripes.
//
// The sharded simulation engine (sim/sharded_engine.hpp) assigns every
// node to exactly one worker shard.  Identity never depends on the
// partition — only load balance does — so the partition is the simplest
// shape that keeps both the per-shard node counts and the cross-shard
// halo small for the paper's disk deployments: vertical stripes holding
// equal node counts (x-quantiles).  Quantiles rather than equal-width
// stripes because the disk's node density is radial, not uniform in x.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"

namespace nsmodel::geom {

/// Assigns each point an owner stripe in [0, stripes): points are ranked
/// by (x, index) — the index tiebreak keeps the assignment deterministic
/// for coincident coordinates — and rank i goes to stripe
/// i * stripes / n.  Stripe populations differ by at most one node.
/// `stripes` must satisfy 1 <= stripes <= points.size().
std::vector<std::uint32_t> quantileStripeOwners(
    const std::vector<Vec2>& points, std::size_t stripes);

/// Inclusive stripe interval [lo, hi]; always contains the stripe itself.
struct StripeInterval {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
};

/// Halo derivation for the sharded engine's neighbor-pair
/// synchronisation: for each stripe, the inclusive interval of stripes
/// that can hold a point within `reach` of one of its points.  `reach`
/// is the interaction radius — for the broadcast channels the maximum of
/// the transmission and carrier-sense radii, since a transmitter within
/// either distance of a receiver contributes to that receiver's slot
/// outcome.  Derived from the stripes' x-extents only (the stripes are
/// vertical), so it is a superset of the exact edge-level interaction
/// set — a stripe may conservatively wait on a neighbor no edge actually
/// crosses into, which costs a little synchronisation and no
/// correctness.  The result is the smallest enclosing interval of the
/// interacting stripe set; for quantile stripes (x-sorted, so extents
/// are ordered) that set is itself contiguous and the interval is exact.
/// `owner` must map each point to a stripe in [0, stripes), with every
/// stripe owning at least one point.
std::vector<StripeInterval> stripeReachNeighbors(
    const std::vector<Vec2>& points, const std::vector<std::uint32_t>& owner,
    std::size_t stripes, double reach);

}  // namespace nsmodel::geom
