// Spatial partitioning of point sets into balanced stripes.
//
// The sharded simulation engine (sim/sharded_engine.hpp) assigns every
// node to exactly one worker shard.  Identity never depends on the
// partition — only load balance does — so the partition is the simplest
// shape that keeps both the per-shard node counts and the cross-shard
// halo small for the paper's disk deployments: vertical stripes holding
// equal node counts (x-quantiles).  Quantiles rather than equal-width
// stripes because the disk's node density is radial, not uniform in x.
#pragma once

#include <cstdint>
#include <vector>

#include "geom/vec2.hpp"

namespace nsmodel::geom {

/// Assigns each point an owner stripe in [0, stripes): points are ranked
/// by (x, index) — the index tiebreak keeps the assignment deterministic
/// for coincident coordinates — and rank i goes to stripe
/// i * stripes / n.  Stripe populations differ by at most one node.
/// `stripes` must satisfy 1 <= stripes <= points.size().
std::vector<std::uint32_t> quantileStripeOwners(
    const std::vector<Vec2>& points, std::size_t stripes);

}  // namespace nsmodel::geom
