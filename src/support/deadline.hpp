// Cooperative wall-clock deadlines.
//
// Long-running grid points (a Monte-Carlo evaluation of one sweep
// coordinate) cannot be preempted safely, so timeouts in this library are
// cooperative: the work loop is handed a Deadline and calls check() at
// natural safe points (between replications, between phases).  When the
// deadline has expired, check() throws nsmodel::TimeoutError — the one
// retryable category in the error taxonomy — which the robust sweep
// runner converts into a bounded retry-with-reseed.
#pragma once

#include <chrono>

namespace nsmodel::support {

/// A wall-clock budget.  Default-constructed deadlines never expire.
class Deadline {
 public:
  /// Unlimited (never expires).
  Deadline() = default;

  /// Expires `seconds` (> 0) from now.
  static Deadline after(double seconds);

  /// True when a finite budget was set.
  bool limited() const { return limited_; }

  /// True when a finite budget was set and has run out.
  bool expired() const;

  /// Throws nsmodel::TimeoutError mentioning `what` when expired().
  void check(const char* what) const;

 private:
  bool limited_ = false;
  std::chrono::steady_clock::time_point at_{};
};

}  // namespace nsmodel::support
