// Cooperative wall-clock deadlines.
//
// Long-running grid points (a Monte-Carlo evaluation of one sweep
// coordinate) cannot be preempted safely, so timeouts in this library are
// cooperative: the work loop is handed a Deadline and calls check() at
// natural safe points (between replications, between phases).  When the
// deadline has expired, check() throws nsmodel::TimeoutError — the one
// retryable category in the error taxonomy — which the robust sweep
// runner converts into a bounded retry-with-reseed.
// A CancelToken is the external-request twin of a Deadline: another thread
// (a serving frontend, a test harness, a signal handler trampoline) flips
// it, and the work loop observes it at the same safe points where it
// checks its Deadline.  Cancellation surfaces as the same retryable
// TimeoutError so every caller that already handles deadline expiry —
// the robust sweep runner's retry loop, the CLI's structured error exit —
// handles cancellation for free.
#pragma once

#include <atomic>
#include <chrono>

namespace nsmodel::support {

/// A wall-clock budget.  Default-constructed deadlines never expire.
class Deadline {
 public:
  /// Unlimited (never expires).
  Deadline() = default;

  /// Expires `seconds` (> 0) from now.
  static Deadline after(double seconds);

  /// True when a finite budget was set.
  bool limited() const { return limited_; }

  /// True when a finite budget was set and has run out.
  bool expired() const;

  /// Throws nsmodel::TimeoutError mentioning `what` when expired().
  void check(const char* what) const;

 private:
  bool limited_ = false;
  std::chrono::steady_clock::time_point at_{};
};

/// A thread-safe cooperative cancellation flag.  requestCancel() may be
/// called from any thread, any number of times; the work loop polls
/// cancelled()/check() at safe points.  Tokens cannot be reset — one
/// token per run attempt.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Asks the owning work loop to stop at its next safe point.
  void requestCancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// Throws nsmodel::TimeoutError mentioning `what` when cancelled.
  void check(const char* what) const;

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace nsmodel::support
