// Memory-budget admission control and process resource introspection.
//
// A million-node sharded broadcast allocates gigabytes before the first
// slot resolves; a serving daemon that accepts untrusted job sizes must
// refuse such a job *before* the allocator dies in std::bad_alloc.  This
// module provides the three pieces:
//
//  * analytic footprint estimators — bytes a scenario (deployment +
//    topology CSR) and each execution backend (flat, batched, sharded)
//    will allocate, computed from the run shape (N, rho, carrier sense,
//    slot horizon) alone.  Coefficients mirror the actual container
//    layouts and carry a 25% safety factor for allocator slack; DESIGN.md
//    §13 compares them against measured RSS.
//
//  * a process-wide budget — NSMODEL_MEM_BUDGET ("512M", "8G", bytes
//    with an optional K/M/G binary suffix; 0 or unset = unlimited),
//    overridable programmatically (the CLI's --mem-budget).
//
//  * admission functions — given the budget, either admit the requested
//    parallel shape, degrade it stepwise (shrink batch width, then
//    reduce shards), or refuse with nsmodel::ResourceError.
//
// peakRssMb() lives here too (promoted out of bench/micro_sweep) so the
// estimators and the benchmarks report against the same ruler.
#pragma once

#include <cstdint>
#include <string>

namespace nsmodel::support {

/// Peak resident set size of this process in MiB.  getrusage's ru_maxrss
/// is KiB on Linux but bytes on macOS; both are normalised here.  Returns
/// 0.0 on platforms without getrusage.
double peakRssMb();

/// Parses a byte count with an optional binary suffix: "1048576", "512K",
/// "64M", "2G" (case-insensitive).  Rejects empty strings, signs,
/// trailing garbage, and values that overflow std::uint64_t with
/// nsmodel::ConfigError mentioning `what`.  0 means "unlimited" to every
/// consumer in this module.
std::uint64_t parseMemBytes(const char* what, const std::string& text);

/// The effective memory budget in bytes; 0 = unlimited.  A programmatic
/// override (setMemBudgetOverride) wins over the NSMODEL_MEM_BUDGET
/// environment variable.  Throws nsmodel::ConfigError when the
/// environment value is malformed.
std::uint64_t memBudgetBytes();

/// Overrides the budget (0 = explicitly unlimited); pass a negative
/// value to fall back to the environment.  Thread-safe.
void setMemBudgetOverride(std::int64_t bytes);

/// The shape of one broadcast run, as known *before* anything is
/// allocated.
struct RunShape {
  std::uint64_t nodes = 0;        ///< (expected) deployment size
  double avgNeighbors = 0.0;      ///< rho — directed edges per node
  bool carrierSense = false;      ///< CAM-CS doubles the topology tables
  std::uint64_t maxSlots = 0;     ///< slotsPerPhase * maxPhases
};

/// Bytes for the shared scenario: positions, spatial grid, receiver CSR
/// (and the carrier-sense CSR when enabled).
std::uint64_t estimateScenarioBytes(const RunShape& shape);

/// Bytes for one flat-loop RunWorkspace on top of the scenario.
std::uint64_t estimateFlatRunBytes(const RunShape& shape);

/// Bytes for one BatchWorkspace of `lanes` lockstep lanes (each lane
/// carries its own per-replication scenario in the batched Monte-Carlo
/// path, so this scales the scenario term too).
std::uint64_t estimateBatchRunBytes(const RunShape& shape, int lanes);

/// Bytes for a ShardedEngine run at `shards` shards on top of the
/// scenario: shared status arrays, per-shard restricted CSRs, collision
/// tables and slot agendas.
std::uint64_t estimateShardedRunBytes(const RunShape& shape, int shards);

/// Largest shard count <= `requestedShards` whose scenario + sharded-run
/// footprint fits `budgetBytes` (0 = unlimited: returns the request).
/// Throws nsmodel::ResourceError when even one shard does not fit.
int admitShardCount(const RunShape& shape, int requestedShards,
                    std::uint64_t budgetBytes);

/// Largest batch width <= `requestedWidth` (halving steps, floor 1) such
/// that `concurrentChunks` simultaneous BatchWorkspaces of that width fit
/// `budgetBytes` (0 = unlimited: returns the request).  Throws
/// nsmodel::ResourceError when even width-1 sequential execution does
/// not fit.
int admitBatchWidth(const RunShape& shape, int requestedWidth,
                    std::size_t concurrentChunks, std::uint64_t budgetBytes);

}  // namespace nsmodel::support
