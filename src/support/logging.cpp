#include "support/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace nsmodel::support {

namespace {
std::atomic<LogLevel> gLevel{LogLevel::Warn};
std::mutex gMutex;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
    case LogLevel::Off:
      return "OFF";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { gLevel.store(level); }

LogLevel logLevel() { return gLevel.load(); }

void logMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(gLevel.load())) return;
  std::lock_guard lock(gMutex);
  std::cerr << '[' << levelName(level) << "] " << message << '\n';
}

}  // namespace nsmodel::support
