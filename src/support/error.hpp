// Error handling primitives for the nsmodel library.
//
// The library reports contract violations (bad arguments, broken invariants)
// by throwing nsmodel::Error.  Internal invariants that should be impossible
// to violate use NSMODEL_ASSERT, which is compiled in all build types: the
// numerical code in this project is cheap relative to the cost of silently
// propagating a NaN through a phase recursion.
//
// Errors carry a category so callers that orchestrate many runs (the robust
// sweep runner, CI lanes) can tell retryable failures apart from fatal ones:
// a TimeoutError is worth re-running with a fresh seed, a ConfigError never
// is.  Subclasses exist for the common categories; all of them remain
// catchable as nsmodel::Error.
#pragma once

#include <stdexcept>
#include <string>

namespace nsmodel {

/// Coarse failure taxonomy.  Generic covers internal invariants and
/// uncategorised errors; the others map to the dedicated subclasses below.
enum class ErrorCategory {
  Generic,   ///< internal invariant / uncategorised failure
  Config,    ///< invalid configuration or argument (never retryable)
  Io,        ///< file system / serialization failure
  Timeout,   ///< a wall-clock deadline expired (retryable)
  Resource,  ///< a resource budget (memory) was or would be exceeded
};

/// Lower-case category name ("generic", "config", "io", "timeout",
/// "resource") for structured error lines.
const char* errorCategoryName(ErrorCategory category);

/// Exception thrown on contract violations anywhere in the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what,
                 ErrorCategory category = ErrorCategory::Generic)
      : std::runtime_error(what), category_(category) {}

  ErrorCategory category() const { return category_; }

  /// Whether retrying the failed operation (possibly reseeded) can
  /// plausibly succeed.  Drives the sweep runner's retry policy.
  bool retryable() const { return category_ == ErrorCategory::Timeout; }

 private:
  ErrorCategory category_;
};

/// Invalid configuration, malformed flag, or violated precondition.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what)
      : Error(what, ErrorCategory::Config) {}
};

/// File system or serialization failure (journals, CSV output, goldens).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what)
      : Error(what, ErrorCategory::Io) {}
};

/// A cooperative wall-clock deadline expired; the operation is retryable.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what)
      : Error(what, ErrorCategory::Timeout) {}
};

/// A memory (or other resource) budget was exceeded, either predicted by
/// admission control before allocating or observed as an allocation
/// failure mid-run.  Not retryable as-is: the same configuration will
/// fail the same way — the caller must shrink the job or raise the
/// budget.
class ResourceError : public Error {
 public:
  explicit ResourceError(const std::string& what)
      : Error(what, ErrorCategory::Resource) {}
};

namespace detail {
[[noreturn]] void throwError(const char* expr, const char* file, int line,
                             const std::string& message);
[[noreturn]] void throwAssert(const char* expr, const char* file, int line);
}  // namespace detail

/// Checks a user-facing precondition; throws nsmodel::ConfigError on
/// failure (still catchable as nsmodel::Error).
#define NSMODEL_CHECK(expr, message)                                       \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::nsmodel::detail::throwError(#expr, __FILE__, __LINE__, (message)); \
    }                                                                      \
  } while (false)

/// Checks an internal invariant; throws nsmodel::Error on failure.
/// Enabled in every build type.
#define NSMODEL_ASSERT(expr)                                          \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::nsmodel::detail::throwAssert(#expr, __FILE__, __LINE__);      \
    }                                                                 \
  } while (false)

}  // namespace nsmodel
