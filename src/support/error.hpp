// Error handling primitives for the nsmodel library.
//
// The library reports contract violations (bad arguments, broken invariants)
// by throwing nsmodel::Error.  Internal invariants that should be impossible
// to violate use NSMODEL_ASSERT, which is compiled in all build types: the
// numerical code in this project is cheap relative to the cost of silently
// propagating a NaN through a phase recursion.
#pragma once

#include <stdexcept>
#include <string>

namespace nsmodel {

/// Exception thrown on contract violations anywhere in the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throwError(const char* expr, const char* file, int line,
                             const std::string& message);
}  // namespace detail

/// Checks a user-facing precondition; throws nsmodel::Error on failure.
#define NSMODEL_CHECK(expr, message)                                       \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::nsmodel::detail::throwError(#expr, __FILE__, __LINE__, (message)); \
    }                                                                      \
  } while (false)

/// Checks an internal invariant; throws nsmodel::Error on failure.
/// Enabled in every build type.
#define NSMODEL_ASSERT(expr)                                \
  do {                                                      \
    if (!(expr)) {                                          \
      ::nsmodel::detail::throwError(#expr, __FILE__,        \
                                    __LINE__,               \
                                    "internal invariant");  \
    }                                                       \
  } while (false)

}  // namespace nsmodel
