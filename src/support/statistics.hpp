// Streaming statistics for Monte-Carlo aggregation.
#pragma once

#include <cstddef>
#include <vector>

namespace nsmodel::support {

/// Welford's streaming mean/variance accumulator.
class RunningStat {
 public:
  void add(double x);

  /// Merges another accumulator (parallel reduction), as in Chan et al.
  void merge(const RunningStat& other);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }

  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  /// Standard error of the mean; 0 for fewer than two samples.
  double standardError() const;

  /// Half-width of the normal-approximation confidence interval at the
  /// given two-sided confidence level (default 95%).
  double confidenceHalfWidth(double level = 0.95) const;

  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary of a sample: mean, CI half-width, extremes.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ciHalfWidth95 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Summarises a vector of samples.
Summary summarize(const std::vector<double>& samples);

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// relative error < 1.15e-9). Used for confidence intervals.
double normalQuantile(double probability);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range are clamped into the boundary buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t totalCount() const { return total_; }
  std::size_t binCount(std::size_t bin) const;
  std::size_t bins() const { return counts_.size(); }
  double binLow(std::size_t bin) const;
  double binHigh(std::size_t bin) const;

  /// Empirical quantile (linear within the containing bin).
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace nsmodel::support
