// SeqGate: a monotone sequence counter threads can wait on.
//
// The sharded simulation engine replaced its two per-slot global
// std::barrier waits with per-neighbor-pair synchronisation: every shard
// publishes two counters ("phase A of slot t published", "phase B of
// slot t done") and waits only on the counters of the stripes whose
// nodes it can actually interact with (DESIGN.md §14).  A barrier is the
// wrong primitive for that — it synchronises *everyone* and resets — so
// this is the right one: a single-writer, multi-reader, monotonically
// advancing uint64 with a spin-then-futex wait.
//
// Contract:
//   * Exactly one thread calls advanceTo()/abandon() (the owner); any
//     number of threads call waitFor()/load().  Values passed to
//     advanceTo must be non-decreasing.
//   * advanceTo(v) makes every write the owner performed before the call
//     visible to any thread whose waitFor()/load() observes a value
//     >= v (release/acquire publication; see the memory-ordering note in
//     seq_gate.cpp for why both sides of the park handshake are seq_cst).
//   * abandon() jumps the counter to kAbandoned (the maximum value), so
//     every pending and future waitFor returns immediately.  Waiters
//     that can observe kAbandoned must re-check their own stop condition
//     before trusting data the gate guards — the whole point of abandon
//     is that the guarded data will never arrive.
//
// waitFor spins briefly (the producer is typically one phase of one
// simulation slot away) and then parks on the C++20 atomic wait, which
// libstdc++/libc++ implement with a futex — so an idle waiter costs
// nothing until notified.  notify_all is only issued when a waiter has
// registered, keeping the uncontended fast path store-only.
#pragma once

#include <atomic>
#include <cstdint>

namespace nsmodel::support {

class SeqGate {
 public:
  /// The abandonment value: the maximum uint64, never reached by a real
  /// sequence.  waitFor(t) for any real t returns once the gate holds it.
  static constexpr std::uint64_t kAbandoned = ~std::uint64_t{0};

  SeqGate() = default;
  SeqGate(const SeqGate&) = delete;
  SeqGate& operator=(const SeqGate&) = delete;

  /// Current value (acquire: pairs with advanceTo's publication).
  std::uint64_t load() const {
    return seq_.load(std::memory_order_acquire);
  }

  /// Publishes `value` (must be >= the current value) and wakes parked
  /// waiters.  Owner thread only.
  void advanceTo(std::uint64_t value);

  /// advanceTo(kAbandoned): unblocks every waiter forever.
  void abandon() { advanceTo(kAbandoned); }

  /// Blocks until the gate's value is >= `target`; returns the value
  /// observed (>= target — kAbandoned signals abandonment).  Fast path
  /// is one acquire load.
  std::uint64_t waitFor(std::uint64_t target) const {
    const std::uint64_t cur = seq_.load(std::memory_order_acquire);
    if (cur >= target) return cur;
    return waitSlow(target);
  }

  /// Re-initialises the counter between runs.  Only valid while no
  /// thread is waiting (the owner calls it before the gang starts).
  void reset(std::uint64_t value) {
    seq_.store(value, std::memory_order_relaxed);
  }

 private:
  std::uint64_t waitSlow(std::uint64_t target) const;

  std::atomic<std::uint64_t> seq_{0};
  /// Parked-waiter count: advanceTo only pays the notify syscall when a
  /// waiter registered (Dekker-style handshake, see seq_gate.cpp).
  mutable std::atomic<std::uint32_t> waiters_{0};
};

}  // namespace nsmodel::support
