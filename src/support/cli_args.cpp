#include "support/cli_args.hpp"

#include <cerrno>
#include <climits>
#include <cmath>
#include <cstdlib>

#include "support/error.hpp"

namespace nsmodel::support {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      const std::string name = eq == std::string::npos
                                   ? arg.substr(2)
                                   : arg.substr(2, eq - 2);
      NSMODEL_CHECK(!name.empty(),
                    "flag with empty name: '" + arg + "'");
      if (eq == std::string::npos) {
        flags_[name] = std::nullopt;
      } else {
        flags_[name] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  touched_[name] = true;
  return flags_.find(name) != flags_.end();
}

std::optional<std::optional<std::string>> CliArgs::get(
    const std::string& name) const {
  touched_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::getString(const std::string& name,
                               const std::string& fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  NSMODEL_CHECK(value->has_value(),
                "--" + name + " requires a value (--" + name + "=...)");
  return **value;
}

double CliArgs::getDouble(const std::string& name, double fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  NSMODEL_CHECK(value->has_value(),
                "--" + name + " requires a numeric value");
  // strtod also understands hex floats ("0x1p3"), "inf" and "nan" — none
  // of which a flag like --p should silently accept.  Plain decimals
  // (including e/E exponents) never contain these letters.
  NSMODEL_CHECK((*value)->find_first_of("xXiInNpP") == std::string::npos,
                "--" + name + " is not a plain decimal number: " + **value);
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod((*value)->c_str(), &end);
  NSMODEL_CHECK(end != nullptr && *end == '\0' && !(*value)->empty(),
                "--" + name + " is not a number: " + **value);
  // ERANGE overflow saturates to +-HUGE_VAL; reject instead of silently
  // clamping.  Underflow (tiny magnitudes rounding towards zero) is fine.
  NSMODEL_CHECK(errno != ERANGE || std::abs(parsed) != HUGE_VAL,
                "--" + name + " is out of range: " + **value);
  return parsed;
}

long CliArgs::getInt(const std::string& name, long fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  NSMODEL_CHECK(value->has_value(),
                "--" + name + " requires an integer value");
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol((*value)->c_str(), &end, 10);
  NSMODEL_CHECK(end != nullptr && *end == '\0' && !(*value)->empty(),
                "--" + name + " is not an integer: " + **value);
  // strtol saturates to LONG_MIN/LONG_MAX on overflow and flags ERANGE.
  NSMODEL_CHECK(errno != ERANGE,
                "--" + name + " is out of range: " + **value);
  return parsed;
}

bool CliArgs::getBool(const std::string& name, bool fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  if (!value->has_value()) return true;  // bare --flag means true
  const std::string& text = **value;
  if (text == "true" || text == "1" || text == "yes") return true;
  if (text == "false" || text == "0" || text == "no") return false;
  NSMODEL_CHECK(false, "--" + name + " is not a boolean: " + text);
  return fallback;
}

int parsePolicyEnv(const char* name, const char* raw, int autoValue) {
  if (raw == nullptr) return autoValue;
  const std::string choice = raw;
  if (choice.empty() || choice == "auto") return autoValue;
  if (choice == "off") return 1;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(choice.c_str(), &end, 10);
  NSMODEL_CHECK(end != choice.c_str() && end != nullptr && *end == '\0',
                std::string("unknown ") + name + " value '" + choice +
                    "' (want off|auto|N)");
  // strtol saturates to LONG_MIN/LONG_MAX on overflow and flags ERANGE;
  // anything outside [1, INT_MAX] is rejected rather than clamped, so
  // e.g. NSMODEL_BATCH=0 no longer silently means "off".
  NSMODEL_CHECK(errno != ERANGE && parsed >= 1 && parsed <= INT_MAX,
                std::string(name) + " value out of range: '" + choice +
                    "' (want off|auto|N with 1 <= N <= " +
                    std::to_string(INT_MAX) + ")");
  return static_cast<int>(parsed);
}

std::vector<std::string> CliArgs::unusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (touched_.find(name) == touched_.end()) unused.push_back(name);
  }
  return unused;
}

}  // namespace nsmodel::support
