#include "support/integrate.hpp"

#include <cmath>

#include "support/error.hpp"

namespace nsmodel::support {

GaussLegendre::GaussLegendre(int order) {
  NSMODEL_CHECK(order >= 1, "GaussLegendre order must be >= 1");
  nodes_.resize(order);
  weights_.resize(order);
  const int n = order;
  // Roots come in +- pairs; iterate on the positive half.
  for (int i = 0; i < (n + 1) / 2; ++i) {
    // Chebyshev-based initial guess for the i-th root of P_n.
    double x = std::cos(M_PI * (static_cast<double>(i) + 0.75) /
                        (static_cast<double>(n) + 0.5));
    double dp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      // Evaluate P_n(x) and P'_n(x) via the three-term recurrence.
      double p0 = 1.0;
      double p1 = x;
      for (int k = 2; k <= n; ++k) {
        const double pk = ((2.0 * k - 1.0) * x * p1 - (k - 1.0) * p0) /
                          static_cast<double>(k);
        p0 = p1;
        p1 = pk;
      }
      dp = static_cast<double>(n) * (x * p1 - p0) / (x * x - 1.0);
      const double dx = p1 / dp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    const double w = 2.0 / ((1.0 - x * x) * dp * dp);
    nodes_[i] = -x;
    nodes_[n - 1 - i] = x;
    weights_[i] = w;
    weights_[n - 1 - i] = w;
  }
  if (n % 2 == 1) {
    // P_n(0) derivative for the central node (x = 0).
    nodes_[n / 2] = 0.0;
  }
}

double GaussLegendre::integrate(double a, double b,
                                const std::function<double(double)>& f) const {
  const double mid = 0.5 * (a + b);
  const double half = 0.5 * (b - a);
  double sum = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    sum += weights_[i] * f(mid + half * nodes_[i]);
  }
  return sum * half;
}

namespace {
double simpsonRule(double fa, double fm, double fb, double a, double b) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptiveStep(const std::function<double(double)>& f, double a, double b,
                    double fa, double fm, double fb, double whole, double tol,
                    int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = simpsonRule(fa, flm, fm, a, m);
  const double right = simpsonRule(fm, frm, fb, m, b);
  const double delta = left + right - whole;
  if (depth <= 0 || std::abs(delta) <= 15.0 * tol) {
    return left + right + delta / 15.0;
  }
  return adaptiveStep(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1) +
         adaptiveStep(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1);
}
}  // namespace

double adaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, double tol, int maxDepth) {
  NSMODEL_CHECK(tol > 0.0, "adaptiveSimpson tolerance must be positive");
  if (a == b) return 0.0;
  const double m = 0.5 * (a + b);
  const double fa = f(a);
  const double fm = f(m);
  const double fb = f(b);
  const double whole = simpsonRule(fa, fm, fb, a, b);
  return adaptiveStep(f, a, b, fa, fm, fb, whole, tol, maxDepth);
}

}  // namespace nsmodel::support
