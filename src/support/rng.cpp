#include "support/rng.hpp"

#include <cmath>

#include "support/error.hpp"

namespace nsmodel::support {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm.next();
}

Rng Rng::forStream(std::uint64_t seed, std::uint64_t stream) {
  // Mix the stream id through SplitMix64 before combining so that
  // consecutive stream ids land far apart in seed space.
  SplitMix64 sm(stream + 0x5851f42d4c957f2dULL);
  return Rng(seed ^ sm.next());
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // Take the top 53 bits; (1.0 / 2^53) * k is exactly representable.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  NSMODEL_CHECK(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) {
  NSMODEL_CHECK(n > 0, "below(n) requires n > 0");
  // Rejection sampling on the top of the range to avoid modulo bias.
  const std::uint64_t limit = max() - max() % n;
  std::uint64_t draw;
  do {
    draw = next();
  } while (draw >= limit);
  return draw % n;
}

std::uint64_t Rng::stateFingerprint() const {
  // SplitMix64-style avalanche over the four state words; any change to
  // any word changes the fingerprint with overwhelming probability.
  std::uint64_t h = 0x6a09e667f3bcc909ULL;
  for (const std::uint64_t word : state_) {
    std::uint64_t z = h ^ (word + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    h = z ^ (z >> 31);
  }
  return h;
}

std::int64_t Rng::inRange(std::int64_t lo, std::int64_t hi) {
  NSMODEL_CHECK(lo <= hi, "inRange(lo, hi) requires lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // may wrap to 0 for full range
  if (span == 0) return static_cast<std::int64_t>(next());
  return lo + static_cast<std::int64_t>(below(span));
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double rate) {
  NSMODEL_CHECK(rate > 0.0, "exponential(rate) requires rate > 0");
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double lambda) {
  NSMODEL_CHECK(lambda >= 0.0, "poisson(lambda) requires lambda >= 0");
  if (lambda == 0.0) return 0;
  // Chunked inversion by multiplication: exp(-lambda) underflows past ~745,
  // so draw in chunks of at most 500 and sum (Poisson is additive).
  std::uint64_t total = 0;
  double remaining = lambda;
  while (remaining > 0.0) {
    const double chunk = remaining > 500.0 ? 500.0 : remaining;
    remaining -= chunk;
    const double threshold = std::exp(-chunk);
    double product = 1.0;
    std::uint64_t count = 0;
    for (;;) {
      product *= uniform();
      if (product <= threshold) break;
      ++count;
    }
    total += count;
  }
  return total;
}

}  // namespace nsmodel::support
