// Minimal leveled logging.
//
// The simulator and benches mostly print structured tables; logging exists
// for progress reporting on long sweeps and for debugging, and is silenced
// (Level::Warn) by default so that bench output stays machine-parseable.
#pragma once

#include <sstream>
#include <string>

namespace nsmodel::support {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global threshold; messages below it are dropped.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emits one line to stderr with a level prefix (thread-safe).
void logMessage(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { logMessage(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine logDebug() { return detail::LogLine(LogLevel::Debug); }
inline detail::LogLine logInfo() { return detail::LogLine(LogLevel::Info); }
inline detail::LogLine logWarn() { return detail::LogLine(LogLevel::Warn); }
inline detail::LogLine logError() { return detail::LogLine(LogLevel::Error); }

}  // namespace nsmodel::support
