// Deterministic random number generation.
//
// Monte-Carlo replications in this library must be reproducible regardless
// of how many worker threads execute them.  We therefore never share a
// generator between replications: each replication derives its own Rng from
// a (master seed, stream id) pair via SplitMix64, so replication k always
// sees the same random sequence no matter which thread runs it or in which
// order replications complete.
//
// The core generator is xoshiro256** (Blackman & Vigna), which is small,
// fast, and passes BigCrush; SplitMix64 is used for seeding as its authors
// recommend.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace nsmodel::support {

/// SplitMix64 generator. Used to expand a 64-bit seed into generator state
/// and to derive independent stream seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** pseudo random generator.
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can be used
/// with <random> distributions, but the library mostly uses the convenience
/// members below to keep results bit-identical across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9d1ce4e5b9ULL);

  /// Creates the generator for stream `stream` of master seed `seed`.
  /// Distinct (seed, stream) pairs yield statistically independent streams.
  static Rng forStream(std::uint64_t seed, std::uint64_t stream);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// 64-bit mix of the current 256-bit state.  Consumes nothing: the
  /// generator's sequence is unchanged.  Used to seed auxiliary
  /// deterministic processes (e.g. fault plans) that must vary per
  /// replication without perturbing this generator's stream.
  std::uint64_t stateFingerprint() const;

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling,
  /// so the result is exactly uniform.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t inRange(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard exponential variate with the given rate (> 0).
  double exponential(double rate);

  /// Poisson variate with mean lambda >= 0 (inversion for small lambda,
  /// PTRS-like normal-rejection fallback is unnecessary at our sizes; we
  /// use inversion-by-multiplication chunked to stay numerically safe).
  std::uint64_t poisson(double lambda);

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace nsmodel::support
