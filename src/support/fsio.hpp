// Durable file IO primitives.
//
// Crash-safety in this library rides on two idioms, both collected here so
// every writer (robust-sweep journal, result CSVs, run checkpoints) gets
// the same guarantees:
//
//  * writeFileAtomic: write to `<path>.tmp`, fsync the file, rename over
//    the destination.  A reader never observes a half-written file — it
//    sees either the old contents or the new ones.  (The containing
//    directory is fsynced best-effort; on non-POSIX platforms the sync
//    steps degrade to plain buffered writes + rename.)
//
//  * syncStream: fflush + fsync an append-mode C stream, used by the
//    journal after every completed record so a SIGKILL between records
//    loses at most the record in flight.
//
// A table-driven CRC-32 (the IEEE 802.3 polynomial, same as zip/png)
// lives here too: checkpoint files carry it so a torn or bit-rotted
// snapshot is detected at load instead of silently corrupting a resumed
// run.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace nsmodel::support {

/// CRC-32 (IEEE, reflected, init/xorout 0xFFFFFFFF) of `size` bytes.
/// Pass a previous return value as `seed` to checksum data in chunks.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

/// Flushes the stdio buffer and fsyncs the underlying descriptor.
/// Throws nsmodel::IoError when either step fails.
void syncStream(std::FILE* stream, const std::string& what);

/// Writes `content` to `path` atomically: `<path>.tmp` + fsync + rename.
/// Throws nsmodel::IoError on any failure (the tmp file is removed).
void writeFileAtomic(const std::string& path, std::string_view content);

/// Reads an entire (binary) file.  Throws nsmodel::IoError when the file
/// cannot be opened or read.
std::string readFile(const std::string& path);

/// True when `path` exists and is readable by the current process.
bool fileReadable(const std::string& path);

}  // namespace nsmodel::support
