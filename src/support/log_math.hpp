// Log-space combinatorics.
//
// The occupancy probabilities mu(K, s) involve terms like C(K, i) (1/s)^i
// ((s-1)/s)^(K-i) with K up to several hundred; evaluating them in log
// space avoids overflow of the binomial coefficient and underflow of the
// powers.
#pragma once

#include <cstdint>

namespace nsmodel::support {

/// log(n!) via lgamma. Requires n >= 0.
double logFactorial(std::int64_t n);

/// log C(n, k). Returns -inf when k < 0 or k > n (empty coefficient).
double logBinomial(std::int64_t n, std::int64_t k);

/// log of the falling factorial n * (n-1) * ... * (n-k+1).
/// Returns -inf when k > n; 0 when k == 0.
double logFallingFactorial(std::int64_t n, std::int64_t k);

/// Exact binomial coefficient as double (may overflow to inf for large n).
double binomial(std::int64_t n, std::int64_t k);

/// Numerically stable log(exp(a) + exp(b)).
double logSumExp(double a, double b);

}  // namespace nsmodel::support
