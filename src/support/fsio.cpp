#include "support/fsio.hpp"

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define NSMODEL_POSIX_IO 1
#else
#define NSMODEL_POSIX_IO 0
#endif

namespace nsmodel::support {

namespace {

std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

[[noreturn]] void throwErrno(const std::string& what) {
  throw IoError(what + ": " + std::strerror(errno));
}

#if NSMODEL_POSIX_IO
void fsyncPath(const std::string& path, int openFlags) {
  const int fd = ::open(path.c_str(), openFlags);
  if (fd < 0) {
    throwErrno("cannot open `" + path + "` for fsync");
  }
  if (::fsync(fd) != 0) {
    const int savedErrno = errno;
    ::close(fd);
    errno = savedErrno;
    // Directory fsync is allowed to fail on some filesystems; the caller
    // decides whether that is fatal.
    throwErrno("fsync of `" + path + "` failed");
  }
  ::close(fd);
}
#endif

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = makeCrcTable();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void syncStream(std::FILE* stream, const std::string& what) {
  NSMODEL_CHECK(stream != nullptr, "syncStream needs an open stream");
  if (std::fflush(stream) != 0) {
    throwErrno("flush of " + what + " failed");
  }
#if NSMODEL_POSIX_IO
  if (::fsync(::fileno(stream)) != 0) {
    throwErrno("fsync of " + what + " failed");
  }
#endif
}

void writeFileAtomic(const std::string& path, std::string_view content) {
  NSMODEL_CHECK(!path.empty(), "writeFileAtomic needs a path");
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw IoError("cannot open `" + tmp + "` for writing");
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      throw IoError("short write to `" + tmp + "`");
    }
  }
#if NSMODEL_POSIX_IO
  try {
    fsyncPath(tmp, O_RDONLY);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
#endif
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int savedErrno = errno;
    std::remove(tmp.c_str());
    errno = savedErrno;
    throwErrno("rename `" + tmp + "` -> `" + path + "` failed");
  }
#if NSMODEL_POSIX_IO
  // Make the rename itself durable.  Some filesystems refuse to fsync a
  // directory; treat that as best-effort rather than failing a write
  // that already landed.
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  try {
    fsyncPath(dir, O_RDONLY | O_DIRECTORY);
  } catch (const IoError&) {
  }
#endif
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("cannot open `" + path + "` for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    throw IoError("read of `" + path + "` failed");
  }
  return std::move(buffer).str();
}

bool fileReadable(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return static_cast<bool>(in);
}

}  // namespace nsmodel::support
