#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

#include "support/error.hpp"

namespace nsmodel::support {

std::size_t ThreadPool::defaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads) {
  NSMODEL_CHECK(threads >= 1, "ThreadPool requires at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

void parallelFor(ThreadPool& pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body,
                 std::size_t chunk) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (chunk == 0) {
    // Aim for ~4 chunks per worker to smooth load imbalance.
    const std::size_t target = pool.size() * 4;
    chunk = std::max<std::size_t>(1, n / std::max<std::size_t>(1, target));
  }

  std::vector<std::future<void>> futures;
  futures.reserve(n / chunk + 1);
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(end, lo + chunk);
    futures.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }

  std::exception_ptr first;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

ThreadPool& globalPool() {
  static ThreadPool pool;
  return pool;
}

void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body,
                 std::size_t chunk) {
  parallelFor(globalPool(), begin, end, body, chunk);
}

}  // namespace nsmodel::support
