#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "support/cli_args.hpp"
#include "support/error.hpp"

namespace nsmodel::support {

std::size_t ThreadPool::defaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int hardware = hw == 0 ? 1 : static_cast<int>(hw);
  // Same off|auto|N grammar (and the same overflow/garbage rejection) as
  // NSMODEL_BATCH and NSMODEL_SHARDS; "off" pins the pool to one worker.
  return static_cast<std::size_t>(parsePolicyEnv(
      "NSMODEL_THREADS", std::getenv("NSMODEL_THREADS"), hardware));
}

ThreadPool::ThreadPool(std::size_t threads) {
  NSMODEL_CHECK(threads >= 1, "ThreadPool requires at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

namespace {

/// Shared state of one parallelFor invocation.  Kept alive by shared_ptr
/// because late-starting helper tasks may outlive the caller's wait (they
/// find no chunk left and return without touching `body`).
struct ParallelForState {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunk = 1;
  std::size_t totalChunks = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> nextChunk{0};
  std::atomic<std::size_t> doneChunks{0};
  std::mutex mutex;
  std::condition_variable done;
  std::exception_ptr error;  // first exception; guarded by mutex

  /// Claims and runs chunks until none are left.  Run by both the pool
  /// helpers and the calling thread itself — the caller always makes
  /// progress on its own loop, so parallelFor may be nested (an inner
  /// call from a pool worker cannot deadlock waiting for a saturated
  /// pool: the worker drains its own chunks).
  void drain() {
    for (;;) {
      const std::size_t c = nextChunk.fetch_add(1);
      if (c >= totalChunks) return;
      const std::size_t lo = begin + c * chunk;
      const std::size_t hi = std::min(end, lo + chunk);
      try {
        for (std::size_t i = lo; i < hi; ++i) (*body)(i);
      } catch (...) {
        std::lock_guard lock(mutex);
        if (!error) error = std::current_exception();
      }
      if (doneChunks.fetch_add(1) + 1 == totalChunks) {
        std::lock_guard lock(mutex);  // pair with the waiter's predicate
        done.notify_all();
      }
    }
  }
};

}  // namespace

void parallelFor(ThreadPool& pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body,
                 std::size_t chunk) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (chunk == 0) {
    // Aim for ~4 chunks per worker to smooth load imbalance.
    const std::size_t target = pool.size() * 4;
    chunk = std::max<std::size_t>(1, n / std::max<std::size_t>(1, target));
  }

  auto state = std::make_shared<ParallelForState>();
  state->begin = begin;
  state->end = end;
  state->chunk = chunk;
  state->totalChunks = (n + chunk - 1) / chunk;
  state->body = &body;

  // The caller participates, so only totalChunks - 1 helpers can ever be
  // useful.  Helpers that start after every chunk is claimed exit without
  // dereferencing `body`, so abandoning their futures is safe.
  const std::size_t helpers =
      std::min(pool.size(), state->totalChunks - 1);
  for (std::size_t i = 0; i < helpers; ++i) {
    pool.submit([state] { state->drain(); });
  }
  state->drain();
  {
    std::unique_lock lock(state->mutex);
    state->done.wait(lock, [&] {
      return state->doneChunks.load() == state->totalChunks;
    });
  }
  if (state->error) std::rethrow_exception(state->error);
}

ThreadPool& globalPool() {
  static ThreadPool pool;
  return pool;
}

void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body,
                 std::size_t chunk) {
  parallelFor(globalPool(), begin, end, body, chunk);
}

void parallelForChunks(std::size_t begin, std::size_t end, std::size_t chunk,
                       const std::function<void(std::size_t, std::size_t)>&
                           body) {
  if (begin >= end) return;
  NSMODEL_CHECK(chunk >= 1, "chunk size must be >= 1");
  const std::size_t chunks = (end - begin + chunk - 1) / chunk;
  // Chunk index -> explicit [lo, hi) bounds; chunk granularity 1 so each
  // pool task is exactly one caller-visible chunk.
  parallelFor(
      globalPool(), 0, chunks,
      [&](std::size_t c) {
        const std::size_t lo = begin + c * chunk;
        body(lo, std::min(end, lo + chunk));
      },
      1);
}

}  // namespace nsmodel::support
