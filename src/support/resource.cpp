#include "support/resource.hpp"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "support/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define NSMODEL_HAVE_GETRUSAGE 1
#else
#define NSMODEL_HAVE_GETRUSAGE 0
#endif

namespace nsmodel::support {

namespace {

std::atomic<std::int64_t> gBudgetOverride{-1};

/// Allocator slack, fragmentation, merge buffers: the estimators model
/// the containers exactly but the process spends more.  Measured against
/// the million-node --huge run (DESIGN.md §13) the model sits ~20% under
/// RSS, so every estimate carries this factor.
std::uint64_t pad(std::uint64_t bytes) { return bytes + bytes / 4; }

std::uint64_t edgesOf(const RunShape& shape) {
  const double e = static_cast<double>(shape.nodes) * shape.avgNeighbors;
  return e <= 0.0 ? 0 : static_cast<std::uint64_t>(e);
}

std::string humanBytes(std::uint64_t bytes) {
  std::ostringstream oss;
  if (bytes >= (1ull << 30)) {
    oss << static_cast<double>(bytes) / static_cast<double>(1ull << 30)
        << " GiB";
  } else if (bytes >= (1ull << 20)) {
    oss << static_cast<double>(bytes) / static_cast<double>(1ull << 20)
        << " MiB";
  } else {
    oss << bytes << " B";
  }
  return oss.str();
}

}  // namespace

double peakRssMb() {
#if NSMODEL_HAVE_GETRUSAGE
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  // Linux (and the BSDs) report KiB.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
#else
  return 0.0;
#endif
}

std::uint64_t parseMemBytes(const char* what, const std::string& text) {
  if (text.empty()) {
    throw ConfigError(std::string(what) + " must not be empty");
  }
  if (std::isdigit(static_cast<unsigned char>(text.front())) == 0) {
    throw ConfigError(std::string(what) + " must start with a digit, got `" +
                      text + "`");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE) {
    throw ConfigError(std::string(what) + " overflows: `" + text + "`");
  }
  std::uint64_t multiplier = 1;
  if (*end != '\0') {
    switch (std::tolower(static_cast<unsigned char>(*end))) {
      case 'k':
        multiplier = 1ull << 10;
        break;
      case 'm':
        multiplier = 1ull << 20;
        break;
      case 'g':
        multiplier = 1ull << 30;
        break;
      default:
        throw ConfigError(std::string(what) +
                          " has trailing garbage (expected K, M or G): `" +
                          text + "`");
    }
    ++end;
  }
  if (*end != '\0') {
    throw ConfigError(std::string(what) + " has trailing garbage: `" + text +
                      "`");
  }
  const auto bytes = static_cast<std::uint64_t>(value);
  if (multiplier != 1 && bytes > ~0ull / multiplier) {
    throw ConfigError(std::string(what) + " overflows: `" + text + "`");
  }
  return bytes * multiplier;
}

std::uint64_t memBudgetBytes() {
  const std::int64_t override_ = gBudgetOverride.load();
  if (override_ >= 0) return static_cast<std::uint64_t>(override_);
  const char* env = std::getenv("NSMODEL_MEM_BUDGET");
  if (env == nullptr || *env == '\0') return 0;
  return parseMemBytes("NSMODEL_MEM_BUDGET", env);
}

void setMemBudgetOverride(std::int64_t bytes) { gBudgetOverride.store(bytes); }

// Coefficient provenance (bytes, from the actual container layouts):
//   scenario   positions 16/node, spatial grid ~12/node, CSR offsets
//              8/node + ids 4/edge per table (x2 with carrier sense).
//   flat run   RunState bytes 3/node + reception slots 8/node, kernel
//              scratch ~24/node (+8 with carrier sense), chain pool +
//              observation vectors ~32/node, slot agenda 17/slot.
//   batch lane status word 4/node, scratch/chains/observations ~56/node,
//              agenda 17/slot, plus its own per-replication scenario.
//   sharded    shared status 12/node + merged observations ~28/node;
//              per shard: 64-bit collision table 8/node, txFlag 1/node,
//              sense 4/node (CS), restricted CSR offsets 4/node per
//              table, chain pool + observations ~12/node, agenda
//              17/slot; restricted ids total one edge set per table.
// Collision tables are assumed present (CAM worst case) — admission
// should be conservative for CFM rather than optimistic for CAM.

std::uint64_t estimateScenarioBytes(const RunShape& shape) {
  const std::uint64_t n = shape.nodes;
  const std::uint64_t tables = shape.carrierSense ? 2 : 1;
  return pad(n * 36 + tables * edgesOf(shape) * 4);
}

std::uint64_t estimateFlatRunBytes(const RunShape& shape) {
  const std::uint64_t n = shape.nodes;
  const std::uint64_t perNode = 67 + (shape.carrierSense ? 8 : 0);
  return pad(n * perNode + shape.maxSlots * 17);
}

std::uint64_t estimateBatchRunBytes(const RunShape& shape, int lanes) {
  NSMODEL_CHECK(lanes >= 1, "batch width must be >= 1");
  const std::uint64_t n = shape.nodes;
  const std::uint64_t perLane =
      estimateScenarioBytes(shape) + pad(n * 60 + shape.maxSlots * 17);
  return perLane * static_cast<std::uint64_t>(lanes);
}

std::uint64_t estimateShardedRunBytes(const RunShape& shape, int shards) {
  NSMODEL_CHECK(shards >= 1, "shard count must be >= 1");
  const std::uint64_t n = shape.nodes;
  const std::uint64_t S = static_cast<std::uint64_t>(shards);
  const std::uint64_t tables = shape.carrierSense ? 2 : 1;
  const std::uint64_t perShardPerNode =
      8 + 1 + (shape.carrierSense ? 4 : 0) + (shards > 1 ? 4 * tables : 0) +
      12;
  const std::uint64_t restrictedIds =
      shards > 1 ? tables * edgesOf(shape) * 4 : 0;
  return pad(n * 40 + restrictedIds +
             S * (n * perShardPerNode + shape.maxSlots * 17));
}

namespace {

[[noreturn]] void refuse(const char* backend, std::uint64_t needed,
                         std::uint64_t budget) {
  throw ResourceError(
      std::string("estimated ") + backend + " footprint " +
      humanBytes(needed) + " exceeds the memory budget " +
      humanBytes(budget) +
      " even at minimum parallelism; shrink the run or raise "
      "NSMODEL_MEM_BUDGET/--mem-budget");
}

}  // namespace

int admitShardCount(const RunShape& shape, int requestedShards,
                    std::uint64_t budgetBytes) {
  NSMODEL_CHECK(requestedShards >= 1, "shard count must be >= 1");
  if (budgetBytes == 0) return requestedShards;
  const std::uint64_t scenario = estimateScenarioBytes(shape);
  for (int s = requestedShards; s >= 1; --s) {
    const std::uint64_t total = scenario + estimateShardedRunBytes(shape, s);
    if (total <= budgetBytes) return s;
  }
  refuse("sharded-run", scenario + estimateShardedRunBytes(shape, 1),
         budgetBytes);
}

int admitBatchWidth(const RunShape& shape, int requestedWidth,
                    std::size_t concurrentChunks, std::uint64_t budgetBytes) {
  NSMODEL_CHECK(requestedWidth >= 1, "batch width must be >= 1");
  const auto chunks =
      static_cast<std::uint64_t>(concurrentChunks == 0 ? 1 : concurrentChunks);
  if (budgetBytes == 0) return requestedWidth;
  int w = requestedWidth;
  for (;;) {
    if (chunks * estimateBatchRunBytes(shape, w) <= budgetBytes) return w;
    if (w == 1) break;
    w /= 2;
  }
  // Even one sequential lane does not fit.
  refuse("batched-run", estimateBatchRunBytes(shape, 1), budgetBytes);
}

}  // namespace nsmodel::support
