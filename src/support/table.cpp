#include "support/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace nsmodel::support {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  NSMODEL_CHECK(!header_.empty(), "table needs at least one column");
}

void TablePrinter::addRow(std::vector<std::string> row) {
  NSMODEL_CHECK(row.size() == header_.size(),
                "row width does not match header");
  rows_.push_back(std::move(row));
}

void TablePrinter::addRow(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(formatDouble(v, precision));
  addRow(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto printRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << '\n';
  };
  printRow(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) printRow(row);
}

std::string TablePrinter::toString() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

std::string formatDouble(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

struct CsvWriter::Impl {
  std::ofstream out;
};

namespace {
std::string escapeCsv(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string escaped = "\"";
  for (char ch : field) {
    if (ch == '"') escaped += '"';
    escaped += ch;
  }
  escaped += '"';
  return escaped;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : impl_(new Impl), columns_(header.size()) {
  NSMODEL_CHECK(!header.empty(), "CSV needs at least one column");
  impl_->out.open(path, std::ios::trunc);
  NSMODEL_CHECK(impl_->out.good(), "cannot open CSV file: " + path);
  addRow(header);
}

CsvWriter::~CsvWriter() { delete impl_; }

void CsvWriter::addRow(const std::vector<std::string>& row) {
  NSMODEL_CHECK(row.size() == columns_, "CSV row width mismatch");
  for (std::size_t c = 0; c < row.size(); ++c) {
    if (c != 0) impl_->out << ',';
    impl_->out << escapeCsv(row[c]);
  }
  impl_->out << '\n';
}

void CsvWriter::addRow(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) cells.push_back(formatDouble(v, precision));
  addRow(cells);
}

}  // namespace nsmodel::support
