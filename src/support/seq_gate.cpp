#include "support/seq_gate.hpp"

#include <thread>

namespace nsmodel::support {

namespace {

inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Spin budget before parking.  The producer is at most one slot phase
/// away on a loaded core, so a short spin catches the common multicore
/// case; on an oversubscribed machine the producer cannot run while we
/// spin, and parking quickly is what frees the core for it.
constexpr int kSpinRounds = 128;

}  // namespace

// Memory ordering of the park handshake (both sides seq_cst on the
// flag/counter pair, the classic Dekker store-load pattern):
//
//   waiter:   waiters_.fetch_add(1)  [seq_cst]      producer: seq_ = v [seq_cst]
//             re-read seq_           [seq_cst]                read waiters_ [seq_cst]
//             if still short: park                            if != 0: notify_all
//
// In any seq_cst total order, either the producer's store to seq_
// precedes the waiter's re-read (the waiter sees v and never parks), or
// the waiter's fetch_add precedes the producer's read of waiters_ (the
// producer sees the registration and notifies).  A lost-wakeup would
// need the waiter to miss v *and* the producer to miss the registration,
// which no seq_cst interleaving allows.  The residual window between the
// re-read and the futex call is closed by the atomic wait itself: wait()
// compares against the captured value and returns immediately if seq_
// has moved on.
//
// Publication: the seq_cst store is also a release store, and every
// return path of waitFor exits through an acquire load that observed a
// value >= target.  seq_ has a single writer, so an observed value v
// identifies one store in its modification order, and everything the
// owner did before *that* advanceTo — including all earlier advanceTo
// calls' preceding writes — happens-before the waiter's continuation.
void SeqGate::advanceTo(std::uint64_t value) {
  seq_.store(value, std::memory_order_seq_cst);
  if (waiters_.load(std::memory_order_seq_cst) != 0) {
    seq_.notify_all();
  }
}

std::uint64_t SeqGate::waitSlow(std::uint64_t target) const {
  for (int i = 0; i < kSpinRounds; ++i) {
    const std::uint64_t cur = seq_.load(std::memory_order_acquire);
    if (cur >= target) return cur;
    cpuRelax();
  }
  waiters_.fetch_add(1, std::memory_order_seq_cst);
  std::uint64_t cur = seq_.load(std::memory_order_seq_cst);
  while (cur < target) {
    seq_.wait(cur, std::memory_order_acquire);
    cur = seq_.load(std::memory_order_acquire);
  }
  waiters_.fetch_sub(1, std::memory_order_relaxed);
  return cur;
}

}  // namespace nsmodel::support
