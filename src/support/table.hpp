// Plain-text tables and CSV output for bench/example binaries.
//
// Every figure-reproduction bench prints (a) a human-readable aligned table
// mirroring the paper's series and (b) optionally a CSV for downstream
// plotting.  Both are handled here so output formats stay uniform.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace nsmodel::support {

/// Builds an aligned, human-readable text table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must match the header's column count.
  void addRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void addRow(const std::vector<double>& row, int precision = 4);

  std::size_t rows() const { return rows_.size(); }

  /// Renders the table (header, separator, rows) to the stream.
  void print(std::ostream& os) const;

  /// Renders to a string.
  std::string toString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table rows).
std::string formatDouble(double value, int precision = 4);

/// Writes rows as CSV. Fields containing commas/quotes/newlines are quoted.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void addRow(const std::vector<std::string>& row);
  void addRow(const std::vector<double>& row, int precision = 6);

 private:
  struct Impl;
  Impl* impl_;
  std::size_t columns_;
};

}  // namespace nsmodel::support
