// Minimal command-line flag parsing for the tools and bench binaries.
//
// Grammar: positional arguments and `--name=value` / `--name` flags, in
// any order.  A bare `--` or a nameless `--=value` is rejected at
// construction, and the typed accessors reject out-of-range numerics
// instead of saturating.  No external dependencies; just enough structure
// for the nsmodel CLI.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace nsmodel::support {

/// Parsed command line.
class CliArgs {
 public:
  /// Throws nsmodel::Error on arguments with an empty flag name
  /// (`--` or `--=value`).
  CliArgs(int argc, const char* const* argv);

  /// Program name (argv[0]); empty when argc == 0.
  const std::string& program() const { return program_; }

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// True when --name was present (with or without a value).
  bool has(const std::string& name) const;

  /// Raw flag lookup. Outer optional: was --name present at all?
  /// Inner optional: did it carry a value (--name=value vs bare --name)?
  std::optional<std::optional<std::string>> get(
      const std::string& name) const;

  /// Typed accessors with defaults; throw nsmodel::Error on malformed
  /// values (e.g. --rho=abc).
  std::string getString(const std::string& name,
                        const std::string& fallback) const;
  double getDouble(const std::string& name, double fallback) const;
  long getInt(const std::string& name, long fallback) const;
  bool getBool(const std::string& name, bool fallback = false) const;

  /// Flags that were never read by any accessor; lets tools reject typos.
  std::vector<std::string> unusedFlags() const;

 private:
  std::string program_;
  std::vector<std::string> positional_;
  std::map<std::string, std::optional<std::string>> flags_;
  mutable std::map<std::string, bool> touched_;
};

/// Shared parser for the `off|auto|N` environment policies
/// (NSMODEL_BATCH, NSMODEL_SHARDS, ...).  Accepts:
///   * unset (nullptr), "" or "auto"  -> autoValue,
///   * "off"                          -> 1 (the scalar / single-shard path),
///   * a positive decimal integer     -> that value (<= INT_MAX).
/// Everything else — 0, negatives, overflow-large values, trailing
/// garbage — throws ConfigError naming the variable, instead of the old
/// silent clamp-to-1 / UB-on-overflow behaviour.
int parsePolicyEnv(const char* name, const char* raw, int autoValue);

}  // namespace nsmodel::support
