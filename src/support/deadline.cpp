#include "support/deadline.hpp"

#include <string>

#include "support/error.hpp"

namespace nsmodel::support {

Deadline Deadline::after(double seconds) {
  NSMODEL_CHECK(seconds >= 0.0, "deadline budget must be non-negative");
  Deadline deadline;
  deadline.limited_ = true;
  deadline.at_ = std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(seconds));
  return deadline;
}

bool Deadline::expired() const {
  return limited_ && std::chrono::steady_clock::now() >= at_;
}

void Deadline::check(const char* what) const {
  if (expired()) {
    throw TimeoutError(std::string("deadline expired during ") + what);
  }
}

void CancelToken::check(const char* what) const {
  if (cancelled()) {
    throw TimeoutError(std::string("run cancelled during ") + what);
  }
}

}  // namespace nsmodel::support
