// Numerical quadrature used by the analytical framework.
//
// Equation (4) of the paper integrates a smooth (piecewise-smooth in x)
// integrand over a ring's radial coordinate.  Gauss–Legendre on a modest
// number of nodes is accurate and — crucially for the p-sweep over
// thousands of (rho, p, phase, ring) combinations — fast and allocation
// free after the node table is built.  Adaptive Simpson is provided as an
// independent cross-check for tests.
#pragma once

#include <functional>
#include <vector>

namespace nsmodel::support {

/// Gauss–Legendre quadrature rule on [-1, 1], mapped to arbitrary [a, b].
class GaussLegendre {
 public:
  /// Builds an `order`-point rule (order >= 1). Nodes/weights are computed
  /// with Newton iteration on Legendre polynomials to ~1e-15.
  explicit GaussLegendre(int order);

  int order() const { return static_cast<int>(nodes_.size()); }

  /// Integrates f over [a, b].
  double integrate(double a, double b,
                   const std::function<double(double)>& f) const;

  /// Node/weight access for callers that inline their own loop.
  const std::vector<double>& nodes() const { return nodes_; }
  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> nodes_;    // on [-1, 1]
  std::vector<double> weights_;
};

/// Adaptive Simpson integration of f over [a, b] to absolute tolerance
/// `tol`; recursion depth is bounded by `maxDepth`.
double adaptiveSimpson(const std::function<double(double)>& f, double a,
                       double b, double tol = 1e-10, int maxDepth = 40);

}  // namespace nsmodel::support
