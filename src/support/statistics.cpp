#include "support/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace nsmodel::support {

void RunningStat::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::standardError() const {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningStat::confidenceHalfWidth(double level) const {
  NSMODEL_CHECK(level > 0.0 && level < 1.0,
                "confidence level must lie in (0, 1)");
  if (count_ < 2) return 0.0;
  const double z = normalQuantile(0.5 + level / 2.0);
  return z * standardError();
}

double RunningStat::min() const {
  NSMODEL_CHECK(count_ > 0, "min() of empty RunningStat");
  return min_;
}

double RunningStat::max() const {
  NSMODEL_CHECK(count_ > 0, "max() of empty RunningStat");
  return max_;
}

Summary summarize(const std::vector<double>& samples) {
  RunningStat stat;
  for (double s : samples) stat.add(s);
  Summary out;
  out.count = stat.count();
  if (out.count == 0) return out;
  out.mean = stat.mean();
  out.stddev = stat.stddev();
  out.ciHalfWidth95 = stat.confidenceHalfWidth(0.95);
  out.min = stat.min();
  out.max = stat.max();
  return out;
}

double normalQuantile(double probability) {
  NSMODEL_CHECK(probability > 0.0 && probability < 1.0,
                "normalQuantile requires probability in (0, 1)");
  // Acklam's algorithm.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  constexpr double phigh = 1 - plow;

  const double p = probability;
  if (p < plow) {
    const double q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > phigh) {
    const double q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  NSMODEL_CHECK(hi > lo, "Histogram range must be non-empty");
  NSMODEL_CHECK(bins > 0, "Histogram needs at least one bin");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::binCount(std::size_t bin) const {
  NSMODEL_CHECK(bin < counts_.size(), "Histogram bin out of range");
  return counts_[bin];
}

double Histogram::binLow(std::size_t bin) const {
  NSMODEL_CHECK(bin < counts_.size(), "Histogram bin out of range");
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::binHigh(std::size_t bin) const {
  return binLow(bin) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::quantile(double q) const {
  NSMODEL_CHECK(q >= 0.0 && q <= 1.0, "quantile requires q in [0, 1]");
  NSMODEL_CHECK(total_ > 0, "quantile of empty histogram");
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double within =
          counts_[i] == 0
              ? 0.0
              : (target - cumulative) / static_cast<double>(counts_[i]);
      return binLow(i) + within * (binHigh(i) - binLow(i));
    }
    cumulative = next;
  }
  return hi_;
}

}  // namespace nsmodel::support
