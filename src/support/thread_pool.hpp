// Fixed-size thread pool and data-parallel helpers.
//
// Monte-Carlo sweeps dominate the runtime of the simulation harness; they
// are embarrassingly parallel across (parameter point, seed) pairs.  The
// pool is deliberately simple — a single locked deque, no work stealing —
// because each task here is a whole simulation run (milliseconds), so queue
// contention is negligible.
//
// Determinism: parallel_for only partitions index ranges; all randomness is
// derived from (seed, index) pairs by the caller (see support/rng.hpp), so
// results do not depend on the number of workers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace nsmodel::support {

/// A fixed pool of worker threads executing queued tasks FIFO.
class ThreadPool {
 public:
  /// Creates a pool with `threads` workers (>= 1). The default uses the
  /// hardware concurrency, falling back to 1 when it is unknown.
  explicit ThreadPool(std::size_t threads = defaultThreadCount());

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future resolves with the task's result
  /// (or its exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using Result = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<F>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  static std::size_t defaultThreadCount();

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs `body(i)` for every i in [begin, end) across the pool, blocking
/// until all iterations finish.  Iterations are grouped into contiguous
/// chunks of size `chunk` (0 = pick automatically).  The first exception
/// thrown by any iteration is rethrown in the caller.
///
/// The calling thread participates in the work (it claims chunks from the
/// same queue as the pool helpers), so nested parallelFor calls are
/// deadlock-free: an inner call issued from a pool worker drains its own
/// chunks even when every other worker is busy.  Sweep drivers exploit
/// this by parallelising over grid points while each point's Monte-Carlo
/// replications may themselves fan out.
void parallelFor(ThreadPool& pool, std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body,
                 std::size_t chunk = 0);

/// Convenience overload using a process-wide shared pool.
void parallelFor(std::size_t begin, std::size_t end,
                 const std::function<void(std::size_t)>& body,
                 std::size_t chunk = 0);

/// Runs `body(lo, hi)` over the contiguous chunks of [begin, end) of
/// size `chunk` (the last may be short), one call per chunk, fanned out
/// over the shared pool.  For workloads that amortise per-chunk setup —
/// e.g. Monte-Carlo chunks leasing one workspace for all their
/// replications — where the flat parallelFor would hide the chunk
/// boundaries from the body.
void parallelForChunks(std::size_t begin, std::size_t end, std::size_t chunk,
                       const std::function<void(std::size_t, std::size_t)>&
                           body);

/// Process-wide shared pool (lazily constructed).  Worker count defaults
/// to the hardware concurrency; the NSMODEL_THREADS environment variable
/// (>= 1) overrides it — CI's perf-smoke lane uses this to compare 1- and
/// 4-thread sweeps of one binary.
ThreadPool& globalPool();

}  // namespace nsmodel::support
