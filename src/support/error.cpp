#include "support/error.hpp"

#include <sstream>

namespace nsmodel {

const char* errorCategoryName(ErrorCategory category) {
  switch (category) {
    case ErrorCategory::Generic:
      return "generic";
    case ErrorCategory::Config:
      return "config";
    case ErrorCategory::Io:
      return "io";
    case ErrorCategory::Timeout:
      return "timeout";
    case ErrorCategory::Resource:
      return "resource";
  }
  return "?";
}

namespace detail {

namespace {
std::string describe(const char* expr, const char* file, int line,
                     const std::string& message) {
  std::ostringstream oss;
  oss << message << " [check `" << expr << "` failed at " << file << ':'
      << line << ']';
  return oss.str();
}
}  // namespace

void throwError(const char* expr, const char* file, int line,
                const std::string& message) {
  throw ConfigError(describe(expr, file, line, message));
}

void throwAssert(const char* expr, const char* file, int line) {
  throw Error(describe(expr, file, line, "internal invariant"));
}

}  // namespace detail
}  // namespace nsmodel
