#include "support/error.hpp"

#include <sstream>

namespace nsmodel::detail {

void throwError(const char* expr, const char* file, int line,
                const std::string& message) {
  std::ostringstream oss;
  oss << message << " [check `" << expr << "` failed at " << file << ':'
      << line << ']';
  throw Error(oss.str());
}

}  // namespace nsmodel::detail
