#include "support/log_math.hpp"

#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace nsmodel::support {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

double logFactorial(std::int64_t n) {
  NSMODEL_CHECK(n >= 0, "logFactorial requires n >= 0");
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double logBinomial(std::int64_t n, std::int64_t k) {
  if (k < 0 || k > n) return kNegInf;
  return logFactorial(n) - logFactorial(k) - logFactorial(n - k);
}

double logFallingFactorial(std::int64_t n, std::int64_t k) {
  NSMODEL_CHECK(k >= 0, "logFallingFactorial requires k >= 0");
  if (k == 0) return 0.0;
  if (n < k) return kNegInf;
  return logFactorial(n) - logFactorial(n - k);
}

double binomial(std::int64_t n, std::int64_t k) {
  if (k < 0 || k > n) return 0.0;
  return std::exp(logBinomial(n, k));
}

double logSumExp(double a, double b) {
  if (a == kNegInf) return b;
  if (b == kNegInf) return a;
  const double hi = a > b ? a : b;
  const double lo = a > b ? b : a;
  return hi + std::log1p(std::exp(lo - hi));
}

}  // namespace nsmodel::support
