#include "fault/fault_models.hpp"

#include <cmath>

#include "support/error.hpp"

namespace nsmodel::fault {

namespace {

void checkProbability(double value, const char* name) {
  NSMODEL_CHECK(!std::isnan(value), std::string(name) + " must not be NaN");
  NSMODEL_CHECK(value >= 0.0 && value <= 1.0,
                std::string(name) + " must lie in [0, 1]");
}

}  // namespace

void FaultConfig::validate() const {
  checkProbability(crash.crashRate, "fault crash rate");
  checkProbability(crash.recoveryRate, "fault recovery rate");
  checkProbability(link.pGoodToBad, "Gilbert-Elliott good->bad probability");
  checkProbability(link.pBadToGood, "Gilbert-Elliott bad->good probability");
  checkProbability(link.lossGood, "Gilbert-Elliott good-state loss");
  checkProbability(link.lossBad, "Gilbert-Elliott bad-state loss");
  NSMODEL_CHECK(!std::isnan(drift.maxSkewSlots),
                "clock drift skew must not be NaN");
  NSMODEL_CHECK(drift.maxSkewSlots >= 0.0 && drift.maxSkewSlots < 0.5,
                "clock drift skew must lie in [0, 0.5) slots");
  NSMODEL_CHECK(!std::isnan(energyBudget) && energyBudget >= 0.0,
                "energy budget must be non-negative");
}

}  // namespace nsmodel::fault
