// Fault model configurations (relaxing Assumptions 5 and 6).
//
// The paper's analysis freezes the network: no node failures (Assumption
// 5) and a perfectly slotted channel whose only loss mechanism is the CAM
// collision rule (Assumption 6).  Real sensor fields violate both, and
// the point of the communication models is to guide protocol design for
// exactly such fields.  This module declares the composable fault shapes
// the simulators can inject; fault_plan.hpp turns a FaultConfig into a
// deterministic, per-run FaultPlan.
//
// Four orthogonal models, each off by default:
//  * CrashConfig        per-phase node crash (and optional recovery)
//                       schedules — permanent or transient node death.
//  * GilbertElliottConfig  two-state bursty link erasures layered *under*
//                       the channel's collision semantics: the channel
//                       decides which receptions survive collisions, the
//                       GE process then erases survivors with a state-
//                       dependent probability.
//  * ClockDriftConfig   per-node slot misalignment: a skewed node's
//                       transmissions partially overlap the neighbouring
//                       slot, turning the clean Assumption-6 windows into
//                       partial overlaps.
//  * energyBudget       per-node energy cutoff driven by net::Energy
//                       accounting — a node whose spent energy reaches
//                       the budget stops transmitting and receiving.
//
// All-default (zero) configuration is guaranteed to leave every backend
// bit-identical to the fault-free code path.
#pragma once

#include <cstdint>

namespace nsmodel::fault {

/// Per-phase crash/recovery schedule parameters.  With recoveryRate == 0
/// crashes are permanent (the classic Assumption-5 relaxation); with
/// recoveryRate > 0 nodes oscillate between up and down intervals whose
/// lengths are geometric.
struct CrashConfig {
  double crashRate = 0.0;     ///< P(up node crashes) per phase boundary
  double recoveryRate = 0.0;  ///< P(down node recovers) per phase boundary

  bool active() const { return crashRate > 0.0; }
};

/// Two-state Gilbert–Elliott link erasure process, advanced once per slot
/// per receiver.  State Good erases a delivered packet with lossGood,
/// state Bad with lossBad; transitions Good->Bad (pGoodToBad) and
/// Bad->Good (pBadToGood) happen at slot boundaries.  Loss 0 in both
/// states is exactly the fault-free channel, whatever the transition
/// probabilities.
struct GilbertElliottConfig {
  double pGoodToBad = 0.0;
  double pBadToGood = 0.0;
  double lossGood = 0.0;
  double lossBad = 0.0;

  bool active() const { return lossGood > 0.0 || lossBad > 0.0; }
};

/// Per-node clock misalignment.  Each node's slot boundary is offset by a
/// fixed skew drawn uniformly from [-maxSkewSlots, +maxSkewSlots] (in
/// slots, < 0.5): its unit-length transmission then straddles two slots,
/// delivering in the majority slot and interfering in the spilled one.
struct ClockDriftConfig {
  double maxSkewSlots = 0.0;

  bool active() const { return maxSkewSlots > 0.0; }
};

/// The composed fault layer of one experiment.
struct FaultConfig {
  CrashConfig crash;
  GilbertElliottConfig link;
  ClockDriftConfig drift;
  /// Per-node energy cutoff (same units as net::EnergyCosts); a node
  /// whose ledger energy reaches the budget is dead from then on.
  /// 0 = unlimited.
  double energyBudget = 0.0;
  /// Extra seed folded into each run's fault stream.  Two runs with the
  /// same (seed, stream) but different faultSeed draw independent fault
  /// schedules over the same deployment.
  std::uint64_t faultSeed = 0;

  /// True when any model is switched on; false guarantees the fault layer
  /// adds no code-path difference at all.
  bool anyEnabled() const {
    return crash.active() || link.active() || drift.active() ||
           energyBudget > 0.0;
  }

  /// Throws nsmodel::ConfigError on NaN or out-of-range parameters.
  void validate() const;
};

}  // namespace nsmodel::fault
