// Deterministic per-run fault plans.
//
// A FaultPlan materialises a FaultConfig for one simulation run: which
// nodes are down during which phases, each node's clock skew, the
// Gilbert–Elliott link state trajectory, and the energy cutoff.  Plans
// are built from a seed, so every faulted run is bit-replayable; all link
// and schedule randomness is counter-based (hashes of (plan seed, node,
// slot, ...)) rather than drawn from the run's RNG, which gives two load-
// bearing properties:
//
//  1. The protocol/deployment RNG stream is never perturbed.  A run whose
//     fault models are configured but vacuous (e.g. Gilbert–Elliott with
//     zero loss) is bit-identical to the fault-free run, and scenarios
//     stay shareable through sim::ScenarioCache.
//  2. Query order does not matter.  Whatever order the simulator asks
//     linkErased()/isDown() in — across slots, across thread counts —
//     the answers are a pure function of (plan seed, arguments).
//
// The legacy ExperimentConfig::nodeFailureRate knob is routed through the
// same plan via addLegacyNodeFailures(), which reproduces the historical
// draw-from-run-RNG stream exactly so old seeds keep old outputs.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault_models.hpp"
#include "net/packet.hpp"

namespace nsmodel::support {
class Rng;
}  // namespace nsmodel::support

namespace nsmodel::fault {

/// The materialised fault schedule of one run.  Cheap to build (O(nodes))
/// and meant to live exactly as long as the run; the Gilbert–Elliott
/// query keeps a small per-node cursor, so a plan instance is not
/// thread-safe (use one per concurrent run, like net::Channel).
class FaultPlan {
 public:
  /// Inactive plan: every query reports "no fault".
  FaultPlan() = default;

  /// Materialises `config` for a run of `nodeCount` nodes and at most
  /// `phaseHorizon` phases.  `entropy` varies the draws per replication
  /// (pass support::Rng::stateFingerprint() of the run's generator);
  /// equal (config, nodeCount, phaseHorizon, entropy) rebuild the same
  /// plan bit for bit.  Throws ConfigError on invalid config.
  static FaultPlan build(const FaultConfig& config, std::size_t nodeCount,
                         std::uint64_t phaseHorizon, std::uint64_t entropy);

  /// Adds the legacy per-phase permanent failures, drawing from the run's
  /// own RNG with exactly the historical sequence so that existing seeds
  /// reproduce existing outputs (see bench/ablation_node_failure).
  void addLegacyNodeFailures(double ratePerPhase, std::size_t nodeCount,
                             support::Rng& rng);

  /// True when any model can alter the run.  An unenabled plan guarantees
  /// the fault-free code path.
  bool enabled() const {
    return crashActive_ || linkActive_ || driftActive_ || energyBudget_ > 0.0;
  }

  bool hasCrashes() const { return crashActive_; }
  bool hasLinkLoss() const { return linkActive_; }
  bool hasDrift() const { return driftActive_; }

  /// Per-node energy cutoff; 0 = unlimited.
  double energyBudget() const { return energyBudget_; }

  /// Is `node` crashed (not yet recovered) during `phase` (0-based)?
  bool isDown(net::NodeId node, std::uint64_t phase) const;

  /// `node`'s fixed slot misalignment in (-0.5, 0.5) slots; 0 without
  /// drift.
  double skew(net::NodeId node) const;

  /// Gilbert–Elliott erasure decision for a delivery to `receiver` from
  /// `sender` during `slot`.  Deterministic in (plan, arguments).
  bool linkErased(net::NodeId receiver, net::NodeId sender,
                  std::uint64_t slot);

 private:
  bool chainBad(net::NodeId node, std::uint64_t slot);

  // Per node: ascending phases at which the up/down state flips, starting
  // with a crash.  Empty vector = never crashes.
  std::vector<std::vector<std::uint32_t>> toggles_;
  std::vector<double> skew_;
  GilbertElliottConfig link_{};
  double energyBudget_ = 0.0;
  std::uint64_t planSeed_ = 0;
  bool crashActive_ = false;
  bool linkActive_ = false;
  bool driftActive_ = false;

  // Lazy Gilbert–Elliott cursors: the chain state at slot geSlot_[node].
  // Queries usually arrive in non-decreasing slot order per node, so
  // advancing from the cursor is O(1) amortised; a backward query falls
  // back to recomputing from slot 0 (the answer is identical — the chain
  // is a pure function of (plan seed, node, slot)).
  std::vector<std::uint64_t> geSlot_;
  std::vector<std::uint8_t> geBad_;
};

}  // namespace nsmodel::fault
