#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"
#include "support/rng.hpp"

namespace nsmodel::fault {

namespace {

// Domain-separation salts for the counter-based draws.
constexpr std::uint64_t kSaltCrash = 0xC4A5;
constexpr std::uint64_t kSaltSkew = 0x5E3F;
constexpr std::uint64_t kSaltTransition = 0x6E17;
constexpr std::uint64_t kSaltLoss = 0x10555;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  std::uint64_t z = h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return z ^ (z >> 27);
}

double uniformFromBits(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

/// Number of phase boundaries until the first success of a Bernoulli(p)
/// process, in {1, 2, ...}, by inversion of the given uniform.  Sharing
/// the uniform across rates makes the draw monotone: a higher rate never
/// yields a later success (the coupling behind the degradation
/// invariants in src/validate).
std::uint64_t geometricPhases(double p, double u, std::uint64_t cap) {
  if (p >= 1.0) return 1;
  NSMODEL_ASSERT(p > 0.0);
  const double k = std::ceil(std::log1p(-u) / std::log1p(-p));
  if (!(k >= 1.0)) return 1;
  if (k >= static_cast<double>(cap)) return cap;
  return static_cast<std::uint64_t>(k);
}

}  // namespace

FaultPlan FaultPlan::build(const FaultConfig& config, std::size_t nodeCount,
                           std::uint64_t phaseHorizon,
                           std::uint64_t entropy) {
  config.validate();
  FaultPlan plan;
  plan.planSeed_ = mix(mix(0xFA171CAFEULL, config.faultSeed), entropy);
  plan.energyBudget_ = config.energyBudget;
  plan.link_ = config.link;
  plan.linkActive_ = config.link.active();
  if (plan.linkActive_) {
    plan.geSlot_.assign(nodeCount, 0);
    plan.geBad_.assign(nodeCount, 0);  // the chain starts Good at slot 0
  }

  if (config.drift.active()) {
    plan.driftActive_ = true;
    plan.skew_.resize(nodeCount);
    for (std::size_t node = 0; node < nodeCount; ++node) {
      const double u = uniformFromBits(
          mix(mix(plan.planSeed_, kSaltSkew), node));
      plan.skew_[node] = (2.0 * u - 1.0) * config.drift.maxSkewSlots;
    }
  }

  if (config.crash.active()) {
    plan.crashActive_ = true;
    plan.toggles_.resize(nodeCount);
    // Phases past the horizon cannot matter; cap the schedules there.
    const std::uint64_t cap = phaseHorizon + 1;
    for (std::size_t node = 0; node < nodeCount; ++node) {
      // A per-node counter-based stream: draw k is a pure function of
      // (plan seed, node, k).  Draw 0 is the first crash, so at fixed
      // entropy a higher crash rate crashes every node no later
      // (geometricPhases coupling).
      const std::uint64_t nodeSeed =
          mix(mix(plan.planSeed_, kSaltCrash), node);
      std::uint64_t draw = 0;
      auto nextUniform = [&] { return uniformFromBits(mix(nodeSeed, draw++)); };
      std::uint64_t phase = geometricPhases(config.crash.crashRate,
                                            nextUniform(), cap);
      std::vector<std::uint32_t>& toggles = plan.toggles_[node];
      while (phase <= phaseHorizon) {
        toggles.push_back(static_cast<std::uint32_t>(phase));
        if (config.crash.recoveryRate <= 0.0) break;  // permanent crash
        const bool down = toggles.size() % 2 == 1;
        const double rate =
            down ? config.crash.recoveryRate : config.crash.crashRate;
        phase += geometricPhases(rate, nextUniform(), cap);
      }
    }
  }
  return plan;
}

void FaultPlan::addLegacyNodeFailures(double ratePerPhase,
                                      std::size_t nodeCount,
                                      support::Rng& rng) {
  NSMODEL_CHECK(!std::isnan(ratePerPhase) && ratePerPhase >= 0.0 &&
                    ratePerPhase <= 1.0,
                "node failure rate must lie in [0, 1]");
  if (ratePerPhase <= 0.0) return;
  crashActive_ = true;
  if (toggles_.size() < nodeCount) toggles_.resize(nodeCount);
  // Exactly the historical draw loop (geometric by repeated Bernoulli
  // trials from the run's own RNG) so equal seeds keep equal outputs.
  for (std::size_t node = 0; node < nodeCount; ++node) {
    std::uint32_t phase = 1;
    while (!rng.bernoulli(ratePerPhase) && phase < 1000000) {
      ++phase;
    }
    toggles_[node].push_back(phase);
    // Legacy failures are permanent; keep the toggle list consistent.
    std::sort(toggles_[node].begin(), toggles_[node].end());
  }
}

bool FaultPlan::isDown(net::NodeId node, std::uint64_t phase) const {
  if (!crashActive_ || node >= toggles_.size()) return false;
  const std::vector<std::uint32_t>& toggles = toggles_[node];
  const auto flips = std::upper_bound(toggles.begin(), toggles.end(), phase) -
                     toggles.begin();
  return flips % 2 == 1;
}

double FaultPlan::skew(net::NodeId node) const {
  if (!driftActive_ || node >= skew_.size()) return 0.0;
  return skew_[node];
}

bool FaultPlan::chainBad(net::NodeId node, std::uint64_t slot) {
  std::uint64_t at = geSlot_[node];
  bool bad = geBad_[node] != 0;
  if (at > slot) {  // backward query: restart the pure chain from slot 0
    at = 0;
    bad = false;
  }
  while (at < slot) {
    ++at;
    const double u = uniformFromBits(
        mix(mix(mix(planSeed_, kSaltTransition), node), at));
    if (bad) {
      if (u < link_.pBadToGood) bad = false;
    } else {
      if (u < link_.pGoodToBad) bad = true;
    }
  }
  geSlot_[node] = at;
  geBad_[node] = bad ? 1 : 0;
  return bad;
}

bool FaultPlan::linkErased(net::NodeId receiver, net::NodeId sender,
                           std::uint64_t slot) {
  if (!linkActive_ || receiver >= geSlot_.size()) return false;
  const bool bad = chainBad(receiver, slot);
  const double loss = bad ? link_.lossBad : link_.lossGood;
  if (loss <= 0.0) return false;
  if (loss >= 1.0) return true;
  const double u = uniformFromBits(
      mix(mix(mix(mix(planSeed_, kSaltLoss), receiver), slot), sender));
  return u < loss;
}

}  // namespace nsmodel::fault
