#include "des/engine.hpp"

#include "support/error.hpp"

namespace nsmodel::des {

EventId Engine::scheduleAt(Time at, std::function<void()> action) {
  NSMODEL_CHECK(at >= now_, "cannot schedule an event in the past");
  return queue_.push(at, std::move(action));
}

EventId Engine::scheduleAfter(Time delay, std::function<void()> action) {
  NSMODEL_CHECK(delay >= 0.0, "delay must be non-negative");
  return queue_.push(now_ + delay, std::move(action));
}

bool Engine::cancel(EventId id) { return queue_.cancel(id); }

std::uint64_t Engine::run(Time horizon) {
  stopped_ = false;
  std::uint64_t firedThisRun = 0;
  while (!queue_.empty() && !stopped_) {
    if (queue_.nextTime() > horizon) break;
    Time at = 0.0;
    auto action = queue_.pop(at);
    now_ = at;
    action();
    ++fired_;
    ++firedThisRun;
  }
  return firedThisRun;
}

}  // namespace nsmodel::des
