#include "des/event_queue.hpp"

#include "support/error.hpp"

namespace nsmodel::des {

EventId EventQueue::push(Time at, std::function<void()> action) {
  NSMODEL_CHECK(action != nullptr, "cannot schedule a null action");
  const EventId id = nextId_++;
  heap_.push(Entry{at, id});
  actions_.emplace(id, std::move(action));
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  // The heap entry stays behind and is skipped on pop.
  if (actions_.erase(id) == 0) return false;
  --live_;
  return true;
}

bool EventQueue::empty() const { return live_ == 0; }

void EventQueue::skipCancelled() const {
  while (!heap_.empty() && actions_.find(heap_.top().id) == actions_.end()) {
    heap_.pop();
  }
}

Time EventQueue::nextTime() const {
  NSMODEL_CHECK(!empty(), "nextTime() on an empty queue");
  skipCancelled();
  return heap_.top().time;
}

std::function<void()> EventQueue::pop(Time& at) {
  NSMODEL_CHECK(!empty(), "pop() on an empty queue");
  skipCancelled();
  const Entry top = heap_.top();
  heap_.pop();
  auto it = actions_.find(top.id);
  NSMODEL_ASSERT(it != actions_.end());
  std::function<void()> action = std::move(it->second);
  actions_.erase(it);
  --live_;
  at = top.time;
  return action;
}

}  // namespace nsmodel::des
