// Discrete-event simulation engine.
//
// A single-threaded event loop over an EventQueue: events fire in
// non-decreasing time order (FIFO among equal times), each event may
// schedule or cancel further events.  The slotted broadcast experiments
// (src/sim) are built on this engine; it is general enough for other
// protocols a downstream user may add.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "des/event_queue.hpp"

namespace nsmodel::des {

/// The event loop. Not thread-safe; one engine per simulation run.
class Engine {
 public:
  /// Current simulation time (time of the most recently fired event).
  Time now() const { return now_; }

  /// Schedules `action` at absolute time `at` (>= now).
  EventId scheduleAt(Time at, std::function<void()> action);

  /// Schedules `action` after a non-negative delay.
  EventId scheduleAfter(Time delay, std::function<void()> action);

  /// Cancels a pending event; false if it already fired or was cancelled.
  bool cancel(EventId id);

  /// Runs until the queue drains, stop() is called, or the time horizon is
  /// exceeded. Returns the number of events fired by this call.
  std::uint64_t run(Time horizon = std::numeric_limits<Time>::infinity());

  /// Requests the current run() to return after the in-flight event.
  void stop() { stopped_ = true; }

  /// Total events fired over the engine's lifetime.
  std::uint64_t firedCount() const { return fired_; }

  /// Pending (live) events.
  std::size_t pendingCount() const { return queue_.size(); }

 private:
  EventQueue queue_;
  Time now_ = 0.0;
  std::uint64_t fired_ = 0;
  bool stopped_ = false;
};

}  // namespace nsmodel::des
