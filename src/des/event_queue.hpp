// Pending-event set for the discrete-event engine.
//
// A binary heap ordered by (time, sequence number) — the sequence number
// makes simultaneous events fire in scheduling order, which keeps runs
// deterministic.  Cancellation is lazy: cancelled ids are remembered and
// skipped on pop, which is simpler and, at our event counts, faster than an
// indexed heap.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>

namespace nsmodel::des {

/// Simulation time. Unit semantics are defined by the caller (the
/// broadcast experiments use one slot == 1.0).
using Time = double;

/// Identifier of a scheduled event, unique within one queue.
using EventId = std::uint64_t;

/// Min-heap of (time, seq) with lazily-cancelled entries.
class EventQueue {
 public:
  /// Adds an event; returns its id for cancellation.
  EventId push(Time at, std::function<void()> action);

  /// Cancels a pending event. Returns false when the id is unknown,
  /// already fired, or already cancelled.
  bool cancel(EventId id);

  /// True when no live events remain.
  bool empty() const;

  /// Number of live (non-cancelled) events.
  std::size_t size() const { return live_; }

  /// Time of the earliest live event. Requires !empty().
  Time nextTime() const;

  /// Removes and returns the earliest live event's action, also reporting
  /// its time through `at`. Requires !empty().
  std::function<void()> pop(Time& at);

 private:
  struct Entry {
    Time time;
    EventId id;
    // std::priority_queue is a max-heap; invert the comparison.
    bool operator<(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  void skipCancelled() const;

  mutable std::priority_queue<Entry> heap_;
  std::unordered_map<EventId, std::function<void()>> actions_;
  EventId nextId_ = 1;
  std::size_t live_ = 0;
};

}  // namespace nsmodel::des
