// Convergecast (data gathering) over the unicast primitive.
//
// The paper's models cover two primitives — broadcast and unicast
// (Section 3.2) — and its related work motivates in-network processing /
// data gathering as the canonical NSS workload.  This module implements
// the standard convergecast: every node holds one report that must reach
// the sink (the node at the field centre) over a BFS tree; per phase a
// node with queued packets forwards one to its parent, in a uniformly
// jittered slot, with a tunable transmit probability (the unicast
// analogue of PB's p — lower values trade latency for fewer collisions).
//
// Collision semantics come from the configured channel.  A unicast is a
// physical broadcast that only the addressed parent accepts; under CAM it
// is lost whenever the parent hears concurrent transmissions or is itself
// transmitting (Assumption 6), exactly the 802.11-without-RTS/CTS/ACK
// behaviour the paper describes.
//
// Feedback modes mirror the CFM/CAM design split:
//  * oracleFeedback = true: the sender learns the outcome for free and
//    retries until delivery — an idealised reliable unicast (what a
//    designer assumes under CFM, minus the cost of acknowledgements).
//  * oracleFeedback = false: fire and forget — the packet is gone after
//    one attempt, delivered or not (raw CAM behaviour).
//
// The CFM channel showcases the model's hidden superpower: concurrent
// receptions at the same parent all succeed (implicit multi-packet
// reception), so gathering completes in ~tree-depth phases, while any
// collision-aware channel serialises the sink's neighbourhood and needs
// ~N phases.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/experiment.hpp"

namespace nsmodel::sim {

/// Configuration of one convergecast run.
struct ConvergecastConfig {
  ExperimentConfig base;             ///< deployment, channel, slots
  double transmitProbability = 0.5;  ///< per-phase attempt probability
  bool oracleFeedback = true;        ///< retry until delivered
  int maxPhases = 4000;              ///< hard cap
};

/// Outcome of one convergecast run.
struct ConvergecastResult {
  std::size_t nodeCount = 0;
  std::size_t unreachableNodes = 0;  ///< no path to the sink
  std::size_t reportsGenerated = 0;  ///< nodeCount - 1 (sink generates none)
  std::size_t reportsDelivered = 0;
  std::uint64_t transmissions = 0;
  std::vector<std::uint32_t> txPerNode;  ///< forwarding load per node
  double completionPhases = 0.0;  ///< phase time of the last delivery
  int treeDepth = 0;              ///< BFS depth of the gathering tree
  bool drained = false;           ///< all queues empty at termination

  double deliveryRatio() const {
    return reportsGenerated == 0
               ? 1.0
               : static_cast<double>(reportsDelivered) /
                     static_cast<double>(reportsGenerated);
  }
};

/// Builds the BFS parent array towards `sink`; kNoNode for the sink and
/// for nodes with no path. Exposed for tests and custom schedulers.
std::vector<net::NodeId> buildGatheringTree(const net::Topology& topology,
                                            net::NodeId sink);

/// Runs one convergecast over a pre-built deployment/topology.
ConvergecastResult runConvergecast(const ConvergecastConfig& config,
                                   const net::Deployment& deployment,
                                   const net::Topology& topology,
                                   support::Rng& rng);

/// Generates the paper's deployment and runs one convergecast.
ConvergecastResult runConvergecast(const ConvergecastConfig& config,
                                   std::uint64_t seed, std::uint64_t stream);

}  // namespace nsmodel::sim
