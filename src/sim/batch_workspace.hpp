// Structure-of-arrays arena for replication-batched broadcast runs.
//
// A BatchWorkspace owns the per-lane state of up to `width` replications
// stepped in lockstep by sim::runBroadcastBatch: one BatchLaneArena per
// lane, each mirroring RunWorkspace's flat-memory layout (slot agenda as
// FIFO chains through a shared entry pool, grow-only observation
// buffers) with two batch-specific changes:
//
//  * the three per-node byte flags (received / hasPending / cancelled)
//    plus the energy-dead flag consolidate into ONE packed 32-bit status
//    word per node, so the batched delivery filter
//    (SlotKernelOps::filterActionable) can gather and test them in one
//    vector pass — bit 0 received, bit 1 pending, bit 2 cancelled,
//    bit 3 energy-dead;
//  * each lane carries its own slot-kernel scratch (the packed
//    count-xor-sender table, touched list, winner arrays) because the
//    lanes' slots resolve interleaved and the tables must survive a
//    lane's turn.
//
// Between runs every lane satisfies the same all-clean invariant as a
// RunWorkspace: status words zero (restored by walking the touched
// receivers), chains/flags self-cleaned at resolution, kernel tables
// zero.  Vector capacity recycles through reclaim(), mirroring
// RunWorkspace::reclaim, so steady-state batches allocate nothing once
// the high-water mark fits.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "sim/run_result.hpp"

namespace nsmodel::sim {

/// Per-lane slice of the batch arena.  Public members, like RunWorkspace:
/// the driver in experiment_batch.cpp is the only writer.
struct BatchLaneArena {
  // Packed per-node status: bit 0 received, bit 1 pending, bit 2
  // cancelled, bit 3 energy-dead.  All zero between runs.
  std::vector<std::uint32_t> status;

  // Slot agenda (see RunWorkspace): per-slot FIFO chains threaded through
  // the shared (node, next) pool; -1 ends a chain.
  std::vector<std::int32_t> pendingHead;
  std::vector<std::int32_t> pendingTail;
  std::vector<std::int32_t> interfererHead;
  std::vector<std::int32_t> interfererTail;
  std::vector<std::uint8_t> slotScheduled;
  std::vector<net::NodeId> chainNode;
  std::vector<std::int32_t> chainNext;

  // Per-slot scratch, cleared at each resolution.
  std::vector<net::NodeId> transmitters;
  std::vector<net::NodeId> liveInterferers;

  // Every node whose received bit was set; the list finishLane() walks.
  std::vector<net::NodeId> touchedReceivers;

  // Run observations, moved into the lane's RunResult.
  std::vector<std::uint64_t> receptionSlots;
  std::vector<std::uint64_t> transmissionSlots;
  std::vector<std::int64_t> receptionSlotByNode;
  std::vector<PhaseObservation> phases;

  // Slot-kernel scratch (see net/slot_kernel.hpp).  `entries` is the
  // packed count-xor-sender table, all-zero between slots; `touched`
  // carries the sentinel slot the branchless bump needs.  The sense
  // tables exist only after a CAM-CS run.
  std::vector<std::uint32_t> entries;
  std::vector<net::NodeId> touched;
  std::vector<net::NodeId> receivers;
  std::vector<net::NodeId> senders;
  std::vector<std::uint32_t> actionable;
  std::vector<std::uint32_t> senseEntries;
  std::vector<net::NodeId> senseTouched;

  // SINR accumulators (see net/sinr_kernel.hpp): per-receiver power
  // totals, the best decodable signal and its sender, the first-touch
  // list that restores them to zero after a slot, and the merged
  // (id, isTx) emitter scratch whose ascending sort pins the
  // accumulation order.  Sized by beginLane only for SINR runs.
  std::vector<double> totals;
  std::vector<double> bestGain;
  std::vector<net::NodeId> bestSender;
  std::vector<net::NodeId> gainTouched;
  std::vector<std::pair<net::NodeId, std::uint8_t>> emitters;

  // Set by beginLane, cleared by finishLane; a lane still marked mid-run
  // on re-entry was abandoned by an exception and gets a deep clean.
  bool midRun = false;

  void appendPending(std::uint64_t slot, net::NodeId node) {
    appendChain(pendingHead, pendingTail, slot, node);
  }
  void appendInterferer(std::uint64_t slot, net::NodeId node) {
    appendChain(interfererHead, interfererTail, slot, node);
  }

 private:
  void appendChain(std::vector<std::int32_t>& head,
                   std::vector<std::int32_t>& tail, std::uint64_t slot,
                   net::NodeId node) {
    const auto idx = static_cast<std::int32_t>(chainNode.size());
    chainNode.push_back(node);
    chainNext.push_back(-1);
    if (tail[slot] >= 0) {
      chainNext[tail[slot]] = idx;
    } else {
      head[slot] = idx;
    }
    tail[slot] = idx;
  }
};

class BatchWorkspace {
 public:
  BatchWorkspace() = default;
  BatchWorkspace(const BatchWorkspace&) = delete;
  BatchWorkspace& operator=(const BatchWorkspace&) = delete;

  /// Makes `width` lanes available (grow-only) and returns nothing;
  /// beginLane() then sizes each lane that the batch actually uses.
  void ensureLanes(std::size_t width) {
    if (lanes_.size() < width) lanes_.resize(width);
  }
  std::size_t laneCount() const { return lanes_.size(); }
  BatchLaneArena& lane(std::size_t i) { return lanes_[i]; }

  /// Prepares one lane for a run over `nodeCount` nodes and slots
  /// [0, maxSlot).  Grow-only, mirroring RunWorkspace::beginRun; draws
  /// observation-vector capacity from the reclaim freelists.
  void beginLane(BatchLaneArena& lane, std::size_t nodeCount,
                 std::uint64_t maxSlot, bool carrierSense, bool sinr);

  /// Restores the lane's all-clean invariant after its observation
  /// vectors were moved out.
  void finishLane(BatchLaneArena& lane);

  /// Brute-force restoration of a lane's invariant (exception recovery).
  static void deepClean(BatchLaneArena& lane);

  /// Recycles a consumed RunResult's vector capacity into the freelists
  /// the next beginLane() draws from (cf. RunWorkspace::reclaim).
  void reclaim(RunResult&& result);

 private:
  template <typename T>
  static void sizeTo(std::vector<T>& v, std::size_t n, T fill) {
    if (v.size() < n) v.resize(n, fill);
  }

  std::vector<BatchLaneArena> lanes_;
  // Freelists of spare observation vectors (capacity recycling).
  std::vector<std::vector<std::uint64_t>> spareU64_;
  std::vector<std::vector<std::int64_t>> spareI64_;
  std::vector<std::vector<PhaseObservation>> sparePhases_;
};

}  // namespace nsmodel::sim
